package vsync

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Budget bounds one run segment: wall clock, popped exploration
// states, or process heap. A budget hit does not lose the work — the
// run drains cleanly and returns an Undecided result carrying a
// Checkpoint of the remaining frontier; resuming from it continues the
// exploration exactly where it stopped, with the same final verdict,
// statistics and counterexample an uninterrupted run would have
// produced. MaxDuration and MaxGraphs are per-segment (so every
// resumed segment gets a fresh allowance and the search always makes
// progress); MaxMemBytes is an absolute heap cap.
type Budget = core.Budget

// Checkpoint is the resumable remainder of an interrupted exploration:
// the unexplored frontier, the visited-set keys, cumulative counters,
// and the best violation found so far. It is self-contained — Resume
// needs only the checkpoint, the model, and the program — and survives
// crashes via WriteCheckpointFile/LoadCheckpointFile (atomic write,
// CRC-framed records, torn files refused entirely).
type Checkpoint = core.Checkpoint

// WriteCheckpointFile atomically persists a checkpoint (temp file +
// fsync + rename): the path either holds the complete new checkpoint
// or whatever it held before, never a torn mix.
func WriteCheckpointFile(path string, c *Checkpoint) error {
	return core.WriteCheckpointFile(path, c)
}

// LoadCheckpointFile reads a checkpoint written by WriteCheckpointFile.
// Any damage — truncation, bit flips, trailing garbage — refuses the
// whole file: a partial frontier would silently unsound the search.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	return core.LoadCheckpointFile(path)
}

// CheckpointPath is the sidecar file a run keyed by key checkpoints to
// inside dir: content-addressed by the store key hash, so the same
// verification problem resumes its own frontier and nothing else's.
func CheckpointPath(dir string, key StoreKey) string {
	h := key.Hash()
	return filepath.Join(dir, fmt.Sprintf("%016x%016x.ckpt", h[0], h[1]))
}

// armCheckpoints wires one checker for budgeted, resumable execution
// and returns the checkpoint path ("" when no directory is
// configured). With a directory, a cancellation (SIGINT in the CLIs)
// also snapshots instead of discarding, an existing compatible
// checkpoint seeds the run, and interval > 0 additionally snapshots
// periodically so even kill -9 loses at most one interval of work.
func armCheckpoints(c *core.Checker, b Budget, dir string, interval time.Duration, key StoreKey) string {
	c.Budget = b
	if dir == "" {
		return ""
	}
	path := CheckpointPath(dir, key)
	c.CheckpointOnCancel = true
	if ck, err := core.LoadCheckpointFile(path); err == nil {
		if ck.Epoch == StoreCodeEpoch() {
			c.Resume = ck
		}
		// A checkpoint stamped by a different code epoch is ignored, not
		// an error: a frontier produced by different checker code is not
		// trustworthy even over the same program, and the fresh run will
		// overwrite it. Same stance the verdict store takes on stale
		// records.
	}
	if interval > 0 {
		c.CheckpointInterval = interval
		c.CheckpointSink = func(ck *core.Checkpoint) error {
			ck.Epoch = StoreCodeEpoch()
			return core.WriteCheckpointFile(path, ck)
		}
	}
	return path
}

// finishCheckpoint persists or retires the checkpoint file after a
// run. Undecided results write their final frontier (replacing any
// periodic snapshot, which is by now behind); decisive verdicts retire
// the file — the problem is solved, resuming it would be wasted work.
// Error and Canceled leave any existing file alone: the frontier on
// disk is still the best known resume point.
func finishCheckpoint(path string, r *core.Result) error {
	if path == "" || r == nil {
		return nil
	}
	if r.Verdict == core.Undecided && r.Checkpoint != nil {
		r.Checkpoint.Epoch = StoreCodeEpoch()
		return core.WriteCheckpointFile(path, r.Checkpoint)
	}
	if r.Verdict == OK || r.Verdict == SafetyViolation || r.Verdict == ATViolation {
		os.Remove(path)
	}
	return nil
}

// Resume continues a checkpointed exploration of p under model. The
// result is what the interrupted run would eventually have returned —
// verdict, counterexample, and (for runs segmented purely by budget)
// statistics are identical to an uninterrupted run's. A checkpoint
// carrying a different model, program fingerprint, or (when stamped)
// code epoch is refused with an Error result. opts supplies the
// engine knobs that apply to a single run: WorkersPerRun, MaxGraphs,
// Budget (the new segment may itself be budgeted), CheckpointDir and
// CheckpointInterval.
func Resume(model Model, p *Program, ck *Checkpoint, opts RunOptions) *Result {
	return ResumeCtx(context.Background(), model, p, ck, opts)
}

// ResumeCtx is Resume with cooperative cancellation.
func ResumeCtx(ctx context.Context, model Model, p *Program, ck *Checkpoint, opts RunOptions) *Result {
	if ck == nil {
		return &Result{Verdict: core.Error, Err: fmt.Errorf("vsync: Resume: nil checkpoint")}
	}
	if ck.Epoch != (graph.Hash128{}) && ck.Epoch != StoreCodeEpoch() {
		// An epoch was stamped (the vsync layer always stamps); a
		// frontier produced by different checker code is not trustworthy
		// even over the same program.
		return &Result{Verdict: core.Error, Err: fmt.Errorf(
			"vsync: Resume: checkpoint code epoch %016x%016x does not match this build (%016x%016x); re-verify from scratch",
			ck.Epoch[0], ck.Epoch[1], StoreCodeEpoch()[0], StoreCodeEpoch()[1])}
	}
	if opts.WorkersPerRun <= 0 {
		opts.WorkersPerRun = 1
	}
	c := core.New(model)
	c.WorkersPerRun = opts.WorkersPerRun
	c.NoSymmetry = opts.NoSymmetry
	if opts.MaxGraphs > 0 {
		c.MaxGraphs = opts.MaxGraphs
	}
	c.Budget = opts.Budget
	c.Resume = ck
	key := StoreKey{Model: model.Name(), Prog: p.Fingerprint128()}
	path := ""
	if opts.CheckpointDir != "" {
		path = CheckpointPath(opts.CheckpointDir, key)
		c.CheckpointOnCancel = true
		if opts.CheckpointInterval > 0 {
			c.CheckpointInterval = opts.CheckpointInterval
			c.CheckpointSink = func(ck *core.Checkpoint) error {
				ck.Epoch = StoreCodeEpoch()
				return core.WriteCheckpointFile(path, ck)
			}
		}
	}
	r := c.RunCtx(ctx, p)
	finishCheckpoint(path, r)
	return r
}

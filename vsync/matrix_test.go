package vsync_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/locks"
	"repro/vsync"
)

// matrixConfig is the reduced corpus the tests sweep: two structurally
// different locks at the single ladder rung t=2, every litmus test,
// every model — small enough for -short, wide enough to cover lock
// cells, litmus cells and both decisive verdict polarities.
func matrixConfig(st *vsync.VerdictStore) vsync.MatrixConfig {
	return vsync.MatrixConfig{
		Locks:      []*vsync.Algorithm{locks.ByName("ttas"), locks.ByName("mcs")},
		MaxThreads: 2,
		Store:      st,
	}
}

// verdictMap flattens a matrix result for differential comparison.
func verdictMap(t *testing.T, r *vsync.MatrixResult) map[string]vsync.Verdict {
	t.Helper()
	m := make(map[string]vsync.Verdict, len(r.Cells))
	for _, c := range r.Cells {
		key := fmt.Sprintf("%s|%s|%d", c.Model, c.Program, c.Threads)
		if prev, dup := m[key]; dup && prev != c.Verdict {
			t.Fatalf("duplicate cell %s with diverging verdicts %v / %v", key, prev, c.Verdict)
		}
		m[key] = c.Verdict
	}
	return m
}

// TestMatrixIncremental is the acceptance bar of the verdict store: a
// warm re-run over an unchanged corpus must be served (≥ 90% hits; in
// fact 100%) with the corresponding AMC runs skipped, and store-backed
// verdicts must be differentially identical to a cold run's.
func TestMatrixIncremental(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")

	cold := vsync.VerifyMatrix(matrixConfig(nil))
	if cold.Errors > 0 || cold.Failures > 0 {
		t.Fatalf("cold run failed: %s", cold.Summary())
	}
	if cold.Hits != 0 {
		t.Fatalf("storeless run counted hits: %s", cold.Summary())
	}
	if cold.Misses+cold.Deduped != len(cold.Cells) {
		t.Fatalf("cell accounting does not add up: %d misses + %d deduped != %d cells",
			cold.Misses, cold.Deduped, len(cold.Cells))
	}
	if cold.Deduped == 0 {
		// The corpus contains litmus tests whose weak and strong variants
		// generate identical programs; those must share one AMC run.
		t.Errorf("no identical-key cells deduped within the cold run: %s", cold.Summary())
	}

	st, err := vsync.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	populate := vsync.VerifyMatrix(matrixConfig(st))
	if populate.Hits != 0 || populate.Stored == 0 {
		t.Fatalf("populating run: %s", populate.Summary())
	}
	if populate.Stored != populate.Misses {
		// Every AMC run of this corpus is decisive, and duplicate keys
		// ran once — the log must gain exactly one record per run.
		t.Errorf("stored %d records for %d AMC runs", populate.Stored, populate.Misses)
	}
	if st.Len() != populate.Stored {
		t.Errorf("store indexes %d verdicts, run appended %d", st.Len(), populate.Stored)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Next process": reopen the store and re-run the unchanged corpus.
	st2, err := vsync.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := vsync.VerifyMatrix(matrixConfig(st2))

	if warm.Hits != len(warm.Cells) || warm.Misses != 0 || warm.Deduped != 0 {
		t.Errorf("warm run re-verified cells: %s", warm.Summary())
	}
	if warm.HitRate() < 0.9 {
		t.Errorf("warm hit rate %.2f below the 90%% acceptance bar", warm.HitRate())
	}
	for _, c := range warm.Cells {
		if !c.FromStore {
			t.Errorf("warm cell %s/%s not served from store", c.Model, c.Program)
		}
		if c.Duration != 0 {
			t.Errorf("warm cell %s/%s reports AMC time %v; the run should have been skipped",
				c.Model, c.Program, c.Duration)
		}
	}

	// Differential soundness: the store must change where verdicts come
	// from, never what they are.
	want := verdictMap(t, cold)
	for name, got := range map[string]*vsync.MatrixResult{"populating": populate, "warm": warm} {
		m := verdictMap(t, got)
		if len(m) != len(want) {
			t.Fatalf("%s run covers %d distinct cells, cold run %d", name, len(m), len(want))
		}
		for key, v := range want {
			if m[key] != v {
				t.Errorf("%s run: cell %s verdict %v, cold run %v", name, key, m[key], v)
			}
		}
	}
}

// TestMatrixDetectsFailures: a known-buggy study-case lock must surface
// as a suite failure, not vanish into the store.
func TestMatrixDetectsFailures(t *testing.T) {
	var buggy *vsync.Algorithm
	for _, alg := range locks.All() {
		if alg.Buggy {
			buggy = alg
			break
		}
	}
	if buggy == nil {
		t.Skip("no buggy study-case lock registered")
	}
	st, err := vsync.OpenStore(filepath.Join(t.TempDir(), "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := vsync.MatrixConfig{
		Locks:     []*vsync.Algorithm{buggy},
		Models:    []vsync.Model{vsync.ModelWMM},
		NoLitmus:  true,
		NoStructs: true,
		Store:     st,
	}
	first := vsync.VerifyMatrix(cfg)
	if first.Failures == 0 {
		t.Fatalf("buggy lock %s produced no failing cell: %s", buggy.Name, first.Summary())
	}
	if first.Ok() {
		t.Fatalf("buggy suite claims Ok: %s", first.Summary())
	}
	// The failing verdict is decisive and must be served (still as a
	// failure) on the warm pass.
	second := vsync.VerifyMatrix(cfg)
	if second.Misses != 0 {
		t.Errorf("warm pass re-verified the failing cell: %s", second.Summary())
	}
	if second.Failures != first.Failures {
		t.Errorf("failure count changed warm: %d vs %d", second.Failures, first.Failures)
	}
}

// TestMatrixStoreAppendFailure: a failed store append (disk full, I/O
// error — simulated by closing the store under the run) must not taint
// the soundly computed verdicts or the exit status; it is recorded in
// StoreErr so callers can warn that the run is not actually warming
// the store. Only verdict *conflicts* (broken keying) turn cells into
// engine errors.
func TestMatrixStoreAppendFailure(t *testing.T) {
	st, err := vsync.OpenStore(filepath.Join(t.TempDir(), "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	res := vsync.VerifyMatrix(matrixConfig(st))
	if res.StoreErr == nil {
		t.Fatal("append failures vanished: StoreErr is nil on a dead store")
	}
	if res.Errors > 0 || res.Failures > 0 || !res.Ok() {
		t.Fatalf("append failure tainted sound verdicts: %s", res.Summary())
	}
	// The verdicts must match a storeless run exactly.
	clean := vsync.VerifyMatrix(matrixConfig(nil))
	got, want := verdictMap(t, res), verdictMap(t, clean)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("cell %s: verdict %v with failing store, %v without", k, got[k], v)
		}
	}
}

// TestMatrixStructsCells: the default matrix carries one row per
// verifiable structure workload at every ladder rung within its thread
// range, the cells verify, and a warm re-run serves them from the
// store like any lock cell.
func TestMatrixStructsCells(t *testing.T) {
	st, err := vsync.OpenStore(filepath.Join(t.TempDir(), "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := vsync.MatrixConfig{NoLocks: true, NoLitmus: true, MaxThreads: 2, Store: st}
	cold := vsync.VerifyMatrix(cfg)
	if !cold.Ok() || cold.Errors > 0 || cold.Failures > 0 {
		t.Fatalf("structure corpus failed: %s", cold.Summary())
	}
	var verifiable []vsync.Workload
	for _, w := range vsync.Workloads() {
		if !w.Buggy() {
			verifiable = append(verifiable, w)
		}
	}
	const models = 3 // default matrix: sc, tso, wmm
	if want := len(verifiable) * models; len(cold.Cells) != want {
		t.Fatalf("structure slice has %d cells, want %d (%d workloads x %d models)",
			len(cold.Cells), want, len(verifiable), models)
	}
	seen := make(map[string]bool)
	for _, c := range cold.Cells {
		seen[c.Program] = true
		if c.Threads != 2 {
			t.Errorf("cell %s at t=%d, want the single t=2 rung", c.Program, c.Threads)
		}
	}
	for _, w := range verifiable {
		name := vsync.WorkloadProgram(w, nil, 2).Name
		if !seen[name] {
			t.Errorf("workload %s missing from the matrix (no cell named %s)", w.Name(), name)
		}
	}

	warm := vsync.VerifyMatrix(cfg)
	if warm.Misses != 0 || warm.Hits+warm.Deduped != len(warm.Cells) {
		t.Errorf("structure cells not served warm: %s", warm.Summary())
	}
}

// TestMergeMakesMatrixWarm: two stores that each verified a disjoint
// half of the corpus merge into one whose full-corpus re-run is
// entirely warm — the fleet story: CI shards verify halves, the merged
// corpus serves everything.
func TestMergeMakesMatrixWarm(t *testing.T) {
	var half1, half2 []*vsync.Algorithm
	for i, alg := range vsync.Locks() {
		if alg.Buggy {
			continue
		}
		if i%2 == 0 {
			half1 = append(half1, alg)
		} else {
			half2 = append(half2, alg)
		}
	}
	dir := t.TempDir()
	stA, err := vsync.OpenStore(filepath.Join(dir, "a.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	stB, err := vsync.OpenStore(filepath.Join(dir, "b.log"))
	if err != nil {
		t.Fatal(err)
	}

	// Shard A takes half the locks, shard B the other half plus the
	// litmus and structure corpora — disjoint cells, together the full
	// default matrix.
	ra := vsync.VerifyMatrix(vsync.MatrixConfig{Locks: half1, NoLitmus: true, NoStructs: true, Store: stA})
	rb := vsync.VerifyMatrix(vsync.MatrixConfig{Locks: half2, Store: stB})
	if ra.Errors > 0 || rb.Errors > 0 || ra.StoreErr != nil || rb.StoreErr != nil {
		t.Fatalf("shard passes not clean: %s / %s", ra.Summary(), rb.Summary())
	}
	if err := stB.Close(); err != nil {
		t.Fatal(err)
	}

	ms, err := stA.Merge(stB.Path())
	if err != nil {
		t.Fatal(err)
	}
	if ms.Conflicts != 0 || ms.Added == 0 {
		t.Fatalf("merge of disjoint shards: %+v", ms)
	}

	full := vsync.VerifyMatrix(vsync.MatrixConfig{Store: stA})
	if full.Misses != 0 || full.Hits+full.Deduped != len(full.Cells) {
		t.Fatalf("merged store did not make the full matrix warm: %s", full.Summary())
	}
}

package vsync_test

import (
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/vsync"
)

// chaosConfig is the corpus the crash harness sweeps: one real lock
// across the 2..3 thread ladder plus the full litmus corpus, under
// every model — enough AMC work (tens of thousands of states on the
// t=3 cells) that a kill lands mid-exploration, wide enough that the
// store and checkpoint machinery both matter.
func chaosConfig(st *vsync.VerdictStore, ckptDir string) vsync.MatrixConfig {
	return vsync.MatrixConfig{
		Locks:              []*vsync.Algorithm{locks.ByName("mcs")},
		NoStructs:          true,
		MaxThreads:         3,
		Store:              st,
		CheckpointDir:      ckptDir,
		CheckpointInterval: 5 * time.Millisecond,
		Parallelism:        1,
		WorkersPerRun:      1,
	}
}

// TestChaosSuiteHelper is the subprocess body of TestChaosKillResume:
// one suite pass against the shared store and checkpoint directory
// named by the environment. It is skipped as a normal test.
func TestChaosSuiteHelper(t *testing.T) {
	if os.Getenv("VSYNC_CHAOS") != "1" {
		t.Skip("subprocess helper for TestChaosKillResume")
	}
	st, err := vsync.OpenStore(os.Getenv("VSYNC_CHAOS_STORE"))
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	defer st.Close()
	res := vsync.VerifyMatrix(chaosConfig(st, os.Getenv("VSYNC_CHAOS_CKPT")))
	if res.Errors > 0 || res.Failures > 0 || res.Undecided > 0 {
		t.Fatalf("helper: %s", res.Summary())
	}
}

// TestChaosKillResume is the crash-safety acceptance test: a cold
// suite run in a subprocess is kill -9'd at random points — mid
// store append, mid checkpoint write, wherever the clock lands — and
// restarted, until one pass completes cleanly. The surviving state
// must then be exactly what an uninterrupted run produces: identical
// per-cell verdicts, zero verdict conflicts in the store, and no cell
// left undecided. Random kill times are logged with their seed so a
// failing schedule can be replayed.
func TestChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns and kills subprocesses; skipped in -short")
	}

	// Uninterrupted baseline, fully in-process (no store, no
	// checkpoints — plain AMC answers).
	baseline := vsync.VerifyMatrix(vsync.MatrixConfig{
		Locks:         []*vsync.Algorithm{locks.ByName("mcs")},
		NoStructs:     true,
		MaxThreads:    3,
		Parallelism:   1,
		WorkersPerRun: 1,
	})
	if baseline.Errors > 0 || baseline.Failures > 0 {
		t.Fatalf("baseline: %s", baseline.Summary())
	}
	want := verdictMap(t, baseline)

	dir := t.TempDir()
	storePath := filepath.Join(dir, "verdicts.log")
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}

	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("chaos seed %d", seed)

	helper := func() *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestChaosSuiteHelper$")
		cmd.Env = append(os.Environ(),
			"VSYNC_CHAOS=1",
			"VSYNC_CHAOS_STORE="+storePath,
			"VSYNC_CHAOS_CKPT="+ckptDir,
		)
		return cmd
	}

	const maxKills = 15
	kills, completed := 0, false
	for kills < maxKills && !completed {
		cmd := helper()
		var out strings.Builder
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		delay := time.Duration(20+rng.Intn(780)) * time.Millisecond
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("pass after %d kills failed:\n%s\n%v", kills, out.String(), err)
			}
			completed = true
		case <-time.After(delay):
			cmd.Process.Kill()
			<-done
			kills++
			t.Logf("kill %d after %v", kills, delay)
		}
		// Whatever the kill tore, the store must still open (healing
		// any torn tail) — a corrupt-beyond-repair log fails here.
		st, err := vsync.OpenStore(storePath)
		if err != nil {
			t.Fatalf("store unopenable after kill %d: %v", kills, err)
		}
		st.Close()
	}
	if !completed {
		// Every pass got killed; run one undisturbed to convergence.
		cmd := helper()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("final pass after %d kills failed:\n%s\n%v", kills, out, err)
		}
	}
	t.Logf("suite converged after %d kill(s)", kills)

	// The surviving store must agree with the uninterrupted baseline on
	// every cell, with zero conflicts (no half-written record was ever
	// served) — crash-recovery changed where verdicts come from, never
	// what they are.
	st, err := vsync.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	final := vsync.VerifyMatrix(chaosConfig(st, ckptDir))
	if final.Errors > 0 || final.Failures > 0 || final.Undecided > 0 {
		t.Fatalf("final matrix: %s", final.Summary())
	}
	if final.Misses > 0 {
		t.Errorf("converged store still required %d AMC runs", final.Misses)
	}
	got := verdictMap(t, final)
	if len(got) != len(want) {
		t.Fatalf("final matrix covers %d cells, baseline %d", len(got), len(want))
	}
	for key, v := range want {
		if got[key] != v {
			t.Errorf("cell %s: verdict %v after crashes, baseline %v", key, got[key], v)
		}
	}
	if s := st.Stats(); s.Conflicts > 0 {
		t.Errorf("%d verdict conflicts in the post-crash store", s.Conflicts)
	}

	// Converged: every checkpoint retired; atomic-write temp litter from
	// killed writers is tolerated (it is dead weight, not state), but
	// real checkpoint files must be gone.
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".ckpt" {
			t.Errorf("converged suite left checkpoint %s", e.Name())
		}
	}
}

package vsync

import (
	"context"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// RunOptions parameterizes Run, the single entry point the historical
// Verify/VerifyPar/VerifySuite/VerifySuitePar/VerifySuiteResults
// family collapsed into. The zero value is a sensible sequential
// verification: one run at a time, one worker per run, no store.
type RunOptions struct {
	// Parallelism bounds concurrent AMC runs (0 = GOMAXPROCS,
	// 1 = one run at a time).
	Parallelism int
	// WorkersPerRun shares each run's exploration frontier among up to
	// this many workers (0 = GOMAXPROCS, 1 = sequential). The verdict
	// is identical at every worker count; see VerifyPar for the
	// statistics fine print.
	WorkersPerRun int
	// CollectResults retains every program's individual result (and
	// its per-program store provenance) on the RunResult; off, only
	// the reduced Result/Failed pair is kept.
	CollectResults bool
	// Store, when non-nil, is consulted before any AMC work — a stored
	// verdict serves its program without a run — and receives every
	// decisive verdict this run computes. The session is shared: a
	// Refresh first observes verdicts concurrent processes stored.
	Store *VerdictStore
	// StoreKeys, when non-nil, supplies the store key per program
	// (parallel to the programs slice; callers that know the
	// BarrierSpec behind a program pass the full key). Nil keys each
	// program by (model, zero spec, program fingerprint) — sound, but
	// a different address than spec-aware callers use.
	StoreKeys []StoreKey
	// MaxGraphs bounds each AMC run (0 = checker default).
	MaxGraphs int
	// NoSymmetry disables thread-symmetry reduction
	// (core.Checker.NoSymmetry): programs declaring symmetric thread
	// groups are explored without collapsing relabeled states. The
	// verdict is identical either way — this is the differential oracle
	// and a diagnostic knob, not a correctness choice. Note that
	// checkpoints record the setting and resume only under the same one.
	NoSymmetry bool
	// Budget bounds each AMC run segment (wall clock, popped graphs,
	// heap). A budget hit returns Undecided with a Checkpoint instead
	// of losing the work; see Budget and Resume. Zero means unbounded.
	Budget Budget
	// CheckpointDir, when non-empty, makes runs crash-safe: each
	// program checkpoints to a content-addressed file in this directory
	// on budget exhaustion and on cancellation, and a compatible
	// checkpoint found there seeds the run (resume). Decisive verdicts
	// retire their file. The directory must exist.
	CheckpointDir string
	// CheckpointInterval additionally snapshots the live frontier to
	// CheckpointDir at this cadence, so even an uncancellable crash
	// (kill -9, power loss) loses at most one interval of work. Zero
	// disables periodic snapshots; requires CheckpointDir.
	CheckpointInterval time.Duration
}

// RunResult is the outcome of one Run call.
type RunResult struct {
	// Result reduces the run: the lowest-indexed decisive failure, or
	// an OK result aggregating every program's statistics (and the
	// slowest run's wall time) when all verify.
	Result *Result
	// Failed is the index of the program Result refers to, -1 when
	// every program verified.
	Failed int
	// Results holds each program's individual result, in program
	// order, when RunOptions.CollectResults is set (nil otherwise).
	// Programs canceled by the fail-fast report Canceled; programs
	// served by the store report a synthetic result carrying only the
	// verdict.
	Results []*Result
	// FromStore marks, parallel to Results, the programs whose verdict
	// was served by the store (only with CollectResults).
	FromStore []bool
	// StoreHits counts programs served by the store.
	StoreHits int
	// StoreErr is the first failed store append, or nil. Append
	// failures never taint a verdict — the run is sound, it just is
	// not warming the store (a conflict error, errors.Is ErrConflict,
	// additionally means the keying broke; see VerdictStore.Put).
	StoreErr error
}

// Run model-checks programs under model, fanning the AMC runs out
// across a worker pool with fail-fast cancellation and (optionally)
// serving and warming a shared verdict store. It subsumes the
// deprecated Verify* family:
//
//	Verify(m, p)                      = Run(m, []*Program{p}, RunOptions{Parallelism: 1, WorkersPerRun: 1, CollectResults: true}).Results[0]
//	VerifyPar(m, p, w)                = ... WorkersPerRun: w ...
//	VerifySuite(m, par, ps)           = Run(m, ps, RunOptions{Parallelism: par, WorkersPerRun: 1}) reduced to (Result, Failed)
//	VerifySuitePar / ...SuiteResults  = the same with WorkersPerRun and CollectResults
//
// Single-program runs with Parallelism 1 execute the checker
// standalone, so WorkersPerRun > 1 spawns that run's own worker set
// exactly as VerifyPar always has; everything else goes through a
// core.Pool, where extra workers arrive by borrowing idle slots.
func Run(model Model, programs []*Program, opts RunOptions) *RunResult {
	return RunCtx(context.Background(), model, programs, opts)
}

// RunCtx is Run with cooperative cancellation: canceling ctx stops
// pending and running AMC work, which reports Canceled.
func RunCtx(ctx context.Context, model Model, programs []*Program, opts RunOptions) *RunResult {
	if opts.WorkersPerRun <= 0 {
		opts.WorkersPerRun = runtime.GOMAXPROCS(0)
	}
	n := len(programs)
	rr := &RunResult{Failed: -1}
	results := make([]*Result, n)
	fromStore := make([]bool, n)

	keys := opts.StoreKeys
	if keys == nil && (opts.Store != nil || opts.CheckpointDir != "") {
		// Checkpoint files are addressed by the same content key the
		// store uses, so a checkpoint directory needs keys even without
		// a store.
		keys = make([]StoreKey, n)
		for i, p := range programs {
			keys[i] = StoreKey{Model: model.Name(), Spec: graph.Hash128{}, Prog: p.Fingerprint128()}
		}
	}
	var todo []int
	if opts.Store != nil {
		// Observe verdicts concurrent processes appended since this
		// session's last scan; best-effort (a closed or unreadable
		// store degrades to memory-only lookups).
		opts.Store.Refresh()
		for i := range programs {
			if v, ok := opts.Store.Lookup(keys[i]); ok {
				results[i] = &Result{Verdict: v}
				fromStore[i] = true
				rr.StoreHits++
			} else {
				todo = append(todo, i)
			}
		}
	} else {
		for i := range programs {
			todo = append(todo, i)
		}
	}

	// A stored failure fails the run before any AMC work, mirroring
	// fail-fast: the unrun remainder reports Canceled.
	for i, r := range results {
		if r != nil && r.Verdict != OK {
			for _, j := range todo {
				results[j] = &Result{Verdict: Canceled, Message: "canceled: stored verdict failed fail-fast"}
			}
			rr.Result, rr.Failed = r, i
			return rr.finish(results, fromStore, opts)
		}
	}

	newChecker := func(i int) (*core.Checker, string) {
		c := core.New(model)
		c.WorkersPerRun = opts.WorkersPerRun
		c.NoSymmetry = opts.NoSymmetry
		if opts.MaxGraphs > 0 {
			c.MaxGraphs = opts.MaxGraphs
		}
		var key StoreKey
		if keys != nil {
			key = keys[i]
		}
		path := armCheckpoints(c, opts.Budget, opts.CheckpointDir, opts.CheckpointInterval, key)
		return c, path
	}
	ckptPaths := make(map[int]string)
	if len(todo) == 1 && opts.Parallelism == 1 {
		// Standalone run: WorkersPerRun > 1 spawns the run's own
		// workers (a one-slot pool could lend it nothing).
		c, path := newChecker(todo[0])
		ckptPaths[todo[0]] = path
		results[todo[0]] = c.RunCtx(ctx, programs[todo[0]])
	} else if len(todo) > 0 {
		pool := core.NewPool(opts.Parallelism)
		jobs := make([]core.Job, len(todo))
		for j, i := range todo {
			c, path := newChecker(i)
			ckptPaths[i] = path
			jobs[j] = core.Job{Checker: c, Program: programs[i]}
		}
		_, _, jobResults := pool.VerifyAll(ctx, jobs)
		for j, i := range todo {
			results[i] = jobResults[j]
		}
	}
	// Persist or retire checkpoint files: Undecided results write their
	// final frontier, decisive verdicts delete the file (the problem is
	// solved), Error/Canceled leave any snapshot in place.
	for i, path := range ckptPaths {
		if err := finishCheckpoint(path, results[i]); err != nil && rr.StoreErr == nil {
			rr.StoreErr = err
		}
	}

	// Persist what was computed — including decisive verdicts from
	// programs that finished before a fail-fast cancellation; the
	// store exists to never redo that work.
	if opts.Store != nil {
		for _, i := range todo {
			r := results[i]
			if r == nil {
				continue
			}
			if err := opts.Store.Put(keys[i], r.Verdict, model.Name()+"/"+programs[i].Name); err != nil && rr.StoreErr == nil {
				rr.StoreErr = err
			}
		}
	}

	// Reduce exactly as VerifySuiteResults always has: the
	// lowest-indexed decisive failure wins; then an undecided run (its
	// result carries the checkpoint to resume from); then a
	// cancellation; else aggregate OK.
	for i, r := range results {
		if r.Verdict != OK && r.Verdict != Canceled && r.Verdict != core.Undecided {
			rr.Result, rr.Failed = r, i
			return rr.finish(results, fromStore, opts)
		}
	}
	for i, r := range results {
		if r.Verdict == core.Undecided {
			rr.Result, rr.Failed = r, i
			return rr.finish(results, fromStore, opts)
		}
	}
	for i, r := range results {
		if r.Verdict == Canceled {
			rr.Result, rr.Failed = r, i
			return rr.finish(results, fromStore, opts)
		}
	}
	agg := &Result{Verdict: core.OK}
	for _, r := range results {
		agg.Stats.Add(r.Stats)
		agg.Sched.Accumulate(r.Sched)
		if r.Duration > agg.Duration {
			agg.Duration = r.Duration // wall clock ≈ the slowest run
		}
	}
	rr.Result = agg
	return rr.finish(results, fromStore, opts)
}

// finish attaches the per-program slices when asked for.
func (rr *RunResult) finish(results []*Result, fromStore []bool, opts RunOptions) *RunResult {
	if opts.CollectResults {
		rr.Results = results
		rr.FromStore = fromStore
	}
	return rr
}

package vsync_test

import (
	"strings"
	"testing"

	"repro/vsync"
)

func TestFacadeVerify(t *testing.T) {
	alg := vsync.LockByName("ttas")
	if alg == nil {
		t.Fatal("registry lookup failed")
	}
	res := vsync.VerifyLock(alg, alg.DefaultSpec(), 2, 1)
	if !res.Ok() {
		t.Fatalf("ttas: %v", res)
	}
	if got := vsync.Verify(vsync.ModelSC, vsync.MutexClient(alg, alg.DefaultSpec(), 2, 1)); !got.Ok() {
		t.Fatalf("ttas under SC: %v", got)
	}
}

func TestFacadeOptimize(t *testing.T) {
	alg := vsync.LockByName("spin")
	res, err := vsync.OptimizeLock(alg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.M("spin.cas") != vsync.Acq || res.Final.M("spin.unlock") != vsync.Rel {
		t.Fatalf("unexpected optimization result:\n%s", res.Report())
	}
	if !strings.Contains(res.Report(), "verifications") {
		t.Error("report missing stats line")
	}
}

func TestFacadeLocks(t *testing.T) {
	all := vsync.Locks()
	if len(all) < 20 { // 18 benchmarkable + buggy study cases
		t.Fatalf("registry too small: %d", len(all))
	}
	buggy := 0
	for _, a := range all {
		if a.Buggy {
			buggy++
		}
	}
	if buggy != 2 {
		t.Fatalf("want 2 buggy study-case variants, got %d", buggy)
	}
}

func TestFacadeMachines(t *testing.T) {
	ms := vsync.Machines()
	if len(ms) != 2 || ms[0].Name != "ARMv8" || ms[1].Name != "x86_64" {
		t.Fatalf("unexpected machines: %v", ms)
	}
	if ms[0].Cores != 128 || ms[1].Cores != 96 {
		t.Fatal("platform core counts diverge from the paper's testbeds")
	}
}

func TestFacadeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke test")
	}
	cfg := vsync.QuickBench()
	cfg.Threads = []int{1, 2}
	cfg.Runs = 2
	cfg.Cycles = 30_000
	cfg.Algorithms = cfg.Algorithms[:3]
	recs := vsync.RunBench(cfg)
	if len(recs) == 0 {
		t.Fatal("no records")
	}
}

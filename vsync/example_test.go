package vsync_test

import (
	"fmt"

	"repro/vsync"
)

// ExampleVerifyLock verifies the TTAS lock's maximally-relaxed barriers
// under the weak memory model.
func ExampleVerifyLock() {
	alg := vsync.LockByName("ttas")
	res := vsync.VerifyLock(alg, alg.DefaultSpec(), 2, 1)
	fmt.Println(res.Verdict)
	// Output: ok
}

// ExampleVerifyLock_violation shows a counterexample verdict: with the
// unlock store relaxed, the critical-section hand-off loses its
// ordering and an increment disappears.
func ExampleVerifyLock_violation() {
	alg := vsync.LockByName("ttas")
	spec := alg.DefaultSpec()
	spec.Set("ttas.xchg", vsync.Rlx)
	spec.Set("ttas.unlock", vsync.Rlx)
	res := vsync.VerifyLock(alg, spec, 2, 1)
	fmt.Println(res.Verdict)
	fmt.Println(res.Message)
	// Output:
	// safety violation
	// final-state check failed: lost update: counter = 1, want 2
}

// ExampleOptimizeLock relaxes the CAS spinlock from the all-SC
// baseline: the acquire CAS and the release store are all that remain.
func ExampleOptimizeLock() {
	res, err := vsync.OptimizeLock(vsync.LockByName("spin"), 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("spin.cas:", res.Final.M("spin.cas"))
	fmt.Println("spin.unlock:", res.Final.M("spin.unlock"))
	// Output:
	// spin.cas: acq
	// spin.unlock: rel
}

package vsync_test

import (
	"path/filepath"
	"testing"

	"repro/vsync"
)

// TestRunSuiteBench: the cold pass must model-check everything and the
// warm pass must be served entirely by the store — the suite-level
// mirror of the per-cell incremental guarantees VerifyMatrix tests
// assert.
func TestRunSuiteBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full t=2 suite twice; not run in -short")
	}
	b, err := vsync.RunSuiteBench(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Phases) != 2 {
		t.Fatalf("recorded %d phases, want cold+warm", len(b.Phases))
	}
	cold, warm := b.Phases[0], b.Phases[1]
	if cold.Phase != "cold" || warm.Phase != "warm" {
		t.Fatalf("phase order wrong: %q, %q", cold.Phase, warm.Phase)
	}
	if cold.Cells == 0 || cold.Cells != warm.Cells {
		t.Fatalf("cell counts diverged: cold %d, warm %d", cold.Cells, warm.Cells)
	}
	if cold.Hits != 0 {
		t.Errorf("cold pass against a fresh store had %d hits", cold.Hits)
	}
	if warm.HitRate != 1 {
		t.Errorf("warm pass hit rate %.2f, want 1.0 (misses=%d)", warm.HitRate, warm.Misses)
	}
	if warm.Stored != 0 {
		t.Errorf("warm pass appended %d records, want 0", warm.Stored)
	}
	path := filepath.Join(t.TempDir(), "BENCH_suite.json")
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if b.String() == "" {
		t.Error("empty rendering")
	}
}

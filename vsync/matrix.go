package vsync

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/optimize"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/vprog"
	"repro/internal/workload"
)

// VerdictStore is a shared session on the persistent, content-
// addressed AMC verdict store (internal/store): an append-only
// checksummed log keyed by (model, spec fingerprint, program
// fingerprint). Shared by optimize.Cache's persistent tier, the
// VerifyMatrix suite runner and Run.
//
// Sharing semantics: the log is multi-writer. Any number of sessions —
// in this process or others — may hold one path open simultaneously;
// appends are record-atomic under a short-held cross-process lock, so
// concurrent writers never lose or tear records. A session serves
// lookups from its in-memory index, which covers the log as of its
// last scan; VerifyMatrix and Run call VerdictStore.Refresh to pull in
// verdicts concurrent processes appended, so two simultaneous suite
// runs share one live store: each serves cells the other already
// decided and appends only what it computed first. Merge pools two
// stores into one, Compact rewrites a log in place (dropping
// duplicates and over-budget foreign-epoch history) — both safe
// against live sessions elsewhere.
type VerdictStore = store.Session

// StoreKey identifies one verification problem in a VerdictStore.
type StoreKey = store.Key

// StoreStats is a VerdictStore's cumulative accounting.
type StoreStats = store.Stats

// StoreOptions configures OpenStoreWith beyond the log path — chiefly
// the remote verdict-service tier (see cmd/vsyncstored): lookups then
// go memory → local log → remote, decisive appends are pushed in
// idempotent batches, and an unreachable service degrades the session
// to local-only with logged backoff, never failing a run.
type StoreOptions = store.Options

// OpenStore opens (creating if necessary) a shared session on the
// verdict log at path, loading its trusted prefix and truncating away
// any corrupt tail. Concurrent sessions on one path — including other
// processes' — are the supported norm; see VerdictStore.
func OpenStore(path string) (*VerdictStore, error) { return store.OpenShared(path, nil) }

// OpenStoreWith is OpenStore with options (remote tier, logging).
func OpenStoreWith(path string, opts *StoreOptions) (*VerdictStore, error) {
	return store.OpenShared(path, opts)
}

// StoreCodeEpoch returns the code-identity epoch this binary stamps on
// every store record (a hash of the checker and program-constructor
// sources, internal/srcid): verdicts persisted by a build with
// different verification-relevant code are never served — retained for
// epoch flip-backs, compacted beyond a budget — so restoring a store
// across commits is always sound and stays bounded.
func StoreCodeEpoch() graph.Hash128 { return store.CodeEpoch() }

// NewOptCacheWithStore returns a verdict cache whose misses fall
// through to — and whose decisive verdicts are written through to —
// the persistent session st. The session may simultaneously back other
// runs (a VerifyMatrix in another process, a remote tier); the cache
// layers its in-memory promotion on top of whatever the session
// serves.
func NewOptCacheWithStore(st *VerdictStore) *OptCache {
	return optimize.NewCacheWithStore(st)
}

// MatrixConfig parameterizes an incremental suite run: which corpus to
// cover and which persistent store (if any) to consult before spending
// AMC work.
type MatrixConfig struct {
	// Models to verify under; nil selects all (SC, TSO, WMM).
	Models []Model
	// Locks to cover with the generic mutex client; nil selects every
	// registered non-buggy algorithm (ignored when NoLocks is set).
	Locks []*Algorithm
	// NoLocks drops the lock-client rows from the matrix.
	NoLocks bool
	// Structs selects the structure workloads to cover, each at the
	// thread ladder clamped to its supported range; nil selects every
	// registered non-buggy workload (internal/structs registers the
	// nonblocking structures at init). Ignored when NoStructs is set.
	Structs []Workload
	// NoStructs drops the structure rows from the matrix.
	NoStructs bool
	// Threads is the client thread-count ladder; nil selects
	// 2..MaxThreads (and MaxThreads <= 2 means just {2}).
	Threads []int
	// MaxThreads tops the default ladder when Threads is nil.
	MaxThreads int
	// Iters is the critical sections per client thread (default 1).
	Iters int
	// NoLitmus drops the litmus corpus (weak + strong variants of every
	// built-in test) from the matrix.
	NoLitmus bool
	// Litmus selects specific litmus tests by name; nil selects all
	// (ignored when NoLitmus is set).
	Litmus []string
	// Store, when non-nil, is consulted before every cell — a stored
	// verdict skips the AMC run entirely — and receives every decisive
	// verdict the run computes.
	Store *VerdictStore
	// Parallelism bounds concurrent AMC runs (0 = GOMAXPROCS).
	Parallelism int
	// WorkersPerRun enables intra-run work stealing per cell
	// (0 = GOMAXPROCS, 1 = sequential).
	WorkersPerRun int
	// MaxGraphs bounds each AMC run (0 = checker default).
	MaxGraphs int
	// Budget bounds each cell's AMC run segment; a budget hit leaves
	// the cell Undecided (neither failure nor error) with its frontier
	// checkpointed when CheckpointDir is set. Zero means unbounded.
	Budget Budget
	// CheckpointDir, when non-empty, makes the suite crash-safe: each
	// cell checkpoints its interrupted frontier to a content-addressed
	// file there, and the next run over the same corpus resumes every
	// undecided cell exactly where it stopped instead of starting over.
	// Decided cells retire their file. The directory must exist.
	CheckpointDir string
	// CheckpointInterval additionally snapshots live frontiers at this
	// cadence (crash-safety against kill -9); requires CheckpointDir.
	CheckpointInterval time.Duration
}

// MatrixCell is the outcome of one (model × program) cell of the suite.
type MatrixCell struct {
	// Model and Program name the cell; Threads is the client ladder rung
	// (0 for litmus cells).
	Model   string
	Program string
	Threads int
	// Litmus marks conformance cells, whose SafetyViolation verdict
	// means "weak outcome observable" rather than a suite failure.
	Litmus bool
	// Verdict is the cell's (possibly store-served) AMC verdict.
	Verdict Verdict
	// FromStore reports that the verdict was served by the store and the
	// AMC run skipped.
	FromStore bool
	// Deduped reports that the verdict was computed by another cell of
	// this same run with an identical key (e.g. a litmus test whose weak
	// and strong variants generate the same program) — one AMC run
	// served both.
	Deduped bool
	// Duration is the AMC wall time (zero for store hits and deduped
	// cells).
	Duration time.Duration
	// Err is set for engine errors.
	Err error
}

// Failed reports whether the cell is a genuine suite failure: a lock
// cell that did not verify, or an engine error anywhere. Litmus cells
// report observability, so their decisive verdicts never fail. An
// Undecided cell is neither: its run hit a budget and checkpointed;
// the next suite pass resumes it.
func (c *MatrixCell) Failed() bool {
	if c.Verdict == core.Error || c.Verdict == Canceled {
		return true
	}
	return !c.Litmus && c.Verdict != OK && c.Verdict != core.Undecided
}

// MatrixResult aggregates one suite run.
type MatrixResult struct {
	Cells []MatrixCell
	// Hits counts cells served by the store (AMC runs skipped); Misses
	// counts AMC runs actually performed; Deduped counts cells served by
	// an identical-key cell's run in this same pass (so
	// Hits + Misses + Deduped == len(Cells)); Stored counts the records
	// the store actually appended.
	Hits, Misses, Deduped, Stored int
	// StoreErr is the first failed store append (disk full, I/O error),
	// or nil. An append failure does not taint the cell — its AMC
	// verdict is sound — but the run is not warming the store the way
	// the caller believes, so the next run will silently redo the work
	// unless someone warns. (A verdict *conflict* is different: it
	// means the keying broke, and the affected cells are reported as
	// engine errors instead.)
	StoreErr error
	// Failures counts lock cells with decisive non-OK verdicts; Errors
	// counts engine errors (including canceled runs); Undecided counts
	// cells whose run hit the Budget and checkpointed — unfinished, not
	// failed; a follow-up run resumes them.
	Failures, Errors, Undecided int
	// Duration is the suite wall time, including store I/O.
	Duration time.Duration
}

// HitRate returns the fraction of cells served by the store.
func (r *MatrixResult) HitRate() float64 {
	if len(r.Cells) == 0 {
		return 0
	}
	return float64(r.Hits) / float64(len(r.Cells))
}

// Ok reports whether every lock cell verified and no cell errored.
func (r *MatrixResult) Ok() bool { return r.Failures == 0 && r.Errors == 0 }

// Summary renders the one-paragraph accounting: corpus size, store
// efficacy, and failures.
func (r *MatrixResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "suite: %d cells in %v — %d store hits, %d AMC runs", len(r.Cells), r.Duration.Round(time.Millisecond), r.Hits, r.Misses)
	if r.Deduped > 0 {
		fmt.Fprintf(&b, " (+%d identical cells sharing them)", r.Deduped)
	}
	fmt.Fprintf(&b, ", %d verdicts stored (%.1f%% hit rate, %d AMC runs skipped)\n", r.Stored, 100*r.HitRate(), r.Hits)
	if r.Undecided > 0 {
		fmt.Fprintf(&b, "suite: %d cells undecided (budget hit, checkpointed — rerun to resume)\n", r.Undecided)
	}
	if r.Failures > 0 || r.Errors > 0 {
		fmt.Fprintf(&b, "suite: %d FAILED cells, %d engine errors\n", r.Failures, r.Errors)
	}
	return b.String()
}

// Report renders the full per-cell table followed by the summary. Lock
// cells read ok/FAILED; litmus cells read ALLOWED/forbidden — the
// vsynclitmus matrix folded into the suite view.
func (r *MatrixResult) Report() string {
	t := report.NewTable("verification matrix (incremental)", "cell", "model", "verdict", "source", "time")
	for i := range r.Cells {
		c := &r.Cells[i]
		verdict := c.Verdict.String()
		switch {
		case c.Litmus:
			// Same vocabulary as vsynclitmus — litmus cells answer
			// observability, and engine failures stay distinguishable.
			verdict = c.Verdict.LitmusLabel()
		case c.Verdict == core.Error:
			verdict = "ERROR"
		case c.Verdict == Canceled:
			verdict = "canceled"
		case c.Verdict == core.Undecided:
			verdict = "undecided"
		case c.Verdict == OK:
			verdict = "ok"
		default:
			verdict = "FAILED: " + verdict
		}
		source := "amc"
		dur := c.Duration.Round(time.Microsecond).String()
		switch {
		case c.FromStore:
			source, dur = "store", "-"
		case c.Deduped:
			source, dur = "dup", "-"
		}
		t.Add(c.Program, c.Model, verdict, source, dur)
	}
	return t.String() + "\n" + r.Summary()
}

// matrixCell pairs a pending cell with its store key.
type matrixCell struct {
	cell MatrixCell
	prog *vprog.Program
	key  store.Key
}

// buildMatrix expands the config into the cell corpus, in deterministic
// order: locks × thread ladder × models, then structures × ladder ×
// models, then litmus × strength × models.
func buildMatrix(cfg *MatrixConfig) []matrixCell {
	models := cfg.Models
	if models == nil {
		models = mm.All()
	}
	algs := cfg.Locks
	if algs == nil {
		algs = locks.Verifiable()
	}
	threads := cfg.Threads
	if threads == nil {
		max := cfg.MaxThreads
		if max < 2 {
			max = 2
		}
		for t := 2; t <= max; t++ {
			threads = append(threads, t)
		}
	}
	iters := cfg.Iters
	if iters < 1 {
		iters = 1
	}
	var cells []matrixCell
	if !cfg.NoLocks {
		for _, alg := range algs {
			spec := alg.DefaultSpec()
			specFP := spec.Fingerprint128()
			for _, t := range threads {
				p := harness.MutexClient(alg, spec, t, iters)
				progFP := p.Fingerprint128()
				for _, m := range models {
					cells = append(cells, matrixCell{
						cell: MatrixCell{Model: m.Name(), Program: p.Name, Threads: t},
						prog: p,
						key:  store.Key{Model: m.Name(), Spec: specFP, Prog: progFP},
					})
				}
			}
		}
	}
	if !cfg.NoStructs {
		ws := cfg.Structs
		if ws == nil {
			ws = workload.Verifiable()
		}
		for _, w := range ws {
			spec := w.DefaultSpec()
			specFP := spec.Fingerprint128()
			lo, hi := w.Threads()
			for _, t := range threads {
				if t < lo || (hi > 0 && t > hi) {
					continue
				}
				p := workload.Program(w, spec, t)
				progFP := p.Fingerprint128()
				for _, m := range models {
					cells = append(cells, matrixCell{
						cell: MatrixCell{Model: m.Name(), Program: p.Name, Threads: t},
						prog: p,
						key:  store.Key{Model: m.Name(), Spec: specFP, Prog: progFP},
					})
				}
			}
		}
	}
	if !cfg.NoLitmus {
		names := cfg.Litmus
		if names == nil {
			names = harness.LitmusNames()
		}
		for _, n := range names {
			for _, strong := range []bool{false, true} {
				p := harness.Litmus(n, strong)
				if p == nil {
					continue
				}
				// Label by registry name, not p.Name: several registry
				// entries share a program Name (SB and SB+fences are both
				// "litmus/SB") and the table must keep them apart.
				label := "litmus/" + n + "/weak"
				if strong {
					label = "litmus/" + n + "/strong"
				}
				progFP := p.Fingerprint128()
				for _, m := range models {
					cells = append(cells, matrixCell{
						cell: MatrixCell{Model: m.Name(), Program: label, Litmus: true},
						prog: p,
						// Litmus programs carry no BarrierSpec; the zero
						// spec fingerprint plus the program fingerprint
						// (which hashes every access mode) keys them.
						key: store.Key{Model: m.Name(), Spec: graph.Hash128{}, Prog: progFP},
					})
				}
			}
		}
	}
	return cells
}

// VerifyMatrix runs the suite corpus incrementally: every cell the
// store has already decided is served by a hash lookup and its AMC run
// skipped; the remaining cells fan out across a worker pool (without
// fail-fast — the suite wants the whole matrix, not the first failure)
// and their decisive verdicts are appended to the store for the next
// run. With a warm store over an unchanged corpus the whole suite costs
// fingerprint hashing plus one log scan — no model checking at all.
func VerifyMatrix(cfg MatrixConfig) *MatrixResult {
	return VerifyMatrixCtx(context.Background(), cfg)
}

// VerifyMatrixCtx is VerifyMatrix with cooperative cancellation.
func VerifyMatrixCtx(ctx context.Context, cfg MatrixConfig) *MatrixResult {
	start := time.Now()
	if cfg.WorkersPerRun <= 0 {
		// Same normalization as VerifyPar/VerifySuitePar; the checker
		// itself clamps <1 to sequential, which is not what the
		// documented "0 = GOMAXPROCS" promises.
		cfg.WorkersPerRun = runtime.GOMAXPROCS(0)
	}
	cells := buildMatrix(&cfg)
	res := &MatrixResult{}
	var appended0 int
	if cfg.Store != nil {
		// The session is shared: pull in verdicts concurrent processes
		// appended since our last scan, so a suite started seconds
		// after another serves the overlap instead of recomputing it.
		// Best-effort — a closed or unreadable store degrades to
		// memory-only lookups and surfaces through StoreErr on Put.
		cfg.Store.Refresh()
		appended0 = cfg.Store.Stats().Appended
	}

	// Group the cells that need an AMC run by content address: cells
	// with identical keys are the same verification problem (a litmus
	// test whose weak and strong variants generate the same program,
	// two registry entries sharing a client shape), so one run serves
	// the whole group — the intra-run analogue of a store hit.
	groups := make(map[graph.Hash128][]int)
	var order []graph.Hash128
	for i := range cells {
		mc := &cells[i]
		if cfg.Store != nil {
			if v, ok := cfg.Store.Lookup(mc.key); ok {
				mc.cell.Verdict = v
				mc.cell.FromStore = true
				res.Hits++
				continue
			}
		}
		h := mc.key.Hash()
		if _, seen := groups[h]; !seen {
			order = append(order, h)
		}
		groups[h] = append(groups[h], i)
	}

	if len(order) > 0 {
		pool := core.NewPool(cfg.Parallelism)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, h := range order {
			group := groups[h]
			wg.Add(1)
			go func(group []int) {
				defer wg.Done()
				rep := &cells[group[0]]
				if cfg.Store != nil {
					// Re-check right before spending AMC work: with two
					// live suites on one store, the other process may have
					// decided this cell since our opening scan. The
					// Refresh is an incremental tail re-scan — cheap when
					// nothing changed — and a late hit serves the whole
					// group.
					cfg.Store.Refresh()
					if v, ok := cfg.Store.Lookup(rep.key); ok {
						for _, i := range group {
							mc := &cells[i]
							mc.cell.Verdict = v
							mc.cell.FromStore = true
						}
						mu.Lock()
						res.Hits += len(group)
						mu.Unlock()
						return
					}
				}
				c := core.New(mm.ByName(rep.cell.Model))
				if cfg.MaxGraphs > 0 {
					c.MaxGraphs = cfg.MaxGraphs
				}
				c.WorkersPerRun = cfg.WorkersPerRun
				// Crash-safety: the cell's checkpoint file shares the
				// store's content address, so a suite re-run over the
				// same corpus resumes exactly the cells a budget (or a
				// kill) left undecided.
				ckptPath := armCheckpoints(c, cfg.Budget, cfg.CheckpointDir, cfg.CheckpointInterval, rep.key)
				// One single-job RunAll per group (the pool still bounds
				// total concurrency) so each verdict is appended the
				// moment its run finishes: a long cold suite that is
				// interrupted keeps everything it decided so far.
				r := pool.RunAll(ctx, []core.Job{{Checker: c, Program: rep.prog}}, false)[0]
				var putErr error
				if cfg.Store != nil {
					putErr = cfg.Store.Put(rep.key, r.Verdict, rep.cell.Model+"/"+rep.cell.Program)
				}
				if err := finishCheckpoint(ckptPath, r); err != nil && putErr == nil {
					// Losing the snapshot does not taint the verdict, but
					// the caller believes the run is resumable; surface
					// through the same channel as append failures.
					putErr = err
				}
				conflict := errors.Is(putErr, store.ErrConflict)
				for n, i := range group {
					mc := &cells[i]
					mc.cell.Verdict = r.Verdict
					mc.cell.Err = r.Err
					if n == 0 {
						mc.cell.Duration = r.Duration
					} else {
						mc.cell.Deduped = true
					}
					if conflict {
						// A conflict means the keying broke; surface it as
						// a cell error rather than silently trusting
						// either side. A plain append failure is NOT a
						// cell error — the verdict is sound, it just was
						// not persisted (recorded in StoreErr below).
						mc.cell.Err = putErr
						mc.cell.Verdict = core.Error
					}
				}
				mu.Lock()
				if putErr != nil && !conflict && res.StoreErr == nil {
					res.StoreErr = putErr
				}
				res.Misses++
				res.Deduped += len(group) - 1
				mu.Unlock()
			}(group)
		}
		wg.Wait()
	}
	if cfg.Store != nil {
		// Count what the log actually gained, not what we offered it:
		// duplicate offers and indecisive verdicts append nothing.
		res.Stored = cfg.Store.Stats().Appended - appended0
	}

	for i := range cells {
		c := cells[i].cell
		if c.Verdict == core.Error || c.Verdict == Canceled {
			res.Errors++
		} else if c.Verdict == core.Undecided {
			res.Undecided++
		} else if !c.Litmus && c.Verdict != OK {
			res.Failures++
		}
		res.Cells = append(res.Cells, c)
	}
	res.Duration = time.Since(start)
	return res
}

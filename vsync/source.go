package vsync

import (
	"embed"

	"repro/internal/store"
)

// sourceFS carries this package's own .go sources for the verdict
// store's code epoch: VerifyMatrix builds store keys from model names
// and fingerprints, and a bug in that construction mis-keys records
// just as surely as a checker bug mis-judges them — fixing it must
// orphan everything the buggy build persisted.
//
//go:embed *.go
var sourceFS embed.FS

func init() { store.RegisterCodeSource("vsync", sourceFS) }

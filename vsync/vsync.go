// Package vsync is the public API of this reproduction of "VSync:
// Push-Button Verification and Optimization for Synchronization
// Primitives on Weak Memory Models" (Oberhauser et al., ASPLOS 2021).
//
// It exposes the three things VSync does:
//
//   - Verify: run Await Model Checking (AMC) on a concurrent program or
//     a lock's generic client — safety, mutual exclusion and await
//     termination on a weak memory model, in finite time, with
//     counterexample execution graphs on failure. Run is the one entry
//     point (single runs, parallel suites, verdict-store integration
//     via RunOptions); the Verify* names remain as thin wrappers.
//     Programs come from the structure-agnostic workload layer
//     (internal/workload): locks are one Workload family, the
//     nonblocking structures of internal/structs (Treiber stack,
//     Michael–Scott queue, seqlock) another — Workloads lists the
//     registry, WorkloadProgram builds a checkable program at any
//     supported thread count, and VerifyMatrix covers the structure
//     rows next to the lock × thread ladder.
//     Runs are crash-safe: RunOptions.Budget bounds a segment, and
//     CheckpointDir persists interrupted frontiers so a resumed run
//     reproduces the uninterrupted one exactly (see Resume and
//     Checkpoint). Symmetric thread groups (Program.SymGroups; the
//     generated lock clients declare theirs automatically) are explored
//     one canonical representative per thread-relabeling orbit, cutting
//     the state space by up to t! with identical verdicts, witnesses
//     and determinism guarantees; RunOptions.NoSymmetry is the
//     differential escape hatch.
//
//   - Optimize: push-button barrier relaxation — start from the all-SC
//     assignment and relax every barrier point as far as verification
//     allows (§3.3, Table 1).
//
//   - Benchmark: the §4.2 microbenchmark campaign of the sc-only vs
//     optimized variants on simulated ARMv8 and x86 platforms, plus the
//     table/figure emitters (Tables 2–5, Figs. 23–27).
//
// Quick start:
//
//	alg := vsync.LockByName("ttas")
//	res := vsync.VerifyLock(alg, alg.DefaultSpec(), 2, 1)
//	fmt.Println(res)                       // ok: N executions ...
//
//	opt, _ := vsync.OptimizeLock(alg, 2)   // relax from all-SC
//	fmt.Println(opt.Report())
package vsync

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/optimize"
	"repro/internal/vprog"
	"repro/internal/wmsim"
	"repro/internal/workload"
)

// Re-exported building blocks. The internal packages carry the full
// documentation; these aliases make the library usable from a single
// import.
type (
	// Program is a concurrent program: shared variables plus thread
	// closures over the Mem interface.
	Program = vprog.Program
	// Mem is the shared-memory interface thread code programs against.
	Mem = vprog.Mem
	// Var is a shared memory cell.
	Var = vprog.Var
	// Mode is a barrier mode (Rlx … SC).
	Mode = vprog.Mode
	// BarrierSpec assigns modes to an algorithm's barrier points.
	BarrierSpec = vprog.BarrierSpec
	// Algorithm is a registered lock implementation.
	Algorithm = locks.Algorithm
	// Result is a verification outcome with statistics and witness.
	Result = core.Result
	// Verdict classifies a verification outcome.
	Verdict = core.Verdict
	// OptResult is a barrier-optimization outcome.
	OptResult = optimize.Result
	// OptCache memoizes verification verdicts across optimization runs
	// (keyed by model, spec fingerprint and program shape).
	OptCache = optimize.Cache
	// Pool schedules AMC work across a bounded worker set — whole runs
	// and stolen intra-run exploration items through one scheduler.
	Pool = core.Pool
	// PoolStats is the per-worker accounting of a Pool.
	PoolStats = core.PoolStats
	// SchedStats is the work-graph scheduler accounting of one run
	// (active workers, steals, spills, shard contention).
	SchedStats = core.SchedStats
	// Model is a weak memory model (consistency predicate).
	Model = mm.Model
	// Machine is a simulated benchmark platform.
	Machine = wmsim.Machine
	// BenchConfig parameterizes the evaluation campaign.
	BenchConfig = bench.Config
	// BenchRecord is one raw measurement (Table 2 row).
	BenchRecord = bench.Record
	// AMCSuite is the checker hot-path benchmark artifact
	// (BENCH_amc.json): graphs/sec, ns/run and allocs/run per target.
	AMCSuite = bench.AMCSuite
	// AMCResult is one measured target of an AMCSuite.
	AMCResult = bench.AMCResult
	// Workload is one named family of verification programs over a
	// thread count — the structure-agnostic seam locks and nonblocking
	// structures are both built on (internal/workload).
	Workload = workload.Workload
)

// Barrier modes.
const (
	ModeNone = vprog.ModeNone
	Rlx      = vprog.Rlx
	Acq      = vprog.Acq
	Rel      = vprog.Rel
	AcqRel   = vprog.AcqRel
	SC       = vprog.SC
)

// Verdicts.
const (
	OK              = core.OK
	SafetyViolation = core.SafetyViolation
	ATViolation     = core.ATViolation
	Canceled        = core.Canceled
	// Undecided marks a run stopped by a Budget limit (or a
	// checkpointing cancellation) with the search incomplete; the
	// result carries a Checkpoint to resume from.
	Undecided = core.Undecided
)

// Memory models.
var (
	// ModelSC is sequential consistency.
	ModelSC = mm.SC
	// ModelTSO is x86-style total store order.
	ModelTSO = mm.TSO
	// ModelWMM is the RC11-flavoured weak model standing in for IMM.
	ModelWMM = mm.WMM
)

// Verify model-checks an arbitrary program under the given model with
// the historical sequential explorer.
//
// Deprecated: use Run — Verify(m, p) is Run(m, []*Program{p},
// RunOptions{Parallelism: 1, WorkersPerRun: 1, CollectResults: true}).Results[0].
// Programs themselves are best built through the workload layer
// (WorkloadProgram, or MutexClient for a lock's generic client).
func Verify(model Model, p *Program) *Result {
	return VerifyPar(model, p, 1)
}

// VerifyPar is Verify with intra-run work stealing: the single run's
// exploration frontier is shared by up to workersPerRun workers
// (0 = GOMAXPROCS, 1 = sequential). The verdict always agrees with the
// sequential explorer; among parallel runs (workersPerRun > 1) the
// execution count and counterexample are additionally identical at
// every worker count, because they explore to completion and merge
// deterministically — the sequential explorer instead stops at its
// first DFS counterexample, so on violating programs its statistics
// and witness reflect that partial search.
//
// Deprecated: use Run with RunOptions.WorkersPerRun; programs come
// from the workload layer (WorkloadProgram / MutexClient).
func VerifyPar(model Model, p *Program, workersPerRun int) *Result {
	rr := Run(model, []*Program{p}, RunOptions{
		Parallelism:    1,
		WorkersPerRun:  workersPerRun,
		CollectResults: true,
	})
	return rr.Results[0]
}

// VerifySuite model-checks several programs concurrently: the runs fan
// out across a pool of parallelism workers (0 = GOMAXPROCS) and the
// first failure cancels the rest. It returns the failing result and the
// index of its program, or an OK result (with aggregated statistics)
// and -1 when every program verifies.
//
// Deprecated: use Run with RunOptions.Parallelism; program suites come
// from the workload layer (WorkloadProgram / MutexClient).
func VerifySuite(model Model, parallelism int, ps []*Program) (*Result, int) {
	return VerifySuitePar(model, parallelism, 1, ps)
}

// VerifySuitePar is VerifySuite with both parallel axes exposed:
// parallelism bounds the concurrent whole runs, and workersPerRun
// (0 = GOMAXPROCS) lets each run's exploration frontier additionally be
// worked by stolen intra-run items on pool slots that would otherwise
// idle (for example once only the biggest run is still going). Whole
// runs keep priority over borrows, so workersPerRun > 1 never slows the
// fan-out down.
//
// Deprecated: use Run with RunOptions{Parallelism, WorkersPerRun};
// program suites come from the workload layer (WorkloadProgram /
// MutexClient).
func VerifySuitePar(model Model, parallelism, workersPerRun int, ps []*Program) (*Result, int) {
	rr := Run(model, ps, RunOptions{Parallelism: parallelism, WorkersPerRun: workersPerRun})
	return rr.Result, rr.Failed
}

// VerifySuiteResults is VerifySuitePar additionally exposing every
// job's individual result: programs that completed before a fail-fast
// cancellation keep their decisive verdicts (the canceled remainder
// report Canceled). Callers persisting verdicts use this so the work
// finished before a failure is not thrown away — the verdict store
// exists to avoid re-doing exactly that work.
//
// Deprecated: use Run with RunOptions.CollectResults (and
// RunOptions.Store, which persists decisive verdicts without any
// caller-side plumbing); program suites come from the workload layer
// (WorkloadProgram / MutexClient).
func VerifySuiteResults(model Model, parallelism, workersPerRun int, ps []*Program) (*Result, int, []*Result) {
	rr := Run(model, ps, RunOptions{
		Parallelism:    parallelism,
		WorkersPerRun:  workersPerRun,
		CollectResults: true,
	})
	return rr.Result, rr.Failed, rr.Results
}

// VerifyLock model-checks a lock algorithm under WMM with the paper's
// generic mutex client: nthreads threads each perform iters lock-
// protected increments; AMC checks mutual exclusion, hand-off ordering
// and await termination.
func VerifyLock(alg *Algorithm, spec *BarrierSpec, nthreads, iters int) *Result {
	return Verify(ModelWMM, harness.MutexClient(alg, spec, nthreads, iters))
}

// NewPool returns a worker pool for fanning out AMC runs
// (workers <= 0 selects GOMAXPROCS).
func NewPool(workers int) *Pool { return core.NewPool(workers) }

// NewOptCache returns an empty verdict cache to share across
// optimization runs.
func NewOptCache() *OptCache { return optimize.NewCache() }

// Locks returns every registered algorithm (including the buggy study-
// case variants, marked Buggy).
func Locks() []*Algorithm { return locks.All() }

// LockByName returns a registered algorithm or nil.
func LockByName(name string) *Algorithm { return locks.ByName(name) }

// MutexClient builds the paper's generic client program for a lock.
func MutexClient(alg *Algorithm, spec *BarrierSpec, nthreads, iters int) *Program {
	return harness.MutexClient(alg, spec, nthreads, iters)
}

// Workloads returns every registered workload (including the Buggy
// seeded-bug study variants) in stable name order. internal/structs
// registers the nonblocking structures at init.
func Workloads() []Workload { return workload.All() }

// WorkloadByName returns a registered workload or nil.
func WorkloadByName(name string) Workload { return workload.ByName(name) }

// WorkloadProgram builds w's verification program at nthreads under
// spec (nil selects the workload's default barrier assignment). It
// panics when nthreads is outside the workload's supported range.
func WorkloadProgram(w Workload, spec *BarrierSpec, nthreads int) *Program {
	return workload.Program(w, spec, nthreads)
}

// OptimizeOptions tunes the optimizer's parallel verification engine.
// The final spec is identical whatever the settings; they only change
// how fast (and with how much speculative work) it is reached.
type OptimizeOptions struct {
	// Parallelism bounds concurrent AMC runs: 0 = GOMAXPROCS, 1 =
	// strictly sequential.
	Parallelism int
	// WorkersPerRun lets each AMC run additionally share its
	// exploration frontier with idle pool slots via intra-run work
	// stealing (0 or 1 = off). Late in a speculative ladder, when only
	// the slowest candidate is still verifying, its run soaks up the
	// slots its finished siblings released. Note the trade-off: a
	// parallel run explores to completion on violations (for
	// deterministic merging), so candidates expected to FAIL lose the
	// sequential early exit — worth it for big verifying runs, not for
	// descents dominated by failing candidates.
	WorkersPerRun int
	// Speculate races each point's candidate modes concurrently and
	// accepts the weakest verified one.
	Speculate bool
	// Cache memoizes verdicts across candidates and passes. A nil Cache
	// with CacheOn set uses a fresh private cache.
	CacheOn bool
	// Cache, when non-nil, is used (and shared) instead of a private
	// one; it implies CacheOn.
	Cache *OptCache
	// Passes caps full point sweeps (0 or 1 = single pass).
	Passes int
	// MaxGraphs bounds each AMC run (0 = checker default).
	MaxGraphs int
}

// DefaultOptimizeOptions is the fast push-button configuration:
// GOMAXPROCS workers, speculative ladders, memoization on. Intra-run
// stealing stays off: the descent is dominated by failing candidates,
// which want the sequential early exit (see WorkersPerRun).
func DefaultOptimizeOptions() OptimizeOptions {
	return OptimizeOptions{Parallelism: 0, Speculate: true, CacheOn: true}
}

// Optimize runs the barrier-relaxation search with explicit engine
// options; programs builds the client suite a candidate spec must
// verify, initial is the (verified) starting assignment.
func Optimize(model Model, programs func(*BarrierSpec) []*Program, initial *BarrierSpec, opts OptimizeOptions) (*OptResult, error) {
	cache := opts.Cache
	if cache == nil && opts.CacheOn {
		cache = optimize.NewCache()
	}
	opt := &optimize.Optimizer{
		Model:         model,
		Programs:      programs,
		MaxGraphs:     opts.MaxGraphs,
		Passes:        opts.Passes,
		Parallelism:   opts.Parallelism,
		WorkersPerRun: opts.WorkersPerRun,
		Speculate:     opts.Speculate,
		Cache:         cache,
	}
	return opt.Run(initial)
}

// OptimizeLock relaxes a lock's barriers from the all-SC baseline until
// maximally relaxed while the nthreads-client still verifies under WMM,
// using the fast default engine options.
func OptimizeLock(alg *Algorithm, nthreads int) (*OptResult, error) {
	return Optimize(ModelWMM, func(spec *BarrierSpec) []*Program {
		return []*Program{harness.MutexClient(alg, spec, nthreads, 1)}
	}, alg.DefaultSpec().AllSC(), DefaultOptimizeOptions())
}

// OptimizeWith runs the optimizer with a caller-supplied client set and
// starting spec (for multi-client searches like the qspinlock study),
// using the fast default engine options.
func OptimizeWith(model Model, programs func(*BarrierSpec) []*Program, initial *BarrierSpec) (*OptResult, error) {
	return Optimize(model, programs, initial, DefaultOptimizeOptions())
}

// Machines returns the simulated evaluation platforms (ARMv8, x86_64).
func Machines() []*Machine { return wmsim.Machines() }

// DefaultBench returns the full §4.2 campaign configuration,
// QuickBench a reduced one.
func DefaultBench() BenchConfig { return bench.Default() }

// QuickBench returns a fast campaign for smoke runs.
func QuickBench() BenchConfig { return bench.Quick() }

// RunBench executes a campaign and returns the raw records.
func RunBench(cfg BenchConfig) []BenchRecord { return bench.RunCampaign(cfg) }

// RunAMCBench measures the checker's own hot path (every litmus test
// and representative lock client) with the given number of measured
// runs per target; WriteJSON on the result produces BENCH_amc.json.
func RunAMCBench(runs int) AMCSuite { return bench.RunAMCSuite(runs) }

// BenchReport runs a campaign and renders Tables 2–5 and Figs. 23–26.
func BenchReport(cfg BenchConfig) string { return bench.CampaignReport(cfg) }

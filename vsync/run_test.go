package vsync_test

import (
	"path/filepath"
	"testing"

	"repro/internal/locks"
	"repro/vsync"
)

// goodProgram is a small verifying client; badProgram a violating one.
func goodProgram(t *testing.T) *vsync.Program {
	t.Helper()
	alg := locks.ByName("ttas")
	if alg == nil {
		t.Fatal("ttas not registered")
	}
	return vsync.MutexClient(alg, alg.DefaultSpec(), 2, 1)
}

func badProgram(t *testing.T) *vsync.Program {
	t.Helper()
	for _, alg := range locks.All() {
		if alg.Buggy {
			return vsync.MutexClient(alg, alg.DefaultSpec(), 2, 1)
		}
	}
	t.Skip("no buggy study-case lock registered")
	return nil
}

// TestRunWrapperDifferential: the deprecated Verify* family must
// behave identically to the Run calls they now wrap — same verdicts,
// same statistics, same fail-fast reduction — so external callers are
// not broken by the consolidation.
func TestRunWrapperDifferential(t *testing.T) {
	good := goodProgram(t)
	bad := badProgram(t)

	// Verify vs Run, verifying program.
	vr := vsync.Verify(vsync.ModelWMM, good)
	rr := vsync.Run(vsync.ModelWMM, []*vsync.Program{good},
		vsync.RunOptions{Parallelism: 1, WorkersPerRun: 1, CollectResults: true})
	if vr.Verdict != vsync.OK || rr.Results[0].Verdict != vsync.OK {
		t.Fatalf("verdicts: Verify=%v Run=%v, want OK", vr.Verdict, rr.Results[0].Verdict)
	}
	if vr.Stats.Executions != rr.Results[0].Stats.Executions {
		t.Errorf("execution counts diverge: Verify=%d Run=%d",
			vr.Stats.Executions, rr.Results[0].Stats.Executions)
	}
	if rr.Failed != -1 {
		t.Errorf("Run.Failed = %d on a verifying program, want -1", rr.Failed)
	}

	// Verify vs Run, violating program: same verdict, same witness
	// presence (sequential early-exit statistics on both sides).
	vb := vsync.Verify(vsync.ModelWMM, bad)
	rb := vsync.Run(vsync.ModelWMM, []*vsync.Program{bad},
		vsync.RunOptions{Parallelism: 1, WorkersPerRun: 1, CollectResults: true})
	if vb.Verdict == vsync.OK {
		t.Fatal("buggy program verified")
	}
	if vb.Verdict != rb.Results[0].Verdict {
		t.Errorf("failure verdicts diverge: Verify=%v Run=%v", vb.Verdict, rb.Results[0].Verdict)
	}
	if (vb.Witness == nil) != (rb.Results[0].Witness == nil) {
		t.Errorf("witness presence diverges: Verify=%v Run=%v", vb.Witness != nil, rb.Results[0].Witness != nil)
	}
	if vb.Stats.Executions != rb.Results[0].Stats.Executions {
		t.Errorf("failure execution counts diverge: Verify=%d Run=%d",
			vb.Stats.Executions, rb.Results[0].Stats.Executions)
	}

	// VerifyPar at 2 workers: parallel exploration is deterministic,
	// so wrapper and Run must agree exactly.
	vp := vsync.VerifyPar(vsync.ModelWMM, bad, 2)
	rp := vsync.Run(vsync.ModelWMM, []*vsync.Program{bad},
		vsync.RunOptions{Parallelism: 1, WorkersPerRun: 2, CollectResults: true})
	if vp.Verdict != rp.Results[0].Verdict || vp.Stats.Executions != rp.Results[0].Stats.Executions {
		t.Errorf("VerifyPar(2) diverges from Run: %v/%d vs %v/%d",
			vp.Verdict, vp.Stats.Executions, rp.Results[0].Verdict, rp.Results[0].Stats.Executions)
	}

	// Suite reduction: a failure mid-suite fail-fasts, the aggregate
	// on success sums statistics — wrapper and Run must match on both.
	ps := []*vsync.Program{good, bad, good}
	sr, sfailed, sresults := vsync.VerifySuiteResults(vsync.ModelWMM, 1, 1, ps)
	runr := vsync.Run(vsync.ModelWMM, ps, vsync.RunOptions{Parallelism: 1, WorkersPerRun: 1, CollectResults: true})
	if sfailed != 1 || runr.Failed != 1 {
		t.Fatalf("failed index: wrapper=%d Run=%d, want 1", sfailed, runr.Failed)
	}
	if sr.Verdict != runr.Result.Verdict {
		t.Errorf("suite failure verdicts diverge: %v vs %v", sr.Verdict, runr.Result.Verdict)
	}
	if len(sresults) != len(runr.Results) {
		t.Fatalf("result counts diverge: %d vs %d", len(sresults), len(runr.Results))
	}
	for i := range sresults {
		if sresults[i].Verdict != runr.Results[i].Verdict {
			t.Errorf("suite result %d diverges: %v vs %v", i, sresults[i].Verdict, runr.Results[i].Verdict)
		}
	}

	okPs := []*vsync.Program{good, good}
	ar, af := vsync.VerifySuite(vsync.ModelWMM, 2, okPs)
	arr := vsync.Run(vsync.ModelWMM, okPs, vsync.RunOptions{Parallelism: 2, WorkersPerRun: 1})
	if af != -1 || arr.Failed != -1 {
		t.Fatalf("all-OK suite failed: wrapper=%d Run=%d", af, arr.Failed)
	}
	if ar.Verdict != vsync.OK || arr.Result.Verdict != vsync.OK {
		t.Fatalf("aggregate verdicts: wrapper=%v Run=%v", ar.Verdict, arr.Result.Verdict)
	}
	if ar.Stats.Executions != arr.Result.Stats.Executions {
		t.Errorf("aggregate executions diverge: %d vs %d", ar.Stats.Executions, arr.Result.Stats.Executions)
	}
	if arr.Results != nil {
		t.Error("Run without CollectResults retained Results")
	}
}

// TestRunWithStore: Run's store integration — cold run populates,
// warm run is served without AMC work, and a stored failure fail-fasts
// before any run.
func TestRunWithStore(t *testing.T) {
	good := goodProgram(t)
	bad := badProgram(t)
	st, err := vsync.OpenStore(filepath.Join(t.TempDir(), "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ps := []*vsync.Program{good, bad}
	cold := vsync.Run(vsync.ModelWMM, ps, vsync.RunOptions{Parallelism: 1, Store: st, CollectResults: true})
	if cold.StoreHits != 0 || cold.Failed != 1 {
		t.Fatalf("cold run: hits=%d failed=%d, want 0 and 1", cold.StoreHits, cold.Failed)
	}
	if cold.StoreErr != nil {
		t.Fatalf("cold run store error: %v", cold.StoreErr)
	}

	warm := vsync.Run(vsync.ModelWMM, ps, vsync.RunOptions{Parallelism: 1, Store: st, CollectResults: true})
	if warm.StoreHits == 0 {
		t.Fatalf("warm run hit nothing")
	}
	if warm.Failed != 1 || warm.Result.Verdict != cold.Result.Verdict {
		t.Fatalf("warm run diverges: failed=%d verdict=%v, cold failed=%d verdict=%v",
			warm.Failed, warm.Result.Verdict, cold.Failed, cold.Result.Verdict)
	}
	if !warm.FromStore[1] {
		t.Error("failing program's verdict not marked FromStore on the warm run")
	}

	// A dead store surfaces in StoreErr without tainting verdicts.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	dead := vsync.Run(vsync.ModelWMM, []*vsync.Program{good}, vsync.RunOptions{Parallelism: 1, Store: st})
	if dead.Failed != -1 || dead.Result.Verdict != vsync.OK {
		t.Fatalf("dead-store run tainted the verdict: %+v", dead.Result)
	}
	if dead.StoreErr == nil {
		t.Error("append to a closed store vanished: StoreErr is nil")
	}
}

// TestRunStoreKeys: spec-aware callers address the store with full
// keys; the two runs must share records through them.
func TestRunStoreKeys(t *testing.T) {
	alg := locks.ByName("ttas")
	spec := alg.DefaultSpec()
	p := vsync.MutexClient(alg, spec, 2, 1)
	key := vsync.StoreKey{Model: vsync.ModelWMM.Name(), Spec: spec.Fingerprint128(), Prog: p.Fingerprint128()}

	st, err := vsync.OpenStore(filepath.Join(t.TempDir(), "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rr := vsync.Run(vsync.ModelWMM, []*vsync.Program{p}, vsync.RunOptions{
		Parallelism: 1, Store: st, StoreKeys: []vsync.StoreKey{key},
	})
	if rr.Failed != -1 || rr.StoreErr != nil {
		t.Fatalf("keyed run: %+v", rr)
	}
	if v, ok := st.Lookup(key); !ok || v != vsync.OK {
		t.Fatalf("verdict not stored under the caller's key: (%v, %v)", v, ok)
	}
	// VerifyMatrix uses the same addressing for lock cells, so the
	// record must also serve a matrix run of the same cell.
	res := vsync.VerifyMatrix(vsync.MatrixConfig{
		Locks: []*vsync.Algorithm{alg}, Models: []vsync.Model{vsync.ModelWMM},
		NoLitmus: true, NoStructs: true, Store: st,
	})
	if res.Hits != len(res.Cells) {
		t.Errorf("matrix did not hit the Run-stored verdict: %s", res.Summary())
	}
}

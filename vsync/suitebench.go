package vsync

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// The suite benchmark tracks the verdict store's latency win the same
// way BENCH_amc.json tracks raw checker throughput: one cold
// vsyncsuite pass over a fresh store (every cell model-checked, every
// verdict persisted) followed by a warm pass over the same store (every
// cell served by a hash lookup), recorded as a machine-readable
// artifact (BENCH_suite.json, schema "suite-bench/v1").

// SuitePhase is one recorded vsyncsuite pass.
type SuitePhase struct {
	Phase   string  `json:"phase"` // "cold" or "warm"
	Cells   int     `json:"cells"`
	Hits    int     `json:"hits"`    // cells served by the store
	Misses  int     `json:"misses"`  // AMC runs performed
	Deduped int     `json:"deduped"` // cells served by an identical-key run
	Stored  int     `json:"stored"`  // records appended to the store
	HitRate float64 `json:"hit_rate"`
	WallMs  float64 `json:"wall_ms"`
}

// SuiteBench is the artifact written to BENCH_suite.json.
type SuiteBench struct {
	Schema  string       `json:"schema"` // "suite-bench/v1"
	Go      string       `json:"go"`
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	CPUs    int          `json:"cpus"`
	Date    string       `json:"date"`
	Threads int          `json:"threads"` // client thread-count ladder top
	Phases  []SuitePhase `json:"phases"`
}

// RunSuiteBench runs the full suite corpus (locks × thread ladder up
// to threads × models, plus litmus) twice against a store created in a
// fresh temporary directory — cold, then warm — and records both
// passes. workers sets the intra-run work-stealing width of each AMC
// run (0 = GOMAXPROCS, 1 = sequential). The store is discarded
// afterwards; this benchmark measures the store, it does not populate
// the user's.
func RunSuiteBench(threads, workers int) (SuiteBench, error) {
	if threads < 2 {
		threads = 2
	}
	b := SuiteBench{
		Schema:  "suite-bench/v1",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Date:    time.Now().UTC().Format(time.RFC3339),
		Threads: threads,
	}
	dir, err := os.MkdirTemp("", "vsync-suite-bench")
	if err != nil {
		return b, err
	}
	defer os.RemoveAll(dir)
	st, err := OpenStore(filepath.Join(dir, "verdicts.log"))
	if err != nil {
		return b, err
	}
	defer st.Close()

	for _, phase := range []string{"cold", "warm"} {
		start := time.Now()
		res := VerifyMatrix(MatrixConfig{MaxThreads: threads, WorkersPerRun: workers, Store: st})
		wall := time.Since(start)
		if res.Errors > 0 {
			return b, fmt.Errorf("suite bench %s pass: %d engine errors", phase, res.Errors)
		}
		if res.StoreErr != nil {
			return b, fmt.Errorf("suite bench %s pass: store append failed: %v", phase, res.StoreErr)
		}
		b.Phases = append(b.Phases, SuitePhase{
			Phase:   phase,
			Cells:   len(res.Cells),
			Hits:    res.Hits,
			Misses:  res.Misses,
			Deduped: res.Deduped,
			Stored:  res.Stored,
			HitRate: res.HitRate(),
			WallMs:  float64(wall.Microseconds()) / 1000,
		})
	}
	return b, nil
}

// WriteJSON writes the artifact to path.
func (b SuiteBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the two passes side by side.
func (b SuiteBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "suite store benchmark (%s %s/%s, %d cpus, thread ladder 2..%d)\n",
		b.Go, b.GOOS, b.GOARCH, b.CPUs, b.Threads)
	fmt.Fprintf(&sb, "%-6s %7s %7s %8s %8s %8s %10s %12s\n",
		"phase", "cells", "hits", "misses", "deduped", "stored", "hit-rate", "wall")
	for _, p := range b.Phases {
		fmt.Fprintf(&sb, "%-6s %7d %7d %8d %8d %8d %9.1f%% %11.1fms\n",
			p.Phase, p.Cells, p.Hits, p.Misses, p.Deduped, p.Stored, 100*p.HitRate, p.WallMs)
	}
	if len(b.Phases) == 2 && b.Phases[1].WallMs > 0 {
		fmt.Fprintf(&sb, "cold/warm wall ratio: %.1fx\n", b.Phases[0].WallMs/b.Phases[1].WallMs)
	}
	return sb.String()
}

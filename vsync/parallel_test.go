package vsync_test

import (
	"strings"
	"testing"

	"repro/vsync"
)

// TestVerifySuiteOK: the suite fan-out verifies a batch of correct
// locks and aggregates their statistics.
func TestVerifySuiteOK(t *testing.T) {
	var ps []*vsync.Program
	for _, name := range []string{"spin", "ttas", "ticket"} {
		alg := vsync.LockByName(name)
		ps = append(ps, vsync.MutexClient(alg, alg.DefaultSpec(), 2, 1))
	}
	res, failed := vsync.VerifySuite(vsync.ModelWMM, 4, ps)
	if failed != -1 {
		t.Fatalf("suite failed at program %d: %v", failed, res)
	}
	if !res.Ok() || res.Stats.Executions == 0 {
		t.Fatalf("aggregate result looks wrong: %v", res)
	}
}

// TestVerifySuiteFailFast: a buggy member fails the suite and is
// identified by index; its siblings are short-circuited, not misjudged.
func TestVerifySuiteFailFast(t *testing.T) {
	good := vsync.LockByName("mcs")
	bad := vsync.LockByName("huaweimcs-buggy")
	ps := []*vsync.Program{
		vsync.MutexClient(good, good.DefaultSpec(), 2, 1),
		vsync.MutexClient(bad, bad.DefaultSpec(), 2, 1),
		vsync.MutexClient(good, good.DefaultSpec(), 3, 1),
	}
	res, failed := vsync.VerifySuite(vsync.ModelWMM, 2, ps)
	if failed != 1 {
		t.Fatalf("failed index = %d, want 1 (%v)", failed, res)
	}
	if res.Verdict != vsync.SafetyViolation {
		t.Fatalf("verdict = %v, want safety violation", res.Verdict)
	}
}

// TestFacadeOptimizeOptions: the options path works end to end and the
// report carries the engine accounting.
func TestFacadeOptimizeOptions(t *testing.T) {
	alg := vsync.LockByName("ttas")
	cache := vsync.NewOptCache()
	res, err := vsync.Optimize(vsync.ModelWMM, func(spec *vsync.BarrierSpec) []*vsync.Program {
		return []*vsync.Program{vsync.MutexClient(alg, spec, 2, 1)}
	}, alg.DefaultSpec().AllSC(), vsync.OptimizeOptions{
		Parallelism: 2, Speculate: true, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.M("ttas.poll") != vsync.Rlx {
		t.Fatalf("unexpected result:\n%s", res.Report())
	}
	rep := res.Report()
	if !strings.Contains(rep, "cache:") || !strings.Contains(rep, "worker") {
		t.Errorf("report missing engine accounting:\n%s", rep)
	}
	if cache.Len() == 0 {
		t.Error("shared cache not populated")
	}
}

package vsync_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/locks"
	"repro/vsync"
)

// TestRunBudgetResumeDifferential: a budgeted Run that hits its limit
// must return Undecided with a resumable checkpoint, and driving the
// Resume loop to completion must reproduce the uninterrupted run's
// verdict and statistics exactly — segmentation is invisible in the
// answer.
func TestRunBudgetResumeDifferential(t *testing.T) {
	p := goodProgram(t)
	base := vsync.Verify(vsync.ModelWMM, p)
	if base.Verdict != vsync.OK {
		t.Fatalf("baseline: %v", base.Verdict)
	}

	rr := vsync.Run(vsync.ModelWMM, []*vsync.Program{p}, vsync.RunOptions{
		Parallelism:   1,
		WorkersPerRun: 1,
		Budget:        vsync.Budget{MaxGraphs: 7},
	})
	if rr.Result.Verdict != vsync.Undecided {
		t.Fatalf("budgeted run verdict %v, want Undecided", rr.Result.Verdict)
	}
	if rr.Result.Checkpoint == nil {
		t.Fatal("Undecided result carries no checkpoint")
	}

	res, segments := rr.Result, 1
	for res.Verdict == vsync.Undecided {
		if segments > 10_000 {
			t.Fatal("resume loop does not converge")
		}
		res = vsync.Resume(vsync.ModelWMM, p, res.Checkpoint, vsync.RunOptions{
			WorkersPerRun: 1,
			Budget:        vsync.Budget{MaxGraphs: 7},
		})
		segments++
	}
	if segments < 2 {
		t.Fatalf("budget of 7 graphs finished in %d segment(s); it did not actually segment", segments)
	}
	if res.Verdict != base.Verdict {
		t.Fatalf("segmented verdict %v, baseline %v", res.Verdict, base.Verdict)
	}
	if res.Stats != base.Stats {
		t.Errorf("segmented stats %+v diverge from baseline %+v", res.Stats, base.Stats)
	}
}

// TestResumeRefusesForeignCheckpoint: a checkpoint stamped with a
// different code epoch, or presented with the wrong program, must be
// refused with an Error — never silently explored.
func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	p := goodProgram(t)
	rr := vsync.Run(vsync.ModelWMM, []*vsync.Program{p}, vsync.RunOptions{
		Parallelism: 1, WorkersPerRun: 1, Budget: vsync.Budget{MaxGraphs: 5},
	})
	ck := rr.Result.Checkpoint
	if ck == nil {
		t.Fatal("no checkpoint to tamper with")
	}

	ck.Epoch = graph.Hash128{0xbad, 0xbeef}
	if r := vsync.Resume(vsync.ModelWMM, p, ck, vsync.RunOptions{}); r.Err == nil || r.Verdict == vsync.OK {
		t.Fatalf("foreign-epoch resume: verdict %v err %v, want Error", r.Verdict, r.Err)
	}

	ck.Epoch = graph.Hash128{} // unstamped: identity still validated by core
	other := badProgram(t)
	if r := vsync.Resume(vsync.ModelWMM, other, ck, vsync.RunOptions{}); r.Err == nil {
		t.Fatalf("wrong-program resume: verdict %v, want Error", r.Verdict)
	}

	if r := vsync.Resume(vsync.ModelWMM, p, nil, vsync.RunOptions{}); r.Err == nil {
		t.Fatal("nil-checkpoint resume did not error")
	}
}

// TestRunCheckpointDir: with a checkpoint directory, budgeted Run calls
// persist their interrupted frontier to a content-addressed file and
// later calls resume from it automatically — repeat the same Run until
// the verdict is decisive, then the file must be retired.
func TestRunCheckpointDir(t *testing.T) {
	p := goodProgram(t)
	base := vsync.Verify(vsync.ModelWMM, p)
	dir := t.TempDir()

	opts := vsync.RunOptions{
		Parallelism:    1,
		WorkersPerRun:  1,
		CollectResults: true,
		Budget:         vsync.Budget{MaxGraphs: 7},
		CheckpointDir:  dir,
	}
	var res *vsync.Result
	calls := 0
	for {
		calls++
		if calls > 10_000 {
			t.Fatal("checkpoint-dir run loop does not converge")
		}
		res = vsync.Run(vsync.ModelWMM, []*vsync.Program{p}, opts).Results[0]
		if res.Verdict != vsync.Undecided {
			break
		}
		if n := ckptFiles(t, dir); n != 1 {
			t.Fatalf("after undecided segment: %d checkpoint files, want 1", n)
		}
	}
	if calls < 2 {
		t.Fatal("run decided within one segment; budget did not bite")
	}
	if res.Verdict != base.Verdict {
		t.Fatalf("verdict %v, baseline %v", res.Verdict, base.Verdict)
	}
	if res.Stats != base.Stats {
		t.Errorf("stats %+v diverge from baseline %+v", res.Stats, base.Stats)
	}
	if n := ckptFiles(t, dir); n != 0 {
		t.Errorf("decisive verdict left %d checkpoint file(s) behind", n)
	}
}

// TestMatrixBudgetResume: a budgeted VerifyMatrix leaves the expensive
// cells Undecided (neither failures nor errors) with checkpoints on
// disk; re-running the same config must resume them — strictly fewer
// undecided cells each pass — and the converged matrix must be
// differentially identical to an unbudgeted run.
func TestMatrixBudgetResume(t *testing.T) {
	// Storeless on purpose (the checkpoint dir alone carries progress),
	// so convergence needs every cell to land on the same pass — keep
	// the corpus to the three mcs cells this test was calibrated for.
	cfg := vsync.MatrixConfig{
		Locks:      []*vsync.Algorithm{locks.ByName("mcs")},
		NoStructs:  true,
		MaxThreads: 2,
		NoLitmus:   true,
	}
	baseline := vsync.VerifyMatrix(cfg)
	if baseline.Errors > 0 || baseline.Failures > 0 {
		t.Fatalf("baseline: %s", baseline.Summary())
	}

	dir := t.TempDir()
	cfg.Budget = vsync.Budget{MaxGraphs: 40}
	cfg.CheckpointDir = dir
	cfg.WorkersPerRun = 1
	cfg.Parallelism = 1

	first := vsync.VerifyMatrix(cfg)
	if first.Undecided == 0 {
		t.Fatalf("40-graph budget decided the whole mcs matrix: %s", first.Summary())
	}
	if first.Errors > 0 || first.Failures > 0 {
		t.Fatalf("undecided cells misclassified: %s", first.Summary())
	}
	if n := ckptFiles(t, dir); n == 0 {
		t.Fatal("undecided cells left no checkpoint files")
	}

	// Every pass grants each undecided cell a fresh 40-graph segment, so
	// the whole matrix must converge within a small bounded number of
	// passes (the largest cell is a few hundred pops). The undecided
	// count itself need not shrink every pass — cells of different sizes
	// finish on different passes.
	last, passes := first, 1
	for last.Undecided > 0 {
		if passes > 100 {
			t.Fatalf("matrix resume loop does not converge: still %d undecided", last.Undecided)
		}
		last, passes = vsync.VerifyMatrix(cfg), passes+1
	}
	if passes < 2 {
		t.Fatal("matrix converged in one pass; budget did not bite")
	}
	if n := ckptFiles(t, dir); n != 0 {
		t.Errorf("converged matrix left %d checkpoint file(s)", n)
	}

	want := verdictMap(t, baseline)
	got := verdictMap(t, last)
	if len(got) != len(want) {
		t.Fatalf("converged run covers %d cells, baseline %d", len(got), len(want))
	}
	for key, v := range want {
		if got[key] != v {
			t.Errorf("cell %s: converged verdict %v, baseline %v", key, got[key], v)
		}
	}
}

// TestCheckpointFileAPI: the exported file round-trip, plus the
// stale-epoch ignore path — a checkpoint from "another build" in the
// directory must not poison a fresh run.
func TestCheckpointFileAPI(t *testing.T) {
	p := goodProgram(t)
	rr := vsync.Run(vsync.ModelWMM, []*vsync.Program{p}, vsync.RunOptions{
		Parallelism: 1, WorkersPerRun: 1, Budget: vsync.Budget{MaxGraphs: 5},
	})
	ck := rr.Result.Checkpoint
	if ck == nil {
		t.Fatal("no checkpoint")
	}
	ck.Epoch = graph.Hash128{1, 2} // "another build"

	dir := t.TempDir()
	key := vsync.StoreKey{Model: vsync.ModelWMM.Name(), Prog: p.Fingerprint128()}
	path := vsync.CheckpointPath(dir, key)
	if err := vsync.WriteCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := vsync.LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != ck.Epoch || got.FrontierLen() != ck.FrontierLen() {
		t.Fatalf("round-trip mismatch: epoch %v/%v frontier %d/%d",
			got.Epoch, ck.Epoch, got.FrontierLen(), ck.FrontierLen())
	}

	// A fresh run over the same key must ignore the stale-epoch file
	// (start from scratch, same verdict as ever) rather than resume or
	// error.
	res := vsync.Run(vsync.ModelWMM, []*vsync.Program{p}, vsync.RunOptions{
		Parallelism: 1, WorkersPerRun: 1, CollectResults: true, CheckpointDir: dir,
	}).Results[0]
	if res.Verdict != vsync.OK {
		t.Fatalf("run with stale checkpoint in dir: %v (err %v)", res.Verdict, res.Err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("decisive run did not retire the stale checkpoint file")
	}
}

// ckptFiles counts *.ckpt files in dir, failing on leftover temp files
// (atomic-write litter).
func ckptFiles(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		switch {
		case filepath.Ext(e.Name()) == ".ckpt":
			n++
		default:
			t.Fatalf("unexpected file in checkpoint dir: %s", e.Name())
		}
	}
	return n
}

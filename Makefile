# CI and humans run the exact same commands: the workflow in
# .github/workflows/ci.yml calls these targets and nothing else.

GO ?= go

# Persistent verdict store used by the incremental suite runner; CI
# caches this directory so warm runs skip already-decided AMC work.
STORE ?= .vsync-store/verdicts.log

.PHONY: build vet test test-short race bench-smoke bench-check bench-suite fmt-check suite suite-warm suite-shared stored chaos fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# Full suite, including the slow optimization studies (minutes).
test:
	$(GO) test ./...

# CI wall-clock suite: slow paths are gated behind testing.Short().
test-short:
	$(GO) test -short ./...

# Race-detect the packages that exercise the parallel verification
# engine (worker pool, speculative ladder, verdict cache), then the
# work-graph explorer's own bars without -short: the full
# parallel-vs-sequential differential corpus, the symmetry-reduction
# differential corpus (canonicalization runs on every worker, sharing
# nothing but the visited set), the await-vs-bounded structure
# differential (the await reductions pinned against the explicit
# bounded-retry encodings at 1/2/4 workers, treiber t=3 included),
# the stealing/pool-borrow integration runs, and the sharded visited
# set under concurrent load.
race:
	$(GO) test -race -short ./internal/core ./internal/optimize ./internal/store ./internal/structs ./internal/workload ./vsync
	$(GO) test -race -run 'TestParallel|TestVisitedSet|TestPoolSlot|TestSym' ./internal/core
	$(GO) test -race -run 'TestAwaitDifferential' ./internal/structs
	$(GO) test -race -run 'TestOpenShared|TestRefresh|TestMerge|TestCompact|TestRemote|TestMultiProcess' ./internal/store

# One cheap pass over the benchmark harness to catch bit-rot in the
# table/figure emitters without running the full campaign, then the AMC
# hot-path suite (one measured run per target) -> BENCH_amc.json, the
# tracked record of the checker's own performance.
bench-smoke:
	$(GO) test -short -bench=. -benchtime=1x -run=^$$ .
	$(GO) run ./cmd/vsyncbench -amc -amcruns 1 -amcjson BENCH_amc.json

# Regression gate: a fresh -amc run (best of 3 passes — load and
# throttling only ever subtract from throughput) compared against a
# baseline artifact; fails when any row's graphs_per_sec drops more
# than the tolerance below it (default 25%). The default baseline is
# the committed BENCH_amc.json, which only compares meaningfully on
# hardware similar to the machine that recorded it — CI instead passes
# BENCH_BASELINE pointing at an artifact cached from the previous run
# on the same runner class. BENCH_CHECK_TOL overrides the tolerance,
# BENCH_CHECK_SKIP=1 skips the gate.
# BENCH_FRESH, when set, saves the gate's own denoised best-of-3
# artifact there — CI promotes it to the next run's cached baseline,
# so the baseline is always the careful measurement, never the 1-run
# smoke artifact.
BENCH_BASELINE ?= BENCH_amc.json
BENCH_FRESH ?=

bench-check:
	@if [ "$$BENCH_CHECK_SKIP" = 1 ]; then \
		echo "bench-check: skipped (BENCH_CHECK_SKIP=1)"; \
	elif [ ! -f "$(BENCH_BASELINE)" ]; then \
		echo "bench-check: skipped (no baseline at $(BENCH_BASELINE) yet)"; \
		if [ -n "$(BENCH_FRESH)" ]; then \
			$(GO) run ./cmd/vsyncbench -amc -amcruns 5 -amcbest 3 -amcjson "$(BENCH_FRESH)"; \
		fi; \
	else \
		$(GO) run ./cmd/vsyncbench -amc -amcruns 5 -amcbest 3 -amcjson "$(BENCH_FRESH)" \
			-amcbaseline "$(BENCH_BASELINE)" -amcchecktol $${BENCH_CHECK_TOL:-0.25}; \
	fi

# Store-aware suite benchmark: cold vs warm vsyncsuite wall time and
# hit rates against a throwaway store -> BENCH_suite.json, so the
# verdict store's latency win is tracked like the hot-path numbers.
bench-suite:
	$(GO) run ./cmd/vsyncbench -suite -suitejson BENCH_suite.json

# Incremental verification suite: every non-buggy lock's client, every
# non-buggy structure workload, and the litmus corpus under every
# model, consulting the persistent verdict store first. Cells the store
# already decided cost a hash lookup; new decisive verdicts are
# appended for the next run. The second invocation is the t=3 smoke
# cell the closure-free acyclicity engine unblocked: the 3-thread MCS
# client under every model (its t=2 cells are store hits from the
# first pass, so it only adds the t=3 work — and on a warm store it
# costs nothing at all). The third adds the clh and ttas t=3 cells
# that thread-symmetry reduction brought into CI range (their orbits
# collapse 3! to 1); the wall-clock budget is pure insurance — exit 3
# (undecided, resumable on the next run) is not a failure, so a slow
# runner degrades instead of breaking the build. The fourth extends
# all three structures to their t=3 rungs under the same insurance:
# the await-aware CAS-loop reduction cut the Treiber t=3 cell ~4x
# (~105k states) and brought the Michael–Scott t=3 cell — formerly
# past the checker's hard graph cap — down to ~1.6M states, decided
# within the budget. The fifth is the treiber t=4 frontier cell:
# still bigger than a suite run's allowance, it runs as a bounded
# segment (the graphs budget keeps it below the hard cap, the wall
# budget insures slow runners) and exits 3 until a future reduction
# or a sharded deepening job brings it into range.
#
# vsyncsuite is built once and invoked directly: `go run` collapses
# every non-zero child exit to 1, which would make the exit-3
# insurance below indistinguishable from a real verification failure
# (the t=4 cell, undecided by design, is what surfaced this).
suite:
	@set -e; \
	bin=$$(mktemp -t vsyncsuite.XXXXXX); \
	trap 'rm -f $$bin' EXIT; \
	$(GO) build -o $$bin ./cmd/vsyncsuite; \
	$$bin -store $(STORE); \
	$$bin -store $(STORE) -locks mcs -threads 3 -no-litmus -no-structs; \
	$$bin -store $(STORE) -locks clh,ttas -threads 3 -no-litmus -no-structs -budget 60s || [ $$? -eq 3 ]; \
	$$bin -store $(STORE) -structs structs/treiber,structs/seqlock,structs/msqueue -no-locks -no-litmus -threads 3 -budget 60s || [ $$? -eq 3 ]; \
	$$bin -store $(STORE) -structs structs/treiber -no-locks -no-litmus -threads 4 -budget 90s -budget-graphs 1500000 || [ $$? -eq 3 ]

# Warm assertion: over an unchanged corpus the store must serve at
# least 99% of the cells (CI runs `make suite` first, so in practice
# 100% — the whole matrix without a single AMC run).
suite-warm:
	$(GO) run ./cmd/vsyncsuite -store $(STORE) -min-hit-rate 0.99

# Multi-writer proof at the CLI level: two vsyncsuite processes run the
# full corpus concurrently against ONE live store (each observes the
# other's verdicts as they land, splitting the cold work), then a third
# pass asserts the combined accounting — every cell decided, none lost,
# the whole matrix served without an AMC run.
suite-shared:
	@set -e; \
	bin=$$(mktemp -t vsyncsuite.XXXXXX); \
	trap 'rm -f $$bin' EXIT; \
	$(GO) build -o $$bin ./cmd/vsyncsuite; \
	$$bin -store $(STORE) & pid1=$$!; \
	$$bin -store $(STORE) & pid2=$$!; \
	wait $$pid1; wait $$pid2; \
	$$bin -store $(STORE) -min-hit-rate 1

# The shared verdict service: vsynccheck/vsyncopt/vsyncsuite/vsynclitmus
# point -remote at it to tier lookups through a fleet-wide corpus.
stored:
	$(GO) run ./cmd/vsyncstored -store $(STORE)

# Crash-safety battery: the kill -9 suite harness (a subprocess suite
# run is killed at random points and must resume to verdicts identical
# to an uninterrupted run), the fault-injection store tests (torn
# appends, failed renames/flocks, remote outages), and the
# checkpoint/budget differential corpus — everything gated out of
# -short, run here without it.
chaos:
	$(GO) test -run 'TestChaos' -count=1 -v ./vsync
	$(GO) test -run 'Fault|Torn|Requeue|Backoff|Readyz' -count=1 ./internal/store
	$(GO) test -run 'TestBudget|TestCheckpoint|TestResume|TestCancelCheckpoint|TestPeriodicCheckpoint' -count=1 ./internal/core ./vsync
	$(GO) test ./internal/faultinject

# Brief coverage-guided fuzz of the store loader: arbitrary bytes as an
# on-disk log must load or heal, never panic or serve a non-decisive
# verdict. The seed corpus also runs as a normal test in test/-short.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz=FuzzStoreLoad -fuzztime=10s ./internal/store

# CI and humans run the exact same commands: the workflow in
# .github/workflows/ci.yml calls these targets and nothing else.

GO ?= go

# Persistent verdict store used by the incremental suite runner; CI
# caches this directory so warm runs skip already-decided AMC work.
STORE ?= .vsync-store/verdicts.log

.PHONY: build vet test test-short race bench-smoke fmt-check suite suite-warm

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# Full suite, including the slow optimization studies (minutes).
test:
	$(GO) test ./...

# CI wall-clock suite: slow paths are gated behind testing.Short().
test-short:
	$(GO) test -short ./...

# Race-detect the packages that exercise the parallel verification
# engine (worker pool, speculative ladder, verdict cache), then the
# work-graph explorer's own bars without -short: the full
# parallel-vs-sequential differential corpus, the stealing/pool-borrow
# integration runs, and the sharded visited set under concurrent load.
race:
	$(GO) test -race -short ./internal/core ./internal/optimize ./internal/store ./vsync
	$(GO) test -race -run 'TestParallel|TestVisitedSet|TestPoolSlot' ./internal/core

# One cheap pass over the benchmark harness to catch bit-rot in the
# table/figure emitters without running the full campaign, then the AMC
# hot-path suite (one measured run per target) -> BENCH_amc.json, the
# tracked record of the checker's own performance.
bench-smoke:
	$(GO) test -short -bench=. -benchtime=1x -run=^$$ .
	$(GO) run ./cmd/vsyncbench -amc -amcruns 1 -amcjson BENCH_amc.json

# Incremental verification suite: every non-buggy lock's client and the
# litmus corpus under every model, consulting the persistent verdict
# store first. Cells the store already decided cost a hash lookup; new
# decisive verdicts are appended for the next run.
suite:
	$(GO) run ./cmd/vsyncsuite -store $(STORE)

# Warm assertion: over an unchanged corpus the store must serve at
# least 99% of the cells (CI runs `make suite` first, so in practice
# 100% — the whole matrix without a single AMC run).
suite-warm:
	$(GO) run ./cmd/vsyncsuite -store $(STORE) -min-hit-rate 0.99

// Package wmsim is a deterministic discrete-event performance simulator
// for multicore machines with weak memory: the stand-in for the paper's
// evaluation platforms (§4.1) — a 128-core 2-socket ARMv8 TaiShan 200
// and a 96-thread 2-socket x86 EPYC server — which we cannot run on.
//
// The simulator executes the *same* lock implementations as the model
// checker (they program against vprog.Mem) under a cache-coherence and
// barrier-latency cost model. It does not simulate weak-memory
// *semantics* (the model checker owns correctness); it charges the
// *costs* that differentiate the paper's sc-only and VSync-optimized
// variants: on ARMv8, acquire/release/SC accesses and dmb fences cost
// extra cycles; on x86/TSO, plain and acquire/release accesses are free
// of ordering cost but SC stores and fences drain the store buffer, and
// every RMW is a locked instruction.
//
// Threads advance private virtual clocks; a token-passing scheduler
// always runs the thread with the smallest clock, so executions are
// deterministic given the seed. Seed-dependent cost jitter (±5%)
// produces the run-to-run variation the paper's stability metric
// (Table 3/4, Fig. 23) summarizes.
package wmsim

import "repro/internal/vprog"

// Machine is a simulated platform: topology, frequency and the cost
// model (all latencies in cycles).
type Machine struct {
	// Name identifies the platform in records ("ARMv8", "x86_64").
	Name string
	// Cores is the maximum thread count (the paper: 128 ARM, 96 x86).
	Cores int
	// Clusters is the number of NUMA nodes (2 sockets on both).
	Clusters int
	// FreqGHz converts cycles to seconds (the paper fixes 1.5 GHz).
	FreqGHz float64

	// Cache hierarchy.
	L1Hit      uint64 // load/store hit in own L1
	LocalMiss  uint64 // transfer from a core in the same cluster
	RemoteMiss uint64 // transfer across the interconnect
	StoreOwned uint64 // store to an exclusively-owned line

	// Ordering costs, added on top of the cache cost.
	LoadExtra  func(m vprog.Mode) uint64
	StoreExtra func(m vprog.Mode) uint64
	RMWBase    uint64 // base cost of any atomic read-modify-write
	RMWExtra   func(m vprog.Mode) uint64
	FenceCost  func(m vprog.Mode) uint64

	// PauseCost is the spin-wait hint (yield/wfe) latency.
	PauseCost uint64
	// WorkCost is one unit of non-memory critical-section work.
	WorkCost uint64
}

// ClusterOf maps a thread/core to its NUMA node (threads are pinned in
// cluster order, mirroring the paper's numactl binding).
func (mc *Machine) ClusterOf(tid, nthreads int) int {
	if nthreads <= mc.Cores/mc.Clusters {
		return 0 // all threads fit on node 0 (membind=0 in the paper)
	}
	per := mc.Cores / mc.Clusters
	c := tid / per
	if c >= mc.Clusters {
		c = mc.Clusters - 1
	}
	return c
}

// ARMv8 models the TaiShan 200 (Kunpeng 920, 128 cores, 2 sockets):
// barriers have real cost at every strength (dmb ishld/ish, ldar/stlr).
func ARMv8() *Machine {
	return &Machine{
		Name:       "ARMv8",
		Cores:      128,
		Clusters:   2,
		FreqGHz:    1.5,
		L1Hit:      4,
		LocalMiss:  48,
		RemoteMiss: 130,
		StoreOwned: 6,
		LoadExtra: func(m vprog.Mode) uint64 {
			switch m {
			case vprog.Acq, vprog.AcqRel:
				return 8 // ldar
			case vprog.SC:
				return 14 // ldar + stronger ordering
			default:
				return 0
			}
		},
		StoreExtra: func(m vprog.Mode) uint64 {
			switch m {
			case vprog.Rel, vprog.AcqRel:
				return 9 // stlr
			case vprog.SC:
				return 16
			default:
				return 0
			}
		},
		RMWBase: 16,
		RMWExtra: func(m vprog.Mode) uint64 {
			switch m {
			case vprog.Acq, vprog.Rel:
				return 8
			case vprog.AcqRel:
				return 12
			case vprog.SC:
				return 22
			default:
				return 0
			}
		},
		FenceCost: func(m vprog.Mode) uint64 {
			switch m {
			case vprog.Acq:
				return 14 // dmb ishld
			case vprog.Rel, vprog.AcqRel:
				return 22 // dmb ish
			case vprog.SC:
				return 38 // dmb sy
			default:
				return 0
			}
		},
		PauseCost: 24, // isb/yield spin hint
		WorkCost:  3,
	}
}

// X86 models the GIGABYTE EPYC 7352 (48 cores / 96 threads, 2 sockets):
// TSO gives plain, acquire and release accesses for free; SC stores and
// fences cost an mfence-style drain; every RMW is a locked instruction
// with full-barrier semantics regardless of the requested mode.
func X86() *Machine {
	return &Machine{
		Name:       "x86_64",
		Cores:      96,
		Clusters:   2,
		FreqGHz:    1.5,
		L1Hit:      4,
		LocalMiss:  44,
		RemoteMiss: 118,
		StoreOwned: 5,
		LoadExtra: func(m vprog.Mode) uint64 {
			return 0 // all loads are acquire on TSO
		},
		StoreExtra: func(m vprog.Mode) uint64 {
			if m == vprog.SC {
				return 42 // implicit store-buffer drain (xchg/mfence)
			}
			return 0
		},
		RMWBase: 24, // lock-prefixed instruction
		RMWExtra: func(m vprog.Mode) uint64 {
			// A locked RMW is already sequentially consistent, but the
			// sc-only variant's atomics (compiled the VSYNC way) emit a
			// trailing mfence as well — the cost behind the paper's large
			// x86 speedups for RMW-heavy locks (qspinlock, CAS locks).
			if m == vprog.SC {
				return 38
			}
			return 0
		},
		FenceCost: func(m vprog.Mode) uint64 {
			if m == vprog.SC {
				return 40 // mfence
			}
			return 0 // compiler-only barriers
		},
		PauseCost: 30, // pause instruction (rep nop)
		WorkCost:  3,
	}
}

// Machines returns the two evaluation platforms.
func Machines() []*Machine { return []*Machine{ARMv8(), X86()} }

// MachineByName returns the named platform or nil.
func MachineByName(name string) *Machine {
	for _, m := range Machines() {
		if m.Name == name {
			return m
		}
	}
	return nil
}

package wmsim

import (
	"fmt"
	"sync"

	"repro/internal/vprog"
)

// lineState tracks MESI-style ownership of one cache line (one Var).
type lineState struct {
	owner   int    // core holding the line exclusively/modified, -1 none
	sharers uint64 // bitmask of cores with a shared copy (clamped to 64; groups of 2 beyond)
}

// Sim is one simulation instance: a machine, shared memory, per-thread
// clocks and the token-passing scheduler.
type Sim struct {
	mc       *Machine
	nthreads int
	seed     uint64

	vals  []uint64    // shared memory, indexed by Var.ID
	lines []lineState // cache-line state per Var

	clocks   []uint64
	done     []bool
	chans    []chan struct{}
	counts   []uint64 // client-defined completion counters
	deadline uint64
	rng      uint64
	env      *simEnv

	wg sync.WaitGroup
}

// sharerBit maps a core to a bit in the (64-bit) sharer mask.
func sharerBit(tid int) uint64 { return 1 << (uint(tid) % 64) }

// NewSim builds a simulation for the machine with the given thread
// count, virtual duration (cycles) and jitter seed. Vars must be
// allocated through the returned Env before Run.
func NewSim(mc *Machine, nthreads int, deadline uint64, seed uint64) *Sim {
	if nthreads > mc.Cores {
		panic(fmt.Sprintf("wmsim: %d threads exceed %s's %d cores", nthreads, mc.Name, mc.Cores))
	}
	return &Sim{
		mc:       mc,
		nthreads: nthreads,
		seed:     seed,
		clocks:   make([]uint64, nthreads),
		done:     make([]bool, nthreads),
		chans:    makeChans(nthreads),
		counts:   make([]uint64, nthreads),
		deadline: deadline,
		rng:      seed*0x9E3779B97F4A7C15 + 1,
	}
}

func makeChans(n int) []chan struct{} {
	out := make([]chan struct{}, n)
	for i := range out {
		out[i] = make(chan struct{}, 1)
	}
	return out
}

// simEnv is the Env used to size shared memory.
type simEnv struct {
	vprog.VarSet
	s *Sim
}

// Env returns the variable allocator for this simulation. Initial
// values are materialized when Run starts, because lock constructors
// may adjust Var.Init after allocation (CLH node ownership, the array
// lock's pre-granted slot).
func (s *Sim) Env() vprog.Env {
	if s.env == nil {
		s.env = &simEnv{s: s}
	}
	return s.env
}

func (e *simEnv) Var(name string, init uint64) *vprog.Var {
	v := e.VarSet.Var(name, init)
	for len(e.s.vals) <= v.ID {
		e.s.vals = append(e.s.vals, 0)
		e.s.lines = append(e.s.lines, lineState{owner: -1})
	}
	return v
}

// jitter perturbs a cost by up to ±5% using a deterministic xorshift
// stream; this is the run-to-run noise summarized by the paper's
// stability metric.
func (s *Sim) jitter(cost uint64) uint64 {
	if cost == 0 {
		return 0
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	span := cost/10 + 1 // [0, 10%) of cost
	return cost - cost/20 + s.rng%span
}

// missCost returns the transfer latency for tid pulling a line whose
// current holder is `from` (-1 = memory at node 0).
func (s *Sim) missCost(tid, from int) uint64 {
	myc := s.mc.ClusterOf(tid, s.nthreads)
	fromc := 0
	if from >= 0 {
		fromc = s.mc.ClusterOf(from, s.nthreads)
	}
	if myc == fromc {
		return s.mc.LocalMiss
	}
	return s.mc.RemoteMiss
}

// loadCost charges a load of v by tid and updates line state.
func (s *Sim) loadCost(tid int, v *vprog.Var) uint64 {
	ln := &s.lines[v.ID]
	if ln.owner == tid || (ln.owner == -1 && ln.sharers&sharerBit(tid) != 0) {
		return s.mc.L1Hit
	}
	if ln.sharers&sharerBit(tid) != 0 && ln.owner == -1 {
		return s.mc.L1Hit
	}
	cost := s.missCost(tid, ln.owner)
	// Line becomes shared.
	if ln.owner >= 0 {
		ln.sharers |= sharerBit(ln.owner)
	}
	ln.owner = -1
	ln.sharers |= sharerBit(tid)
	return cost
}

// storeCost charges a store/RMW write of v by tid and updates state.
func (s *Sim) storeCost(tid int, v *vprog.Var) uint64 {
	ln := &s.lines[v.ID]
	if ln.owner == tid && ln.sharers&^sharerBit(tid) == 0 {
		return s.mc.StoreOwned
	}
	var cost uint64
	if ln.owner != tid {
		cost = s.missCost(tid, ln.owner)
	} else {
		cost = s.mc.StoreOwned
	}
	if ln.sharers&^sharerBit(tid) != 0 {
		cost += s.mc.L1Hit * 2 // invalidation round
	}
	ln.owner = tid
	ln.sharers = sharerBit(tid)
	return cost
}

// simMem implements vprog.Mem for one simulated thread.
type simMem struct {
	s   *Sim
	tid int
}

// advance charges cycles to the thread and yields to whichever thread
// now has the smallest clock (token passing keeps exactly one thread
// executing, so the sim state needs no further synchronization).
func (m *simMem) advance(cost uint64) {
	s := m.s
	s.clocks[m.tid] += s.jitter(cost)
	next := -1
	var best uint64
	for t := 0; t < s.nthreads; t++ {
		if s.done[t] {
			continue
		}
		if next == -1 || s.clocks[t] < best {
			next, best = t, s.clocks[t]
		}
	}
	if next != m.tid && next != -1 {
		s.chans[next] <- struct{}{}
		<-s.chans[m.tid]
	}
}

func (m *simMem) Load(v *vprog.Var, mode vprog.Mode) uint64 {
	m.advance(m.s.loadCost(m.tid, v) + m.s.mc.LoadExtra(mode))
	return m.s.vals[v.ID]
}

func (m *simMem) Store(v *vprog.Var, x uint64, mode vprog.Mode) {
	m.advance(m.s.storeCost(m.tid, v) + m.s.mc.StoreExtra(mode))
	m.s.vals[v.ID] = x
}

func (m *simMem) rmw(v *vprog.Var, mode vprog.Mode) {
	m.advance(m.s.storeCost(m.tid, v) + m.s.mc.RMWBase + m.s.mc.RMWExtra(mode))
}

func (m *simMem) Xchg(v *vprog.Var, x uint64, mode vprog.Mode) uint64 {
	m.rmw(v, mode)
	old := m.s.vals[v.ID]
	m.s.vals[v.ID] = x
	return old
}

func (m *simMem) CmpXchg(v *vprog.Var, old, new uint64, mode vprog.Mode) (uint64, bool) {
	m.rmw(v, mode)
	cur := m.s.vals[v.ID]
	if cur != old {
		return cur, false
	}
	m.s.vals[v.ID] = new
	return cur, true
}

func (m *simMem) FetchAdd(v *vprog.Var, delta uint64, mode vprog.Mode) uint64 {
	m.rmw(v, mode)
	old := m.s.vals[v.ID]
	m.s.vals[v.ID] = old + delta
	return old
}

func (m *simMem) Fence(mode vprog.Mode) {
	if mode == vprog.ModeNone {
		return
	}
	m.advance(m.s.mc.FenceCost(mode))
}

func (m *simMem) AwaitWhile(cond func() bool) {
	for cond() {
	}
}

func (m *simMem) AwaitDo(body func() bool) {
	for !body() {
	}
}

func (m *simMem) Pause()   { m.advance(m.s.mc.PauseCost) }
func (m *simMem) TID() int { return m.tid }

func (m *simMem) Assert(ok bool, msg string) {
	if !ok {
		panic("wmsim: assertion failed during simulation: " + msg +
			" (locks are verified by AMC before benchmarking; this indicates a harness bug)")
	}
}

// Work charges n units of non-memory computation (critical-section
// payload work between memory touches).
func (m *simMem) Work(n int) { m.advance(uint64(n) * m.s.mc.WorkCost) }

// Value returns the final contents of a shared variable after Run — the
// benchmark's shared counter readback (Listing 1's return).
func (s *Sim) Value(v *vprog.Var) uint64 { return s.vals[v.ID] }

// Body is one thread's benchmark loop body; it is invoked repeatedly
// until the virtual deadline passes. done() reports completions.
type Body func(m vprog.Mem, tid int, done func())

// Run executes the benchmark: every thread loops over body until its
// clock passes the deadline. It returns per-thread completion counts
// and the final virtual time (max clock).
func (s *Sim) Run(body Body) (counts []uint64, elapsed uint64) {
	if s.env != nil {
		for _, v := range s.env.Vars {
			s.vals[v.ID] = v.Init
		}
	}
	s.wg.Add(s.nthreads)
	for t := 0; t < s.nthreads; t++ {
		t := t
		go func() {
			defer s.wg.Done()
			<-s.chans[t] // wait for the token
			m := &simMem{s: s, tid: t}
			for s.clocks[t] < s.deadline {
				body(m, t, func() { s.counts[t]++ })
			}
			s.done[t] = true
			// Pass the token onward.
			next := -1
			var best uint64
			for u := 0; u < s.nthreads; u++ {
				if s.done[u] {
					continue
				}
				if next == -1 || s.clocks[u] < best {
					next, best = u, s.clocks[u]
				}
			}
			if next != -1 {
				s.chans[next] <- struct{}{}
			}
		}()
	}
	// Kick the first thread (all clocks zero: thread 0 starts).
	s.chans[0] <- struct{}{}
	s.wg.Wait()
	var maxClock uint64
	for _, c := range s.clocks {
		if c > maxClock {
			maxClock = c
		}
	}
	return s.counts, maxClock
}

package wmsim_test

import (
	"testing"

	"repro/internal/locks"
	"repro/internal/vprog"
	"repro/internal/wmsim"
)

// runLock simulates the Listing-1 loop on a lock and returns total CS
// count and elapsed cycles.
func runLock(t *testing.T, mc *wmsim.Machine, name string, threads int, sc bool, seed uint64) (uint64, uint64) {
	t.Helper()
	alg := locks.ByName(name)
	if alg == nil {
		t.Fatalf("unknown lock %s", name)
	}
	spec := alg.DefaultSpec()
	if sc {
		spec = spec.AllSC()
	}
	sim := wmsim.NewSim(mc, threads, 100_000, seed)
	env := sim.Env()
	lk := alg.New(env, spec, threads)
	x := env.Var("x", 0)
	counts, elapsed := sim.Run(func(m vprog.Mem, tid int, done func()) {
		tok := lk.Acquire(m)
		m.Store(x, m.Load(x, vprog.Rlx)+1, vprog.Rlx)
		lk.Release(m, tok)
		done()
	})
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, elapsed
}

// TestSimMutualExclusionConservation: the shared counter must equal the
// total number of critical sections — the simulator's conservation law
// (locks are verified; the simulator must not lose interleavings).
func TestSimMutualExclusionConservation(t *testing.T) {
	for _, name := range []string{"spin", "ttas", "ticket", "mcs", "clh", "qspin", "array", "mutex", "cmcsticket", "hclh"} {
		for _, threads := range []int{1, 2, 4, 16} {
			alg := locks.ByName(name)
			sim := wmsim.NewSim(wmsim.ARMv8(), threads, 60_000, 42)
			env := sim.Env()
			lk := alg.New(env, alg.DefaultSpec(), threads)
			x := env.Var("x", 0)
			counts, _ := sim.Run(func(m vprog.Mem, tid int, done func()) {
				tok := lk.Acquire(m)
				m.Store(x, m.Load(x, vprog.Rlx)+1, vprog.Rlx)
				lk.Release(m, tok)
				done()
			})
			var total uint64
			for _, c := range counts {
				total += c
			}
			if total == 0 {
				t.Fatalf("%s/%d: no critical sections completed", name, threads)
			}
			if got := sim.Value(x); got != total {
				t.Fatalf("%s/%d: conservation violated: counter=%d but %d critical sections ran",
					name, threads, got, total)
			}
		}
	}
}

// TestSimDeterminism: identical seeds give identical results; different
// seeds differ (the jitter driving the stability statistics).
func TestSimDeterminism(t *testing.T) {
	a1, e1 := runLock(t, wmsim.ARMv8(), "mcs", 8, false, 7)
	a2, e2 := runLock(t, wmsim.ARMv8(), "mcs", 8, false, 7)
	if a1 != a2 || e1 != e2 {
		t.Fatalf("simulation not deterministic: (%d,%d) vs (%d,%d)", a1, e1, a2, e2)
	}
	b1, _ := runLock(t, wmsim.ARMv8(), "mcs", 8, false, 8)
	if b1 == a1 {
		t.Log("different seeds produced identical counts (possible but unlikely)")
	}
}

// TestSimOptimizedBeatsSC: the headline shape of the evaluation — on
// both platforms, the VSync-optimized variant must not be slower than
// the sc-only variant at low contention, and the single-thread x86 gap
// must be large (the paper reports up to 7× there).
func TestSimOptimizedBeatsSC(t *testing.T) {
	for _, mc := range wmsim.Machines() {
		for _, name := range []string{"spin", "ttas", "mcs", "ticket", "qspin", "clh"} {
			opt, eo := runLock(t, mc, name, 1, false, 3)
			seq, es := runLock(t, mc, name, 1, true, 3)
			to := float64(opt) / float64(eo)
			ts := float64(seq) / float64(es)
			if to < ts*0.98 {
				t.Errorf("%s/%s single-thread: optimized (%.4f cs/cy) slower than sc-only (%.4f cs/cy)",
					mc.Name, name, to, ts)
			}
		}
	}
	// x86 single-thread speedup should be pronounced for CAS-style locks.
	opt, eo := runLock(t, wmsim.X86(), "spin", 1, false, 3)
	seq, es := runLock(t, wmsim.X86(), "spin", 1, true, 3)
	speedup := (float64(opt) / float64(eo)) / (float64(seq) / float64(es))
	if speedup < 1.2 {
		t.Errorf("x86 single-thread spin speedup %.2f, want a clear win (paper: up to 7x for some locks)", speedup)
	}
}

// TestSimScalesThreads: the simulator must cope with the paper's
// maximum contention (127 threads on the ARM box) in reasonable time.
func TestSimScalesThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("127-thread simulation")
	}
	total, elapsed := runLock(t, wmsim.ARMv8(), "mcs", 127, false, 1)
	if total == 0 || elapsed == 0 {
		t.Fatal("127-thread simulation made no progress")
	}
	t.Logf("127 threads: %d critical sections in %d cycles", total, elapsed)
}

// TestSimRejectsOversubscription: thread counts beyond the core count
// must be refused, as on the real platforms.
func TestSimRejectsOversubscription(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 127 threads on the 96-core x86 box")
		}
	}()
	wmsim.NewSim(wmsim.X86(), 127, 1000, 1)
}

// Package native runs vprog programs on real hardware: the Mem
// interface is implemented directly over sync/atomic, so the very same
// lock implementations verified by AMC and measured in wmsim execute as
// genuine Go synchronization primitives. Go's atomics are sequentially
// consistent, which is stronger than any requested mode — safe in the
// "all modes map to something at least as strong" sense — so the native
// backend is for functional stress testing and real benchmarking of the
// algorithms, not for measuring barrier-relaxation gains (that is the
// simulator's job).
package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/locks"
	"repro/internal/vprog"
)

// Mem is the native backend for one OS thread/goroutine.
type Mem struct {
	tid int
	// Failures records failed assertions (checked by the harness after
	// a run); shared across the program's threads.
	failures *failures
}

type failures struct {
	mu   sync.Mutex
	msgs []string
}

// Load implements vprog.Mem.
func (m *Mem) Load(v *vprog.Var, _ vprog.Mode) uint64 { return atomic.LoadUint64(&v.Cell) }

// Store implements vprog.Mem.
func (m *Mem) Store(v *vprog.Var, x uint64, _ vprog.Mode) { atomic.StoreUint64(&v.Cell, x) }

// Xchg implements vprog.Mem.
func (m *Mem) Xchg(v *vprog.Var, x uint64, _ vprog.Mode) uint64 {
	return atomic.SwapUint64(&v.Cell, x)
}

// CmpXchg implements vprog.Mem. Go exposes only the success flag, so a
// failed exchange re-reads the cell; callers must treat the returned
// prior value as advisory on failure (every lock in this repository
// does).
func (m *Mem) CmpXchg(v *vprog.Var, old, new uint64, _ vprog.Mode) (uint64, bool) {
	if atomic.CompareAndSwapUint64(&v.Cell, old, new) {
		return old, true
	}
	return atomic.LoadUint64(&v.Cell), false
}

// FetchAdd implements vprog.Mem.
func (m *Mem) FetchAdd(v *vprog.Var, delta uint64, _ vprog.Mode) uint64 {
	return atomic.AddUint64(&v.Cell, delta) - delta
}

// Fence implements vprog.Mem. Go's atomics already order everything;
// an explicit fence needs no instruction beyond preventing compiler
// motion, which the surrounding atomics provide.
func (m *Mem) Fence(_ vprog.Mode) {}

// AwaitWhile implements vprog.Mem: a plain spin loop.
func (m *Mem) AwaitWhile(cond func() bool) {
	for cond() {
	}
}

// AwaitDo implements vprog.Mem: a plain retry loop.
func (m *Mem) AwaitDo(body func() bool) {
	for !body() {
	}
}

// Pause implements vprog.Mem by yielding the processor.
func (m *Mem) Pause() { runtime.Gosched() }

// TID implements vprog.Mem.
func (m *Mem) TID() int { return m.tid }

// Assert implements vprog.Mem by recording the failure.
func (m *Mem) Assert(ok bool, msg string) {
	if ok {
		return
	}
	m.failures.mu.Lock()
	m.failures.msgs = append(m.failures.msgs, fmt.Sprintf("T%d: %s", m.tid, msg))
	m.failures.mu.Unlock()
}

// RunProgram executes a vprog program natively, one goroutine per
// thread, and evaluates its final check. It returns an error carrying
// every failed assertion or the final-check message.
func RunProgram(p *vprog.Program) error {
	vars := &vprog.VarSet{}
	threads, final := p.Build(vars)
	for _, v := range vars.Vars {
		atomic.StoreUint64(&v.Cell, v.Init)
	}
	f := &failures{}
	var wg sync.WaitGroup
	wg.Add(len(threads))
	for t, fn := range threads {
		go func(t int, fn vprog.ThreadFunc) {
			defer wg.Done()
			fn(&Mem{tid: t, failures: f})
		}(t, fn)
	}
	wg.Wait()
	if len(f.msgs) > 0 {
		return fmt.Errorf("native: %d assertion failure(s): %v", len(f.msgs), f.msgs)
	}
	if final != nil {
		ok, msg := final(func(v *vprog.Var) uint64 { return atomic.LoadUint64(&v.Cell) })
		if !ok {
			return fmt.Errorf("native: final check failed: %s", msg)
		}
	}
	return nil
}

// Locker adapts a verified lock algorithm to Go's sync.Locker so it can
// be dropped into ordinary Go code. Each goroutine using the Locker
// must first register with Bind to obtain its thread id view.
type Locker struct {
	lk  locks.Lock
	tid int
	tok uint64
}

// LockSet instantiates a lock algorithm natively for nthreads threads.
type LockSet struct {
	lk   locks.Lock
	vars *vprog.VarSet
	n    int
}

// NewLockSet builds the named algorithm with its default (maximally
// relaxed, verified) barrier spec.
func NewLockSet(name string, nthreads int) (*LockSet, error) {
	alg := locks.ByName(name)
	if alg == nil {
		return nil, fmt.Errorf("native: unknown lock %q", name)
	}
	vars := &vprog.VarSet{}
	lk := alg.New(vars, alg.DefaultSpec(), nthreads)
	for _, v := range vars.Vars {
		atomic.StoreUint64(&v.Cell, v.Init)
	}
	return &LockSet{lk: lk, vars: vars, n: nthreads}, nil
}

// Bind returns the sync.Locker view for one thread id (0 <= tid <
// nthreads). Each concurrent goroutine needs its own id.
func (s *LockSet) Bind(tid int) *Locker {
	if tid < 0 || tid >= s.n {
		panic(fmt.Sprintf("native: tid %d out of range [0,%d)", tid, s.n))
	}
	return &Locker{lk: s.lk, tid: tid}
}

// Lock implements sync.Locker.
func (l *Locker) Lock() { l.tok = l.lk.Acquire(&Mem{tid: l.tid, failures: &failures{}}) }

// Unlock implements sync.Locker.
func (l *Locker) Unlock() { l.lk.Release(&Mem{tid: l.tid, failures: &failures{}}, l.tok) }

package native_test

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/native"
)

// TestNativeMutexStress runs every benchmarkable lock natively with
// real goroutines hammering a critical section — the functional stress
// companion to the model-checking proofs (and a race-detector target:
// run with -race).
func TestNativeMutexStress(t *testing.T) {
	nthreads := runtime.GOMAXPROCS(0)
	if nthreads > 8 {
		nthreads = 8
	}
	if nthreads < 2 {
		nthreads = 2
	}
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	for _, alg := range locks.Benchmarkable() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			p := harness.MutexClient(alg, alg.DefaultSpec(), nthreads, iters)
			if err := native.RunProgram(p); err != nil {
				t.Fatalf("%s: %v", alg.Name, err)
			}
		})
	}
}

// TestNativeRWStress exercises the reader-writer client natively.
func TestNativeRWStress(t *testing.T) {
	alg := locks.ByName("rw")
	iters := 1000
	if testing.Short() {
		iters = 200
	}
	p := harness.RWClient(alg, alg.DefaultSpec(), 2, 2, iters)
	if err := native.RunProgram(p); err != nil {
		t.Fatal(err)
	}
}

// TestLockerInterface drops a verified lock into ordinary Go code via
// sync.Locker.
func TestLockerInterface(t *testing.T) {
	set, err := native.NewLockSet("mcs", 4)
	if err != nil {
		t.Fatal(err)
	}
	var counter int // plain variable: the lock must protect it
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			l := set.Bind(tid)
			for i := 0; i < 500; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}(tid)
	}
	wg.Wait()
	if counter != 4*500 {
		t.Fatalf("counter = %d, want %d", counter, 4*500)
	}
}

// TestNativeUnknownLock covers the error path.
func TestNativeUnknownLock(t *testing.T) {
	if _, err := native.NewLockSet("no-such-lock", 2); err == nil {
		t.Fatal("expected error for unknown lock")
	}
}

package graph

import "sort"

// Rels materializes the derived relations of an execution graph over a
// dense event index, ready for the axiomatic consistency predicates in
// internal/mm. Index layout: init writes first (one per location), then
// explicit events in stamp (addition) order. Stamp order is what makes
// Extend possible: the event appended last has the largest stamp, so an
// extension always adds index N — one new row and column — and never
// shifts existing indices.
type Rels struct {
	G     *Graph
	N     int
	Ev    []*Event // indexed events; init events synthesized
	nInit int
	// tIdx maps (thread, po-index) to the dense index. The rows follow
	// the same copy-on-write discipline as Graph.Threads: Extend clamps
	// and appends, so parent and child share all but the extended row.
	tIdx [][]int32

	Sb    *BitMat // program order (transitive), init before everything
	RfM   *BitMat // reads-from as a matrix (w -> r)
	MoM   *BitMat // modification order (transitive per location)
	FrM   *BitMat // from-read: r -> w' for w' mo-after rf(r)
	SwM   *BitMat // synchronizes-with
	Hb    *BitMat // happens-before = (sb ∪ sw)+
	Eco   *BitMat // extended coherence order = (rf ∪ mo ∪ fr)+
	SbLoc *BitMat // sb restricted to same-location accesses
}

// IndexOf returns the dense index of the event id.
func (r *Rels) IndexOf(id EventID) int {
	if id.IsInit() {
		return id.Index
	}
	return int(r.tIdx[id.Thread][id.Index])
}

// RelsOf returns the derived relations of g, memoized on the graph:
// the memory-model consistency predicates (four of them in internal/mm)
// all go through here, so one graph state is analyzed at most once
// however many predicates inspect it. When g carries an extension hint
// (NoteExtended) and its parent's relations are still memoized, the
// result is computed incrementally from the parent instead of from
// scratch — the common case during exploration, where every branch is
// parent-plus-one-event.
func RelsOf(g *Graph) *Rels {
	if g.rels != nil {
		return g.rels
	}
	if g.extParent != nil && g.extParent.rels != nil {
		g.rels = g.extParent.rels.Extend(g, g.extEvent)
	} else {
		g.rels = BuildRels(g)
	}
	// Drop the hint: it has served its purpose, and holding it would
	// pin the whole ancestor chain (graphs and relations) in memory.
	g.extParent, g.extEvent = nil, nil
	return g.rels
}

// BuildRels computes all derived relations of g from scratch.
func BuildRels(g *Graph) *Rels {
	r := &Rels{G: g, nInit: len(g.InitVals)}
	// Index init writes, then explicit events in stamp order.
	for l := range g.InitVals {
		id := EventID{Thread: InitThread, Index: l}
		r.Ev = append(r.Ev, g.Event(id))
	}
	for _, evs := range g.Threads {
		r.Ev = append(r.Ev, evs...)
	}
	sort.Slice(r.Ev[r.nInit:], func(i, j int) bool {
		return r.Ev[r.nInit+i].Stamp < r.Ev[r.nInit+j].Stamp
	})
	r.N = len(r.Ev)
	n := r.N
	r.tIdx = make([][]int32, len(g.Threads))
	for t, evs := range g.Threads {
		r.tIdx[t] = make([]int32, len(evs))
	}
	for i := r.nInit; i < n; i++ {
		id := r.Ev[i].ID
		r.tIdx[id.Thread][id.Index] = int32(i)
	}

	// sb: init before all thread events; po within each thread.
	r.Sb = NewBitMat(n)
	r.SbLoc = NewBitMat(n)
	nInit := r.nInit
	for i := 0; i < nInit; i++ {
		for j := nInit; j < n; j++ {
			r.Sb.Set(i, j)
			if r.Ev[j].Kind != KFence && r.Ev[j].Kind != KError && r.Ev[i].Loc == r.Ev[j].Loc {
				r.SbLoc.Set(i, j)
			}
		}
	}
	for _, evs := range g.Threads {
		for a := 0; a < len(evs); a++ {
			ia := r.IndexOf(evs[a].ID)
			for b := a + 1; b < len(evs); b++ {
				ib := r.IndexOf(evs[b].ID)
				r.Sb.Set(ia, ib)
				ea, eb := evs[a], evs[b]
				if ea.Kind != KFence && ea.Kind != KError &&
					eb.Kind != KFence && eb.Kind != KError && ea.Loc == eb.Loc {
					r.SbLoc.Set(ia, ib)
				}
			}
		}
	}

	// rf.
	r.RfM = NewBitMat(n)
	for rd, rf := range g.Rf {
		if rf.Bottom {
			continue
		}
		r.RfM.Set(r.IndexOf(rf.W), r.IndexOf(rd))
	}

	// mo (transitive within each location's total order).
	r.MoM = NewBitMat(n)
	for _, order := range g.Mo {
		for a := 0; a < len(order); a++ {
			for b := a + 1; b < len(order); b++ {
				r.MoM.Set(r.IndexOf(order[a]), r.IndexOf(order[b]))
			}
		}
	}

	// fr = rf^-1 ; mo (strict): read -> every write mo-after its source.
	r.FrM = NewBitMat(n)
	for rd, rf := range g.Rf {
		if rf.Bottom {
			continue
		}
		e := g.Event(rd)
		order := g.Mo[e.Loc]
		src := -1
		for i, w := range order {
			if w == rf.W {
				src = i
				break
			}
		}
		if src < 0 {
			continue // source not in mo (cannot happen for well-formed graphs)
		}
		ri := r.IndexOf(rd)
		for i := src + 1; i < len(order); i++ {
			wi := r.IndexOf(order[i])
			if wi != ri { // an update never fr-precedes itself
				r.FrM.Set(ri, wi)
			}
		}
	}

	r.SwM = r.buildSw()

	r.Hb = r.Sb.Clone()
	r.Hb.OrWith(r.SwM)
	r.Hb.TransClose()

	r.Eco = r.RfM.Clone()
	r.Eco.OrWith(r.MoM)
	r.Eco.OrWith(r.FrM)
	r.Eco.TransClose()

	return r
}

// buildSw computes the synchronizes-with relation in the RC11 style:
//
//	sw = [rel-side] ; rs ; rf ; [acq-side]
//
// where the release side of a base write w is w itself when it has
// release semantics, or any release fence sb-before w in the same
// thread; rs (the release sequence) is w followed by any chain of
// updates reading from it; and the acquire side of a read r is r itself
// when it has acquire semantics, or any acquire fence sb-after r.
func (r *Rels) buildSw() *BitMat {
	g := r.G
	sw := NewBitMat(r.N)
	for rd, rf := range g.Rf {
		if rf.Bottom {
			continue
		}
		re := g.Event(rd)
		// Acquire-side targets.
		var acqSides []int
		if re.Mode.HasAcq() {
			acqSides = append(acqSides, r.IndexOf(rd))
		}
		if rd.Thread >= 0 {
			for _, f := range g.Threads[rd.Thread][rd.Index+1:] {
				if f.Kind == KFence && f.Mode.HasAcq() {
					acqSides = append(acqSides, r.IndexOf(f.ID))
				}
			}
		}
		if len(acqSides) == 0 {
			continue
		}
		r.swFromBases(g, rf.W, func(s int) {
			for _, t := range acqSides {
				if s != t {
					sw.Set(s, t)
				}
			}
		})
	}
	return sw
}

// swFromBases walks the release sequence backwards from the rf source
// base (the source itself and, through update chains, each write it
// read from) and calls emit with the index of every release side: the
// base when it carries release semantics, and every release fence
// sb-before the base in its thread.
func (r *Rels) swFromBases(g *Graph, base EventID, emit func(relSide int)) {
	for {
		be := g.Event(base)
		if be.Mode.HasRel() {
			emit(r.IndexOf(base))
		}
		if base.Thread >= 0 {
			for _, f := range g.Threads[base.Thread][:base.Index] {
				if f.Kind == KFence && f.Mode.HasRel() {
					emit(r.IndexOf(f.ID))
				}
			}
		}
		if be.Kind != KUpdate {
			return
		}
		prev := g.Rf[base]
		if prev.Bottom {
			return
		}
		base = prev.W
	}
}

// IsSCEvent reports whether indexed event i carries SC mode.
func (r *Rels) IsSCEvent(i int) bool { return r.Ev[i].Mode.IsSC() }

// IsSCFence reports whether indexed event i is an SC fence.
func (r *Rels) IsSCFence(i int) bool { return r.Ev[i].Kind == KFence && r.Ev[i].Mode.IsSC() }

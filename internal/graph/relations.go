package graph

// Rels materializes the derived relations of an execution graph over a
// dense event index, ready for the axiomatic consistency predicates in
// internal/mm. Index layout: init writes first (one per location), then
// thread events in (thread, po) order.
type Rels struct {
	G   *Graph
	N   int
	Ev  []*Event // indexed events; init events synthesized
	Idx map[EventID]int

	Sb    *BitMat // program order (transitive), init before everything
	RfM   *BitMat // reads-from as a matrix (w -> r)
	MoM   *BitMat // modification order (transitive per location)
	FrM   *BitMat // from-read: r -> w' for w' mo-after rf(r)
	SwM   *BitMat // synchronizes-with
	Hb    *BitMat // happens-before = (sb ∪ sw)+
	Eco   *BitMat // extended coherence order = (rf ∪ mo ∪ fr)+
	SbLoc *BitMat // sb restricted to same-location accesses
}

// BuildRels computes all derived relations of g.
func BuildRels(g *Graph) *Rels {
	r := &Rels{G: g, Idx: make(map[EventID]int)}
	// Index init writes, then thread events.
	for l := range g.InitVals {
		id := EventID{Thread: InitThread, Index: l}
		r.Idx[id] = len(r.Ev)
		r.Ev = append(r.Ev, g.Event(id))
	}
	for _, evs := range g.Threads {
		for _, e := range evs {
			r.Idx[e.ID] = len(r.Ev)
			r.Ev = append(r.Ev, e)
		}
	}
	r.N = len(r.Ev)
	n := r.N

	// sb: init before all thread events; po within each thread.
	r.Sb = NewBitMat(n)
	r.SbLoc = NewBitMat(n)
	nInit := len(g.InitVals)
	for i := 0; i < nInit; i++ {
		for j := nInit; j < n; j++ {
			r.Sb.Set(i, j)
			if r.Ev[j].Kind != KFence && r.Ev[j].Kind != KError && r.Ev[i].Loc == r.Ev[j].Loc {
				r.SbLoc.Set(i, j)
			}
		}
	}
	for _, evs := range g.Threads {
		for a := 0; a < len(evs); a++ {
			ia := r.Idx[evs[a].ID]
			for b := a + 1; b < len(evs); b++ {
				ib := r.Idx[evs[b].ID]
				r.Sb.Set(ia, ib)
				ea, eb := evs[a], evs[b]
				if ea.Kind != KFence && ea.Kind != KError &&
					eb.Kind != KFence && eb.Kind != KError && ea.Loc == eb.Loc {
					r.SbLoc.Set(ia, ib)
				}
			}
		}
	}

	// rf.
	r.RfM = NewBitMat(n)
	for rd, rf := range g.Rf {
		if rf.Bottom {
			continue
		}
		r.RfM.Set(r.Idx[rf.W], r.Idx[rd])
	}

	// mo (transitive within each location's total order).
	r.MoM = NewBitMat(n)
	for _, order := range g.Mo {
		for a := 0; a < len(order); a++ {
			for b := a + 1; b < len(order); b++ {
				r.MoM.Set(r.Idx[order[a]], r.Idx[order[b]])
			}
		}
	}

	// fr = rf^-1 ; mo (strict): read -> every write mo-after its source.
	r.FrM = NewBitMat(n)
	for rd, rf := range g.Rf {
		if rf.Bottom {
			continue
		}
		e := g.Event(rd)
		order := g.Mo[e.Loc]
		src := -1
		for i, w := range order {
			if w == rf.W {
				src = i
				break
			}
		}
		if src < 0 {
			continue // source not in mo (cannot happen for well-formed graphs)
		}
		ri := r.Idx[rd]
		for i := src + 1; i < len(order); i++ {
			wi := r.Idx[order[i]]
			if wi != ri { // an update never fr-precedes itself
				r.FrM.Set(ri, wi)
			}
		}
	}

	r.SwM = r.buildSw()

	r.Hb = r.Sb.Clone()
	r.Hb.OrWith(r.SwM)
	r.Hb.TransClose()

	r.Eco = r.RfM.Clone()
	r.Eco.OrWith(r.MoM)
	r.Eco.OrWith(r.FrM)
	r.Eco.TransClose()

	return r
}

// buildSw computes the synchronizes-with relation in the RC11 style:
//
//	sw = [rel-side] ; rs ; rf ; [acq-side]
//
// where the release side of a base write w is w itself when it has
// release semantics, or any release fence sb-before w in the same
// thread; rs (the release sequence) is w followed by any chain of
// updates reading from it; and the acquire side of a read r is r itself
// when it has acquire semantics, or any acquire fence sb-after r.
func (r *Rels) buildSw() *BitMat {
	g := r.G
	sw := NewBitMat(r.N)
	for rd, rf := range g.Rf {
		if rf.Bottom {
			continue
		}
		re := g.Event(rd)
		// Walk the release sequence backwards from the rf source: the
		// source itself, and if it is an update, the write it read from,
		// transitively.
		base := rf.W
		bases := []EventID{base}
		for {
			be := g.Event(base)
			if be == nil || be.Kind != KUpdate {
				break
			}
			prev := g.Rf[base]
			if prev.Bottom {
				break
			}
			base = prev.W
			bases = append(bases, base)
		}
		// Acquire-side targets.
		var acqSides []int
		if re.Mode.HasAcq() {
			acqSides = append(acqSides, r.Idx[rd])
		}
		if rd.Thread >= 0 {
			for _, f := range g.Threads[rd.Thread][rd.Index+1:] {
				if f.Kind == KFence && f.Mode.HasAcq() {
					acqSides = append(acqSides, r.Idx[f.ID])
				}
			}
		}
		if len(acqSides) == 0 {
			continue
		}
		for _, b := range bases {
			be := g.Event(b)
			var relSides []int
			if be.Mode.HasRel() {
				relSides = append(relSides, r.Idx[b])
			}
			if b.Thread >= 0 {
				for _, f := range g.Threads[b.Thread][:b.Index] {
					if f.Kind == KFence && f.Mode.HasRel() {
						relSides = append(relSides, r.Idx[f.ID])
					}
				}
			}
			for _, s := range relSides {
				for _, t := range acqSides {
					if s != t {
						sw.Set(s, t)
					}
				}
			}
		}
	}
	return sw
}

// IsSCEvent reports whether indexed event i carries SC mode.
func (r *Rels) IsSCEvent(i int) bool { return r.Ev[i].Mode.IsSC() }

// IsSCFence reports whether indexed event i is an SC fence.
func (r *Rels) IsSCFence(i int) bool { return r.Ev[i].Kind == KFence && r.Ev[i].Mode.IsSC() }

package graph

import "sort"

// Rels materializes the derived relations of an execution graph over a
// dense event index, ready for the axiomatic consistency predicates in
// internal/mm. Index layout: init writes first (one per location), then
// explicit events in stamp (addition) order. Stamp order is what makes
// Extend possible: the event appended last has the largest stamp, so an
// extension always adds index N — one new row and column — and never
// shifts existing indices.
type Rels struct {
	G     *Graph
	N     int
	Ev    []*Event // indexed events; init events synthesized
	nInit int
	// tIdx maps (thread, po-index) to the dense index. The rows follow
	// the same copy-on-write discipline as Graph.Threads: Extend clamps
	// and appends, so parent and child share all but the extended row.
	tIdx [][]int32

	Sb    *BitMat // program order (transitive), init before everything
	RfM   *BitMat // reads-from as a matrix (w -> r)
	MoM   *BitMat // modification order (transitive per location)
	FrM   *BitMat // from-read: r -> w' for w' mo-after rf(r)
	Hb    *BitMat // happens-before = (sb ∪ sw)+
	Eco   *BitMat // extended coherence order = (rf ∪ mo ∪ fr)+
	SbLoc *BitMat // sb restricted to same-location accesses

	// mats embeds the seven carried matrices (the pointers above point
	// into it) with their bit rows carved out of one shared slab: a
	// whole relation set costs two allocations. sw is deliberately NOT
	// carried: no consumer reads it after Hb is closed over it, so
	// BuildRels derives it into pooled scratch and drops it.
	mats [7]BitMat

	// topo caches a topological order of sb ∪ rf ∪ mo over the dense
	// indices (topo[k] = vertex at position k) when topoState is
	// topoValid; the consistency predicates seed their closure-free
	// acyclicity checks from it (see BitMat.AcyclicSeeded). BuildRels
	// derives it with one Kahn pass; Extend maintains it
	// Pearce–Kelly-style from the one-event delta, so along exploration
	// chains child states inherit a valid order for near-free.
	// topoCyclic records that the union itself is cyclic — a permanent
	// fact, since extension only ever adds edges.
	topo      []int32
	topoState uint8
}

// topo cache states. The zero value (topoNone) means "not derived
// yet": the order is computed lazily on first use, so states that die
// before any relation-level check (atomicity, coherence) never pay for
// it. A conflicted Extend (back edge) also parks the child at topoNone
// instead of re-deriving eagerly.
const (
	topoNone uint8 = iota
	topoValid
	topoCyclic
)

// ensureTopo derives the cached order on first demand with one Kahn
// pass over the union adjacency (counted as a lazy derivation —
// fresh BuildRels states and Extend's back-edge parks both land here).
func (r *Rels) ensureTopo() {
	if r.topoState != topoNone {
		return
	}
	acDerives.Add(1)
	u := r.Sb.ClonePooled()
	u.OrWith(r.RfM)
	u.OrWith(r.MoM)
	if len(r.topo) != r.N {
		r.topo = make([]int32, r.N)
	}
	if u.kahn(r.topo) {
		r.topoState = topoValid
	} else {
		r.topoState = topoCyclic
		r.topo = nil
		acCyclicSt.Add(1)
	}
	u.Release()
}

// TopoOK reports whether a valid topological order of sb ∪ rf ∪ mo is
// available — which in particular proves that union (and every subset
// of it, e.g. porf) acyclic. Derives the order on first use.
func (r *Rels) TopoOK() bool { r.ensureTopo(); return r.topoState == topoValid }

// TopoCyclic reports whether sb ∪ rf ∪ mo is known to be cyclic —
// which makes every superset cyclic too. Derives on first use.
func (r *Rels) TopoCyclic() bool { r.ensureTopo(); return r.topoState == topoCyclic }

// TopoOrder returns the cached topological order (position → vertex),
// deriving it on first use, or nil when the union is cyclic. The slice
// is shared state: it may be passed to BitMat.AcyclicSeeded freely,
// but to the refreshing BitMat.AcyclicWithOrder only for relations
// that are supersets of sb ∪ rf ∪ mo (a refreshed order must stay
// valid for the union).
func (r *Rels) TopoOrder() []int32 {
	r.ensureTopo()
	if r.topoState != topoValid {
		return nil
	}
	return r.topo
}

// AcyclicSuperset decides acyclicity of m, which the caller guarantees
// is a superset of sb ∪ rf ∪ mo (the SC order candidate
// sb ∪ rf ∪ mo ∪ fr). It exploits the cached order in every state:
// a known-cyclic union rejects immediately; a valid order seeds the
// fast path and is refreshed from m on misses; and when no order has
// been derived yet, the single Kahn pass that decides m doubles as the
// derivation — acyclic supersets hand the state a valid order for
// free, so one pass pays for both the verdict and the cache.
func (r *Rels) AcyclicSuperset(m *BitMat) bool {
	switch r.topoState {
	case topoCyclic:
		acShortcuts.Add(1)
		return false
	case topoValid:
		return m.AcyclicWithOrder(r.topo)
	}
	acChecks.Add(1)
	acKahn.Add(1)
	if len(r.topo) != r.N {
		r.topo = make([]int32, r.N)
	}
	ok := m.kahn(r.topo)
	if ok {
		r.topoState = topoValid
	} else {
		// m cyclic says nothing about the subset union: stay underived.
		acCycles.Add(1)
	}
	m.crossCheck(ok)
	return ok
}

// IndexOf returns the dense index of the event id.
func (r *Rels) IndexOf(id EventID) int {
	if id.IsInit() {
		return id.Index
	}
	return int(r.tIdx[id.Thread][id.Index])
}

// RelsOf returns the derived relations of g, memoized on the graph:
// the memory-model consistency predicates (four of them in internal/mm)
// all go through here, so one graph state is analyzed at most once
// however many predicates inspect it. When g carries an extension hint
// (NoteExtended) and its parent's relations are still memoized, the
// result is computed incrementally from the parent instead of from
// scratch — the common case during exploration, where every branch is
// parent-plus-one-event.
func RelsOf(g *Graph) *Rels {
	if g.rels != nil {
		return g.rels
	}
	switch {
	case g.extKind == extAppend && g.extParent != nil && g.extParent.rels != nil:
		g.rels = g.extParent.rels.Extend(g, g.extEvent)
	case g.extKind == extResolve && g.extParent != nil && g.extParent.rels != nil:
		g.rels = g.extParent.rels.Resolve(g, g.extEvent)
	default:
		g.rels = BuildRels(g)
	}
	// Drop the hint: it has served its purpose, and holding it would
	// pin the whole ancestor chain (graphs and relations) in memory.
	g.extParent, g.extEvent = nil, nil
	g.extKind = extNone
	return g.rels
}

// BuildRels computes all derived relations of g from scratch.
func BuildRels(g *Graph) *Rels {
	r := &Rels{G: g, nInit: len(g.InitVals)}
	// Index init writes, then explicit events in stamp order.
	for l := range g.InitVals {
		id := EventID{Thread: InitThread, Index: l}
		r.Ev = append(r.Ev, g.Event(id))
	}
	for _, evs := range g.Threads {
		r.Ev = append(r.Ev, evs...)
	}
	sort.Slice(r.Ev[r.nInit:], func(i, j int) bool {
		return r.Ev[r.nInit+i].Stamp < r.Ev[r.nInit+j].Stamp
	})
	r.N = len(r.Ev)
	n := r.N
	r.tIdx = make([][]int32, len(g.Threads))
	for t, evs := range g.Threads {
		r.tIdx[t] = make([]int32, len(evs))
	}
	for i := r.nInit; i < n; i++ {
		id := r.Ev[i].ID
		r.tIdx[id.Thread][id.Index] = int32(i)
	}

	r.allocMats(n)

	// sb: init before all thread events; po within each thread. The
	// transitive rows are assembled word-wide — each init row is the
	// "every explicit event" mask, and within a thread row(a) is
	// row(a+1) plus the bit for a+1 (a descending suffix OR) — instead
	// of O(n²) individual bit sets.
	nInit := r.nInit
	if nInit > 0 && n > nInit {
		for j := nInit; j < n; j++ {
			r.Sb.Set(0, j)
		}
		for i := 1; i < nInit; i++ {
			r.Sb.copyRow(i, 0)
		}
	}
	for i := 0; i < nInit; i++ {
		for j := nInit; j < n; j++ {
			if r.Ev[j].Kind != KFence && r.Ev[j].Kind != KError && r.Ev[i].Loc == r.Ev[j].Loc {
				r.SbLoc.Set(i, j)
			}
		}
	}
	for _, evs := range g.Threads {
		for a := len(evs) - 2; a >= 0; a-- {
			ia, ib := r.IndexOf(evs[a].ID), r.IndexOf(evs[a+1].ID)
			r.Sb.copyRow(ia, ib)
			r.Sb.Set(ia, ib)
		}
		for a := 0; a < len(evs); a++ {
			ea := evs[a]
			if ea.Kind == KFence || ea.Kind == KError {
				continue
			}
			ia := r.IndexOf(ea.ID)
			for b := a + 1; b < len(evs); b++ {
				eb := evs[b]
				if eb.Kind != KFence && eb.Kind != KError && ea.Loc == eb.Loc {
					r.SbLoc.Set(ia, r.IndexOf(eb.ID))
				}
			}
		}
	}

	// rf.
	for t, evs := range g.Threads {
		for i, e := range evs {
			if !e.IsReadLike() {
				continue
			}
			rf := g.rf[t][i]
			if rf.Bottom {
				continue
			}
			r.RfM.Set(r.IndexOf(rf.W), r.IndexOf(e.ID))
		}
	}

	// mo (transitive within each location's total order): the same
	// descending suffix-OR trick as sb — each write's row is its
	// mo-successor's row plus that successor's bit.
	for _, order := range g.Mo {
		for a := len(order) - 2; a >= 0; a-- {
			ia, ib := r.IndexOf(order[a]), r.IndexOf(order[a+1])
			r.MoM.copyRow(ia, ib)
			r.MoM.Set(ia, ib)
		}
	}

	// fr = rf^-1 ; mo (strict): read -> every write mo-after its
	// source. That target set is exactly the source's mo row, so each
	// read's fr row is one word-wide copy (minus the read itself — an
	// update never fr-precedes itself). A source missing from mo
	// cannot happen for well-formed graphs: its empty mo row then
	// yields no fr, as before.
	for t, evs := range g.Threads {
		for i, e := range evs {
			if !e.IsReadLike() {
				continue
			}
			rf := g.rf[t][i]
			if rf.Bottom {
				continue
			}
			ri := r.IndexOf(e.ID)
			r.FrM.copyRowFrom(ri, r.MoM, r.IndexOf(rf.W))
			r.FrM.Clear(ri, ri)
		}
	}

	sw := NewBitMatPooled(n)
	r.buildSw(sw)

	copy(r.Hb.bits, r.Sb.bits)
	r.Hb.OrWith(sw)
	sw.Release()
	r.Hb.TransClose()

	copy(r.Eco.bits, r.RfM.bits)
	r.Eco.OrWith(r.MoM)
	r.Eco.OrWith(r.FrM)
	r.Eco.TransClose()

	return r
}

// buildSw computes the synchronizes-with relation in the RC11 style:
//
//	sw = [rel-side] ; rs ; rf ; [acq-side]
//
// where the release side of a base write w is w itself when it has
// release semantics, or any release fence sb-before w in the same
// thread; rs (the release sequence) is w followed by any chain of
// updates reading from it; and the acquire side of a read r is r itself
// when it has acquire semantics, or any acquire fence sb-after r.
func (r *Rels) buildSw(sw *BitMat) {
	g := r.G
	for t, evs := range g.Threads {
		for i, re := range evs {
			if !re.IsReadLike() {
				continue
			}
			rf := g.rf[t][i]
			if rf.Bottom {
				continue
			}
			// Acquire-side targets.
			var acqSides []int
			if re.Mode.HasAcq() {
				acqSides = append(acqSides, r.IndexOf(re.ID))
			}
			for _, f := range evs[i+1:] {
				if f.Kind == KFence && f.Mode.HasAcq() {
					acqSides = append(acqSides, r.IndexOf(f.ID))
				}
			}
			if len(acqSides) == 0 {
				continue
			}
			r.swFromBases(g, rf.W, func(s int) {
				for _, a := range acqSides {
					if s != a {
						sw.Set(s, a)
					}
				}
			})
		}
	}
}

// swFromBases walks the release sequence backwards from the rf source
// base (the source itself and, through update chains, each write it
// read from) and calls emit with the index of every release side: the
// base when it carries release semantics, and every release fence
// sb-before the base in its thread.
func (r *Rels) swFromBases(g *Graph, base EventID, emit func(relSide int)) {
	for {
		be := g.Event(base)
		if be.Mode.HasRel() {
			emit(r.IndexOf(base))
		}
		if base.Thread >= 0 {
			for _, f := range g.Threads[base.Thread][:base.Index] {
				if f.Kind == KFence && f.Mode.HasRel() {
					emit(r.IndexOf(f.ID))
				}
			}
		}
		if be.Kind != KUpdate {
			return
		}
		prev := g.rf[base.Thread][base.Index]
		if prev.Bottom {
			return
		}
		base = prev.W
	}
}

// IsSCEvent reports whether indexed event i carries SC mode.
func (r *Rels) IsSCEvent(i int) bool { return r.Ev[i].Mode.IsSC() }

// IsSCFence reports whether indexed event i is an SC fence.
func (r *Rels) IsSCFence(i int) bool { return r.Ev[i].Kind == KFence && r.Ev[i].Mode.IsSC() }

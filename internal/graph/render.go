package graph

import (
	"fmt"
	"strings"
)

// locName returns the display name of a location.
func (g *Graph) locName(l Loc) string {
	if int(l) < len(g.LocNames) && g.LocNames[l] != "" {
		return g.LocNames[l]
	}
	return fmt.Sprintf("loc%d", l)
}

// eventText renders one event in the paper's notation with location names.
func (g *Graph) eventText(e *Event) string {
	switch e.Kind {
	case KFence:
		return fmt.Sprintf("F^%s", e.Mode)
	case KError:
		return fmt.Sprintf("ERROR(%s)", e.Msg)
	case KRead:
		return fmt.Sprintf("R^%s(%s,%d)", e.Mode, g.locName(e.Loc), e.RVal)
	case KWrite:
		return fmt.Sprintf("W^%s(%s,%d)", e.Mode, g.locName(e.Loc), e.Val)
	case KUpdate:
		if e.Degraded {
			return fmt.Sprintf("U^%s(%s,r%d)", e.Mode, g.locName(e.Loc), e.RVal)
		}
		return fmt.Sprintf("U^%s(%s,%d->%d)", e.Mode, g.locName(e.Loc), e.RVal, e.Val)
	}
	return "?"
}

// Render returns a human-readable multi-line description of the graph:
// per-thread event listings annotated with rf sources, followed by the
// per-location modification orders. This is the textual counterpart of
// the paper's execution-graph figures (Figs. 2, 5, 14–17, 19).
func (g *Graph) Render() string {
	var b strings.Builder
	for l, v := range g.InitVals {
		fmt.Fprintf(&b, "init %s = %d\n", g.locName(Loc(l)), v)
	}
	for t, evs := range g.Threads {
		fmt.Fprintf(&b, "thread T%d:\n", t)
		for _, e := range evs {
			fmt.Fprintf(&b, "  [%2d] %-28s", e.ID.Index, g.eventText(e))
			if e.IsReadLike() {
				rf := g.rf[t][e.ID.Index]
				if rf.Bottom {
					b.WriteString("  rf: ⊥ (missing)")
				} else {
					fmt.Fprintf(&b, "  rf: %s", rf.W)
				}
			}
			if e.InAwait() {
				fmt.Fprintf(&b, "  [await#%d iter%d]", e.AwaitSeq, e.AwaitIter)
			}
			if e.Point != "" {
				fmt.Fprintf(&b, "  @%s", e.Point)
			}
			b.WriteByte('\n')
		}
	}
	for l, order := range g.Mo {
		if len(order) <= 1 {
			continue
		}
		fmt.Fprintf(&b, "mo(%s):", g.locName(Loc(l)))
		for _, w := range order {
			fmt.Fprintf(&b, " %s", w)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT returns a Graphviz rendering of the graph with po, rf and mo
// edges, suitable for visual inspection of counterexamples.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=monospace];\n", title)
	name := func(id EventID) string {
		if id.IsInit() {
			return fmt.Sprintf("init_%d", id.Index)
		}
		return fmt.Sprintf("t%d_%d", id.Thread, id.Index)
	}
	for l, v := range g.InitVals {
		fmt.Fprintf(&b, "  init_%d [label=\"Winit(%s,%d)\", style=dotted];\n", l, g.locName(Loc(l)), v)
	}
	for t, evs := range g.Threads {
		fmt.Fprintf(&b, "  subgraph cluster_t%d { label=\"T%d\";\n", t, t)
		for _, e := range evs {
			fmt.Fprintf(&b, "    %s [label=%q];\n", name(e.ID), g.eventText(e))
		}
		fmt.Fprintf(&b, "  }\n")
		for i := 1; i < len(evs); i++ {
			fmt.Fprintf(&b, "  %s -> %s [label=\"po\", color=gray];\n", name(evs[i-1].ID), name(evs[i].ID))
		}
	}
	for t, evs := range g.Threads {
		for i, e := range evs {
			if !e.IsReadLike() {
				continue
			}
			rd := e.ID
			rf := g.rf[t][i]
			if rf.Bottom {
				fmt.Fprintf(&b, "  bottom_%s [label=\"⊥\", shape=plaintext];\n  bottom_%s -> %s [label=\"rf\", color=red, style=dashed];\n",
					name(rd), name(rd), name(rd))
				continue
			}
			fmt.Fprintf(&b, "  %s -> %s [label=\"rf\", color=forestgreen];\n", name(rf.W), name(rd))
		}
	}
	for _, order := range g.Mo {
		for i := 1; i < len(order); i++ {
			fmt.Fprintf(&b, "  %s -> %s [label=\"mo\", color=blue, style=dotted];\n", name(order[i-1]), name(order[i]))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

// mkGraph builds a small two-thread graph used across the tests:
// T0: W(x,1); T1: R(x)=1 reading from T0.
func mkGraph() *Graph {
	g := New(2, []Val{0}, []string{"x"})
	w := &Event{ID: EventID{0, 0}, Kind: KWrite, Mode: Rel, Loc: 0, Val: 1, AwaitSeq: -1}
	g.Append(w)
	g.InsertMo(0, w.ID, 1)
	r := &Event{ID: EventID{1, 0}, Kind: KRead, Mode: Acq, Loc: 0, RVal: 1, AwaitSeq: -1}
	g.Append(r)
	g.SetRF(r.ID, FromW(w.ID))
	return g
}

func TestGraphBasics(t *testing.T) {
	g := mkGraph()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.NumEvents() != 2 {
		t.Fatalf("NumEvents = %d", g.NumEvents())
	}
	if got := g.FinalVal(0); got != 1 {
		t.Fatalf("FinalVal = %d", got)
	}
	if g.MoMax(0) != (EventID{0, 0}) {
		t.Fatalf("MoMax = %v", g.MoMax(0))
	}
	init := g.Event(EventID{InitThread, 0})
	if init == nil || init.Kind != KWrite || init.Val != 0 {
		t.Fatalf("bad init event: %v", init)
	}
	if !g.Has(EventID{0, 0}) || g.Has(EventID{0, 5}) || g.Has(EventID{7, 0}) {
		t.Fatal("Has is wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mkGraph()
	c := g.Clone()
	w2 := &Event{ID: EventID{0, 1}, Kind: KWrite, Mode: Rlx, Loc: 0, Val: 2, AwaitSeq: -1}
	c.Append(w2)
	c.InsertMo(0, w2.ID, 2)
	if g.NumEvents() != 2 {
		t.Fatal("clone mutation leaked into original (events)")
	}
	if len(g.Mo[0]) != 2 {
		t.Fatal("clone mutation leaked into original (mo)")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint() == c.Fingerprint() {
		t.Fatal("different graphs share a fingerprint")
	}
}

func TestInsertMoPositions(t *testing.T) {
	g := New(1, []Val{0}, []string{"x"})
	a := &Event{ID: EventID{0, 0}, Kind: KWrite, Loc: 0, Val: 1, AwaitSeq: -1}
	b := &Event{ID: EventID{0, 1}, Kind: KWrite, Loc: 0, Val: 2, AwaitSeq: -1}
	g.Append(a)
	g.InsertMo(0, a.ID, 1)
	g.Append(b)
	g.InsertMo(0, b.ID, 1) // before a
	if g.MoIndex(0, b.ID) != 1 || g.MoIndex(0, a.ID) != 2 {
		t.Fatalf("mo order wrong: %v", g.Mo[0])
	}
	if g.FinalVal(0) != 1 {
		t.Fatalf("mo-max value = %d, want 1", g.FinalVal(0))
	}
}

func TestPorfPrefix(t *testing.T) {
	g := mkGraph()
	r2 := &Event{ID: EventID{1, 1}, Kind: KWrite, Mode: Rlx, Loc: 0, Val: 9, AwaitSeq: -1}
	g.Append(r2)
	g.InsertMo(0, r2.ID, 2)
	porf := g.PorfPrefix(EventID{1, 1})
	// The prefix must contain the read before it (po) and, through rf,
	// the write of T0.
	for _, id := range []EventID{{1, 1}, {1, 0}, {0, 0}} {
		if !porf.Has(g.Event(id)) {
			t.Fatalf("porf prefix missing %v", id)
		}
	}
}

func TestRestrictTo(t *testing.T) {
	g := mkGraph()
	keep := NewEventSet(g.NextStamp)
	keep.Add(g.Event(EventID{0, 0}))
	g.RestrictTo(keep)
	if g.NumEvents() != 1 {
		t.Fatalf("restriction kept %d events", g.NumEvents())
	}
	if len(g.Mo[0]) != 2 { // init + the write
		t.Fatalf("mo not restricted: %v", g.Mo[0])
	}
	if len(g.rf[1]) != 0 {
		t.Fatal("dropped read kept its rf entry")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBottomReads(t *testing.T) {
	g := mkGraph()
	r2 := &Event{ID: EventID{1, 1}, Kind: KRead, Mode: Acq, Loc: 0, AwaitSeq: 0, AwaitIter: 1}
	g.Append(r2)
	g.SetRF(r2.ID, BottomRF)
	bots := g.BottomReads()
	if len(bots) != 1 || bots[0] != r2.ID {
		t.Fatalf("BottomReads = %v", bots)
	}
	if !strings.Contains(g.Render(), "⊥") {
		t.Fatal("render should show the missing rf edge")
	}
}

func TestRenderAndDOT(t *testing.T) {
	g := mkGraph()
	txt := g.Render()
	for _, needle := range []string{"init x = 0", "W^rel(x,1)", "R^acq(x,1)", "mo(x)"} {
		if !strings.Contains(txt, needle) {
			t.Errorf("render missing %q in:\n%s", needle, txt)
		}
	}
	dot := g.DOT("test")
	for _, needle := range []string{"digraph", "rf", "cluster_t0", "Winit(x,0)"} {
		if !strings.Contains(dot, needle) {
			t.Errorf("DOT missing %q", needle)
		}
	}
}

func TestEventStrings(t *testing.T) {
	cases := map[string]*Event{
		"W^rel T0.0 (loc0,1)":     {ID: EventID{0, 0}, Kind: KWrite, Mode: Rel, Val: 1},
		"R^acq T1.2 (loc3,7)":     {ID: EventID{1, 2}, Kind: KRead, Mode: Acq, Loc: 3, RVal: 7},
		"U^sc T0.1 (loc0,0->1)":   {ID: EventID{0, 1}, Kind: KUpdate, Mode: SC, RVal: 0, Val: 1},
		"U^rlx T0.1 (loc0,5->ro)": {ID: EventID{0, 1}, Kind: KUpdate, Mode: Rlx, RVal: 5, Degraded: true},
		"F^sc T2.0":               {ID: EventID{2, 0}, Kind: KFence, Mode: SC},
		"ERROR T0.9 (boom)":       {ID: EventID{0, 9}, Kind: KError, Msg: "boom"},
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestModePredicates(t *testing.T) {
	if !Acq.HasAcq() || !AcqRel.HasAcq() || !SC.HasAcq() || Rel.HasAcq() || Rlx.HasAcq() {
		t.Error("HasAcq wrong")
	}
	if !Rel.HasRel() || !AcqRel.HasRel() || !SC.HasRel() || Acq.HasRel() || Rlx.HasRel() {
		t.Error("HasRel wrong")
	}
	if !SC.IsSC() || AcqRel.IsSC() {
		t.Error("IsSC wrong")
	}
	names := map[Mode]string{ModeNone: "none", Rlx: "rlx", Acq: "acq", Rel: "rel", AcqRel: "acqrel", SC: "sc"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

// TestBitMatProperties checks the transitive-closure and cycle
// machinery with testing/quick on random small relations.
func TestBitMatProperties(t *testing.T) {
	closureIsTransitive := func(edges []uint16, nRaw uint8) bool {
		n := int(nRaw%14) + 2
		m := NewBitMat(n)
		for _, e := range edges {
			m.Set(int(e)%n, int(e>>4)%n)
		}
		c := m.Clone()
		c.TransClose()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !c.Get(i, j) {
					continue
				}
				for k := 0; k < n; k++ {
					if c.Get(j, k) && !c.Get(i, k) {
						return false
					}
				}
			}
		}
		// Closure contains the original.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.Get(i, j) && !c.Get(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(closureIsTransitive, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}

	cycleMatchesClosureDiagonal := func(edges []uint16, nRaw uint8) bool {
		n := int(nRaw%14) + 2
		m := NewBitMat(n)
		for _, e := range edges {
			m.Set(int(e)%n, int(e>>4)%n)
		}
		c := m.Clone()
		c.TransClose()
		diag := false
		for i := 0; i < n; i++ {
			if c.Get(i, i) {
				diag = true
				break
			}
		}
		return m.HasCycle() == diag
	}
	if err := quick.Check(cycleMatchesClosureDiagonal, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitMatCompose(t *testing.T) {
	m := NewBitMat(3)
	m.Set(0, 1)
	o := NewBitMat(3)
	o.Set(1, 2)
	r := m.Compose(o)
	if !r.Get(0, 2) || r.Get(0, 1) || r.Get(1, 2) {
		t.Fatal("composition wrong")
	}
}

// TestFingerprintProperty: graphs that differ in rf must differ in
// fingerprint; clones must not.
func TestFingerprintProperty(t *testing.T) {
	g := New(2, []Val{0}, []string{"x"})
	w := &Event{ID: EventID{0, 0}, Kind: KWrite, Loc: 0, Val: 1, AwaitSeq: -1}
	g.Append(w)
	g.InsertMo(0, w.ID, 1)
	r := &Event{ID: EventID{1, 0}, Kind: KRead, Loc: 0, RVal: 1, AwaitSeq: -1}
	g.Append(r)
	g.SetRF(r.ID, FromW(w.ID))

	c := g.Clone()
	if g.Fingerprint() != c.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	c.SetRF(r.ID, BottomRF)
	if g.Fingerprint() == c.Fingerprint() {
		t.Fatal("rf change did not change the fingerprint")
	}
}

package graph

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file is the closure-free acyclicity engine. The memory-model
// consistency predicates in internal/mm decide every verdict by asking
// whether some union of relation matrices is acyclic; historically that
// went through HasCycle, a full O(n³/64) transitive closure per check,
// several times per explored graph. The engine replaces the closure
// with two cheaper layers:
//
//   - Acyclic: an iterative bitset Kahn pass over the adjacency rows —
//     O(n²/64 + edges), pooled scratch, zero steady-state allocations.
//   - AcyclicSeeded / AcyclicWithOrder: an O(n²/64) fast path that
//     verifies the matrix against a cached topological order (carried
//     per exploration state by Rels and maintained incrementally by
//     Extend). When every edge respects the order the relation is
//     acyclic by construction and the Kahn pass is skipped entirely.
//
// TransClose/HasCycle remain for the places where a true closure is
// semantically needed (Hb/Eco construction in BuildRels) and as the
// differential oracle (CrossCheckAcyclic, TestBitMatProperties).

// CrossCheckAcyclic, when true, makes every Acyclic/AcyclicSeeded/
// AcyclicWithOrder call also run the closure-based HasCycle oracle and
// panic on disagreement. Test-only (the corpus differential tests flip
// it around full explorations); it must be toggled only while no
// checker is running.
var CrossCheckAcyclic bool

// acyclicScratch pools the working state of the engine: Kahn's
// indegree and worklist arrays, a position buffer for order refreshes,
// and the seen-mask of the order verification fast path.
type acyclicScratch struct {
	indeg []int32
	queue []int32
	pos   []int32
	seen  []uint64
}

var acyclicPool = sync.Pool{New: func() any { return new(acyclicScratch) }}

// int32Scratch returns buf resized to n elements (contents arbitrary).
func int32Scratch(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// lastWordMask masks off the row bits at column n and beyond, so a
// stray bit past the matrix dimension can never be read as an edge.
func lastWordMask(n int) uint64 {
	if r := uint(n) % 64; r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// Engine counters (process-wide, atomic). Incremented once per check
// or per order-maintenance step — never per edge — so the hot path
// pays a handful of uncontended atomic adds per explored graph.
var (
	acChecks    atomic.Uint64
	acSeedHits  atomic.Uint64
	acKahn      atomic.Uint64
	acCycles    atomic.Uint64
	acShortcuts atomic.Uint64
	acExtends   atomic.Uint64
	acDerives   atomic.Uint64
	acCyclicSt  atomic.Uint64
)

// AcyclicCounters is a snapshot of the acyclicity engine's cumulative
// event counts. Counters are process-wide: concurrent runs (a pool of
// checkers) fold into the same totals, so per-run deltas taken around
// a run are exact only when nothing else verifies in parallel.
type AcyclicCounters struct {
	Checks        uint64 // Acyclic/AcyclicSeeded/AcyclicWithOrder calls
	SeedHits      uint64 // checks decided by the cached-order fast path
	KahnPasses    uint64 // full Kahn passes (cold checks and seed misses)
	CyclesFound   uint64 // checks that reported a cycle
	TopoShortcuts uint64 // verdicts decided from the cached order state alone
	OrderExtends  uint64 // Extend maintained the cached order by insertion
	OrderDerives  uint64 // lazy full derivations (first use of an underived state — fresh builds and back-edge parks alike)
	OrderCyclic   uint64 // states whose sb ∪ rf ∪ mo union is cyclic
}

// AcyclicCountersNow returns the current cumulative counters.
func AcyclicCountersNow() AcyclicCounters {
	return AcyclicCounters{
		Checks:        acChecks.Load(),
		SeedHits:      acSeedHits.Load(),
		KahnPasses:    acKahn.Load(),
		CyclesFound:   acCycles.Load(),
		TopoShortcuts: acShortcuts.Load(),
		OrderExtends:  acExtends.Load(),
		OrderDerives:  acDerives.Load(),
		OrderCyclic:   acCyclicSt.Load(),
	}
}

// Sub returns the counter delta c - o (for per-run accounting).
func (c AcyclicCounters) Sub(o AcyclicCounters) AcyclicCounters {
	return AcyclicCounters{
		Checks:        c.Checks - o.Checks,
		SeedHits:      c.SeedHits - o.SeedHits,
		KahnPasses:    c.KahnPasses - o.KahnPasses,
		CyclesFound:   c.CyclesFound - o.CyclesFound,
		TopoShortcuts: c.TopoShortcuts - o.TopoShortcuts,
		OrderExtends:  c.OrderExtends - o.OrderExtends,
		OrderDerives:  c.OrderDerives - o.OrderDerives,
		OrderCyclic:   c.OrderCyclic - o.OrderCyclic,
	}
}

// CountTopoShortcut records a verdict-path decision made purely from
// the cached topological order state (internal/mm: SC's cyclic-union
// early-out and WMM's porf-subset shortcut).
func CountTopoShortcut() { acShortcuts.Add(1) }

// kahn runs an iterative Kahn pass over the adjacency rows and reports
// whether the relation is acyclic (a self-loop counts as a cycle).
// When out is non-nil and the pass succeeds, out[k] receives the
// vertex at topological position k; on a cyclic relation only a prefix
// of out is written, so callers that cache orders must treat out as
// valid only on a true return.
func (m *BitMat) kahn(out []int32) bool {
	n := m.n
	if n == 0 {
		return true
	}
	s := acyclicPool.Get().(*acyclicScratch)
	s.indeg = int32Scratch(s.indeg, n)
	s.queue = int32Scratch(s.queue, n)
	indeg := s.indeg
	clear(indeg)
	tail := lastWordMask(n)
	last := m.words - 1
	for i := 0; i < n; i++ {
		row := m.bits[i*m.words : (i+1)*m.words]
		for w, word := range row {
			if w == last {
				word &= tail
			}
			for word != 0 {
				indeg[w*64+bits.TrailingZeros64(word)]++
				word &= word - 1
			}
		}
	}
	// LIFO worklist, seeded in reverse so low indices pop first; each
	// vertex enters at most once (its indegree reaches zero once), so
	// the preallocated capacity n never reallocates.
	queue := s.queue[:0]
	for v := n - 1; v >= 0; v-- {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	processed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if out != nil {
			out[processed] = u
		}
		processed++
		row := m.bits[int(u)*m.words : (int(u)+1)*m.words]
		for w, word := range row {
			if w == last {
				word &= tail
			}
			for word != 0 {
				j := w*64 + bits.TrailingZeros64(word)
				if indeg[j]--; indeg[j] == 0 {
					queue = append(queue, int32(j))
				}
				word &= word - 1
			}
		}
	}
	acyclicPool.Put(s)
	return processed == n
}

// respectsOrder reports whether order is a permutation of the vertices
// under which every edge points forward — a witness that the relation
// is acyclic, verified in O(n²/64) word operations. An order of the
// wrong length, with out-of-range entries or with duplicates is
// rejected (the caller then falls back to the full Kahn pass), so any
// stale or malformed seed degrades performance, never correctness.
func (m *BitMat) respectsOrder(order []int32) bool {
	n := m.n
	if len(order) != n {
		return false
	}
	s := acyclicPool.Get().(*acyclicScratch)
	if cap(s.seen) < m.words {
		s.seen = make([]uint64, m.words)
	} else {
		s.seen = s.seen[:m.words]
	}
	seen := s.seen
	clear(seen)
	ok := true
outer:
	for k := 0; k < n; k++ {
		v := int(order[k])
		if v < 0 || v >= n || seen[v/64]&(1<<(uint(v)%64)) != 0 {
			ok = false // not a permutation
			break
		}
		// Mark v before scanning its row so a self-loop is caught too.
		seen[v/64] |= 1 << (uint(v) % 64)
		row := m.bits[v*m.words : (v+1)*m.words]
		for w, word := range row {
			if word&seen[w] != 0 {
				ok = false // an edge into an earlier-placed vertex
				break outer
			}
		}
	}
	acyclicPool.Put(s)
	return ok
}

// crossCheck validates got against the closure oracle when the
// differential hook is armed.
func (m *BitMat) crossCheck(got bool) {
	if CrossCheckAcyclic && got == m.HasCycle() {
		panic(fmt.Sprintf("graph: acyclicity engine says acyclic=%v, transitive closure disagrees (n=%d)", got, m.n))
	}
}

// Acyclic reports whether the relation, viewed as a directed graph,
// contains no cycle. Unlike HasCycle it never computes a transitive
// closure: one Kahn pass over the adjacency rows, O(n²/64 + edges),
// with pooled scratch and zero steady-state allocations.
func (m *BitMat) Acyclic() bool {
	acChecks.Add(1)
	acKahn.Add(1)
	ok := m.kahn(nil)
	if !ok {
		acCycles.Add(1)
	}
	m.crossCheck(ok)
	return ok
}

// AcyclicSeeded is Acyclic seeded with a cached topological order
// (position → vertex): when every edge of m respects order the answer
// is an O(n²/64) verification, otherwise it falls back to the full
// Kahn pass. order is never written; pass nil to skip the fast path.
// Use this when order belongs to a different (sub-)relation whose
// invariant a refresh from m would violate.
func (m *BitMat) AcyclicSeeded(order []int32) bool {
	acChecks.Add(1)
	if order != nil && m.respectsOrder(order) {
		acSeedHits.Add(1)
		m.crossCheck(true)
		return true
	}
	acKahn.Add(1)
	ok := m.kahn(nil)
	if !ok {
		acCycles.Add(1)
	}
	m.crossCheck(ok)
	return ok
}

// AcyclicWithOrder is AcyclicSeeded with refresh: when the fast path
// misses but the Kahn pass finds m acyclic (and order has the right
// length), the freshly discovered topological order is written back
// into order, so the next check over the same or a derived state hits
// the fast path again. On a false return order is left untouched — a
// caller's cached order is only ever replaced by a valid one. Refresh
// is only sound when m is a superset of the relation order is cached
// for (a topological order of a superset orders every subset).
func (m *BitMat) AcyclicWithOrder(order []int32) bool {
	acChecks.Add(1)
	if order != nil && m.respectsOrder(order) {
		acSeedHits.Add(1)
		m.crossCheck(true)
		return true
	}
	acKahn.Add(1)
	s := acyclicPool.Get().(*acyclicScratch)
	s.pos = int32Scratch(s.pos, m.n)
	pos := s.pos
	ok := m.kahn(pos)
	if ok && len(order) == m.n {
		copy(order, pos)
	}
	acyclicPool.Put(s)
	if !ok {
		acCycles.Add(1)
	}
	m.crossCheck(ok)
	return ok
}

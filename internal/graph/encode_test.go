package graph

import (
	"bytes"
	"testing"
)

// mkEncGraph builds a graph exercising every encoded feature: multiple
// locations, a bottom read inside an await, a degraded update, a fence,
// an error event with a message, a point label, and — via RestrictTo —
// stamp gaps (checkpointed frontier graphs are often restrictions, so
// non-contiguous stamps are the common case, not the corner).
func mkEncGraph(t *testing.T) *Graph {
	t.Helper()
	g := New(3, []Val{0, 7}, []string{"x", "flag"})
	w := &Event{ID: EventID{0, 0}, Kind: KWrite, Mode: Rel, Loc: 0, Val: 1, AwaitSeq: -1, Point: "store_x"}
	g.Append(w)
	g.InsertMo(0, w.ID, 1)
	r := &Event{ID: EventID{1, 0}, Kind: KRead, Mode: Acq, Loc: 0, RVal: 1, AwaitSeq: -1}
	g.Append(r)
	g.SetRF(r.ID, FromW(w.ID))
	u := &Event{ID: EventID{1, 1}, Kind: KUpdate, Mode: AcqRel, Loc: 1, RVal: 7, Degraded: true, AwaitSeq: 2, AwaitIter: 3}
	g.Append(u)
	g.SetRF(u.ID, FromW(EventID{InitThread, 1}))
	f := &Event{ID: EventID{2, 0}, Kind: KFence, Mode: SC, AwaitSeq: -1}
	g.Append(f)
	b := &Event{ID: EventID{2, 1}, Kind: KRead, Mode: Rlx, Loc: 1, AwaitSeq: 0, AwaitIter: 0}
	g.Append(b)
	g.SetRF(b.ID, BottomRF)
	e := &Event{ID: EventID{2, 2}, Kind: KError, Mode: Rlx, Msg: "assert failed: x == 2", AwaitSeq: -1}
	g.Append(e)
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("test graph is broken: %v", err)
	}
	return g
}

func TestGraphEncodeRoundTrip(t *testing.T) {
	g := mkEncGraph(t)
	enc := AppendGraph(nil, g)
	dec, n, err := DecodeGraph(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
	}
	assertGraphsEqual(t, g, dec)

	// Re-encoding the decoded graph must be byte-identical: the encoding
	// is canonical, which is what makes checkpoint differential tests
	// able to compare files directly.
	enc2 := AppendGraph(nil, dec)
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding the decoded graph changed the bytes")
	}
}

func TestGraphEncodeRoundTripRestricted(t *testing.T) {
	g := mkEncGraph(t)
	// Restrict to a stamp-gapped subgraph: keep T0's write and T1's read.
	keep := NewEventSet(g.NextStamp)
	keep.Add(g.Event(EventID{0, 0}))
	keep.Add(g.Event(EventID{1, 0}))
	g.RestrictTo(keep)

	enc := AppendGraph(nil, g)
	dec, _, err := DecodeGraph(enc)
	if err != nil {
		t.Fatalf("decode restricted: %v", err)
	}
	assertGraphsEqual(t, g, dec)
}

func TestGraphEncodeSelfDelimiting(t *testing.T) {
	a, b := mkEncGraph(t), New(1, []Val{3}, []string{"y"})
	enc := AppendGraph(nil, a)
	mid := len(enc)
	enc = AppendGraph(enc, b)
	da, n, err := DecodeGraph(enc)
	if err != nil || n != mid {
		t.Fatalf("first decode: n=%d err=%v (want %d)", n, err, mid)
	}
	assertGraphsEqual(t, a, da)
	db, _, err := DecodeGraph(enc[n:])
	if err != nil {
		t.Fatalf("second decode: %v", err)
	}
	assertGraphsEqual(t, b, db)
}

// TestGraphDecodeTruncated feeds every proper prefix of a valid
// encoding to the decoder: all must fail cleanly, none may panic —
// torn checkpoint files land exactly here.
func TestGraphDecodeTruncated(t *testing.T) {
	enc := AppendGraph(nil, mkEncGraph(t))
	for i := 0; i < len(enc); i++ {
		if g, _, err := DecodeGraph(enc[:i]); err == nil {
			// A prefix that still decodes must decode to a valid graph
			// (possible only if trailing bytes were unreachable — which
			// the self-delimiting layout forbids).
			t.Fatalf("prefix of %d/%d bytes decoded without error (%d events)", i, len(enc), g.NumEvents())
		}
	}
}

// TestGraphDecodeCorrupted flips every byte of a valid encoding one at
// a time: the decoder must either reject the input or produce a graph
// that passes the full invariant audit — never panic, never return a
// structurally broken graph.
func TestGraphDecodeCorrupted(t *testing.T) {
	enc := AppendGraph(nil, mkEncGraph(t))
	buf := make([]byte, len(enc))
	for i := 0; i < len(enc); i++ {
		for _, bit := range []byte{0x01, 0x80, 0xff} {
			copy(buf, enc)
			buf[i] ^= bit
			g, _, err := DecodeGraph(buf)
			if err != nil {
				continue
			}
			if ierr := g.CheckInvariants(); ierr != nil {
				t.Fatalf("byte %d ^ %#x: decoder accepted an invalid graph: %v", i, bit, ierr)
			}
		}
	}
}

func assertGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("decoded graph invalid: %v", err)
	}
	if want.Fingerprint() != got.Fingerprint() {
		t.Fatalf("fingerprint mismatch:\nwant %s\ngot  %s", want.Fingerprint(), got.Fingerprint())
	}
	if want.Fingerprint128() != got.Fingerprint128() {
		t.Fatal("Fingerprint128 mismatch")
	}
	if want.NextStamp != got.NextStamp {
		t.Fatalf("NextStamp: want %d got %d", want.NextStamp, got.NextStamp)
	}
	for tid, evs := range want.Threads {
		for i, e := range evs {
			d := got.Threads[tid][i]
			if *e != *d {
				t.Fatalf("event %v differs:\nwant %+v\ngot  %+v", e.ID, *e, *d)
			}
		}
	}
	for l, order := range want.Mo {
		if len(got.Mo[l]) != len(order) {
			t.Fatalf("mo[%d] length differs", l)
		}
		for i, id := range order {
			if got.Mo[l][i] != id {
				t.Fatalf("mo[%d][%d]: want %v got %v", l, i, id, got.Mo[l][i])
			}
		}
	}
}

package graph

import "sort"

// Thread-symmetry reduction. Lock clients are permutation-symmetric:
// every client thread runs the identical program, so up to t! of the
// graphs the explorer visits are mere relabelings of each other. A
// SymSpec describes which threads are interchangeable and how the
// program's state is tagged by thread identity (a scalarset in the
// Murphi sense): per-thread replica locations ("owned" members of a
// location family, e.g. mcs.next.0/1/2) and values that embed a thread
// id (e.g. an MCS tail holding tid+1, or a qspinlock tail packing
// (tid+1)<<16). Relabeling thread t to π(t) then relabels the whole
// graph: thread rows move, owned locations follow their owner, and
// tid-carrying values are rewritten — τ_π(G) is exactly the graph the
// explorer would have reached had the interchangeable threads been
// scheduled under π from the start.
//
// Canonicalize picks, deterministically per orbit, one representative
// fingerprint: the minimum of Fingerprint128(τ_π(G)) over the candidate
// permutations π. Feeding that canonical key to the visited set
// collapses each orbit (up to t! graphs) to a single explored state.
// Candidates are pruned by an equivariant per-thread signature: when
// the signatures within each group are pairwise distinct, sorting by
// signature fixes π outright (the fast path, one fingerprint
// evaluation); ties are resolved by brute force over the tie classes
// only. The total permutation count is capped at construction
// (maxSymPerms), so refinement is always bounded.

// maxSymPerms bounds the product of group-size factorials a SymSpec
// will accept; beyond it Finalize refuses and symmetry is disabled for
// the program (7! threads of one group would already be past any
// tractable exploration anyway).
const maxSymPerms = 5040

// SymSpec is the symmetry metadata of a program: which thread groups
// are interchangeable and how locations and values carry thread
// identity. It is built by the vprog layer (which validates the
// declared groups against the program) and consumed by the explorer.
// All slices indexed by Loc have one entry per allocated location.
type SymSpec struct {
	// N is the thread count of the program.
	N int
	// Groups holds the validated symmetric thread groups, each sorted
	// ascending with at least two members, pairwise disjoint.
	Groups [][]int

	// LocOwner maps a location to its owning thread (-1 = unowned).
	// Owned locations are per-thread replicas: under π, the events on a
	// location owned by u move to the family member owned by π(u).
	LocOwner []int32
	// LocFam maps a location to its family id (-1 = none). All owned
	// locations have a family; FamLoc[fam][u] is the member owned by u
	// (-1 when u owns no member — validation guarantees coverage for
	// every grouped thread whose group touches the family).
	LocFam []int32
	FamLoc [][]int32

	// ValTagged marks locations whose stored values embed a thread id:
	// field = (v >> ValShift) - ValBias; a field in [0,N) names a
	// thread and is rewritten to π(field) (bits below ValShift are
	// preserved), anything else is left alone.
	ValTagged []bool
	ValShift  []uint8
	ValBias   []int64

	groupOf   []int32 // thread -> index into Groups, -1 ungrouped
	permCount int     // product of group-size factorials
}

// Finalize computes the internal tables and reports whether the spec is
// usable: at least one group, and a total candidate-permutation count
// within maxSymPerms. A false return means symmetry must stay disabled.
func (s *SymSpec) Finalize() bool {
	if len(s.Groups) == 0 {
		return false
	}
	s.groupOf = make([]int32, s.N)
	for t := range s.groupOf {
		s.groupOf[t] = -1
	}
	s.permCount = 1
	for gi, grp := range s.Groups {
		if len(grp) < 2 {
			return false
		}
		for _, t := range grp {
			if t < 0 || t >= s.N || s.groupOf[t] >= 0 {
				return false
			}
			s.groupOf[t] = int32(gi)
		}
		for k := 2; k <= len(grp); k++ {
			s.permCount *= k
			if s.permCount > maxSymPerms {
				return false
			}
		}
	}
	return true
}

// PermCount returns the total number of candidate permutations (the
// product of group-size factorials).
func (s *SymSpec) PermCount() int { return s.permCount }

// AllPerms returns every candidate permutation (source thread ->
// canonical slot) in a deterministic order: the product of all
// within-group permutations, identity on ungrouped threads. The program
// fingerprint minimizes over this full set — it has no per-graph
// signatures to prune with — and tests use it to enumerate orbits.
func (s *SymSpec) AllPerms() [][]int32 {
	base := make([]int32, s.N)
	for t := range base {
		base[t] = int32(t)
	}
	out := [][]int32{append([]int32(nil), base...)}
	for _, grp := range s.Groups {
		var next [][]int32
		// All assignments of grp's members to grp's slots, composed with
		// every permutation accumulated from the previous groups.
		idx := make([]int, len(grp))
		var gen func(k int, used uint64)
		gen = func(k int, used uint64) {
			if k == len(grp) {
				for _, p := range out {
					np := append([]int32(nil), p...)
					for i, t := range grp {
						np[t] = int32(grp[idx[i]])
					}
					next = append(next, np)
				}
				return
			}
			for i := range grp {
				if used&(1<<uint(i)) != 0 {
					continue
				}
				idx[k] = i
				gen(k+1, used|1<<uint(i))
			}
		}
		gen(0, 0)
		out = next
	}
	return out
}

// MapLoc returns the location l lands on under perm: owned locations
// follow their owner to perm[owner]'s family member, everything else is
// fixed.
func (s *SymSpec) MapLoc(perm []int32, l Loc) Loc {
	o := s.LocOwner[l]
	if o < 0 {
		return l
	}
	p := perm[o]
	if p == o {
		return l
	}
	return Loc(s.FamLoc[s.LocFam[l]][p])
}

// MapVal rewrites the thread-id field of a value stored at location l
// (identity for untagged locations and out-of-range fields).
func (s *SymSpec) MapVal(perm []int32, l Loc, v uint64) uint64 {
	if !s.ValTagged[l] {
		return v
	}
	sh := s.ValShift[l]
	f := int64(v>>sh) - s.ValBias[l]
	if f < 0 || f >= int64(s.N) {
		return v
	}
	nf := uint64(int64(perm[f]) + s.ValBias[l])
	return v&(uint64(1)<<sh-1) | nf<<sh
}

// MapID relabels an event id: thread ids move under perm, init ids
// follow their location.
func (s *SymSpec) MapID(perm []int32, id EventID) EventID {
	if id.Thread == InitThread {
		return EventID{Thread: InitThread, Index: int(s.MapLoc(perm, Loc(id.Index)))}
	}
	return EventID{Thread: int(perm[id.Thread]), Index: id.Index}
}

// mappedLVR returns the (loc, val, rval) triple of e as it appears
// under perm. Only semantically meaningful fields are rewritten: fence
// and error events carry constant zero loc/values regardless of thread
// (replay builds their pendings without them), reads never set Val, and
// degraded updates write nothing — rewriting junk fields would make
// relabeled graphs differ from the graphs the explorer actually builds
// for the permuted schedule.
func (s *SymSpec) mappedLVR(perm []int32, e *Event) (Loc, Val, Val) {
	if e.Kind == KFence || e.Kind == KError {
		return e.Loc, e.Val, e.RVal
	}
	l := s.MapLoc(perm, e.Loc)
	v, rv := e.Val, e.RVal
	if e.Kind == KWrite || (e.Kind == KUpdate && !e.Degraded) {
		v = s.MapVal(perm, e.Loc, v)
	}
	if e.IsReadLike() {
		rv = s.MapVal(perm, e.Loc, rv)
	}
	return l, v, rv
}

// fingerprintUnderPerm computes Fingerprint128 of τ_perm(g) without
// materializing the relabeled graph. It must mirror Fingerprint128
// word for word: canonical slot s folds the events of source thread
// inv[s] with mapped loc/values/rf ids, and the mo section folds, for
// each canonical location, the mapped row of the source location that
// lands on it.
func (s *SymSpec) fingerprintUnderPerm(g *Graph, perm, inv []int32) Hash128 {
	h := NewHasher128()
	for slot := range g.Threads {
		t := int(inv[slot])
		h.Word(0xa11ce<<20 | uint64(slot))
		for _, e := range g.Threads[t] {
			degr := uint64(0)
			if e.Degraded {
				degr = 1
			}
			l, v, rv := s.mappedLVR(perm, e)
			h.Word(uint64(e.Kind)<<56 | uint64(e.Mode)<<48 | degr<<40 | uint64(uint32(l)))
			h.Word(v)
			h.Word(rv)
			if e.IsReadLike() {
				rf := g.rf[t][e.ID.Index]
				if rf.Bottom {
					h.Word(0xb0770e)
				} else {
					h.Word(hashID(s.MapID(perm, rf.W)))
				}
			}
		}
	}
	for l := range g.Mo {
		h.Word(0x0d0e<<20 | uint64(l))
		src := s.MapLoc(inv, Loc(l))
		for _, w := range g.Mo[src] {
			h.Word(hashID(s.MapID(perm, w)))
		}
	}
	return h.Sum()
}

// Signature tokens. Each is equivariant: the token thread t derives
// from an event is identical to the token π(t) derives from the
// relabeled event, for any candidate π — so sorting group members by
// signature hash yields the same canonical order on every member of an
// orbit. Absolute ids appear only where π provably fixes them.
const (
	sigLocPlain uint64 = 1 << 40 // unowned location: absolute loc id
	sigLocSelf  uint64 = 2 << 40 // owned by the signing thread: family id
	sigLocPeer  uint64 = 3 << 40 // owned by a same-group peer: family id
	sigLocFixed uint64 = 4 << 40 // owned by an ungrouped thread: absolute loc
	sigLocGroup uint64 = 5 << 40 // owned by another group's member: group+family
	sigValPlain uint64 = 6 << 40
	sigValSelf  uint64 = 7 << 40
	sigValPeer  uint64 = 8 << 40
	sigValGroup uint64 = 9 << 40
	sigRfInit   uint64 = 10 << 40
	sigRfBottom uint64 = 11 << 40
	sigRfSelf   uint64 = 12 << 40
	sigRfPeer   uint64 = 13 << 40
	sigRfFixed  uint64 = 14 << 40
	sigRfGroup  uint64 = 15 << 40
	sigMoPos    uint64 = 16 << 40
)

// threadToken classifies thread u relative to the signing thread t.
func (s *SymSpec) threadToken(t, u int, self, peer, fixed, group uint64) uint64 {
	switch {
	case u == t:
		return self
	case s.groupOf[u] < 0:
		return fixed | uint64(uint32(u))
	case s.groupOf[u] == s.groupOf[t]:
		return peer
	default:
		return group | uint64(uint32(s.groupOf[u]))<<20
	}
}

// valToken folds the value v stored at location l as seen by thread t.
func (s *SymSpec) valToken(h *Hasher128, t int, l Loc, v uint64) {
	if !s.ValTagged[l] {
		h.Word(sigValPlain)
		h.Word(v)
		return
	}
	sh := s.ValShift[l]
	f := int64(v>>sh) - s.ValBias[l]
	if f < 0 || f >= int64(s.N) {
		h.Word(sigValPlain)
		h.Word(v)
		return
	}
	h.Word(s.threadToken(t, int(f), sigValSelf, sigValPeer, sigValPlain, sigValGroup))
	h.Word(v & (uint64(1)<<sh - 1)) // residue bits below the id field
}

// signature computes the equivariant structural hash of thread t's row.
func (s *SymSpec) signature(g *Graph, t int) Hash128 {
	h := NewHasher128()
	for _, e := range g.Threads[t] {
		degr := uint64(0)
		if e.Degraded {
			degr = 1
		}
		h.Word(uint64(e.Kind)<<56 | uint64(e.Mode)<<48 | degr<<40)
		if e.Kind == KFence || e.Kind == KError {
			continue
		}
		if o := s.LocOwner[e.Loc]; o < 0 {
			h.Word(sigLocPlain | uint64(uint32(e.Loc)))
		} else if int(o) == t {
			h.Word(sigLocSelf | uint64(uint32(s.LocFam[e.Loc])))
		} else if s.groupOf[o] < 0 {
			h.Word(sigLocFixed | uint64(uint32(e.Loc)))
		} else if s.groupOf[o] == s.groupOf[t] {
			h.Word(sigLocPeer | uint64(uint32(s.LocFam[e.Loc])))
		} else {
			h.Word(sigLocGroup | uint64(uint32(s.groupOf[o]))<<20 | uint64(uint32(s.LocFam[e.Loc])))
		}
		if e.Kind == KWrite || (e.Kind == KUpdate && !e.Degraded) {
			s.valToken(&h, t, e.Loc, e.Val)
		}
		if e.IsReadLike() {
			s.valToken(&h, t, e.Loc, e.RVal)
			rf := g.rf[t][e.ID.Index]
			switch {
			case rf.Bottom:
				h.Word(sigRfBottom)
			case rf.W.IsInit():
				h.Word(sigRfInit)
			default:
				h.Word(s.threadToken(t, rf.W.Thread, sigRfSelf, sigRfPeer, sigRfFixed, sigRfGroup))
				h.Word(uint64(uint32(rf.W.Index)))
			}
		}
		if e.IsWriteLike() {
			h.Word(sigMoPos | uint64(uint32(g.MoIndex(e.Loc, e.ID))))
		}
	}
	return h.Sum()
}

// Less128 orders Hash128s lexicographically.
func Less128(a, b Hash128) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// SymScratch holds the per-worker scratch of Canonicalize; the zero
// value is ready to use and is resized lazily.
type SymScratch struct {
	perm, inv, best []int32
	sigs            []Hash128
	order           []int32 // grouped threads in signature-sorted slot order
	classes         []int32 // tie-class boundaries into order (start indices)
}

// sized ensures the scratch slices cover n threads.
func (sc *SymScratch) sized(n int) {
	if cap(sc.perm) < n {
		sc.perm = make([]int32, n)
		sc.inv = make([]int32, n)
		sc.best = make([]int32, n)
		sc.sigs = make([]Hash128, n)
	}
	sc.perm = sc.perm[:n]
	sc.inv = sc.inv[:n]
	sc.best = sc.best[:n]
	sc.sigs = sc.sigs[:n]
	sc.order = sc.order[:0]
	sc.classes = sc.classes[:0]
}

// IsIdentityPerm reports whether perm maps every thread to itself.
func IsIdentityPerm(perm []int32) bool {
	for t, p := range perm {
		if int(p) != t {
			return false
		}
	}
	return true
}

// Canonicalize returns the canonical dedup key of (g, forced-rf pair):
// the minimal Fingerprint128 over the candidate permutations, with the
// forced read/write ids folded in under each candidate exactly the way
// ExploreState.key folds them — so two states whose graphs and forced
// pairs are relabelings of each other collapse to one key. It also
// returns the argmin permutation (source thread -> canonical slot,
// valid until the next Canonicalize on the same scratch), whether the
// signature fast path resolved it, and how many candidates were
// evaluated. The result is deterministic per concrete state, and any
// two argmin permutations of one state differ by an automorphism of
// the canonical graph — so everything derived from the permutation
// (canonical witnesses, extension-slot choices) is orbit-stable too.
func (s *SymSpec) Canonicalize(g *Graph, sc *SymScratch, hasForced bool, forcedR, forcedW EventID) (key Hash128, perm []int32, fast bool, tried int) {
	n := len(g.Threads)
	sc.sized(n)
	for t := 0; t < n; t++ {
		sc.perm[t] = int32(t)
	}
	// Signature-sort each group's members onto the group's own slots;
	// equal signatures form tie classes to refine by brute force.
	ties := false
	for _, grp := range s.Groups {
		for _, t := range grp {
			sc.sigs[t] = s.signature(g, t)
		}
		start := len(sc.order)
		for _, t := range grp {
			sc.order = append(sc.order, int32(t))
		}
		members := sc.order[start:]
		sort.Slice(members, func(i, j int) bool {
			a, b := sc.sigs[members[i]], sc.sigs[members[j]]
			if a != b {
				return Less128(a, b)
			}
			return members[i] < members[j]
		})
		for k, t := range members {
			sc.perm[t] = int32(grp[k])
		}
		for k := 0; k < len(members); {
			j := k + 1
			for j < len(members) && sc.sigs[members[j]] == sc.sigs[members[k]] {
				j++
			}
			if j-k > 1 {
				ties = true
				sc.classes = append(sc.classes, int32(start+k), int32(start+j))
			}
			k = j
		}
	}
	eval := func(p []int32) Hash128 {
		for t, v := range p {
			sc.inv[v] = int32(t)
		}
		k := s.fingerprintUnderPerm(g, p, sc.inv)
		if hasForced {
			h := NewHasher128()
			h.Word(k[0])
			h.Word(k[1])
			h.Word(hashID(s.MapID(p, forcedR)))
			h.Word(hashID(s.MapID(p, forcedW)))
			k = h.Sum()
		}
		return k
	}
	if !ties {
		copy(sc.best, sc.perm)
		return eval(sc.best), sc.best, true, 1
	}
	// Refinement: enumerate, in a deterministic order, every assignment
	// of tie-class members to the class's slots (the product over tie
	// classes, bounded by permCount <= maxSymPerms) and keep the
	// permutation with the minimal key.
	best := Hash128{}
	tried = 0
	var rec func(ci int)
	rec = func(ci int) {
		if ci >= len(sc.classes) {
			k := eval(sc.perm)
			if tried == 0 || Less128(k, best) {
				best = k
				copy(sc.best, sc.perm)
			}
			tried++
			return
		}
		lo, hi := int(sc.classes[ci]), int(sc.classes[ci+1])
		members := sc.order[lo:hi]
		var permute func(k int)
		permute = func(k int) {
			if k == len(members) {
				rec(ci + 2)
				return
			}
			for i := k; i < len(members); i++ {
				members[k], members[i] = members[i], members[k]
				sc.perm[members[k]], sc.perm[members[i]] = sc.perm[members[i]], sc.perm[members[k]]
				permute(k + 1)
				sc.perm[members[k]], sc.perm[members[i]] = sc.perm[members[i]], sc.perm[members[k]]
				members[k], members[i] = members[i], members[k]
			}
		}
		permute(0)
	}
	rec(0)
	return best, sc.best, false, tried
}

// ApplyPerm materializes τ_perm(g): the graph in which thread perm[t]
// did what thread t did in g, with owned locations and tid-carrying
// values relabeled to match. Counterexample reporting uses it to
// present the canonical representative of a violating orbit regardless
// of which member the schedule happened to reach. The identity
// permutation returns g itself.
func (s *SymSpec) ApplyPerm(g *Graph, perm []int32) *Graph {
	if IsIdentityPerm(perm) {
		return g
	}
	inv := make([]int32, len(perm))
	for t, p := range perm {
		inv[p] = int32(t)
	}
	ng := New(len(g.Threads), g.InitVals, g.LocNames)
	evs := make([]*Event, 0, g.NumEvents())
	for _, row := range g.Threads {
		evs = append(evs, row...)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Stamp < evs[j].Stamp })
	for _, e := range evs {
		l, v, rv := s.mappedLVR(perm, e)
		ne := &Event{
			ID:        EventID{Thread: int(perm[e.ID.Thread]), Index: e.ID.Index},
			Kind:      e.Kind,
			Mode:      e.Mode,
			Loc:       l,
			Val:       v,
			RVal:      rv,
			Degraded:  e.Degraded,
			AwaitSeq:  e.AwaitSeq,
			AwaitIter: e.AwaitIter,
			Point:     e.Point,
			Msg:       e.Msg,
		}
		ng.Append(ne)
		if e.IsReadLike() {
			rf := g.rf[e.ID.Thread][e.ID.Index]
			if rf.Bottom {
				ng.SetRF(ne.ID, BottomRF)
			} else {
				ng.SetRF(ne.ID, FromW(s.MapID(perm, rf.W)))
			}
		}
	}
	for l := range ng.Mo {
		src := s.MapLoc(inv, Loc(l))
		row := make([]EventID, len(g.Mo[src]))
		for i, w := range g.Mo[src] {
			row[i] = s.MapID(perm, w)
		}
		ng.Mo[l] = row
	}
	return ng
}

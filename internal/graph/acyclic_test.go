package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randDigraph builds a random n×n relation from packed edge values.
func randDigraph(edges []uint16, n int) *BitMat {
	m := NewBitMat(n)
	for _, e := range edges {
		m.Set(int(e)%n, int(e>>4)%n)
	}
	return m
}

// TestAcyclicMatchesClosure: on random digraphs (cyclic and not, with
// self-loops), every entry point of the closure-free engine must agree
// with the transitive-closure oracle, whatever seed it is handed.
func TestAcyclicMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(edges []uint16, nRaw uint8) bool {
		n := int(nRaw%14) + 2
		m := randDigraph(edges, n)
		want := !m.HasCycle()
		if m.Acyclic() != want {
			return false
		}
		if m.AcyclicSeeded(nil) != want {
			return false
		}
		// A garbage seed of the right length must not change the answer.
		garbage := make([]int32, n)
		for i := range garbage {
			garbage[i] = int32(rng.Intn(n))
		}
		if m.AcyclicSeeded(garbage) != want {
			return false
		}
		if m.AcyclicWithOrder(append([]int32(nil), garbage...)) != want {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAcyclicDAGWithOrder: forward edges under a random permutation
// form a DAG; seeding the check with the generating order must hit the
// fast path (observable through the engine counters) and answer true.
func TestAcyclicDAGWithOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(60)
		order := rng.Perm(n)
		pos := make([]int, n)
		o32 := make([]int32, n)
		for k, v := range order {
			pos[v] = k
			o32[k] = int32(v)
		}
		m := NewBitMat(n)
		for e := 0; e < 3*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if pos[i] < pos[j] {
				m.Set(i, j)
			}
		}
		before := AcyclicCountersNow()
		if !m.AcyclicSeeded(o32) {
			t.Fatalf("trial %d: DAG rejected", trial)
		}
		if d := AcyclicCountersNow().Sub(before); d.SeedHits != 1 || d.KahnPasses != 0 {
			t.Fatalf("trial %d: valid order missed the fast path: %+v", trial, d)
		}
		if !m.Acyclic() {
			t.Fatalf("trial %d: Acyclic disagrees", trial)
		}
	}
}

// TestAcyclicWithOrderRefresh: a violated seed must fall back to the
// full pass, and on success the order is refreshed to one the next
// call verifies without a pass; on failure the seed is left untouched.
func TestAcyclicWithOrderRefresh(t *testing.T) {
	// 0 -> 1 -> 2, seeded with the reversed (violated) order.
	m := NewBitMat(3)
	m.Set(0, 1)
	m.Set(1, 2)
	order := []int32{2, 1, 0}
	if !m.AcyclicWithOrder(order) {
		t.Fatal("chain rejected")
	}
	before := AcyclicCountersNow()
	if !m.AcyclicSeeded(order) {
		t.Fatal("refreshed order rejected")
	}
	if d := AcyclicCountersNow().Sub(before); d.SeedHits != 1 {
		t.Fatalf("refreshed order did not hit the fast path: %+v", d)
	}

	// Cyclic: the order must survive unchanged.
	c := NewBitMat(3)
	c.Set(0, 1)
	c.Set(1, 0)
	keep := []int32{0, 1, 2}
	saved := append([]int32(nil), keep...)
	if c.AcyclicWithOrder(keep) {
		t.Fatal("cycle accepted")
	}
	for i := range keep {
		if keep[i] != saved[i] {
			t.Fatal("failed check rewrote the caller's order")
		}
	}
}

// TestAcyclicOrderMalformed: wrong length (the grown-matrix case),
// duplicate entries and out-of-range entries must all be rejected as
// seeds — falling back to the full pass — and never change the answer
// or refresh anything.
func TestAcyclicOrderMalformed(t *testing.T) {
	m := NewBitMat(4)
	m.Set(0, 1)
	m.Set(1, 2)
	m.Set(2, 3)
	grownMat := NewBitMat(5)
	m.grownInto(grownMat)
	grownMat.Set(3, 4)

	short := []int32{0, 1, 2, 3} // valid for m, stale for the grown matrix
	if !grownMat.AcyclicWithOrder(short) {
		t.Fatal("grown DAG rejected with stale-length order")
	}
	if len(short) != 4 {
		t.Fatal("length-mismatched order was resized")
	}
	for _, bad := range [][]int32{
		{0, 0, 1, 2},  // duplicate
		{0, 1, 2, 9},  // out of range
		{0, 1, 2, -1}, // negative
	} {
		if !m.AcyclicSeeded(bad) {
			t.Fatalf("DAG rejected with malformed seed %v", bad)
		}
	}
	cyc := NewBitMat(2)
	cyc.Set(0, 1)
	cyc.Set(1, 0)
	if cyc.AcyclicSeeded([]int32{0, 0}) {
		t.Fatal("cycle accepted under malformed seed")
	}
}

// TestAcyclicSelfLoopAndEmpty: corner shapes.
func TestAcyclicSelfLoopAndEmpty(t *testing.T) {
	if !NewBitMat(0).Acyclic() {
		t.Error("empty relation must be acyclic")
	}
	m := NewBitMat(3)
	if !m.Acyclic() {
		t.Error("edgeless relation must be acyclic")
	}
	m.Set(1, 1)
	if m.Acyclic() {
		t.Error("self-loop must count as a cycle")
	}
	if m.AcyclicSeeded([]int32{0, 1, 2}) {
		t.Error("self-loop must defeat the seeded fast path")
	}
}

// TestAcyclicZeroAlloc: the engine's steady state allocates nothing —
// the scratch (indegrees, worklist, seen masks) all comes from pools.
func TestAcyclicZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression bars are not run in -short")
	}
	m := NewBitMat(130)
	for i := 0; i+1 < 130; i++ {
		m.Set(i, i+1)
	}
	order := make([]int32, 130)
	for i := range order {
		order[i] = int32(i)
	}
	m.Acyclic() // warm the pools
	if allocs := testing.AllocsPerRun(100, func() { m.Acyclic() }); allocs > 0 {
		t.Errorf("Acyclic allocates %.0f objects per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { m.AcyclicSeeded(order) }); allocs > 0 {
		t.Errorf("AcyclicSeeded (hit) allocates %.0f objects per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { m.AcyclicWithOrder(order) }); allocs > 0 {
		t.Errorf("AcyclicWithOrder (hit) allocates %.0f objects per run, want 0", allocs)
	}
}

// TestCrossCheckHook: the differential hook really does run the
// closure oracle alongside the engine (smoke — the corpus differential
// in internal/core flips it around full explorations).
func TestCrossCheckHook(t *testing.T) {
	CrossCheckAcyclic = true
	defer func() { CrossCheckAcyclic = false }()
	m := NewBitMat(4)
	m.Set(0, 1)
	m.Set(1, 2)
	if !m.Acyclic() || !m.AcyclicSeeded(nil) || !m.AcyclicWithOrder([]int32{0, 1, 2, 3}) {
		t.Fatal("DAG rejected under cross-check")
	}
	m.Set(2, 0)
	if m.Acyclic() {
		t.Fatal("cycle accepted under cross-check")
	}
}

// Package graph implements execution graphs, the formal abstraction of
// concurrent executions used by Await Model Checking (AMC).
//
// An execution graph (Oberhauser et al., VSync, ASPLOS'21, §1.1) has
// events as nodes — reads, writes, atomic updates, fences, and error
// events — and three fundamental edge families:
//
//   - po (program order): the order of events within each thread,
//   - rf (reads-from): which write each read observes,
//   - mo (modification order): a per-location total order of writes.
//
// All other relations used by weak memory models (fr, eco, sw, hb, psc)
// are derived from these three; see relations.go. Memory models are
// consistency predicates over graphs and live in internal/mm.
package graph

import "fmt"

// Val is the value domain of registers and memory locations.
type Val = uint64

// Loc identifies a shared memory location. Locations are allocated
// densely from zero by the program environment; the graph holds a name
// table for rendering.
type Loc int32

// Mode is a barrier (memory-ordering) mode attached to an event, mirroring
// the C11/IMM mode hierarchy used throughout the paper.
type Mode uint8

// Barrier modes, weakest to strongest. ModeNone is reserved for fences
// that have been eliminated by the optimizer (they generate no event).
const (
	ModeNone Mode = iota // eliminated fence: no event at all
	Rlx                  // relaxed
	Acq                  // acquire (reads, fences, updates)
	Rel                  // release (writes, fences, updates)
	AcqRel               // acquire+release (fences, updates)
	SC                   // sequentially consistent
)

// String returns the conventional short name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case Rlx:
		return "rlx"
	case Acq:
		return "acq"
	case Rel:
		return "rel"
	case AcqRel:
		return "acqrel"
	case SC:
		return "sc"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// HasAcq reports whether the mode includes acquire semantics.
func (m Mode) HasAcq() bool { return m == Acq || m == AcqRel || m == SC }

// HasRel reports whether the mode includes release semantics.
func (m Mode) HasRel() bool { return m == Rel || m == AcqRel || m == SC }

// IsSC reports whether the mode is sequentially consistent.
func (m Mode) IsSC() bool { return m == SC }

// Kind classifies events.
type Kind uint8

// Event kinds.
const (
	KRead   Kind = iota // plain load
	KWrite              // plain store
	KUpdate             // atomic read-modify-write (xchg, cas, faa)
	KFence              // memory fence
	KError              // failed assertion (safety violation witness)
)

// String returns a one-letter tag used in rendered graphs.
func (k Kind) String() string {
	switch k {
	case KRead:
		return "R"
	case KWrite:
		return "W"
	case KUpdate:
		return "U"
	case KFence:
		return "F"
	case KError:
		return "E"
	}
	return "?"
}

// InitThread is the pseudo-thread id of initialization writes. The init
// write for location l has EventID{Thread: InitThread, Index: int(l)}.
const InitThread = -1

// EventID names an event by its thread and po-index within that thread.
// IDs are stable across graph clones and revisit restrictions, which is
// what lets rf and mo be stored as ID-keyed structures.
type EventID struct {
	Thread int
	Index  int
}

// IsInit reports whether the id denotes an initialization write.
func (id EventID) IsInit() bool { return id.Thread == InitThread }

func (id EventID) String() string {
	if id.IsInit() {
		return fmt.Sprintf("init.%d", id.Index)
	}
	return fmt.Sprintf("T%d.%d", id.Thread, id.Index)
}

// NoEvent is the zero-ish EventID used to signal "no event"; it never
// identifies a real event because init indices are location numbers >= 0
// and thread indices are >= 0.
var NoEvent = EventID{Thread: -2, Index: -1}

// Event is a node of an execution graph. Events are immutable once added
// to a graph; clones of a graph share Event pointers.
type Event struct {
	ID   EventID
	Kind Kind
	Mode Mode
	Loc  Loc // meaningful for KRead/KWrite/KUpdate

	// Val is the value written (KWrite, and KUpdate when not degraded).
	Val Val
	// RVal is the value read (KRead, KUpdate). It is fixed at event
	// creation time from the chosen rf edge; events are re-created when a
	// revisit changes their rf.
	RVal Val

	// Degraded marks a KUpdate that behaves as a plain read: either a
	// failed CAS, or an RMW whose written value equals the value read
	// (footnote 5 of the paper: only value-changing writes matter).
	// Degraded updates do not take a modification-order position.
	Degraded bool

	// Stamp is the global addition timestamp assigned when the event was
	// added to its graph. Within a thread, stamps increase along po.
	Stamp int

	// AwaitSeq numbers the await-statement execution instance within the
	// thread that this event belongs to (-1 if outside any await), and
	// AwaitIter numbers the iteration within that instance, starting at 0.
	AwaitSeq  int
	AwaitIter int

	// Point is the barrier-point label of the instruction that generated
	// the event (used by the optimizer and in rendered graphs), and Msg
	// carries the assertion message for KError events.
	Point string
	Msg   string
}

// IsWriteLike reports whether the event occupies a modification-order
// position: plain writes and non-degraded updates.
func (e *Event) IsWriteLike() bool {
	return e.Kind == KWrite || (e.Kind == KUpdate && !e.Degraded)
}

// IsReadLike reports whether the event consumes a reads-from edge:
// plain reads and all updates (degraded or not).
func (e *Event) IsReadLike() bool {
	return e.Kind == KRead || e.Kind == KUpdate
}

// InAwait reports whether the event was generated inside an await loop.
func (e *Event) InAwait() bool { return e.AwaitSeq >= 0 }

// String renders the event in the paper's compact notation, e.g.
// "W^rel T1.3 (lock,1)".
func (e *Event) String() string {
	switch e.Kind {
	case KFence:
		return fmt.Sprintf("F^%s %s", e.Mode, e.ID)
	case KError:
		return fmt.Sprintf("ERROR %s (%s)", e.ID, e.Msg)
	case KRead:
		return fmt.Sprintf("R^%s %s (loc%d,%d)", e.Mode, e.ID, e.Loc, e.RVal)
	case KWrite:
		return fmt.Sprintf("W^%s %s (loc%d,%d)", e.Mode, e.ID, e.Loc, e.Val)
	case KUpdate:
		if e.Degraded {
			return fmt.Sprintf("U^%s %s (loc%d,%d->ro)", e.Mode, e.ID, e.Loc, e.RVal)
		}
		return fmt.Sprintf("U^%s %s (loc%d,%d->%d)", e.Mode, e.ID, e.Loc, e.RVal, e.Val)
	}
	return fmt.Sprintf("?%s", e.ID)
}

package graph

// BitMat is a dense n×n boolean matrix backed by uint64 words, used to
// represent binary relations over events and to compute transitive
// closures cheaply (row-parallel Warshall). It is the workhorse of the
// memory-model consistency predicates.
type BitMat struct {
	n     int
	words int // words per row
	bits  []uint64
}

// NewBitMat returns an empty n×n relation.
func NewBitMat(n int) *BitMat {
	w := (n + 63) / 64
	return &BitMat{n: n, words: w, bits: make([]uint64, n*w)}
}

// N returns the dimension.
func (m *BitMat) N() int { return m.n }

// Set adds the pair (i, j) to the relation.
func (m *BitMat) Set(i, j int) { m.bits[i*m.words+j/64] |= 1 << (uint(j) % 64) }

// Get reports whether (i, j) is in the relation.
func (m *BitMat) Get(i, j int) bool {
	return m.bits[i*m.words+j/64]&(1<<(uint(j)%64)) != 0
}

// Clone returns an independent copy.
func (m *BitMat) Clone() *BitMat {
	c := &BitMat{n: m.n, words: m.words, bits: make([]uint64, len(m.bits))}
	copy(c.bits, m.bits)
	return c
}

// OrWith adds all pairs of o into m (m |= o). The matrices must have the
// same dimension.
func (m *BitMat) OrWith(o *BitMat) {
	for i := range m.bits {
		m.bits[i] |= o.bits[i]
	}
}

// TransClose computes the transitive closure of m in place.
func (m *BitMat) TransClose() {
	for k := 0; k < m.n; k++ {
		kw, kb := k/64, uint(k)%64
		krow := m.bits[k*m.words : (k+1)*m.words]
		for i := 0; i < m.n; i++ {
			if m.bits[i*m.words+kw]&(1<<kb) != 0 {
				irow := m.bits[i*m.words : (i+1)*m.words]
				for w := range irow {
					irow[w] |= krow[w]
				}
			}
		}
	}
}

// HasCycle reports whether the relation (viewed as a directed graph)
// contains a cycle. m is not modified.
func (m *BitMat) HasCycle() bool {
	c := m.Clone()
	c.TransClose()
	for i := 0; i < c.n; i++ {
		if c.Get(i, i) {
			return true
		}
	}
	return false
}

// Irreflexive reports whether no element is related to itself.
func (m *BitMat) Irreflexive() bool {
	for i := 0; i < m.n; i++ {
		if m.Get(i, i) {
			return false
		}
	}
	return true
}

// Compose returns the relational composition m;o.
func (m *BitMat) Compose(o *BitMat) *BitMat {
	r := NewBitMat(m.n)
	for i := 0; i < m.n; i++ {
		irow := r.bits[i*r.words : (i+1)*r.words]
		for j := 0; j < m.n; j++ {
			if m.Get(i, j) {
				jrow := o.bits[j*o.words : (j+1)*o.words]
				for w := range irow {
					irow[w] |= jrow[w]
				}
			}
		}
	}
	return r
}

package graph

import (
	"math/bits"
	"sync"
)

// BitMat is a dense n×n boolean matrix backed by uint64 words, used to
// represent binary relations over events and to compute transitive
// closures cheaply (row-parallel Warshall). It is the workhorse of the
// memory-model consistency predicates.
type BitMat struct {
	n     int
	words int // words per row
	bits  []uint64
}

// NewBitMat returns an empty n×n relation.
func NewBitMat(n int) *BitMat {
	w := (n + 63) / 64
	return &BitMat{n: n, words: w, bits: make([]uint64, n*w)}
}

// matPool recycles BitMat scratch matrices. The consistency predicates
// in internal/mm run once per explored graph and need a handful of
// temporaries each (closure scratch, relation unions, compositions);
// without pooling those dominate the allocation profile of the AMC hot
// path. Pooled matrices keep their word buffer across uses and are
// re-zeroed on checkout.
var matPool = sync.Pool{New: func() any { return new(BitMat) }}

// NewBitMatPooled returns an empty n×n relation backed by a recycled
// word buffer when one of sufficient capacity is available. The caller
// must Release it when done and must not retain references past that.
func NewBitMatPooled(n int) *BitMat {
	m := matPool.Get().(*BitMat)
	w := (n + 63) / 64
	need := n * w
	if cap(m.bits) < need {
		m.bits = make([]uint64, need)
	} else {
		m.bits = m.bits[:need]
		clear(m.bits)
	}
	m.n, m.words = n, w
	return m
}

// Release returns a matrix obtained from NewBitMatPooled (or
// ClonePooled) to the scratch pool. Releasing a matrix that is still
// referenced elsewhere corrupts later users; only release temporaries.
func (m *BitMat) Release() {
	if m == nil {
		return
	}
	matPool.Put(m)
}

// N returns the dimension.
func (m *BitMat) N() int { return m.n }

// Set adds the pair (i, j) to the relation.
func (m *BitMat) Set(i, j int) { m.bits[i*m.words+j/64] |= 1 << (uint(j) % 64) }

// Get reports whether (i, j) is in the relation.
func (m *BitMat) Get(i, j int) bool {
	return m.bits[i*m.words+j/64]&(1<<(uint(j)%64)) != 0
}

// Clone returns an independent copy.
func (m *BitMat) Clone() *BitMat {
	c := &BitMat{n: m.n, words: m.words, bits: make([]uint64, len(m.bits))}
	copy(c.bits, m.bits)
	return c
}

// ClonePooled is Clone backed by the scratch pool; Release applies.
func (m *BitMat) ClonePooled() *BitMat {
	c := matPool.Get().(*BitMat)
	if cap(c.bits) < len(m.bits) {
		c.bits = make([]uint64, len(m.bits))
	} else {
		c.bits = c.bits[:len(m.bits)]
	}
	copy(c.bits, m.bits)
	c.n, c.words = m.n, m.words
	return c
}

// allocMats sizes the seven carried matrices of r for dimension n,
// carving their bit rows out of one backing allocation and pointing
// the named matrix fields into the embedded array. One slab instead of
// fourteen allocations per graph state, and the matrices stay adjacent
// in memory for the row scans the predicates do.
func (r *Rels) allocMats(n int) {
	w := (n + 63) / 64
	bits := make([]uint64, len(r.mats)*n*w)
	for i := range r.mats {
		r.mats[i] = BitMat{n: n, words: w, bits: bits[i*n*w : (i+1)*n*w]}
	}
	r.Sb, r.SbLoc, r.RfM, r.MoM = &r.mats[0], &r.mats[1], &r.mats[2], &r.mats[3]
	r.FrM, r.Hb, r.Eco = &r.mats[4], &r.mats[5], &r.mats[6]
}

// grownInto writes an (n+1)×(n+1) copy of m with the new row and
// column empty into dst (pre-sized to n+1 and zeroed) — the
// matrix-shape half of Rels.Extend.
func (m *BitMat) grownInto(dst *BitMat) {
	if dst.words == m.words {
		copy(dst.bits, m.bits)
		return
	}
	for i := 0; i < m.n; i++ {
		copy(dst.bits[i*dst.words:i*dst.words+m.words], m.bits[i*m.words:(i+1)*m.words])
	}
}

// Equal reports whether the two relations hold exactly the same pairs.
func (m *BitMat) Equal(o *BitMat) bool {
	if m.n != o.n {
		return false
	}
	for i := range m.bits {
		if m.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// OrWith adds all pairs of o into m (m |= o). The matrices must have the
// same dimension.
func (m *BitMat) OrWith(o *BitMat) {
	for i := range m.bits {
		m.bits[i] |= o.bits[i]
	}
}

// TransClose computes the transitive closure of m in place.
func (m *BitMat) TransClose() {
	for k := 0; k < m.n; k++ {
		kw, kb := k/64, uint(k)%64
		krow := m.bits[k*m.words : (k+1)*m.words]
		for i := 0; i < m.n; i++ {
			if m.bits[i*m.words+kw]&(1<<kb) != 0 {
				irow := m.bits[i*m.words : (i+1)*m.words]
				for w := range irow {
					irow[w] |= krow[w]
				}
			}
		}
	}
}

// HasCycle reports whether the relation (viewed as a directed graph)
// contains a cycle. m is not modified; the closure scratch comes from
// the matrix pool.
func (m *BitMat) HasCycle() bool {
	c := m.ClonePooled()
	c.TransClose()
	cyc := !c.Irreflexive()
	c.Release()
	return cyc
}

// Irreflexive reports whether no element is related to itself.
func (m *BitMat) Irreflexive() bool {
	for i := 0; i < m.n; i++ {
		if m.Get(i, i) {
			return false
		}
	}
	return true
}

// Compose returns the relational composition m;o.
func (m *BitMat) Compose(o *BitMat) *BitMat {
	r := NewBitMat(m.n)
	m.ComposeInto(o, r)
	return r
}

// ComposeInto computes dst = m;o in place, overwriting dst (which must
// have the same dimension and not alias m or o). It is the reuse
// variant of Compose for pooled scratch matrices.
func (m *BitMat) ComposeInto(o, dst *BitMat) {
	clear(dst.bits)
	for i := 0; i < m.n; i++ {
		irow := dst.bits[i*dst.words : (i+1)*dst.words]
		for j := 0; j < m.n; j++ {
			if m.Get(i, j) {
				jrow := o.bits[j*o.words : (j+1)*o.words]
				for w := range irow {
					irow[w] |= jrow[w]
				}
			}
		}
	}
}

// IntersectsTranspose reports whether some pair (i, j) is in m while
// (j, i) is in o — i.e. whether m ∩ o⁻¹ is non-empty. The memory-model
// coherence axiom (irreflexive(hb;eco)) is exactly this test on (hb,
// eco); doing it row-wise over set bits avoids materializing a product.
func (m *BitMat) IntersectsTranspose(o *BitMat) bool {
	for i := 0; i < m.n; i++ {
		row := m.bits[i*m.words : (i+1)*m.words]
		for w, word := range row {
			for word != 0 {
				j := w*64 + bits.TrailingZeros64(word)
				if j < m.n && o.Get(j, i) {
					return true
				}
				word &= word - 1
			}
		}
	}
	return false
}

// Clear removes the pair (i, j) from the relation.
func (m *BitMat) Clear(i, j int) { m.bits[i*m.words+j/64] &^= 1 << (uint(j) % 64) }

// copyRow makes row dst an exact copy of row src (word-wide).
func (m *BitMat) copyRow(dst, src int) {
	copy(m.bits[dst*m.words:(dst+1)*m.words], m.bits[src*m.words:(src+1)*m.words])
}

// copyRowFrom copies row src of o into row dst of m (same dimension).
func (m *BitMat) copyRowFrom(dst int, o *BitMat, src int) {
	copy(m.bits[dst*m.words:(dst+1)*m.words], o.bits[src*o.words:(src+1)*o.words])
}

// rowIntersects reports whether row i of m shares a set bit with the
// word vector vec (len(vec) >= m.words).
func (m *BitMat) rowIntersects(i int, vec []uint64) bool {
	row := m.bits[i*m.words : (i+1)*m.words]
	for w, word := range row {
		if word&vec[w] != 0 {
			return true
		}
	}
	return false
}

// orRowInto ors row i of m into the word vector vec.
func (m *BitMat) orRowInto(i int, vec []uint64) {
	row := m.bits[i*m.words : (i+1)*m.words]
	for w, word := range row {
		vec[w] |= word
	}
}

package graph

import "embed"

// sourceFS carries this package's own .go sources, compiled into the
// binary so the verdict store can fold a code-identity epoch into its
// keys (internal/srcid). Execution-graph semantics (relations,
// extension, consistency) are part of what a verdict means.
//
//go:embed *.go
var sourceFS embed.FS

// SourceFiles exposes the embedded sources for code-identity hashing.
func SourceFiles() embed.FS { return sourceFS }

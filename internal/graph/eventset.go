package graph

import "sync"

// EventSet is a bitset over the explicit events of one graph, indexed
// by addition stamp. It replaces the map[EventID]bool sets that the
// explorer's revisit machinery used to allocate per pushed state:
// membership is one shift-and-mask, and the whole set is one word
// slice. Init events (stamp 0) are never members — the porf prefix and
// the revisit keep-sets only ever track explicit events.
type EventSet struct {
	bits []uint64
}

// NewEventSet returns an empty set for a graph whose stamps are below
// nextStamp (pass Graph.NextStamp).
func NewEventSet(nextStamp int) *EventSet {
	return &EventSet{bits: make([]uint64, (nextStamp+63)/64)}
}

// eventSetPool recycles the sets the revisit machinery churns through
// (a porf prefix per fresh write, a keep-set per revisit candidate).
var eventSetPool = sync.Pool{New: func() any { return new(EventSet) }}

// NewEventSetPooled is NewEventSet backed by a recycled word buffer.
// The caller must Release the set when done and not retain it past
// that.
func NewEventSetPooled(nextStamp int) *EventSet {
	s := eventSetPool.Get().(*EventSet)
	w := (nextStamp + 63) / 64
	if cap(s.bits) < w {
		s.bits = make([]uint64, w)
	} else {
		s.bits = s.bits[:w]
		clear(s.bits)
	}
	return s
}

// Release returns a pooled set to the scratch pool.
func (s *EventSet) Release() {
	if s != nil {
		eventSetPool.Put(s)
	}
}

// Add inserts the event (no-op for init events, which carry stamp 0).
func (s *EventSet) Add(e *Event) {
	if e.Stamp <= 0 {
		return
	}
	s.bits[e.Stamp/64] |= 1 << (uint(e.Stamp) % 64)
}

// Remove deletes the event from the set.
func (s *EventSet) Remove(e *Event) {
	if e.Stamp <= 0 {
		return
	}
	s.bits[e.Stamp/64] &^= 1 << (uint(e.Stamp) % 64)
}

// Has reports membership. Init events are never members.
func (s *EventSet) Has(e *Event) bool {
	if e.Stamp <= 0 {
		return false
	}
	return s.bits[e.Stamp/64]&(1<<(uint(e.Stamp)%64)) != 0
}

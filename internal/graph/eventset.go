package graph

// EventSet is a bitset over the explicit events of one graph, indexed
// by addition stamp. It replaces the map[EventID]bool sets that the
// explorer's revisit machinery used to allocate per pushed state:
// membership is one shift-and-mask, and the whole set is one word
// slice. Init events (stamp 0) are never members — the porf prefix and
// the revisit keep-sets only ever track explicit events.
type EventSet struct {
	bits []uint64
}

// NewEventSet returns an empty set for a graph whose stamps are below
// nextStamp (pass Graph.NextStamp).
func NewEventSet(nextStamp int) *EventSet {
	return &EventSet{bits: make([]uint64, (nextStamp+63)/64)}
}

// Add inserts the event (no-op for init events, which carry stamp 0).
func (s *EventSet) Add(e *Event) {
	if e.Stamp <= 0 {
		return
	}
	s.bits[e.Stamp/64] |= 1 << (uint(e.Stamp) % 64)
}

// Remove deletes the event from the set.
func (s *EventSet) Remove(e *Event) {
	if e.Stamp <= 0 {
		return
	}
	s.bits[e.Stamp/64] &^= 1 << (uint(e.Stamp) % 64)
}

// Has reports membership. Init events are never members.
func (s *EventSet) Has(e *Event) bool {
	if e.Stamp <= 0 {
		return false
	}
	return s.bits[e.Stamp/64]&(1<<(uint(e.Stamp)%64)) != 0
}

package graph

import (
	"testing"
)

// symTestSpec is a three-thread fully-symmetric spec over four
// locations: loc 0 is an unowned "lock" whose values embed tid+1
// (sentinel 0 = free), locs 1..3 are the "node" family replicas owned
// by threads 0..2.
func symTestSpec(t *testing.T) *SymSpec {
	t.Helper()
	s := &SymSpec{
		N:         3,
		Groups:    [][]int{{0, 1, 2}},
		LocOwner:  []int32{-1, 0, 1, 2},
		LocFam:    []int32{-1, 0, 0, 0},
		FamLoc:    [][]int32{{1, 2, 3}},
		ValTagged: []bool{true, false, false, false},
		ValShift:  []uint8{0, 0, 0, 0},
		ValBias:   []int64{1, 0, 0, 0},
	}
	if !s.Finalize() {
		t.Fatal("test spec did not finalize")
	}
	return s
}

// symTestGraph builds a structurally asymmetric graph over the spec's
// program shape — the three threads are at different points of "write
// my node, then swap myself into the lock", so every one of the 3!
// relabelings is a distinct concrete graph.
func symTestGraph() *Graph {
	g := New(3, []Val{0, 0, 0, 0}, []string{"lock", "node0", "node1", "node2"})
	app := func(e *Event) *Event { g.Append(e); return e }

	n0 := app(&Event{ID: EventID{0, 0}, Kind: KWrite, Mode: Rel, Loc: 1, Val: 7, AwaitSeq: -1})
	g.InsertMo(1, n0.ID, 1)
	n1 := app(&Event{ID: EventID{1, 0}, Kind: KWrite, Mode: Rel, Loc: 2, Val: 7, AwaitSeq: -1})
	g.InsertMo(2, n1.ID, 1)
	u0 := app(&Event{ID: EventID{0, 1}, Kind: KUpdate, Mode: AcqRel, Loc: 0, Val: 1, RVal: 0, AwaitSeq: -1})
	g.SetRF(u0.ID, FromW(EventID{Thread: InitThread, Index: 0}))
	g.InsertMo(0, u0.ID, 1)
	u1 := app(&Event{ID: EventID{1, 1}, Kind: KUpdate, Mode: AcqRel, Loc: 0, Val: 2, RVal: 1, AwaitSeq: -1})
	g.SetRF(u1.ID, FromW(u0.ID))
	g.InsertMo(0, u1.ID, 2)
	n2 := app(&Event{ID: EventID{2, 0}, Kind: KWrite, Mode: Rel, Loc: 3, Val: 7, AwaitSeq: -1})
	g.InsertMo(3, n2.ID, 1)
	r2 := app(&Event{ID: EventID{2, 1}, Kind: KRead, Mode: Acq, Loc: 0, RVal: 2, AwaitSeq: -1})
	g.SetRF(r2.ID, FromW(u1.ID))
	return g
}

func invOf(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for t, p := range perm {
		inv[p] = int32(t)
	}
	return inv
}

// TestApplyPermMatchesVirtualFingerprint: the materialized relabeling
// and the allocation-free fingerprintUnderPerm must agree word for
// word, and the relabeled graph must be a well-formed graph — this is
// the contract that lets Canonicalize search keys without building
// graphs and counterexample reporting build the one graph that won.
func TestApplyPermMatchesVirtualFingerprint(t *testing.T) {
	s := symTestSpec(t)
	g := symTestGraph()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, perm := range s.AllPerms() {
		rg := s.ApplyPerm(g, perm)
		if err := rg.CheckInvariants(); err != nil {
			t.Fatalf("perm %v: relabeled graph is malformed: %v", perm, err)
		}
		if got, want := rg.Fingerprint128(), s.fingerprintUnderPerm(g, perm, invOf(perm)); got != want {
			t.Fatalf("perm %v: ApplyPerm fingerprint %x != fingerprintUnderPerm %x", perm, got, want)
		}
		if IsIdentityPerm(perm) && rg != g {
			t.Fatal("identity ApplyPerm must return the graph itself")
		}
	}
}

// TestCanonicalizeKeyMatchesPerm: the returned key is the fingerprint
// of the graph relabeled by the returned permutation (the key the
// visited set stores is the key of a graph the explorer could actually
// present), and it is one of the orbit's member fingerprints. Note the
// key is NOT required to be the orbit-wide minimum: the signature fast
// path picks its representative by equivariant sort order, and
// minimization only arbitrates within refinement tie classes.
func TestCanonicalizeKeyMatchesPerm(t *testing.T) {
	s := symTestSpec(t)
	g := symTestGraph()
	var sc SymScratch
	key, perm, _, _ := s.Canonicalize(g, &sc, false, NoEvent, NoEvent)
	if got := s.ApplyPerm(g, perm).Fingerprint128(); got != key {
		t.Fatalf("perm %v rebuilds to %x, want the canonical key %x", perm, got, key)
	}
	found := false
	for _, p := range s.AllPerms() {
		if s.fingerprintUnderPerm(g, p, invOf(p)) == key {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("canonical key %x is not any orbit member's fingerprint", key)
	}
}

// TestCanonicalizeCollapsesOrbit: every relabeling of the graph — and
// of its forced-rf pair — canonicalizes to the same key. This is the
// property the visited set relies on to explore one representative per
// orbit.
func TestCanonicalizeCollapsesOrbit(t *testing.T) {
	s := symTestSpec(t)
	g := symTestGraph()
	var sc SymScratch
	key, _, _, _ := s.Canonicalize(g, &sc, false, NoEvent, NoEvent)
	fR, fW := EventID{Thread: 2, Index: 1}, EventID{Thread: 1, Index: 1}
	fkey, _, _, _ := s.Canonicalize(g, &sc, true, fR, fW)
	if fkey == key {
		t.Fatal("folding a forced pair did not change the key")
	}
	for _, p := range s.AllPerms() {
		rg := s.ApplyPerm(g, p)
		var sc2 SymScratch
		k, _, _, _ := s.Canonicalize(rg, &sc2, false, NoEvent, NoEvent)
		if k != key {
			t.Fatalf("perm %v: relabeled graph canonicalizes to %x, want %x", p, k, key)
		}
		fk, _, _, _ := s.Canonicalize(rg, &sc2, true, s.MapID(p, fR), s.MapID(p, fW))
		if fk != fkey {
			t.Fatalf("perm %v: relabeled forced state canonicalizes to %x, want %x", p, fk, fkey)
		}
	}
}

// TestCanonicalizeFastPath: distinct per-thread signatures resolve the
// permutation with a single fingerprint evaluation; identical rows form
// a tie class that refinement enumerates exhaustively.
func TestCanonicalizeFastPath(t *testing.T) {
	s := symTestSpec(t)
	var sc SymScratch

	if _, _, fast, tried := s.Canonicalize(symTestGraph(), &sc, false, NoEvent, NoEvent); !fast || tried != 1 {
		t.Fatalf("structurally distinct rows: fast=%v tried=%d, want the one-shot fast path", fast, tried)
	}

	// Threads 0 and 1 each wrote only their own replica: their signatures
	// are identical by construction (sigLocSelf folds the family, not the
	// member), so they form a 2-tie; thread 2's empty row stays distinct.
	tie := New(3, []Val{0, 0, 0, 0}, []string{"lock", "node0", "node1", "node2"})
	a := &Event{ID: EventID{0, 0}, Kind: KWrite, Mode: Rel, Loc: 1, Val: 7, AwaitSeq: -1}
	tie.Append(a)
	tie.InsertMo(1, a.ID, 1)
	b := &Event{ID: EventID{1, 0}, Kind: KWrite, Mode: Rel, Loc: 2, Val: 7, AwaitSeq: -1}
	tie.Append(b)
	tie.InsertMo(2, b.ID, 1)
	if _, _, fast, tried := s.Canonicalize(tie, &sc, false, NoEvent, NoEvent); fast || tried != 2 {
		t.Fatalf("tied rows: fast=%v tried=%d, want refinement over the 2-class", fast, tried)
	}
}

// TestMapVal: the tid field rewrites under the permutation, the
// sentinel and out-of-range encodings are left alone, and bits below
// the field survive.
func TestMapVal(t *testing.T) {
	s := &SymSpec{
		N:         2,
		Groups:    [][]int{{0, 1}},
		LocOwner:  []int32{-1},
		LocFam:    []int32{-1},
		ValTagged: []bool{true},
		ValShift:  []uint8{16},
		ValBias:   []int64{1},
	}
	if !s.Finalize() {
		t.Fatal("spec did not finalize")
	}
	swap := []int32{1, 0}
	cases := []struct{ in, want uint64 }{
		{0, 0},                           // sentinel: field -1, untouched
		{1 << 16, 2 << 16},               // tid 0 -> tid 1
		{2<<16 | 0xabcd, 1<<16 | 0xabcd}, // tid 1 -> tid 0, low bits kept
		{9 << 16, 9 << 16},               // field 8: out of range, untouched
	}
	for _, c := range cases {
		if got := s.MapVal(swap, 0, c.in); got != c.want {
			t.Errorf("MapVal(swap, %#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randExtendHistory appends nSteps random events to g the way the
// explorer does (clone-free here: we mutate one graph and snapshot
// relations), calling check after every append with the pre-append
// relations, the post-append graph and the new event.
func randExtendHistory(t *testing.T, rng *rand.Rand, nThreads, nLocs, nSteps int,
	check func(prev *Rels, g *Graph, e *Event)) {
	t.Helper()
	initVals := make([]Val, nLocs)
	names := make([]string, nLocs)
	for l := range names {
		names[l] = fmt.Sprintf("v%d", l)
	}
	g := New(nThreads, initVals, names)
	modes := []Mode{Rlx, Acq, Rel, AcqRel, SC}
	val := Val(1)
	for s := 0; s < nSteps; s++ {
		prev := BuildRels(g)
		tid := rng.Intn(nThreads)
		loc := Loc(rng.Intn(nLocs))
		mode := modes[rng.Intn(len(modes))]
		e := &Event{
			ID:       EventID{Thread: tid, Index: len(g.Threads[tid])},
			Mode:     mode,
			Loc:      loc,
			AwaitSeq: -1,
		}
		switch k := rng.Intn(10); {
		case k < 3: // write
			e.Kind = KWrite
			e.Val = val
			val++
			g.Append(e)
			g.InsertMo(loc, e.ID, 1+rng.Intn(len(g.Mo[loc])))
		case k < 6: // read (sometimes bottom)
			e.Kind = KRead
			if rng.Intn(4) == 0 {
				g.Append(e)
				g.SetRF(e.ID, BottomRF)
			} else {
				order := g.Mo[loc]
				w := order[rng.Intn(len(order))]
				e.RVal = g.WriteVal(w)
				g.Append(e)
				g.SetRF(e.ID, FromW(w))
			}
		case k < 8: // update (sometimes degraded or blocked on ⊥)
			e.Kind = KUpdate
			if rng.Intn(5) == 0 {
				// Blocked update: ⊥ rf, write part not yet in mo.
				g.Append(e)
				g.SetRF(e.ID, BottomRF)
				break
			}
			order := g.Mo[loc]
			src := rng.Intn(len(order))
			w := order[src]
			e.RVal = g.WriteVal(w)
			if rng.Intn(3) == 0 {
				e.Degraded = true
				g.Append(e)
				g.SetRF(e.ID, FromW(w))
			} else {
				e.Val = val
				val++
				g.Append(e)
				g.SetRF(e.ID, FromW(w))
				g.InsertMo(loc, e.ID, src+1)
			}
		default: // fence
			e.Kind = KFence
			e.Loc = 0
			g.Append(e)
		}
		check(prev, g, e)
	}
}

// TestAllocsExtend bounds the allocations of one incremental relation
// extension: the Rels struct with its embedded matrices, one bit slab,
// the event/index rows and the cached-order slice — the working
// vectors are pooled and nothing is per-event. Gated out of -short
// like the other allocation bars.
func TestAllocsExtend(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression bars are not run in -short")
	}
	g := New(2, []Val{0, 0}, []string{"x", "y"})
	val := Val(1)
	for i := 0; i < 12; i++ {
		w := &Event{ID: EventID{Thread: i % 2, Index: i / 2}, Kind: KWrite, Mode: Rel,
			Loc: Loc(i % 2), Val: val, AwaitSeq: -1}
		val++
		g.Append(w)
		g.InsertMo(w.Loc, w.ID, 1)
	}
	prev := BuildRels(g)
	e := &Event{ID: EventID{Thread: 0, Index: 6}, Kind: KWrite, Mode: Rel, Loc: 0, Val: val, AwaitSeq: -1}
	g.Append(e)
	g.InsertMo(0, e.ID, 1)
	prev.ensureTopo()
	allocs := testing.AllocsPerRun(100, func() {
		prev.Extend(g, e)
	})
	// Measured ~8 after the slab/pool work (was ~17 with per-matrix
	// allocation); bar at 12.
	if allocs > 12 {
		t.Errorf("Rels.Extend allocates %.0f objects, regression bar is 12", allocs)
	}
}

// TestExtendMatchesBuild is the correctness bar of the incremental
// relations: on randomized exploration histories, Rels.Extend must
// produce exactly the matrices BuildRels derives from scratch.
func TestExtendMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nThreads := 2 + rng.Intn(2)
		nLocs := 1 + rng.Intn(3)
		randExtendHistory(t, rng, nThreads, nLocs, 14, func(prev *Rels, g *Graph, e *Event) {
			ext := prev.Extend(g, e)
			full := BuildRels(g)
			if ext.N != full.N {
				t.Fatalf("trial %d: N=%d, want %d", trial, ext.N, full.N)
			}
			for i, ev := range full.Ev {
				if ext.Ev[i].ID != ev.ID {
					t.Fatalf("trial %d: Ev[%d] = %v, want %v", trial, i, ext.Ev[i].ID, ev.ID)
				}
			}
			pairs := []struct {
				name      string
				got, want *BitMat
			}{
				{"sb", ext.Sb, full.Sb},
				{"sbloc", ext.SbLoc, full.SbLoc},
				{"rf", ext.RfM, full.RfM},
				{"mo", ext.MoM, full.MoM},
				{"fr", ext.FrM, full.FrM},
				{"hb", ext.Hb, full.Hb},
				{"eco", ext.Eco, full.Eco},
			}
			for _, p := range pairs {
				if !p.got.Equal(p.want) {
					t.Fatalf("trial %d: %s differs after appending %v\ngraph:\n%s",
						trial, p.name, e, g.Render())
				}
			}
			assertTopoInvariant(t, ext, g)
		})
	}
}

// assertTopoInvariant checks the cached-order contract of r against
// ground truth: topoValid and topoCyclic must match the actual
// acyclicity of sb ∪ rf ∪ mo (decided by the closure oracle), a valid
// order must genuinely order the union, and topoNone is always
// allowed (the lazy states). ensureTopo from any state must land on
// the truth.
func assertTopoInvariant(t *testing.T, r *Rels, g *Graph) {
	t.Helper()
	union := r.Sb.Clone()
	union.OrWith(r.RfM)
	union.OrWith(r.MoM)
	acyclic := !union.HasCycle()
	switch r.topoState {
	case topoValid:
		if !acyclic {
			t.Fatalf("topoValid on a cyclic union\ngraph:\n%s", g.Render())
		}
		if !union.respectsOrder(r.topo) {
			t.Fatalf("cached order is not a topological order of the union\ngraph:\n%s", g.Render())
		}
	case topoCyclic:
		if acyclic {
			t.Fatalf("topoCyclic on an acyclic union\ngraph:\n%s", g.Render())
		}
	}
	r.ensureTopo()
	if acyclic != (r.topoState == topoValid) {
		t.Fatalf("ensureTopo landed on state %d, union acyclic=%v", r.topoState, acyclic)
	}
	if r.topoState == topoValid && !union.respectsOrder(r.topo) {
		t.Fatalf("derived order is not a topological order of the union")
	}
}

// TestResolveMatchesBuild is the correctness bar of the incremental
// ⊥-read resolution (Rels.Resolve, the AT resolvability hot path): on
// randomized histories ending in a blocked read, resolving it against
// each candidate write must produce exactly the matrices BuildRels
// derives from scratch, with the cached-order contract intact.
func TestResolveMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		nThreads := 2 + rng.Intn(2)
		nLocs := 1 + rng.Intn(2)
		var g *Graph
		randExtendHistory(t, rng, nThreads, nLocs, 10+rng.Intn(6), func(_ *Rels, gg *Graph, _ *Event) { g = gg })
		// Append a ⊥ read (sometimes a blocked update) to a random thread.
		tid := rng.Intn(nThreads)
		loc := Loc(rng.Intn(nLocs))
		e := &Event{
			ID:       EventID{Thread: tid, Index: len(g.Threads[tid])},
			Kind:     KRead,
			Mode:     []Mode{Rlx, Acq, SC}[rng.Intn(3)],
			Loc:      loc,
			AwaitSeq: 0,
		}
		if rng.Intn(3) == 0 {
			e.Kind = KUpdate
		}
		g.Append(e)
		g.SetRF(e.ID, BottomRF)
		prev := BuildRels(g)
		if rng.Intn(2) == 0 {
			prev.ensureTopo() // exercise both lazy and derived parents
		}
		for _, w := range g.Mo[loc] {
			// Mirror core.resolveWith: clone, swap the event, set rf.
			g2 := g.Clone()
			e2 := *e
			e2.RVal = g2.WriteVal(w)
			if e2.Kind == KUpdate {
				e2.Degraded = true
				e2.Val = 0
			}
			g2.ReplaceEvent(e.ID, &e2)
			g2.SetRF(e.ID, FromW(w))
			res := prev.Resolve(g2, &e2)
			full := BuildRels(g2)
			pairs := []struct {
				name      string
				got, want *BitMat
			}{
				{"sb", res.Sb, full.Sb},
				{"sbloc", res.SbLoc, full.SbLoc},
				{"rf", res.RfM, full.RfM},
				{"mo", res.MoM, full.MoM},
				{"fr", res.FrM, full.FrM},
				{"hb", res.Hb, full.Hb},
				{"eco", res.Eco, full.Eco},
			}
			for _, p := range pairs {
				if !p.got.Equal(p.want) {
					t.Fatalf("trial %d: %s differs after resolving %v from %v\ngraph:\n%s",
						trial, p.name, e.ID, w, g2.Render())
				}
			}
			assertTopoInvariant(t, res, g2)
		}
	}
}

// TestExtendTopoEdgeCases pins the order-maintenance corners down with
// hand-built graphs: a duplicate edge (one neighbor that is both sb
// and mo predecessor), a forced back-edge whose rebuild stays acyclic,
// and a forced back-edge that makes the union genuinely cyclic.
func TestExtendTopoEdgeCases(t *testing.T) {
	t.Run("duplicate-edge", func(t *testing.T) {
		// T0: Wx(1); Wx(2) mo-adjacent — the second write's po
		// predecessor is also its mo predecessor.
		g := New(1, []Val{0}, []string{"x"})
		w1 := &Event{ID: EventID{0, 0}, Kind: KWrite, Mode: Rlx, Loc: 0, Val: 1, AwaitSeq: -1}
		g.Append(w1)
		g.InsertMo(0, w1.ID, 1)
		prev := BuildRels(g)
		prev.ensureTopo()
		w2 := &Event{ID: EventID{0, 1}, Kind: KWrite, Mode: Rlx, Loc: 0, Val: 2, AwaitSeq: -1}
		g.Append(w2)
		g.InsertMo(0, w2.ID, 2)
		before := AcyclicCountersNow()
		ext := prev.Extend(g, w2)
		if d := AcyclicCountersNow().Sub(before); d.OrderExtends != 1 {
			t.Fatalf("duplicate-edge append should extend the order in place: %+v", d)
		}
		assertTopoInvariant(t, ext, g)
	})
	t.Run("back-edge-reorder", func(t *testing.T) {
		// T0: Wx a. T1: Wy b. Then T0 appends Wy c mo-BEFORE b: c's po
		// predecessor a must precede c while c must precede b — a
		// constraint the parent's order may or may not satisfy, and the
		// re-derived order must.
		g := New(2, []Val{0, 0}, []string{"x", "y"})
		a := &Event{ID: EventID{0, 0}, Kind: KWrite, Mode: Rlx, Loc: 0, Val: 1, AwaitSeq: -1}
		g.Append(a)
		g.InsertMo(0, a.ID, 1)
		b := &Event{ID: EventID{1, 0}, Kind: KWrite, Mode: Rlx, Loc: 1, Val: 2, AwaitSeq: -1}
		g.Append(b)
		g.InsertMo(1, b.ID, 1)
		prev := BuildRels(g)
		prev.ensureTopo()
		c := &Event{ID: EventID{0, 1}, Kind: KWrite, Mode: Rlx, Loc: 1, Val: 3, AwaitSeq: -1}
		g.Append(c)
		g.InsertMo(1, c.ID, 1) // before b
		ext := prev.Extend(g, c)
		assertTopoInvariant(t, ext, g)
		if !ext.TopoOK() {
			t.Fatal("acyclic extension must end topoValid")
		}
	})
	t.Run("cyclic-union", func(t *testing.T) {
		// T0: Wx a1, Wx a2 (mo a1<a2). T1: Rx r reads a2, then Wx c
		// mo-BEFORE a1: c→a1→a2→r→c cycles through mo, rf and sb.
		g := New(2, []Val{0}, []string{"x"})
		a1 := &Event{ID: EventID{0, 0}, Kind: KWrite, Mode: Rlx, Loc: 0, Val: 1, AwaitSeq: -1}
		g.Append(a1)
		g.InsertMo(0, a1.ID, 1)
		a2 := &Event{ID: EventID{0, 1}, Kind: KWrite, Mode: Rlx, Loc: 0, Val: 2, AwaitSeq: -1}
		g.Append(a2)
		g.InsertMo(0, a2.ID, 2)
		r := &Event{ID: EventID{1, 0}, Kind: KRead, Mode: Rlx, Loc: 0, RVal: 2, AwaitSeq: -1}
		g.Append(r)
		g.SetRF(r.ID, FromW(a2.ID))
		prev := BuildRels(g)
		prev.ensureTopo()
		if !prev.TopoOK() {
			t.Fatal("setup union should be acyclic")
		}
		c := &Event{ID: EventID{1, 1}, Kind: KWrite, Mode: Rlx, Loc: 0, Val: 3, AwaitSeq: -1}
		g.Append(c)
		g.InsertMo(0, c.ID, 1) // before a1
		ext := prev.Extend(g, c)
		assertTopoInvariant(t, ext, g)
		if !ext.TopoCyclic() {
			t.Fatal("mo-backdated write must make the union cyclic")
		}
		// And cyclicity is permanent: any further extension stays cyclic.
		f := &Event{ID: EventID{1, 2}, Kind: KFence, Mode: AcqRel, AwaitSeq: -1}
		g.Append(f)
		ext2 := ext.Extend(g, f)
		if !ext2.TopoCyclic() {
			t.Fatal("cyclic union must stay cyclic across extension")
		}
	})
}

package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randExtendHistory appends nSteps random events to g the way the
// explorer does (clone-free here: we mutate one graph and snapshot
// relations), calling check after every append with the pre-append
// relations, the post-append graph and the new event.
func randExtendHistory(t *testing.T, rng *rand.Rand, nThreads, nLocs, nSteps int,
	check func(prev *Rels, g *Graph, e *Event)) {
	t.Helper()
	initVals := make([]Val, nLocs)
	names := make([]string, nLocs)
	for l := range names {
		names[l] = fmt.Sprintf("v%d", l)
	}
	g := New(nThreads, initVals, names)
	modes := []Mode{Rlx, Acq, Rel, AcqRel, SC}
	val := Val(1)
	for s := 0; s < nSteps; s++ {
		prev := BuildRels(g)
		tid := rng.Intn(nThreads)
		loc := Loc(rng.Intn(nLocs))
		mode := modes[rng.Intn(len(modes))]
		e := &Event{
			ID:       EventID{Thread: tid, Index: len(g.Threads[tid])},
			Mode:     mode,
			Loc:      loc,
			AwaitSeq: -1,
		}
		switch k := rng.Intn(10); {
		case k < 3: // write
			e.Kind = KWrite
			e.Val = val
			val++
			g.Append(e)
			g.InsertMo(loc, e.ID, 1+rng.Intn(len(g.Mo[loc])))
		case k < 6: // read (sometimes bottom)
			e.Kind = KRead
			if rng.Intn(4) == 0 {
				g.Append(e)
				g.SetRF(e.ID, BottomRF)
			} else {
				order := g.Mo[loc]
				w := order[rng.Intn(len(order))]
				e.RVal = g.WriteVal(w)
				g.Append(e)
				g.SetRF(e.ID, FromW(w))
			}
		case k < 8: // update (sometimes degraded or blocked on ⊥)
			e.Kind = KUpdate
			if rng.Intn(5) == 0 {
				// Blocked update: ⊥ rf, write part not yet in mo.
				g.Append(e)
				g.SetRF(e.ID, BottomRF)
				break
			}
			order := g.Mo[loc]
			src := rng.Intn(len(order))
			w := order[src]
			e.RVal = g.WriteVal(w)
			if rng.Intn(3) == 0 {
				e.Degraded = true
				g.Append(e)
				g.SetRF(e.ID, FromW(w))
			} else {
				e.Val = val
				val++
				g.Append(e)
				g.SetRF(e.ID, FromW(w))
				g.InsertMo(loc, e.ID, src+1)
			}
		default: // fence
			e.Kind = KFence
			e.Loc = 0
			g.Append(e)
		}
		check(prev, g, e)
	}
}

// TestAllocsExtend bounds the allocations of one incremental relation
// extension: the grown matrices (8), the Rels struct, the index row and
// the closure-update vectors — and nothing per-event. Gated out of
// -short like the other allocation bars.
func TestAllocsExtend(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression bars are not run in -short")
	}
	g := New(2, []Val{0, 0}, []string{"x", "y"})
	val := Val(1)
	for i := 0; i < 12; i++ {
		w := &Event{ID: EventID{Thread: i % 2, Index: i / 2}, Kind: KWrite, Mode: Rel,
			Loc: Loc(i % 2), Val: val, AwaitSeq: -1}
		val++
		g.Append(w)
		g.InsertMo(w.Loc, w.ID, 1)
	}
	prev := BuildRels(g)
	e := &Event{ID: EventID{Thread: 0, Index: 6}, Kind: KWrite, Mode: Rel, Loc: 0, Val: val, AwaitSeq: -1}
	g.Append(e)
	g.InsertMo(0, e.ID, 1)
	allocs := testing.AllocsPerRun(100, func() {
		prev.Extend(g, e)
	})
	// Measured ~17; bar at 30.
	if allocs > 30 {
		t.Errorf("Rels.Extend allocates %.0f objects, regression bar is 30", allocs)
	}
}

// TestExtendMatchesBuild is the correctness bar of the incremental
// relations: on randomized exploration histories, Rels.Extend must
// produce exactly the matrices BuildRels derives from scratch.
func TestExtendMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nThreads := 2 + rng.Intn(2)
		nLocs := 1 + rng.Intn(3)
		randExtendHistory(t, rng, nThreads, nLocs, 14, func(prev *Rels, g *Graph, e *Event) {
			ext := prev.Extend(g, e)
			full := BuildRels(g)
			if ext.N != full.N {
				t.Fatalf("trial %d: N=%d, want %d", trial, ext.N, full.N)
			}
			for i, ev := range full.Ev {
				if ext.Ev[i].ID != ev.ID {
					t.Fatalf("trial %d: Ev[%d] = %v, want %v", trial, i, ext.Ev[i].ID, ev.ID)
				}
			}
			pairs := []struct {
				name      string
				got, want *BitMat
			}{
				{"sb", ext.Sb, full.Sb},
				{"sbloc", ext.SbLoc, full.SbLoc},
				{"rf", ext.RfM, full.RfM},
				{"mo", ext.MoM, full.MoM},
				{"fr", ext.FrM, full.FrM},
				{"sw", ext.SwM, full.SwM},
				{"hb", ext.Hb, full.Hb},
				{"eco", ext.Eco, full.Eco},
			}
			for _, p := range pairs {
				if !p.got.Equal(p.want) {
					t.Fatalf("trial %d: %s differs after appending %v\ngraph:\n%s",
						trial, p.name, e, g.Render())
				}
			}
		})
	}
}

package graph

import "math/bits"

// Hash128 is a 128-bit structural hash. The explorer's visited set, the
// optimizer's verdict cache and BarrierSpec memo keys all key on these
// instead of canonical strings: at 128 bits the collision probability
// across even billions of states is negligible (~2⁻⁶⁴), while the key
// costs two words instead of a fmt-built string per state.
type Hash128 = [2]uint64

// Hasher128 accumulates words into a Hash128. It is a two-lane
// multiply-xor mixer (splitmix64-style finalizers per word); not
// cryptographic, but well-diffused for structural dedup keys.
type Hasher128 struct {
	lo, hi uint64
}

// NewHasher128 returns a hasher with fixed distinct lane seeds.
func NewHasher128() Hasher128 {
	return Hasher128{lo: 0x9e3779b97f4a7c15, hi: 0xc2b2ae3d27d4eb4f}
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche 64-bit
// permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Word folds one 64-bit word into the hash.
func (h *Hasher128) Word(x uint64) {
	x = mix64(x)
	h.lo = (h.lo ^ x) * 0x9ddfea08eb382d69
	h.lo ^= h.lo >> 32
	h.hi = (h.hi ^ bits.RotateLeft64(x, 32)) * 0xff51afd7ed558ccd
	h.hi ^= h.hi >> 29
}

// String folds a string into the hash, 8 bytes per word, with a length
// word so concatenation boundaries stay distinguishable.
func (h *Hasher128) String(s string) {
	h.Word(uint64(len(s)))
	var w uint64
	shift := uint(0)
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << shift
		shift += 8
		if shift == 64 {
			h.Word(w)
			w, shift = 0, 0
		}
	}
	if shift > 0 {
		h.Word(w)
	}
}

// Sum returns the accumulated hash.
func (h *Hasher128) Sum() Hash128 {
	return Hash128{mix64(h.lo), mix64(h.hi)}
}

// hashID packs an EventID into one word for hashing. Thread and index
// both fit 32 bits by construction (InitThread is -1, NoEvent -2).
func hashID(id EventID) uint64 {
	return uint64(uint32(id.Thread))<<32 | uint64(uint32(id.Index))
}

// Fingerprint128 returns a 128-bit structural hash of the graph,
// covering exactly the information of Fingerprint: per-thread event
// structure (kind, mode, loc, values, degradation), rf choices, and the
// per-location modification orders — everything that determines the
// graph's exploration future, and nothing that doesn't (stamps). Two
// graphs with equal fingerprints generate identical futures; the
// explorer's visited set keys on this hash.
func (g *Graph) Fingerprint128() Hash128 {
	h := NewHasher128()
	for t, evs := range g.Threads {
		h.Word(0xa11ce<<20 | uint64(t))
		for _, e := range evs {
			degr := uint64(0)
			if e.Degraded {
				degr = 1
			}
			h.Word(uint64(e.Kind)<<56 | uint64(e.Mode)<<48 | degr<<40 | uint64(uint32(e.Loc)))
			h.Word(e.Val)
			h.Word(e.RVal)
			if e.IsReadLike() {
				rf := g.rf[t][e.ID.Index]
				if rf.Bottom {
					h.Word(0xb0770e)
				} else {
					h.Word(hashID(rf.W))
				}
			}
		}
	}
	for l, order := range g.Mo {
		h.Word(0x0d0e<<20 | uint64(l))
		for _, w := range order {
			h.Word(hashID(w))
		}
	}
	return h.Sum()
}

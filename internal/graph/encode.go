package graph

import (
	"encoding/binary"
	"fmt"
)

// Binary graph encoding. Checkpointing an exploration frontier spills
// ExploreState items to disk, and each one is a partial execution
// graph; this encoding captures everything exploration semantics
// depend on — events with their exact addition stamps (the revisit
// restriction is stamp-ordered), rf choices, per-location modification
// orders, and the stamp counter — in a compact varint layout. Derived
// state (memoized relations, extension hints, rf-row ownership) is
// rebuilt, not stored.

// graphEncVersion guards the wire layout of AppendGraph/DecodeGraph.
// Callers embed it in their own framing (a checkpoint record's CRC
// covers the whole payload), so a version bump cleanly invalidates old
// sidecar files instead of mis-decoding them.
const graphEncVersion = 1

// AppendGraph appends the binary encoding of g to buf and returns the
// extended slice. The encoding is self-delimiting: DecodeGraph reports
// how many bytes it consumed.
func AppendGraph(buf []byte, g *Graph) []byte {
	buf = append(buf, graphEncVersion)
	buf = binary.AppendUvarint(buf, uint64(len(g.Threads)))
	buf = binary.AppendUvarint(buf, uint64(len(g.InitVals)))
	for l, v := range g.InitVals {
		buf = binary.AppendUvarint(buf, v)
		buf = appendString(buf, g.LocNames[l])
	}
	buf = binary.AppendUvarint(buf, uint64(g.NextStamp))
	for t, evs := range g.Threads {
		buf = binary.AppendUvarint(buf, uint64(len(evs)))
		for i, e := range evs {
			buf = appendEvent(buf, e)
			if e.IsReadLike() {
				rf := g.rf[t][i]
				if rf.Bottom {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
					buf = binary.AppendVarint(buf, int64(rf.W.Thread))
					buf = binary.AppendVarint(buf, int64(rf.W.Index))
				}
			}
		}
	}
	for _, order := range g.Mo {
		buf = binary.AppendUvarint(buf, uint64(len(order)))
		for _, id := range order {
			buf = binary.AppendVarint(buf, int64(id.Thread))
			buf = binary.AppendVarint(buf, int64(id.Index))
		}
	}
	return buf
}

// Event flag bits (first byte of an encoded event).
const (
	evfDegraded = 1 << iota
	evfInAwait
	evfPoint
	evfMsg
)

func appendEvent(buf []byte, e *Event) []byte {
	var flags byte
	if e.Degraded {
		flags |= evfDegraded
	}
	if e.AwaitSeq >= 0 {
		flags |= evfInAwait
	}
	if e.Point != "" {
		flags |= evfPoint
	}
	if e.Msg != "" {
		flags |= evfMsg
	}
	buf = append(buf, flags, byte(e.Kind), byte(e.Mode))
	buf = binary.AppendVarint(buf, int64(e.Loc))
	buf = binary.AppendUvarint(buf, e.Val)
	buf = binary.AppendUvarint(buf, e.RVal)
	buf = binary.AppendUvarint(buf, uint64(e.Stamp))
	if flags&evfInAwait != 0 {
		buf = binary.AppendUvarint(buf, uint64(e.AwaitSeq))
		buf = binary.AppendUvarint(buf, uint64(e.AwaitIter))
	}
	if flags&evfPoint != 0 {
		buf = appendString(buf, e.Point)
	}
	if flags&evfMsg != 0 {
		buf = appendString(buf, e.Msg)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decBuf is a cursor over an encoded graph with sticky error handling:
// the first malformed read poisons the cursor and every later read
// returns zero values, so decoding logic stays linear and the single
// error check happens at the end.
type decBuf struct {
	b   []byte
	off int
	err error
}

func (d *decBuf) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decBuf) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("graph decode: truncated at byte %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decBuf) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("graph decode: bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decBuf) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("graph decode: bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decBuf) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("graph decode: string of %d bytes exceeds remaining input", n)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads a collection length and rejects values that could not
// possibly fit in the remaining input (every element costs at least
// one byte), so corrupt or adversarial input cannot force a huge
// allocation before the truncation is noticed.
func (d *decBuf) count(what string) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("graph decode: %s count %d exceeds remaining input", what, n)
		return 0
	}
	return int(n)
}

// DecodeGraph decodes one graph from the front of data, returning the
// graph, the number of bytes consumed, and any error. The decoded
// graph is fully validated (structural invariants and stamp bounds);
// on error the graph is nil and must not be used.
func DecodeGraph(data []byte) (*Graph, int, error) {
	d := &decBuf{b: data}
	if v := d.byte(); d.err == nil && v != graphEncVersion {
		return nil, 0, fmt.Errorf("graph decode: unsupported encoding version %d", v)
	}
	nthreads := d.count("thread")
	nlocs := d.count("location")
	if d.err != nil {
		return nil, 0, d.err
	}
	initVals := make([]Val, nlocs)
	locNames := make([]string, nlocs)
	for l := 0; l < nlocs; l++ {
		initVals[l] = d.uvarint()
		locNames[l] = d.str()
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	g := New(nthreads, initVals, locNames)
	g.NextStamp = int(d.uvarint())
	for t := 0; t < nthreads; t++ {
		nev := d.count("event")
		if d.err != nil {
			return nil, 0, d.err
		}
		evs := make([]*Event, 0, nev)
		rfs := make([]RF, 0, nev)
		for i := 0; i < nev; i++ {
			e := decodeEvent(d, EventID{Thread: t, Index: i})
			if d.err != nil {
				return nil, 0, d.err
			}
			rf := noRF
			if e.IsReadLike() {
				if bottom := d.byte(); bottom != 0 {
					rf = BottomRF
				} else {
					rf = RF{W: EventID{Thread: int(d.varint()), Index: int(d.varint())}}
				}
			}
			evs = append(evs, e)
			rfs = append(rfs, rf)
		}
		g.Threads[t] = evs
		g.rf[t] = rfs
		if t < 64 {
			g.rfOwned |= 1 << uint(t) // freshly allocated rows are private
		}
	}
	for l := 0; l < nlocs; l++ {
		nmo := d.count("mo entry")
		if d.err != nil {
			return nil, 0, d.err
		}
		order := make([]EventID, nmo)
		for i := range order {
			order[i] = EventID{Thread: int(d.varint()), Index: int(d.varint())}
		}
		g.Mo[l] = order
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	if err := validateDecoded(g); err != nil {
		return nil, 0, err
	}
	return g, d.off, nil
}

func decodeEvent(d *decBuf, id EventID) *Event {
	flags := d.byte()
	e := &Event{
		ID:       id,
		Kind:     Kind(d.byte()),
		Mode:     Mode(d.byte()),
		Loc:      Loc(d.varint()),
		AwaitSeq: -1,
	}
	e.Val = d.uvarint()
	e.RVal = d.uvarint()
	e.Stamp = int(d.uvarint())
	e.Degraded = flags&evfDegraded != 0
	if flags&evfInAwait != 0 {
		e.AwaitSeq = int(d.uvarint())
		e.AwaitIter = int(d.uvarint())
	}
	if flags&evfPoint != 0 {
		e.Point = d.str()
	}
	if flags&evfMsg != 0 {
		e.Msg = d.str()
	}
	if e.Kind > KError {
		d.fail("graph decode: unknown event kind %d", e.Kind)
	}
	if e.Mode > SC {
		d.fail("graph decode: unknown event mode %d", e.Mode)
	}
	return e
}

// validateDecoded rejects decoded graphs that passed the syntactic
// decode but are structurally unsound: CRC framing catches media
// corruption, this catches logic corruption (a bug or a forged file)
// before a broken graph can poison an exploration.
func validateDecoded(g *Graph) error {
	// Bounds first: CheckInvariants indexes Mo by event locations, so an
	// out-of-range location must be rejected before the audit runs.
	for _, evs := range g.Threads {
		prev := 0
		for _, e := range evs {
			if e.Loc < 0 || (int(e.Loc) >= len(g.InitVals) && e.Kind != KFence && e.Kind != KError) {
				return fmt.Errorf("graph decode: event %v references location %d of %d", e.ID, e.Loc, len(g.InitVals))
			}
			if e.Stamp <= 0 || e.Stamp >= g.NextStamp {
				return fmt.Errorf("graph decode: event %v stamp %d outside (0,%d)", e.ID, e.Stamp, g.NextStamp)
			}
			if e.Stamp <= prev {
				return fmt.Errorf("graph decode: event %v stamp %d not increasing along po", e.ID, e.Stamp)
			}
			prev = e.Stamp
		}
	}
	if err := g.CheckInvariants(); err != nil {
		return fmt.Errorf("graph decode: %w", err)
	}
	return nil
}

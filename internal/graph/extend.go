package graph

// Extend computes the relations of g incrementally, where g was derived
// from the graph r describes by appending exactly the event e (with its
// rf choice recorded and, for write-likes, its mo position inserted).
// This is the exploration hot path: instead of re-deriving sb/rf/mo/fr/
// sw and re-running two O(n³/64) transitive closures, Extend copies the
// parent's matrices with one extra row/column and adds only the edges
// the new event introduces.
//
// Why this is sound (and what the invariants are):
//
//   - e has the largest stamp in g, so it takes dense index N: existing
//     indices never shift.
//   - Appending an event never changes a relation edge between two
//     existing events, with one exception: eco gains self-loops on
//     events that both reach and are reached by e. All direct new
//     sb/sw edges point INTO e (it is the last event of its thread and
//     nothing reads from it yet), so hb stays closed after adding e's
//     column. Eco gains both in-edges (rf source, mo predecessors,
//     fr from reads with earlier sources) and out-edges (mo successors,
//     fr targets), but every direct in×out pair is already covered by a
//     direct mo or fr edge between the existing endpoints — except when
//     the two endpoints coincide, which is exactly the self-loop case.
//
// TestExtendMatchesBuild cross-checks every matrix against BuildRels on
// randomized exploration histories.
func (r *Rels) Extend(g *Graph, e *Event) *Rels {
	n := r.N
	ni := n // dense index of the new event
	nr := &Rels{G: g, N: n + 1, nInit: r.nInit}
	nr.Ev = append(r.Ev[:n:n], e)
	nr.tIdx = make([][]int32, len(r.tIdx))
	copy(nr.tIdx, r.tIdx)
	trow := r.tIdx[e.ID.Thread]
	nr.tIdx[e.ID.Thread] = append(trow[:len(trow):len(trow)], int32(ni))

	nr.Sb = r.Sb.grown()
	nr.SbLoc = r.SbLoc.grown()
	nr.RfM = r.RfM.grown()
	nr.MoM = r.MoM.grown()
	nr.FrM = r.FrM.grown()
	nr.SwM = r.SwM.grown()

	words := nr.Sb.words
	hbIn := make([]uint64, words)  // direct sb ∪ sw edges u -> e
	ecoIn := make([]uint64, words) // direct rf ∪ mo ∪ fr edges u -> e
	ecoOut := make([]uint64, words)
	mark := func(vec []uint64, u int) { vec[u/64] |= 1 << (uint(u) % 64) }
	marked := func(vec []uint64, u int) bool { return vec[u/64]&(1<<(uint(u)%64)) != 0 }

	// sb / sb-loc: inits and po predecessors precede e.
	isAccess := e.Kind != KFence && e.Kind != KError
	for i := 0; i < r.nInit; i++ {
		nr.Sb.Set(i, ni)
		mark(hbIn, i)
		if isAccess && r.Ev[i].Loc == e.Loc {
			nr.SbLoc.Set(i, ni)
		}
	}
	for _, p := range g.Threads[e.ID.Thread][:e.ID.Index] {
		pi := int(trow[p.ID.Index])
		nr.Sb.Set(pi, ni)
		mark(hbIn, pi)
		if isAccess && p.Kind != KFence && p.Kind != KError && p.Loc == e.Loc {
			nr.SbLoc.Set(pi, ni)
		}
	}

	// rf and fr contributed by e's read part.
	rf := g.Rf[e.ID]
	if e.IsReadLike() && !rf.Bottom {
		wi := r.IndexOf(rf.W)
		nr.RfM.Set(wi, ni)
		mark(ecoIn, wi)
		order := g.Mo[e.Loc]
		src := -1
		for i, w := range order {
			if w == rf.W {
				src = i
				break
			}
		}
		for i := src + 1; src >= 0 && i < len(order); i++ {
			if order[i] == e.ID {
				continue // an update never fr-precedes itself
			}
			oi := r.IndexOf(order[i])
			nr.FrM.Set(ni, oi)
			mark(ecoOut, oi)
		}
	}

	// mo and incoming fr contributed by e's write part. A write-like
	// event absent from mo (a blocked update whose rf is still ⊥)
	// contributes nothing, exactly as in BuildRels.
	if e.IsWriteLike() {
		order := g.Mo[e.Loc]
		pos := -1
		for i, w := range order {
			if w == e.ID {
				pos = i
				break
			}
		}
		if pos < 0 {
			order = nil
		}
		for i := 0; i < pos; i++ {
			pi := r.IndexOf(order[i])
			nr.MoM.Set(pi, ni)
			mark(ecoIn, pi)
		}
		for i := pos + 1; i < len(order); i++ {
			si := r.IndexOf(order[i])
			nr.MoM.Set(ni, si)
			mark(ecoOut, si)
		}
		// Every existing read whose source is mo-before e now also
		// from-reads e.
		for rd, rrf := range g.Rf {
			if rrf.Bottom || rd == e.ID {
				continue
			}
			if g.Event(rd).Loc != e.Loc {
				continue
			}
			src := -1
			for i, w := range order {
				if w == rrf.W {
					src = i
					break
				}
			}
			if src >= 0 && src < pos {
				ri := r.IndexOf(rd)
				nr.FrM.Set(ri, ni)
				mark(ecoIn, ri)
			}
		}
	}

	// sw: as the last event of its thread that nothing reads from yet,
	// e only ever RECEIVES synchronizes-with edges — as an acquire
	// read-like from the release sides of its rf source's release
	// sequence, or as an acquire fence on behalf of the po-earlier reads
	// of its thread. (Release sides of e affect only future events.)
	emit := func(s int) {
		if s != ni {
			nr.SwM.Set(s, ni)
			mark(hbIn, s)
		}
	}
	if e.IsReadLike() && !rf.Bottom && e.Mode.HasAcq() {
		r.swFromBases(g, rf.W, emit)
	}
	if e.Kind == KFence && e.Mode.HasAcq() {
		for _, rd := range g.Threads[e.ID.Thread][:e.ID.Index] {
			if !rd.IsReadLike() {
				continue
			}
			rrf := g.Rf[rd.ID]
			if rrf.Bottom {
				continue
			}
			r.swFromBases(g, rrf.W, emit)
		}
	}

	// hb: every new edge points into e, so the old closure stays closed;
	// e's column is the direct predecessors plus everything hb-before
	// one of them.
	nr.Hb = r.Hb.grown()
	for v := 0; v < n; v++ {
		if marked(hbIn, v) || r.Hb.rowIntersects(v, hbIn) {
			nr.Hb.Set(v, ni)
		}
	}

	// eco: the column is everything that reaches a direct in-edge, the
	// row everything reachable from a direct out-edge, and the only new
	// edges between existing events are self-loops on events that both
	// reach and are reached by e.
	nr.Eco = r.Eco.grown()
	ecoCol := make([]uint64, words)
	ecoRow := make([]uint64, words)
	copy(ecoRow, ecoOut)
	for v := 0; v < n; v++ {
		if marked(ecoOut, v) {
			r.Eco.orRowInto(v, ecoRow)
		}
		if marked(ecoIn, v) || r.Eco.rowIntersects(v, ecoIn) {
			mark(ecoCol, v)
			nr.Eco.Set(v, ni)
		}
	}
	cyclic := false
	for v := 0; v < n; v++ {
		if marked(ecoRow, v) {
			nr.Eco.Set(ni, v)
			if marked(ecoCol, v) {
				nr.Eco.Set(v, v)
				cyclic = true
			}
		}
	}
	if cyclic {
		nr.Eco.Set(ni, ni)
	}

	return nr
}

package graph

// deltaScratch carves the five working bit-vectors of an incremental
// relation delta (Extend, Resolve) out of one pooled strip of
// 5*words zeroed words; the caller returns the scratch to acyclicPool
// when done.
func deltaScratch(words int) (s *acyclicScratch, hbIn, ecoIn, ecoOut, ecoCol, ecoRow []uint64) {
	s = acyclicPool.Get().(*acyclicScratch)
	if cap(s.seen) < 5*words {
		s.seen = make([]uint64, 5*words)
	} else {
		s.seen = s.seen[:5*words]
		clear(s.seen)
	}
	return s, s.seen[0*words : 1*words], s.seen[1*words : 2*words],
		s.seen[2*words : 3*words], s.seen[3*words : 4*words], s.seen[4*words : 5*words]
}

// mark and marked are the word-vector bit helpers of the delta paths.
func mark(vec []uint64, u int)        { vec[u/64] |= 1 << (uint(u) % 64) }
func marked(vec []uint64, u int) bool { return vec[u/64]&(1<<(uint(u)%64)) != 0 }

// Extend computes the relations of g incrementally, where g was derived
// from the graph r describes by appending exactly the event e (with its
// rf choice recorded and, for write-likes, its mo position inserted).
// This is the exploration hot path: instead of re-deriving sb/rf/mo/fr/
// sw and re-running two O(n³/64) transitive closures, Extend copies the
// parent's matrices with one extra row/column and adds only the edges
// the new event introduces.
//
// Why this is sound (and what the invariants are):
//
//   - e has the largest stamp in g, so it takes dense index N: existing
//     indices never shift.
//   - Appending an event never changes a relation edge between two
//     existing events, with one exception: eco gains self-loops on
//     events that both reach and are reached by e. All direct new
//     sb/sw edges point INTO e (it is the last event of its thread and
//     nothing reads from it yet), so hb stays closed after adding e's
//     column. Eco gains both in-edges (rf source, mo predecessors,
//     fr from reads with earlier sources) and out-edges (mo successors,
//     fr targets), but every direct in×out pair is already covered by a
//     direct mo or fr edge between the existing endpoints — except when
//     the two endpoints coincide, which is exactly the self-loop case.
//
// TestExtendMatchesBuild cross-checks every matrix against BuildRels on
// randomized exploration histories.
func (r *Rels) Extend(g *Graph, e *Event) *Rels {
	n := r.N
	ni := n // dense index of the new event
	nr := &Rels{G: g, N: n + 1, nInit: r.nInit}
	nr.Ev = append(r.Ev[:n:n], e)
	nr.tIdx = make([][]int32, len(r.tIdx))
	copy(nr.tIdx, r.tIdx)
	trow := r.tIdx[e.ID.Thread]
	nr.tIdx[e.ID.Thread] = append(trow[:len(trow):len(trow)], int32(ni))

	// All grown matrices come from one slab (one allocation, embedded
	// structs); the five working bit-vectors share one pooled scratch
	// strip (hbIn: direct sb ∪ sw edges u -> e; ecoIn/ecoOut: direct
	// rf ∪ mo ∪ fr edges into/out of e; ecoCol/ecoRow: the closure
	// update working sets).
	nr.allocMats(n + 1)
	r.Sb.grownInto(nr.Sb)
	r.SbLoc.grownInto(nr.SbLoc)
	r.RfM.grownInto(nr.RfM)
	r.MoM.grownInto(nr.MoM)
	r.FrM.grownInto(nr.FrM)

	words := nr.Sb.words
	scratch, hbIn, ecoIn, ecoOut, ecoCol, ecoRow := deltaScratch(words)

	// Cached topological order maintenance (see Rels.topo): while the
	// relation edges are added below, track the extreme positions the
	// new event's direct sb ∪ rf ∪ mo neighbors occupy in the parent's
	// order. When every in-neighbor sits before every out-neighbor, e
	// slots in between and the parent's order extends by a single
	// insertion; otherwise the order is re-derived (or the union was
	// already cyclic, which extension can never undo). fr edges are
	// deliberately not tracked — they are not part of the cached union.
	var posOf []int32
	maxIn, minOut := -1, n
	if r.topoState == topoValid {
		scratch.pos = int32Scratch(scratch.pos, n)
		posOf = scratch.pos
		for k, v := range r.topo {
			posOf[v] = int32(k)
		}
	}
	trackIn := func(u int) {
		if posOf != nil {
			if p := int(posOf[u]); p > maxIn {
				maxIn = p
			}
		}
	}
	trackOut := func(u int) {
		if posOf != nil {
			if p := int(posOf[u]); p < minOut {
				minOut = p
			}
		}
	}

	// sb / sb-loc: inits and po predecessors precede e.
	isAccess := e.Kind != KFence && e.Kind != KError
	for i := 0; i < r.nInit; i++ {
		nr.Sb.Set(i, ni)
		mark(hbIn, i)
		trackIn(i)
		if isAccess && r.Ev[i].Loc == e.Loc {
			nr.SbLoc.Set(i, ni)
		}
	}
	for _, p := range g.Threads[e.ID.Thread][:e.ID.Index] {
		pi := int(trow[p.ID.Index])
		nr.Sb.Set(pi, ni)
		mark(hbIn, pi)
		trackIn(pi)
		if isAccess && p.Kind != KFence && p.Kind != KError && p.Loc == e.Loc {
			nr.SbLoc.Set(pi, ni)
		}
	}

	// rf and fr contributed by e's read part.
	rf := g.rf[e.ID.Thread][e.ID.Index]
	if e.IsReadLike() && !rf.Bottom {
		wi := r.IndexOf(rf.W)
		nr.RfM.Set(wi, ni)
		mark(ecoIn, wi)
		trackIn(wi)
		order := g.Mo[e.Loc]
		src := -1
		for i, w := range order {
			if w == rf.W {
				src = i
				break
			}
		}
		for i := src + 1; src >= 0 && i < len(order); i++ {
			if order[i] == e.ID {
				continue // an update never fr-precedes itself
			}
			oi := r.IndexOf(order[i])
			nr.FrM.Set(ni, oi)
			mark(ecoOut, oi)
		}
	}

	// mo and incoming fr contributed by e's write part. A write-like
	// event absent from mo (a blocked update whose rf is still ⊥)
	// contributes nothing, exactly as in BuildRels.
	if e.IsWriteLike() {
		order := g.Mo[e.Loc]
		pos := -1
		for i, w := range order {
			if w == e.ID {
				pos = i
				break
			}
		}
		if pos < 0 {
			order = nil
		}
		for i := 0; i < pos; i++ {
			pi := r.IndexOf(order[i])
			nr.MoM.Set(pi, ni)
			mark(ecoIn, pi)
			trackIn(pi)
		}
		for i := pos + 1; i < len(order); i++ {
			si := r.IndexOf(order[i])
			nr.MoM.Set(ni, si)
			mark(ecoOut, si)
			trackOut(si)
		}
		// Every existing read whose source is mo-before e now also
		// from-reads e.
		for t, evs := range g.Threads {
			for i, re := range evs {
				if !re.IsReadLike() || re.Loc != e.Loc || re.ID == e.ID {
					continue
				}
				rrf := g.rf[t][i]
				if rrf.Bottom {
					continue
				}
				src := -1
				for k, w := range order {
					if w == rrf.W {
						src = k
						break
					}
				}
				if src >= 0 && src < pos {
					ri := r.IndexOf(re.ID)
					nr.FrM.Set(ri, ni)
					mark(ecoIn, ri)
				}
			}
		}
	}

	// sw: as the last event of its thread that nothing reads from yet,
	// e only ever RECEIVES synchronizes-with edges — as an acquire
	// read-like from the release sides of its rf source's release
	// sequence, or as an acquire fence on behalf of the po-earlier reads
	// of its thread. (Release sides of e affect only future events.)
	emit := func(s int) {
		if s != ni {
			mark(hbIn, s)
		}
	}
	if e.IsReadLike() && !rf.Bottom && e.Mode.HasAcq() {
		r.swFromBases(g, rf.W, emit)
	}
	if e.Kind == KFence && e.Mode.HasAcq() {
		for _, rd := range g.Threads[e.ID.Thread][:e.ID.Index] {
			if !rd.IsReadLike() {
				continue
			}
			rrf := g.rf[rd.ID.Thread][rd.ID.Index]
			if rrf.Bottom {
				continue
			}
			r.swFromBases(g, rrf.W, emit)
		}
	}

	// hb: every new edge points into e, so the old closure stays closed;
	// e's column is the direct predecessors plus everything hb-before
	// one of them.
	r.Hb.grownInto(nr.Hb)
	for v := 0; v < n; v++ {
		if marked(hbIn, v) || r.Hb.rowIntersects(v, hbIn) {
			nr.Hb.Set(v, ni)
		}
	}

	// eco: the column is everything that reaches a direct in-edge, the
	// row everything reachable from a direct out-edge, and the only new
	// edges between existing events are self-loops on events that both
	// reach and are reached by e.
	r.Eco.grownInto(nr.Eco)
	copy(ecoRow, ecoOut)
	for v := 0; v < n; v++ {
		if marked(ecoOut, v) {
			r.Eco.orRowInto(v, ecoRow)
		}
		if marked(ecoIn, v) || r.Eco.rowIntersects(v, ecoIn) {
			mark(ecoCol, v)
			nr.Eco.Set(v, ni)
		}
	}
	cyclic := false
	for v := 0; v < n; v++ {
		if marked(ecoRow, v) {
			nr.Eco.Set(ni, v)
			if marked(ecoCol, v) {
				nr.Eco.Set(v, v)
				cyclic = true
			}
		}
	}
	if cyclic {
		nr.Eco.Set(ni, ni)
	}

	// Cached topological order: e's only edges touch e itself, so the
	// parent's order stays valid for all existing vertices and only e
	// needs a position.
	switch {
	case r.topoState == topoCyclic:
		// Extension never removes edges, so a cyclic union stays cyclic.
		nr.topoState = topoCyclic
		acCyclicSt.Add(1)
	case r.topoState == topoValid && maxIn < minOut:
		// Every in-neighbor precedes every out-neighbor: slot e directly
		// before its earliest out-neighbor (or at the end). Inserting
		// into the position→vertex slice shifts the later positions by
		// one without touching any value, preserving validity.
		nr.topo = make([]int32, n+1)
		copy(nr.topo, r.topo[:minOut])
		nr.topo[minOut] = int32(ni)
		copy(nr.topo[minOut+1:], r.topo[minOut:])
		nr.topoState = topoValid
		acExtends.Add(1)
	default:
		// A back edge (some out-neighbor placed before an in-neighbor)
		// or an underived parent: leave the child at topoNone, so the
		// re-derivation happens lazily — only if this state survives to
		// a check that wants the order (ensureTopo).
	}
	acyclicPool.Put(scratch)

	return nr
}

// Resolve computes the relations of g incrementally, where g was
// derived from the graph r describes by resolving the formerly-⊥ read
// e: same events, same sb/mo, but e — the last event of its thread —
// now reads from a real write (updates resolved read-only, so mo is
// untouched). This is the hot path of the await-termination
// resolvability scan (core.resolvable), which builds one such graph
// per candidate write and asks only for a consistency verdict.
//
// Soundness mirrors Extend: every new edge touches e. e gains rf/sw
// in-edges and fr out-edges; as the last event of its thread it has no
// sb successors, so its hb row stays empty and the old hb closure
// remains closed once e's column absorbs the direct predecessors and
// their hb-ancestors. Eco gains e's column (everything reaching the rf
// source), e's row (everything reachable from the fr targets), and —
// exactly as in Extend — the only new edges between existing events
// are self-loops on events that both reach and are reached by e.
func (r *Rels) Resolve(g *Graph, e *Event) *Rels {
	n := r.N
	ei := r.IndexOf(e.ID)
	nr := &Rels{G: g, N: n, nInit: r.nInit, tIdx: r.tIdx}
	// e was re-created with its new RVal/Degraded state: swap the node.
	nr.Ev = make([]*Event, n)
	copy(nr.Ev, r.Ev)
	nr.Ev[ei] = e

	nr.allocMats(n)
	copy(nr.Sb.bits, r.Sb.bits)
	copy(nr.SbLoc.bits, r.SbLoc.bits)
	copy(nr.RfM.bits, r.RfM.bits)
	copy(nr.MoM.bits, r.MoM.bits)
	copy(nr.FrM.bits, r.FrM.bits)
	copy(nr.Hb.bits, r.Hb.bits)
	copy(nr.Eco.bits, r.Eco.bits)

	scratch, hbIn, ecoIn, ecoOut, ecoCol, rowVec := deltaScratch(nr.Sb.words)

	rf := g.rf[e.ID.Thread][e.ID.Index]
	wi := r.IndexOf(rf.W)
	nr.RfM.Set(wi, ei)
	mark(ecoIn, wi)

	// fr: e now from-reads every write mo-after its source. e itself is
	// not in mo (it resolved read-only), so there are no incoming fr.
	order := g.Mo[e.Loc]
	src := -1
	for i, w := range order {
		if w == rf.W {
			src = i
			break
		}
	}
	for i := src + 1; src >= 0 && i < len(order); i++ {
		oi := r.IndexOf(order[i])
		nr.FrM.Set(ei, oi)
		mark(ecoOut, oi)
	}

	// sw: e can only RECEIVE synchronization (it writes nothing and has
	// no po successors, so there are no acquire fences after it).
	if e.Mode.HasAcq() {
		r.swFromBases(g, rf.W, func(s int) {
			if s != ei {
				mark(hbIn, s)
			}
		})
	}

	// hb: e's row is empty (no sb successors), so the closure stays
	// closed once e's column absorbs the direct predecessors and their
	// hb-ancestors.
	for v := 0; v < n; v++ {
		if v != ei && (marked(hbIn, v) || r.Hb.rowIntersects(v, hbIn)) {
			nr.Hb.Set(v, ei)
		}
	}

	// eco: same column/row/self-loop update as Extend. e had no eco
	// edges before (its rf was ⊥ and it holds no mo position), so the
	// update is purely additive and e can never appear in its own
	// column or row vectors.
	copy(rowVec, ecoOut)
	for v := 0; v < n; v++ {
		if marked(ecoOut, v) {
			r.Eco.orRowInto(v, rowVec)
		}
		if marked(ecoIn, v) || r.Eco.rowIntersects(v, ecoIn) {
			mark(ecoCol, v)
			nr.Eco.Set(v, ei)
		}
	}
	cyclic := false
	for v := 0; v < n; v++ {
		if marked(rowVec, v) {
			nr.Eco.Set(ei, v)
			if marked(ecoCol, v) {
				nr.Eco.Set(v, v)
				cyclic = true
			}
		}
	}
	if cyclic {
		nr.Eco.Set(ei, ei)
	}

	// Cached topological order: the only new union edge is rf (w → e),
	// and both endpoints already have positions. When the parent's
	// order happens to place w before e, it is still valid for the
	// resolved graph; otherwise leave the order for lazy re-derivation.
	switch {
	case r.topoState == topoCyclic:
		nr.topoState = topoCyclic
		acCyclicSt.Add(1)
	case r.topoState == topoValid:
		wPos, ePos := -1, -1
		for k, v := range r.topo {
			switch int(v) {
			case wi:
				wPos = k
			case ei:
				ePos = k
			}
		}
		if wPos < ePos {
			nr.topo = make([]int32, n)
			copy(nr.topo, r.topo)
			nr.topoState = topoValid
			acExtends.Add(1)
		}
	}

	acyclicPool.Put(scratch)
	return nr
}

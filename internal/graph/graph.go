package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// RF records the reads-from choice of a read-like event. Bottom
// represents the paper's missing rf-edge (⊥ --rf--> r), the marker AMC
// uses to track potential await-termination violations.
type RF struct {
	W      EventID
	Bottom bool
}

// BottomRF is the missing-rf choice.
var BottomRF = RF{Bottom: true}

// FromW wraps a write id as an RF choice.
func FromW(w EventID) RF { return RF{W: w} }

// noRF is the sentinel filling the rf slots of non-read-like events
// (and of read-like events between Append and SetRF). It never equals
// a real choice: NoEvent identifies no event and Bottom is false.
var noRF = RF{W: NoEvent}

// Graph is an execution graph under construction or completed. Graphs
// are value-ish: Clone produces an independent graph sharing immutable
// Event nodes. The zero Graph is not usable; call New.
type Graph struct {
	// Threads holds each thread's events in program order.
	Threads [][]*Event
	// InitVals holds the initial value of each allocated location; the
	// init write for location l is implicit with id {InitThread, l}.
	InitVals []Val
	// LocNames holds rendering names for locations.
	LocNames []string

	// rf holds, per thread, the reads-from choice of each event,
	// indexed in parallel with Threads. Entries of read-like events are
	// set via SetRF (possibly Bottom); all other entries hold the noRF
	// sentinel. Stored as slices rather than the historical
	// map[EventID]RF because exploration clones once per branch and
	// looks an rf up once per read per replay: rows follow the same
	// capacity-clamped copy-on-write discipline as Threads, making a
	// clone O(threads) slice headers and a lookup two array indexes.
	rf [][]RF
	// rfOwned tracks (bit per thread, threads ≥ 64 always unowned)
	// which rf rows are backed by arrays private to this graph: Append
	// always privatizes a row (clamped capacities force reallocation),
	// and SetRF copies-on-write before mutating a shared one.
	rfOwned uint64

	// Mo holds, per location, the modification order of write-like
	// events. Index 0 is always the implicit init write.
	Mo [][]EventID

	// NextStamp is the next addition timestamp.
	NextStamp int

	// initEvs holds the synthesized init write events (stamp 0, one per
	// location), built once in New and shared by all clones.
	initEvs []*Event

	// rels memoizes the derived relations of the current graph state
	// (see RelsOf); every mutation invalidates it. extParent/extEvent
	// record that this graph was derived from extParent by either
	// appending exactly extEvent (extKind == extAppend, plus its rf/mo
	// bookkeeping) or resolving the formerly-⊥ trailing read extEvent
	// (extKind == extResolve), which lets RelsOf derive the relations
	// incrementally from the parent instead of rebuilding from scratch.
	rels      *Rels
	extParent *Graph
	extEvent  *Event
	extKind   uint8
}

// Extension-hint kinds (see RelsOf).
const (
	extNone uint8 = iota
	extAppend
	extResolve
)

// invalidate drops the memoized relations and the extension hint; every
// mutating method calls it, so a stale hint can never describe a graph
// that was mutated after NoteExtended.
func (g *Graph) invalidate() {
	g.rels = nil
	g.extParent, g.extEvent = nil, nil
	g.extKind = extNone
}

// NoteExtended records that g was derived from parent by appending
// exactly event e (with its rf choice and mo insertion already
// applied). RelsOf uses the hint to extend parent's relations with one
// row/column instead of re-deriving everything. Call it after the last
// mutation; any further mutation clears the hint.
func (g *Graph) NoteExtended(parent *Graph, e *Event) {
	g.extParent, g.extEvent, g.extKind = parent, e, extAppend
}

// NoteResolved records that g was derived from parent by resolving the
// formerly-⊥ read e (the last event of its thread, replaced and given
// a real rf source; updates resolved read-only). RelsOf uses the hint
// to patch the parent's relations with e's new edges instead of
// rebuilding — the hot path of the await-termination resolvability
// scan, which tries one such resolution per candidate write.
func (g *Graph) NoteResolved(parent *Graph, e *Event) {
	g.extParent, g.extEvent, g.extKind = parent, e, extResolve
}

// New returns an empty graph for nthreads threads and the given
// locations (initial values and names, parallel slices).
func New(nthreads int, initVals []Val, locNames []string) *Graph {
	g := &Graph{
		Threads:   make([][]*Event, nthreads),
		InitVals:  append([]Val(nil), initVals...),
		LocNames:  append([]string(nil), locNames...),
		rf:        make([][]RF, nthreads),
		Mo:        make([][]EventID, len(initVals)),
		NextStamp: 1,
	}
	g.initEvs = make([]*Event, len(initVals))
	for l := range g.Mo {
		g.Mo[l] = []EventID{{Thread: InitThread, Index: l}}
		g.initEvs[l] = &Event{
			ID:       EventID{Thread: InitThread, Index: l},
			Kind:     KWrite,
			Mode:     Rlx,
			Loc:      Loc(l),
			Val:      initVals[l],
			AwaitSeq: -1,
		}
	}
	return g
}

// Clone returns an independent copy of g. Event nodes are shared (they
// are immutable once added), and so are the per-thread event slices and
// per-location mo orders: the clone holds capacity-clamped views
// (s[:len:len]) of the parent's backing arrays, so any append on either
// side reallocates instead of writing into shared memory. The only
// in-place mutations of slice prefixes go through InsertMo,
// ReplaceEvent and RestrictTo, which always build fresh slices. This
// makes Clone O(threads + locations) instead of O(events), which
// matters because exploration clones once per branch.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Threads:   make([][]*Event, len(g.Threads)),
		InitVals:  g.InitVals,
		LocNames:  g.LocNames,
		rf:        make([][]RF, len(g.rf)),
		Mo:        make([][]EventID, len(g.Mo)),
		NextStamp: g.NextStamp,
		initEvs:   g.initEvs,
	}
	for t, evs := range g.Threads {
		ng.Threads[t] = evs[:len(evs):len(evs)]
	}
	for t, row := range g.rf {
		ng.rf[t] = row[:len(row):len(row)]
	}
	// Both sides now alias every rf row: the clone starts unowned (zero
	// value), and the parent's claims are void too — an in-place SetRF
	// on either would leak into the other.
	g.rfOwned = 0
	for l, order := range g.Mo {
		ng.Mo[l] = order[:len(order):len(order)]
	}
	return ng
}

// NumEvents returns the number of explicit (non-init) events.
func (g *Graph) NumEvents() int {
	n := 0
	for _, evs := range g.Threads {
		n += len(evs)
	}
	return n
}

// Event returns the event with the given id, or nil if absent. Init ids
// return the graph's synthesized init write event (shared across clones
// — init events are immutable like all others).
func (g *Graph) Event(id EventID) *Event {
	if id.IsInit() {
		if id.Index < 0 || id.Index >= len(g.InitVals) {
			return nil
		}
		return g.initEvs[id.Index]
	}
	if id.Thread < 0 || id.Thread >= len(g.Threads) {
		return nil
	}
	evs := g.Threads[id.Thread]
	if id.Index < 0 || id.Index >= len(evs) {
		return nil
	}
	return evs[id.Index]
}

// Has reports whether id denotes an event present in the graph.
func (g *Graph) Has(id EventID) bool {
	if id.IsInit() {
		return id.Index >= 0 && id.Index < len(g.InitVals)
	}
	return id.Thread >= 0 && id.Thread < len(g.Threads) && id.Index >= 0 && id.Index < len(g.Threads[id.Thread])
}

// WriteVal returns the value written by the write-like event id.
func (g *Graph) WriteVal(id EventID) Val {
	e := g.Event(id)
	if e == nil {
		panic(fmt.Sprintf("graph: WriteVal of missing event %v", id))
	}
	return e.Val
}

// Append adds e as the next event of its thread, assigning its stamp.
// The caller must have set e.ID to {thread, len(Threads[thread])}.
func (g *Graph) Append(e *Event) {
	t := e.ID.Thread
	if e.ID.Index != len(g.Threads[t]) {
		panic(fmt.Sprintf("graph: append out of order: %v at len %d", e.ID, len(g.Threads[t])))
	}
	e.Stamp = g.NextStamp
	g.NextStamp++
	g.Threads[t] = append(g.Threads[t], e)
	// A full row reallocates on append (clones clamp capacities), which
	// privatizes it: the graph may then SetRF in place. An append into
	// existing slack leaves the shared prefix aliased, so the ownership
	// state must not change.
	if realloc := cap(g.rf[t]) == len(g.rf[t]); realloc && t < 64 {
		g.rf[t] = append(g.rf[t], noRF)
		g.rfOwned |= 1 << uint(t)
	} else {
		g.rf[t] = append(g.rf[t], noRF)
	}
	g.invalidate()
}

// RfOf returns the reads-from choice of the read-like event r. It is
// only meaningful for read-like events present in the graph (every one
// has a choice set the moment it is added; asking for anything else
// returns the internal "no entry" sentinel).
func (g *Graph) RfOf(r EventID) RF { return g.rf[r.Thread][r.Index] }

// SetRF records the reads-from choice for a read-like event. The row
// is copied first unless this graph already owns its backing array
// (clones share rows, and a revisit resolution rewrites the rf of an
// existing event — that write must not leak into siblings).
func (g *Graph) SetRF(r EventID, rf RF) {
	t := r.Thread
	if t >= 64 || g.rfOwned&(1<<uint(t)) == 0 {
		row := make([]RF, len(g.rf[t]))
		copy(row, g.rf[t])
		g.rf[t] = row
		if t < 64 {
			g.rfOwned |= 1 << uint(t)
		}
	}
	g.rf[t][r.Index] = rf
	g.invalidate()
}

// ReplaceEvent swaps the event at id for e. It always copies the
// thread's event slice first: clones share slice backing arrays
// (see Clone), so an in-place element write would leak into siblings.
func (g *Graph) ReplaceEvent(id EventID, e *Event) {
	evs := g.Threads[id.Thread]
	nevs := make([]*Event, len(evs))
	copy(nevs, evs)
	nevs[id.Index] = e
	g.Threads[id.Thread] = nevs
	g.invalidate()
}

// InsertMo inserts the write-like event id into the modification order
// of loc at position pos (1 <= pos <= len, position 0 is the init write).
// It builds a fresh order slice: clones share mo backing arrays (see
// Clone), so the shift must not happen in place.
func (g *Graph) InsertMo(loc Loc, id EventID, pos int) {
	order := g.Mo[loc]
	if pos < 1 || pos > len(order) {
		panic(fmt.Sprintf("graph: mo position %d out of range [1,%d]", pos, len(order)))
	}
	norder := make([]EventID, len(order)+1)
	copy(norder, order[:pos])
	norder[pos] = id
	copy(norder[pos+1:], order[pos:])
	g.Mo[loc] = norder
	g.invalidate()
}

// MoIndex returns the position of id in the modification order of loc,
// or -1 if absent.
func (g *Graph) MoIndex(loc Loc, id EventID) int {
	for i, w := range g.Mo[loc] {
		if w == id {
			return i
		}
	}
	return -1
}

// MoMax returns the mo-maximal write to loc.
func (g *Graph) MoMax(loc Loc) EventID {
	order := g.Mo[loc]
	return order[len(order)-1]
}

// FinalVal returns the final (mo-maximal) value of loc.
func (g *Graph) FinalVal(loc Loc) Val { return g.WriteVal(g.MoMax(loc)) }

// ReadsOf returns the ids of all read-like events on loc, across all
// threads, in (thread, index) order.
func (g *Graph) ReadsOf(loc Loc) []EventID {
	var out []EventID
	for _, evs := range g.Threads {
		for _, e := range evs {
			if e.IsReadLike() && e.Loc == loc {
				out = append(out, e.ID)
			}
		}
	}
	return out
}

// BottomReads returns the read-like events whose rf choice is Bottom.
func (g *Graph) BottomReads() []EventID {
	var out []EventID
	for t, evs := range g.Threads {
		for i, e := range evs {
			if e.IsReadLike() && g.rf[t][i].Bottom {
				out = append(out, e.ID)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Thread != out[j].Thread {
			return out[i].Thread < out[j].Thread
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// porfStackPool recycles the DFS stacks of PorfPrefix.
var porfStackPool = sync.Pool{New: func() any { return new([]*Event) }}

// PorfPrefix returns the set of events that are (po ∪ rf)-ancestors
// of the events in seeds, including the seeds themselves. Init events
// are not included. The result is a stamp-indexed bitset (one word per
// 64 events) rather than a map, and it is pool-backed: revisit
// generation builds one of these per fresh write on the exploration
// hot path, and may Release it when done (callers that don't simply
// leave it to the garbage collector).
func (g *Graph) PorfPrefix(seeds ...EventID) *EventSet {
	seen := NewEventSetPooled(g.NextStamp)
	sp := porfStackPool.Get().(*[]*Event)
	stack := (*sp)[:0]
	push := func(id EventID) {
		if id.IsInit() {
			return
		}
		e := g.Event(id)
		if e == nil || seen.Has(e) {
			return
		}
		seen.Add(e)
		stack = append(stack, e)
	}
	for _, s := range seeds {
		push(s)
	}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// po predecessors: it suffices to push the immediate one.
		if e.ID.Index > 0 {
			push(EventID{Thread: e.ID.Thread, Index: e.ID.Index - 1})
		}
		// rf source, if a read-like event.
		if e.IsReadLike() {
			if rf := g.rf[e.ID.Thread][e.ID.Index]; !rf.Bottom {
				push(rf.W)
			}
		}
	}
	*sp = stack[:0]
	porfStackPool.Put(sp)
	return seen
}

// RestrictTo removes every explicit event not in keep, preserving
// per-thread po prefixes. keep must be po-prefix-closed per thread (the
// caller guarantees this; RestrictTo panics otherwise) and rf-closed
// except for reads that are themselves dropped. The truncated thread
// slices are capacity-clamped and the mo orders rebuilt fresh, so the
// restriction never writes into arrays shared with clones.
func (g *Graph) RestrictTo(keep *EventSet) {
	// Filter mo first: the stamp lookup needs the events still present.
	for l, order := range g.Mo {
		dst := make([]EventID, 1, len(order))
		dst[0] = order[0] // init stays
		for _, w := range order[1:] {
			if keep.Has(g.Event(w)) {
				dst = append(dst, w)
			}
		}
		g.Mo[l] = dst
	}
	for t, evs := range g.Threads {
		cut := len(evs)
		for i, e := range evs {
			if !keep.Has(e) {
				cut = i
				break
			}
		}
		for i := cut; i < len(evs); i++ {
			if keep.Has(evs[i]) {
				panic("graph: RestrictTo keep-set not po-prefix-closed")
			}
		}
		g.Threads[t] = evs[:cut:cut]
		// The dropped events' rf entries go with them; the kept prefix
		// stays aliased, so ownership claims do not change.
		g.rf[t] = g.rf[t][:cut:cut]
	}
	g.invalidate()
}

// Fingerprint returns a canonical string identifying the graph up to
// exploration-irrelevant details (stamps). Two graphs with equal
// fingerprints generate identical futures, so the explorer uses it to
// deduplicate work.
func (g *Graph) Fingerprint() string {
	var b strings.Builder
	for t, evs := range g.Threads {
		fmt.Fprintf(&b, "|T%d:", t)
		for i, e := range evs {
			fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%t;", e.Kind, e.Mode, e.Loc, e.Val, e.RVal, e.Degraded)
			if e.IsReadLike() {
				rf := g.rf[t][i]
				if rf.Bottom {
					b.WriteString("rf=⊥;")
				} else {
					fmt.Fprintf(&b, "rf=%d.%d;", rf.W.Thread, rf.W.Index)
				}
			}
		}
	}
	for l, order := range g.Mo {
		fmt.Fprintf(&b, "|mo%d:", l)
		for _, w := range order {
			fmt.Fprintf(&b, "%d.%d,", w.Thread, w.Index)
		}
	}
	return b.String()
}

// CheckInvariants verifies structural well-formedness: rf entries exist
// for exactly the read-like events and point to same-location write-like
// events present in the graph; mo contains exactly the write-like
// events per location, each once, with init first. It returns an error
// describing the first violation found, or nil.
//
// This is an internal audit used by tests (including property-based
// tests); exploration relies on these invariants holding at every step.
func (g *Graph) CheckInvariants() error {
	for t, evs := range g.Threads {
		if len(g.rf[t]) != len(evs) {
			return fmt.Errorf("thread %d: rf row has %d entries, %d events", t, len(g.rf[t]), len(evs))
		}
		for i, e := range evs {
			if e.ID.Index != i {
				return fmt.Errorf("event %v stored at index %d", e.ID, i)
			}
			if !e.IsReadLike() {
				if g.rf[t][i] != noRF {
					return fmt.Errorf("non-read %v carries an rf entry", e.ID)
				}
			} else {
				rf := g.rf[t][i]
				if rf == noRF {
					return fmt.Errorf("read %v has no rf entry", e.ID)
				}
				if !rf.Bottom {
					w := g.Event(rf.W)
					if w == nil {
						return fmt.Errorf("read %v rf-source %v missing", e.ID, rf.W)
					}
					if !w.IsWriteLike() {
						return fmt.Errorf("read %v reads from non-write %v", e.ID, rf.W)
					}
					if w.Loc != e.Loc {
						return fmt.Errorf("read %v (loc%d) reads from %v (loc%d)", e.ID, e.Loc, rf.W, w.Loc)
					}
					if w.Val != e.RVal {
						return fmt.Errorf("read %v observed %d but source %v wrote %d", e.ID, e.RVal, rf.W, w.Val)
					}
				}
			}
			if e.IsWriteLike() {
				if g.MoIndex(e.Loc, e.ID) < 0 {
					return fmt.Errorf("write %v absent from mo of loc%d", e.ID, e.Loc)
				}
			}
		}
	}
	for l, order := range g.Mo {
		if len(order) == 0 || !order[0].IsInit() || order[0].Index != l {
			return fmt.Errorf("mo of loc%d does not start with its init write", l)
		}
		seen := map[EventID]bool{}
		for _, w := range order {
			if seen[w] {
				return fmt.Errorf("mo of loc%d lists %v twice", l, w)
			}
			seen[w] = true
			e := g.Event(w)
			if e == nil {
				return fmt.Errorf("mo of loc%d lists missing event %v", l, w)
			}
			if !w.IsInit() && (!e.IsWriteLike() || e.Loc != Loc(l)) {
				return fmt.Errorf("mo of loc%d lists unsuitable event %v", l, w)
			}
		}
	}
	return nil
}

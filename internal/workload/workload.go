// Package workload is the structure-agnostic client/spec seam between
// concurrent algorithms and the AMC checker: a Workload names one
// family of verification programs (a lock's generic client, a Treiber
// stack, a Michael–Scott queue, ...) and knows, for any thread count in
// its supported range, how to build the thread bodies plus the
// final-state spec that judges the recorded operation outcomes.
//
// The seam exists so that mutual exclusion stops being special-cased:
// internal/harness's lock clients are one Workload family (see Mutex,
// RW, Recursive — locks.Algorithm adapted onto this interface), and
// nonblocking structures (internal/structs) are another, yet both flow
// through the same program builder, the same candidate symmetry
// declaration, the same verdict-store keys and the same suite/bench
// plumbing. Adding a structure means implementing Workload and
// registering it; the verification matrix, vsynccheck -workload,
// vsyncsuite and the benchmark ladder pick it up from the registry.
//
// Programs built here must obey vprog's Bounded-Length and
// Bounded-Effect principles: in particular, the CAS retry loops of
// nonblocking structures are bounded plain loops (each failed CAS
// implies another thread's successful one, so the retry count is
// bounded by the total writes others can perform), never AwaitWhile —
// a failed CAS attempt re-stores link words, which an await iteration
// is not allowed to do.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/vprog"
)

// Ops is what a Workload builds for one program instance: the thread
// bodies and the final-state spec judging the outcomes the threads
// recorded into shared memory.
type Ops struct {
	Threads []vprog.ThreadFunc
	Final   vprog.FinalCheck
}

// Workload is one named family of verification programs over a thread
// count. Implementations must be immutable after construction: every
// method may be called concurrently, and New must be deterministic (the
// checker replays builds against execution graphs, and the program
// fingerprint witnesses one sequential execution).
type Workload interface {
	// Name is the registry identifier ("structs/treiber", "mutex/mcs").
	Name() string
	// Doc is the one-line description -list prints.
	Doc() string
	// Buggy marks a seeded-bug study variant: expected to fail
	// verification, excluded from the default suite corpus.
	Buggy() bool
	// Threads is the supported client thread range; hi == 0 means
	// unbounded above.
	Threads() (lo, hi int)
	// DefaultSpec returns the workload's default barrier assignment —
	// the per-structure fence placement its programs are verified
	// under. The spec's fingerprint is half of the verdict-store key.
	DefaultSpec() *vprog.BarrierSpec
	// SymGroups declares the candidate permutation-symmetric thread
	// groups at nthreads (interchangeable producers, consumers,
	// readers...). The declaration is only a candidate: vprog validates
	// it against the built program (Program.SymSpec) and drops groups
	// the structure disagrees with, so a wrong declaration degrades to
	// an unreduced run rather than an unsound one.
	SymGroups(nthreads int) [][]int
	// ProgramName is the reporting label of the built program at
	// nthreads (it is not part of the program fingerprint).
	ProgramName(nthreads int) string
	// New builds the thread bodies and final-state spec against env
	// under the given barrier assignment.
	New(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Ops
}

// Group declares threads lo..hi-1 as one candidate symmetric group,
// returning nil when the range has fewer than two members (a singleton
// group reduces nothing). This is the one shared declaration helper —
// the per-client copies internal/harness used to carry live here now.
func Group(lo, hi int) [][]int {
	if hi-lo < 2 {
		return nil
	}
	grp := make([]int, 0, hi-lo)
	for t := lo; t < hi; t++ {
		grp = append(grp, t)
	}
	return [][]int{grp}
}

// Program instantiates w at nthreads under spec (nil selects
// w.DefaultSpec) as a checkable vprog.Program. It panics when nthreads
// is outside the workload's supported range — a programming error at
// the call site, not a run-time condition.
func Program(w Workload, spec *vprog.BarrierSpec, nthreads int) *vprog.Program {
	lo, hi := w.Threads()
	if nthreads < lo || (hi > 0 && nthreads > hi) {
		panic(fmt.Sprintf("workload: %s does not support %d threads (range %d..%d)", w.Name(), nthreads, lo, hi))
	}
	if spec == nil {
		spec = w.DefaultSpec()
	}
	return &vprog.Program{
		Name:      w.ProgramName(nthreads),
		SymGroups: w.SymGroups(nthreads),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			ops := w.New(env, spec, nthreads)
			return ops.Threads, ops.Final
		},
	}
}

// registry holds the named workloads. Registration happens in package
// init functions (internal/structs registers its structures); lookups
// after init need no locking, and tests that register extras are
// single-goroutine.
var registry = map[string]Workload{}

// Register adds w to the registry, panicking on an empty or duplicate
// name — both are programming errors worth failing loudly at init.
func Register(w Workload) {
	name := w.Name()
	if name == "" {
		panic("workload: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic("workload: duplicate registration of " + name)
	}
	registry[name] = w
}

// ByName returns the registered workload, or nil.
func ByName(name string) Workload { return registry[name] }

// All returns every registered workload sorted by name — the stable
// order -list and the suite corpus rely on.
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Verifiable returns every registered non-buggy workload sorted by
// name: the default structure corpus of the verification matrix.
func Verifiable() []Workload {
	var out []Workload
	for _, w := range All() {
		if !w.Buggy() {
			out = append(out, w)
		}
	}
	return out
}

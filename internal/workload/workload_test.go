package workload_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/vprog"
	"repro/internal/workload"
)

// fakeWorkload is a minimal two-variable workload for exercising the
// seam itself: builder dispatch, range enforcement, spec defaulting and
// the registry.
type fakeWorkload struct {
	name   string
	buggy  bool
	lo, hi int
}

func (w *fakeWorkload) Name() string        { return w.name }
func (w *fakeWorkload) Doc() string         { return "fake workload for seam tests" }
func (w *fakeWorkload) Buggy() bool         { return w.buggy }
func (w *fakeWorkload) Threads() (int, int) { return w.lo, w.hi }
func (w *fakeWorkload) DefaultSpec() *vprog.BarrierSpec {
	return vprog.NewSpec().Def("fake.store", vprog.Rel)
}
func (w *fakeWorkload) SymGroups(nthreads int) [][]int  { return workload.Group(0, nthreads) }
func (w *fakeWorkload) ProgramName(nthreads int) string { return w.name }

func (w *fakeWorkload) New(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) workload.Ops {
	x := env.Var("fake.x", 0)
	worker := func(m vprog.Mem) { m.Store(x, 1, spec.M("fake.store")) }
	threads := make([]vprog.ThreadFunc, nthreads)
	for t := range threads {
		threads[t] = worker
	}
	return workload.Ops{Threads: threads, Final: func(load func(*vprog.Var) uint64) (bool, string) {
		return load(x) == 1, "lost store"
	}}
}

// TestGroup: the hoisted declaration helper — singletons and empty
// ranges declare nothing, real ranges declare the contiguous group.
func TestGroup(t *testing.T) {
	if g := workload.Group(0, 0); g != nil {
		t.Errorf("Group(0,0) = %v, want nil", g)
	}
	if g := workload.Group(3, 4); g != nil {
		t.Errorf("Group(3,4) = %v, want nil (singleton)", g)
	}
	if g := workload.Group(0, 3); !reflect.DeepEqual(g, [][]int{{0, 1, 2}}) {
		t.Errorf("Group(0,3) = %v, want [[0 1 2]]", g)
	}
	if g := workload.Group(2, 5); !reflect.DeepEqual(g, [][]int{{2, 3, 4}}) {
		t.Errorf("Group(2,5) = %v, want [[2 3 4]]", g)
	}
}

// TestProgramBuilder: the built program carries the workload's label
// and symmetry declaration, a nil spec selects DefaultSpec, and the
// program is actually buildable.
func TestProgramBuilder(t *testing.T) {
	w := &fakeWorkload{name: "test/fake-builder", lo: 1, hi: 4}
	p := workload.Program(w, nil, 3)
	if p.Name != "test/fake-builder" {
		t.Errorf("program name = %q", p.Name)
	}
	if !reflect.DeepEqual(p.SymGroups, [][]int{{0, 1, 2}}) {
		t.Errorf("program symmetry groups = %v", p.SymGroups)
	}
	// Fingerprinting forces a sequential build-and-run; a broken spec
	// default or thread wiring would panic here.
	if p.Fingerprint128() == (workload.Program(w, nil, 2).Fingerprint128()) {
		t.Error("programs at different thread counts share a fingerprint")
	}
}

// TestProgramRange: out-of-range thread counts are call-site bugs and
// must panic, including above a bounded range; hi == 0 is unbounded.
func TestProgramRange(t *testing.T) {
	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", what)
			}
		}()
		f()
	}
	bounded := &fakeWorkload{name: "test/fake-bounded", lo: 2, hi: 3}
	mustPanic("below range", func() { workload.Program(bounded, nil, 1) })
	mustPanic("above range", func() { workload.Program(bounded, nil, 4) })
	workload.Program(bounded, nil, 3) // in range: must not panic

	unbounded := &fakeWorkload{name: "test/fake-unbounded", lo: 1, hi: 0}
	workload.Program(unbounded, nil, 9) // hi == 0: any count above lo
	mustPanic("below unbounded lo", func() { workload.Program(unbounded, nil, 0) })
}

// TestRegistry: registration, lookup, stable ordering, the Buggy
// filter, and the duplicate/empty-name panics.
func TestRegistry(t *testing.T) {
	a := &fakeWorkload{name: "test/zz-reg-b", lo: 1}
	b := &fakeWorkload{name: "test/zz-reg-a", lo: 1}
	bug := &fakeWorkload{name: "test/zz-reg-bug", lo: 1, buggy: true}
	workload.Register(a)
	workload.Register(b)
	workload.Register(bug)

	if workload.ByName("test/zz-reg-a") != b {
		t.Error("ByName missed a registered workload")
	}
	if workload.ByName("test/zz-reg-nope") != nil {
		t.Error("ByName invented a workload")
	}

	var names []string
	for _, w := range workload.All() {
		names = append(names, w.Name())
	}
	if !sort_ok(names) {
		t.Errorf("All() is not sorted: %v", names)
	}
	has := func(list []workload.Workload, name string) bool {
		for _, w := range list {
			if w.Name() == name {
				return true
			}
		}
		return false
	}
	if !has(workload.All(), "test/zz-reg-bug") {
		t.Error("All() dropped a buggy workload")
	}
	if has(workload.Verifiable(), "test/zz-reg-bug") {
		t.Error("Verifiable() kept a buggy workload")
	}
	if !has(workload.Verifiable(), "test/zz-reg-a") {
		t.Error("Verifiable() dropped a sound workload")
	}

	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", what)
			}
		}()
		f()
	}
	mustPanic("duplicate name", func() { workload.Register(&fakeWorkload{name: "test/zz-reg-a", lo: 1}) })
	mustPanic("empty name", func() { workload.Register(&fakeWorkload{lo: 1}) })
}

func sort_ok(names []string) bool {
	for i := 1; i < len(names); i++ {
		if strings.Compare(names[i-1], names[i]) > 0 {
			return false
		}
	}
	return true
}

package workload

import "embed"

// sources embeds this package's own sources so internal/srcid can fold
// them into the code-identity epoch: the workload layer shapes every
// program the checker judges, so editing it must orphan stored
// verdicts. The *.go glob deliberately over-includes _test.go files
// (srcid filters them out of the hash); an explicit list could silently
// omit a newly added source file, which would be unsound.
//
//go:embed *.go
var sources embed.FS

// SourceFiles exposes the embedded sources to internal/srcid.
func SourceFiles() embed.FS { return sources }

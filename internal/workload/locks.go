package workload

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/vprog"
)

// This file adapts locks.Algorithm onto the Workload seam: the generic
// mutex, reader-writer and recursive clients that used to be built
// directly in internal/harness are one workload family here, and the
// harness builders are thin veneers over these adapters. The adapted
// programs are structurally identical to the pre-refactor clients —
// same variable names and allocation order, same operation sequences,
// same final-check messages, same candidate symmetry groups — so their
// Program.Fingerprint128 keys are byte-identical and the pooled
// verdict corpus stays warm across the refactor (pinned by the
// differential test in internal/harness).

// lockGroup is Group gated on the algorithm's audited Symmetric flag:
// an algorithm not audited symmetric declares no candidate groups at
// all (matching the old harness symGroup helper).
func lockGroup(alg *locks.Algorithm, lo, hi int) [][]int {
	if !alg.Symmetric {
		return nil
	}
	return Group(lo, hi)
}

// mutexWorkload is the paper's generic client (§1.2) on the workload
// seam: every thread performs iters critical sections incrementing a
// shared counter with plain (relaxed) accesses; the spec demands no
// update was lost.
type mutexWorkload struct {
	alg   *locks.Algorithm
	iters int
}

// Mutex adapts alg's generic mutual-exclusion client as a Workload;
// iters is the critical sections per thread.
func Mutex(alg *locks.Algorithm, iters int) Workload { return &mutexWorkload{alg, iters} }

func (w *mutexWorkload) Name() string                    { return "mutex/" + w.alg.Name }
func (w *mutexWorkload) Doc() string                     { return w.alg.Doc }
func (w *mutexWorkload) Buggy() bool                     { return w.alg.Buggy }
func (w *mutexWorkload) Threads() (int, int)             { return 1, 0 }
func (w *mutexWorkload) DefaultSpec() *vprog.BarrierSpec { return w.alg.DefaultSpec() }
func (w *mutexWorkload) SymGroups(nthreads int) [][]int  { return lockGroup(w.alg, 0, nthreads) }
func (w *mutexWorkload) ProgramName(nthreads int) string {
	return fmt.Sprintf("client/mutex/%s/t%d-i%d", w.alg.Name, nthreads, w.iters)
}

func (w *mutexWorkload) New(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Ops {
	lk := w.alg.New(env, spec, nthreads)
	x := env.Var("cs.counter", 0)
	iters := w.iters
	worker := func(m vprog.Mem) {
		for i := 0; i < iters; i++ {
			tok := lk.Acquire(m)
			v := m.Load(x, vprog.Rlx)
			m.Store(x, v+1, vprog.Rlx)
			lk.Release(m, tok)
		}
	}
	threads := make([]vprog.ThreadFunc, nthreads)
	for t := range threads {
		threads[t] = worker
	}
	want := uint64(nthreads * iters)
	final := func(load func(*vprog.Var) uint64) (bool, string) {
		if got := load(x); got != want {
			return false, fmt.Sprintf("lost update: counter = %d, want %d", got, want)
		}
		return true, ""
	}
	return Ops{Threads: threads, Final: final}
}

// rwWorkload is the reader-writer client: writers update two variables
// atomically under the write lock, readers snapshot both under the read
// lock and assert they never observe a torn pair.
type rwWorkload struct {
	alg              *locks.Algorithm
	writers, readers int
	iters            int
}

// RW adapts alg (which must implement locks.RWLock when built) as the
// reader-writer client workload with a fixed writers/readers split.
func RW(alg *locks.Algorithm, writers, readers, iters int) Workload {
	return &rwWorkload{alg, writers, readers, iters}
}

func (w *rwWorkload) Name() string {
	return fmt.Sprintf("rw/%s/w%d-r%d", w.alg.Name, w.writers, w.readers)
}
func (w *rwWorkload) Doc() string { return w.alg.Doc }
func (w *rwWorkload) Buggy() bool { return w.alg.Buggy }
func (w *rwWorkload) Threads() (int, int) {
	n := w.writers + w.readers
	return n, n
}
func (w *rwWorkload) DefaultSpec() *vprog.BarrierSpec { return w.alg.DefaultSpec() }

// SymGroups: writers are interchangeable among themselves, and so are
// readers; the two roles are distinct groups.
func (w *rwWorkload) SymGroups(int) [][]int {
	return append(lockGroup(w.alg, 0, w.writers), lockGroup(w.alg, w.writers, w.writers+w.readers)...)
}
func (w *rwWorkload) ProgramName(int) string {
	return fmt.Sprintf("client/rw/%s/w%d-r%d-i%d", w.alg.Name, w.writers, w.readers, w.iters)
}

func (w *rwWorkload) New(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Ops {
	rw, ok := w.alg.New(env, spec, nthreads).(locks.RWLock)
	if !ok {
		panic("RWClient: algorithm " + w.alg.Name + " is not a reader-writer lock")
	}
	a := env.Var("rw.a", 0)
	b := env.Var("rw.b", 0)
	iters := w.iters
	writer := func(m vprog.Mem) {
		for i := 0; i < iters; i++ {
			tok := rw.Acquire(m)
			va := m.Load(a, vprog.Rlx)
			m.Store(a, va+1, vprog.Rlx)
			vb := m.Load(b, vprog.Rlx)
			m.Store(b, vb+1, vprog.Rlx)
			rw.Release(m, tok)
		}
	}
	reader := func(m vprog.Mem) {
		for i := 0; i < iters; i++ {
			tok := rw.AcquireShared(m)
			va := m.Load(a, vprog.Rlx)
			vb := m.Load(b, vprog.Rlx)
			m.Assert(va == vb, fmt.Sprintf("torn read: a=%d b=%d", va, vb))
			rw.ReleaseShared(m, tok)
		}
	}
	var threads []vprog.ThreadFunc
	for i := 0; i < w.writers; i++ {
		threads = append(threads, writer)
	}
	for i := 0; i < w.readers; i++ {
		threads = append(threads, reader)
	}
	want := uint64(w.writers * iters)
	final := func(load func(*vprog.Var) uint64) (bool, string) {
		if load(a) != want || load(b) != want {
			return false, fmt.Sprintf("writer updates lost: a=%d b=%d want %d", load(a), load(b), want)
		}
		return true, ""
	}
	return Ops{Threads: threads, Final: final}
}

// recursiveWorkload verifies re-entrant acquisition: each thread
// acquires the lock twice (nested), increments, and releases in LIFO
// order.
type recursiveWorkload struct {
	alg *locks.Algorithm
}

// Recursive adapts alg's re-entrant acquisition client as a Workload.
func Recursive(alg *locks.Algorithm) Workload { return &recursiveWorkload{alg} }

func (w *recursiveWorkload) Name() string                    { return "recursive/" + w.alg.Name }
func (w *recursiveWorkload) Doc() string                     { return w.alg.Doc }
func (w *recursiveWorkload) Buggy() bool                     { return w.alg.Buggy }
func (w *recursiveWorkload) Threads() (int, int)             { return 1, 0 }
func (w *recursiveWorkload) DefaultSpec() *vprog.BarrierSpec { return w.alg.DefaultSpec() }
func (w *recursiveWorkload) SymGroups(nthreads int) [][]int {
	return lockGroup(w.alg, 0, nthreads)
}
func (w *recursiveWorkload) ProgramName(nthreads int) string {
	return fmt.Sprintf("client/recursive/%s/t%d", w.alg.Name, nthreads)
}

func (w *recursiveWorkload) New(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Ops {
	lk := w.alg.New(env, spec, nthreads)
	x := env.Var("cs.counter", 0)
	worker := func(m vprog.Mem) {
		outer := lk.Acquire(m)
		inner := lk.Acquire(m) // re-entry must not deadlock
		v := m.Load(x, vprog.Rlx)
		m.Store(x, v+1, vprog.Rlx)
		lk.Release(m, inner)
		v = m.Load(x, vprog.Rlx)
		m.Store(x, v+1, vprog.Rlx)
		lk.Release(m, outer)
	}
	threads := make([]vprog.ThreadFunc, nthreads)
	for t := range threads {
		threads[t] = worker
	}
	want := uint64(2 * nthreads)
	final := func(load func(*vprog.Var) uint64) (bool, string) {
		if got := load(x); got != want {
			return false, fmt.Sprintf("lost update: counter = %d, want %d", got, want)
		}
		return true, ""
	}
	return Ops{Threads: threads, Final: final}
}

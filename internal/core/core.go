package core

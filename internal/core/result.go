package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
)

// Verdict classifies the outcome of a verification run.
type Verdict uint8

// Verdicts.
const (
	// OK: every execution is safe and every await terminates.
	OK Verdict = iota
	// SafetyViolation: an assertion or the final-state check failed in
	// some consistent execution.
	SafetyViolation
	// ATViolation: an await can run forever (Definition 1 fails).
	ATViolation
	// Error: the checker could not complete (internal limit or a
	// program outside AMC's fragment).
	Error
	// Canceled: the run was cut short by context cancellation before a
	// verdict was reached (pool short-circuiting, caller timeout). It
	// carries no information about the program.
	Canceled
	// Undecided: the run stopped at a budget limit (or a checkpointing
	// cancellation) with work remaining. Like Canceled it carries no
	// verdict about the program, but unlike Canceled the work is not
	// lost: the Result carries a Checkpoint from which a later run
	// resumes and — once the frontier drains — reaches exactly the
	// verdict an uninterrupted run would have.
	Undecided
)

func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case SafetyViolation:
		return "safety violation"
	case ATViolation:
		return "await-termination violation"
	case Error:
		return "error"
	case Canceled:
		return "canceled"
	case Undecided:
		return "undecided"
	}
	return "unknown"
}

// LitmusLabel renders the verdict as a litmus-conformance answer.
// Litmus programs are phrased so the interesting weak outcome fails the
// final-state check, so running the checker answers reachability: OK
// means the outcome is forbidden, a safety violation means it is
// ALLOWED. The remaining verdicts answer neither way and get explicit
// labels too — every consumer of a conformance matrix (vsynclitmus,
// vsync.MatrixResult.Report) maps through here so no raw verdict
// string ever lands in a table cell unexplained.
func (v Verdict) LitmusLabel() string {
	switch v {
	case OK:
		return "forbidden"
	case SafetyViolation:
		return "ALLOWED"
	case ATViolation:
		// Not an observability answer: the test has an await loop the
		// model lets spin forever, so it sits outside AMC's terminating
		// fragment under this model.
		return "await-hang"
	case Canceled:
		return "canceled"
	case Undecided:
		// A budget stopped the cell before either answer; resuming from
		// its checkpoint will eventually fill the cell in.
		return "undecided"
	default:
		return "ERROR"
	}
}

// Stats counts the work performed by an exploration.
//
// Determinism across worker counts: for runs that explore to
// completion, Executions and Blocked are schedule-independent — the
// visited set's atomic insert-if-absent admits each structural
// fingerprint once, and every complete execution (and maximal blocked
// graph) is derived exactly once whichever worker reaches it first.
// The traversal counters (Popped, Pushed, Revisits, Duplicates,
// Wasteful, Inconsist, and the canonicalization counters) can vary by a
// few percent between schedules: graphs with equal fingerprints but
// different addition histories carry different stamp orders, the
// revisit restriction depends on stamp order, and which representative
// a parallel run expands depends on pop timing. The verdict and the
// counterexample never do (see exploration.offerViolation).
type Stats struct {
	Popped     int // graphs popped from the exploration frontier
	Pushed     int // graphs pushed
	Executions int // complete consistent executions examined
	Revisits   int // write→read revisit graphs generated
	Duplicates int // graphs pruned by the visited set
	Wasteful   int // graphs pruned by the W(G) filter (Def. 2)
	Collapsed  int // graphs pruned by the retry-free-twin collapse
	Inconsist  int // graphs pruned by the memory model
	Blocked    int // stuck graphs whose ⊥ reads were all resolvable

	// Thread-symmetry reduction (zero when the program declares no
	// symmetric groups or Checker.NoSymmetry is set). CanonFast +
	// CanonRefined is the number of canonicalized pops; Canonicalized
	// counts the ones whose popped graph was NOT already the canonical
	// representative (its key was remapped onto an orbit sibling's).
	Canonicalized int // pops admitted under a non-identity relabeling
	CanonFast     int // canonicalizations resolved by the signature sort alone
	CanonRefined  int // canonicalizations that brute-forced signature tie classes
	CanonPruned   int // candidate permutations skipped by the signature fast path
}

// Add accumulates o into s (per-worker and suite-level aggregation).
func (s *Stats) Add(o Stats) {
	s.Popped += o.Popped
	s.Pushed += o.Pushed
	s.Executions += o.Executions
	s.Revisits += o.Revisits
	s.Duplicates += o.Duplicates
	s.Wasteful += o.Wasteful
	s.Collapsed += o.Collapsed
	s.Inconsist += o.Inconsist
	s.Blocked += o.Blocked
	s.Canonicalized += o.Canonicalized
	s.CanonFast += o.CanonFast
	s.CanonRefined += o.CanonRefined
	s.CanonPruned += o.CanonPruned
}

// SchedStats describes how the work-graph scheduler executed a run:
// which workers participated, how the items were distributed, and how
// much cross-worker traffic the run generated. These counters are
// diagnostic and schedule-dependent, which is why they are kept out of
// Stats (whose equality across worker counts the differential tests
// assert).
type SchedStats struct {
	Workers    int   // worker seats configured (WorkersPerRun, min 1)
	Active     int   // workers that executed at least one item
	Executed   []int // items executed per worker seat
	Steals     int   // successful steal operations
	Stolen     int   // items moved between workers by steals
	Spills     int   // items spilled from full deques to the overflow queue
	Contention int   // contended visited-shard lock acquisitions
	Recruited  int   // pool slots borrowed for intra-run stealing
}

// Accumulate sums the portable counters of o into s for suite-level
// aggregation (the per-seat breakdown does not compose across runs and
// is dropped).
func (s *SchedStats) Accumulate(o SchedStats) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	if o.Active > s.Active {
		s.Active = o.Active
	}
	s.Executed = nil
	s.Steals += o.Steals
	s.Stolen += o.Stolen
	s.Spills += o.Spills
	s.Contention += o.Contention
	s.Recruited += o.Recruited
}

// Result is the outcome of Checker.Run.
type Result struct {
	Verdict Verdict
	Message string
	Witness *graph.Graph // counterexample graph (violations only)
	Stats   Stats
	Sched   SchedStats // work-graph scheduler counters
	// Acyclic holds the acyclicity-engine counters of this run: how the
	// consistency predicates were decided (cached-order fast path, full
	// Kahn passes, shortcut verdicts from the order state alone) and how
	// the per-state topological order evolved across Extend. The
	// underlying counters are process-wide, so the delta is exact for a
	// lone run and approximate when other runs verify concurrently (a
	// pool); like SchedStats it is diagnostic, not part of the
	// determinism contract.
	Acyclic  graph.AcyclicCounters
	Duration time.Duration
	Err      error // set when Verdict == Error
	// Checkpoint carries the drained frontier of an Undecided run: the
	// unexplored states, the visited-set summary, and the cumulative
	// counters a resumed run needs to continue deterministically. Nil
	// for every other verdict.
	Checkpoint *Checkpoint
}

// Ok reports whether the program verified.
func (r *Result) Ok() bool { return r.Verdict == OK }

// String summarizes the result in one line.
func (r *Result) String() string {
	switch r.Verdict {
	case OK:
		return fmt.Sprintf("ok: %d executions, %d graphs explored in %v",
			r.Stats.Executions, r.Stats.Popped, r.Duration)
	case Error:
		return fmt.Sprintf("error: %v", r.Err)
	case Undecided:
		n := 0
		if r.Checkpoint != nil {
			n = len(r.Checkpoint.frontier)
		}
		return fmt.Sprintf("undecided: %s (%d graphs explored, %d frontier states checkpointed)",
			r.Message, r.Stats.Popped, n)
	default:
		return fmt.Sprintf("%s: %s", r.Verdict, r.Message)
	}
}

// Report renders the result with its exploration statistics and the
// work-graph scheduler counters — the multi-line companion of String.
func (r *Result) Report() string {
	var b strings.Builder
	b.WriteString(r.String())
	b.WriteByte('\n')
	s := r.Stats
	fmt.Fprintf(&b, "exploration: %d popped, %d pushed, %d executions, %d revisits, %d duplicates, %d wasteful, %d inconsistent, %d blocked\n",
		s.Popped, s.Pushed, s.Executions, s.Revisits, s.Duplicates, s.Wasteful, s.Inconsist, s.Blocked)
	if s.CanonFast+s.CanonRefined > 0 {
		fmt.Fprintf(&b, "symmetry: %d states canonicalized (%d fast-path, %d refined), %d permutations pruned\n",
			s.Canonicalized, s.CanonFast, s.CanonRefined, s.CanonPruned)
	}
	sc := r.Sched
	if sc.Workers > 0 {
		fmt.Fprintf(&b, "scheduler: %d/%d workers active, %d steals moving %d items, %d spills, %d contended shard locks",
			sc.Active, sc.Workers, sc.Steals, sc.Stolen, sc.Spills, sc.Contention)
		if sc.Recruited > 0 {
			fmt.Fprintf(&b, ", %d pool slots borrowed", sc.Recruited)
		}
		b.WriteByte('\n')
		if sc.Workers > 1 {
			for i, n := range sc.Executed {
				fmt.Fprintf(&b, "  worker %d: %d items\n", i, n)
			}
		}
	}
	if a := r.Acyclic; a.Checks+a.TopoShortcuts > 0 {
		fmt.Fprintf(&b, "acyclicity: %d checks (%d order-seeded, %d kahn passes, %d cyclic), %d order-state shortcuts; order: %d extended, %d derived, %d cyclic states\n",
			a.Checks, a.SeedHits, a.KahnPasses, a.CyclesFound, a.TopoShortcuts,
			a.OrderExtends, a.OrderDerives, a.OrderCyclic)
	}
	return b.String()
}

package core

import (
	"fmt"
	"time"

	"repro/internal/graph"
)

// Verdict classifies the outcome of a verification run.
type Verdict uint8

// Verdicts.
const (
	// OK: every execution is safe and every await terminates.
	OK Verdict = iota
	// SafetyViolation: an assertion or the final-state check failed in
	// some consistent execution.
	SafetyViolation
	// ATViolation: an await can run forever (Definition 1 fails).
	ATViolation
	// Error: the checker could not complete (internal limit or a
	// program outside AMC's fragment).
	Error
	// Canceled: the run was cut short by context cancellation before a
	// verdict was reached (pool short-circuiting, caller timeout). It
	// carries no information about the program.
	Canceled
)

func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case SafetyViolation:
		return "safety violation"
	case ATViolation:
		return "await-termination violation"
	case Error:
		return "error"
	case Canceled:
		return "canceled"
	}
	return "unknown"
}

// Stats counts the work performed by an exploration.
type Stats struct {
	Popped     int // graphs popped from the exploration stack
	Pushed     int // graphs pushed
	Executions int // complete consistent executions examined
	Revisits   int // write→read revisit graphs generated
	Duplicates int // graphs pruned by the visited set
	Wasteful   int // graphs pruned by the W(G) filter (Def. 2)
	Inconsist  int // graphs pruned by the memory model
	Blocked    int // stuck graphs whose ⊥ reads were all resolvable
}

// Result is the outcome of Checker.Run.
type Result struct {
	Verdict  Verdict
	Message  string
	Witness  *graph.Graph // counterexample graph (violations only)
	Stats    Stats
	Duration time.Duration
	Err      error // set when Verdict == Error
}

// Ok reports whether the program verified.
func (r *Result) Ok() bool { return r.Verdict == OK }

// String summarizes the result in one line.
func (r *Result) String() string {
	switch r.Verdict {
	case OK:
		return fmt.Sprintf("ok: %d executions, %d graphs explored in %v",
			r.Stats.Executions, r.Stats.Popped, r.Duration)
	case Error:
		return fmt.Sprintf("error: %v", r.Err)
	default:
		return fmt.Sprintf("%s: %s", r.Verdict, r.Message)
	}
}

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// TestAblationDedup: disabling the visited set must not change the
// verdict (it only costs duplicated work), and the duplication must be
// measurable — evidence that the fingerprint set earns its keep.
func TestAblationDedup(t *testing.T) {
	p := harness.MutexClient(locks.ByName("ttas"), locks.ByName("ttas").DefaultSpec(), 2, 1)

	with := core.New(mm.WMM)
	resWith := with.Run(p)
	if !resWith.Ok() {
		t.Fatal(resWith)
	}
	if resWith.Stats.Duplicates == 0 {
		t.Error("expected the visited set to prune duplicate graphs")
	}

	without := core.New(mm.WMM)
	without.DisableDedup = true
	resWithout := without.Run(p)
	if !resWithout.Ok() {
		t.Fatalf("dedup-free run changed the verdict: %v", resWithout)
	}
	if resWithout.Stats.Popped < resWith.Stats.Popped {
		t.Errorf("dedup-free exploration should do at least as much work: %d vs %d",
			resWithout.Stats.Popped, resWith.Stats.Popped)
	}
}

// TestAblationPSC: the RA model (WMM without the SC axiom) must accept
// SC-access store buffering — demonstrating exactly which results rest
// on psc — while agreeing with WMM elsewhere.
func TestAblationPSC(t *testing.T) {
	scSB := harness.SB(vprog.SC, vprog.SC, vprog.ModeNone)
	if !reachable(t, mm.RA, scSB) {
		t.Error("RA (no psc) must allow store buffering even with SC accesses")
	}
	if reachable(t, mm.RA, harness.MP(vprog.Rel, vprog.Acq)) {
		t.Error("RA must still forbid the MP stale read (sw/hb intact)")
	}
	// The rw lock's Dekker handshake needs psc: under RA the torn read
	// appears.
	alg := locks.ByName("rw")
	res := core.New(mm.RA).Run(harness.RWClient(alg, alg.DefaultSpec(), 1, 1, 1))
	if res.Verdict != core.SafetyViolation {
		t.Errorf("rw lock under RA should exhibit the Dekker torn read, got %v", res)
	}
}

package core_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// failFastProgram trips an assertion almost immediately: a single
// thread asserting a falsehood.
func failFastProgram() *vprog.Program {
	return &vprog.Program{
		Name: "pool/fail-fast",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			t0 := func(m vprog.Mem) {
				m.Store(x, 1, vprog.Rlx)
				m.Assert(false, "deliberate failure")
			}
			return []vprog.ThreadFunc{t0}, nil
		},
	}
}

// heavyProgram explores a multi-second state space: the 3-thread
// qspinlock client (~18k popped states even with symmetry reduction
// collapsing its thread orbits).
func heavyProgram() *vprog.Program {
	// Two MCS iterations: the retry-free collapse shrank the former
	// one-iteration qspin t3 run to milliseconds, too quick to outlive a
	// cancellation (and two qspin iterations overrun the graph cap).
	alg := locks.ByName("mcs")
	return harness.MutexClient(alg, alg.DefaultSpec(), 3, 2)
}

// lightOKProgram verifies in milliseconds.
func lightOKProgram(alg string) *vprog.Program {
	a := locks.ByName(alg)
	return harness.MutexClient(a, a.DefaultSpec(), 2, 1)
}

// TestPoolRunsAllJobs: every job completes, results arrive in job
// order, and the per-worker accounting adds up.
func TestPoolRunsAllJobs(t *testing.T) {
	names := []string{"spin", "ttas", "ticket", "mcs", "clh"}
	pool := core.NewPool(4)
	jobs := make([]core.Job, len(names))
	for i, n := range names {
		jobs[i] = core.Job{Checker: core.New(mm.WMM), Program: lightOKProgram(n)}
	}
	results := pool.RunAll(context.Background(), jobs, false)
	for i, r := range results {
		if r == nil || r.Verdict != core.OK {
			t.Fatalf("job %d (%s): %v", i, names[i], r)
		}
	}
	st := pool.Stats()
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
	total := 0
	for _, n := range st.Jobs {
		total += n
	}
	if total != len(jobs) {
		t.Errorf("per-worker job counts sum to %d, want %d", total, len(jobs))
	}
	if st.TotalBusy() <= 0 {
		t.Error("expected nonzero busy time")
	}
}

// TestPoolFailFastCancels: with fail-fast on, one quick failure
// short-circuits a heavyweight sibling mid-exploration — the pool
// returns in a fraction of the heavy job's solo runtime and the sibling
// reports Canceled.
func TestPoolFailFastCancels(t *testing.T) {
	heavy := heavyProgram()
	solo := time.Duration(0)
	if !testing.Short() {
		t0 := time.Now()
		if res := core.New(mm.WMM).Run(heavy); !res.Ok() {
			t.Fatalf("heavy program must verify solo: %v", res)
		}
		solo = time.Since(t0)
	}

	pool := core.NewPool(2)
	jobs := []core.Job{
		{Checker: core.New(mm.WMM), Program: failFastProgram()},
		{Checker: core.New(mm.WMM), Program: heavy},
	}
	t0 := time.Now()
	verdict, failed, results := pool.VerifyAll(context.Background(), jobs)
	elapsed := time.Since(t0)

	if verdict != core.SafetyViolation {
		t.Fatalf("verdict = %v, want safety violation", verdict)
	}
	if failed != 0 || results[failed].Message == "" {
		t.Fatalf("deciding job = %d (%v), want the fail-fast program with its message", failed, results[failed])
	}
	if results[1].Verdict != core.Canceled {
		t.Errorf("heavy sibling verdict = %v, want canceled", results[1].Verdict)
	}
	if pool.Stats().Canceled == 0 {
		t.Error("pool accounting recorded no canceled runs")
	}
	if solo > 0 && elapsed > solo/2 {
		t.Errorf("short-circuit took %v; heavy job alone takes %v", elapsed, solo)
	}
}

// TestRunCtxCanceled: a canceled context stops an exploration at the
// next check point with a Canceled verdict, not a wrong answer.
func TestRunCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	res := core.New(mm.WMM).RunCtx(ctx, heavyProgram())
	if res.Verdict != core.Canceled {
		t.Fatalf("verdict = %v, want canceled", res.Verdict)
	}
	if res.Err == nil {
		t.Error("canceled result should carry the context error")
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Errorf("pre-canceled run still took %v", d)
	}
}

// TestPoolCanceledBeforeStart: jobs still queued when the context dies
// never run a checker at all.
func TestPoolCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool := core.NewPool(1)
	jobs := []core.Job{
		{Checker: core.New(mm.WMM), Program: lightOKProgram("spin")},
		{Checker: core.New(mm.WMM), Program: lightOKProgram("ttas")},
	}
	results := pool.RunAll(ctx, jobs, false)
	for i, r := range results {
		if r.Verdict != core.Canceled {
			t.Errorf("job %d: verdict %v, want canceled", i, r.Verdict)
		}
	}
}

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// reachable runs the checker and reports whether the program's "bad"
// outcome is observable under the model (litmus programs are phrased so
// the weak outcome fails an assertion or the final check).
func reachable(t *testing.T, model mm.Model, p *vprog.Program) bool {
	t.Helper()
	res := core.New(model).Run(p)
	switch res.Verdict {
	case core.OK:
		return false
	case core.SafetyViolation:
		return true
	default:
		t.Fatalf("%s under %s: unexpected result %v", p.Name, model.Name(), res)
		return false
	}
}

// verdict runs the checker and returns the verdict, failing on Error.
func verdict(t *testing.T, model mm.Model, p *vprog.Program) core.Verdict {
	t.Helper()
	res := core.New(model).Run(p)
	if res.Verdict == core.Error {
		t.Fatalf("%s under %s: checker error: %v", p.Name, model.Name(), res.Err)
	}
	return res.Verdict
}

func TestSB(t *testing.T) {
	relaxed := harness.SB(vprog.Rlx, vprog.Rlx, vprog.ModeNone)
	if reachable(t, mm.SC, relaxed) {
		t.Error("SC must forbid store buffering")
	}
	if !reachable(t, mm.TSO, relaxed) {
		t.Error("TSO must allow store buffering")
	}
	if !reachable(t, mm.WMM, relaxed) {
		t.Error("WMM must allow relaxed store buffering")
	}

	fenced := harness.SB(vprog.Rlx, vprog.Rlx, vprog.SC)
	if reachable(t, mm.TSO, fenced) {
		t.Error("TSO must forbid store buffering across mfence")
	}
	if reachable(t, mm.WMM, fenced) {
		t.Error("WMM must forbid store buffering across SC fences")
	}

	scAccesses := harness.SB(vprog.SC, vprog.SC, vprog.ModeNone)
	if reachable(t, mm.WMM, scAccesses) {
		t.Error("WMM must forbid store buffering with SC accesses")
	}

	relAcq := harness.SB(vprog.Rel, vprog.Acq, vprog.ModeNone)
	if !reachable(t, mm.WMM, relAcq) {
		t.Error("WMM must allow store buffering with only rel/acq accesses")
	}
}

func TestMP(t *testing.T) {
	relaxed := harness.MP(vprog.Rlx, vprog.Rlx)
	if reachable(t, mm.SC, relaxed) {
		t.Error("SC must forbid the MP stale read")
	}
	if reachable(t, mm.TSO, relaxed) {
		t.Error("TSO must forbid the MP stale read (no W->W or R->R reordering)")
	}
	if !reachable(t, mm.WMM, relaxed) {
		t.Error("WMM must allow the MP stale read with relaxed accesses")
	}
	if reachable(t, mm.WMM, harness.MP(vprog.Rel, vprog.Acq)) {
		t.Error("WMM must forbid the MP stale read with release/acquire")
	}
	if !reachable(t, mm.WMM, harness.MP(vprog.Rel, vprog.Rlx)) {
		t.Error("WMM must allow the MP stale read with a relaxed flag load")
	}
	if !reachable(t, mm.WMM, harness.MP(vprog.Rlx, vprog.Acq)) {
		t.Error("WMM must allow the MP stale read with a relaxed flag store")
	}
}

func TestCoRR(t *testing.T) {
	for _, model := range mm.All() {
		if reachable(t, model, harness.CoRR()) {
			t.Errorf("%s must enforce per-location coherence", model.Name())
		}
	}
}

func TestLB(t *testing.T) {
	relaxed := harness.LB(vprog.Rlx, vprog.Rlx)
	for _, model := range mm.All() {
		// Our WMM follows RC11's no-thin-air (acyclic(po ∪ rf)), so load
		// buffering is forbidden on every built-in model. This is a
		// documented divergence from hardware ARMv8 / IMM, which allow LB
		// without dependencies (DESIGN.md §2, substitutions).
		if reachable(t, model, relaxed) {
			t.Errorf("%s must forbid load buffering (no-thin-air)", model.Name())
		}
	}
}

func TestIRIW(t *testing.T) {
	if reachable(t, mm.WMM, harness.IRIW(vprog.SC)) {
		t.Error("WMM must forbid IRIW with SC accesses")
	}
	if !reachable(t, mm.WMM, harness.IRIW(vprog.Acq)) {
		t.Error("WMM must allow IRIW with acquire loads")
	}
	if reachable(t, mm.TSO, harness.IRIW(vprog.Rlx)) {
		t.Error("TSO must forbid IRIW (multi-copy atomic)")
	}
	if reachable(t, mm.SC, harness.IRIW(vprog.Rlx)) {
		t.Error("SC must forbid IRIW")
	}
}

func TestFAAAtomicity(t *testing.T) {
	for _, model := range mm.All() {
		if reachable(t, model, harness.FAAAtomicity()) {
			t.Errorf("%s must enforce RMW atomicity", model.Name())
		}
	}
}

func TestAwaitSimple(t *testing.T) {
	for _, model := range mm.All() {
		if v := verdict(t, model, harness.AwaitSimple(vprog.Rel, vprog.Acq)); v != core.OK {
			t.Errorf("%s: simple await should verify, got %v", model.Name(), v)
		}
		if v := verdict(t, model, harness.AwaitSimple(vprog.Rlx, vprog.Rlx)); v != core.OK {
			t.Errorf("%s: relaxed simple await should still terminate, got %v", model.Name(), v)
		}
	}
}

func TestAwaitNoWriter(t *testing.T) {
	for _, model := range mm.All() {
		if v := verdict(t, model, harness.AwaitNoWriter()); v != core.ATViolation {
			t.Errorf("%s: awaiting a flag nobody raises must violate AT, got %v", model.Name(), v)
		}
	}
}

// TestFig1PartialMCS reproduces the paper's Fig. 1/2/5: with release/
// acquire on the hand-off variable the await terminates on WMM; fully
// relaxed, the modification order may order the hand-off before the
// locker's own store, and the locker hangs (execution graph β).
func TestFig1PartialMCS(t *testing.T) {
	if v := verdict(t, mm.WMM, harness.Fig1PartialMCS(false)); v != core.OK {
		t.Errorf("rel/acq partial MCS must verify on WMM, got %v", v)
	}
	if v := verdict(t, mm.WMM, harness.Fig1PartialMCS(true)); v != core.ATViolation {
		t.Errorf("relaxed partial MCS must hang on WMM, got %v", v)
	}
	// The hang needs weak memory: SC and TSO forbid the reordering.
	if v := verdict(t, mm.SC, harness.Fig1PartialMCS(true)); v != core.OK {
		t.Errorf("relaxed partial MCS must verify on SC, got %v", v)
	}
	if v := verdict(t, mm.TSO, harness.Fig1PartialMCS(true)); v != core.OK {
		t.Errorf("relaxed partial MCS must verify on TSO, got %v", v)
	}
}

// TestFig3TTAS verifies the paper's TTAS example: mutual exclusion and
// await termination hold with acquire on the exchange and release on
// the unlock store, on every model.
func TestFig3TTAS(t *testing.T) {
	for _, model := range mm.All() {
		if v := verdict(t, model, harness.Fig3TTAS()); v != core.OK {
			t.Errorf("%s: TTAS must verify, got %v", model.Name(), v)
		}
	}
}

func TestCheckerStats(t *testing.T) {
	res := core.New(mm.WMM).Run(harness.AwaitSimple(vprog.Rel, vprog.Acq))
	if !res.Ok() {
		t.Fatalf("await-simple: %v", res)
	}
	if res.Stats.Executions == 0 {
		t.Error("expected at least one complete execution")
	}
	if res.Stats.Popped == 0 || res.Stats.Pushed == 0 {
		t.Error("expected exploration work to be recorded")
	}
}

func TestCounterexampleRendering(t *testing.T) {
	res := core.New(mm.WMM).Run(harness.Fig1PartialMCS(true))
	if res.Verdict != core.ATViolation {
		t.Fatalf("want AT violation, got %v", res)
	}
	if res.Witness == nil {
		t.Fatal("AT violation must carry a witness graph")
	}
	txt := res.Witness.Render()
	if txt == "" {
		t.Fatal("empty witness rendering")
	}
	dot := res.Witness.DOT("fig1")
	if dot == "" {
		t.Fatal("empty DOT rendering")
	}
}

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// The parallel differential bar: a work-graph exploration at any worker
// count must be observably identical to the sequential DFS — the same
// verdict, the same number of complete executions examined (AMC's
// exactly-once enumeration guarantee, arbitrated by the visited set's
// atomic insert-if-absent), the same count of maximal blocked graphs,
// and — for violations — the same deterministic counterexample. The
// traversal counters (Popped, Revisits, ...) are deliberately NOT
// compared across worker counts: equal-fingerprint states carry
// different stamp histories, the revisit restriction depends on stamp
// order, and which representative a parallel schedule expands is timing
// dependent (see the core.Stats doc).

func runAt(t *testing.T, model mm.Model, p *vprog.Program, workers int) *core.Result {
	t.Helper()
	c := core.New(model)
	c.WorkersPerRun = workers
	res := c.Run(p)
	if res.Verdict == core.Canceled {
		t.Fatalf("%s at %d workers: unexpected cancellation", p.Name, workers)
	}
	return res
}

// witnessKey fingerprints a counterexample graph (nil-safe).
func witnessKey(r *core.Result) [2]uint64 {
	if r.Witness == nil {
		return [2]uint64{}
	}
	return r.Witness.Fingerprint128()
}

// diffOne asserts the differential bar for one program under one model.
func diffOne(t *testing.T, model mm.Model, p *vprog.Program) {
	t.Helper()
	seq := runAt(t, model, p, 1)
	par2 := runAt(t, model, p, 2)
	par4 := runAt(t, model, p, 4)

	if par2.Verdict != par4.Verdict {
		t.Fatalf("%s under %s: 2 workers say %v, 4 workers say %v",
			p.Name, model.Name(), par2.Verdict, par4.Verdict)
	}
	if seq.Verdict != par4.Verdict {
		t.Fatalf("%s under %s: sequential says %v, parallel says %v",
			p.Name, model.Name(), seq.Verdict, par4.Verdict)
	}
	if par2.Stats.Executions != par4.Stats.Executions || par2.Stats.Blocked != par4.Stats.Blocked {
		t.Fatalf("%s under %s: execution enumeration diverged across worker counts\npar2: %+v\npar4: %+v",
			p.Name, model.Name(), par2.Stats, par4.Stats)
	}
	if seq.Verdict == core.OK {
		// Complete exploration everywhere: the execution and blocked-graph
		// enumerations must match the sequential run exactly.
		if seq.Stats.Executions != par4.Stats.Executions || seq.Stats.Blocked != par4.Stats.Blocked {
			t.Fatalf("%s under %s: exploration diverged\nseq:  %+v\npar4: %+v",
				p.Name, model.Name(), seq.Stats, par4.Stats)
		}
		return
	}
	// Violations: sequential stops at its first counterexample, so its
	// work profile is not comparable — but the parallel runs explore to
	// completion and must agree on the deterministic counterexample.
	if witnessKey(par2) != witnessKey(par4) {
		t.Fatalf("%s under %s: parallel counterexample is schedule-dependent", p.Name, model.Name())
	}
	if par2.Message != par4.Message {
		t.Fatalf("%s under %s: parallel messages diverged: %q vs %q",
			p.Name, model.Name(), par2.Message, par4.Message)
	}
}

// TestParallelDifferentialLitmus: the full litmus corpus, both
// strengths, under every correctness model.
func TestParallelDifferentialLitmus(t *testing.T) {
	for _, name := range harness.LitmusNames() {
		for _, strong := range []bool{false, true} {
			p := harness.Litmus(name, strong)
			for _, m := range []mm.Model{mm.SC, mm.TSO, mm.WMM} {
				diffOne(t, m, p)
			}
		}
	}
}

// TestParallelDifferentialLocks: the lock harnesses, including the
// buggy study cases whose violations exercise the deterministic
// counterexample merge.
func TestParallelDifferentialLocks(t *testing.T) {
	names := []string{"spin", "ticket", "mcs", "qspin", "dpdkmcs-buggy", "huaweimcs-buggy"}
	if !testing.Short() {
		names = append(names, "ttas", "clh")
	}
	for _, name := range names {
		alg := locks.ByName(name)
		if alg == nil {
			t.Fatalf("unknown lock %q", name)
		}
		diffOne(t, mm.WMM, harness.MutexClient(alg, alg.DefaultSpec(), 2, 1))
	}
}

// TestParallelDifferentialQueuePath: the revisit-heavy qspinlock
// queue-path litmus, where forced-rf states stress both the dedup key
// and the work distribution.
func TestParallelDifferentialQueuePath(t *testing.T) {
	alg := locks.ByName("qspin")
	diffOne(t, mm.WMM, harness.QspinQueuePathLitmus(alg.DefaultSpec()))
}

// TestParallelStealingHappens: on a run big enough to keep several
// workers fed (the 3-thread two-iteration MCS client — the retry-free
// collapse shrank the one-iteration run to a few hundred states, too
// small to spread), the scheduler counters must show genuine
// multi-worker execution — active workers and successful steals —
// while the execution enumeration stays identical to sequential.
func TestParallelStealingHappens(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exploration; not run in -short")
	}
	alg := locks.ByName("mcs")
	p := harness.MutexClient(alg, alg.DefaultSpec(), 3, 2)
	seq := runAt(t, mm.WMM, p, 1)
	par := runAt(t, mm.WMM, p, 4)
	// Executions is the schedule-independent canary; Blocked, like
	// Popped, depends on which orbit representative a worker reaches
	// first and may drift a few counts between worker counts.
	if !par.Ok() || seq.Stats.Executions != par.Stats.Executions {
		t.Fatalf("parallel mcs-t3 diverged:\nseq: %+v\npar: %+v", seq.Stats, par.Stats)
	}
	if par.Sched.Active < 2 {
		t.Errorf("only %d active workers; work never spread", par.Sched.Active)
	}
	if par.Sched.Steals == 0 {
		t.Error("no steals recorded on a 270k-state run")
	}
	total := 0
	for _, n := range par.Sched.Executed {
		total += n
	}
	if total != par.Stats.Popped {
		t.Errorf("per-worker executed items sum to %d, want Popped=%d", total, par.Stats.Popped)
	}
}

// TestPoolSlotBorrowing: a single big job on a multi-slot pool borrows
// the idle slots for intra-run stealing — the unified scheduler putting
// otherwise-dead capacity to work — and returns them.
func TestPoolSlotBorrowing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exploration; not run in -short")
	}
	alg := locks.ByName("mcs")
	p := harness.MutexClient(alg, alg.DefaultSpec(), 3, 1)
	pool := core.NewPool(4)
	c := core.New(mm.WMM)
	c.WorkersPerRun = 4
	results := pool.RunAll(t.Context(), []core.Job{{Checker: c, Program: p}}, false)
	res := results[0]
	if !res.Ok() {
		t.Fatalf("mcs-t3 should verify: %v", res)
	}
	if res.Sched.Recruited == 0 {
		t.Error("run on an idle 4-slot pool never borrowed a slot")
	}
	if st := pool.Stats().Borrows; st == 0 {
		t.Error("pool accounting recorded no borrows")
	}
	// Borrowed slots must all be back: a full second job acquires all
	// four slots without deadlock.
	jobs := make([]core.Job, 4)
	for i := range jobs {
		jobs[i] = core.Job{Checker: core.New(mm.WMM), Program: harness.MutexClient(alg, alg.DefaultSpec(), 2, 1)}
	}
	for i, r := range pool.RunAll(t.Context(), jobs, false) {
		if !r.Ok() {
			t.Fatalf("follow-up job %d: %v", i, r)
		}
	}
}

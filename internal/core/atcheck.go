package core

import (
	"repro/internal/graph"
)

// unresolvableBottom decides whether a stuck graph (no runnable
// threads, some blocked on ⊥ reads) witnesses an await-termination
// violation. A ⊥ read r is resolvable when some existing write w could
// serve it — i.e. setting rf(r) = w keeps the graph consistent — and
// doing so makes progress (the iteration would differ from the previous
// failed iteration, so the resolution is not wasteful).
//
// The graph is a genuine witness (a member of G∞*, §1.2) only when
// *every* blocked read is unresolvable: then no thread can ever run
// again, no new write can arrive, and the awaits spin forever. If some
// blocked read is resolvable, its resolution — where that thread makes
// progress and may produce the writes others wait for — is explored in
// a separate branch (the rf alternative pushed when the read was added,
// or a revisit), so this graph is discarded as redundant.
func (w *explorer) unresolvableBottom(g *graph.Graph, rres []replayResult) (graph.EventID, bool) {
	witness := graph.NoEvent
	for t, res := range rres {
		if !res.blocked {
			continue
		}
		evs := g.Threads[t]
		if len(evs) == 0 {
			return graph.NoEvent, false
		}
		e := evs[len(evs)-1]
		if !e.IsReadLike() || !g.RfOf(e.ID).Bottom {
			return graph.NoEvent, false // blocked threads always end in a ⊥ read
		}
		if w.resolvable(g, e, res.spans) {
			return graph.NoEvent, false
		}
		// Under symmetry, report the blocked read with the minimal
		// canonical slot (not the minimal thread id), so relabeled
		// orbit members yield the same canonical witness read.
		if witness == graph.NoEvent || (w.curPerm != nil && w.curPerm[e.ID.Thread] < w.curPerm[witness.Thread]) {
			witness = e.ID
		}
	}
	return witness, witness != graph.NoEvent
}

// resolvable reports whether some write in g can serve the ⊥ read e
// consistently and non-wastefully.
func (w *explorer) resolvable(g *graph.Graph, e *graph.Event, spans []iterRec) bool {
	// Locate e's position within its await iteration and the rf tuple of
	// the previous iteration, to apply the progress requirement: when e
	// is the *last* read of the iteration and every earlier read repeats
	// the previous iteration's sources, then e must read from a
	// different write than its counterpart did — resolving it equal
	// would complete an rf vector identical to a failed iteration's,
	// which is exactly W(G). At any earlier position the same source
	// stays admissible: a multi-operation iteration (an AwaitDo CAS
	// retry) can re-read an unchanged top/head and still diverge at a
	// later read — e.g. observe the tail its own help CAS advanced — so
	// forbidding the repeat there would turn terminating retries into
	// false await-termination verdicts. (The branch that takes the same
	// source and then completes an identical vector anyway is pruned by
	// wasteful() when it completes; this check only has to avoid
	// discarding the genuine witness, where the repeat is forced all
	// the way to the end.)
	var forbidden *graph.RF
	if e.AwaitIter > 0 {
		var cur, prev *iterRec
		for i := range spans {
			s := &spans[i]
			if s.Seq != e.AwaitSeq {
				continue
			}
			switch s.Iter {
			case e.AwaitIter:
				cur = s
			case e.AwaitIter - 1:
				prev = s
			}
		}
		if cur != nil && prev != nil {
			pos := -1
			for k, id := range cur.Reads {
				if id == e.ID {
					pos = k
					break
				}
			}
			if pos >= 0 && pos == len(prev.Reads)-1 {
				prefixSame := true
				for k := 0; k < pos; k++ {
					if g.RfOf(cur.Reads[k]) != g.RfOf(prev.Reads[k]) {
						prefixSame = false
						break
					}
				}
				if prefixSame {
					rf := g.RfOf(prev.Reads[pos])
					forbidden = &rf
				}
			}
		}
	}

	for _, wid := range g.Mo[e.Loc] {
		if wid == e.ID {
			continue
		}
		choice := graph.FromW(wid)
		if forbidden != nil && choice == *forbidden {
			continue // same source as the previous iteration: wasteful
		}
		if w.c.Model.Consistent(resolveWith(g, e, wid)) {
			return true
		}
	}
	return false
}

// resolveWith returns a copy of g in which the ⊥ read e instead reads
// from w. Updates are resolved as if degraded (their write part is not
// re-inserted into mo): this under-constrains the candidate graph, so
// the consistency test errs toward "resolvable" — never toward a false
// AT report. Executions where the update really does write are explored
// separately through the revisit branch created when w was added.
func resolveWith(g *graph.Graph, e *graph.Event, w graph.EventID) *graph.Graph {
	g2 := g.Clone()
	e2 := *e
	e2.RVal = g2.WriteVal(w)
	if e2.Kind == graph.KUpdate {
		e2.Degraded = true // read-only resolution; see doc comment
		e2.Val = 0
	}
	// ReplaceEvent, not an indexed store: clones share thread slices.
	g2.ReplaceEvent(e.ID, &e2)
	g2.SetRF(e.ID, graph.FromW(w))
	// The resolution is an incremental delta: same events, same mo, one
	// rf edge added to the trailing read of its thread. The hint lets
	// the consistency check below patch the parent's relations instead
	// of re-deriving them (with their two transitive closures) per
	// candidate write.
	g2.NoteResolved(g, &e2)
	return g2
}

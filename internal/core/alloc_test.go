package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
)

// Allocation-regression bars for the AMC hot path. The bounds are
// deliberately loose (~1.5x the measured steady state) so they only
// trip on real regressions — a reintroduced per-state string key, a
// lost matrix pool, a Clone that deep-copies again — not on noise.
// Gated out of -short: AllocsPerRun wants quiescent, repeated runs.

// TestAllocsExploreStep bounds the allocations per popped exploration
// state on the MCS client — the per-step cost of clone + replay +
// consistency check + dedup, amortized over a full verification run.
func TestAllocsExploreStep(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression bars are not run in -short")
	}
	alg := locks.ByName("mcs")
	p := harness.MutexClient(alg, alg.DefaultSpec(), 2, 1)
	var popped int
	allocs := testing.AllocsPerRun(3, func() {
		res := core.New(mm.WMM).Run(p)
		if !res.Ok() {
			t.Fatal(res)
		}
		popped = res.Stats.Popped
	})
	perStep := allocs / float64(popped)
	// Steady state measured at ~50 allocs per popped graph (dominated by
	// the extended relation matrices); the pre-optimization checker sat
	// at ~120.
	const maxPerStep = 75
	if perStep > maxPerStep {
		t.Errorf("explore step allocates %.1f objects/graph (%0.f total / %d graphs), regression bar is %d",
			perStep, allocs, popped, maxPerStep)
	}
}

// TestAllocsLitmus bounds a complete small-litmus verification — the
// fixed overhead path (program build, root graph, result) plus a small
// exploration.
func TestAllocsLitmus(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression bars are not run in -short")
	}
	p := harness.Litmus("MP", false)
	allocs := testing.AllocsPerRun(5, func() {
		res := core.New(mm.WMM).Run(p)
		if res.Verdict != core.SafetyViolation {
			t.Fatal(res)
		}
	})
	// Measured ~1.4k; bar at 2.5k.
	if allocs > 2500 {
		t.Errorf("MP verification allocates %.0f objects, regression bar is 2500", allocs)
	}
}

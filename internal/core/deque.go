package core

import "sync"

// Deque sizing. Each worker's deque grows by doubling up to dequeMaxCap;
// a push into a full deque at the cap spills to the exploration's shared
// overflow queue instead. 32k pending states is far beyond any frontier
// the corpus produces (a DFS frontier holds one branch fan-out per graph
// depth), so the bound caps worst-case memory without being a path real
// explorations take.
const (
	dequeInitCap = 256
	dequeMaxCap  = 1 << 15
	// stealBatch caps how many states one steal operation moves. Thieves
	// take up to half the victim's queue, amortizing the lock traffic,
	// but never more than this — a huge transfer would just invert the
	// imbalance.
	stealBatch = 32
)

// deque is one worker's bounded work deque, the per-worker shard of the
// exploration frontier. The owner pushes and pops at the tail: LIFO
// order is depth-first exploration, which keeps parent graphs hot in
// cache and the frontier small. Thieves remove batches from the head,
// the FIFO end, where the shallowest states — the roots of the largest
// unexplored subtrees — sit, so one steal buys a thief a long run of
// local work.
//
// A plain mutex per deque keeps the implementation obviously correct
// under the race detector. The owner's acquisition is uncontended
// unless a thief is active on this deque, and executing one state
// (replay of every thread plus a consistency check) costs microseconds
// against the lock's nanoseconds.
type deque struct {
	mu   sync.Mutex
	buf  []ExploreState // ring buffer; len is zero or a power of two
	head int            // index of the oldest state (steal end)
	size int
}

// pushTail adds st at the LIFO end. It reports false when the deque is
// at its hard bound; the caller spills the state to the shared overflow
// queue instead of losing it.
func (d *deque) pushTail(st ExploreState) bool {
	d.mu.Lock()
	if d.size == len(d.buf) {
		if len(d.buf) >= dequeMaxCap {
			d.mu.Unlock()
			return false
		}
		d.grow()
	}
	d.buf[(d.head+d.size)&(len(d.buf)-1)] = st
	d.size++
	d.mu.Unlock()
	return true
}

// popTail removes the most recently pushed state (the DFS child).
func (d *deque) popTail() (ExploreState, bool) {
	d.mu.Lock()
	if d.size == 0 {
		d.mu.Unlock()
		return ExploreState{}, false
	}
	d.size--
	i := (d.head + d.size) & (len(d.buf) - 1)
	st := d.buf[i]
	d.buf[i] = ExploreState{} // drop the graph reference
	d.mu.Unlock()
	return st, true
}

// stealHead moves up to max states from the FIFO end into out and
// returns how many were taken — half the queue, so repeated steals
// converge on balance instead of ping-ponging single items.
func (d *deque) stealHead(out []ExploreState, max int) int {
	d.mu.Lock()
	n := (d.size + 1) / 2
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		j := (d.head + i) & (len(d.buf) - 1)
		out[i] = d.buf[j]
		d.buf[j] = ExploreState{}
	}
	if n > 0 {
		d.head = (d.head + n) & (len(d.buf) - 1)
		d.size -= n
	}
	d.mu.Unlock()
	return n
}

// snapshot appends the deque's states to dst in head→tail (oldest→
// newest) order without removing them — the non-destructive read the
// periodic checkpointer uses while the owner is quiesced. Re-pushing a
// snapshot in this order with pushTail reproduces the deque exactly,
// so the next popTail after a resume returns the same state the
// interrupted run would have popped.
func (d *deque) snapshot(dst []ExploreState) []ExploreState {
	d.mu.Lock()
	for i := 0; i < d.size; i++ {
		dst = append(dst, d.buf[(d.head+i)&(len(d.buf)-1)])
	}
	d.mu.Unlock()
	return dst
}

// grow doubles the ring (or allocates the initial one), called with the
// lock held.
func (d *deque) grow() {
	ncap := dequeInitCap
	if len(d.buf) > 0 {
		ncap = len(d.buf) * 2
	}
	nbuf := make([]ExploreState, ncap)
	for i := 0; i < d.size; i++ {
		nbuf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf, d.head = nbuf, 0
}

package core_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// The crash-safety bar: a run segmented by any budget, resumed from its
// checkpoints until decided, must be observably identical to the
// uninterrupted run — same verdict, same counterexample, and (for the
// sequential DFS, whose pop order the checkpoint format reproduces
// exactly) the same statistics to the last counter.

// ckptCorpus returns the differential programs: small litmus shapes
// where budget=1 forces a segment per state, the fig.1 await-violation
// study, and the mutex clients whose revisit-generated forced-rf states
// exercise every record shape the checkpoint can hold.
func ckptCorpus() []*vprog.Program {
	mcs := locks.ByName("mcs")
	dpdk := locks.ByName("dpdkmcs-buggy")
	return []*vprog.Program{
		harness.Litmus("SB", false),                         // safety violation
		harness.Litmus("SB+fences", false),                  // ok
		harness.Litmus("IRIW", false),                       // safety violation
		harness.Fig1PartialMCS(true),                        // await-termination violation
		harness.MutexClient(mcs, mcs.DefaultSpec(), 2, 1),   // ok, 292 states
		harness.MutexClient(dpdk, dpdk.DefaultSpec(), 2, 1), // await-termination violation
	}
}

// runSegmented resumes a budgeted run until it decides. With roundTrip
// set, every intermediate checkpoint is encoded, decoded, and checked
// for canonical re-encoding before being resumed — so the decoded form,
// not the in-memory one, is what carries the run forward. It reports
// the final result and the segment count.
func runSegmented(t *testing.T, model mm.Model, p *vprog.Program, workers int, b core.Budget, roundTrip bool) (*core.Result, int) {
	t.Helper()
	var ck *core.Checkpoint
	segs := 0
	for {
		c := core.New(model)
		c.WorkersPerRun = workers
		c.Budget = b
		c.Resume = ck
		res := c.Run(p)
		segs++
		if res.Verdict == core.Error {
			t.Fatalf("%s segment %d: %v", p.Name, segs, res.Err)
		}
		if res.Verdict != core.Undecided {
			return res, segs
		}
		if res.Checkpoint == nil {
			t.Fatalf("%s segment %d: undecided result without checkpoint", p.Name, segs)
		}
		ck = res.Checkpoint
		if ck.FrontierLen() == 0 {
			t.Fatalf("%s segment %d: undecided with an empty frontier", p.Name, segs)
		}
		if roundTrip {
			data := ck.Encode()
			dec, err := core.DecodeCheckpoint(data)
			if err != nil {
				t.Fatalf("%s segment %d: decode: %v", p.Name, segs, err)
			}
			if !bytes.Equal(dec.Encode(), data) {
				t.Fatalf("%s segment %d: re-encoding a decoded checkpoint changed the bytes", p.Name, segs)
			}
			if dec.FrontierLen() != ck.FrontierLen() || dec.VisitedLen() != ck.VisitedLen() {
				t.Fatalf("%s segment %d: decode lost records (%d/%d states, %d/%d visited)",
					p.Name, segs, dec.FrontierLen(), ck.FrontierLen(), dec.VisitedLen(), ck.VisitedLen())
			}
			ck = dec
		}
		if segs > 10000 {
			t.Fatalf("%s: still undecided after %d segments (budget %+v)", p.Name, segs, b)
		}
	}
}

// TestBudgetSegmentedSequentialExact: segmenting the sequential DFS by
// a graph budget must reproduce the uninterrupted run exactly — the
// checkpoint frontier order and the budget-tripped state's return to
// the deque tail together reproduce the pop sequence, so even the
// partial-search statistics of a violation run match counter for
// counter.
func TestBudgetSegmentedSequentialExact(t *testing.T) {
	for _, p := range ckptCorpus() {
		base := runAt(t, mm.WMM, p, 1)
		for _, bg := range []int64{1, 7, 50} {
			res, segs := runSegmented(t, mm.WMM, p, 1, core.Budget{MaxGraphs: bg}, false)
			if res.Verdict != base.Verdict {
				t.Fatalf("%s budget=%d: verdict %v, uninterrupted run says %v", p.Name, bg, res.Verdict, base.Verdict)
			}
			if res.Stats != base.Stats {
				t.Fatalf("%s budget=%d (%d segments): stats diverged\nsegmented:     %+v\nuninterrupted: %+v",
					p.Name, bg, segs, res.Stats, base.Stats)
			}
			if witnessKey(res) != witnessKey(base) {
				t.Fatalf("%s budget=%d: counterexample diverged across segmentation", p.Name, bg)
			}
			if res.Message != base.Message {
				t.Fatalf("%s budget=%d: message diverged: %q vs %q", p.Name, bg, res.Message, base.Message)
			}
			if wantSegs := (int64(base.Stats.Popped) + bg - 1) / bg; bg == 1 && int64(segs) < wantSegs {
				t.Fatalf("%s budget=1: only %d segments for %d pops — budget did not bound the segments",
					p.Name, segs, base.Stats.Popped)
			}
		}
	}
}

// TestBudgetSegmentedParallel: the same bar for work-graph runs, on the
// schedule-independent observables — verdict, execution enumeration,
// and the deterministic minimal counterexample, which must survive
// traveling between segments as a checkpoint record.
func TestBudgetSegmentedParallel(t *testing.T) {
	for _, p := range ckptCorpus() {
		base := runAt(t, mm.WMM, p, 4)
		for _, bg := range []int64{7, 50} {
			res, segs := runSegmented(t, mm.WMM, p, 4, core.Budget{MaxGraphs: bg}, false)
			if res.Verdict != base.Verdict {
				t.Fatalf("%s par4 budget=%d: verdict %v, uninterrupted says %v", p.Name, bg, res.Verdict, base.Verdict)
			}
			if res.Stats.Executions != base.Stats.Executions || res.Stats.Blocked != base.Stats.Blocked {
				t.Fatalf("%s par4 budget=%d (%d segments): enumeration diverged\nsegmented:     %+v\nuninterrupted: %+v",
					p.Name, bg, segs, res.Stats, base.Stats)
			}
			if witnessKey(res) != witnessKey(base) {
				t.Fatalf("%s par4 budget=%d: counterexample became schedule-dependent across segments", p.Name, bg)
			}
			if res.Message != base.Message {
				t.Fatalf("%s par4 budget=%d: message diverged: %q vs %q", p.Name, bg, res.Message, base.Message)
			}
		}
	}
}

// TestCheckpointEncodeDecodeRoundTrip drives whole segmented runs
// through the binary format: every intermediate checkpoint is decoded
// from its own bytes before resuming, so any field the encoding drops
// or distorts shows up as a verdict or stats divergence. dpdkmcs-buggy
// exercises the violation record (a front-runner found mid-run must
// ride the checkpoint) and revisit-generated forced-rf states.
func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	mcs := locks.ByName("mcs")
	dpdk := locks.ByName("dpdkmcs-buggy")
	ok := harness.MutexClient(mcs, mcs.DefaultSpec(), 2, 1)
	bug := harness.MutexClient(dpdk, dpdk.DefaultSpec(), 2, 1)

	for _, workers := range []int{1, 4} {
		base := runAt(t, mm.WMM, ok, workers)
		res, _ := runSegmented(t, mm.WMM, ok, workers, core.Budget{MaxGraphs: 7}, true)
		if res.Verdict != base.Verdict || res.Stats.Executions != base.Stats.Executions {
			t.Fatalf("mcs workers=%d through encode/decode: %v/%d executions, want %v/%d",
				workers, res.Verdict, res.Stats.Executions, base.Verdict, base.Stats.Executions)
		}
	}
	base := runAt(t, mm.WMM, bug, 2)
	res, _ := runSegmented(t, mm.WMM, bug, 2, core.Budget{MaxGraphs: 1}, true)
	if res.Verdict != base.Verdict || witnessKey(res) != witnessKey(base) {
		t.Fatalf("dpdkmcs-buggy through encode/decode: verdict %v witness %x, want %v %x",
			res.Verdict, witnessKey(res), base.Verdict, witnessKey(base))
	}
}

// interruptedCheckpoint returns a mid-run checkpoint of the mcs client
// (budget-interrupted, so the frontier is non-trivial).
func interruptedCheckpoint(t *testing.T) *core.Checkpoint {
	t.Helper()
	mcs := locks.ByName("mcs")
	c := core.New(mm.WMM)
	c.Budget = core.Budget{MaxGraphs: 60}
	res := c.Run(harness.MutexClient(mcs, mcs.DefaultSpec(), 2, 1))
	if res.Verdict != core.Undecided || res.Checkpoint == nil {
		t.Fatalf("expected a budget interrupt, got %v", res.Verdict)
	}
	return res.Checkpoint
}

// TestCheckpointFileAtomicity: the sidecar file round-trips through
// WriteCheckpointFile/LoadCheckpointFile, and an injected write or
// rename failure leaves the previous complete file intact with no temp
// litter — the tmp+rename discipline under fault injection.
func TestCheckpointFileAtomicity(t *testing.T) {
	defer faultinject.Reset()
	ck := interruptedCheckpoint(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	if err := core.WriteCheckpointFile(path, ck); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := core.LoadCheckpointFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !bytes.Equal(got.Encode(), ck.Encode()) {
		t.Fatal("file round-trip changed the checkpoint bytes")
	}

	before, _ := os.ReadFile(path)
	for _, spec := range []string{"ckpt.write:err", "ckpt.rename:err"} {
		if err := faultinject.Configure(spec); err != nil {
			t.Fatalf("configure %q: %v", spec, err)
		}
		if err := core.WriteCheckpointFile(path, ck); err == nil {
			t.Fatalf("%s: injected fault did not surface", spec)
		}
		faultinject.Reset()
		after, _ := os.ReadFile(path)
		if !bytes.Equal(before, after) {
			t.Fatalf("%s: failed write disturbed the existing checkpoint", spec)
		}
		tmps, _ := filepath.Glob(filepath.Join(dir, ".ckpt-*"))
		if len(tmps) != 0 {
			t.Fatalf("%s: temp files left behind: %v", spec, tmps)
		}
		if _, err := core.LoadCheckpointFile(path); err != nil {
			t.Fatalf("%s: previous checkpoint no longer loads: %v", spec, err)
		}
	}
}

// TestCheckpointDecodeRejectsDamage: a torn or bit-flipped checkpoint
// file must be refused entirely — resuming from a partial frontier
// could silently skip the violating branch, so there is no salvage
// path, only the cold-run fallback.
func TestCheckpointDecodeRejectsDamage(t *testing.T) {
	data := interruptedCheckpoint(t).Encode()
	if _, err := core.DecodeCheckpoint(data); err != nil {
		t.Fatalf("pristine image must decode: %v", err)
	}
	// Truncations: every short prefix (sampled, plus both ends) fails.
	for cut := 0; cut < len(data); cut += 1 + cut/16 {
		if _, err := core.DecodeCheckpoint(data[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded", cut, len(data))
		}
	}
	if _, err := core.DecodeCheckpoint(data[:len(data)-1]); err == nil {
		t.Fatal("dropping the final byte decoded")
	}
	// Bit flips: framing damage fails the magic or length checks,
	// payload damage fails the CRC.
	for off := 0; off < len(data); off += 1 + off/32 {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[off] ^= bit
			if _, err := core.DecodeCheckpoint(mut); err == nil {
				t.Fatalf("flipping bit %#x at offset %d decoded", bit, off)
			}
		}
	}
	// Trailing garbage after a complete image.
	if _, err := core.DecodeCheckpoint(append(append([]byte(nil), data...), data[:24]...)); err == nil {
		t.Fatal("image with trailing records decoded")
	}
}

// TestResumeIdentityValidation: a checkpoint resumes only against the
// (model, program) pair it was taken from; anything else is an Error,
// not a silent wrong answer. Checkpointing also refuses the test-only
// legacy dedup path, whose string keys a checkpoint cannot carry.
func TestResumeIdentityValidation(t *testing.T) {
	ck := interruptedCheckpoint(t)
	mcs := locks.ByName("mcs")
	ticket := locks.ByName("ticket")
	prog := harness.MutexClient(mcs, mcs.DefaultSpec(), 2, 1)

	c := core.New(mm.SC)
	c.Resume = ck
	if res := c.Run(prog); res.Verdict != core.Error {
		t.Fatalf("resume under the wrong model: %v, want error", res.Verdict)
	}
	c = core.New(mm.WMM)
	c.Resume = ck
	if res := c.Run(harness.MutexClient(ticket, ticket.DefaultSpec(), 2, 1)); res.Verdict != core.Error {
		t.Fatalf("resume against the wrong program: %v, want error", res.Verdict)
	}
	c = core.New(mm.WMM)
	c.LegacyDedup = true
	c.Budget = core.Budget{MaxGraphs: 10}
	if res := c.Run(prog); res.Verdict != core.Error {
		t.Fatalf("budgeted legacy-dedup run: %v, want error", res.Verdict)
	}
	// The happy path still works after the refusals.
	c = core.New(mm.WMM)
	c.Resume = ck
	if res := c.Run(prog); res.Verdict != core.OK {
		t.Fatalf("valid resume: %v, want ok", res.Verdict)
	}
}

// TestPeriodicCheckpointSink: with an interval set, a run hands
// checkpoints to the sink while exploring, and any one of them resumes
// to the uninterrupted run's verdict and enumeration — the property
// the crash-recovery path depends on.
func TestPeriodicCheckpointSink(t *testing.T) {
	mcs := locks.ByName("mcs")
	prog := harness.MutexClient(mcs, mcs.DefaultSpec(), 2, 1)
	for _, workers := range []int{1, 4} {
		base := runAt(t, mm.WMM, prog, workers)
		var mu sync.Mutex
		var snaps []*core.Checkpoint
		c := core.New(mm.WMM)
		c.WorkersPerRun = workers
		c.CheckpointInterval = time.Nanosecond
		c.CheckpointSink = func(ck *core.Checkpoint) error {
			mu.Lock()
			snaps = append(snaps, ck)
			mu.Unlock()
			return nil
		}
		res := c.Run(prog)
		if res.Verdict != base.Verdict || res.Stats.Executions != base.Stats.Executions {
			t.Fatalf("workers=%d: snapshotting changed the run: %v/%d executions, want %v/%d",
				workers, res.Verdict, res.Stats.Executions, base.Verdict, base.Stats.Executions)
		}
		if len(snaps) == 0 {
			t.Fatalf("workers=%d: sink never received a checkpoint", workers)
		}
		for _, ck := range []*core.Checkpoint{snaps[0], snaps[len(snaps)-1]} {
			dec, err := core.DecodeCheckpoint(ck.Encode())
			if err != nil {
				t.Fatalf("workers=%d: periodic checkpoint does not round-trip: %v", workers, err)
			}
			c2 := core.New(mm.WMM)
			c2.WorkersPerRun = workers
			c2.Resume = dec
			res2 := c2.Run(prog)
			if res2.Verdict != base.Verdict || res2.Stats.Executions != base.Stats.Executions || res2.Stats.Blocked != base.Stats.Blocked {
				t.Fatalf("workers=%d: resuming a periodic checkpoint diverged: %v/%d executions, want %v/%d",
					workers, res2.Verdict, res2.Stats.Executions, base.Verdict, base.Stats.Executions)
			}
		}
	}
}

// TestCancelCheckpoint: a cancellation with CheckpointOnCancel set
// drains into an Undecided-with-checkpoint — the SIGINT path — and the
// resumed run finishes with exactly the uninterrupted statistics. The
// cancel is triggered from the first periodic sink call and lands at
// the next multiple of the 256-pop cancellation cadence, so the run
// must comfortably exceed 256 pops: the three-thread mcs client pops
// ~2.3k states even with symmetry reduction collapsing its 3! thread
// orbits.
func TestCancelCheckpoint(t *testing.T) {
	mcs := locks.ByName("mcs")
	prog := harness.MutexClient(mcs, mcs.DefaultSpec(), 3, 1)
	base := runAt(t, mm.WMM, prog, 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := core.New(mm.WMM)
	c.CheckpointOnCancel = true
	c.CheckpointInterval = time.Nanosecond
	c.CheckpointSink = func(*core.Checkpoint) error { cancel(); return nil }
	res := c.RunCtx(ctx, prog)
	if res.Verdict != core.Undecided || res.Checkpoint == nil {
		t.Fatalf("canceled run: %v (checkpoint %v), want undecided with checkpoint", res.Verdict, res.Checkpoint != nil)
	}
	if res.Stats.Popped == 0 || res.Stats.Popped >= base.Stats.Popped {
		t.Fatalf("cancellation landed outside the run: %d pops of %d", res.Stats.Popped, base.Stats.Popped)
	}

	c2 := core.New(mm.WMM)
	c2.Resume = res.Checkpoint
	res2 := c2.Run(prog)
	if res2.Verdict != core.OK || res2.Stats != base.Stats {
		t.Fatalf("resume after cancel diverged: %v %+v, want ok %+v", res2.Verdict, res2.Stats, base.Stats)
	}
}

// TestBudgetDuration: the wall-clock budget interrupts a long run and
// the result still resumes to the correct verdict — the budget kind the
// suite flags actually use.
func TestBudgetDuration(t *testing.T) {
	mcs := locks.ByName("mcs")
	prog := harness.MutexClient(mcs, mcs.DefaultSpec(), 2, 1)
	base := runAt(t, mm.WMM, prog, 1)
	res, _ := runSegmented(t, mm.WMM, prog, 1, core.Budget{MaxDuration: time.Microsecond}, false)
	if res.Verdict != base.Verdict || res.Stats != base.Stats {
		t.Fatalf("duration-segmented run diverged: %v %+v, want %v %+v",
			res.Verdict, res.Stats, base.Verdict, base.Stats)
	}
}

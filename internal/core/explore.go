package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// Checker is an AMC instance. The zero value is not usable; use New.
type Checker struct {
	// Model is the memory model to verify against.
	Model mm.Model
	// MaxGraphs bounds the number of popped exploration states; the run
	// fails with Verdict Error when exceeded (guards against programs
	// outside AMC's fragment).
	MaxGraphs int
	// MaxEvents bounds the size of a single execution graph.
	MaxEvents int
	// WorkersPerRun is the number of workers sharing this run's
	// exploration frontier. 1 (or less) selects the historical strictly
	// sequential DFS, which stops at the first violation it reaches.
	// With more workers the frontier becomes a work-graph: each worker
	// executes its own deque LIFO and steals FIFO from the others, the
	// visited set arbitrates expansions, and the run explores to
	// completion with deterministic result merging — the verdict always
	// agrees with the sequential DFS, and execution count and
	// counterexample are identical at any worker count above 1 (the
	// sequential explorer's early exit makes its violation-run counts a
	// partial search instead; see Stats for which counters are
	// schedule-independent).
	WorkersPerRun int
	// DisableDedup turns off the visited-graph set (ablation: the
	// closure-dropping revisit scheme re-derives some graphs along
	// multiple paths; the fingerprint set prunes them and guarantees
	// termination; disabling it shows the duplication cost).
	DisableDedup bool
	// LegacyDedup keys the visited set on canonical fingerprint strings
	// instead of 128-bit structural hashes. Test-only: the differential
	// tests run both paths and assert identical exploration (same pop
	// counts, same verdicts); the hashed path is strictly faster.
	LegacyDedup bool
	// NoSymmetry disables thread-symmetry reduction even for programs
	// that declare symmetric thread groups (vprog.Program.SymGroups):
	// every state keeps its raw structural key instead of the canonical
	// (minimal-over-permutations) one, so symmetric siblings are explored
	// separately. The escape hatch exists as the differential oracle —
	// the symmetry tests assert that both settings reach the same verdict
	// over the whole corpus — and as a diagnostic when a symmetry
	// declaration is suspected wrong. Symmetry is also off whenever the
	// dedup spine it keys is off (DisableDedup, LegacyDedup).
	NoSymmetry bool

	// Budget bounds this run segment (wall clock, popped graphs, heap
	// bytes). A budget hit drains the workers cleanly — every running
	// step completes and publishes its children — and the run returns
	// an Undecided result carrying a Checkpoint of the remaining
	// frontier instead of losing the work. Zero means unbounded.
	Budget Budget
	// Resume seeds the run from a checkpoint instead of the program's
	// root graph: the frontier, visited-set keys, cumulative counters,
	// and best violation so far are restored, and the run continues to
	// exactly the verdict an uninterrupted run would reach. The
	// checkpoint's Model and Prog identity are validated here; Epoch is
	// the caller's to check (see Checkpoint).
	Resume *Checkpoint
	// CheckpointInterval, together with CheckpointSink, enables
	// periodic snapshots: at most every interval, one worker briefly
	// quiesces the others (they finish their current state and pause
	// between items), captures the frontier, and hands the Checkpoint
	// to the sink. Zero disables periodic snapshots; budget-hit and
	// cancellation checkpoints do not need it.
	CheckpointInterval time.Duration
	// CheckpointSink receives periodic snapshots. It runs outside the
	// quiesce window (encoding and file I/O do not stall the workers)
	// but on a worker goroutine; errors are the sink's to report.
	CheckpointSink func(*Checkpoint) error
	// CheckpointOnCancel turns a context cancellation into the same
	// drain-and-checkpoint path as a budget hit: the run returns
	// Undecided with a Checkpoint instead of a bare Canceled. This is
	// how SIGINT becomes "checkpoint, then exit".
	CheckpointOnCancel bool

	// pool, when set by Pool.RunAll, lets the run borrow idle pool
	// slots (up to WorkersPerRun) for intra-run work stealing instead
	// of spawning private workers.
	pool *Pool
}

// New returns a Checker for the given memory model with default limits.
func New(model mm.Model) *Checker {
	return &Checker{Model: model, MaxGraphs: 2_000_000, MaxEvents: 4096}
}

// ExploreState is one unit of work in the exploration work-graph: a
// partial execution graph plus the revisit bookkeeping — at most one
// forced rf choice created by a write→read revisit, applied to the next
// event of the read's thread before normal branching resumes. Pending
// operations are not stored: AMC is stateless, so any worker
// reconstructs them by replaying the program against the graph. An
// ExploreState is therefore self-contained — whichever worker pops it
// (its producer, or a thief) executes it identically.
type ExploreState struct {
	g         *graph.Graph
	hasForced bool
	forcedR   graph.EventID
	forcedW   graph.EventID

	// snap, when non-nil, shares the producing step's replay results
	// with this state: the graph extends the producer's by exactly one
	// event of thread changed, and a thread's replay depends only on
	// its own events and rf entries, so every other thread's result
	// carries over verbatim and the pop re-replays one thread instead
	// of all of them. Revisit states (whose restricted graphs differ in
	// many threads) never carry a snapshot.
	snap    *replaySnap
	changed int32
}

// replaySnap is an immutable copy of one step's replay results, shared
// by all children that step pushes. The spans are deep-copied out of
// the worker's pooled replay scratch (which the next pop overwrites);
// the inner Reads slices and pending pointers are freshly allocated
// per replay and safe to share.
type replaySnap struct {
	res []replayResult
}

// snapshot captures rres for sharing with pushed children. Threads
// whose results came verbatim out of the producing state's own
// snapshot (from, every thread but changed) already hold immutable
// deep-copied spans and are aliased; only freshly replayed threads'
// spans — which point into the worker's pooled scratch — are copied
// out.
func snapshot(rres []replayResult, from *replaySnap, changed int32) *replaySnap {
	s := &replaySnap{res: make([]replayResult, len(rres))}
	copy(s.res, rres)
	for i := range s.res {
		if from != nil && i != int(changed) {
			continue // aliased from the parent snapshot, already immutable
		}
		if sp := s.res[i].spans; len(sp) > 0 {
			s.res[i].spans = append([]iterRec(nil), sp...)
		}
	}
	return s
}

// keyLegacy is the historical string dedup key: the canonical graph
// fingerprint plus a fmt-built forced-rf suffix. Kept only for the
// differential tests (Checker.LegacyDedup).
func (it ExploreState) keyLegacy() string {
	k := it.g.Fingerprint()
	if it.hasForced {
		k += fmt.Sprintf("|F%v<-%v", it.forcedR, it.forcedW)
	}
	return k
}

// key returns the 128-bit structural dedup key: the graph's hash with
// any forced (read, write) revisit pair folded in — no strings, no fmt,
// two words per state.
func (it ExploreState) key() graph.Hash128 {
	k := it.g.Fingerprint128()
	if it.hasForced {
		h := graph.NewHasher128()
		h.Word(k[0])
		h.Word(k[1])
		h.Word(uint64(uint32(it.forcedR.Thread))<<32 | uint64(uint32(it.forcedR.Index)))
		h.Word(uint64(uint32(it.forcedW.Thread))<<32 | uint64(uint32(it.forcedW.Index)))
		k = h.Sum()
	}
	return k
}

// Run verifies the program: it explores the execution graphs of p under
// c.Model, checking every assertion, the final-state condition, and
// await termination. It returns the first violation found (with a
// counterexample graph) or OK.
func (c *Checker) Run(p *vprog.Program) *Result {
	return c.RunCtx(context.Background(), p)
}

// cancelCheckEvery is how many popped states pass between context
// checks in RunCtx: cheap enough to be invisible, frequent enough that
// a pool short-circuit stops a multi-second run within milliseconds.
const cancelCheckEvery = 256

// RunCtx is Run with cooperative cancellation: when ctx is canceled the
// exploration stops at the next check point and returns a Canceled
// result (no verdict about the program is implied).
func (c *Checker) RunCtx(ctx context.Context, p *vprog.Program) *Result {
	start := time.Now()
	acy0 := graph.AcyclicCountersNow()
	workers := c.WorkersPerRun
	if workers < 1 {
		workers = 1
	}
	x := &exploration{c: c, prog: p, ctx: ctx, single: workers == 1, start: start}
	x.parkCond = sync.NewCond(&x.parkMu)
	if !c.DisableDedup {
		if c.LegacyDedup {
			x.legacy = newLegacyVisited()
		} else {
			x.visited = NewVisitedSet()
			if !c.NoSymmetry {
				// Symmetry reduction rides on the hashed dedup spine: when
				// the program declares (and vprog validates) symmetric
				// thread groups, every state is keyed by its canonical
				// representative and only one member per orbit is expanded.
				x.sym = p.SymSpec()
			}
		}
	}
	x.workers = make([]*explorer, workers)
	for i := range x.workers {
		x.workers[i] = &explorer{x: x, c: c, id: i}
	}

	finish := func(res *Result) *Result {
		if x.visited != nil {
			x.visited.release()
			x.visited = nil
		}
		res.Acyclic = graph.AcyclicCountersNow().Sub(acy0)
		res.Duration = time.Since(start)
		return res
	}

	// Checkpoint-aware runs pin the program identity up front and pay
	// one structural fingerprint for it; plain runs skip all of this.
	ckptable := c.Resume != nil || c.CheckpointSink != nil || c.CheckpointOnCancel || c.Budget.active()
	if ckptable {
		if c.LegacyDedup {
			return finish(&Result{Verdict: Error,
				Err: fmt.Errorf("checkpointing requires the hashed visited set (LegacyDedup is test-only)")})
		}
		x.budgetOn = c.Budget.active()
		x.progFP = p.Fingerprint128()
		if c.CheckpointSink != nil && c.CheckpointInterval > 0 {
			x.snapEvery = int64(c.CheckpointInterval)
			x.lastSnap.Store(start.UnixNano())
		}
	}

	w0 := x.workers[0]
	w0.build()
	if len(w0.threads) == 0 {
		return finish(&Result{
			Verdict: Error,
			Err:     fmt.Errorf("program %q has no threads", p.Name),
		})
	}
	if err := ctx.Err(); err != nil {
		return finish(&Result{Verdict: Canceled, Err: err, Message: "exploration canceled: " + err.Error()})
	}

	if ck := c.Resume; ck != nil {
		if res := x.seedResume(ck); res != nil {
			return finish(res)
		}
		if x.inflight.Load() == 0 {
			// The checkpointed frontier was empty (taken at the instant
			// of drain): the run is already complete — merge what the
			// checkpoint carried.
			x.done.Store(true)
			return finish(x.merge())
		}
	} else {
		g0 := graph.New(len(w0.threads), w0.vars.Inits(), w0.vars.Names())
		x.inflight.Store(1)
		w0.dq.pushTail(ExploreState{g: g0})
		x.queued.Store(1)
	}

	if !x.single {
		if c.pool != nil {
			// Borrow idle pool slots on demand; worker ids 1..n-1 are the
			// borrowable seats.
			x.freeSlots = make([]int, 0, workers-1)
			for id := workers - 1; id >= 1; id-- {
				x.freeSlots = append(x.freeSlots, id)
			}
		} else {
			// Standalone parallel run: staff every seat up front.
			for _, w := range x.workers[1:] {
				x.wg.Add(1)
				go func(w *explorer) {
					defer x.wg.Done()
					w.build()
					x.runWorker(w)
				}(w)
			}
		}
	}

	x.runWorker(w0)
	x.stopAll()
	x.wg.Wait()
	res := x.merge()
	if res.Verdict == Undecided {
		// All workers have exited: every unprocessed state sits in a
		// deque or the overflow queue, and collecting them races with
		// nothing.
		res.Checkpoint = x.buildCheckpoint()
	}
	return finish(res)
}

// seedResume restores a checkpoint into the exploration: identity
// validation, visited keys, cumulative counters, the violation
// front-runner, and the frontier — pushed into worker 0's deque in
// the order whose LIFO pops reproduce the interrupted run's pop
// sequence exactly (which is what keeps the sequential explorer's
// first-violation-in-DFS-order contract intact across segments).
// It returns a non-nil Error result when the checkpoint does not
// belong to this (model, program) pair.
func (x *exploration) seedResume(ck *Checkpoint) *Result {
	if want := x.c.Model.Name(); ck.Model != want {
		return &Result{Verdict: Error, Err: fmt.Errorf(
			"checkpoint was taken under model %q, this run verifies %q", ck.Model, want)}
	}
	if ck.Prog != x.progFP {
		return &Result{Verdict: Error, Err: fmt.Errorf(
			"checkpoint program fingerprint %x does not match this program (%x)", ck.Prog, x.progFP)}
	}
	if ck.Sym != (x.sym != nil) {
		return &Result{Verdict: Error, Err: fmt.Errorf(
			"checkpoint was taken with symmetry reduction %v, this run has it %v (the visited keys are not comparable)",
			ck.Sym, x.sym != nil)}
	}
	x.baseStats = ck.Stats
	x.basePopped = ck.Popped
	if x.visited != nil {
		for _, k := range ck.visited {
			x.visited.InsertNew(k)
		}
	}
	if v := ck.vio; v != nil {
		x.vio = &Result{Verdict: v.verdict, Message: v.message, Witness: v.witness}
		x.vioStamp, x.vioKey = v.stamp, v.key
	}
	w0 := x.workers[0]
	n := 0
	for _, st := range ck.frontier {
		if st.g == nil {
			continue
		}
		if !w0.dq.pushTail(st) {
			x.spill(st)
		}
		n++
	}
	x.inflight.Store(int64(n))
	x.queued.Store(int64(n))
	return nil
}

// step processes one popped exploration state. It returns nil to
// continue (children, if any, buffered in w.childBuf) or the deciding
// Result of this state (violation or internal error) — in which case no
// children were buffered.
func (w *explorer) step(it ExploreState) *Result {
	x := w.x
	w.curPerm = nil
	if !w.c.DisableDedup {
		if w.c.LegacyDedup {
			if !x.legacy.insertNew(it.keyLegacy()) {
				w.stats.Duplicates++
				return nil
			}
		} else {
			if x.sym != nil {
				// Symmetry reduction: dedup on the canonical key — the
				// minimal fingerprint over the declared thread
				// permutations — so an orbit of up to t! relabeled states
				// collapses to whichever member arrives first. curPerm
				// (the relabeling onto the canonical representative) then
				// steers this step's thread choice and witnesses so the
				// explored subtree is the same whichever member that was.
				k, perm, fast, tried := x.sym.Canonicalize(it.g, &w.symSc, it.hasForced, it.forcedR, it.forcedW)
				if !graph.IsIdentityPerm(perm) {
					w.stats.Canonicalized++
					w.curPerm = perm
				}
				if fast {
					w.stats.CanonFast++
				} else {
					w.stats.CanonRefined++
				}
				w.stats.CanonPruned += x.sym.PermCount() - tried
				w.lastKey = k
			} else {
				w.lastKey = it.key()
			}
			if !x.visited.InsertNew(w.lastKey) {
				w.stats.Duplicates++
				return nil
			}
		}
	}

	// consM(G): discard graphs inconsistent with the memory model
	// before spending replays on them — with the closure-free
	// acyclicity engine the consistency verdict is usually cheaper than
	// reconstructing three program states, and an inconsistent graph
	// needs neither.
	if !w.c.Model.Consistent(it.g) {
		w.stats.Inconsist++
		return nil
	}

	// Replay every thread against the graph (reconstructing the program
	// state, Fig. 6), collecting pending ops and await iteration
	// records. A state carrying its producer's replay snapshot only
	// re-replays the one thread its extension changed.
	if w.rres == nil {
		w.rres = make([]replayResult, len(w.threads))
		w.rmems = make([]replayMem, len(w.threads))
	}
	rres := w.rres
	for t, fn := range w.threads {
		if it.snap != nil && t != int(it.changed) {
			rres[t] = it.snap.res[t]
		} else {
			rres[t] = replayThread(it.g, t, fn, w.vars.Vars, &w.rmems[t])
		}
		if rres[t].err != nil {
			return &Result{Verdict: Error, Err: rres[t].err}
		}
	}
	// ¬W(G): discard wasteful graphs (Def. 2).
	if wasteful(it.g, rres) {
		w.stats.Wasteful++
		return nil
	}
	// Retry-free-twin collapse: discard graphs in which an await
	// succeeded after read-only failed iterations (see collapsedRetry).
	if collapsedRetry(rres) {
		w.stats.Collapsed++
		return nil
	}

	// A pending forced rf (from a revisit) is applied before anything
	// else: the designated thread takes its step with the chosen source.
	if it.hasForced {
		t := it.forcedR.Thread
		p := rres[t].pending
		if p == nil || (p.kind != opRead && p.kind != opUpdate) ||
			len(it.g.Threads[t]) != it.forcedR.Index {
			return &Result{Verdict: Error,
				Err: fmt.Errorf("revisit target %v is not the next read of its thread", it.forcedR)}
		}
		w.extendReadLike(it.g, t, p, []graph.RF{graph.FromW(it.forcedW)}, false, snapshot(rres, it.snap, it.changed))
		return nil
	}

	// Collect runnable threads. Under a non-identity canonicalization the
	// chosen thread is the one with the minimal canonical slot rather
	// than the minimal thread id: two states that are relabelings of each
	// other then extend the *same canonical* thread, so their subtrees
	// stay relabelings of each other and the reduction holds inductively.
	// (Any two argmin permutations differ by an automorphism of the
	// canonical graph, which makes this choice orbit-stable.)
	runnable := -1
	anyBlocked := false
	allFinished := true
	for t := range w.threads {
		if rres[t].blocked {
			anyBlocked = true
			allFinished = false
			continue
		}
		if rres[t].finished {
			continue
		}
		allFinished = false
		if runnable < 0 || (w.curPerm != nil && w.curPerm[t] < w.curPerm[runnable]) {
			runnable = t
		}
	}

	if runnable < 0 {
		if anyBlocked {
			// TG = ∅ with ⊥ reads present: a potential AT violation. It is
			// real iff some ⊥ read cannot be resolved by any consistent,
			// non-wasteful write (§1.3).
			if id, ok := w.unresolvableBottom(it.g, rres); ok {
				if w.curPerm != nil {
					id = x.sym.MapID(w.curPerm, id)
				}
				return &Result{
					Verdict: ATViolation,
					Message: fmt.Sprintf("await of thread T%d never terminates: read %v has no remaining write to observe", id.Thread, id),
					Witness: w.canonWitness(it.g),
				}
			}
			w.stats.Blocked++
			return nil
		}
		if allFinished {
			w.stats.Executions++
			if w.final != nil {
				ok, msg := w.final(func(v *vprog.Var) uint64 {
					return it.g.FinalVal(graph.Loc(v.ID))
				})
				if !ok {
					return &Result{
						Verdict: SafetyViolation,
						Message: "final-state check failed: " + msg,
						Witness: w.canonWitness(it.g),
					}
				}
			}
		}
		return nil
	}

	// Extend with the next instruction of the chosen thread.
	p := rres[runnable].pending
	switch p.kind {
	case opError:
		e := w.mkEvent(it.g, runnable, p)
		g2 := it.g.Clone()
		g2.Append(e)
		return &Result{
			Verdict: SafetyViolation,
			Message: "assertion failed: " + p.msg,
			Witness: w.canonWitness(g2),
		}
	case opFence:
		g2 := it.g.Clone()
		e := w.mkEvent(g2, runnable, p)
		g2.Append(e)
		g2.NoteExtended(it.g, e)
		w.push(ExploreState{g: g2, snap: snapshot(rres, it.snap, it.changed), changed: int32(runnable)})
	case opWrite:
		w.extendWrite(it.g, runnable, p, snapshot(rres, it.snap, it.changed))
	case opRead, opUpdate:
		choices := w.rfbuf[:0]
		for _, wr := range it.g.Mo[p.loc] {
			choices = append(choices, graph.FromW(wr))
		}
		w.rfbuf = choices
		withBottom := p.inAwait && w.bottomCandidate(it.g, p, rres[runnable].spans)
		w.extendReadLike(it.g, runnable, p, choices, withBottom, snapshot(rres, it.snap, it.changed))
	}
	return nil
}

// bottomCandidate reports whether the pending await read could, as a ⊥
// read, ever anchor an await-termination witness — the ⊥ sibling is
// pushed only then. A stuck graph reports a violation only when every
// blocked ⊥ read is unresolvable (unresolvableBottom), and a ⊥ read is
// unresolvable only if *no* write can serve it consistently outside the
// W(G) filter. Reading the mo-maximal write at the trailing position of
// a blocked thread is always consistent (resolveWith resolves updates
// degraded, so there is no fr out of the read, and no later event can
// ever become hb-ordered before it), so the only way a ⊥ read can be
// unresolvable is for the mo-maximal write to be the *forbidden* source
// — the one its counterpart read in the previous failed iteration,
// reachable only when the read sits at the last position of iteration
// ≥ 1 with the iteration prefix rf-equal to the previous iteration
// (atcheck.resolvable). And since later writes can only either leave
// the current mo-maximum in place or supersede it with a write that is
// not the forbidden source, a read whose previous counterpart is not
// the mo-maximum now stays resolvable in every extension. ⊥ siblings
// anywhere else — iteration 0, interior positions, diverged prefixes,
// superseded counterparts — head subtrees whose every stuck descendant
// is discarded as resolvable, so they are never pushed.
//
// This gate is also why await retry chains cannot starve the other
// threads: the extension scheduler only switches threads at a block,
// and a spinning thread's monotone retry chain (coherence forces its
// reads up mo; wasteful() kills exact repeats) always funnels into the
// caught-up configuration — prefix repeated, counterpart mo-maximal —
// where the gate opens, the ⊥ blocks the thread, and the remaining
// threads run (their future writes then reach the chain's reads through
// revisits, exactly as they reach a bounded encoding's).
func (w *explorer) bottomCandidate(g *graph.Graph, p *pending, spans []iterRec) bool {
	if p.awaitIter == 0 {
		return false // no previous iteration: always resolvable
	}
	var cur, prev *iterRec
	for i := range spans {
		s := &spans[i]
		if s.Seq != p.awaitSeq {
			continue
		}
		switch s.Iter {
		case p.awaitIter:
			cur = s
		case p.awaitIter - 1:
			prev = s
		}
	}
	if cur == nil || prev == nil || !prev.Complete || !prev.Failed {
		return true // defensive: keep the ⊥ branch when spans are surprising
	}
	pos := len(cur.Reads) // the pending read's position once added
	if pos != len(prev.Reads)-1 {
		return false
	}
	for k := 0; k < pos; k++ {
		if g.RfOf(cur.Reads[k]) != g.RfOf(prev.Reads[k]) {
			return false
		}
	}
	mo := g.Mo[p.loc]
	if len(mo) == 0 {
		return true
	}
	return g.RfOf(prev.Reads[pos]) == graph.FromW(mo[len(mo)-1])
}

// canonWitness maps a violating graph onto the canonical representative
// of its orbit when the popped state was admitted under a non-identity
// relabeling. Reported counterexamples are thereby independent of which
// orbit member the schedule happened to reach — the determinism
// contract (same counterexample at any worker count) extends unchanged
// to symmetric programs.
func (w *explorer) canonWitness(g *graph.Graph) *graph.Graph {
	if w.curPerm == nil {
		return g
	}
	return w.x.sym.ApplyPerm(g, w.curPerm)
}

// mkEvent builds the event for pending op p as the next event of thread
// t in g (value fields filled by the caller for read-likes).
func (w *explorer) mkEvent(g *graph.Graph, t int, p *pending) *graph.Event {
	var kind graph.Kind
	switch p.kind {
	case opRead:
		kind = graph.KRead
	case opWrite:
		kind = graph.KWrite
	case opUpdate:
		kind = graph.KUpdate
	case opFence:
		kind = graph.KFence
	case opError:
		kind = graph.KError
	}
	seq, iter := -1, 0
	if p.inAwait {
		seq, iter = p.awaitSeq, p.awaitIter
	}
	return &graph.Event{
		ID:        graph.EventID{Thread: t, Index: len(g.Threads[t])},
		Kind:      kind,
		Mode:      p.mode,
		Loc:       p.loc,
		Val:       p.val,
		Msg:       p.msg,
		AwaitSeq:  seq,
		AwaitIter: iter,
	}
}

// push buffers a child state, guarding graph size. Children publish to
// the worker's deque only after the whole step finishes
// (flushChildren), so thieves never observe a graph its producer is
// still touching — which matters for writes as well as reads: the
// producer clones a just-pushed graph again for revisit generation,
// and Graph.Clone mutates its receiver (it clears the rf-row ownership
// bits on both sides). The deferred publication is the happens-before
// edge that keeps those mutations private.
func (w *explorer) push(it ExploreState) {
	if it.g.NumEvents() > w.c.MaxEvents {
		// Guard against runaway growth; the MaxGraphs guard will fire if
		// the state space is genuinely unbounded — simply refuse to grow
		// this branch further.
		return
	}
	w.stats.Pushed++
	w.childBuf = append(w.childBuf, it)
}

// extendWrite adds a plain write: one child per modification-order
// placement, each followed by its revisit children. snap is the
// step's shared replay snapshot for the children (revisit children,
// whose graphs are restrictions, never carry it).
func (w *explorer) extendWrite(g *graph.Graph, t int, p *pending, snap *replaySnap) {
	npos := len(g.Mo[p.loc])
	for pos := 1; pos <= npos; pos++ {
		g2 := g.Clone()
		e := w.mkEvent(g2, t, p)
		g2.Append(e)
		g2.InsertMo(p.loc, e.ID, pos)
		g2.NoteExtended(g, e)
		w.push(ExploreState{g: g2, snap: snap, changed: int32(t)})
		w.pushRevisits(g2, e)
	}
}

// extendReadLike adds a read or update with each rf choice in choices
// (plus a ⊥ branch when the read sits in an await), handling update
// degradation, atomic mo placement, and revisits by the update's write
// part. snap as in extendWrite.
func (w *explorer) extendReadLike(g *graph.Graph, t int, p *pending, choices []graph.RF, withBottom bool, snap *replaySnap) {
	for _, rf := range choices {
		g2 := g.Clone()
		e := w.mkEvent(g2, t, p)
		e.RVal = g2.WriteVal(rf.W)
		if p.kind == opUpdate {
			wv, degr := p.compute(e.RVal)
			e.Degraded = degr
			if !degr {
				e.Val = wv
			}
		}
		g2.Append(e)
		g2.SetRF(e.ID, rf)
		if p.kind == opUpdate && !e.Degraded {
			src := g2.MoIndex(p.loc, rf.W)
			if src < 0 {
				continue // source vanished (cannot happen)
			}
			g2.InsertMo(p.loc, e.ID, src+1)
			g2.NoteExtended(g, e)
			w.push(ExploreState{g: g2, snap: snap, changed: int32(t)})
			w.pushRevisits(g2, e)
			continue
		}
		g2.NoteExtended(g, e)
		w.push(ExploreState{g: g2, snap: snap, changed: int32(t)})
	}
	if withBottom {
		// ⊥ branch: the potential AT violation marker. Pushed last so the
		// DFS examines it first, surfacing hangs early. A ⊥ update is
		// degraded — it read nothing and writes nothing, so it must not
		// claim a place in mo.
		g2 := g.Clone()
		e := w.mkEvent(g2, t, p)
		if p.kind == opUpdate {
			e.Degraded = true
		}
		g2.Append(e)
		g2.SetRF(e.ID, graph.BottomRF)
		g2.NoteExtended(g, e)
		w.push(ExploreState{g: g2, snap: snap, changed: int32(t)})
	}
}

// pushRevisits generates the write→read revisit children for the
// freshly added write-like event wv in g2 (the CalcRevisits of Fig. 6):
// each same-location read r not in wv's porf prefix may instead read
// from wv; the graph is restricted to the events added before r plus
// wv's porf prefix, and r's re-addition is forced to read from wv.
func (w *explorer) pushRevisits(g2 *graph.Graph, wv *graph.Event) {
	porf := g2.PorfPrefix(wv.ID)
	// Same-location reads in (thread, index) order — the iteration
	// ReadsOf would return, without materializing the slice per write.
	for _, revs := range g2.Threads {
		for _, rdEv := range revs {
			if !rdEv.IsReadLike() || rdEv.Loc != wv.Loc {
				continue
			}
			w.pushRevisit(g2, wv, porf, rdEv)
		}
	}
	porf.Release()
}

// pushRevisit generates the revisit child (if any) for one candidate
// read rdEv against the freshly added write wv.
func (w *explorer) pushRevisit(g2 *graph.Graph, wv *graph.Event, porf *graph.EventSet, rdEv *graph.Event) {
	rd := rdEv.ID
	if rd == wv.ID || porf.Has(rdEv) {
		return
	}
	if g2.RfOf(rd) == graph.FromW(wv.ID) {
		return
	}
	rstamp := rdEv.Stamp
	keep := graph.NewEventSetPooled(g2.NextStamp)
	defer keep.Release()
	for _, evs := range g2.Threads {
		for _, e := range evs {
			if e.Stamp < rstamp || porf.Has(e) || e.ID == wv.ID {
				keep.Add(e)
			}
		}
	}
	keep.Remove(rdEv)
	// Closure-drop: a kept read whose rf source was dropped cannot
	// keep its value; truncate its thread there and iterate.
	for changed := true; changed; {
		changed = false
		for _, evs := range g2.Threads {
			alive := true
			for _, e := range evs {
				if !keep.Has(e) {
					alive = false
					continue
				}
				if !alive {
					keep.Remove(e)
					changed = true
					continue
				}
				if e.IsReadLike() {
					rf := g2.RfOf(e.ID)
					if !rf.Bottom && !rf.W.IsInit() && !keep.Has(g2.Event(rf.W)) {
						keep.Remove(e)
						alive = false
						changed = true
					}
				}
			}
		}
	}
	if !keep.Has(wv) {
		return // the new write itself was dropped: nothing to revisit
	}
	// r must be re-addable as the next event of its thread.
	pfx := 0
	for _, e := range g2.Threads[rd.Thread] {
		if !keep.Has(e) {
			break
		}
		pfx++
	}
	if pfx != rd.Index {
		return
	}
	g3 := g2.Clone()
	g3.RestrictTo(keep)
	w.stats.Revisits++
	w.push(ExploreState{g: g3, hasForced: true, forcedR: rd, forcedW: wv.ID})
}

// wasteful implements W(G) (Def. 2), generalized to multi-operation
// iterations: some await's reads (position by position — loads and
// updates alike) observe the same rf vector in two consecutive complete
// iterations, the first of which failed. Thread bodies are
// deterministic in the values their reads return, and rf-equal reads
// return equal values, so the second iteration retraces the first —
// same branches, same (value-identical) owned stores — and under the
// Bounded-Effect contracts it cannot have changed what any other
// thread observes: the execution is a longer witness of a behavior a
// shorter graph already covers. A successful value-changing update in
// iteration two is impossible here — it would sit mo-adjacent to
// iteration one's update on the same rf source, which atomicity
// (checked in Model.Consistent before this filter) already rules out.
// Iterations of unequal read counts never compare equal: determinism
// again — a same-rf prefix replays identically, so the counts could
// not diverge.
// collapsedRetry implements the retry-free-twin collapse, the reduction
// that makes await encodings of CAS loops cheaper than their bounded
// unrollings: a graph in which some await *succeeded* at iteration
// k > 0 after failed iterations that performed no store and no
// value-changing update is redundant and pruned.
//
// Soundness: the failed iterations contributed only read events.
// Removing read events from a consistent graph keeps it consistent —
// reads only *add* constraints (rf, fr, CoRR edges); no axiom demands
// their presence — so the graph in which the await takes its successful
// rf vector at iteration 0 directly is also consistent and exhibits the
// identical behavior: the same writes with the same mo, the same values
// flowing into every later read, the same assertion valuations and
// final state. That twin is explored in the sibling branch where the
// await's first read already took the success source (or is steered
// onto it by a revisit once the source write is added), so every
// descendant of the collapsed graph is a behavioral duplicate of one of
// the twin's descendants. The collapse must not fire when a failed
// iteration wrote: an AwaitDo retry may store to owned locations (a
// Treiber push re-links its node each attempt), and those stores sit in
// mo where later reads of other threads may branch onto them — the
// retry-free twin simply does not contain them, so such graphs are kept
// and explored in full.
//
// Await-termination analysis is unaffected: the collapse fires only
// when an iteration succeeds, so the failed-iteration chains that feed
// the ⊥ analysis — and the G∞* witnesses at their ends, where no
// iteration ever succeeds — are never touched.
func collapsedRetry(rres []replayResult) bool {
	for _, res := range rres {
		seq := -1
		wrote := false
		for i := range res.spans {
			s := &res.spans[i]
			if s.Seq != seq {
				seq, wrote = s.Seq, false
			}
			if !s.Complete {
				continue
			}
			if s.Failed {
				wrote = wrote || s.Wrote
				continue
			}
			if s.Iter > 0 && !wrote {
				return true
			}
		}
	}
	return false
}

func wasteful(g *graph.Graph, rres []replayResult) bool {
	for _, res := range rres {
		spans := res.spans
		for i := 0; i+1 < len(spans); i++ {
			a, b := spans[i], spans[i+1]
			if a.Seq != b.Seq || b.Iter != a.Iter+1 {
				continue
			}
			if !a.Complete || !a.Failed || !b.Complete {
				continue
			}
			if len(a.Reads) != len(b.Reads) {
				continue
			}
			same := true
			for k := range a.Reads {
				if g.RfOf(a.Reads[k]) != g.RfOf(b.Reads[k]) {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
	}
	return false
}

package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// Checker is an AMC instance. The zero value is not usable; use New.
type Checker struct {
	// Model is the memory model to verify against.
	Model mm.Model
	// MaxGraphs bounds the number of popped exploration states; the run
	// fails with Verdict Error when exceeded (guards against programs
	// outside AMC's fragment).
	MaxGraphs int
	// MaxEvents bounds the size of a single execution graph.
	MaxEvents int
	// DisableDedup turns off the visited-graph set (ablation: the
	// closure-dropping revisit scheme re-derives some graphs along
	// multiple paths; the fingerprint set prunes them and guarantees
	// termination; disabling it shows the duplication cost).
	DisableDedup bool
	// LegacyDedup keys the visited set on canonical fingerprint strings
	// instead of 128-bit structural hashes. Test-only: the differential
	// tests run both paths and assert identical exploration (same pop
	// counts, same verdicts); the hashed path is strictly faster.
	LegacyDedup bool
}

// New returns a Checker for the given memory model with default limits.
func New(model mm.Model) *Checker {
	return &Checker{Model: model, MaxGraphs: 2_000_000, MaxEvents: 4096}
}

// item is one exploration state: a partial execution graph, plus at most
// one forced rf choice created by a revisit (applied to the next event
// of the read's thread before normal branching resumes).
type item struct {
	g         *graph.Graph
	hasForced bool
	forcedR   graph.EventID
	forcedW   graph.EventID
}

// keyLegacy is the historical string dedup key: the canonical graph
// fingerprint plus a fmt-built forced-rf suffix. Kept only for the
// differential tests (Checker.LegacyDedup).
func (it item) keyLegacy() string {
	k := it.g.Fingerprint()
	if it.hasForced {
		k += fmt.Sprintf("|F%v<-%v", it.forcedR, it.forcedW)
	}
	return k
}

// key returns the 128-bit structural dedup key: the graph's hash with
// any forced (read, write) revisit pair folded in — no strings, no fmt,
// two words per state.
func (it item) key() graph.Hash128 {
	k := it.g.Fingerprint128()
	if it.hasForced {
		h := graph.NewHasher128()
		h.Word(k[0])
		h.Word(k[1])
		h.Word(uint64(uint32(it.forcedR.Thread))<<32 | uint64(uint32(it.forcedR.Index)))
		h.Word(uint64(uint32(it.forcedW.Thread))<<32 | uint64(uint32(it.forcedW.Index)))
		k = h.Sum()
	}
	return k
}

// run carries the mutable state of one exploration.
type run struct {
	c       *Checker
	threads []vprog.ThreadFunc
	vars    *vprog.VarSet
	final   vprog.FinalCheck
	stack   []item
	visited map[graph.Hash128]struct{}
	// visitedLegacy replaces visited under Checker.LegacyDedup.
	visitedLegacy map[string]bool
	res           *Result

	// rres and rfbuf are per-step scratch buffers, reused across the
	// millions of popped states of a large run.
	rres  []replayResult
	rfbuf []graph.RF
}

// Run verifies the program: it explores the execution graphs of p under
// c.Model, checking every assertion, the final-state condition, and
// await termination. It returns the first violation found (with a
// counterexample graph) or OK.
func (c *Checker) Run(p *vprog.Program) *Result {
	return c.RunCtx(context.Background(), p)
}

// cancelCheckEvery is how many popped states pass between context
// checks in RunCtx: cheap enough to be invisible, frequent enough that
// a pool short-circuit stops a multi-second run within milliseconds.
const cancelCheckEvery = 256

// RunCtx is Run with cooperative cancellation: when ctx is canceled the
// exploration stops at the next check point and returns a Canceled
// result (no verdict about the program is implied).
func (c *Checker) RunCtx(ctx context.Context, p *vprog.Program) *Result {
	start := time.Now()
	r := &run{c: c, res: &Result{}}
	if c.LegacyDedup {
		r.visitedLegacy = make(map[string]bool)
	} else {
		r.visited = make(map[graph.Hash128]struct{})
	}
	defer func() { r.res.Duration = time.Since(start) }()

	r.vars = &vprog.VarSet{}
	r.threads, r.final = p.Build(r.vars)
	if len(r.threads) == 0 {
		r.res.Err = fmt.Errorf("program %q has no threads", p.Name)
		r.res.Verdict = Error
		return r.res
	}
	g0 := graph.New(len(r.threads), r.vars.Inits(), r.vars.Names())
	r.stack = []item{{g: g0}}

	for len(r.stack) > 0 {
		if r.res.Stats.Popped%cancelCheckEvery == 0 && ctx.Err() != nil {
			r.res.Verdict = Canceled
			r.res.Err = ctx.Err()
			r.res.Message = "exploration canceled: " + ctx.Err().Error()
			return r.res
		}
		if r.res.Stats.Popped >= c.MaxGraphs {
			r.res.Verdict = Error
			r.res.Err = fmt.Errorf("exceeded MaxGraphs=%d (program may violate the Bounded-Length principle)", c.MaxGraphs)
			return r.res
		}
		it := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		r.res.Stats.Popped++
		if done := r.step(it); done {
			return r.res
		}
	}
	r.res.Verdict = OK
	return r.res
}

// step processes one popped exploration state; it returns true when the
// run is finished (violation found or internal error).
func (r *run) step(it item) bool {
	if !r.c.DisableDedup {
		if r.c.LegacyDedup {
			key := it.keyLegacy()
			if r.visitedLegacy[key] {
				r.res.Stats.Duplicates++
				return false
			}
			r.visitedLegacy[key] = true
		} else {
			key := it.key()
			if _, dup := r.visited[key]; dup {
				r.res.Stats.Duplicates++
				return false
			}
			r.visited[key] = struct{}{}
		}
	}

	// Replay every thread against the graph (reconstructing the program
	// state, Fig. 6), collecting pending ops and await iteration records.
	if r.rres == nil {
		r.rres = make([]replayResult, len(r.threads))
	}
	rres := r.rres
	for t, fn := range r.threads {
		rres[t] = replayThread(it.g, t, fn, r.vars.Vars)
		if rres[t].err != nil {
			r.res.Verdict = Error
			r.res.Err = rres[t].err
			return true
		}
	}

	// consM(G): discard graphs inconsistent with the memory model.
	if !r.c.Model.Consistent(it.g) {
		r.res.Stats.Inconsist++
		return false
	}
	// ¬W(G): discard wasteful graphs (Def. 2).
	if wasteful(it.g, rres) {
		r.res.Stats.Wasteful++
		return false
	}

	// A pending forced rf (from a revisit) is applied before anything
	// else: the designated thread takes its step with the chosen source.
	if it.hasForced {
		t := it.forcedR.Thread
		p := rres[t].pending
		if p == nil || (p.kind != opRead && p.kind != opUpdate) ||
			len(it.g.Threads[t]) != it.forcedR.Index {
			r.res.Verdict = Error
			r.res.Err = fmt.Errorf("revisit target %v is not the next read of its thread", it.forcedR)
			return true
		}
		r.extendReadLike(it.g, t, p, []graph.RF{graph.FromW(it.forcedW)}, false)
		return false
	}

	// Collect runnable threads.
	runnable := -1
	anyBlocked := false
	allFinished := true
	for t := range r.threads {
		if rres[t].blocked {
			anyBlocked = true
			allFinished = false
			continue
		}
		if rres[t].finished {
			continue
		}
		allFinished = false
		if runnable < 0 {
			runnable = t
		}
	}

	if runnable < 0 {
		if anyBlocked {
			// TG = ∅ with ⊥ reads present: a potential AT violation. It is
			// real iff some ⊥ read cannot be resolved by any consistent,
			// non-wasteful write (§1.3).
			if id, ok := r.unresolvableBottom(it.g, rres); ok {
				r.res.Verdict = ATViolation
				r.res.Message = fmt.Sprintf("await of thread T%d never terminates: read %v has no remaining write to observe", id.Thread, id)
				r.res.Witness = it.g
				return true
			}
			r.res.Stats.Blocked++
			return false
		}
		if allFinished {
			r.res.Stats.Executions++
			if r.final != nil {
				ok, msg := r.final(func(v *vprog.Var) uint64 {
					return it.g.FinalVal(graph.Loc(v.ID))
				})
				if !ok {
					r.res.Verdict = SafetyViolation
					r.res.Message = "final-state check failed: " + msg
					r.res.Witness = it.g
					return true
				}
			}
		}
		return false
	}

	// Extend with the next instruction of the chosen thread.
	p := rres[runnable].pending
	switch p.kind {
	case opError:
		e := r.mkEvent(it.g, runnable, p)
		g2 := it.g.Clone()
		g2.Append(e)
		r.res.Verdict = SafetyViolation
		r.res.Message = "assertion failed: " + p.msg
		r.res.Witness = g2
		return true
	case opFence:
		g2 := it.g.Clone()
		e := r.mkEvent(g2, runnable, p)
		g2.Append(e)
		g2.NoteExtended(it.g, e)
		r.push(item{g: g2})
	case opWrite:
		r.extendWrite(it.g, runnable, p)
	case opRead, opUpdate:
		choices := r.rfbuf[:0]
		for _, w := range it.g.Mo[p.loc] {
			choices = append(choices, graph.FromW(w))
		}
		r.rfbuf = choices
		r.extendReadLike(it.g, runnable, p, choices, p.inAwait)
	}
	return false
}

// mkEvent builds the event for pending op p as the next event of thread
// t in g (value fields filled by the caller for read-likes).
func (r *run) mkEvent(g *graph.Graph, t int, p *pending) *graph.Event {
	var kind graph.Kind
	switch p.kind {
	case opRead:
		kind = graph.KRead
	case opWrite:
		kind = graph.KWrite
	case opUpdate:
		kind = graph.KUpdate
	case opFence:
		kind = graph.KFence
	case opError:
		kind = graph.KError
	}
	seq, iter := -1, 0
	if p.inAwait {
		seq, iter = p.awaitSeq, p.awaitIter
	}
	return &graph.Event{
		ID:        graph.EventID{Thread: t, Index: len(g.Threads[t])},
		Kind:      kind,
		Mode:      p.mode,
		Loc:       p.loc,
		Val:       p.val,
		Msg:       p.msg,
		AwaitSeq:  seq,
		AwaitIter: iter,
	}
}

// push adds a child state to the exploration stack, guarding graph size.
func (r *run) push(it item) {
	if it.g.NumEvents() > r.c.MaxEvents {
		// Guard against runaway growth; the parent pop already counted.
		// Report as an error via a sentinel on the stack is overkill: the
		// MaxGraphs guard will fire; simply refuse to grow further.
		return
	}
	r.res.Stats.Pushed++
	r.stack = append(r.stack, it)
}

// extendWrite adds a plain write: one child per modification-order
// placement, each followed by its revisit children.
func (r *run) extendWrite(g *graph.Graph, t int, p *pending) {
	npos := len(g.Mo[p.loc])
	for pos := 1; pos <= npos; pos++ {
		g2 := g.Clone()
		e := r.mkEvent(g2, t, p)
		g2.Append(e)
		g2.InsertMo(p.loc, e.ID, pos)
		g2.NoteExtended(g, e)
		r.push(item{g: g2})
		r.pushRevisits(g2, e)
	}
}

// extendReadLike adds a read or update with each rf choice in choices
// (plus a ⊥ branch when the read sits in an await), handling update
// degradation, atomic mo placement, and revisits by the update's write
// part.
func (r *run) extendReadLike(g *graph.Graph, t int, p *pending, choices []graph.RF, withBottom bool) {
	for _, rf := range choices {
		g2 := g.Clone()
		e := r.mkEvent(g2, t, p)
		e.RVal = g2.WriteVal(rf.W)
		if p.kind == opUpdate {
			wv, degr := p.compute(e.RVal)
			e.Degraded = degr
			if !degr {
				e.Val = wv
			}
		}
		g2.Append(e)
		g2.SetRF(e.ID, rf)
		if p.kind == opUpdate && !e.Degraded {
			src := g2.MoIndex(p.loc, rf.W)
			if src < 0 {
				continue // source vanished (cannot happen)
			}
			g2.InsertMo(p.loc, e.ID, src+1)
			g2.NoteExtended(g, e)
			r.push(item{g: g2})
			r.pushRevisits(g2, e)
			continue
		}
		g2.NoteExtended(g, e)
		r.push(item{g: g2})
	}
	if withBottom {
		// ⊥ branch: the potential AT violation marker. Pushed last so the
		// DFS examines it first, surfacing hangs early.
		g2 := g.Clone()
		e := r.mkEvent(g2, t, p)
		g2.Append(e)
		g2.SetRF(e.ID, graph.BottomRF)
		g2.NoteExtended(g, e)
		r.push(item{g: g2})
	}
}

// pushRevisits generates the write→read revisit children for the
// freshly added write-like event w in g2 (the CalcRevisits of Fig. 6):
// each same-location read r not in w's porf prefix may instead read
// from w; the graph is restricted to the events added before r plus
// w's porf prefix, and r's re-addition is forced to read from w.
func (r *run) pushRevisits(g2 *graph.Graph, w *graph.Event) {
	porf := g2.PorfPrefix(w.ID)
	// Same-location reads in (thread, index) order — the iteration
	// ReadsOf would return, without materializing the slice per write.
	for _, revs := range g2.Threads {
		for _, rdEv := range revs {
			if !rdEv.IsReadLike() || rdEv.Loc != w.Loc {
				continue
			}
			r.pushRevisit(g2, w, porf, rdEv)
		}
	}
}

// pushRevisit generates the revisit child (if any) for one candidate
// read rdEv against the freshly added write w.
func (r *run) pushRevisit(g2 *graph.Graph, w *graph.Event, porf *graph.EventSet, rdEv *graph.Event) {
	rd := rdEv.ID
	if rd == w.ID || porf.Has(rdEv) {
		return
	}
	if g2.Rf[rd] == graph.FromW(w.ID) {
		return
	}
	rstamp := rdEv.Stamp
	keep := graph.NewEventSet(g2.NextStamp)
	for _, evs := range g2.Threads {
		for _, e := range evs {
			if e.Stamp < rstamp || porf.Has(e) || e.ID == w.ID {
				keep.Add(e)
			}
		}
	}
	keep.Remove(rdEv)
	// Closure-drop: a kept read whose rf source was dropped cannot
	// keep its value; truncate its thread there and iterate.
	for changed := true; changed; {
		changed = false
		for _, evs := range g2.Threads {
			alive := true
			for _, e := range evs {
				if !keep.Has(e) {
					alive = false
					continue
				}
				if !alive {
					keep.Remove(e)
					changed = true
					continue
				}
				if e.IsReadLike() {
					rf := g2.Rf[e.ID]
					if !rf.Bottom && !rf.W.IsInit() && !keep.Has(g2.Event(rf.W)) {
						keep.Remove(e)
						alive = false
						changed = true
					}
				}
			}
		}
	}
	if !keep.Has(w) {
		return // the new write itself was dropped: nothing to revisit
	}
	// r must be re-addable as the next event of its thread.
	pfx := 0
	for _, e := range g2.Threads[rd.Thread] {
		if !keep.Has(e) {
			break
		}
		pfx++
	}
	if pfx != rd.Index {
		return
	}
	g3 := g2.Clone()
	g3.RestrictTo(keep)
	r.res.Stats.Revisits++
	r.push(item{g: g3, hasForced: true, forcedR: rd, forcedW: w.ID})
}

// wasteful implements W(G) (Def. 2): some await reads from the same
// combination of writes in two consecutive complete iterations.
func wasteful(g *graph.Graph, rres []replayResult) bool {
	for _, res := range rres {
		spans := res.spans
		for i := 0; i+1 < len(spans); i++ {
			a, b := spans[i], spans[i+1]
			if a.Seq != b.Seq || b.Iter != a.Iter+1 {
				continue
			}
			if !a.Complete || !a.Failed || !b.Complete {
				continue
			}
			if len(a.Reads) != len(b.Reads) {
				continue
			}
			same := true
			for k := range a.Reads {
				if g.Rf[a.Reads[k]] != g.Rf[b.Reads[k]] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
	}
	return false
}

package core_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/mm"
	"repro/internal/vprog"
)

func TestWRC(t *testing.T) {
	if reachable(t, mm.WMM, harness.WRC(vprog.Rel, vprog.Acq)) {
		t.Error("WMM must forbid WRC with release/acquire (hb transitivity)")
	}
	if !reachable(t, mm.WMM, harness.WRC(vprog.Rlx, vprog.Rlx)) {
		t.Error("WMM must allow relaxed WRC")
	}
	if reachable(t, mm.TSO, harness.WRC(vprog.Rlx, vprog.Rlx)) {
		t.Error("TSO must forbid WRC (multi-copy atomic)")
	}
	if reachable(t, mm.SC, harness.WRC(vprog.Rlx, vprog.Rlx)) {
		t.Error("SC must forbid WRC")
	}
}

func TestISA2(t *testing.T) {
	if reachable(t, mm.WMM, harness.ISA2(vprog.Rel, vprog.Acq)) {
		t.Error("WMM must forbid ISA2 with release/acquire")
	}
	if !reachable(t, mm.WMM, harness.ISA2(vprog.Rlx, vprog.Rlx)) {
		t.Error("WMM must allow relaxed ISA2")
	}
	if reachable(t, mm.SC, harness.ISA2(vprog.Rlx, vprog.Rlx)) {
		t.Error("SC must forbid ISA2")
	}
}

func TestTwoPlusTwoW(t *testing.T) {
	if reachable(t, mm.SC, harness.TwoPlusTwoW(vprog.Rlx)) {
		t.Error("SC must forbid 2+2W")
	}
	if reachable(t, mm.TSO, harness.TwoPlusTwoW(vprog.Rlx)) {
		t.Error("TSO must forbid 2+2W (stores are ordered)")
	}
	if !reachable(t, mm.WMM, harness.TwoPlusTwoW(vprog.Rlx)) {
		t.Error("WMM must allow relaxed 2+2W (RC11 does)")
	}
	if reachable(t, mm.WMM, harness.TwoPlusTwoW(vprog.SC)) {
		t.Error("WMM must forbid 2+2W with SC stores (psc)")
	}
}

func TestCoWR(t *testing.T) {
	for _, model := range mm.All() {
		if reachable(t, model, harness.CoWR()) {
			t.Errorf("%s must enforce write-read coherence", model.Name())
		}
	}
}

// TestLitmusRegistry: every named litmus builds at both strengths.
func TestLitmusRegistry(t *testing.T) {
	for _, name := range harness.LitmusNames() {
		for _, strong := range []bool{false, true} {
			p := harness.Litmus(name, strong)
			if p == nil {
				t.Fatalf("litmus %q (strong=%t) missing", name, strong)
			}
			// Every litmus must run to a definite verdict on WMM.
			_ = verdict(t, mm.WMM, p)
		}
	}
	if harness.Litmus("no-such", false) != nil {
		t.Fatal("unknown litmus must return nil")
	}
}

package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vprog"
)

// Job is one AMC invocation: a checker configuration applied to one
// program. Checkers are cheap structs; each job gets its own so that
// concurrent runs never share mutable state.
type Job struct {
	Checker *Checker
	Program *vprog.Program
}

// PoolStats is a snapshot of the work a Pool has performed since
// creation. Busy and Jobs are indexed by worker slot; their sums are
// the pool-wide totals.
type PoolStats struct {
	Workers  int
	Busy     []time.Duration // cumulative in-checker time per worker slot
	Jobs     []int           // completed jobs per worker slot (canceled runs included)
	Canceled int             // jobs that ended Canceled (short-circuited)
	Borrows  int             // idle slots lent out for intra-run work stealing
}

// TotalBusy sums the per-worker busy time (the CPU-side cost the pool
// amortized across workers).
func (s PoolStats) TotalBusy() time.Duration {
	var t time.Duration
	for _, d := range s.Busy {
		t += d
	}
	return t
}

// Pool is the scheduler shared by both granularities of AMC work: whole
// runs (jobs submitted to RunAll, the PR 1 behavior) and stolen
// intra-run exploration items. Every job's checker is attached to the
// pool, so a run whose WorkersPerRun exceeds 1 can borrow slots that
// would otherwise idle and point them at its own frontier
// (exploration.maybeRecruit). Whole runs always have priority: a borrow
// is refused while any job is waiting for a slot, and a borrowed slot
// returns to the pool the moment the frontier has nothing left to
// steal.
//
// It is safe for concurrent use: overlapping RunAll calls (e.g. the
// optimizer's speculative ladder verifying several candidate specs at
// once) share the same worker slots, so total concurrency never exceeds
// Workers.
type Pool struct {
	// Workers is the concurrency bound, fixed at NewPool time.
	Workers int

	slots   chan int     // free worker slot ids; receiving acquires a slot
	waiting atomic.Int32 // jobs currently blocked on a slot

	mu       sync.Mutex
	busy     []time.Duration
	jobs     []int
	canceled int
	borrows  int
}

// NewPool returns a pool with the given concurrency; workers <= 0
// selects GOMAXPROCS, the "as fast as the hardware allows" default.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		Workers: workers,
		slots:   make(chan int, workers),
		busy:    make([]time.Duration, workers),
		jobs:    make([]int, workers),
	}
	for i := 0; i < workers; i++ {
		p.slots <- i
	}
	return p
}

// Stats returns a copy of the pool's cumulative accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Workers:  p.Workers,
		Busy:     append([]time.Duration(nil), p.busy...),
		Jobs:     append([]int(nil), p.jobs...),
		Canceled: p.canceled,
		Borrows:  p.borrows,
	}
}

// tryAcquire hands out a free slot for intra-run work stealing, without
// blocking and never while a whole run is waiting for one — queued jobs
// outrank borrows in the unified scheduler.
func (p *Pool) tryAcquire() (int, bool) {
	if p.waiting.Load() > 0 {
		return 0, false
	}
	select {
	case s := <-p.slots:
		return s, true
	default:
		return 0, false
	}
}

// finishBorrow returns a borrowed slot, crediting its active time to
// the slot's busy accounting.
func (p *Pool) finishBorrow(slot int, d time.Duration) {
	p.mu.Lock()
	p.busy[slot] += d
	p.borrows++
	p.mu.Unlock()
	p.slots <- slot
}

// RunAll executes every job on the pool and returns the results in job
// order. When failFast is set, the first completed non-OK result
// cancels the jobs still queued or running; those return Canceled
// results. Jobs whose context is canceled before they acquire a worker
// never run a checker at all.
func (p *Pool) RunAll(ctx context.Context, jobs []Job, failFast bool) []*Result {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job Job) {
			defer wg.Done()
			var slot int
			p.waiting.Add(1)
			select {
			case <-ctx.Done():
				p.waiting.Add(-1)
				results[i] = canceledResult(ctx)
				p.mu.Lock()
				p.canceled++
				p.mu.Unlock()
				return
			case slot = <-p.slots:
				p.waiting.Add(-1)
			}
			// Attach the pool so the run can borrow idle slots for
			// intra-run stealing (bounded by WorkersPerRun) — on a
			// per-run copy, so the caller's Checker is never mutated and
			// never retains a pool reference past this job.
			c := *job.Checker
			c.pool = p
			t0 := time.Now()
			res := c.RunCtx(ctx, job.Program)
			d := time.Since(t0)
			p.slots <- slot
			p.mu.Lock()
			p.busy[slot] += d
			p.jobs[slot]++
			if res.Verdict == Canceled {
				p.canceled++
			}
			p.mu.Unlock()
			results[i] = res
			if failFast && res.Verdict != OK && res.Verdict != Canceled {
				cancel()
			}
		}(i, job)
	}
	wg.Wait()
	return results
}

// VerifyAll runs every job with fail-fast cancellation and reduces the
// results to a single verdict: OK only if every job verified, otherwise
// the lowest-indexed decisive (non-canceled) failure. It returns the
// index of the deciding job (-1 when all verified) and the per-job
// results so callers can cache completed verdicts.
func (p *Pool) VerifyAll(ctx context.Context, jobs []Job) (Verdict, int, []*Result) {
	results := p.RunAll(ctx, jobs, true)
	for i, res := range results {
		if res.Verdict != OK && res.Verdict != Canceled {
			return res.Verdict, i, results
		}
	}
	for i, res := range results {
		if res.Verdict == Canceled {
			// Only possible when the parent ctx itself was canceled (a
			// fail-fast cancel implies a decisive failure above).
			return Canceled, i, results
		}
	}
	return OK, -1, results
}

// canceledResult is the placeholder for a job that never started.
func canceledResult(ctx context.Context) *Result {
	return &Result{Verdict: Canceled, Err: ctx.Err(), Message: "canceled before start"}
}

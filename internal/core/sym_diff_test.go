package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// The symmetry differential bar: exploring only canonical orbit
// representatives must be invisible in every observable except the
// work counters — same verdict, and for violations a counterexample of
// the same shape (the canonical witness is a relabeling of some graph
// the unreduced run reports, so its event count matches even though
// thread names may not). Within a symmetry-on run the usual parallel
// bar holds too: worker count must not change the enumeration or the
// deterministic counterexample. Checker.NoSymmetry is the oracle
// switch — it bypasses canonicalization entirely, so these tests are
// an end-to-end check of the whole reduction, not of one layer.

func runSymAt(t *testing.T, model mm.Model, p *vprog.Program, workers int, nosym bool) *core.Result {
	t.Helper()
	c := core.New(model)
	c.WorkersPerRun = workers
	c.NoSymmetry = nosym
	res := c.Run(p)
	if res.Verdict == core.Canceled || res.Verdict == core.Error {
		t.Fatalf("%s at %d workers (nosym=%v): unexpected %v: %v", p.Name, workers, nosym, res.Verdict, res.Err)
	}
	return res
}

// symDiffOne asserts the bar for one program: symmetry-on at 1, 2 and
// 4 workers against symmetry-off at 1 and 4.
func symDiffOne(t *testing.T, model mm.Model, p *vprog.Program) {
	t.Helper()
	on1 := runSymAt(t, model, p, 1, false)
	on2 := runSymAt(t, model, p, 2, false)
	on4 := runSymAt(t, model, p, 4, false)
	off1 := runSymAt(t, model, p, 1, true)
	off4 := runSymAt(t, model, p, 4, true)

	if on1.Verdict != on4.Verdict || on2.Verdict != on4.Verdict {
		t.Fatalf("%s: symmetry-on verdict is worker-count dependent: %v/%v/%v",
			p.Name, on1.Verdict, on2.Verdict, on4.Verdict)
	}
	if on4.Verdict != off4.Verdict || off1.Verdict != off4.Verdict {
		t.Fatalf("%s: symmetry changed the verdict: on %v, off %v/%v",
			p.Name, on4.Verdict, off1.Verdict, off4.Verdict)
	}

	if p.SymSpec() == nil {
		// No validated groups: the reduction must be a strict no-op, down
		// to the last counter.
		if on1.Stats != off1.Stats {
			t.Fatalf("%s: no symmetric groups, yet stats differ\non:  %+v\noff: %+v", p.Name, on1.Stats, off1.Stats)
		}
	} else if on4.Stats.Executions > off4.Stats.Executions || on4.Stats.Blocked > off4.Stats.Blocked {
		t.Fatalf("%s: reduction enumerated MORE than the full run\non:  %+v\noff: %+v", p.Name, on4.Stats, off4.Stats)
	}

	// Within symmetry-on, worker count must not change the enumeration.
	if on2.Stats.Executions != on4.Stats.Executions || on2.Stats.Blocked != on4.Stats.Blocked {
		t.Fatalf("%s: symmetry-on enumeration diverged across worker counts\non2: %+v\non4: %+v",
			p.Name, on2.Stats, on4.Stats)
	}
	if on4.Verdict == core.OK {
		if on1.Stats.Executions != on4.Stats.Executions || on1.Stats.Blocked != on4.Stats.Blocked {
			t.Fatalf("%s: symmetry-on enumeration diverged seq vs parallel\non1: %+v\non4: %+v",
				p.Name, on1.Stats, on4.Stats)
		}
		return
	}
	// Violations: the parallel runs explore to completion and must agree
	// on the deterministic canonical counterexample exactly; against the
	// unreduced run only the witness shape is comparable (the canonical
	// witness is a relabeling, and the two runs minimize over different
	// key spaces).
	if witnessKey(on2) != witnessKey(on4) || on2.Message != on4.Message {
		t.Fatalf("%s: symmetry-on counterexample is schedule-dependent: %q vs %q", p.Name, on2.Message, on4.Message)
	}
	if on4.Witness == nil || off4.Witness == nil {
		t.Fatalf("%s: violation without a witness (on %v, off %v)", p.Name, on4.Witness != nil, off4.Witness != nil)
	}
	if on4.Witness.NumEvents() != off4.Witness.NumEvents() {
		t.Fatalf("%s: canonical witness has %d events, unreduced run's has %d",
			p.Name, on4.Witness.NumEvents(), off4.Witness.NumEvents())
	}
	if err := on4.Witness.CheckInvariants(); err != nil {
		t.Fatalf("%s: canonical witness is malformed: %v", p.Name, err)
	}
}

// TestSymDifferentialLitmus: the full litmus corpus, both strengths.
// Litmus threads are pairwise distinct programs, so none declares
// symmetric groups — the suite proves the reduction stands down
// perfectly rather than perturbing asymmetric workloads.
func TestSymDifferentialLitmus(t *testing.T) {
	for _, name := range harness.LitmusNames() {
		for _, strong := range []bool{false, true} {
			symDiffOne(t, mm.WMM, harness.Litmus(name, strong))
		}
	}
}

// TestSymDifferentialLocks: the lock corpus at two and — for the
// decisive cases — three clients, including the buggy study locks
// whose violations exercise canonical-witness reporting.
func TestSymDifferentialLocks(t *testing.T) {
	names := []string{"spin", "ticket", "mcs", "qspin", "dpdkmcs-buggy", "huaweimcs-buggy"}
	if !testing.Short() {
		names = append(names, "ttas", "clh")
	}
	for _, name := range names {
		alg := locks.ByName(name)
		if alg == nil {
			t.Fatalf("unknown lock %q", name)
		}
		symDiffOne(t, mm.WMM, harness.MutexClient(alg, alg.DefaultSpec(), 2, 1))
	}
	if !testing.Short() {
		mcs := locks.ByName("mcs")
		symDiffOne(t, mm.WMM, harness.MutexClient(mcs, mcs.DefaultSpec(), 3, 1))
	}
}

// TestSymReductionFactor: for the mcs client no complete execution is
// fixed by a nontrivial relabeling (the critical-section order always
// distinguishes the threads), so every orbit has exactly t! members and
// the reduction divides the execution count by exactly t!.
func TestSymReductionFactor(t *testing.T) {
	mcs := locks.ByName("mcs")
	p2 := harness.MutexClient(mcs, mcs.DefaultSpec(), 2, 1)
	on := runSymAt(t, mm.WMM, p2, 1, false)
	off := runSymAt(t, mm.WMM, p2, 1, true)
	if off.Stats.Executions != 2*on.Stats.Executions {
		t.Fatalf("mcs t=2: %d executions reduced, %d full — want an exact factor 2",
			on.Stats.Executions, off.Stats.Executions)
	}
	if on.Stats.CanonFast+on.Stats.CanonRefined == 0 || on.Stats.Canonicalized == 0 {
		t.Fatalf("mcs t=2: reduction ran but the canonicalization counters are empty: %+v", on.Stats)
	}
	if off.Stats.CanonFast+off.Stats.CanonRefined != 0 {
		t.Fatalf("mcs t=2: NoSymmetry run still canonicalized: %+v", off.Stats)
	}
	if testing.Short() {
		return
	}
	p3 := harness.MutexClient(mcs, mcs.DefaultSpec(), 3, 1)
	on3 := runSymAt(t, mm.WMM, p3, 4, false)
	off3 := runSymAt(t, mm.WMM, p3, 4, true)
	if off3.Stats.Executions != 6*on3.Stats.Executions {
		t.Fatalf("mcs t=3: %d executions reduced, %d full — want an exact factor 3! = 6",
			on3.Stats.Executions, off3.Stats.Executions)
	}
	if on3.Stats.Popped*2 > off3.Stats.Popped {
		t.Fatalf("mcs t=3: only %d of %d states pruned — the ≥2x state-space bar failed",
			off3.Stats.Popped-on3.Stats.Popped, off3.Stats.Popped)
	}
}

// relabeledClient is the core-level twin of the vprog unification test:
// the same symmetric two-thread client built with the replica ownership
// swapped. Both builds must be one verification problem end to end —
// one store key, one exploration.
func relabeledClient(swap bool) *vprog.Program {
	return &vprog.Program{
		Name:      "sym/relabeled",
		SymGroups: [][]int{{0, 1}},
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			oa, ob := 0, 1
			if swap {
				oa, ob = 1, 0
			}
			a := env.Var("node.a", 0).TagOwner(oa, "node")
			b := env.Var("node.b", 0).TagOwner(ob, "node")
			lock := env.Var("lock", 0).TagTid(0, 1)
			node := []*vprog.Var{a, b}
			if swap {
				node[0], node[1] = b, a
			}
			th := func(tid int) vprog.ThreadFunc {
				return func(m vprog.Mem) {
					m.Store(node[tid], 1, vprog.Rel)
					m.Xchg(lock, uint64(m.TID()+1), vprog.AcqRel)
					m.AwaitWhile(func() bool { return m.Load(lock, vprog.Acq) != uint64(m.TID()+1) })
				}
			}
			return []vprog.ThreadFunc{th(0), th(1)}, nil
		},
	}
}

// TestSymRelabeledProgramsUnify: thread-permuted builds of one
// symmetric program share the canonical fingerprint (hence the
// verdict-store key) and explore identical state spaces.
func TestSymRelabeledProgramsUnify(t *testing.T) {
	p1, p2 := relabeledClient(false), relabeledClient(true)
	if p1.Fingerprint128() != p2.Fingerprint128() {
		t.Fatal("relabeled builds produced different store keys")
	}
	r1 := runSymAt(t, mm.WMM, p1, 1, false)
	r2 := runSymAt(t, mm.WMM, p2, 1, false)
	if r1.Verdict != r2.Verdict || r1.Stats != r2.Stats {
		t.Fatalf("relabeled builds explored different spaces:\np1: %v %+v\np2: %v %+v",
			r1.Verdict, r1.Stats, r2.Verdict, r2.Stats)
	}
}

// TestSymSegmentedExact: a symmetric run segmented by graph budgets and
// driven through the checkpoint codec must reproduce the uninterrupted
// reduced run counter for counter. (The mcs t=2 client in ckptCorpus
// already runs symmetric under budgets 1/7/50 in the general segmented
// tests; this pins the property explicitly with the codec in the loop.)
func TestSymSegmentedExact(t *testing.T) {
	mcs := locks.ByName("mcs")
	p := harness.MutexClient(mcs, mcs.DefaultSpec(), 2, 1)
	base := runSymAt(t, mm.WMM, p, 1, false)
	if base.Stats.CanonFast+base.Stats.CanonRefined == 0 {
		t.Fatal("baseline run was not reduced; the segmented test would be vacuous")
	}
	for _, bg := range []int64{1, 7, 50} {
		res, _ := runSegmented(t, mm.WMM, p, 1, core.Budget{MaxGraphs: bg}, true)
		if res.Verdict != base.Verdict || res.Stats != base.Stats {
			t.Fatalf("budget=%d: segmented symmetric run diverged\nsegmented:     %v %+v\nuninterrupted: %v %+v",
				bg, res.Verdict, res.Stats, base.Verdict, base.Stats)
		}
	}
}

// TestSymCheckpointCompatibility: a checkpoint records whether its
// visited keys are canonical, the codec round-trips the flag, and a
// resume under the other setting is refused — the two key spaces are
// not comparable, so silently mixing them could skip states.
func TestSymCheckpointCompatibility(t *testing.T) {
	mcs := locks.ByName("mcs")
	p := harness.MutexClient(mcs, mcs.DefaultSpec(), 2, 1)
	interrupted := func(nosym bool) *core.Checkpoint {
		c := core.New(mm.WMM)
		c.NoSymmetry = nosym
		c.Budget = core.Budget{MaxGraphs: 40}
		res := c.Run(p)
		if res.Verdict != core.Undecided || res.Checkpoint == nil {
			t.Fatalf("nosym=%v: expected a budget interrupt, got %v", nosym, res.Verdict)
		}
		return res.Checkpoint
	}

	for _, nosym := range []bool{false, true} {
		ck := interrupted(nosym)
		if ck.Sym != !nosym {
			t.Fatalf("nosym=%v: checkpoint records Sym=%v", nosym, ck.Sym)
		}
		dec, err := core.DecodeCheckpoint(ck.Encode())
		if err != nil {
			t.Fatalf("nosym=%v: round-trip: %v", nosym, err)
		}
		if dec.Sym != ck.Sym {
			t.Fatalf("nosym=%v: codec lost the Sym flag", nosym)
		}

		// Resuming under the opposite setting must be an Error.
		c := core.New(mm.WMM)
		c.NoSymmetry = !nosym
		c.Resume = dec
		if res := c.Run(p); res.Verdict != core.Error {
			t.Fatalf("nosym=%v: resume under flipped symmetry: %v, want error", nosym, res.Verdict)
		}
		// The matching resume completes the run.
		c = core.New(mm.WMM)
		c.NoSymmetry = nosym
		c.Resume = dec
		if res := c.Run(p); res.Verdict != core.OK {
			t.Fatalf("nosym=%v: matching resume: %v, want ok", nosym, res.Verdict)
		}
	}
}

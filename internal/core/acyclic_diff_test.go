package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// The acyclicity-engine differential bar: with graph.CrossCheckAcyclic
// armed, every closure-free decision taken anywhere in an exploration —
// Kahn passes, order-seeded fast paths, and the order-state shortcuts
// the predicates take without touching a matrix — re-runs the
// transitive-closure oracle and panics on disagreement. Running the
// full litmus+lock corpus under every model, sequentially and with 4
// workers, therefore proves the engine's verdicts identical to the
// seed engine's on every graph the checker actually visits.

// crossChecked runs fn with the oracle armed.
func crossChecked(t *testing.T, fn func()) {
	t.Helper()
	graph.CrossCheckAcyclic = true
	defer func() { graph.CrossCheckAcyclic = false }()
	fn()
}

func runChecked(t *testing.T, model mm.Model, p *vprog.Program, workers int) {
	t.Helper()
	c := core.New(model)
	c.WorkersPerRun = workers
	if res := c.Run(p); res.Verdict == core.Error {
		t.Fatalf("%s under %s (%d workers): %v", p.Name, model.Name(), workers, res.Err)
	}
}

// TestAcyclicDifferentialLitmus: the full litmus corpus, both
// strengths, under every model including the RA ablation, at 1 and 4
// workers, with the closure oracle shadowing every engine decision.
func TestAcyclicDifferentialLitmus(t *testing.T) {
	crossChecked(t, func() {
		for _, name := range harness.LitmusNames() {
			for _, strong := range []bool{false, true} {
				p := harness.Litmus(name, strong)
				for _, m := range []mm.Model{mm.SC, mm.TSO, mm.WMM, mm.RA} {
					runChecked(t, m, p, 1)
					runChecked(t, m, p, 4)
				}
			}
		}
	})
}

// TestAcyclicDifferentialLocks: the same bar on the lock corpus (the
// hot-path clients the engine was built for), including the buggy
// study cases whose violation paths stress the shortcut verdicts.
func TestAcyclicDifferentialLocks(t *testing.T) {
	names := []string{"spin", "ticket", "mcs", "qspin", "dpdkmcs-buggy", "huaweimcs-buggy"}
	if !testing.Short() {
		names = append(names, "ttas", "clh")
	}
	crossChecked(t, func() {
		for _, name := range names {
			alg := locks.ByName(name)
			if alg == nil {
				t.Fatalf("unknown lock %q", name)
			}
			p := harness.MutexClient(alg, alg.DefaultSpec(), 2, 1)
			for _, m := range []mm.Model{mm.SC, mm.TSO, mm.WMM} {
				runChecked(t, m, p, 1)
				runChecked(t, m, p, 4)
			}
		}
	})
}

// Package core implements Await Model Checking (AMC), the paper's core
// contribution (§1): a stateless model checker for concurrent programs
// with await loops on weak memory models.
//
// AMC explores execution graphs depth-first over a work-graph of
// partial-graph states (Fig. 6): each worker executes its own frontier
// deque LIFO and steals FIFO from the others when WorkersPerRun > 1
// (see workgraph.go; one worker recovers the classic stack machine).
// Reads branch over every write they could read from — plus, inside
// await loops, a ⊥ (missing rf) branch that tracks potential
// await-termination violations. Writes branch over modification-order
// placements and additionally *revisit* existing reads, transplanting
// them onto the new write. Two filters make the search finite and sound
// for awaiting programs:
//
//   - wasteful executions (Def. 2) — an await whose reads observe the
//     same writes in two consecutive iterations, whether the iteration
//     is a single polling load (AwaitWhile) or a multi-operation CAS
//     retry (AwaitDo) — are pruned, collapsing the infinite set GF into
//     the finite GF*;
//   - graphs in which a ⊥ read can no longer be resolved by any
//     non-wasteful consistent write witness an await-termination
//     violation (the finite representatives G∞* of the infinite
//     executions in G∞ — for a CAS loop this is the "no remaining
//     write to observe" verdict that replaces any artificial retry
//     bound).
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/vprog"
)

// opKind classifies the pending (next) operation of a thread.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opUpdate
	opFence
	opError
)

// upKind classifies the update operation of an opUpdate pending.
type upKind uint8

const (
	upNone upKind = iota
	upXchg
	upCAS
	upFAA
)

// pending describes the next shared-memory operation a thread wants to
// perform, discovered by replaying the thread against the graph. It is
// a plain value (update semantics are carried as operands, not a
// closure) so the replay loop can build one per instruction on the
// stack; only the op a thread actually stops on escapes to the heap.
type pending struct {
	kind opKind
	loc  graph.Loc
	mode graph.Mode
	val  graph.Val // value to write (opWrite)
	msg  string    // assertion message (opError)

	inAwait   bool
	awaitSeq  int
	awaitIter int

	// up/a/b encode the update semantics of an opUpdate: Xchg writes a,
	// CmpXchg compares against a and writes b, FetchAdd adds a.
	up   upKind
	a, b graph.Val
}

// compute derives the written value of an update from the value read;
// degraded reports that the update behaves as a plain read (failed
// CAS, or a write of the very value read — footnote 5 of the paper:
// only value-changing writes matter).
func (p *pending) compute(read graph.Val) (write graph.Val, degraded bool) {
	switch p.up {
	case upXchg:
		return p.a, p.a == read
	case upCAS:
		if read != p.a {
			return 0, true // failed CAS: a plain read
		}
		return p.b, p.b == read
	case upFAA:
		return read + p.a, p.a == 0
	}
	panic("core: compute on a non-update pending")
}

// iterRec records one await iteration observed during replay.
type iterRec struct {
	Seq      int
	Iter     int
	Reads    []graph.EventID // read-like events of the iteration, po order
	Failed   bool            // condition evaluated to true (loop repeats)
	Complete bool            // the condition finished evaluating
	Wrote    bool            // iteration performed a store or value-changing update
}

// replayResult is the outcome of replaying one thread against a graph.
type replayResult struct {
	pending  *pending  // next operation, nil if none (finished or blocked)
	finished bool      // thread ran to completion
	blocked  bool      // thread is stuck on a ⊥ read
	spans    []iterRec // await iterations observed
	err      error     // internal error (determinism violation etc.)
}

// abortReplay is the panic sentinel that unwinds a thread function once
// the replay has learned what it needed.
type abortReplay struct{}

// maxLocalIters bounds await iterations that consume no shared events,
// which would otherwise loop forever during replay.
const maxLocalIters = 4096

// replayMem implements vprog.Mem by feeding a thread the values
// recorded in an execution graph (§2.1.2: the graph-driven semantics).
type replayMem struct {
	g    *graph.Graph
	tid  int
	idx  int // next event index of this thread to consume
	vars []*vprog.Var

	awaitDepth int
	awaitSeq   int // number of await instances started so far
	curSeq     int // active await instance, -1 outside
	curIter    int
	inDo       bool   // the active await is an AwaitDo (retry) instance
	effMsg     string // first Bounded-Effect violation candidate of the current iteration

	res replayResult
}

func (m *replayMem) events() []*graph.Event { return m.g.Threads[m.tid] }

// stop records the pending operation (if any) and unwinds the replay.
func (m *replayMem) stop(p *pending) {
	m.res.pending = p
	panic(abortReplay{})
}

// fail records an internal error and unwinds.
func (m *replayMem) fail(format string, args ...any) {
	m.res.err = fmt.Errorf("thread T%d, event %d: "+format,
		append([]any{m.tid, m.idx}, args...)...)
	panic(abortReplay{})
}

// tag fills the await bookkeeping of a pending op.
func (m *replayMem) tag(p *pending) *pending {
	p.inAwait = m.curSeq >= 0
	p.awaitSeq = m.curSeq
	p.awaitIter = m.curIter
	return p
}

// next consumes the next graph event, checking that it matches what the
// program generated (the consP consistency of §2.1.2); if the graph has
// no more events for this thread, it records p as the pending op and
// unwinds. p is taken by value and copied to the heap only on that
// stop path — replays run once per thread per popped graph, and the
// per-instruction pendings must not allocate.
func (m *replayMem) next(kind graph.Kind, loc graph.Loc, mode graph.Mode, p pending) *graph.Event {
	evs := m.events()
	if m.idx >= len(evs) {
		pp := new(pending)
		*pp = p
		m.stop(m.tag(pp))
	}
	e := evs[m.idx]
	if e.Kind != kind || (kind != graph.KFence && e.Loc != loc) || e.Mode != mode {
		m.fail("program generated %s(loc%d,%s) but graph holds %s", kind, loc, mode, e)
	}
	m.idx++
	return e
}

// readVal extracts the value a read-like event observes, blocking the
// replay if its rf edge is ⊥.
func (m *replayMem) readVal(e *graph.Event) graph.Val {
	if m.g.RfOf(e.ID).Bottom {
		m.idx-- // the blocked event stays "current"
		m.res.blocked = true
		panic(abortReplay{})
	}
	return e.RVal
}

// markWrote flags the current await iteration as having performed a
// store or a value-changing update. The retry-free-twin collapse
// (explore.collapsedRetry) consults the flag: only awaits whose failed
// iterations left no write behind may be collapsed onto the encoding
// that never retried.
func (m *replayMem) markWrote() {
	if m.curSeq < 0 {
		return
	}
	n := len(m.res.spans)
	if n > 0 && m.res.spans[n-1].Seq == m.curSeq && m.res.spans[n-1].Iter == m.curIter {
		m.res.spans[n-1].Wrote = true
	}
}

// recordRead appends the event to the current await iteration record.
func (m *replayMem) recordRead(e *graph.Event) {
	if m.curSeq < 0 {
		return
	}
	n := len(m.res.spans)
	if n > 0 && m.res.spans[n-1].Seq == m.curSeq && m.res.spans[n-1].Iter == m.curIter {
		m.res.spans[n-1].Reads = append(m.res.spans[n-1].Reads, e.ID)
	}
}

func (m *replayMem) Load(v *vprog.Var, mode vprog.Mode) uint64 {
	e := m.next(graph.KRead, graph.Loc(v.ID), mode, pending{kind: opRead, loc: graph.Loc(v.ID), mode: mode})
	m.recordRead(e)
	return m.readVal(e)
}

func (m *replayMem) Store(v *vprog.Var, x uint64, mode vprog.Mode) {
	e := m.next(graph.KWrite, graph.Loc(v.ID), mode,
		pending{kind: opWrite, loc: graph.Loc(v.ID), mode: mode, val: x})
	if e.Val != x {
		m.fail("program stores %d but graph holds %s", x, e)
	}
	m.markWrote()
	// Bounded-Effect candidates: the verdict on whether the enclosing
	// iteration failed is deferred to the await loop — a store in a
	// *succeeding* iteration is always fine.
	if m.curSeq >= 0 && m.effMsg == "" {
		if !m.inDo {
			m.effMsg = fmt.Sprintf("plain store to %s", v.Name)
		} else if v.SymOwner != m.tid+1 {
			m.effMsg = fmt.Sprintf("store to %s, which thread T%d does not own", v.Name, m.tid)
		}
	}
}

// update is the common path of Xchg/CmpXchg/FetchAdd.
func (m *replayMem) update(v *vprog.Var, mode vprog.Mode, up upKind, a, b graph.Val) graph.Val {
	p := pending{kind: opUpdate, loc: graph.Loc(v.ID), mode: mode, up: up, a: a, b: b}
	e := m.next(graph.KUpdate, graph.Loc(v.ID), mode, p)
	m.recordRead(e)
	rv := m.readVal(e)
	wv, degr := p.compute(rv)
	if degr != e.Degraded || (!degr && wv != e.Val) {
		m.fail("update recomputation mismatch: read %d gives (%d,%t) but graph holds %s", rv, wv, degr, e)
	}
	if !degr {
		m.markWrote()
	}
	// An AwaitWhile body must be read-only: a degraded update is a read
	// (footnote 5), a value-changing one is a Bounded-Effect candidate.
	// AwaitDo iterations may update freely — see the vprog package doc.
	if m.curSeq >= 0 && !m.inDo && !degr && m.effMsg == "" {
		m.effMsg = fmt.Sprintf("value-changing update of %s", v.Name)
	}
	return rv
}

func (m *replayMem) Xchg(v *vprog.Var, x uint64, mode vprog.Mode) uint64 {
	return m.update(v, mode, upXchg, x, 0)
}

func (m *replayMem) CmpXchg(v *vprog.Var, old, new uint64, mode vprog.Mode) (uint64, bool) {
	r := m.update(v, mode, upCAS, old, new)
	return r, r == old
}

func (m *replayMem) FetchAdd(v *vprog.Var, delta uint64, mode vprog.Mode) uint64 {
	return m.update(v, mode, upFAA, delta, 0)
}

func (m *replayMem) Fence(mode vprog.Mode) {
	if mode == vprog.ModeNone {
		return // eliminated fence
	}
	m.next(graph.KFence, 0, mode, pending{kind: opFence, mode: mode})
}

func (m *replayMem) AwaitWhile(cond func() bool) {
	m.await(false, func() bool { return !cond() })
}

func (m *replayMem) AwaitDo(body func() bool) {
	m.await(true, body)
}

// await runs one await instance; done reports whether the iteration
// succeeded (the loop exits). Both constructs share the span discipline
// — one iterRec per evaluation, Failed when the loop repeats — and
// differ only in the Bounded-Effect contract enforced on completed
// failed iterations (see Store and update above, which record the
// candidates this loop judges).
func (m *replayMem) await(isDo bool, done func() bool) {
	if m.awaitDepth > 0 {
		m.fail("nested awaits are not allowed (paper §2.1.1 syntactic restriction)")
	}
	m.awaitDepth++
	defer func() { m.awaitDepth-- }()
	seq := m.awaitSeq
	m.awaitSeq++
	m.inDo = isDo
	local := 0
	for iter := 0; ; iter++ {
		m.curSeq, m.curIter = seq, iter
		m.effMsg = ""
		m.res.spans = append(m.res.spans, iterRec{Seq: seq, Iter: iter})
		before := m.idx
		ok := done()
		rec := &m.res.spans[len(m.res.spans)-1]
		rec.Complete = true
		rec.Failed = !ok
		m.curSeq, m.curIter = -1, 0
		if !ok && m.effMsg != "" {
			kind := "AwaitWhile"
			if isDo {
				kind = "AwaitDo"
			}
			m.fail("Bounded-Effect violation: %s in failed iteration %d of an %s", m.effMsg, iter, kind)
		}
		if ok {
			return
		}
		if m.idx == before {
			local++
			if local > maxLocalIters {
				m.fail("await loop performs no shared-memory reads (violates await progress)")
			}
		} else {
			local = 0
		}
	}
}

func (m *replayMem) Pause()   {}
func (m *replayMem) TID() int { return m.tid }

func (m *replayMem) Assert(ok bool, msg string) {
	if ok {
		return
	}
	evs := m.events()
	if m.idx >= len(evs) {
		m.stop(m.tag(&pending{kind: opError, msg: msg}))
	}
	e := evs[m.idx]
	if e.Kind != graph.KError {
		m.fail("program raises assertion %q but graph holds %s", msg, e)
	}
	m.idx++
}

// replayThread runs fn against g, reporting the thread's next pending
// operation (or completion/blockage) and its await iteration records.
// m is caller-provided scratch (one per worker per thread, reused
// across pops so replays stop allocating); its previous spans backing
// array is recycled, which is safe because a step consumes its replay
// results before popping the next state.
func replayThread(g *graph.Graph, tid int, fn vprog.ThreadFunc, vars []*vprog.Var, m *replayMem) (res replayResult) {
	spans := m.res.spans[:0]
	*m = replayMem{g: g, tid: tid, vars: vars, curSeq: -1}
	m.res.spans = spans
	done := func() bool {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortReplay); !ok {
					panic(r)
				}
			}
		}()
		fn(m)
		return true
	}()
	res = m.res
	if done {
		if m.idx != len(m.events()) {
			res.err = fmt.Errorf("thread T%d finished with %d unconsumed graph events",
				tid, len(m.events())-m.idx)
			return
		}
		res.finished = true
	}
	return
}

package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faultinject"
	"repro/internal/graph"
)

// Budget bounds one run segment. A zero Budget is unbounded. When any
// limit trips, the run drains cleanly and returns an Undecided result
// carrying a Checkpoint instead of discarding the work: MaxGraphs and
// MaxDuration are per-segment caps (a resumed segment gets a fresh
// allowance — that is what makes "keep resuming until decided" make
// progress under any budget), while MaxMemBytes is an absolute cap on
// the Go heap observed at a sampling cadence.
type Budget struct {
	// MaxDuration caps the wall-clock time of this segment.
	MaxDuration time.Duration
	// MaxGraphs caps the number of states this segment pops.
	MaxGraphs int64
	// MaxMemBytes caps the process heap (runtime.ReadMemStats
	// HeapAlloc, sampled every few thousand pops).
	MaxMemBytes uint64
}

// active reports whether any limit is set.
func (b Budget) active() bool {
	return b.MaxDuration > 0 || b.MaxGraphs > 0 || b.MaxMemBytes > 0
}

// Checkpoint is the resumable remainder of an interrupted exploration:
// every frontier state not yet popped, the visited-set keys, the
// cumulative counters, and the best violation found so far (parallel
// runs continue past violations, so the deterministic-counterexample
// contract must survive segmentation). A Checkpoint is self-contained
// — Resume needs only it, the model, and the program.
//
// Identity fields pin what the checkpoint belongs to. Model and Prog
// are validated by the core explorer itself on resume; Epoch is opaque
// to core — callers that track code identity (the vsync layer stamps
// the store's code-identity epoch here) must validate it before
// resuming, because a frontier produced by different checker code is
// not trustworthy even over the same program.
type Checkpoint struct {
	Model string        // memory model name the run verifies against
	Prog  graph.Hash128 // structural fingerprint of the program
	Epoch graph.Hash128 // code-identity epoch (stamped by the caller)
	// Sym records whether the interrupted run deduplicated on canonical
	// (symmetry-reduced) keys. Resume validates it against the resuming
	// checker's own setting: the two key spaces are incompatible, and a
	// frontier explored under one cannot soundly continue under the
	// other.
	Sym bool

	Popped int64 // states popped across all prior segments
	Stats  Stats // work counters accumulated across all prior segments

	frontier []ExploreState
	visited  []graph.Hash128
	vio      *vioCheckpoint
}

// vioCheckpoint preserves the running minimum of offerViolation across
// segments.
type vioCheckpoint struct {
	verdict Verdict
	message string
	stamp   int
	key     graph.Hash128
	witness *graph.Graph
}

// FrontierLen returns the number of unexplored states the checkpoint
// holds.
func (c *Checkpoint) FrontierLen() int { return len(c.frontier) }

// VisitedLen returns the number of visited-set keys the checkpoint
// holds.
func (c *Checkpoint) VisitedLen() int { return len(c.visited) }

// Checkpoint file format: the store's record framing with a distinct
// magic —
//
//	[4B magic "VSCK"][4B payload len LE][payload][4B CRC32(payload)]
//
// — one record per region, in fixed order: a header, the optional
// violation, the visited keys, one record per frontier state, and a
// trailing END record repeating the counts. A file whose records do
// not parse, whose CRCs do not match, or whose END counts disagree is
// refused ENTIRELY: a partially loaded frontier could silently hide
// the violating branch, so torn or truncated checkpoints fall back to
// a cold run rather than an unsound resume. (The store can truncate
// torn tails because its records are independent facts; checkpoint
// records are jointly one fact.)
const (
	ckptMagic   = "VSCK"
	ckptVersion = 3 // v3: retry-collapse counter in Stats (v2: symmetry flag, canonicalization counters)

	ckRecHeader    = 'H'
	ckRecViolation = 'B'
	ckRecVisited   = 'V'
	ckRecState     = 'S'
	ckRecEnd       = 'E'
)

func appendCkptRecord(buf, payload []byte) []byte {
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// nextCkptRecord splits one framed record off data, verifying magic
// and CRC.
func nextCkptRecord(data []byte) (payload, rest []byte, err error) {
	if len(data) < 12 {
		return nil, nil, fmt.Errorf("checkpoint: truncated record header (%d bytes left)", len(data))
	}
	if string(data[:4]) != ckptMagic {
		return nil, nil, fmt.Errorf("checkpoint: bad record magic %q", data[:4])
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if uint64(n) > uint64(len(data)-12) {
		return nil, nil, fmt.Errorf("checkpoint: record of %d bytes exceeds remaining input", n)
	}
	payload = data[8 : 8+n]
	if crc := binary.LittleEndian.Uint32(data[8+n : 12+n]); crc != crc32.ChecksumIEEE(payload) {
		return nil, nil, fmt.Errorf("checkpoint: record CRC mismatch")
	}
	return payload, data[12+n:], nil
}

func appendHash128(buf []byte, h graph.Hash128) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, h[0])
	return binary.LittleEndian.AppendUint64(buf, h[1])
}

func (d *ckptDec) hash128() graph.Hash128 {
	var h graph.Hash128
	if d.err != nil {
		return h
	}
	if len(d.b)-d.off < 16 {
		d.fail("truncated hash")
		return h
	}
	h[0] = binary.LittleEndian.Uint64(d.b[d.off:])
	h[1] = binary.LittleEndian.Uint64(d.b[d.off+8:])
	d.off += 16
	return h
}

// ckptDec is a sticky-error cursor over one record payload.
type ckptDec struct {
	b   []byte
	off int
	err error
}

func (d *ckptDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

func (d *ckptDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated payload")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *ckptDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *ckptDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *ckptDec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string of %d bytes exceeds payload", n)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func appendStats(buf []byte, s Stats) []byte {
	for _, v := range [...]int{s.Popped, s.Pushed, s.Executions, s.Revisits,
		s.Duplicates, s.Wasteful, s.Collapsed, s.Inconsist, s.Blocked,
		s.Canonicalized, s.CanonFast, s.CanonRefined, s.CanonPruned} {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

func (d *ckptDec) stats() Stats {
	return Stats{
		Popped:        int(d.uvarint()),
		Pushed:        int(d.uvarint()),
		Executions:    int(d.uvarint()),
		Revisits:      int(d.uvarint()),
		Duplicates:    int(d.uvarint()),
		Wasteful:      int(d.uvarint()),
		Collapsed:     int(d.uvarint()),
		Inconsist:     int(d.uvarint()),
		Blocked:       int(d.uvarint()),
		Canonicalized: int(d.uvarint()),
		CanonFast:     int(d.uvarint()),
		CanonRefined:  int(d.uvarint()),
		CanonPruned:   int(d.uvarint()),
	}
}

// Encode serializes the checkpoint into the framed record format.
func (c *Checkpoint) Encode() []byte {
	// Header.
	p := []byte{ckRecHeader, ckptVersion}
	p = binary.AppendUvarint(p, uint64(len(c.Model)))
	p = append(p, c.Model...)
	p = appendHash128(p, c.Prog)
	p = appendHash128(p, c.Epoch)
	if c.Sym {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	p = binary.AppendUvarint(p, uint64(c.Popped))
	p = appendStats(p, c.Stats)
	buf := appendCkptRecord(nil, p)

	// Best violation so far, if any.
	if v := c.vio; v != nil {
		p = []byte{ckRecViolation, byte(v.verdict)}
		p = binary.AppendUvarint(p, uint64(v.stamp))
		p = appendHash128(p, v.key)
		p = binary.AppendUvarint(p, uint64(len(v.message)))
		p = append(p, v.message...)
		p = graph.AppendGraph(p, v.witness)
		buf = appendCkptRecord(buf, p)
	}

	// Visited keys.
	p = []byte{ckRecVisited}
	p = binary.AppendUvarint(p, uint64(len(c.visited)))
	for _, k := range c.visited {
		p = appendHash128(p, k)
	}
	buf = appendCkptRecord(buf, p)

	// Frontier states, one record each, in resume-push order.
	for _, st := range c.frontier {
		p = []byte{ckRecState}
		if st.hasForced {
			p = append(p, 1)
			p = binary.AppendVarint(p, int64(st.forcedR.Thread))
			p = binary.AppendVarint(p, int64(st.forcedR.Index))
			p = binary.AppendVarint(p, int64(st.forcedW.Thread))
			p = binary.AppendVarint(p, int64(st.forcedW.Index))
		} else {
			p = append(p, 0)
		}
		p = graph.AppendGraph(p, st.g)
		buf = appendCkptRecord(buf, p)
	}

	// END: repeat the counts so truncation after a valid record is
	// still detected.
	p = []byte{ckRecEnd}
	p = binary.AppendUvarint(p, uint64(len(c.frontier)))
	p = binary.AppendUvarint(p, uint64(len(c.visited)))
	return appendCkptRecord(buf, p)
}

// DecodeCheckpoint parses a checkpoint file image. Any framing error,
// CRC mismatch, missing END record, or count disagreement rejects the
// whole file: a partial frontier is unsound to resume from.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	c := &Checkpoint{}
	sawHeader, sawEnd := false, false
	for len(data) > 0 {
		payload, rest, err := nextCkptRecord(data)
		if err != nil {
			return nil, err
		}
		data = rest
		if sawEnd {
			return nil, fmt.Errorf("checkpoint: data after END record")
		}
		d := &ckptDec{b: payload}
		switch typ := d.byte(); typ {
		case ckRecHeader:
			if sawHeader {
				return nil, fmt.Errorf("checkpoint: duplicate header")
			}
			sawHeader = true
			if v := d.byte(); d.err == nil && v != ckptVersion {
				return nil, fmt.Errorf("checkpoint: unsupported version %d", v)
			}
			c.Model = d.str()
			c.Prog = d.hash128()
			c.Epoch = d.hash128()
			c.Sym = d.byte() != 0
			c.Popped = int64(d.uvarint())
			c.Stats = d.stats()
		case ckRecViolation:
			if !sawHeader {
				return nil, fmt.Errorf("checkpoint: record before header")
			}
			v := &vioCheckpoint{verdict: Verdict(d.byte())}
			if v.verdict != SafetyViolation && v.verdict != ATViolation {
				return nil, fmt.Errorf("checkpoint: invalid violation verdict %d", v.verdict)
			}
			v.stamp = int(d.uvarint())
			v.key = d.hash128()
			v.message = d.str()
			if d.err == nil {
				g, _, gerr := graph.DecodeGraph(d.b[d.off:])
				if gerr != nil {
					return nil, gerr
				}
				v.witness = g
			}
			c.vio = v
		case ckRecVisited:
			if !sawHeader {
				return nil, fmt.Errorf("checkpoint: record before header")
			}
			n := d.uvarint()
			if d.err == nil && n > uint64(len(d.b)-d.off)/16 {
				return nil, fmt.Errorf("checkpoint: visited count %d exceeds payload", n)
			}
			c.visited = make([]graph.Hash128, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				c.visited = append(c.visited, d.hash128())
			}
		case ckRecState:
			if !sawHeader {
				return nil, fmt.Errorf("checkpoint: record before header")
			}
			st := ExploreState{}
			if d.byte() != 0 {
				st.hasForced = true
				st.forcedR = graph.EventID{Thread: int(d.varint()), Index: int(d.varint())}
				st.forcedW = graph.EventID{Thread: int(d.varint()), Index: int(d.varint())}
			}
			if d.err == nil {
				g, _, gerr := graph.DecodeGraph(d.b[d.off:])
				if gerr != nil {
					return nil, gerr
				}
				st.g = g
			}
			c.frontier = append(c.frontier, st)
		case ckRecEnd:
			if !sawHeader {
				return nil, fmt.Errorf("checkpoint: record before header")
			}
			sawEnd = true
			nf, nv := d.uvarint(), d.uvarint()
			if d.err == nil && (nf != uint64(len(c.frontier)) || nv != uint64(len(c.visited))) {
				return nil, fmt.Errorf("checkpoint: END counts (%d states, %d visited) disagree with records (%d, %d)",
					nf, nv, len(c.frontier), len(c.visited))
			}
		default:
			return nil, fmt.Errorf("checkpoint: unknown record type %q", typ)
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	if !sawHeader || !sawEnd {
		return nil, fmt.Errorf("checkpoint: incomplete file (header %v, end %v)", sawHeader, sawEnd)
	}
	return c, nil
}

// WriteCheckpointFile atomically replaces path with the encoded
// checkpoint: write to a temp file in the same directory, sync, then
// rename over the target — a crash at any point leaves either the old
// complete file or the new complete file, never a torn one.
func WriteCheckpointFile(path string, c *Checkpoint) error {
	if err := faultinject.Fire("ckpt.write"); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tf, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint write: %w", err)
	}
	tmp := tf.Name()
	cleanup := func() {
		tf.Close()
		os.Remove(tmp)
	}
	if _, err := tf.Write(c.Encode()); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint write: %w", err)
	}
	if err := tf.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint sync: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint close: %w", err)
	}
	if err := faultinject.Fire("ckpt.rename"); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpointFile reads and decodes a checkpoint file.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data)
}

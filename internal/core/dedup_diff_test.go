package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// runBoth runs the program under both dedup key schemes and asserts the
// explorations are identical: same verdict and the exact same work
// profile (pops, pushes, executions, revisits, duplicates, prunes). The
// hashed 128-bit keys must not change what the checker explores — only
// how cheaply it keys the visited set.
func runBoth(t *testing.T, model mm.Model, p *vprog.Program) {
	t.Helper()
	hashed := core.New(model)
	// The legacy path has no symmetry reduction; pin the hashed path to
	// raw keys too so the Stats comparison stays exact. (Symmetry-on
	// vs -off is its own differential suite, sym_diff_test.go.)
	hashed.NoSymmetry = true
	legacy := core.New(model)
	legacy.LegacyDedup = true
	hres := hashed.Run(p)
	lres := legacy.Run(p)
	if hres.Verdict != lres.Verdict {
		t.Fatalf("%s under %s: hashed verdict %v, legacy verdict %v",
			p.Name, model.Name(), hres.Verdict, lres.Verdict)
	}
	if hres.Stats != lres.Stats {
		t.Fatalf("%s under %s: exploration diverged\nhashed: %+v\nlegacy: %+v",
			p.Name, model.Name(), hres.Stats, lres.Stats)
	}
}

// TestDedupDifferentialLitmus: the hashed visited set explores the
// litmus corpus exactly as the legacy string-keyed one, at both
// strengths and under every model.
func TestDedupDifferentialLitmus(t *testing.T) {
	for _, name := range harness.LitmusNames() {
		for _, strong := range []bool{false, true} {
			p := harness.Litmus(name, strong)
			for _, m := range []mm.Model{mm.SC, mm.TSO, mm.WMM, mm.RA} {
				runBoth(t, m, p)
			}
		}
	}
}

// TestDedupDifferentialLocks: the same bar on the lock harnesses,
// including the MCS and qspinlock clients called out by the perf work
// and the buggy study cases (violation verdicts must agree too).
func TestDedupDifferentialLocks(t *testing.T) {
	names := []string{"spin", "ticket", "mcs", "qspin", "dpdkmcs-buggy", "huaweimcs-buggy"}
	if !testing.Short() {
		names = append(names, "ttas", "clh")
	}
	for _, name := range names {
		alg := locks.ByName(name)
		if alg == nil {
			t.Fatalf("unknown lock %q", name)
		}
		runBoth(t, mm.WMM, harness.MutexClient(alg, alg.DefaultSpec(), 2, 1))
	}
}

// TestDedupDifferentialQueuePath covers the revisit-heavy qspinlock
// queue-path litmus, where forced-rf states stress the folded key.
func TestDedupDifferentialQueuePath(t *testing.T) {
	alg := locks.ByName("qspin")
	runBoth(t, mm.WMM, harness.QspinQueuePathLitmus(alg.DefaultSpec()))
}

package core

import (
	"testing"

	"repro/internal/graph"
)

// mark builds a distinguishable state: deque tests only need identity,
// so each state carries a unique forcedR index.
func mark(i int) ExploreState {
	return ExploreState{hasForced: true, forcedR: graph.EventID{Thread: 0, Index: i}}
}

func idOf(st ExploreState) int { return st.forcedR.Index }

// TestDequeLIFOAndFIFO: the owner end behaves as a stack, the steal end
// as a queue, across ring growth.
func TestDequeLIFOAndFIFO(t *testing.T) {
	var d deque
	const n = 1000 // forces several grow() doublings past dequeInitCap
	for i := 0; i < n; i++ {
		if !d.pushTail(mark(i)) {
			t.Fatalf("push %d rejected below the bound", i)
		}
	}
	// Steal the FIFO end: the oldest states come out first.
	var buf [stealBatch]ExploreState
	got := d.stealHead(buf[:], 3)
	if got != 3 {
		t.Fatalf("stealHead took %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if idOf(buf[i]) != i {
			t.Fatalf("steal %d returned state %d, want %d", i, idOf(buf[i]), i)
		}
	}
	// Pop the LIFO end: the newest remaining states come out first.
	for i := n - 1; i >= 3; i-- {
		st, ok := d.popTail()
		if !ok || idOf(st) != i {
			t.Fatalf("popTail returned (%v, %v), want state %d", idOf(st), ok, i)
		}
	}
	if _, ok := d.popTail(); ok {
		t.Fatal("deque should be empty")
	}
}

// TestDequeStealHalf: a thief takes half the queue (rounded up), capped
// at the batch size, and a singleton queue is stealable.
func TestDequeStealHalf(t *testing.T) {
	var d deque
	var buf [stealBatch]ExploreState
	d.pushTail(mark(0))
	if got := d.stealHead(buf[:], stealBatch); got != 1 {
		t.Fatalf("singleton steal took %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		d.pushTail(mark(i))
	}
	if got := d.stealHead(buf[:], stealBatch); got != 5 {
		t.Fatalf("steal of 10 took %d, want half (5)", got)
	}
	if d.size != 5 {
		t.Fatalf("victim retains %d, want 5", d.size)
	}
}

// TestDequeBound: pushes beyond the hard cap are rejected (the caller
// spills them), and the deque still drains correctly afterwards.
func TestDequeBound(t *testing.T) {
	var d deque
	for i := 0; i < dequeMaxCap; i++ {
		if !d.pushTail(mark(i)) {
			t.Fatalf("push %d rejected below the bound", i)
		}
	}
	if d.pushTail(mark(dequeMaxCap)) {
		t.Fatal("push beyond dequeMaxCap must be rejected")
	}
	st, ok := d.popTail()
	if !ok || idOf(st) != dequeMaxCap-1 {
		t.Fatalf("popTail after bound = (%d, %v)", idOf(st), ok)
	}
	if !d.pushTail(mark(dequeMaxCap)) {
		t.Fatal("push must succeed again after a pop")
	}
}

package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// visitedShards is the shard count of the concurrent visited set. 64
// single-mutex shards keep the chance of two workers landing on the
// same shard at the same instant low at the worker counts AMC runs with
// (a handful to a few dozen), while staying cheap to pool and clear.
const visitedShards = 64

// VisitedSet is the hash-sharded concurrent visited set of the
// work-graph explorer. States are keyed by their 128-bit structural
// hash (ExploreState.key); the hash is already uniformly mixed, so the
// low bits of one lane select the shard directly.
//
// InsertNew — an atomic insert-if-absent — is the only mutating
// operation, and it is what makes parallel exploration deterministic
// where it counts: however pops interleave across workers, exactly one
// worker wins each key and expands a state with that fingerprint, so
// every complete execution is examined exactly once and the verdict is
// schedule-independent (core.Stats documents which counters are exact
// and which may drift with representative choice).
type VisitedSet struct {
	shards     [visitedShards]visitedShard
	contention atomic.Int64
}

type visitedShard struct {
	mu sync.Mutex
	m  map[graph.Hash128]struct{}
	// Pad shard headers apart: the shard locks are the hottest
	// concurrently-written words of a parallel run, and false sharing
	// between neighboring shards would manufacture contention the
	// counter could not explain.
	_ [6]uint64
}

// visitedPool recycles VisitedSets — and, more importantly, the bucket
// arrays of their shard maps — across runs. Optimization descents run
// thousands of AMC instances back to back; before pooling, each run's
// fresh dedup map rehashed its way up from empty and dominated the
// allocation churn. release clears the maps but keeps their storage.
var visitedPool = sync.Pool{New: func() any {
	v := &VisitedSet{}
	for i := range v.shards {
		v.shards[i].m = make(map[graph.Hash128]struct{})
	}
	return v
}}

// NewVisitedSet returns an empty set, recycling pooled shard storage
// when available.
func NewVisitedSet() *VisitedSet { return visitedPool.Get().(*VisitedSet) }

// release clears the set and returns it to the pool. Callers must not
// retain references past this.
func (v *VisitedSet) release() {
	for i := range v.shards {
		clear(v.shards[i].m)
	}
	v.contention.Store(0)
	visitedPool.Put(v)
}

// InsertNew adds k and reports whether it was absent — the atomic
// dedup decision of the explorer. Contended shard acquisitions are
// counted so that a workload hammering one shard shows up in the
// scheduler counters of Result.Report rather than as a silent slowdown.
func (v *VisitedSet) InsertNew(k graph.Hash128) bool {
	sh := &v.shards[k[1]&(visitedShards-1)]
	if !sh.mu.TryLock() {
		v.contention.Add(1)
		sh.mu.Lock()
	}
	_, dup := sh.m[k]
	if !dup {
		sh.m[k] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// Has reports whether k is present (lookup without insertion).
func (v *VisitedSet) Has(k graph.Hash128) bool {
	sh := &v.shards[k[1]&(visitedShards-1)]
	sh.mu.Lock()
	_, ok := sh.m[k]
	sh.mu.Unlock()
	return ok
}

// Len returns the number of keys across all shards.
func (v *VisitedSet) Len() int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Contention returns how many shard-lock acquisitions found the lock
// held so far.
func (v *VisitedSet) Contention() int { return int(v.contention.Load()) }

// Snapshot appends every key to dst and returns the extended slice —
// the visited-set summary a checkpoint persists. Shards are locked one
// at a time; the checkpointer quiesces the workers separately, so the
// copy is a consistent point-in-time view when it matters (and merely
// a superset-free approximation never relied upon otherwise).
func (v *VisitedSet) Snapshot(dst []graph.Hash128) []graph.Hash128 {
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			dst = append(dst, k)
		}
		sh.mu.Unlock()
	}
	return dst
}

// legacyVisited is the sharded variant of the historical string-keyed
// visited set, kept only for the Checker.LegacyDedup differential tests
// (which assert the hashed and string-keyed explorations are
// identical). Strings are sharded by FNV-1a.
type legacyVisited struct {
	shards [visitedShards]legacyShard
}

type legacyShard struct {
	mu sync.Mutex
	m  map[string]bool
}

func newLegacyVisited() *legacyVisited {
	v := &legacyVisited{}
	for i := range v.shards {
		v.shards[i].m = make(map[string]bool)
	}
	return v
}

func (v *legacyVisited) insertNew(k string) bool {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h = (h ^ uint64(k[i])) * 1099511628211
	}
	sh := &v.shards[h&(visitedShards-1)]
	sh.mu.Lock()
	dup := sh.m[k]
	if !dup {
		sh.m[k] = true
	}
	sh.mu.Unlock()
	return !dup
}

package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// randOp is one generated straight-line instruction.
type randOp struct {
	isStore bool
	loc     int
	val     uint64
	mode    vprog.Mode
}

// randProgram generates a deterministic straight-line two-thread
// program from a seed: loads and stores over two locations with modes
// up to acquire/release (mode monotonicity across SC ⊆ TSO ⊆ WMM holds
// for this fragment; SC-mode accesses would break TSO ⊆ WMM, see
// TestModelMonotonicity).
func randProgram(seed int64, opsPerThread int) *vprog.Program {
	rng := rand.New(rand.NewSource(seed))
	mkOps := func() []randOp {
		ops := make([]randOp, opsPerThread)
		for i := range ops {
			o := randOp{
				isStore: rng.Intn(2) == 0,
				loc:     rng.Intn(2),
				val:     uint64(rng.Intn(3) + 1),
			}
			if o.isStore {
				o.mode = []vprog.Mode{vprog.Rlx, vprog.Rel}[rng.Intn(2)]
			} else {
				o.mode = []vprog.Mode{vprog.Rlx, vprog.Acq}[rng.Intn(2)]
			}
			ops[i] = o
		}
		return ops
	}
	t0ops, t1ops := mkOps(), mkOps()
	return &vprog.Program{
		Name: fmt.Sprintf("random/%d", seed),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			locs := []*vprog.Var{env.Var("x", 0), env.Var("y", 0)}
			mk := func(ops []randOp) vprog.ThreadFunc {
				return func(m vprog.Mem) {
					for _, o := range ops {
						if o.isStore {
							m.Store(locs[o.loc], o.val, o.mode)
						} else {
							m.Load(locs[o.loc], o.mode)
						}
					}
				}
			}
			return []vprog.ThreadFunc{mk(t0ops), mk(t1ops)}, nil
		},
	}
}

// TestModelMonotonicity is a differential property test: for random
// rlx/acq/rel programs, every SC-consistent execution is TSO-consistent
// and every TSO-consistent execution is WMM-consistent, so the number
// of complete executions the checker enumerates must be monotone in
// model weakness. This cross-checks the three consistency predicates
// and the exploration itself against each other.
func TestModelMonotonicity(t *testing.T) {
	prop := func(seedRaw int32, opsRaw uint8) bool {
		ops := int(opsRaw%3) + 2 // 2..4 ops per thread
		p := randProgram(int64(seedRaw), ops)
		count := func(m mm.Model) int {
			res := core.New(m).Run(p)
			if res.Verdict != core.OK {
				t.Fatalf("%s under %s: %v", p.Name, m.Name(), res)
			}
			return res.Stats.Executions
		}
		sc, tso, wmm := count(mm.SC), count(mm.TSO), count(mm.WMM)
		if sc < 1 {
			return false // every program has at least one execution
		}
		return sc <= tso && tso <= wmm
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCheckerDeterminism: two runs of the same program produce
// identical statistics (Theorem 1's algorithmic determinism — the
// exploration order is fixed).
func TestCheckerDeterminism(t *testing.T) {
	p := harness.Fig3TTAS()
	a := core.New(mm.WMM).Run(p)
	b := core.New(mm.WMM).Run(p)
	if a.Stats != b.Stats {
		t.Fatalf("non-deterministic exploration: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestAMCTheorem1_Termination: AMC terminates on every registered
// primitive's client — including awaits that could loop forever under
// naive SMC (the W(G) filter collapses GF to the finite GF*).
func TestAMCTheorem1_Termination(t *testing.T) {
	for _, alg := range locks.All() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			res := core.New(mm.WMM).Run(harness.MutexClient(alg, alg.DefaultSpec(), 2, 1))
			if res.Verdict == core.Error {
				t.Fatalf("checker did not terminate cleanly: %v", res.Err)
			}
			if alg.Buggy && res.Ok() {
				t.Fatalf("known-buggy %s verified", alg.Name)
			}
			if !alg.Buggy && !res.Ok() {
				t.Fatalf("correct %s rejected: %v", alg.Name, res)
			}
		})
	}
}

// TestAMCTheorem1_NoFalsePositives: strengthening barriers must never
// introduce a violation — any spec at least as strong as a verified one
// verifies. (Relaxation monotonicity of the three models.)
func TestAMCTheorem1_NoFalsePositives(t *testing.T) {
	for _, name := range []string{"spin", "ttas", "ticket", "mcs"} {
		alg := locks.ByName(name)
		spec := alg.DefaultSpec()
		for _, p := range spec.Points() {
			stronger := spec.Clone()
			stronger.Set(p, vprog.SC)
			res := core.New(mm.WMM).Run(harness.MutexClient(alg, stronger, 2, 1))
			if !res.Ok() {
				t.Errorf("%s: strengthening %s to sc broke verification: %v", name, p, res)
			}
		}
	}
}

// TestAMCWastefulFilterEffect: the W(G) filter must fire on awaiting
// programs (otherwise the search space of Fig. 1 would be infinite).
func TestAMCWastefulFilterEffect(t *testing.T) {
	res := core.New(mm.WMM).Run(harness.Fig3TTAS())
	if !res.Ok() {
		t.Fatal(res)
	}
	if res.Stats.Wasteful == 0 {
		t.Error("expected wasteful executions to be pruned for an awaiting program")
	}
	if res.Stats.Revisits == 0 {
		t.Error("expected write→read revisits during lock exploration")
	}
}

// TestMaxGraphsGuard: the MaxGraphs limit turns a too-large exploration
// into a clean error instead of a hang.
func TestMaxGraphsGuard(t *testing.T) {
	c := core.New(mm.WMM)
	c.MaxGraphs = 10
	res := c.Run(harness.MutexClient(locks.ByName("mcs"), locks.ByName("mcs").DefaultSpec(), 2, 1))
	if res.Verdict != core.Error {
		t.Fatalf("want Error on MaxGraphs, got %v", res)
	}
}

// TestUnboundedAwaitDetected: an await that polls no shared variable
// violates the progress assumptions and must be reported as an error,
// not spin the replayer forever.
func TestUnboundedAwaitDetected(t *testing.T) {
	p := &vprog.Program{
		Name: "bad/await-no-reads",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			t0 := func(m vprog.Mem) {
				i := 0
				m.AwaitWhile(func() bool { i++; return true })
			}
			return []vprog.ThreadFunc{t0}, nil
		},
	}
	res := core.New(mm.WMM).Run(p)
	if res.Verdict != core.Error {
		t.Fatalf("want Error for local-only await, got %v", res)
	}
}

// TestNestedAwaitRejected: the paper's syntactic restriction (§2.1.1).
func TestNestedAwaitRejected(t *testing.T) {
	p := &vprog.Program{
		Name: "bad/nested-await",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			t0 := func(m vprog.Mem) {
				m.AwaitWhile(func() bool {
					m.AwaitWhile(func() bool { return m.Load(x, vprog.Rlx) == 1 })
					return false
				})
			}
			return []vprog.ThreadFunc{t0}, nil
		},
	}
	res := core.New(mm.WMM).Run(p)
	if res.Verdict != core.Error {
		t.Fatalf("want Error for nested awaits, got %v", res)
	}
}

// TestInlineAssert: thread-local assertions become error events with
// the failing graph attached.
func TestInlineAssert(t *testing.T) {
	p := &vprog.Program{
		Name: "assert/inline",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			t0 := func(m vprog.Mem) { m.Store(x, 1, vprog.Rlx) }
			t1 := func(m vprog.Mem) {
				v := m.Load(x, vprog.Rlx)
				m.Assert(v == 0, "observed the write")
			}
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
	res := core.New(mm.WMM).Run(p)
	if res.Verdict != core.SafetyViolation || res.Witness == nil {
		t.Fatalf("want safety violation with witness, got %v", res)
	}
}

package core_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestVisitedSetInsertLookup: basic insert-if-absent semantics.
func TestVisitedSetInsertLookup(t *testing.T) {
	v := core.NewVisitedSet()
	k := graph.Hash128{0xdead, 0xbeef}
	if v.Has(k) {
		t.Fatal("empty set claims membership")
	}
	if !v.InsertNew(k) {
		t.Fatal("first insert must report new")
	}
	if v.InsertNew(k) {
		t.Fatal("second insert must report duplicate")
	}
	if !v.Has(k) || v.Len() != 1 {
		t.Fatalf("Has=%v Len=%d after one insert", v.Has(k), v.Len())
	}
}

// TestVisitedSetSameShard: keys that collide on the same shard (equal
// low bits of the shard lane) stay distinct entries.
func TestVisitedSetSameShard(t *testing.T) {
	v := core.NewVisitedSet()
	const n = 128
	for i := 0; i < n; i++ {
		// Same low 6 bits of k[1] => same shard for every key.
		k := graph.Hash128{uint64(i), uint64(i) << 16}
		if !v.InsertNew(k) {
			t.Fatalf("key %d reported duplicate on first insert", i)
		}
	}
	if v.Len() != n {
		t.Fatalf("Len = %d, want %d", v.Len(), n)
	}
}

// TestVisitedSetConcurrent: many goroutines race to insert overlapping
// key sets — every key must be admitted exactly once, and lookups must
// never tear. Run under -race this is the memory-safety bar for the
// parallel explorer's dedup path.
func TestVisitedSetConcurrent(t *testing.T) {
	v := core.NewVisitedSet()
	const (
		goroutines = 8
		keys       = 4000
	)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				// Every goroutine inserts the same key set, shifted so that
				// neighbors collide on shards: contention plus duplication.
				k := graph.Hash128{uint64(i) * 0x9e3779b97f4a7c15, uint64(i)}
				if v.InsertNew(k) {
					admitted.Add(1)
				}
				if !v.Has(k) {
					t.Errorf("key %d vanished after insert", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := admitted.Load(); got != keys {
		t.Fatalf("admitted %d keys, want exactly %d (one winner per key)", got, keys)
	}
	if v.Len() != keys {
		t.Fatalf("Len = %d, want %d", v.Len(), keys)
	}
}

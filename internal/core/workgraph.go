package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/vprog"
)

// This file is the work-graph scheduler: one Checker.Run is no longer a
// private recursive stack machine but a shared frontier of ExploreState
// items that any number of workers execute cooperatively. Each worker
// owns a bounded deque (LIFO-local execution, FIFO stealing); a
// hash-sharded VisitedSet arbitrates which worker expands each state;
// and results merge deterministically, so a parallel run is observably
// identical to a sequential one (see merge below).
//
// Workers come from two sources, scheduled through one mechanism:
//
//   - standalone runs with WorkersPerRun > 1 spawn their workers
//     up front;
//   - runs launched through a Pool borrow idle pool slots on demand
//     (maybeRecruit), so the same slots that fan out whole runs —
//     PR 1's scheduling unit — also execute stolen intra-run items
//     when no whole run is waiting for them. Queued runs always have
//     priority over borrows (Pool.tryAcquire refuses while a run
//     waits), so intra-run stealing only soaks up capacity that would
//     otherwise idle.

// recruitThreshold is how many queued states a run must have before it
// tries to borrow an idle pool slot: below this the run would finish
// before the helper warmed up.
const recruitThreshold = 8

// explorer is one worker's private view of an exploration. Everything
// a step touches — its own build of the program (thread closures are
// not reentrant across concurrent replays), replay scratch, child
// buffer, statistics — lives here, so executing an item never contends
// beyond the deque locks and the visited set.
type explorer struct {
	x      *exploration
	c      *Checker
	id     int
	helper bool // borrowed pool slot: exits when idle instead of parking

	// Per-worker instantiation of the program under test.
	threads []vprog.ThreadFunc
	vars    *vprog.VarSet
	final   vprog.FinalCheck
	built   bool

	dq       deque
	childBuf []ExploreState
	stealBuf [stealBatch]ExploreState

	// Replay scratch, reused across every item this worker executes.
	rres  []replayResult
	rmems []replayMem
	rfbuf []graph.RF

	// Symmetry-reduction state of the item being executed. curPerm is
	// the relabeling onto the canonical representative (nil when the
	// popped graph already is canonical, or symmetry is off); lastKey is
	// the dedup key the step inserted — execute reuses it as the
	// violation tie-break key so orbit members compare equal. Both are
	// valid from the step's Canonicalize until this worker's next pop.
	symSc   graph.SymScratch
	curPerm []int32
	lastKey graph.Hash128

	stats    Stats
	executed int
	steals   int
	stolen   int
	snapTick int // items since this worker last considered a snapshot
}

// build instantiates the program for this worker. Build is
// deterministic (vprog.Program contract), so every worker sees the same
// variable layout the root graph was created with.
func (w *explorer) build() {
	w.vars = &vprog.VarSet{}
	w.threads, w.final = w.x.prog.Build(w.vars)
	w.built = true
}

// exploration is the shared work-graph of one Checker run.
type exploration struct {
	c    *Checker
	prog *vprog.Program
	ctx  context.Context

	// single selects the historical strictly-sequential semantics:
	// exactly one worker, DFS order, stop at the first violation.
	single bool

	visited *VisitedSet
	legacy  *legacyVisited
	// sym, when non-nil, is the program's validated thread-symmetry
	// spec: states are deduplicated (and violations tie-broken) on
	// canonical keys, collapsing each orbit of relabeled states to one
	// explored representative.
	sym *graph.SymSpec

	workers []*explorer

	// overflow receives pushes that found their deque at the hard
	// bound; every worker drains it before trying to steal.
	ofMu     sync.Mutex
	overflow []ExploreState
	spills   int

	queued   atomic.Int64 // states sitting in deques + overflow (advisory, for parking)
	inflight atomic.Int64 // queued + currently executing; 0 <=> exploration drained
	popped   atomic.Int64 // MaxGraphs guard and cancellation cadence

	parkMu   sync.Mutex
	parkCond *sync.Cond
	parked   int
	parkedN  atomic.Int32 // mirror of parked, readable without the lock
	done     atomic.Bool

	// Result merging. hard is a run-terminating result (Error,
	// Canceled, or — in single mode — the first violation); vio is the
	// deterministic winner among violations found by a parallel run.
	resMu    sync.Mutex
	hard     *Result
	vio      *Result
	vioStamp int
	vioKey   graph.Hash128

	// Pool-slot borrowing.
	helperMu  sync.Mutex
	freeSlots []int
	recruited atomic.Int32

	// Crash-safety state (see checkpoint.go). start anchors the
	// MaxDuration budget; budgetOn gates the per-pop budget checks;
	// progFP pins the program identity into checkpoints; baseStats and
	// basePopped carry the counters of prior segments when this run
	// resumed from a checkpoint.
	start      time.Time
	budgetOn   bool
	progFP     graph.Hash128
	baseStats  Stats
	basePopped int64

	// Periodic snapshots. Workers hold snapGate for reading around
	// each (take item, execute) pair; the snapshotting worker takes it
	// for writing, which quiesces everyone between items — the instant
	// at which every unprocessed state sits in a deque or the overflow
	// queue. snapping elects one snapshotter; lastSnap (unix nanos)
	// paces them at snapEvery.
	snapGate  sync.RWMutex
	snapping  atomic.Bool
	lastSnap  atomic.Int64
	snapEvery int64

	wg sync.WaitGroup
}

// runWorker is the scheduling loop every worker executes: take the next
// item (local LIFO, then overflow, then steal), run it, and detect
// global completion when the in-flight count drains to zero.
//
// When periodic snapshots are enabled the (take, execute, retire) unit
// runs under the snapshot gate's read side, and parking happens only
// outside it — the gate's writer therefore observes the run at an
// instant where no worker holds a state privately, which is what makes
// the captured frontier complete.
func (x *exploration) runWorker(w *explorer) {
	gated := x.snapEvery > 0
	for {
		if gated {
			x.snapGate.RLock()
		}
		st, ok, wait := x.tryNext(w)
		if !ok {
			if gated {
				x.snapGate.RUnlock()
			}
			if !wait {
				return
			}
			x.park()
			continue
		}
		x.execute(w, st)
		drained := x.inflight.Add(-1) == 0
		if gated {
			x.snapGate.RUnlock()
		}
		if drained {
			x.stopAll()
			return
		}
		if gated {
			if w.snapTick++; w.snapTick >= snapCheckEvery {
				w.snapTick = 0
				x.maybeSnapshot()
			}
		}
	}
}

// snapCheckEvery is how many executed items pass between a worker's
// glances at the snapshot clock: one time.Now per this many items.
const snapCheckEvery = 16

// tryNext finds work for w without blocking. ok means st is valid;
// otherwise wait distinguishes "park and retry" (frontier momentarily
// empty) from "worker is finished" (done flag, sequential drain, or a
// pool helper yielding its slot).
func (x *exploration) tryNext(w *explorer) (st ExploreState, ok, wait bool) {
	if x.done.Load() {
		return ExploreState{}, false, false
	}
	if w.helper && x.c.pool.waiting.Load() > 0 {
		// A whole run is queued on the pool: yield the borrowed slot
		// immediately — jobs outrank borrows. Anything left in this
		// worker's deque stays stealable by the run's other workers.
		return ExploreState{}, false, false
	}
	if st, ok := w.dq.popTail(); ok {
		x.queued.Add(-1)
		return st, true, false
	}
	if st, ok := x.takeOverflow(); ok {
		x.queued.Add(-1)
		return st, true, false
	}
	if x.single {
		// One worker, empty deque, empty overflow: the run is drained
		// (the inflight count hit zero on the previous decrement).
		return ExploreState{}, false, false
	}
	if st, ok := x.steal(w); ok {
		x.queued.Add(-1)
		return st, true, false
	}
	if w.helper {
		// A borrowed slot with nothing to steal goes back to the pool;
		// the run re-recruits if its frontier grows again.
		return ExploreState{}, false, false
	}
	return ExploreState{}, false, true
}

// execute runs one item: global guards (cancellation cadence, budget,
// MaxGraphs), then the step, then either publishes the children or
// merges the violation. Every guard fires BEFORE the state is counted
// as processed, so a guard-stopped state can be returned to the
// frontier intact (haltUndecided) and the checkpoint's counters agree
// exactly with the work actually done.
func (x *exploration) execute(w *explorer, st ExploreState) {
	n := x.popped.Add(1)
	if n%cancelCheckEvery == 0 && x.ctx.Err() != nil {
		err := x.ctx.Err()
		msg := "exploration canceled: " + err.Error()
		if x.c.CheckpointOnCancel {
			x.haltUndecided(w, st, msg)
		} else {
			x.halt(&Result{Verdict: Canceled, Err: err, Message: msg})
		}
		return
	}
	if x.budgetOn {
		if msg := x.overBudget(n); msg != "" {
			x.haltUndecided(w, st, msg)
			return
		}
	}
	if x.basePopped+n > int64(x.c.MaxGraphs) {
		x.halt(&Result{Verdict: Error, Err: fmt.Errorf(
			"exceeded MaxGraphs=%d (program may violate the Bounded-Length principle)", x.c.MaxGraphs)})
		return
	}
	w.stats.Popped++
	w.executed++
	res := w.step(st)
	if res == nil {
		w.flushChildren()
		return
	}
	// A deciding item never contributes children (step returns before
	// pushing on every violation path); drop any stale buffer content
	// defensively.
	w.childBuf = w.childBuf[:0]
	if res.Verdict == Error || x.single {
		x.halt(res)
		return
	}
	// Tie-break on the same key space the dedup spine uses: the
	// canonical key under symmetry (w.lastKey, still valid — this
	// worker's next Canonicalize is at its next pop), the raw structural
	// key otherwise.
	key := w.lastKey
	if x.c.DisableDedup || x.c.LegacyDedup {
		key = st.key()
	}
	x.offerViolation(st, res, key)
}

// flushChildren publishes the children of the item just executed. They
// are buffered during the step and pushed only afterwards, so a graph
// is never visible to thieves while its producer still reads it (the
// revisit calculation inspects a child graph after creating it).
// Publication order matches the historical stack: the LIFO pop then
// examines children in exactly the order the sequential DFS did.
func (w *explorer) flushChildren() {
	buf := w.childBuf
	if len(buf) == 0 {
		return
	}
	x := w.x
	// inflight before queued: a thief may execute and retire a child the
	// instant it lands in the deque, and the drain detector must never
	// see inflight dip to zero while states exist.
	x.inflight.Add(int64(len(buf)))
	for _, ch := range buf {
		if !w.dq.pushTail(ch) {
			x.spill(ch)
		}
	}
	x.queued.Add(int64(len(buf)))
	for i := range buf {
		buf[i] = ExploreState{}
	}
	w.childBuf = buf[:0]
	if !x.single {
		x.wake()
		x.maybeRecruit()
	}
}

func (x *exploration) spill(st ExploreState) {
	x.ofMu.Lock()
	x.overflow = append(x.overflow, st)
	x.spills++
	x.ofMu.Unlock()
}

func (x *exploration) takeOverflow() (ExploreState, bool) {
	x.ofMu.Lock()
	if len(x.overflow) == 0 {
		x.ofMu.Unlock()
		return ExploreState{}, false
	}
	st := x.overflow[0]
	x.overflow[0] = ExploreState{}
	x.overflow = x.overflow[1:]
	x.ofMu.Unlock()
	return st, true
}

// steal scans the other workers' deques round-robin from w and takes a
// batch from the first non-empty head. The first stolen state is
// executed immediately; the rest seed w's own deque.
func (x *exploration) steal(w *explorer) (ExploreState, bool) {
	for i := 1; i < len(x.workers); i++ {
		v := x.workers[(w.id+i)%len(x.workers)]
		n := v.dq.stealHead(w.stealBuf[:], stealBatch)
		if n == 0 {
			continue
		}
		w.steals++
		w.stolen += n
		st := w.stealBuf[0]
		for j := 1; j < n; j++ {
			if !w.dq.pushTail(w.stealBuf[j]) {
				x.spill(w.stealBuf[j])
			}
		}
		for j := 0; j < n; j++ {
			w.stealBuf[j] = ExploreState{}
		}
		return st, true
	}
	return ExploreState{}, false
}

// park blocks until new work is published or the run ends. The queued
// counter is re-checked under the lock, and wake signals under the same
// lock, so a publication between the last failed steal and the wait
// cannot be lost.
func (x *exploration) park() {
	x.parkMu.Lock()
	x.parked++
	x.parkedN.Store(int32(x.parked))
	for x.queued.Load() == 0 && !x.done.Load() {
		x.parkCond.Wait()
	}
	x.parked--
	x.parkedN.Store(int32(x.parked))
	x.parkMu.Unlock()
}

// wake rouses parked workers after a publication. The common case — no
// one parked — costs one atomic load.
func (x *exploration) wake() {
	if x.parkedN.Load() == 0 {
		return
	}
	x.parkMu.Lock()
	if x.parked > 0 {
		x.parkCond.Broadcast()
	}
	x.parkMu.Unlock()
}

// stopAll ends the run: drained, hard-stopped, or canceled.
func (x *exploration) stopAll() {
	x.done.Store(true)
	x.parkMu.Lock()
	x.parkCond.Broadcast()
	x.parkMu.Unlock()
}

// overBudget checks this segment's budget against the nth pop. The
// graph cap is exact (a compare per pop); the wall-clock and heap caps
// are sampled at cadences that keep their cost invisible. It returns
// the stop reason, or "" to proceed.
func (x *exploration) overBudget(n int64) string {
	b := x.c.Budget
	if b.MaxGraphs > 0 && n > b.MaxGraphs {
		return fmt.Sprintf("budget: segment reached MaxGraphs=%d", b.MaxGraphs)
	}
	if b.MaxDuration > 0 && n%64 == 0 {
		if el := time.Since(x.start); el > b.MaxDuration {
			return fmt.Sprintf("budget: segment ran %v (MaxDuration %v)", el.Round(time.Millisecond), b.MaxDuration)
		}
	}
	if b.MaxMemBytes > 0 && n%8192 == 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > b.MaxMemBytes {
			return fmt.Sprintf("budget: heap at %d bytes (MaxMemBytes %d)", ms.HeapAlloc, b.MaxMemBytes)
		}
	}
	return ""
}

// haltUndecided stops the run at a budget limit (or a checkpointing
// cancellation): the unprocessed triggering state goes back to the
// frontier — its pop uncounted, so the checkpoint's counters describe
// exactly the processed states — and the run's verdict becomes
// Undecided. Racing workers each return their own state; the first
// result wins, and halt never lets Undecided displace a decisive
// Error.
//
// The state returns to the TAIL of the worker's own deque, not the
// overflow queue: it was the next state the uninterrupted run would
// have executed, and the deque tail is the one position from which the
// resumed run pops it first again — the sequential DFS's
// first-violation-in-DFS-order contract depends on that exactness.
func (x *exploration) haltUndecided(w *explorer, st ExploreState, msg string) {
	x.popped.Add(-1)
	// The state re-enters the frontier: re-increment inflight to cancel
	// the decrement runWorker applies after execute returns.
	x.inflight.Add(1)
	if !w.dq.pushTail(st) {
		x.spill(st)
	}
	x.queued.Add(1)
	x.halt(&Result{Verdict: Undecided, Message: msg})
}

// halt records a run-terminating result and stops every worker. A
// decisive verdict is never downgraded to Canceled by a later check.
func (x *exploration) halt(res *Result) {
	x.resMu.Lock()
	if x.hard == nil || (x.hard.Verdict == Canceled && res.Verdict != Canceled) {
		x.hard = res
	}
	x.resMu.Unlock()
	x.stopAll()
}

// offerViolation merges a violation found by a parallel worker.
// Exploration continues (the violating item just contributes no
// children, exactly as in a sequential run), and among all violations
// of the complete run the item lowest in the stamp-count order —
// (events in the graph, dedup key) as the schedule-independent stand-in
// for the addition-stamp depth — wins. Both components are functions of
// the state alone (and, under symmetry, of its orbit: the event count
// is permutation-invariant and the key is canonical), so repeated
// parallel runs at any worker count report the same counterexample.
func (x *exploration) offerViolation(st ExploreState, res *Result, key graph.Hash128) {
	stamp := st.g.NumEvents()
	x.resMu.Lock()
	if x.vio == nil || stamp < x.vioStamp ||
		(stamp == x.vioStamp && keyLess(key, x.vioKey)) {
		x.vio, x.vioStamp, x.vioKey = res, stamp, key
	}
	x.resMu.Unlock()
}

func keyLess(a, b graph.Hash128) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// maybeRecruit tries to borrow one idle pool slot for this run. It is
// called after publications, costs an atomic load when the run is not
// pool-attached or already fully staffed, and backs off whenever the
// pool has whole runs waiting — those always win the slot.
func (x *exploration) maybeRecruit() {
	pool := x.c.pool
	if pool == nil || x.queued.Load() < recruitThreshold {
		return
	}
	x.helperMu.Lock()
	if len(x.freeSlots) == 0 {
		x.helperMu.Unlock()
		return
	}
	slot, ok := pool.tryAcquire()
	if !ok {
		x.helperMu.Unlock()
		return
	}
	id := x.freeSlots[len(x.freeSlots)-1]
	x.freeSlots = x.freeSlots[:len(x.freeSlots)-1]
	x.helperMu.Unlock()
	x.recruited.Add(1)
	x.wg.Add(1)
	go x.helperLoop(x.workers[id], slot)
}

// helperLoop runs a borrowed pool slot as a worker until the frontier
// has nothing for it, then returns the slot (its busy time credited to
// the pool's accounting) and frees its worker id for a later borrow.
func (x *exploration) helperLoop(w *explorer, slot int) {
	defer x.wg.Done()
	t0 := time.Now()
	if !w.built {
		w.build()
	}
	w.helper = true
	x.runWorker(w)
	x.helperMu.Lock()
	x.freeSlots = append(x.freeSlots, w.id)
	x.helperMu.Unlock()
	x.c.pool.finishBorrow(slot, time.Since(t0))
}

// maybeSnapshot takes a periodic checkpoint when the interval has
// elapsed. One worker wins the snapping claim, quiesces the others by
// taking the snapshot gate for writing (every worker is then between
// items: all unprocessed states sit in deques or the overflow queue),
// copies the frontier and counters under the gate, and hands the
// checkpoint to the sink after releasing it — graphs are logically
// immutable once published, so encoding them outside the quiesce
// window races with nothing.
func (x *exploration) maybeSnapshot() {
	if time.Now().UnixNano()-x.lastSnap.Load() < x.snapEvery {
		return
	}
	if !x.snapping.CompareAndSwap(false, true) {
		return
	}
	defer x.snapping.Store(false)
	if time.Now().UnixNano()-x.lastSnap.Load() < x.snapEvery || x.done.Load() {
		return
	}
	x.snapGate.Lock()
	var ck *Checkpoint
	if !x.done.Load() {
		ck = x.buildCheckpoint()
	}
	x.snapGate.Unlock()
	x.lastSnap.Store(time.Now().UnixNano())
	if ck != nil {
		_ = x.c.CheckpointSink(ck) // best-effort: the sink reports its own errors
	}
}

// buildCheckpoint captures the current frontier, visited keys, and
// counters. The caller must have quiesced the workers — either by
// holding the snapshot gate for writing, or because the run has
// drained and every worker exited.
//
// Frontier order is chosen so that seedResume's pushTail sequence
// makes worker 0's future pops reproduce the interrupted run's exact
// pop order: pops come newest-first from the deque and then FIFO from
// overflow, so the serialized order is reversed overflow first, then
// each deque oldest→newest.
func (x *exploration) buildCheckpoint() *Checkpoint {
	ck := &Checkpoint{
		Model:  x.c.Model.Name(),
		Prog:   x.progFP,
		Sym:    x.sym != nil,
		Popped: x.basePopped + x.popped.Load(),
		Stats:  x.baseStats,
	}
	for _, w := range x.workers {
		ck.Stats.Add(w.stats)
	}
	x.ofMu.Lock()
	for i := len(x.overflow) - 1; i >= 0; i-- {
		ck.frontier = append(ck.frontier, stripSnap(x.overflow[i]))
	}
	x.ofMu.Unlock()
	for _, w := range x.workers {
		base := len(ck.frontier)
		ck.frontier = w.dq.snapshot(ck.frontier)
		for i := base; i < len(ck.frontier); i++ {
			ck.frontier[i] = stripSnap(ck.frontier[i])
		}
	}
	if x.visited != nil {
		ck.visited = x.visited.Snapshot(make([]graph.Hash128, 0, x.visited.Len()))
	}
	x.resMu.Lock()
	if x.vio != nil {
		ck.vio = &vioCheckpoint{
			verdict: x.vio.Verdict, message: x.vio.Message,
			stamp: x.vioStamp, key: x.vioKey, witness: x.vio.Witness,
		}
	}
	x.resMu.Unlock()
	return ck
}

// stripSnap drops the replay-snapshot perf cache from a state bound
// for a checkpoint: it aliases the producing worker's pooled scratch
// lineage and is rebuilt for free on the resuming pop.
func stripSnap(st ExploreState) ExploreState {
	st.snap = nil
	st.changed = 0
	return st
}

// merge assembles the final Result: the deterministic violation winner
// if the run found any, else the hard stop (Error/Canceled), else OK —
// with statistics summed over every worker that participated. A true
// counterexample outranks a MaxGraphs error or a cancellation: it is a
// sound verdict about the program, where the others only describe the
// run. The one exception is a budget stop: Undecided outranks a found
// violation, because the deterministic-counterexample contract picks
// the minimum over ALL violations of a complete exploration — the
// front-runner travels in the checkpoint and wins only once the
// frontier actually drains.
func (x *exploration) merge() *Result {
	var res *Result
	switch {
	case x.hard != nil && x.hard.Verdict == Undecided:
		res = x.hard
	case x.vio != nil:
		res = x.vio
	case x.hard != nil:
		res = x.hard
	default:
		res = &Result{Verdict: OK}
	}
	res.Stats.Add(x.baseStats)
	sched := SchedStats{Workers: len(x.workers), Executed: make([]int, len(x.workers))}
	for i, w := range x.workers {
		res.Stats.Add(w.stats)
		sched.Executed[i] = w.executed
		if w.executed > 0 {
			sched.Active++
		}
		sched.Steals += w.steals
		sched.Stolen += w.stolen
	}
	sched.Spills = x.spills
	if x.visited != nil {
		sched.Contention = x.visited.Contention()
	}
	sched.Recruited = int(x.recruited.Load())
	res.Sched = sched
	return res
}

package core

import "embed"

// sourceFS carries this package's own .go sources, compiled into the
// binary so the verdict store can fold a code-identity epoch into its
// keys (internal/srcid). The checker itself determines verdicts: a
// fixed engine bug must re-judge everything the buggy engine decided.
//
//go:embed *.go
var sourceFS embed.FS

// SourceFiles exposes the embedded sources for code-identity hashing.
func SourceFiles() embed.FS { return sourceFS }

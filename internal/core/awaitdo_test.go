package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// casIncrement is the canonical AwaitDo program: nthreads threads each
// perform one CAS-increment retry loop on a shared counter. Failed
// iterations are read-only (a failed CAS is a degraded read), so the
// retry-free-twin collapse applies in full.
func casIncrement(nthreads int) *vprog.Program {
	return &vprog.Program{
		Name: fmt.Sprintf("awaitdo/cas-increment-t%d", nthreads),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			threads := make([]vprog.ThreadFunc, nthreads)
			for t := 0; t < nthreads; t++ {
				threads[t] = func(m vprog.Mem) {
					m.AwaitDo(func() bool {
						v := m.Load(x, vprog.Rlx)
						_, ok := m.CmpXchg(x, v, v+1, vprog.AcqRel)
						return ok
					})
				}
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if got := load(x); got != uint64(nthreads) {
					return false, fmt.Sprintf("x = %d, want %d", got, nthreads)
				}
				return true, ""
			}
			return threads, final
		},
	}
}

// TestAwaitDoCASIncrement: the CAS loop verifies (every increment
// lands), terminates (no AT verdict), and the retry-free-twin collapse
// actually fires — contended retries exist and are pruned.
func TestAwaitDoCASIncrement(t *testing.T) {
	for _, n := range []int{2, 3} {
		res := core.New(mm.WMM).Run(casIncrement(n))
		if res.Verdict != core.OK {
			t.Fatalf("t%d: %v: %s %v", n, res.Verdict, res.Message, res.Err)
		}
		if res.Stats.Collapsed == 0 {
			t.Errorf("t%d: contended CAS loop never triggered the retry-free-twin collapse", n)
		}
	}
}

// TestAwaitDoNeverSucceeds: a CAS retry whose expected value nobody
// ever writes spins forever — the ⊥ analysis must turn this into a
// proper await-termination verdict, not a hang or an artificial bound.
func TestAwaitDoNeverSucceeds(t *testing.T) {
	p := &vprog.Program{
		Name: "awaitdo/never-succeeds",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			y := env.Var("y", 0)
			t0 := func(m vprog.Mem) {
				m.AwaitDo(func() bool {
					_, ok := m.CmpXchg(x, 1, 2, vprog.AcqRel) // x is never 1
					return ok
				})
			}
			t1 := func(m vprog.Mem) { m.Store(y, 1, vprog.Rel) } // unrelated writer
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
	res := core.New(mm.WMM).Run(p)
	if res.Verdict != core.ATViolation {
		t.Fatalf("verdict %v, want an await-termination violation: %s %v", res.Verdict, res.Message, res.Err)
	}
	if !strings.Contains(res.Message, "never terminates") {
		t.Errorf("message %q does not state the await never terminates", res.Message)
	}
	if res.Witness == nil {
		t.Error("AT violation without a witness")
	} else if err := res.Witness.CheckInvariants(); err != nil {
		t.Errorf("malformed witness: %v", err)
	}
}

// TestAwaitDoResolvedByWriter: the same shape, but a second thread does
// write the expected value — whether the CAS observes it is a matter of
// scheduling, so the await must be judged terminating (the ⊥ read stays
// resolvable) and the program verifies.
func TestAwaitDoResolvedByWriter(t *testing.T) {
	p := &vprog.Program{
		Name: "awaitdo/resolved-by-writer",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			t0 := func(m vprog.Mem) {
				m.AwaitDo(func() bool {
					_, ok := m.CmpXchg(x, 1, 2, vprog.AcqRel)
					return ok
				})
			}
			t1 := func(m vprog.Mem) { m.Store(x, 1, vprog.Rel) }
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
	res := core.New(mm.WMM).Run(p)
	if res.Verdict != core.OK {
		t.Fatalf("verdict %v, want OK: %s %v", res.Verdict, res.Message, res.Err)
	}
}

// boundedEffectProgram builds a two-thread program whose first thread
// runs the given body inside the await construct selected by isDo; the
// second thread eventually stores the exit value, so the loop has a
// terminating branch and the violation — if any — must come from the
// Bounded-Effect validation, not the ⊥ analysis.
func boundedEffectProgram(name string, isDo bool, body func(m vprog.Mem, x, scratch *vprog.Var) bool) *vprog.Program {
	return &vprog.Program{
		Name: "awaitdo/" + name,
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			scratch := env.Var("scratch.t1", 0).TagOwner(1, "scratch") // owned by T1, not T0
			t0 := func(m vprog.Mem) {
				if isDo {
					m.AwaitDo(func() bool { return body(m, x, scratch) })
				} else {
					m.AwaitWhile(func() bool { return !body(m, x, scratch) })
				}
			}
			t1 := func(m vprog.Mem) { m.Store(x, 1, vprog.Rel) }
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
}

// TestBoundedEffectViolations: a plain store in a failed AwaitWhile
// iteration and a store to a non-owned location in a failed AwaitDo
// iteration are both contract violations the replayer must surface as
// checker errors naming the contract.
func TestBoundedEffectViolations(t *testing.T) {
	for _, tc := range []struct {
		name string
		isDo bool
		body func(m vprog.Mem, x, scratch *vprog.Var) bool
	}{
		{"store-in-awaitwhile", false, func(m vprog.Mem, x, scratch *vprog.Var) bool {
			v := m.Load(x, vprog.Acq)
			m.Store(scratch, v, vprog.Rlx) // any plain store is illegal here
			return v == 1
		}},
		{"unowned-store-in-awaitdo", true, func(m vprog.Mem, x, scratch *vprog.Var) bool {
			v := m.Load(x, vprog.Acq)
			m.Store(scratch, v, vprog.Rlx) // scratch belongs to T1, the storer is T0
			return v == 1
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := core.New(mm.WMM).Run(boundedEffectProgram(tc.name, tc.isDo, tc.body))
			if res.Verdict != core.Error {
				t.Fatalf("verdict %v, want a checker error: %s", res.Verdict, res.Message)
			}
			if res.Err == nil || !strings.Contains(res.Err.Error(), "Bounded-Effect violation") {
				t.Fatalf("error %v does not name the Bounded-Effect contract", res.Err)
			}
		})
	}
}

// TestAwaitDoOwnedStoreAllowed: the AwaitDo extension exists exactly so
// failed retries may re-store the executing thread's own replicas — the
// same shape as above, but with the scratch word owned by the storer.
func TestAwaitDoOwnedStoreAllowed(t *testing.T) {
	p := &vprog.Program{
		Name: "awaitdo/owned-store",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			scratch := env.Var("scratch.t0", 0).TagOwner(0, "scratch")
			t0 := func(m vprog.Mem) {
				m.AwaitDo(func() bool {
					v := m.Load(x, vprog.Acq)
					m.Store(scratch, v, vprog.Rlx) // owned: legal in failed retries
					return v == 1
				})
			}
			t1 := func(m vprog.Mem) { m.Store(x, 1, vprog.Rel) }
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
	res := core.New(mm.WMM).Run(p)
	if res.Verdict != core.OK {
		t.Fatalf("verdict %v, want OK: %s %v", res.Verdict, res.Message, res.Err)
	}
}

package core_test

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/structs"
	"repro/internal/workload"
)

// TestCheckpointMidRetryRoundTrip: the await-construct instance of the
// crash-safety bar. With MaxGraphs=1 every popped state is its own
// segment, so budget boundaries necessarily land inside CAS retry
// loops — frontier graphs whose trailing events carry AwaitSeq /
// AwaitIter tags — and each intermediate checkpoint travels through
// Encode/Decode before resuming. The segmented runs must reproduce the
// uninterrupted runs exactly, stats to the last counter, which they can
// only do if the in-await iteration state (spans recomputed from the
// decoded graphs' await tags) survives the boundary: the retry-free
// collapse, the W(G) filter, and the ⊥ gate all key off it.
func TestCheckpointMidRetryRoundTrip(t *testing.T) {
	for _, w := range []workload.Workload{structs.Treiber(1), structs.MSQueue(1)} {
		p := workload.Program(w, nil, 2)
		base := runAt(t, mm.WMM, p, 1)
		if base.Stats.Collapsed == 0 {
			t.Fatalf("%s: no collapsed retries at t=2 — the corpus no longer crosses budget boundaries mid-retry", p.Name)
		}
		for _, bg := range []int64{1, 7} {
			res, segs := runSegmented(t, mm.WMM, p, 1, core.Budget{MaxGraphs: bg}, true)
			if res.Verdict != base.Verdict {
				t.Fatalf("%s budget=%d: verdict %v, uninterrupted run says %v", p.Name, bg, res.Verdict, base.Verdict)
			}
			if res.Stats != base.Stats {
				t.Fatalf("%s budget=%d (%d segments): stats diverged\nsegmented:     %+v\nuninterrupted: %+v",
					p.Name, bg, segs, res.Stats, base.Stats)
			}
		}
	}
}

// TestCheckpointRejectsForeignVersion: a checkpoint from another format
// version must be refused by the version check itself — the image below
// is re-framed with a correct CRC, so nothing else can catch it. (Torn
// and bit-flipped images are TestCheckpointDecodeRejectsDamage's job;
// here the frame is pristine and only the declared version lies.)
func TestCheckpointRejectsForeignVersion(t *testing.T) {
	data := interruptedCheckpoint(t).Encode()
	// Layout: [4B magic][4B payload len LE][payload][4B CRC(payload)],
	// payload = [type byte][version byte]... for the header record.
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	mut := append([]byte(nil), data...)
	mut[9] ^= 0x40 // version byte: second byte of the header payload
	binary.LittleEndian.PutUint32(mut[8+n:12+n], crc32.ChecksumIEEE(mut[8:8+n]))
	_, err := core.DecodeCheckpoint(mut)
	if err == nil {
		t.Fatal("checkpoint with a foreign format version decoded")
	}
	if !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("refusal %v does not name the version mismatch", err)
	}
}

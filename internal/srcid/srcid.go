// Package srcid computes the code-identity epoch: a 128-bit hash of
// the compiled-in sources of every package that determines an AMC
// verdict — the checker (core, graph, mm) and the program constructors
// (vprog, locks, workload, structs, harness). The verdict store stamps
// this epoch on
// every record and serves only same-epoch records, so a verdict is
// scoped by what the problem is AND by the code that judged and shaped
// it.
//
// Why this exists: vprog.Program.Fingerprint128 witnesses one
// deterministic sequential execution, so code reachable only under
// contention (lock slow paths, CAS-failure arms) does not affect the
// fingerprint. Without a code epoch, editing a lock's contended-path
// logic leaves every store key unchanged, and a CI run restoring a
// verdict store cached from an earlier commit would serve stale
// verdicts for the edited algorithm — a correctness regression could
// merge without ever being re-model-checked. With the epoch on the
// record, any edit to verification-relevant source orphans all stored
// verdicts by construction (the store retains orphans for epoch
// flip-backs and compacts them beyond a budget); doc-, bench- and
// cmd-only changes keep the store warm.
//
// The hash covers non-test .go files only (tests cannot change a
// verdict), in sorted order with names and a per-package file count,
// so the epoch is deterministic for a given source tree. The embeds
// use the `*.go` glob deliberately even though it bakes ~100 KiB of
// _test.go sources (filtered out of the hash here) into the binaries:
// an explicit file list would silently omit newly added source files
// from the epoch — an unsoundness — while the glob can only ever
// over-include.
package srcid

import (
	"io/fs"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/structs"
	"repro/internal/vprog"
	"repro/internal/workload"
)

// sources lists the verdict-determining packages in fixed order.
var sources = []struct {
	name  string
	files fs.FS
}{
	{"internal/graph", graph.SourceFiles()},
	{"internal/mm", mm.SourceFiles()},
	{"internal/core", core.SourceFiles()},
	{"internal/vprog", vprog.SourceFiles()},
	{"internal/locks", locks.SourceFiles()},
	{"internal/workload", workload.SourceFiles()},
	{"internal/structs", structs.SourceFiles()},
	{"internal/harness", harness.SourceFiles()},
}

var epochOnce = sync.OnceValue(computeEpoch)

// Epoch returns the code-identity hash of this binary's
// verification-relevant sources. It is computed once per process and
// is identical across processes built from the same source tree.
//
// Epoch covers the checker and program constructors only; packages
// that construct or translate store *keys* (internal/store itself,
// internal/optimize, vsync) cannot appear here without an import cycle
// and instead register their embedded sources with the store
// (store.RegisterCodeSource), which folds them into the record epoch
// on top of this hash.
func Epoch() graph.Hash128 { return epochOnce() }

func computeEpoch() graph.Hash128 {
	h := graph.NewHasher128()
	for _, p := range sources {
		HashPackage(&h, p.name, p.files)
	}
	return h.Sum()
}

// HashPackage folds one package's non-test sources into h under the
// given name: sorted file names, contents, and a trailing count so
// file splits and merges stay distinguishable. Shared with the store's
// epoch extension mechanism so every package hashes canonically.
func HashPackage(h *graph.Hasher128, name string, fsys fs.FS) {
	h.String(name)
	names, err := fs.Glob(fsys, "*.go")
	if err != nil {
		// The pattern is constant and valid; Glob cannot fail on it.
		panic("srcid: " + err.Error())
	}
	sort.Strings(names)
	n := 0
	for _, fname := range names {
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		data, err := fs.ReadFile(fsys, fname)
		if err != nil {
			panic("srcid: reading embedded " + fname + ": " + err.Error())
		}
		h.String(fname)
		h.String(string(data))
		n++
	}
	h.Word(uint64(n))
}

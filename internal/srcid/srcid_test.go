package srcid

import (
	"testing"
	"testing/fstest"

	"repro/internal/graph"
)

// TestEpochDeterministic: the epoch is stable within a process and is
// never the zero hash (every source package embeds at least one file).
func TestEpochDeterministic(t *testing.T) {
	e := Epoch()
	if e == (graph.Hash128{}) {
		t.Fatal("code epoch is zero — no sources were hashed")
	}
	if e != Epoch() {
		t.Fatal("code epoch not deterministic across calls")
	}
}

func digest(fsys fstest.MapFS) graph.Hash128 {
	h := graph.NewHasher128()
	HashPackage(&h, "p", fsys)
	return h.Sum()
}

// TestHashPackage pins the properties the epoch relies on: test files
// are excluded, content and file names are significant, and iteration
// order is canonical (MapFS globs sorted, so equal trees hash equal).
func TestHashPackage(t *testing.T) {
	base := fstest.MapFS{
		"a.go": {Data: []byte("package p\nfunc A() {}\n")},
		"b.go": {Data: []byte("package p\nfunc B() {}\n")},
	}
	if digest(base) == (graph.Hash128{}) {
		t.Fatal("package digest is zero")
	}

	withTest := fstest.MapFS{
		"a.go":      base["a.go"],
		"b.go":      base["b.go"],
		"a_test.go": {Data: []byte("package p\nfunc TestA() {}\n")},
	}
	if digest(withTest) != digest(base) {
		t.Error("adding a _test.go file changed the digest; tests cannot change verdicts")
	}

	edited := fstest.MapFS{
		"a.go": {Data: []byte("package p\nfunc A() { spin() }\n")},
		"b.go": base["b.go"],
	}
	if digest(edited) == digest(base) {
		t.Error("editing a source file did not change the digest")
	}

	renamed := fstest.MapFS{
		"c.go": base["a.go"],
		"b.go": base["b.go"],
	}
	if digest(renamed) == digest(base) {
		t.Error("renaming a source file did not change the digest")
	}
}

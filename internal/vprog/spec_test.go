package vprog

import (
	"strings"
	"testing"
)

func TestSpecBasics(t *testing.T) {
	s := NewSpec().Def("a.x", Acq).Def("a.y", Rel).DefFence("a.f", SC)
	if s.M("a.x") != Acq || s.M("a.y") != Rel || s.M("a.f") != SC {
		t.Fatal("modes lost")
	}
	if !s.IsFence("a.f") || s.IsFence("a.x") {
		t.Fatal("fence flags wrong")
	}
	if got := s.Points(); len(got) != 3 || got[0] != "a.x" || got[2] != "a.f" {
		t.Fatalf("points order wrong: %v", got)
	}
	s.Set("a.x", Rlx)
	if s.M("a.x") != Rlx {
		t.Fatal("Set did not stick")
	}
}

func TestSpecUnknownPointPanics(t *testing.T) {
	s := NewSpec().Def("a.x", Acq)
	for _, f := range []func(){
		func() { s.M("nope") },
		func() { s.Set("nope", Rlx) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on unknown point")
				}
			}()
			f()
		}()
	}
}

func TestSpecCloneAndAllSC(t *testing.T) {
	s := NewSpec().Def("a.x", Rlx).DefFence("a.f", ModeNone)
	c := s.Clone()
	c.Set("a.x", SC)
	if s.M("a.x") != Rlx {
		t.Fatal("clone not independent")
	}
	sc := s.AllSC()
	if sc.M("a.x") != SC || sc.M("a.f") != SC {
		t.Fatal("AllSC did not raise every point")
	}
	if !sc.IsFence("a.f") {
		t.Fatal("AllSC lost fence flag")
	}
}

func TestSpecCounts(t *testing.T) {
	s := NewSpec().
		Def("a", Rlx).Def("b", Acq).Def("c", Acq).Def("d", Rel).
		Def("e", AcqRel).Def("f", SC).DefFence("g", ModeNone)
	c := s.Counts()
	if c.Rlx != 1 || c.Acq != 2 || c.Rel != 1 || c.AcqRel != 1 || c.SC != 1 || c.Removed != 1 {
		t.Fatalf("counts wrong: %+v", c)
	}
}

func TestSpecStringAndDiff(t *testing.T) {
	s := NewSpec().Def("a.x", SC).DefFence("a.f", ModeNone)
	out := s.String()
	if !strings.Contains(out, "a.x") || !strings.Contains(out, "removed") {
		t.Fatalf("String missing pieces:\n%s", out)
	}
	o := s.Clone()
	o.Set("a.x", Acq)
	d := s.Diff(o)
	if !strings.Contains(d, "a.x") || !strings.Contains(d, "sc --> acq") {
		t.Fatalf("Diff wrong: %q", d)
	}
	if s.Diff(s.Clone()) != "" {
		t.Fatal("Diff of identical specs should be empty")
	}
}

func TestVarSet(t *testing.T) {
	vs := &VarSet{}
	a := vs.Var("a", 3)
	b := vs.Var("b", 4)
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("ids wrong: %d %d", a.ID, b.ID)
	}
	if vs.Var("a", 99) != a {
		t.Fatal("re-allocation must return the same var")
	}
	names, inits := vs.Names(), vs.Inits()
	if names[0] != "a" || names[1] != "b" || inits[0] != 3 || inits[1] != 4 {
		t.Fatalf("names/inits wrong: %v %v", names, inits)
	}
}

package vprog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// BarrierSpec is a mutable assignment of barrier modes to named barrier
// points of an algorithm. Lock implementations read their modes from a
// spec (l.spec.M("xchg_tail")); the optimizer (internal/optimize)
// mutates a spec point by point, re-verifying after each change — the
// push-button barrier optimization of the paper (§3.3, Table 1).
type BarrierSpec struct {
	order []string
	modes map[string]Mode
	// fencePoints marks points that are standalone fences; those may be
	// relaxed all the way to ModeNone (eliminated) by the optimizer.
	fencePoints map[string]bool
}

// NewSpec returns an empty spec.
func NewSpec() *BarrierSpec {
	return &BarrierSpec{modes: make(map[string]Mode), fencePoints: make(map[string]bool)}
}

// Def registers a barrier point with its mode, keeping registration
// order for rendering. Redefining a point overwrites its mode.
func (s *BarrierSpec) Def(name string, m Mode) *BarrierSpec {
	if _, ok := s.modes[name]; !ok {
		s.order = append(s.order, name)
	}
	s.modes[name] = m
	return s
}

// DefFence registers a standalone-fence point (eligible for complete
// elimination by the optimizer).
func (s *BarrierSpec) DefFence(name string, m Mode) *BarrierSpec {
	s.Def(name, m)
	s.fencePoints[name] = true
	return s
}

// M returns the mode of a point. It panics on unknown points: a typo in
// a lock implementation should fail loudly, not silently verify with a
// zero mode.
func (s *BarrierSpec) M(name string) Mode {
	m, ok := s.modes[name]
	if !ok {
		panic(fmt.Sprintf("vprog: unknown barrier point %q", name))
	}
	return m
}

// Set changes the mode of an existing point.
func (s *BarrierSpec) Set(name string, m Mode) {
	if _, ok := s.modes[name]; !ok {
		panic(fmt.Sprintf("vprog: unknown barrier point %q", name))
	}
	s.modes[name] = m
}

// IsFence reports whether the point is a standalone fence.
func (s *BarrierSpec) IsFence(name string) bool { return s.fencePoints[name] }

// Points returns the point names in registration order.
func (s *BarrierSpec) Points() []string { return append([]string(nil), s.order...) }

// Clone returns an independent copy.
func (s *BarrierSpec) Clone() *BarrierSpec {
	c := NewSpec()
	for _, p := range s.order {
		c.Def(p, s.modes[p])
		if s.fencePoints[p] {
			c.fencePoints[p] = true
		}
	}
	return c
}

// AllSC returns a copy of the spec with every point raised to SC — the
// paper's "sc-only" baseline variant.
func (s *BarrierSpec) AllSC() *BarrierSpec {
	c := s.Clone()
	for _, p := range c.order {
		c.modes[p] = SC
	}
	return c
}

// Fingerprint128 returns a 128-bit hash of the assignment — point
// names in registration order with their modes and fence flags. Two
// specs with equal fingerprints produce identical programs and hence
// identical verification verdicts; the optimizer's verdict cache keys
// on this instead of the canonical string (see Fingerprint, kept for
// rendering and debugging).
func (s *BarrierSpec) Fingerprint128() graph.Hash128 {
	h := graph.NewHasher128()
	for _, p := range s.order {
		h.String(p)
		fence := uint64(0)
		if s.fencePoints[p] {
			fence = 1
		}
		h.Word(uint64(s.modes[p])<<1 | fence)
	}
	return h.Sum()
}

// Fingerprint returns a canonical encoding of the assignment —
// point names in registration order with their modes and fence flags —
// suitable as a memoization key: two specs with equal fingerprints
// produce identical programs and hence identical verification
// verdicts.
func (s *BarrierSpec) Fingerprint() string {
	var b strings.Builder
	for _, p := range s.order {
		b.WriteString(p)
		if s.fencePoints[p] {
			b.WriteByte('!')
		}
		b.WriteByte('=')
		b.WriteString(s.modes[p].String())
		b.WriteByte(';')
	}
	return b.String()
}

// ModeCounts tallies the modes in use, in the shape of the paper's
// Table 1 (relaxed points are not reported there; eliminated fences
// count as removed).
type ModeCounts struct {
	Rlx, Acq, Rel, AcqRel, SC, Removed int
}

// Counts returns the tally of modes across all points.
func (s *BarrierSpec) Counts() ModeCounts {
	var c ModeCounts
	for _, p := range s.order {
		switch s.modes[p] {
		case ModeNone:
			c.Removed++
		case Rlx:
			c.Rlx++
		case Acq:
			c.Acq++
		case Rel:
			c.Rel++
		case AcqRel:
			c.AcqRel++
		case SC:
			c.SC++
		}
	}
	return c
}

// String renders the spec one point per line, in registration order —
// the shape of the paper's Figs. 20/21 barrier-mode listings.
func (s *BarrierSpec) String() string {
	var b strings.Builder
	for _, p := range s.order {
		fmt.Fprintf(&b, "%-36s %s", p, s.modes[p])
		if s.fencePoints[p] && s.modes[p] == ModeNone {
			b.WriteString(" (removed)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Diff returns a rendering of the points whose mode differs between s
// and the other spec, "point: old --> new" per line, sorted by point
// registration order in s.
func (s *BarrierSpec) Diff(o *BarrierSpec) string {
	var lines []string
	for _, p := range s.order {
		om, ok := o.modes[p]
		if ok && om != s.modes[p] {
			lines = append(lines, fmt.Sprintf("%-36s %s --> %s", p, s.modes[p], om))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

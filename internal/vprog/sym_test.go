package vprog

import "testing"

// symClient builds a two-thread symmetric program in the shape the lock
// harnesses use: each thread publishes to its own tagged replica and
// swaps tid+1 into a tid-tagged lock word. swap relabels the build —
// thread 0 owns node.b instead of node.a, with the ownership tags
// swapped to match — and groups controls whether the symmetry is
// declared at all.
func symClient(swap, groups bool) *Program {
	p := &Program{
		Name: "sym/client",
		Build: func(env Env) ([]ThreadFunc, FinalCheck) {
			oa, ob := 0, 1
			if swap {
				oa, ob = 1, 0
			}
			a := env.Var("node.a", 0).TagOwner(oa, "node")
			b := env.Var("node.b", 0).TagOwner(ob, "node")
			lock := env.Var("lock", 0).TagTid(0, 1)
			node := []*Var{a, b}
			if swap {
				node[0], node[1] = b, a
			}
			th := func(t int) ThreadFunc {
				return func(m Mem) {
					m.Store(node[t], 1, Rel)
					m.Xchg(lock, uint64(m.TID()+1), AcqRel)
				}
			}
			return []ThreadFunc{th(0), th(1)}, nil
		},
	}
	if groups {
		p.SymGroups = [][]int{{0, 1}}
	}
	return p
}

// TestSymSpecValidates: the symmetric client's declaration survives
// validation with the full permutation set.
func TestSymSpecValidates(t *testing.T) {
	s := symClient(false, true).SymSpec()
	if s == nil {
		t.Fatal("symmetric client's group was dropped")
	}
	if s.PermCount() != 2 {
		t.Fatalf("PermCount = %d, want 2", s.PermCount())
	}
	if symClient(false, false).SymSpec() != nil {
		t.Fatal("undeclared program grew a SymSpec")
	}
}

// TestRelabeledBuildsUnify: two builds of one symmetric program that
// differ only by which thread owns which replica must produce the same
// canonical fingerprint — they are one verification problem and land on
// one verdict-store key — while the same builds with no declared
// symmetry hash apart. This is the non-vacuous half of the store-key
// unification claim: the raw trace fingerprints genuinely differ.
func TestRelabeledBuildsUnify(t *testing.T) {
	p1, p2 := symClient(false, true), symClient(true, true)
	if p1.SymSpec() == nil || p2.SymSpec() == nil {
		t.Fatal("relabeled builds must both validate")
	}
	if p1.Fingerprint128() != p2.Fingerprint128() {
		t.Fatal("relabeled symmetric builds produced different canonical fingerprints")
	}
	r1, r2 := symClient(false, false), symClient(true, false)
	if r1.Fingerprint128() == r2.Fingerprint128() {
		t.Fatal("raw fingerprints of the relabeled builds coincide; the unification test is vacuous")
	}
}

// asymVariant builds a two-thread program that declares {0,1} symmetric
// but is not, in one specific way per mode. Validation must catch every
// one of them and drop the group (SymSpec nil).
func asymVariant(mode string) *Program {
	return &Program{
		Name:      "sym/asym-" + mode,
		SymGroups: [][]int{{0, 1}},
		Build: func(env Env) ([]ThreadFunc, FinalCheck) {
			a := env.Var("node.a", 0).TagOwner(0, "node")
			b := env.Var("node.b", 0).TagOwner(1, "node")
			lock := env.Var("lock", 0).TagTid(0, 1)
			x := env.Var("x", 0)
			if mode == "init" {
				b.Init = 5 // asymmetric replica initial values
			}
			node := []*Var{a, b}
			th := func(t int) ThreadFunc {
				return func(m Mem) {
					switch mode {
					case "rawtid":
						// A thread id stored to an untagged location: the
						// relabeled graph would carry the wrong value.
						m.Store(x, uint64(m.TID()), Rlx)
					case "const":
						// Thread 1 writes a different constant.
						m.Store(node[t], uint64(1+t), Rlx)
					default:
						m.Store(node[t], 1, Rlx)
						m.Xchg(lock, uint64(m.TID()+1), AcqRel)
					}
				}
			}
			var final FinalCheck
			if mode == "final" {
				// The postcondition names a specific thread: "thread 0 wrote
				// the lock last" flips with the schedule, so the folded
				// outcome diverges across permutations.
				final = func(load func(v *Var) uint64) (bool, string) {
					return load(lock) == 1, "lock held by thread 0"
				}
			}
			return []ThreadFunc{th(0), th(1)}, final
		},
	}
}

// TestSymSpecDropsAsymmetry: each concealed asymmetry — a raw tid
// store, divergent code, divergent replica inits, an asymmetric final
// check — must fail trace validation.
func TestSymSpecDropsAsymmetry(t *testing.T) {
	if asymVariant("plain").SymSpec() == nil {
		t.Fatal("the control variant must validate")
	}
	for _, mode := range []string{"rawtid", "const", "init", "final"} {
		if asymVariant(mode).SymSpec() != nil {
			t.Errorf("%s: concealed asymmetry survived validation", mode)
		}
	}
}

// TestSymSpecMalformedTags: an owned variable without a family disables
// symmetry outright instead of guessing what the program meant.
func TestSymSpecMalformedTags(t *testing.T) {
	p := &Program{
		Name:      "sym/malformed",
		SymGroups: [][]int{{0, 1}},
		Build: func(env Env) ([]ThreadFunc, FinalCheck) {
			a := env.Var("a", 0)
			a.SymOwner = 1 // owner tag with no SymFamily
			th := func(m Mem) { m.Store(a, 1, Rlx) }
			return []ThreadFunc{th, th}, nil
		},
	}
	if p.SymSpec() != nil {
		t.Fatal("malformed owner tag did not disable symmetry")
	}
}

// TestSymSpecGroupNormalization: out-of-range, overlapping and
// singleton groups are dropped; a valid group among them survives.
func TestSymSpecGroupNormalization(t *testing.T) {
	p := symClient(false, true)
	p.SymGroups = [][]int{{0, 7}, {1}, {1, 1}, {0, 1}}
	s := p.SymSpec()
	if s == nil || s.PermCount() != 2 {
		t.Fatalf("normalization lost the one valid group: %v", s)
	}
}

package vprog

import "embed"

// sourceFS carries this package's own .go sources, compiled into the
// binary so the verdict store can fold a code-identity epoch into its
// keys (internal/srcid). Program fingerprints witness one sequential
// execution and cannot see code that execution never reaches, so code
// identity must come from the source itself.
//
//go:embed *.go
var sourceFS embed.FS

// SourceFiles exposes the embedded sources for code-identity hashing.
func SourceFiles() embed.FS { return sourceFS }

package vprog

import "repro/internal/graph"

// awaitFingerprintCap bounds the cond evaluations one AwaitWhile may
// contribute to a fingerprint trace. Under the sequential schedule used
// below a well-formed awaiting program either terminates (a thread runs
// to completion before the next starts, so the awaited condition has
// been established by an earlier thread) or spins forever on a
// condition only a *later* thread establishes. The cap turns the second
// case into a recorded "await saturated" marker instead of a hang; by
// the Bounded-Effect principle the abandoned iterations had no
// value-changing writes, so cutting the loop cannot desynchronize the
// trace.
const awaitFingerprintCap = 1 << 12

// Operation tags folded into the fingerprint trace. Distinct from any
// Mode or Kind value by construction (each op word carries its tag in
// the high byte).
const (
	fpLoad = iota + 1
	fpStore
	fpXchg
	fpCmpXchg
	fpFetchAdd
	fpFence
	fpAwaitEnter
	fpAwaitExit
	fpAwaitSaturated
	fpPause
	fpAssert
	fpThread
	fpVars
	fpFinalCheck
	fpTID     // canonical (symmetry-folded) traces only — see sym.go
	fpAwaitDo // AwaitDo enter marker (exit/saturation reuse the AwaitWhile tags)
)

// fpMem is a recording sequential interpreter: every Mem operation is
// executed against a plain in-order memory and folded into the hash —
// opcode, location, barrier mode and the values read and written. It is
// deterministic because thread bodies are deterministic given the
// values their Mem operations return (the ThreadFunc contract) and the
// sequential memory returns deterministic values.
type fpMem struct {
	h   *graph.Hasher128
	mem []uint64
	tid int
}

func (m *fpMem) op(tag int, v *Var, mode Mode, words ...uint64) {
	m.h.Word(uint64(tag)<<56 | uint64(mode)<<48 | uint64(uint32(v.ID)))
	for _, w := range words {
		m.h.Word(w)
	}
}

func (m *fpMem) Load(v *Var, mode Mode) uint64 {
	x := m.mem[v.ID]
	m.op(fpLoad, v, mode, x)
	return x
}

func (m *fpMem) Store(v *Var, x uint64, mode Mode) {
	m.mem[v.ID] = x
	m.op(fpStore, v, mode, x)
}

func (m *fpMem) Xchg(v *Var, x uint64, mode Mode) uint64 {
	old := m.mem[v.ID]
	m.mem[v.ID] = x
	m.op(fpXchg, v, mode, old, x)
	return old
}

func (m *fpMem) CmpXchg(v *Var, old, new uint64, mode Mode) (uint64, bool) {
	cur := m.mem[v.ID]
	ok := cur == old
	if ok {
		m.mem[v.ID] = new
	}
	okw := uint64(0)
	if ok {
		okw = 1
	}
	m.op(fpCmpXchg, v, mode, cur, old, new, okw)
	return cur, ok
}

func (m *fpMem) FetchAdd(v *Var, delta uint64, mode Mode) uint64 {
	old := m.mem[v.ID]
	m.mem[v.ID] = old + delta
	m.op(fpFetchAdd, v, mode, old, delta)
	return old
}

func (m *fpMem) Fence(mode Mode) {
	m.h.Word(uint64(fpFence)<<56 | uint64(mode)<<48)
}

func (m *fpMem) AwaitWhile(cond func() bool) {
	m.h.Word(uint64(fpAwaitEnter) << 56)
	for i := 0; ; i++ {
		if i >= awaitFingerprintCap {
			m.h.Word(uint64(fpAwaitSaturated) << 56)
			return
		}
		if !cond() {
			m.h.Word(uint64(fpAwaitExit)<<56 | uint64(i))
			return
		}
	}
}

func (m *fpMem) AwaitDo(body func() bool) {
	// Unlike AwaitWhile, abandoned AwaitDo iterations may have stored to
	// owned locations — but the trace records those stores before the
	// saturation marker, so the fingerprint stays deterministic either
	// way; saturation only cuts iterations that would repeat forever
	// under the sequential schedule.
	m.h.Word(uint64(fpAwaitDo) << 56)
	for i := 0; ; i++ {
		if i >= awaitFingerprintCap {
			m.h.Word(uint64(fpAwaitSaturated) << 56)
			return
		}
		if body() {
			m.h.Word(uint64(fpAwaitExit)<<56 | uint64(i))
			return
		}
	}
}

func (m *fpMem) Pause() {
	m.h.Word(uint64(fpPause) << 56)
}

func (m *fpMem) TID() int { return m.tid }

func (m *fpMem) Assert(ok bool, msg string) {
	okw := uint64(0)
	if ok {
		okw = 1
	}
	m.h.Word(uint64(fpAssert)<<56 | okw)
	m.h.String(msg)
}

// Fingerprint128 returns a 128-bit structural hash of the program: its
// shared variables (names and initial values), thread count, the full
// operation trace of one deterministic sequential execution (threads
// run to completion in index order against an in-order memory; every
// operation contributes opcode, location, barrier mode and data
// values), and the final-state check's outcome on that execution.
//
// The fingerprint captures exactly the inputs a program generator feeds
// into its shape — algorithm, barrier spec, thread count, iteration
// count — because each shows up in the trace: more threads add thread
// sections, more iterations add operations, a different spec changes
// the recorded modes, a different algorithm changes the opcode
// sequence. Two programs with equal fingerprints are treated as the
// same verification problem by the verdict caches (internal/optimize,
// internal/store); the program Name is deliberately NOT part of the
// hash — names are labels for reporting, and keying verdicts on them
// let two same-named programs of different shapes silently reuse each
// other's results.
//
// Caveat: the trace witnesses one execution path, so programs that
// differ only in code unreachable under the sequential schedule — e.g.
// a different CAS-failure arm that the uncontended run never takes —
// hash equal. Within one build that is sound for generated clients
// (harness.MutexClient and friends): their generators vary only
// trace-visible inputs. Across builds it is not — editing a lock's
// contended-path source leaves the fingerprint unchanged — which is
// why the persistent verdict store additionally stamps a code-identity
// epoch (internal/srcid, a hash of the checker and program-constructor
// sources) on every record and serves only same-epoch records; the
// fingerprint alone is never trusted across builds.
//
// Programs with validated symmetric thread groups (SymSpec != nil)
// hash via the canonical trace instead (see sym.go): locations and
// values fold in a thread-relabeling-invariant encoding, so builds of
// one symmetric program that differ only by a permutation of the
// interchangeable threads produce identical fingerprints and share one
// verdict-store cell.
func (p *Program) Fingerprint128() graph.Hash128 {
	if spec := p.SymSpec(); spec != nil {
		return p.canonFingerprint(spec)
	}
	h := graph.NewHasher128()
	vs := &VarSet{}
	threads, final := p.Build(vs)
	h.Word(uint64(fpVars)<<56 | uint64(len(vs.Vars)))
	for _, v := range vs.Vars {
		h.String(v.Name)
		h.Word(v.Init)
	}
	h.Word(uint64(len(threads)))
	m := &fpMem{h: &h, mem: vs.Inits()}
	for t, fn := range threads {
		h.Word(uint64(fpThread)<<56 | uint64(t))
		m.tid = t
		fn(m)
	}
	if final != nil {
		ok, msg := final(func(v *Var) uint64 { return m.mem[v.ID] })
		okw := uint64(0)
		if ok {
			okw = 1
		}
		h.Word(uint64(fpFinalCheck)<<56 | okw)
		h.String(msg)
	}
	return h.Sum()
}

// Package vprog defines the concurrent-program API shared by every
// VSync backend: the model checker (internal/core), the weak-memory
// performance simulator (internal/wmsim) and the native atomics runner
// (internal/native).
//
// It is the Go realization of the paper's tiny concurrent assembly-like
// language (§2.1): threads are deterministic closures whose only
// interaction with shared state goes through the Mem interface, and
// await loops are marked explicitly with Mem.AwaitWhile so that Await
// Model Checking can bracket their iterations.
//
// Programs written against this API must obey the paper's two
// principles for AMC to be applicable:
//
//   - Bounded-Length: apart from AwaitWhile/AwaitDo loops, every thread
//     performs a bounded number of Mem operations.
//   - Bounded-Effect: a failed await iteration must not produce
//     value-changing writes; its only effects are thread-local. (A CAS
//     that fails or an exchange that stores back the value it read are
//     fine — the paper's footnote 5.)
//
// The two await constructs split the Bounded-Effect obligation into two
// contracts the checker validates on replayed traces:
//
//   - AwaitWhile(cond): the polling await. cond must be read-only — a
//     failed iteration may contain no plain store and no value-changing
//     (non-degraded) update. This is the paper's await as written.
//   - AwaitDo(body): the effect-bounded retry await (a CAS loop). A
//     failed iteration may additionally (a) plain-store to the
//     executing thread's own TagOwner replicas — thread-local effects
//     under thread-symmetry, invisible to other threads until a
//     successful publication — and (b) attempt updates (CmpXchg, Xchg,
//     FetchAdd) anywhere. A failed CAS degrades to a read (footnote 5);
//     a successful, value-changing update inside a failed iteration is
//     self-limiting: two consecutive iterations whose reads have
//     identical rf vectors would place two such updates mo-adjacent on
//     the same rf source, which atomicity already forbids, so the
//     wasteful-execution filter (Def. 2) never prunes an iteration that
//     made progress.
//
// Violations of either contract are detected during replay and reported
// as checker errors rather than silently unsound verdicts.
package vprog

import (
	"sync"

	"repro/internal/graph"
)

// Mode re-exports the barrier modes so lock implementations need only
// import vprog.
type Mode = graph.Mode

// Barrier modes, weakest to strongest.
const (
	ModeNone = graph.ModeNone
	Rlx      = graph.Rlx
	Acq      = graph.Acq
	Rel      = graph.Rel
	AcqRel   = graph.AcqRel
	SC       = graph.SC
)

// Var is a shared memory cell. Vars are allocated through an Env so
// that each backend can assign them locations (checker), cache lines
// (simulator) or real memory (native runner). The zero Var is not
// usable.
type Var struct {
	Name string
	ID   int // dense location id assigned by the Env
	Init uint64

	// Sym* declare how the variable participates in thread-symmetry
	// reduction (see Program.SymGroups and internal/graph.SymSpec).
	// They are inert metadata: backends ignore them, and the explorer
	// only consults them for programs that declare symmetric groups.
	//
	// SymOwner marks a per-thread replica: 1+tid of the owning thread
	// (0 = unowned), with SymFamily naming the replica array it belongs
	// to — relabeling thread t to π(t) moves events on this variable to
	// the family member owned by π(t). SymTid marks values that embed a
	// thread id at bit offset SymShift with bias SymBias (the embedded
	// field is (value >> SymShift) - SymBias; fields outside [0, t) are
	// left alone, so sentinel encodings like "0 = free, tid+1 = holder"
	// tag with SymBias 1).
	SymOwner  int
	SymFamily string
	SymTid    bool
	SymShift  uint8
	SymBias   int64

	// Cell is the backing storage used by the native backend (accessed
	// with sync/atomic). The padding keeps distinct Vars on distinct
	// cache lines so native benchmarks do not suffer false sharing.
	Cell uint64
	_    [7]uint64
}

// TagTid declares that values stored in v embed a thread id at bit
// offset shift with bias bias, and returns v for chaining at the
// allocation site.
func (v *Var) TagTid(shift uint8, bias int64) *Var {
	v.SymTid, v.SymShift, v.SymBias = true, shift, bias
	return v
}

// TagOwner declares v as thread tid's replica within the named family
// and returns v for chaining.
func (v *Var) TagOwner(tid int, family string) *Var {
	v.SymOwner, v.SymFamily = tid+1, family
	return v
}

// Env allocates shared variables during program build.
type Env interface {
	// Var allocates (or returns the previously allocated) variable with
	// the given name and initial value.
	Var(name string, init uint64) *Var
}

// Mem is the shared-memory interface threads program against. Every
// operation takes an explicit barrier mode; ModeNone is only meaningful
// for Fence (an eliminated fence).
type Mem interface {
	// Load returns the current value of v.
	Load(v *Var, m Mode) uint64
	// Store writes x to v.
	Store(v *Var, x uint64, m Mode)
	// Xchg atomically swaps v to x and returns the prior value.
	Xchg(v *Var, x uint64, m Mode) uint64
	// CmpXchg atomically compares v with old and, if equal, stores new.
	// It returns the prior value and whether the exchange happened.
	CmpXchg(v *Var, old, new uint64, m Mode) (uint64, bool)
	// FetchAdd atomically adds delta to v and returns the prior value.
	FetchAdd(v *Var, delta uint64, m Mode) uint64
	// Fence issues a memory fence; ModeNone is a no-op (an optimized-away
	// fence).
	Fence(m Mode)
	// AwaitWhile marks an await loop: cond is evaluated repeatedly (at
	// least once) until it returns false. Each evaluation is one await
	// iteration for the model checker's wasteful-execution filter and
	// ⊥-rf await-termination detection. cond must be read-only (see the
	// package doc's Bounded-Effect contracts).
	AwaitWhile(cond func() bool)
	// AwaitDo marks an effect-bounded retry await (a CAS loop): body is
	// evaluated repeatedly (at least once) until it returns true. Each
	// evaluation is one await iteration under the same AwaitSeq/AwaitIter
	// span discipline as AwaitWhile. A failed (false-returning) iteration
	// may plain-store only to the executing thread's TagOwner replicas
	// and may attempt updates anywhere; see the package doc's
	// Bounded-Effect contracts for why that is sound.
	AwaitDo(body func() bool)
	// Pause is a spin-wait hint (cpu_relax / WFE); semantically a no-op.
	Pause()
	// TID returns the executing thread's index within the program.
	TID() int
	// Assert records a safety-property check. On the model checker a
	// false assertion becomes an error event (a counterexample); on the
	// other backends it is recorded or panics, per backend documentation.
	Assert(ok bool, msg string)
}

// ThreadFunc is the code of one thread. It must be deterministic given
// the sequence of values its Mem operations return: the model checker
// replays it many times against execution graphs.
type ThreadFunc func(m Mem)

// FinalCheck inspects the final memory state of a complete execution
// (load returns the final value of a variable) and reports whether the
// program's postcondition holds. A nil FinalCheck means no final-state
// assertion.
type FinalCheck func(load func(v *Var) uint64) (ok bool, msg string)

// Program is a closed concurrent program: Build allocates its shared
// variables in the provided Env and returns the thread bodies plus an
// optional final-state check. Build is invoked once per backend
// instantiation and must be deterministic.
type Program struct {
	Name  string
	Build func(env Env) ([]ThreadFunc, FinalCheck)

	// SymGroups declares groups of thread indices that are permutation
	// symmetric: within a group every thread runs the same program up
	// to the Sym* variable tags (per-thread replicas and tid-embedding
	// values), the final check included. The declaration is validated
	// structurally against the built program (family coverage, initial
	// values, a per-thread solo-trace comparison — see SymSpec); groups
	// that fail validation are dropped rather than trusted. The model
	// checker then explores only one representative of each
	// thread-relabeling orbit.
	SymGroups [][]int

	symOnce sync.Once
	symSpec *graph.SymSpec
}

// VarSet is a ready-made Env that backends embed: it allocates dense
// location ids and remembers names and initial values.
type VarSet struct {
	Vars  []*Var
	byKey map[string]*Var
}

// Var implements Env.
func (vs *VarSet) Var(name string, init uint64) *Var {
	if vs.byKey == nil {
		vs.byKey = make(map[string]*Var)
	}
	if v, ok := vs.byKey[name]; ok {
		return v
	}
	v := &Var{Name: name, ID: len(vs.Vars), Init: init, Cell: init}
	vs.Vars = append(vs.Vars, v)
	vs.byKey[name] = v
	return v
}

// Names returns the variable names indexed by location id.
func (vs *VarSet) Names() []string {
	out := make([]string, len(vs.Vars))
	for i, v := range vs.Vars {
		out[i] = v.Name
	}
	return out
}

// Inits returns the initial values indexed by location id.
func (vs *VarSet) Inits() []uint64 {
	out := make([]uint64, len(vs.Vars))
	for i, v := range vs.Vars {
		out[i] = v.Init
	}
	return out
}

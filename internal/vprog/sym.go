package vprog

import (
	"sort"

	"repro/internal/graph"
)

// Thread-symmetry validation. A program declares candidate symmetric
// groups (Program.SymGroups) and tags the variables that carry thread
// identity (Var.TagOwner / Var.TagTid); this file checks the
// declaration against the built program and produces the graph.SymSpec
// the explorer canonicalizes with. The check never trusts the
// declaration: groups that fail validation are dropped, malformed tags
// disable symmetry for the whole program, and a program with no
// surviving groups simply runs without symmetry reduction.
//
// Validation is trace-based: the program is executed sequentially once
// per candidate permutation pi, visiting threads in canonical-slot
// order (slot s runs thread pi^-1(s)) against a real in-order memory,
// while folding a trace in which locations and values are rewritten
// under pi — owned locations fold as (family, slot of owner under pi),
// tid-carrying values have their id field mapped through pi. For a
// genuinely symmetric program every permutation folds to the identical
// hash; any divergence (a thread id stored raw to an untagged
// variable, an assert message embedding a thread id, a constant that
// happens to decode to a peer's id at a tagged location, asymmetric
// initial values, an asymmetric final check) shows up as a trace
// mismatch and drops the group. The same folded trace under the
// identity permutation is the program's canonical fingerprint
// (Fingerprint128), which is why permuted builds of one symmetric
// program unify to one verdict-store key.
//
// Trust model: like Fingerprint128 itself, the trace witnesses the
// sequential execution path only — code reachable solely under
// contention (a CAS-failure arm, a queue-lock handoff) is not
// exercised, so an asymmetry hiding exclusively in a contended path
// would go undetected here. The permutation-differential test suite
// (symmetry-on vs symmetry-off over the full corpus) is the empirical
// oracle for exactly that residual risk, and Checker.NoSymmetry keeps
// the unreduced path available as a differential baseline.

// SymSpec returns the program's validated symmetry metadata, or nil
// when the program declares no symmetric groups or none survive
// validation. The result is memoized: Build runs at most once for
// validation no matter how many runs share the program.
func (p *Program) SymSpec() *graph.SymSpec {
	p.symOnce.Do(func() { p.symSpec = buildSymSpec(p) })
	return p.symSpec
}

// symTables is the vprog-side view of the variable tags: the location
// tables a graph.SymSpec needs plus the pieces only the canonical
// trace folds (family names, unowned allocation ranks, initial
// values).
type symTables struct {
	owner   []int32   // loc -> owning thread, -1 unowned
	fam     []int32   // loc -> family id, -1 none
	famLoc  [][]int32 // family -> owner thread -> loc (-1 absent)
	famName []string  // family id -> SymFamily name (first-use order)
	tagged  []bool
	shift   []uint8
	bias    []int64
	rank    []int32 // loc -> rank among unowned vars, -1 for owned
	inits   []uint64
	ok      bool // tags well-formed
}

// buildSymTables derives the tag tables from a built VarSet. Malformed
// tags (an owner outside [0,n), an owned variable without a family, two
// variables claiming the same family member) clear ok — symmetry is
// then disabled outright rather than guessing what the program meant.
func buildSymTables(vs *VarSet, n int) symTables {
	nv := len(vs.Vars)
	tb := symTables{
		owner:  make([]int32, nv),
		fam:    make([]int32, nv),
		tagged: make([]bool, nv),
		shift:  make([]uint8, nv),
		bias:   make([]int64, nv),
		rank:   make([]int32, nv),
		inits:  vs.Inits(),
		ok:     true,
	}
	famID := map[string]int{}
	unowned := int32(0)
	for i, v := range vs.Vars {
		tb.owner[i], tb.fam[i], tb.rank[i] = -1, -1, -1
		tb.tagged[i], tb.shift[i], tb.bias[i] = v.SymTid, v.SymShift, v.SymBias
		if v.SymOwner == 0 {
			tb.rank[i] = unowned
			unowned++
			continue
		}
		o := v.SymOwner - 1
		if o < 0 || o >= n || v.SymFamily == "" {
			tb.ok = false
			return tb
		}
		f, seen := famID[v.SymFamily]
		if !seen {
			f = len(tb.famName)
			famID[v.SymFamily] = f
			tb.famName = append(tb.famName, v.SymFamily)
			row := make([]int32, n)
			for t := range row {
				row[t] = -1
			}
			tb.famLoc = append(tb.famLoc, row)
		}
		if tb.famLoc[f][o] >= 0 {
			tb.ok = false
			return tb
		}
		tb.owner[i], tb.fam[i] = int32(o), int32(f)
		tb.famLoc[f][o] = int32(i)
	}
	return tb
}

// spec assembles a finalized graph.SymSpec over the given groups (nil
// if Finalize refuses — e.g. the permutation count exceeds its cap).
func (tb *symTables) spec(n int, groups [][]int) *graph.SymSpec {
	s := &graph.SymSpec{
		N: n, Groups: groups,
		LocOwner: tb.owner, LocFam: tb.fam, FamLoc: tb.famLoc,
		ValTagged: tb.tagged, ValShift: tb.shift, ValBias: tb.bias,
	}
	if !s.Finalize() {
		return nil
	}
	return s
}

// idField decodes the thread-id field of a value at loc l, or -1 when
// the location is untagged (callers treat out-of-range like untagged).
func (tb *symTables) idField(l int32, v uint64) int64 {
	if !tb.tagged[l] {
		return -1
	}
	return int64(v>>tb.shift[l]) - tb.bias[l]
}

// groupStructOK runs the structural checks the traces cannot be
// trusted to cover (family members may never be touched on the
// sequential path): every family owned into the group must cover it
// completely with uniform value-tag parameters, and no unowned tagged
// variable may be initialized to a member's thread id (initial values
// are never relabeled at their location, so such an init would make
// relabeled graphs diverge from the real permuted run).
func (tb *symTables) groupStructOK(grp []int) bool {
	in := map[int]bool{}
	for _, t := range grp {
		in[t] = true
	}
	for f := range tb.famName {
		row := tb.famLoc[f]
		cnt := 0
		for _, t := range grp {
			if row[t] >= 0 {
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		if cnt != len(grp) {
			return false
		}
		l0 := row[grp[0]]
		for _, t := range grp {
			l := row[t]
			if tb.tagged[l] != tb.tagged[l0] || tb.shift[l] != tb.shift[l0] || tb.bias[l] != tb.bias[l0] {
				return false
			}
		}
	}
	for l := range tb.tagged {
		if tb.owner[l] >= 0 || !tb.tagged[l] {
			continue
		}
		if fv := tb.idField(int32(l), tb.inits[l]); fv >= 0 && in[int(fv)] {
			return false
		}
	}
	return true
}

// normalizeGroups sorts, dedups and range-checks the declared groups,
// dropping any group that is too small, out of range, or overlaps an
// earlier kept group.
func normalizeGroups(declared [][]int, n int) [][]int {
	var out [][]int
	taken := make([]bool, n)
	for _, g := range declared {
		grp := append([]int(nil), g...)
		sort.Ints(grp)
		ok := len(grp) >= 2
		for i, t := range grp {
			if t < 0 || t >= n || taken[t] || (i > 0 && grp[i-1] == t) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, t := range grp {
			taken[t] = true
		}
		out = append(out, grp)
	}
	return out
}

// buildSymSpec validates the declared groups against one build of the
// program: structural checks first, then each group alone must fold
// identical canonical traces over all of its permutations, then the
// surviving groups together over the full candidate set (cross-group
// interactions — e.g. a family init carrying another group's thread id
// — only show up in mixed permutations). Any combined failure disables
// symmetry entirely rather than guessing which group to blame.
func buildSymSpec(p *Program) *graph.SymSpec {
	if len(p.SymGroups) == 0 {
		return nil
	}
	vs := &VarSet{}
	threads, final := p.Build(vs)
	n := len(threads)
	groups := normalizeGroups(p.SymGroups, n)
	if len(groups) == 0 {
		return nil
	}
	tb := buildSymTables(vs, n)
	if !tb.ok {
		return nil
	}
	var kept [][]int
	for _, g := range groups {
		if tb.groupStructOK(g) && validatePerms(vs, &tb, threads, final, [][]int{g}, n) {
			kept = append(kept, g)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	if len(kept) > 1 && !validatePerms(vs, &tb, threads, final, kept, n) {
		return nil
	}
	return tb.spec(n, kept)
}

// validatePerms reports whether every candidate permutation of the
// given groups folds the same canonical trace.
func validatePerms(vs *VarSet, tb *symTables, threads []ThreadFunc, final FinalCheck, groups [][]int, n int) bool {
	s := tb.spec(n, groups)
	if s == nil {
		return false
	}
	perms := s.AllPerms()
	ref := canonTrace(vs, tb, s, threads, final, perms[0])
	for _, pm := range perms[1:] {
		if canonTrace(vs, tb, s, threads, final, pm) != ref {
			return false
		}
	}
	return true
}

// canonMem is the permutation-folding twin of fpMem: operations
// execute against real memory indexed by real locations, but the trace
// folds equivariant tokens — owned locations as (family, owner's slot
// under perm), unowned locations as their allocation rank, and values
// with their thread-id field mapped through perm. For a symmetric
// program the folded trace is therefore independent of which
// permutation scheduled the threads.
type canonMem struct {
	h    *graph.Hasher128
	mem  []uint64
	tb   *symTables
	spec *graph.SymSpec
	perm []int32
	tid  int
}

func (m *canonMem) locTok(v *Var) uint64 {
	if o := m.tb.owner[v.ID]; o >= 0 {
		return 1<<31 | uint64(uint32(m.tb.fam[v.ID]))<<20 | uint64(uint32(m.perm[o]))
	}
	return uint64(uint32(m.tb.rank[v.ID]))
}

func (m *canonMem) mv(v *Var, x uint64) uint64 {
	return m.spec.MapVal(m.perm, graph.Loc(v.ID), x)
}

func (m *canonMem) op(tag int, v *Var, mode Mode, words ...uint64) {
	m.h.Word(uint64(tag)<<56 | uint64(mode)<<48 | m.locTok(v))
	for _, w := range words {
		m.h.Word(w)
	}
}

func (m *canonMem) Load(v *Var, mode Mode) uint64 {
	x := m.mem[v.ID]
	m.op(fpLoad, v, mode, m.mv(v, x))
	return x
}

func (m *canonMem) Store(v *Var, x uint64, mode Mode) {
	m.mem[v.ID] = x
	m.op(fpStore, v, mode, m.mv(v, x))
}

func (m *canonMem) Xchg(v *Var, x uint64, mode Mode) uint64 {
	old := m.mem[v.ID]
	m.mem[v.ID] = x
	m.op(fpXchg, v, mode, m.mv(v, old), m.mv(v, x))
	return old
}

func (m *canonMem) CmpXchg(v *Var, old, new uint64, mode Mode) (uint64, bool) {
	cur := m.mem[v.ID]
	ok := cur == old
	if ok {
		m.mem[v.ID] = new
	}
	okw := uint64(0)
	if ok {
		okw = 1
	}
	m.op(fpCmpXchg, v, mode, m.mv(v, cur), m.mv(v, old), m.mv(v, new), okw)
	return cur, ok
}

func (m *canonMem) FetchAdd(v *Var, delta uint64, mode Mode) uint64 {
	old := m.mem[v.ID]
	m.mem[v.ID] = old + delta
	// The delta itself is a difference, not a stored value, so it is
	// folded via the value it produces — both endpoints map cleanly.
	m.op(fpFetchAdd, v, mode, m.mv(v, old), m.mv(v, old+delta))
	return old
}

func (m *canonMem) Fence(mode Mode) {
	m.h.Word(uint64(fpFence)<<56 | uint64(mode)<<48)
}

func (m *canonMem) AwaitWhile(cond func() bool) {
	m.h.Word(uint64(fpAwaitEnter) << 56)
	for i := 0; ; i++ {
		if i >= awaitFingerprintCap {
			m.h.Word(uint64(fpAwaitSaturated) << 56)
			return
		}
		if !cond() {
			m.h.Word(uint64(fpAwaitExit)<<56 | uint64(i))
			return
		}
	}
}

func (m *canonMem) AwaitDo(body func() bool) {
	m.h.Word(uint64(fpAwaitDo) << 56)
	for i := 0; ; i++ {
		if i >= awaitFingerprintCap {
			m.h.Word(uint64(fpAwaitSaturated) << 56)
			return
		}
		if body() {
			m.h.Word(uint64(fpAwaitExit)<<56 | uint64(i))
			return
		}
	}
}

func (m *canonMem) Pause() {
	m.h.Word(uint64(fpPause) << 56)
}

// TID returns the real thread index (the closure must behave as in a
// real run) but folds the canonical slot: a symmetric program may use
// its tid only in ways the tags capture, and those fold mapped.
func (m *canonMem) TID() int {
	m.h.Word(uint64(fpTID)<<56 | uint64(uint32(m.perm[m.tid])))
	return m.tid
}

func (m *canonMem) Assert(ok bool, msg string) {
	okw := uint64(0)
	if ok {
		okw = 1
	}
	m.h.Word(uint64(fpAssert)<<56 | okw)
	m.h.String(msg)
}

// canonTrace folds one sequential execution under perm: the canonical
// variable section (unowned vars in allocation order, then each family
// as its name plus per-slot mapped initial values), then each thread's
// operation trace in canonical-slot order, then the final check's
// outcome on the resulting memory. For a valid spec the result is
// permutation-independent; under the identity permutation it doubles
// as the program's canonical fingerprint.
func canonTrace(vs *VarSet, tb *symTables, spec *graph.SymSpec, threads []ThreadFunc, final FinalCheck, perm []int32) graph.Hash128 {
	h := graph.NewHasher128()
	h.Word(uint64(fpVars)<<56 | uint64(len(vs.Vars)))
	for _, v := range vs.Vars {
		if tb.owner[v.ID] >= 0 {
			continue
		}
		h.String(v.Name)
		h.Word(spec.MapVal(perm, graph.Loc(v.ID), v.Init))
	}
	inv := make([]int32, len(perm))
	for t, s := range perm {
		inv[s] = int32(t)
	}
	for f, name := range tb.famName {
		h.String(name)
		for slot := range perm {
			l := tb.famLoc[f][inv[slot]]
			if l < 0 {
				h.Word(0xfa111e55)
				continue
			}
			h.Word(1)
			h.Word(spec.MapVal(perm, graph.Loc(l), vs.Vars[l].Init))
		}
	}
	h.Word(uint64(len(threads)))
	m := &canonMem{h: &h, mem: vs.Inits(), tb: tb, spec: spec, perm: perm}
	for slot := range threads {
		t := int(inv[slot])
		h.Word(uint64(fpThread)<<56 | uint64(slot))
		m.tid = t
		threads[t](m)
	}
	if final != nil {
		ok, msg := final(func(v *Var) uint64 { return m.mem[v.ID] })
		okw := uint64(0)
		if ok {
			okw = 1
		}
		h.Word(uint64(fpFinalCheck)<<56 | okw)
		h.String(msg)
	}
	return h.Sum()
}

// canonFingerprint is the symmetric program's structural hash: the
// canonical trace under the identity permutation. Validation has
// already proved every candidate permutation folds this same value, so
// two builds of one program that differ only by a relabeling of
// symmetric threads (swapped per-thread closures with correspondingly
// swapped tags and initial values) hash equal — they are one
// verification problem and share one verdict-store cell.
func (p *Program) canonFingerprint(spec *graph.SymSpec) graph.Hash128 {
	vs := &VarSet{}
	threads, final := p.Build(vs)
	tb := buildSymTables(vs, len(threads))
	id := make([]int32, len(threads))
	for t := range id {
		id[t] = int32(t)
	}
	return canonTrace(vs, &tb, spec, threads, final, id)
}

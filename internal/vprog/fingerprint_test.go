package vprog

import (
	"testing"
	"time"

	"repro/internal/graph"
)

// counter builds a same-named program whose shape (threads, iterations)
// is parameterized — the exact situation the name-keyed verdict cache
// got wrong.
func counter(name string, nthreads, iters int) *Program {
	return &Program{
		Name: name,
		Build: func(env Env) ([]ThreadFunc, FinalCheck) {
			x := env.Var("x", 0)
			worker := func(m Mem) {
				for i := 0; i < iters; i++ {
					m.FetchAdd(x, 1, SC)
				}
			}
			threads := make([]ThreadFunc, nthreads)
			for t := range threads {
				threads[t] = worker
			}
			return threads, nil
		},
	}
}

// TestFingerprintSameNameDifferentShape is the cache-unsoundness
// regression: two programs sharing one name but differing in thread
// count or iteration count must not share a fingerprint.
func TestFingerprintSameNameDifferentShape(t *testing.T) {
	base := counter("client/shared-name", 2, 1).Fingerprint128()
	if fp := counter("client/shared-name", 3, 1).Fingerprint128(); fp == base {
		t.Fatal("3-thread program fingerprints equal to 2-thread program")
	}
	if fp := counter("client/shared-name", 2, 2).Fingerprint128(); fp == base {
		t.Fatal("2-iteration program fingerprints equal to 1-iteration program")
	}
}

// TestFingerprintDeterministicAndNameBlind: rebuilding the same shape
// reproduces the fingerprint, and the name is not part of it (names are
// reporting labels; structure is the key).
func TestFingerprintDeterministicAndNameBlind(t *testing.T) {
	a := counter("a", 2, 1)
	if a.Fingerprint128() != a.Fingerprint128() {
		t.Fatal("fingerprint not stable across calls")
	}
	if counter("a", 2, 1).Fingerprint128() != counter("b", 2, 1).Fingerprint128() {
		t.Fatal("identically-shaped programs with different names fingerprint differently")
	}
}

// TestFingerprintModeSensitive: a barrier-mode change alone (what a
// candidate spec does) must change the fingerprint.
func TestFingerprintModeSensitive(t *testing.T) {
	prog := func(mode Mode) *Program {
		return &Program{
			Name: "litmus/modes",
			Build: func(env Env) ([]ThreadFunc, FinalCheck) {
				x := env.Var("x", 0)
				return []ThreadFunc{func(m Mem) { m.Store(x, 1, mode) }}, nil
			},
		}
	}
	if prog(Rlx).Fingerprint128() == prog(SC).Fingerprint128() {
		t.Fatal("barrier mode not reflected in the fingerprint")
	}
}

// TestFingerprintVarSensitive: initial values and variable sets matter.
func TestFingerprintVarSensitive(t *testing.T) {
	prog := func(init uint64) *Program {
		return &Program{
			Name: "p",
			Build: func(env Env) ([]ThreadFunc, FinalCheck) {
				x := env.Var("x", init)
				return []ThreadFunc{func(m Mem) { m.Load(x, Rlx) }}, nil
			},
		}
	}
	if prog(0).Fingerprint128() == prog(1).Fingerprint128() {
		t.Fatal("initial value not reflected in the fingerprint")
	}
}

// TestFingerprintAwaitTerminates: an await loop that can never exit
// under the sequential schedule must saturate at the cap, not hang —
// and the saturated trace must still be deterministic.
func TestFingerprintAwaitTerminates(t *testing.T) {
	hang := &Program{
		Name: "await/hang",
		Build: func(env Env) ([]ThreadFunc, FinalCheck) {
			x := env.Var("x", 0)
			t0 := func(m Mem) {
				// x is only ever set by thread 1, which the sequential
				// fingerprint schedule runs second: this spins forever.
				m.AwaitWhile(func() bool { return m.Load(x, Acq) == 0 })
			}
			t1 := func(m Mem) { m.Store(x, 1, Rel) }
			return []ThreadFunc{t0, t1}, nil
		},
	}
	done := make(chan graph.Hash128, 2)
	for i := 0; i < 2; i++ {
		go func() { done <- hang.Fingerprint128() }()
	}
	var fps [2]graph.Hash128
	for i := range fps {
		select {
		case fps[i] = <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("fingerprinting a sequentially-unterminating await hangs; the cap is not applied")
		}
	}
	if fps[0] != fps[1] {
		t.Fatal("saturated await trace not deterministic")
	}
}

package faultinject

import (
	"errors"
	"testing"
)

func TestDisarmedIsInert(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with no faults configured")
	}
	if err := Fire("store.append"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
}

func TestAlwaysErr(t *testing.T) {
	Reset()
	defer Reset()
	if err := Configure("store.append:err"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := Fire("store.append"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := Fire("store.rename"); err != nil {
		t.Fatalf("unconfigured point fired: %v", err)
	}
	if Hits("store.append") != 3 {
		t.Fatalf("hits = %d", Hits("store.append"))
	}
}

func TestNthCall(t *testing.T) {
	Reset()
	defer Reset()
	if err := Configure("remote.put:on=3"); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 5; i++ {
		if Fire("remote.put") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired on calls %v, want [3]", fired)
	}
}

func TestAfter(t *testing.T) {
	Reset()
	defer Reset()
	if err := Configure("store.flock:after=2"); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 5; i++ {
		if Fire("store.flock") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 {
		t.Fatalf("fired on calls %v, want [3 4 5]", fired)
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	if err := Configure("remote.get:p=0.5"); err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < 1000; i++ {
		if Fire("remote.get") != nil {
			n++
		}
	}
	if n < 350 || n > 650 {
		t.Fatalf("p=0.5 fired %d/1000 times", n)
	}
}

func TestKillUsesExitHook(t *testing.T) {
	Reset()
	defer Reset()
	exited := -1
	real := osExit
	osExit = func(code int) { exited = code }
	defer func() { osExit = real }()
	if err := Configure("store.append:kill=2"); err != nil {
		t.Fatal(err)
	}
	Fire("store.append")
	if exited != -1 {
		t.Fatal("killed on call 1")
	}
	Fire("store.append")
	if exited != killExitCode {
		t.Fatalf("exit code = %d, want %d", exited, killExitCode)
	}
}

func TestMalformedSpecs(t *testing.T) {
	Reset()
	defer Reset()
	for _, spec := range []string{"noaction", "p:q=1", "x:p=2", "x:on=0", "x:frob"} {
		if err := Configure(spec); err == nil {
			t.Fatalf("Configure(%q) accepted", spec)
		}
	}
}

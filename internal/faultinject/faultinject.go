// Package faultinject is an env-gated failpoint layer for chaos
// testing the persistence paths: verdict-store file I/O, log
// compaction renames, flock acquisition, remote-tier HTTP calls, and
// checkpoint writes each consult a named failpoint before acting.
//
// In production the package is inert: Fire is a single atomic load
// when no faults are configured, so the hooks cost nothing on the
// paths they guard. Faults are armed either through the VSYNC_FAULTS
// environment variable at process start or programmatically via
// Configure (tests).
//
// VSYNC_FAULTS is a comma-separated list of point:action specs:
//
//	VSYNC_FAULTS="store.append:err"          // every call fails
//	VSYNC_FAULTS="store.append:p=0.2"        // each call fails with probability 0.2
//	VSYNC_FAULTS="remote.put:on=3"           // exactly the 3rd call fails
//	VSYNC_FAULTS="store.flock:after=10"      // every call after the 10th fails
//	VSYNC_FAULTS="store.append:kill=5"       // the 5th call exits the process (simulated crash)
//	VSYNC_FAULTS="store.append.torn:on=2"    // point-specific: 2nd append tears mid-record
//
// Probabilistic faults draw from a deterministic PRNG seeded by
// VSYNC_FAULTS_SEED (default 1), so a failing chaos run reproduces
// with the same seed. An injected failure is reported as an error
// wrapping ErrInjected, so tests can assert provenance with errors.Is.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel wrapped by every injected failure.
var ErrInjected = errors.New("injected fault")

// killExitCode is the exit status of a kill= action: 128+9, the status
// a SIGKILLed process reports, so resume paths exercised by the chaos
// harness see exactly what a real kill -9 produces.
const killExitCode = 137

type action struct {
	always bool
	prob   float64 // fail with this probability when > 0
	on     int64   // fail exactly the nth call when > 0
	after  int64   // fail every call past the nth when > 0
	kill   int64   // exit the process on the nth call when > 0
	calls  atomic.Int64
	hits   atomic.Int64
}

type registry struct {
	mu     sync.RWMutex
	points map[string]*action
	rngMu  sync.Mutex
	rng    uint64
}

var (
	armed atomic.Bool
	reg   = &registry{points: map[string]*action{}, rng: 1}

	// osExit is swapped out by tests of the kill action itself; the
	// chaos harness uses the real thing.
	osExit = os.Exit
)

func init() {
	if spec := os.Getenv("VSYNC_FAULTS"); spec != "" {
		if err := Configure(spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring malformed VSYNC_FAULTS: %v\n", err)
		}
	}
	if s := os.Getenv("VSYNC_FAULTS_SEED"); s != "" {
		if seed, err := strconv.ParseUint(s, 10, 64); err == nil && seed != 0 {
			reg.rng = seed
		}
	}
}

// Enabled reports whether any failpoint is armed. It is the zero-cost
// guard the hooks use before doing any per-point work.
func Enabled() bool { return armed.Load() }

// Configure arms failpoints from a spec string (same grammar as the
// VSYNC_FAULTS environment variable), adding to any already armed.
func Configure(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, act, ok := strings.Cut(part, ":")
		if !ok || point == "" {
			return fmt.Errorf("spec %q: want point:action", part)
		}
		a := &action{}
		switch {
		case act == "err":
			a.always = true
		case strings.HasPrefix(act, "p="):
			p, err := strconv.ParseFloat(act[2:], 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("spec %q: bad probability", part)
			}
			a.prob = p
		case strings.HasPrefix(act, "on="):
			n, err := strconv.ParseInt(act[3:], 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("spec %q: bad call number", part)
			}
			a.on = n
		case strings.HasPrefix(act, "after="):
			n, err := strconv.ParseInt(act[6:], 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("spec %q: bad call number", part)
			}
			a.after = n
		case strings.HasPrefix(act, "kill="):
			n, err := strconv.ParseInt(act[5:], 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("spec %q: bad call number", part)
			}
			a.kill = n
		default:
			return fmt.Errorf("spec %q: unknown action %q", part, act)
		}
		reg.mu.Lock()
		reg.points[point] = a
		reg.mu.Unlock()
	}
	armed.Store(true)
	return nil
}

// Reset disarms every failpoint (test teardown).
func Reset() {
	reg.mu.Lock()
	reg.points = map[string]*action{}
	reg.mu.Unlock()
	armed.Store(false)
}

// Hits returns how many times the named point actually injected a
// failure so far.
func Hits(point string) int64 {
	reg.mu.RLock()
	a := reg.points[point]
	reg.mu.RUnlock()
	if a == nil {
		return 0
	}
	return a.hits.Load()
}

// Fire consults the named failpoint. It returns nil when the caller
// should proceed normally, or an error wrapping ErrInjected when the
// configured fault fires. A kill= action does not return: it exits
// the process with the SIGKILL status, simulating a crash at exactly
// this point.
func Fire(point string) error {
	if !armed.Load() {
		return nil
	}
	reg.mu.RLock()
	a := reg.points[point]
	reg.mu.RUnlock()
	if a == nil {
		return nil
	}
	n := a.calls.Add(1)
	fire := a.always ||
		(a.on > 0 && n == a.on) ||
		(a.after > 0 && n > a.after) ||
		(a.prob > 0 && randFloat() < a.prob)
	if a.kill > 0 && n == a.kill {
		fmt.Fprintf(os.Stderr, "faultinject: kill at %s call %d\n", point, n)
		osExit(killExitCode)
	}
	if !fire {
		return nil
	}
	a.hits.Add(1)
	return fmt.Errorf("%s: %w", point, ErrInjected)
}

// randFloat draws from a deterministic xorshift64* stream under a
// mutex — contention-free in practice (probabilistic faults are a test
// construct) and reproducible from VSYNC_FAULTS_SEED.
func randFloat() float64 {
	reg.rngMu.Lock()
	x := reg.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	reg.rng = x
	reg.rngMu.Unlock()
	return float64((x*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
}

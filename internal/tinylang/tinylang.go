// Package tinylang implements the paper's "tiny concurrent
// assembly-like language" (§2.1 of the technical report), the formal
// foundation of the AMC correctness proof: threads are finite sequences
// of statements, where a statement is either an event-generating
// instruction step(ε, δ) — a pair of an event generator and a state
// transformer over thread-local registers — or a do-await-while
// await(n, κ) that re-executes the previous n statements while the loop
// condition κ holds.
//
// Programs in this language satisfy the Bounded-Length principle by
// construction (the only loops are awaits; bounded loops must be
// unrolled, Fig. 10), and the package enforces the syntactic
// restrictions of §2.1.1: awaits are not nested and an await jumping
// back n statements sits at position ≥ n.
//
// Compile bridges tiny-language programs onto the vprog API, so they
// run under the model checker, the simulator and the native backend
// like any other program — the execution-graph-driven semantics of
// §2.1.2 is exactly what internal/core's replayer implements.
package tinylang

import (
	"fmt"

	"repro/internal/vprog"
)

// Register names a thread-local register.
type Register string

// State is the thread-local register state σ (§2.1: State = Register →
// Value). Missing registers read as zero.
type State map[Register]uint64

// Get returns σ(r).
func (s State) Get(r Register) uint64 { return s[r] }

// Update is the register-update list returned by state transformers
// (the µ of Fig. 8); nil means no registers change.
type Update map[Register]uint64

// EventKind classifies generated events.
type EventKind uint8

// Event kinds of the language (Fig. 8): reads, writes, fences (with
// Frlx doubling as the NOP of conditional branches), and error events.
const (
	ERead EventKind = iota
	EWrite
	EFence // Frlx acts as "no event" per §2.1.1
	EError
)

// EventSpec is the event chosen by an event generator for the current
// state: kind, location, mode, and the value for writes.
type EventSpec struct {
	Kind EventKind
	Loc  *vprog.Var
	Mode vprog.Mode
	Val  uint64
	Msg  string // EError
}

// Nop is the event of instructions that generate nothing in the
// current state (the relaxed fence of the paper's encoding).
var Nop = EventSpec{Kind: EFence, Mode: vprog.ModeNone}

// Gen is an event generator ε : State → Event.
type Gen func(s State) EventSpec

// Trans is a state transformer δ : State × Value? → Update; v is the
// read result when the generated event was a read, 0 otherwise.
type Trans func(s State, v uint64) Update

// Cond is a loop condition κ : State → {0, 1}.
type Cond func(s State) bool

// Stmt is one statement: either a step or an await.
type Stmt struct {
	// step(ε, δ): both non-nil.
	Gen   Gen
	Trans Trans
	// await(N, Cond): Cond non-nil, N = number of body statements.
	N    int
	Cond Cond
}

// Step builds an event-generating instruction.
func Step(g Gen, t Trans) Stmt {
	if t == nil {
		t = func(State, uint64) Update { return nil }
	}
	return Stmt{Gen: g, Trans: t}
}

// Await builds a do-await-while statement re-executing the previous n
// statements while cond holds.
func Await(n int, cond Cond) Stmt { return Stmt{N: n, Cond: cond} }

// Thread is a finite program text P_T.
type Thread struct {
	Name  string
	Stmts []Stmt
	Init  State // initial register state σ(0); may be nil
}

// Validate enforces the syntactic restrictions of §2.1.1:
// P_T(k) = await(n, _) → n ≤ k ∧ ∀k' ∈ [k−n, k): P_T(k') ≠ await.
func (t *Thread) Validate() error {
	for k, s := range t.Stmts {
		if s.Cond == nil {
			if s.Gen == nil {
				return fmt.Errorf("%s: statement %d is neither step nor await", t.Name, k)
			}
			continue
		}
		if s.N > k {
			return fmt.Errorf("%s: await at %d jumps back %d past the program start", t.Name, k, s.N)
		}
		for k2 := k - s.N; k2 < k; k2++ {
			if t.Stmts[k2].Cond != nil {
				return fmt.Errorf("%s: await at %d nests await at %d", t.Name, k, k2)
			}
		}
	}
	return nil
}

// Program is a parallel composition of threads (Fig. 8) with an
// optional final-state check over shared memory.
type Program struct {
	Name    string
	Threads []*Thread
	Final   vprog.FinalCheck
}

// run interprets one thread against a Mem, realizing the semantics of
// §2.1.2: the position of control moves forward one statement at a
// time except for awaits, which either exit or jump back N statements;
// each step evaluates ε on σ, performs the event, and applies δ.
func run(t *Thread, m vprog.Mem) {
	σ := State{}
	for r, v := range t.Init {
		σ[r] = v
	}
	apply := func(u Update) {
		for r, v := range u {
			σ[r] = v
		}
	}
	exec := func(s Stmt) {
		ev := s.Gen(σ)
		var read uint64
		switch ev.Kind {
		case ERead:
			read = m.Load(ev.Loc, ev.Mode)
		case EWrite:
			m.Store(ev.Loc, ev.Val, ev.Mode)
		case EFence:
			m.Fence(ev.Mode) // ModeNone (Nop) emits nothing
		case EError:
			m.Assert(false, ev.Msg)
		}
		apply(s.Trans(σ, read))
	}
	for k := 0; k < len(t.Stmts); {
		s := t.Stmts[k]
		if s.Cond == nil {
			exec(s)
			k++
			continue
		}
		// do-await-while: the body (the previous N statements) has
		// already run once on the way here; AwaitWhile brackets each
		// further evaluation of body+condition as one await iteration.
		first := true
		m.AwaitWhile(func() bool {
			if !first {
				for k2 := k - s.N; k2 < k; k2++ {
					exec(t.Stmts[k2])
				}
			}
			first = false
			return s.Cond(σ)
		})
		k++
	}
}

// Compile lowers the tiny-language program onto the vprog API so it can
// run on any backend. It returns an error if a thread violates the
// syntactic restrictions.
func Compile(p *Program) (*vprog.Program, error) {
	for _, t := range p.Threads {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	threads := p.Threads
	return &vprog.Program{
		Name: "tinylang/" + p.Name,
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			fns := make([]vprog.ThreadFunc, len(threads))
			for i, t := range threads {
				t := t
				fns[i] = func(m vprog.Mem) { run(t, m) }
			}
			return fns, p.Final
		},
	}, nil
}

// Convenience generators mirroring the encodings of Figs. 9–11.

// LoadTo generates a read of v and stores the result into register r.
func LoadTo(r Register, v *vprog.Var, mode vprog.Mode) Stmt {
	return Step(
		func(State) EventSpec { return EventSpec{Kind: ERead, Loc: v, Mode: mode} },
		func(_ State, val uint64) Update { return Update{r: val} },
	)
}

// StoreFrom generates a write of f(σ) to v.
func StoreFrom(v *vprog.Var, mode vprog.Mode, f func(State) uint64) Stmt {
	return Step(
		func(s State) EventSpec {
			return EventSpec{Kind: EWrite, Loc: v, Mode: mode, Val: f(s)}
		}, nil)
}

// StoreConst generates a write of a constant.
func StoreConst(v *vprog.Var, mode vprog.Mode, val uint64) Stmt {
	return StoreFrom(v, mode, func(State) uint64 { return val })
}

// AssertReg generates an error event when pred(σ) fails.
func AssertReg(msg string, pred func(State) bool) Stmt {
	return Step(
		func(s State) EventSpec {
			if pred(s) {
				return Nop
			}
			return EventSpec{Kind: EError, Msg: msg}
		}, nil)
}

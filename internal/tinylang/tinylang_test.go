package tinylang_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/native"
	"repro/internal/tinylang"
	"repro/internal/vprog"
)

// vars carries the shared variables of a test program; tiny-language
// event generators capture them as *vprog.Var.
type vars struct{ x, y, q, locked *vprog.Var }

// declare allocates them through an env stash so Compile's Build can
// bind them. tinylang programs reference Vars directly, so we allocate
// from a VarSet shared with the Build closure via vprog's name-keyed
// allocation (the same names resolve to the same Vars).
func declare(env vprog.Env) vars {
	return vars{
		x:      env.Var("x", 0),
		y:      env.Var("y", 0),
		q:      env.Var("q", 0),
		locked: env.Var("locked", 0),
	}
}

// buildProgram wraps a tinylang program whose threads need the shared
// vars: the builder runs inside vprog's Build via a late-bound closure.
func buildProgram(t *testing.T, name string, mk func(v vars) ([]*tinylang.Thread, vprog.FinalCheck)) *vprog.Program {
	t.Helper()
	return &vprog.Program{
		Name: "tinylang/" + name,
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			v := declare(env)
			threads, final := mk(v)
			inner := &tinylang.Program{Name: name, Threads: threads, Final: final}
			compiled, err := tinylang.Compile(inner)
			if err != nil {
				t.Fatal(err)
			}
			return compiled.Build(env)
		},
	}
}

// TestFig9Encoding reproduces Fig. 9: a conditional branch implemented
// through the internal logic of the event generators —
//
//	x = r1; r1 = y; if (r1 == 0) r2 = x;
func TestFig9Encoding(t *testing.T) {
	p := buildProgram(t, "fig9", func(v vars) ([]*tinylang.Thread, vprog.FinalCheck) {
		th := &tinylang.Thread{
			Name: "T0",
			Init: tinylang.State{"r1": 5},
			Stmts: []tinylang.Stmt{
				tinylang.StoreFrom(v.x, vprog.Rlx, func(s tinylang.State) uint64 { return s.Get("r1") }),
				tinylang.LoadTo("r1", v.y, vprog.Rlx),
				// Branch: read x only when r1 == 0 (else a NOP, the F^rlx
				// of the paper's encoding).
				tinylang.Step(
					func(s tinylang.State) tinylang.EventSpec {
						if s.Get("r1") == 0 {
							return tinylang.EventSpec{Kind: tinylang.ERead, Loc: v.x, Mode: vprog.Rlx}
						}
						return tinylang.Nop
					},
					func(s tinylang.State, val uint64) tinylang.Update {
						if s.Get("r1") == 0 {
							return tinylang.Update{"r2": val}
						}
						return nil
					},
				),
				tinylang.AssertReg("r2 must hold x when the branch ran",
					func(s tinylang.State) bool { return s.Get("r1") != 0 || s.Get("r2") == 5 }),
			},
		}
		final := func(load func(*vprog.Var) uint64) (bool, string) {
			if load(v.x) != 5 {
				return false, "x lost the store"
			}
			return true, ""
		}
		return []*tinylang.Thread{th}, final
	})
	res := core.New(mm.WMM).Run(p)
	if !res.Ok() {
		t.Fatalf("fig9: %v", res)
	}
}

// TestFig11DoAwaitWhile reproduces Fig. 11's encoding of
// do_awaitwhile({ r1 = y; }, x == 1): the body statement plus the
// trailing await(2, κ) — and checks AT both ways.
func TestFig11DoAwaitWhile(t *testing.T) {
	mk := func(writer bool) func(v vars) ([]*tinylang.Thread, vprog.FinalCheck) {
		return func(v vars) ([]*tinylang.Thread, vprog.FinalCheck) {
			waiter := &tinylang.Thread{
				Name: "waiter",
				Stmts: []tinylang.Stmt{
					tinylang.LoadTo("r1", v.y, vprog.Rlx),
					tinylang.LoadTo("r2", v.x, vprog.Acq),
					tinylang.Await(2, func(s tinylang.State) bool { return s.Get("r2") == 1 }),
				},
			}
			threads := []*tinylang.Thread{waiter}
			if writer {
				threads = append(threads, &tinylang.Thread{
					Name:  "writer",
					Stmts: []tinylang.Stmt{tinylang.StoreConst(v.x, vprog.Rel, 0)},
				})
			}
			return threads, nil
		}
	}
	// x initially 0: the await exits immediately; with a writer storing
	// 0 nothing changes — AT holds either way.
	res := core.New(mm.WMM).Run(buildProgram(t, "fig11", mk(true)))
	if !res.Ok() {
		t.Fatalf("fig11: %v", res)
	}

	// Now make the condition wait for a value nobody writes: AT fails.
	hang := buildProgram(t, "fig11-hang", func(v vars) ([]*tinylang.Thread, vprog.FinalCheck) {
		waiter := &tinylang.Thread{
			Name: "waiter",
			Stmts: []tinylang.Stmt{
				tinylang.LoadTo("r2", v.x, vprog.Acq),
				tinylang.Await(1, func(s tinylang.State) bool { return s.Get("r2") == 0 }),
			},
		}
		return []*tinylang.Thread{waiter}, nil
	})
	res = core.New(mm.WMM).Run(hang)
	if res.Verdict != core.ATViolation {
		t.Fatalf("fig11-hang: want AT violation, got %v", res)
	}
}

// TestFig1InTinyLang re-states the paper's Fig. 1 partial MCS hand-off
// in the formal language and confirms the §1 analysis: rel/acq on q
// gives AT; fully relaxed hangs.
func TestFig1InTinyLang(t *testing.T) {
	mk := func(wq, rq vprog.Mode) func(v vars) ([]*tinylang.Thread, vprog.FinalCheck) {
		return func(v vars) ([]*tinylang.Thread, vprog.FinalCheck) {
			locker := &tinylang.Thread{
				Name: "T1-lock",
				Stmts: []tinylang.Stmt{
					tinylang.StoreConst(v.locked, vprog.Rlx, 1),
					tinylang.StoreConst(v.q, wq, 1),
					tinylang.LoadTo("l", v.locked, vprog.Acq),
					tinylang.Await(1, func(s tinylang.State) bool { return s.Get("l") == 1 }),
				},
			}
			unlocker := &tinylang.Thread{
				Name: "T2-unlock",
				Stmts: []tinylang.Stmt{
					tinylang.LoadTo("qv", v.q, rq),
					tinylang.Await(1, func(s tinylang.State) bool { return s.Get("qv") == 0 }),
					tinylang.StoreConst(v.locked, vprog.Rlx, 0),
				},
			}
			return []*tinylang.Thread{locker, unlocker}, nil
		}
	}
	if res := core.New(mm.WMM).Run(buildProgram(t, "fig1-sync", mk(vprog.Rel, vprog.Acq))); !res.Ok() {
		t.Fatalf("fig1 rel/acq: %v", res)
	}
	res := core.New(mm.WMM).Run(buildProgram(t, "fig1-rlx", mk(vprog.Rlx, vprog.Rlx)))
	if res.Verdict != core.ATViolation {
		t.Fatalf("fig1 relaxed: want AT violation, got %v", res)
	}
	if !strings.Contains(res.Witness.Render(), "⊥") {
		t.Error("witness should show the missing rf edge")
	}
}

// TestSyntacticRestrictions: nested awaits and out-of-range jumps are
// rejected at compile time (§2.1.1).
func TestSyntacticRestrictions(t *testing.T) {
	v := &vprog.VarSet{}
	x := v.Var("x", 0)
	bad := &tinylang.Program{
		Name: "bad-jump",
		Threads: []*tinylang.Thread{{
			Name: "T0",
			Stmts: []tinylang.Stmt{
				tinylang.Await(1, func(tinylang.State) bool { return false }),
			},
		}},
	}
	if _, err := tinylang.Compile(bad); err == nil {
		t.Error("await jumping past the program start must be rejected")
	}
	nested := &tinylang.Program{
		Name: "nested",
		Threads: []*tinylang.Thread{{
			Name: "T0",
			Stmts: []tinylang.Stmt{
				tinylang.LoadTo("r", x, vprog.Rlx),
				tinylang.Await(1, func(tinylang.State) bool { return false }),
				tinylang.Await(2, func(tinylang.State) bool { return false }),
			},
		}},
	}
	if _, err := tinylang.Compile(nested); err == nil {
		t.Error("nested awaits must be rejected")
	}
}

// TestTinyLangNative: the compiled program also runs on the native
// backend (Fig. 10's unrolled-loop encoding).
func TestTinyLangNative(t *testing.T) {
	p := buildProgram(t, "fig10-unrolled", func(v vars) ([]*tinylang.Thread, vprog.FinalCheck) {
		// for (r1 = 0; r1 < 3; r1++) { x = r1; } unrolled to three
		// store/increment pairs, as Fig. 10 requires.
		var stmts []tinylang.Stmt
		for i := 0; i < 3; i++ {
			stmts = append(stmts,
				tinylang.StoreFrom(v.x, vprog.Rlx, func(s tinylang.State) uint64 { return s.Get("r1") }),
				tinylang.Step(
					func(tinylang.State) tinylang.EventSpec { return tinylang.Nop },
					func(s tinylang.State, _ uint64) tinylang.Update {
						return tinylang.Update{"r1": s.Get("r1") + 1}
					}))
		}
		th := &tinylang.Thread{Name: "T0", Stmts: stmts}
		final := func(load func(*vprog.Var) uint64) (bool, string) {
			if load(v.x) != 2 {
				return false, "final x must be the last loop value"
			}
			return true, ""
		}
		return []*tinylang.Thread{th}, final
	})
	if err := native.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	if res := core.New(mm.SC).Run(p); !res.Ok() {
		t.Fatal(res)
	}
}

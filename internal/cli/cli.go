// Package cli centralizes the flag surface the vsync command-line
// tools share. Every binary used to hand-roll its own -store, -model,
// -workers and friends, and the names, defaults and help strings had
// started to drift; these constructors are the single source of truth,
// so `vsynccheck -store X -workers 4` and `vsyncsuite -store X
// -workers 4` mean exactly the same thing.
//
// The constructors register on the default flag.CommandLine set (which
// is what every tool parses) and return the value pointer, so a main
// reads:
//
//	storePath := cli.Store()
//	workers := cli.Workers()
//	flag.Parse()
//	st := cli.OpenStore("vsynccheck", *storePath, *remote)
package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/mm"
	"repro/vsync"
)

// ExitUndecided is the exit status the tools share for "the run hit
// its budget (or was interrupted) with the answer still open, and a
// checkpoint was written" — distinct from 0 (verified), 1 (violation)
// and 2 (usage/engine error), so scripts can rerun-to-resume.
const ExitUndecided = 3

// Store registers the -store flag: the shared persistent verdict log.
func Store() *string {
	return flag.String("store", "", "persistent verdict store (shared append-only log): serve already-decided problems, append new verdicts")
}

// Remote registers the -remote flag: the optional verdict-service tier
// behind -store.
func Remote() *string {
	return flag.String("remote", "", "base URL of a vsyncstored verdict service backing -store (best-effort: unreachable degrades to local-only)")
}

// Workers registers the -workers flag: intra-run work stealing.
func Workers() *int {
	return flag.Int("workers", 1, "intra-run work-stealing workers per AMC run (0 = GOMAXPROCS, 1 = sequential)")
}

// Par registers the -par flag: whole-run fan-out.
func Par() *int {
	return flag.Int("par", 0, "concurrent AMC runs (0 = GOMAXPROCS, 1 = one at a time)")
}

// Model registers the -model flag; resolve it with ParseModel.
func Model() *string {
	return flag.String("model", "wmm", "memory model: sc, tso or wmm")
}

// MinHitRate registers the -min-hit-rate flag: the store-efficacy
// floor CI uses to assert a warm pass did near-zero AMC work.
func MinHitRate() *float64 {
	return flag.Float64("min-hit-rate", 0, "fail unless the store served at least this fraction of cells")
}

// BudgetFlags registers the -budget / -budget-graphs / -budget-mem
// triple and returns a closure assembling the vsync.Budget after
// flag.Parse. A budget hit never loses work: the run drains cleanly,
// checkpoints (with -checkpoint-dir) and exits ExitUndecided; a rerun
// resumes where it stopped.
func BudgetFlags() func() vsync.Budget {
	d := flag.Duration("budget", 0, "wall-clock budget per run segment (0 = unbounded); on exhaustion the run checkpoints and exits undecided")
	g := flag.Int64("budget-graphs", 0, "popped-graph budget per run segment (0 = unbounded)")
	m := flag.Int64("budget-mem", 0, "absolute heap budget in bytes, sampled during exploration (0 = unbounded)")
	return func() vsync.Budget {
		return vsync.Budget{MaxDuration: *d, MaxGraphs: *g, MaxMemBytes: uint64(max(*m, 0))}
	}
}

// CheckpointDir registers the -checkpoint-dir flag: the directory
// crash-safe runs persist their interrupted frontiers to (and resume
// from). The directory is created if missing.
func CheckpointDir() *string {
	return flag.String("checkpoint-dir", "", "directory for run checkpoints: budget-exhausted or interrupted runs persist their frontier here and a rerun resumes it")
}

// CheckpointInterval registers the -checkpoint-interval flag.
func CheckpointInterval() *time.Duration {
	return flag.Duration("checkpoint-interval", 0, "additionally snapshot live frontiers to -checkpoint-dir at this cadence, bounding what a crash can lose (0 = only on budget hit or interrupt)")
}

// EnsureCheckpointDir validates/creates a -checkpoint-dir value,
// exiting 2 on failure; "" passes through (checkpointing off).
func EnsureCheckpointDir(tool, dir string) string {
	if dir == "" {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(2)
	}
	return dir
}

// SignalContext returns a context canceled on the first SIGINT or
// SIGTERM — the tools' cooperative shutdown: in-flight AMC runs drain,
// checkpoint (with -checkpoint-dir) and report instead of vanishing. A
// second signal exits immediately with the conventional 130.
func SignalContext(tool string) context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		fmt.Fprintf(os.Stderr, "%s: interrupted — draining and checkpointing (send again to exit immediately)\n", tool)
		cancel()
		<-ch
		os.Exit(130)
	}()
	return ctx
}

// ParseModel resolves a -model value, exiting 2 with the uniform
// message on an unknown name.
func ParseModel(tool, name string) vsync.Model {
	m := mm.ByName(name)
	if m == nil {
		fmt.Fprintf(os.Stderr, "%s: unknown model %q (sc, tso, wmm)\n", tool, name)
		os.Exit(2)
	}
	return m
}

// Effective reports the parallel width a "0 = GOMAXPROCS" flag value
// resolves to, for banner printing.
func Effective(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// OpenStore opens the shared verdict session the -store/-remote pair
// names, printing the uniform banner; it returns nil when path is
// empty (no store requested) and exits 2 on open errors. Remote-tier
// degradation messages go to stderr prefixed with the tool name.
func OpenStore(tool, path, remote string) *vsync.VerdictStore {
	if path == "" {
		if remote != "" {
			fmt.Fprintf(os.Stderr, "%s: -remote requires -store (the remote tier backs a local log)\n", tool)
			os.Exit(2)
		}
		return nil
	}
	var opts *vsync.StoreOptions
	if remote != "" {
		opts = &vsync.StoreOptions{
			Remote: remote,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
			},
		}
	}
	st, err := vsync.OpenStoreWith(path, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(2)
	}
	s := st.Stats()
	epoch := vsync.StoreCodeEpoch()
	fmt.Printf("store: %s — %d verdicts loaded, code epoch %016x%016x", st.Path(), s.Loaded, epoch[0], epoch[1])
	if s.Stale > 0 {
		fmt.Printf(", %d records from other code epochs (not served, retained for flip-backs)", s.Stale)
	}
	if s.Corrupted > 0 {
		fmt.Printf(", %d corrupt tail bytes discarded", s.Corrupted)
	}
	if remote != "" {
		fmt.Printf(", remote tier %s", remote)
	}
	fmt.Println()
	return st
}

// Package cli centralizes the flag surface the vsync command-line
// tools share. Every binary used to hand-roll its own -store, -model,
// -workers and friends, and the names, defaults and help strings had
// started to drift; these constructors are the single source of truth,
// so `vsynccheck -store X -workers 4` and `vsyncsuite -store X
// -workers 4` mean exactly the same thing.
//
// The constructors register on the default flag.CommandLine set (which
// is what every tool parses) and return the value pointer, so a main
// reads:
//
//	storePath := cli.Store()
//	workers := cli.Workers()
//	flag.Parse()
//	st := cli.OpenStore("vsynccheck", *storePath, *remote)
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/mm"
	"repro/vsync"
)

// Store registers the -store flag: the shared persistent verdict log.
func Store() *string {
	return flag.String("store", "", "persistent verdict store (shared append-only log): serve already-decided problems, append new verdicts")
}

// Remote registers the -remote flag: the optional verdict-service tier
// behind -store.
func Remote() *string {
	return flag.String("remote", "", "base URL of a vsyncstored verdict service backing -store (best-effort: unreachable degrades to local-only)")
}

// Workers registers the -workers flag: intra-run work stealing.
func Workers() *int {
	return flag.Int("workers", 1, "intra-run work-stealing workers per AMC run (0 = GOMAXPROCS, 1 = sequential)")
}

// Par registers the -par flag: whole-run fan-out.
func Par() *int {
	return flag.Int("par", 0, "concurrent AMC runs (0 = GOMAXPROCS, 1 = one at a time)")
}

// Model registers the -model flag; resolve it with ParseModel.
func Model() *string {
	return flag.String("model", "wmm", "memory model: sc, tso or wmm")
}

// MinHitRate registers the -min-hit-rate flag: the store-efficacy
// floor CI uses to assert a warm pass did near-zero AMC work.
func MinHitRate() *float64 {
	return flag.Float64("min-hit-rate", 0, "fail unless the store served at least this fraction of cells")
}

// ParseModel resolves a -model value, exiting 2 with the uniform
// message on an unknown name.
func ParseModel(tool, name string) vsync.Model {
	m := mm.ByName(name)
	if m == nil {
		fmt.Fprintf(os.Stderr, "%s: unknown model %q (sc, tso, wmm)\n", tool, name)
		os.Exit(2)
	}
	return m
}

// Effective reports the parallel width a "0 = GOMAXPROCS" flag value
// resolves to, for banner printing.
func Effective(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// OpenStore opens the shared verdict session the -store/-remote pair
// names, printing the uniform banner; it returns nil when path is
// empty (no store requested) and exits 2 on open errors. Remote-tier
// degradation messages go to stderr prefixed with the tool name.
func OpenStore(tool, path, remote string) *vsync.VerdictStore {
	if path == "" {
		if remote != "" {
			fmt.Fprintf(os.Stderr, "%s: -remote requires -store (the remote tier backs a local log)\n", tool)
			os.Exit(2)
		}
		return nil
	}
	var opts *vsync.StoreOptions
	if remote != "" {
		opts = &vsync.StoreOptions{
			Remote: remote,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
			},
		}
	}
	st, err := vsync.OpenStoreWith(path, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(2)
	}
	s := st.Stats()
	epoch := vsync.StoreCodeEpoch()
	fmt.Printf("store: %s — %d verdicts loaded, code epoch %016x%016x", st.Path(), s.Loaded, epoch[0], epoch[1])
	if s.Stale > 0 {
		fmt.Printf(", %d records from other code epochs (not served, retained for flip-backs)", s.Stale)
	}
	if s.Corrupted > 0 {
		fmt.Printf(", %d corrupt tail bytes discarded", s.Corrupted)
	}
	if remote != "" {
		fmt.Printf(", remote tier %s", remote)
	}
	fmt.Println()
	return st
}

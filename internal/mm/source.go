package mm

import "embed"

// sourceFS carries this package's own .go sources, compiled into the
// binary so the verdict store can fold a code-identity epoch into its
// keys (internal/srcid). A model's axioms define the verdict; editing
// them must orphan every verdict computed under the old axioms.
//
//go:embed *.go
var sourceFS embed.FS

// SourceFiles exposes the embedded sources for code-identity hashing.
func SourceFiles() embed.FS { return sourceFS }

package mm_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mm"
)

// gb is a tiny builder for hand-crafted execution graphs.
type gb struct{ g *graph.Graph }

func newGB(nthreads, nlocs int) *gb {
	inits := make([]graph.Val, nlocs)
	names := make([]string, nlocs)
	return &gb{g: graph.New(nthreads, inits, names)}
}

func (b *gb) write(t int, loc graph.Loc, v graph.Val, m graph.Mode, moPos int) graph.EventID {
	e := &graph.Event{
		ID:   graph.EventID{Thread: t, Index: len(b.g.Threads[t])},
		Kind: graph.KWrite, Mode: m, Loc: loc, Val: v, AwaitSeq: -1,
	}
	b.g.Append(e)
	b.g.InsertMo(loc, e.ID, moPos)
	return e.ID
}

func (b *gb) read(t int, loc graph.Loc, m graph.Mode, from graph.EventID) graph.EventID {
	e := &graph.Event{
		ID:   graph.EventID{Thread: t, Index: len(b.g.Threads[t])},
		Kind: graph.KRead, Mode: m, Loc: loc, AwaitSeq: -1,
	}
	e.RVal = b.g.WriteVal(from)
	b.g.Append(e)
	b.g.SetRF(e.ID, graph.FromW(from))
	return e.ID
}

func (b *gb) update(t int, loc graph.Loc, newV graph.Val, m graph.Mode, from graph.EventID, moPos int) graph.EventID {
	e := &graph.Event{
		ID:   graph.EventID{Thread: t, Index: len(b.g.Threads[t])},
		Kind: graph.KUpdate, Mode: m, Loc: loc, Val: newV, AwaitSeq: -1,
	}
	e.RVal = b.g.WriteVal(from)
	b.g.Append(e)
	b.g.SetRF(e.ID, graph.FromW(from))
	b.g.InsertMo(loc, e.ID, moPos)
	return e.ID
}

func (b *gb) fence(t int, m graph.Mode) {
	e := &graph.Event{
		ID:   graph.EventID{Thread: t, Index: len(b.g.Threads[t])},
		Kind: graph.KFence, Mode: m, AwaitSeq: -1,
	}
	b.g.Append(e)
}

func init0(loc graph.Loc) graph.EventID {
	return graph.EventID{Thread: graph.InitThread, Index: int(loc)}
}

// sbGraph builds the store-buffering outcome: both threads write their
// own flag and read 0 (init) from the other's.
func sbGraph(w, r, f graph.Mode) *graph.Graph {
	b := newGB(2, 2)
	b.write(0, 0, 1, w, 1)
	if f != graph.ModeNone {
		b.fence(0, f)
	}
	b.read(0, 1, r, init0(1))
	b.write(1, 1, 1, w, 1)
	if f != graph.ModeNone {
		b.fence(1, f)
	}
	b.read(1, 0, r, init0(0))
	return b.g
}

func TestSBDirect(t *testing.T) {
	relaxed := sbGraph(graph.Rlx, graph.Rlx, graph.ModeNone)
	if mm.SC.Consistent(relaxed) {
		t.Error("SC must reject the SB outcome")
	}
	if !mm.TSO.Consistent(relaxed) {
		t.Error("TSO must accept the relaxed SB outcome")
	}
	if !mm.WMM.Consistent(relaxed) {
		t.Error("WMM must accept the relaxed SB outcome")
	}

	scAcc := sbGraph(graph.SC, graph.SC, graph.ModeNone)
	if mm.WMM.Consistent(scAcc) {
		t.Error("WMM must reject SB with SC accesses (psc)")
	}

	fenced := sbGraph(graph.Rlx, graph.Rlx, graph.SC)
	if mm.WMM.Consistent(fenced) {
		t.Error("WMM must reject SB across SC fences (psc_f)")
	}
	if mm.TSO.Consistent(fenced) {
		t.Error("TSO must reject SB across mfence")
	}
}

// mpGraph builds the message-passing stale-read outcome.
func mpGraph(w, r graph.Mode) *graph.Graph {
	b := newGB(2, 2) // loc0 = data, loc1 = flag
	b.write(0, 0, 1, graph.Rlx, 1)
	b.write(0, 1, 1, w, 1)
	fl := graph.EventID{Thread: 0, Index: 1}
	b.read(1, 1, r, fl)               // sees the flag
	b.read(1, 0, graph.Rlx, init0(0)) // but stale data
	return b.g
}

func TestMPDirect(t *testing.T) {
	if !mm.WMM.Consistent(mpGraph(graph.Rlx, graph.Rlx)) {
		t.Error("WMM must accept the relaxed MP outcome")
	}
	if mm.WMM.Consistent(mpGraph(graph.Rel, graph.Acq)) {
		t.Error("WMM must reject the MP outcome under release/acquire (sw ⊆ hb, coherence)")
	}
	if mm.TSO.Consistent(mpGraph(graph.Rlx, graph.Rlx)) {
		t.Error("TSO must reject the MP outcome")
	}
	if mm.SC.Consistent(mpGraph(graph.Rlx, graph.Rlx)) {
		t.Error("SC must reject the MP outcome")
	}
}

// TestReleaseSequenceThroughRMW: an update chained between the release
// write and the acquire read must preserve synchronization (C++20
// release sequences).
func TestReleaseSequenceThroughRMW(t *testing.T) {
	b := newGB(3, 2) // loc0 data, loc1 flag
	b.write(0, 0, 1, graph.Rlx, 1)
	rel := b.write(0, 1, 1, graph.Rel, 1)
	// T1 atomically bumps the flag (relaxed RMW reading the release).
	u := b.update(1, 1, 2, graph.Rlx, rel, 2)
	// T2 acquires via the RMW's write and reads the data stale: must be
	// inconsistent, because u is in rel's release sequence.
	b.read(2, 1, graph.Acq, u)
	b.read(2, 0, graph.Rlx, init0(0))
	if mm.WMM.Consistent(b.g) {
		t.Error("WMM must carry synchronization through the RMW release sequence")
	}
}

// TestAtomicityDirect: two updates reading from the same write violate
// atomicity on every model.
func TestAtomicityDirect(t *testing.T) {
	b := newGB(2, 1)
	u0 := b.update(0, 0, 1, graph.Rlx, init0(0), 1)
	_ = u0
	// Second update also reads init but is placed mo-last: a write
	// (u0) intervenes between its source and itself.
	b.update(1, 0, 1, graph.Rlx, init0(0), 2)
	for _, m := range mm.All() {
		if m.Consistent(b.g) {
			t.Errorf("%s must reject overlapping RMWs (atomicity)", m.Name())
		}
	}
}

// TestCoherenceCoRR: reading new-then-old from one location violates
// coherence everywhere.
func TestCoherenceCoRR(t *testing.T) {
	b := newGB(2, 1)
	w := b.write(0, 0, 1, graph.Rlx, 1)
	b.read(1, 0, graph.Rlx, w)
	b.read(1, 0, graph.Rlx, init0(0)) // older write after newer: fr;mo cycle
	for _, m := range mm.All() {
		if m.Consistent(b.g) {
			t.Errorf("%s must reject CoRR", m.Name())
		}
	}
}

// TestFenceSynchronization: release fence before a relaxed store +
// acquire fence after a relaxed load synchronize (RC11 fence sw).
func TestFenceSynchronization(t *testing.T) {
	b := newGB(2, 2)
	b.write(0, 0, 1, graph.Rlx, 1)
	b.fence(0, graph.Rel)
	flag := b.write(0, 1, 1, graph.Rlx, 1)
	b.read(1, 1, graph.Rlx, flag)
	b.fence(1, graph.Acq)
	b.read(1, 0, graph.Rlx, init0(0)) // stale data: must be forbidden
	if mm.WMM.Consistent(b.g) {
		t.Error("WMM must synchronize through rel/acq fences")
	}
}

// TestByName covers the registry.
func TestByName(t *testing.T) {
	for _, name := range []string{"sc", "tso", "wmm", "ra"} {
		if m := mm.ByName(name); m == nil || m.Name() != name {
			t.Errorf("ByName(%q) broken", name)
		}
	}
	if mm.ByName("bogus") != nil {
		t.Error("ByName must return nil for unknown models")
	}
}

// TestByNameRoundTrip: every registered model — the correctness models
// of All() and the ablation models — round-trips through its name to
// the identical instance, and names are unique across the registry.
func TestByNameRoundTrip(t *testing.T) {
	all := append(mm.All(), mm.Ablations()...)
	seen := map[string]bool{}
	for _, m := range all {
		name := m.Name()
		if seen[name] {
			t.Errorf("duplicate model name %q in the registry", name)
		}
		seen[name] = true
		if got := mm.ByName(name); got != m {
			t.Errorf("ByName(%q) = %#v, want the registered instance %#v", name, got, m)
		}
	}
	// RA is an ablation, not a correctness model: All() must not grow it
	// silently, because the corpus asserts all-model properties that RA
	// deliberately breaks (see the All doc comment).
	for _, m := range mm.All() {
		if m.Name() == "ra" {
			t.Error("ra must not be part of All(); it belongs to Ablations()")
		}
	}
	if len(mm.Ablations()) == 0 || mm.Ablations()[0] != mm.RA {
		t.Error("Ablations() must expose RA")
	}
}

// TestMonotoneRemoval: removing the last event of a thread from a
// consistent graph keeps it consistent (the pruning-soundness property
// AMC relies on).
func TestMonotoneRemoval(t *testing.T) {
	g := mpGraph(graph.Rel, graph.Acq)
	// Make it consistent first: let the data read see the data write.
	g.SetRF(graph.EventID{Thread: 1, Index: 1}, graph.FromW(graph.EventID{Thread: 0, Index: 0}))
	g.Threads[1][1].RVal = 1
	if !mm.WMM.Consistent(g) {
		t.Fatal("setup graph should be consistent")
	}
	keep := graph.NewEventSet(g.NextStamp)
	for _, id := range []graph.EventID{
		{Thread: 0, Index: 0},
		{Thread: 0, Index: 1},
		{Thread: 1, Index: 0},
	} {
		keep.Add(g.Event(id))
	}
	g.RestrictTo(keep)
	for _, m := range mm.All() {
		if !m.Consistent(g) {
			t.Errorf("%s lost consistency after event removal", m.Name())
		}
	}
}

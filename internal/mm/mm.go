// Package mm implements weak memory models as consistency predicates
// over execution graphs (the consM of the paper, §1.1).
//
// Three models are provided:
//
//   - SC: sequential consistency — a single total order refines po, rf,
//     mo and fr. The strongest model; used for the "sc-only" baseline
//     and for differential testing.
//   - TSO: x86-style total store order — stores may be delayed past
//     subsequent loads unless an SC fence or a locked RMW intervenes.
//   - WMM: an RC11-flavoured release/acquire model standing in for the
//     paper's IMM: per-location coherence, RMW atomicity,
//     release/acquire synchronization (sw ⊆ hb), SC-fence/access
//     ordering (psc), and no-thin-air (acyclic(po ∪ rf)).
//
// All models share the RMW atomicity axiom: a non-degraded update must
// read from its immediate mo-predecessor.
package mm

import "repro/internal/graph"

// Model is a weak memory model: a consistency predicate over execution
// graphs. Consistent must be monotone under event removal (a subgraph
// of a consistent graph is consistent), which every axiomatic
// (acyclicity-based) model satisfies; AMC relies on this to prune.
type Model interface {
	Name() string
	Consistent(g *graph.Graph) bool
}

// Registry of the built-in models.
var (
	SC  Model = scModel{}
	TSO Model = tsoModel{}
	WMM Model = wmmModel{}
	// RA is WMM without the SC axiom (psc) — an ablation model showing
	// which verification results depend on sequentially-consistent
	// accesses/fences: e.g. the reader-writer lock's Dekker handshake
	// verifies under WMM but not here without stronger primitives, and
	// SC-fenced store buffering becomes observable.
	RA Model = raModel{}
)

// All returns the built-in correctness models, strongest first.
//
// RA is deliberately NOT included: it is an ablation model — WMM with
// the SC axiom removed — under which algorithms that are correct on
// every real target legitimately fail (the reader-writer lock's Dekker
// handshake, SC-fenced store buffering). The test corpus iterates All()
// asserting properties that hold on every correctness model, so adding
// RA here would turn those expected ablation failures into test
// failures. Use Ablations (or ByName("ra")) to reach it explicitly.
func All() []Model { return []Model{SC, TSO, WMM} }

// Ablations returns the models that exist to show which verification
// results depend on an axiom, not to model a real target. They are
// addressable by ByName but excluded from All().
func Ablations() []Model { return []Model{RA} }

// raModel is wmmModel minus the psc axiom.
type raModel struct{}

func (raModel) Name() string { return "ra" }

func (raModel) Consistent(g *graph.Graph) bool {
	if !atomicity(g) {
		return false
	}
	r := graph.RelsOf(g)
	if !r.Hb.Irreflexive() {
		return false
	}
	if r.Hb.IntersectsTranspose(r.Eco) {
		return false
	}
	porf := r.Sb.ClonePooled()
	porf.OrWith(r.RfM)
	cyc := porf.HasCycle()
	porf.Release()
	return !cyc
}

// ByName returns the model with the given name, or nil. The ablation
// models are addressable by name but not part of All().
func ByName(name string) Model {
	for _, m := range append(All(), Ablations()...) {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// atomicity checks the shared RMW axiom: each non-degraded update reads
// from its immediate mo-predecessor (no write intervenes between the
// source and the update in mo).
func atomicity(g *graph.Graph) bool {
	for _, evs := range g.Threads {
		for _, e := range evs {
			if e.Kind != graph.KUpdate || e.Degraded {
				continue
			}
			rf := g.Rf[e.ID]
			if rf.Bottom {
				continue // blocked update: constrains nothing yet
			}
			src := g.MoIndex(e.Loc, rf.W)
			self := g.MoIndex(e.Loc, e.ID)
			if src < 0 || self < 0 || self != src+1 {
				return false
			}
		}
	}
	return true
}

// scModel: acyclic(sb ∪ rf ∪ mo ∪ fr) over all events.
type scModel struct{}

func (scModel) Name() string { return "sc" }

func (scModel) Consistent(g *graph.Graph) bool {
	if !atomicity(g) {
		return false
	}
	r := graph.RelsOf(g)
	u := r.Sb.ClonePooled()
	u.OrWith(r.RfM)
	u.OrWith(r.MoM)
	u.OrWith(r.FrM)
	cyc := u.HasCycle()
	u.Release()
	return !cyc
}

// tsoModel: per-location coherence plus a global order on ppo, external
// rf, mo and fr, where ppo relaxes store→load pairs unless separated by
// an SC fence or a locked RMW.
type tsoModel struct{}

func (tsoModel) Name() string { return "tso" }

func (tsoModel) Consistent(g *graph.Graph) bool {
	if !atomicity(g) {
		return false
	}
	r := graph.RelsOf(g)

	// Per-location coherence (sc-per-loc).
	coh := r.SbLoc.ClonePooled()
	coh.OrWith(r.RfM)
	coh.OrWith(r.MoM)
	coh.OrWith(r.FrM)
	cyc := coh.HasCycle()
	coh.Release()
	if cyc {
		return false
	}

	// Global happens-before: ppo ∪ rfe ∪ mo ∪ fr.
	ghb := graph.NewBitMatPooled(r.N)
	visible := func(e *graph.Event) bool {
		if e.Kind == graph.KError {
			return false
		}
		if e.Kind == graph.KFence {
			return e.Mode.IsSC() // only mfence-like fences order on TSO
		}
		return true
	}
	nInit := len(g.InitVals)
	for i := 0; i < nInit; i++ {
		for j := nInit; j < r.N; j++ {
			if visible(r.Ev[j]) {
				ghb.Set(i, j)
			}
		}
	}
	for _, evs := range g.Threads {
		for a := 0; a < len(evs); a++ {
			ea := evs[a]
			if !visible(ea) {
				continue
			}
			for b := a + 1; b < len(evs); b++ {
				eb := evs[b]
				if !visible(eb) {
					continue
				}
				// Store→load is relaxed unless drained in between.
				if ea.Kind == graph.KWrite && eb.Kind == graph.KRead {
					drained := false
					for k := a + 1; k < b; k++ {
						ek := evs[k]
						if (ek.Kind == graph.KFence && ek.Mode.IsSC()) || ek.Kind == graph.KUpdate {
							drained = true
							break
						}
					}
					if !drained {
						continue
					}
				}
				ghb.Set(r.IndexOf(ea.ID), r.IndexOf(eb.ID))
			}
		}
	}
	// External rf only (store forwarding lets a thread read its own
	// buffered store early).
	for rd, rf := range g.Rf {
		if rf.Bottom || rf.W.Thread == rd.Thread {
			continue
		}
		ghb.Set(r.IndexOf(rf.W), r.IndexOf(rd))
	}
	ghb.OrWith(r.MoM)
	ghb.OrWith(r.FrM)
	cyc = ghb.HasCycle()
	ghb.Release()
	return !cyc
}

// wmmModel: the RC11-flavoured stand-in for IMM.
type wmmModel struct{}

func (wmmModel) Name() string { return "wmm" }

func (wmmModel) Consistent(g *graph.Graph) bool {
	if !atomicity(g) {
		return false
	}
	r := graph.RelsOf(g)

	// COHERENCE: irreflexive(hb ; eco?).
	if !r.Hb.Irreflexive() {
		return false
	}
	if r.Hb.IntersectsTranspose(r.Eco) {
		return false
	}

	// NO-THIN-AIR: acyclic(sb ∪ rf).
	porf := r.Sb.ClonePooled()
	porf.OrWith(r.RfM)
	cyc := porf.HasCycle()
	porf.Release()
	if cyc {
		return false
	}

	// SC: acyclic(psc_base ∪ psc_f), RC11-style.
	return !pscCycle(r)
}

// pscCycle computes the RC11 partial-SC relation and reports whether it
// is cyclic. Events with SC mode and SC fences participate.
func pscCycle(r *graph.Rels) bool {
	n := r.N
	// Quick exit: fewer than two SC participants can never form a cycle.
	scCount := 0
	for i := 0; i < n; i++ {
		if r.IsSCEvent(i) {
			scCount++
		}
	}
	if scCount < 2 {
		return false
	}

	hbq := r.Hb // hb? as hb with identity handled inline (read-only here)
	// sbNeqLoc = sb \ sbloc.
	sbNeq := graph.NewBitMatPooled(n)
	defer sbNeq.Release()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Sb.Get(i, j) && !r.SbLoc.Get(i, j) {
				sbNeq.Set(i, j)
			}
		}
	}
	// hbLoc = hb ∩ same-location accesses.
	hbLoc := graph.NewBitMatPooled(n)
	defer hbLoc.Release()
	for i := 0; i < n; i++ {
		ei := r.Ev[i]
		if ei.Kind == graph.KFence || ei.Kind == graph.KError {
			continue
		}
		for j := 0; j < n; j++ {
			ej := r.Ev[j]
			if ej.Kind == graph.KFence || ej.Kind == graph.KError {
				continue
			}
			if ei.Loc == ej.Loc && r.Hb.Get(i, j) {
				hbLoc.Set(i, j)
			}
		}
	}
	// scb = sb ∪ sbNeq;hb;sbNeq ∪ hbLoc ∪ mo ∪ fr.
	scb := r.Sb.ClonePooled()
	defer scb.Release()
	mid := graph.NewBitMatPooled(n)
	defer mid.Release()
	tmp := graph.NewBitMatPooled(n)
	defer tmp.Release()
	sbNeq.ComposeInto(hbq, tmp)
	tmp.ComposeInto(sbNeq, mid)
	scb.OrWith(mid)
	scb.OrWith(hbLoc)
	scb.OrWith(r.MoM)
	scb.OrWith(r.FrM)

	isSCAccess := func(i int) bool { return r.IsSCEvent(i) && r.Ev[i].Kind != graph.KFence }
	isSCF := func(i int) bool { return r.IsSCFence(i) }

	// left(i) holds the SC anchors from which a psc_base edge can start
	// when the scb path starts at i: i itself if an SC access, and any SC
	// fence f with f hb? i.
	psc := graph.NewBitMatPooled(n)
	defer psc.Release()
	addEdges := func(from, to []int) {
		for _, a := range from {
			for _, b := range to {
				psc.Set(a, b)
			}
		}
	}
	lefts := make([][]int, n)
	rights := make([][]int, n)
	for i := 0; i < n; i++ {
		if isSCAccess(i) {
			lefts[i] = append(lefts[i], i)
			rights[i] = append(rights[i], i)
		}
		for f := 0; f < n; f++ {
			if !isSCF(f) {
				continue
			}
			if f == i || hbq.Get(f, i) {
				lefts[i] = append(lefts[i], f)
			}
			if f == i || hbq.Get(i, f) {
				rights[i] = append(rights[i], f)
			}
		}
	}
	for i := 0; i < n; i++ {
		if len(lefts[i]) == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if scb.Get(i, j) && len(rights[j]) > 0 {
				addEdges(lefts[i], rights[j])
			}
		}
	}
	// psc_f = [Fsc] ; (hb ∪ hb;eco;hb) ; [Fsc].
	hbEcoHb := graph.NewBitMatPooled(n)
	defer hbEcoHb.Release()
	r.Hb.ComposeInto(r.Eco, tmp)
	tmp.ComposeInto(r.Hb, hbEcoHb)
	for i := 0; i < n; i++ {
		if !isSCF(i) {
			continue
		}
		for j := 0; j < n; j++ {
			if !isSCF(j) || i == j {
				continue
			}
			if r.Hb.Get(i, j) || hbEcoHb.Get(i, j) {
				psc.Set(i, j)
			}
		}
	}
	return psc.HasCycle()
}

// Package mm implements weak memory models as consistency predicates
// over execution graphs (the consM of the paper, §1.1).
//
// Three models are provided:
//
//   - SC: sequential consistency — a single total order refines po, rf,
//     mo and fr. The strongest model; used for the "sc-only" baseline
//     and for differential testing.
//   - TSO: x86-style total store order — stores may be delayed past
//     subsequent loads unless an SC fence or a locked RMW intervenes.
//   - WMM: an RC11-flavoured release/acquire model standing in for the
//     paper's IMM: per-location coherence, RMW atomicity,
//     release/acquire synchronization (sw ⊆ hb), SC-fence/access
//     ordering (psc), and no-thin-air (acyclic(po ∪ rf)).
//
// All models share the RMW atomicity axiom: a non-degraded update must
// read from its immediate mo-predecessor.
//
// Every acyclicity axiom is decided closure-free: the predicates build
// union adjacency matrices and ask the acyclicity engine
// (graph.BitMat.Acyclic and friends) instead of computing transitive
// closures, seeding the checks with the topological order of
// sb ∪ rf ∪ mo that Rels carries across Extend. Two verdicts come
// straight from that cached order state: a cyclic union rejects SC
// without building anything, and a valid order proves porf (a subset)
// acyclic for free.
package mm

import (
	"sync"

	"repro/internal/graph"
)

// Model is a weak memory model: a consistency predicate over execution
// graphs. Consistent must be monotone under event removal (a subgraph
// of a consistent graph is consistent), which every axiomatic
// (acyclicity-based) model satisfies; AMC relies on this to prune.
type Model interface {
	Name() string
	Consistent(g *graph.Graph) bool
}

// Registry of the built-in models.
var (
	SC  Model = scModel{}
	TSO Model = tsoModel{}
	WMM Model = wmmModel{}
	// RA is WMM without the SC axiom (psc) — an ablation model showing
	// which verification results depend on sequentially-consistent
	// accesses/fences: e.g. the reader-writer lock's Dekker handshake
	// verifies under WMM but not here without stronger primitives, and
	// SC-fenced store buffering becomes observable.
	RA Model = raModel{}
)

// All returns the built-in correctness models, strongest first.
//
// RA is deliberately NOT included: it is an ablation model — WMM with
// the SC axiom removed — under which algorithms that are correct on
// every real target legitimately fail (the reader-writer lock's Dekker
// handshake, SC-fenced store buffering). The test corpus iterates All()
// asserting properties that hold on every correctness model, so adding
// RA here would turn those expected ablation failures into test
// failures. Use Ablations (or ByName("ra")) to reach it explicitly.
func All() []Model { return []Model{SC, TSO, WMM} }

// Ablations returns the models that exist to show which verification
// results depend on an axiom, not to model a real target. They are
// addressable by ByName but excluded from All().
func Ablations() []Model { return []Model{RA} }

// raModel is wmmModel minus the psc axiom.
type raModel struct{}

func (raModel) Name() string { return "ra" }

func (raModel) Consistent(g *graph.Graph) bool {
	if !atomicity(g) {
		return false
	}
	r := graph.RelsOf(g)
	if !r.Hb.Irreflexive() {
		return false
	}
	// Walk eco's set bits probing hb, not the other way around: the
	// predicate (some pair in one relation reversed in the other) is
	// symmetric, and eco — per-location chains — is much sparser than
	// the closed hb.
	if r.Eco.IntersectsTranspose(r.Hb) {
		return false
	}
	return porfAcyclic(r)
}

// ByName returns the model with the given name, or nil. The ablation
// models are addressable by name but not part of All().
func ByName(name string) Model {
	for _, m := range append(All(), Ablations()...) {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// atomicity checks the shared RMW axiom: each non-degraded update reads
// from its immediate mo-predecessor (no write intervenes between the
// source and the update in mo).
func atomicity(g *graph.Graph) bool {
	for _, evs := range g.Threads {
		for _, e := range evs {
			if e.Kind != graph.KUpdate || e.Degraded {
				continue
			}
			rf := g.RfOf(e.ID)
			if rf.Bottom {
				continue // blocked update: constrains nothing yet
			}
			src := g.MoIndex(e.Loc, rf.W)
			self := g.MoIndex(e.Loc, e.ID)
			if src < 0 || self < 0 || self != src+1 {
				return false
			}
		}
	}
	return true
}

// porfAcyclic decides NO-THIN-AIR: acyclic(sb ∪ rf). When the cached
// topological order of sb ∪ rf ∪ mo is valid, porf is a subset of an
// ordered acyclic relation and the answer is immediate; otherwise the
// union adjacency is built and checked closure-free.
func porfAcyclic(r *graph.Rels) bool {
	if r.TopoOK() {
		graph.CountTopoShortcut()
		if graph.CrossCheckAcyclic {
			porf := r.Sb.ClonePooled()
			porf.OrWith(r.RfM)
			if porf.HasCycle() {
				panic("mm: porf subset shortcut disagrees with the transitive closure")
			}
			porf.Release()
		}
		return true
	}
	porf := r.Sb.ClonePooled()
	porf.OrWith(r.RfM)
	ok := porf.Acyclic()
	porf.Release()
	return ok
}

// scModel: acyclic(sb ∪ rf ∪ mo ∪ fr) over all events.
type scModel struct{}

func (scModel) Name() string { return "sc" }

func (scModel) Consistent(g *graph.Graph) bool {
	if !atomicity(g) {
		return false
	}
	r := graph.RelsOf(g)
	u := r.Sb.ClonePooled()
	u.OrWith(r.RfM)
	u.OrWith(r.MoM)
	u.OrWith(r.FrM)
	// u is a superset of the cached order's union: a cyclic cached
	// state rejects without a pass, a valid order seeds (and a miss
	// refreshes) it, and on underived states the deciding Kahn pass
	// doubles as the derivation.
	ok := r.AcyclicSuperset(u)
	u.Release()
	return ok
}

// tsoModel: per-location coherence plus a global order on ppo, external
// rf, mo and fr, where ppo relaxes store→load pairs unless separated by
// an SC fence or a locked RMW.
type tsoModel struct{}

func (tsoModel) Name() string { return "tso" }

// drainPool recycles the per-thread drain-point prefix arrays of the
// TSO predicate (one int32 per event of the longest thread).
var drainPool = sync.Pool{New: func() any { return new([]int32) }}

func (tsoModel) Consistent(g *graph.Graph) bool {
	if !atomicity(g) {
		return false
	}
	r := graph.RelsOf(g)

	// Per-location coherence (sc-per-loc). Seed-only: sbloc drops sb
	// edges, so a refreshed order of this union would not be valid for
	// the cached sb ∪ rf ∪ mo order.
	coh := r.SbLoc.ClonePooled()
	coh.OrWith(r.RfM)
	coh.OrWith(r.MoM)
	coh.OrWith(r.FrM)
	ok := coh.AcyclicSeeded(r.TopoOrder())
	coh.Release()
	if !ok {
		return false
	}

	// Global happens-before: ppo ∪ rfe ∪ mo ∪ fr.
	ghb := graph.NewBitMatPooled(r.N)
	visible := func(e *graph.Event) bool {
		if e.Kind == graph.KError {
			return false
		}
		if e.Kind == graph.KFence {
			return e.Mode.IsSC() // only mfence-like fences order on TSO
		}
		return true
	}
	nInit := len(g.InitVals)
	for i := 0; i < nInit; i++ {
		for j := nInit; j < r.N; j++ {
			if visible(r.Ev[j]) {
				ghb.Set(i, j)
			}
		}
	}
	drainp := drainPool.Get().(*[]int32)
	for _, evs := range g.Threads {
		// Drain-point prefix array: drains[b] is the largest index k < b
		// holding an SC fence or a locked RMW, or -1. A store→load pair
		// (a, b) is drained iff drains[b] > a — an O(1) probe replacing
		// the old O(len) rescan of (a, b) for every relaxed pair.
		drains := int32ScratchMM(drainp, len(evs))
		last := int32(-1)
		for k, ek := range evs {
			drains[k] = last
			if (ek.Kind == graph.KFence && ek.Mode.IsSC()) || ek.Kind == graph.KUpdate {
				last = int32(k)
			}
		}
		for a := 0; a < len(evs); a++ {
			ea := evs[a]
			if !visible(ea) {
				continue
			}
			for b := a + 1; b < len(evs); b++ {
				eb := evs[b]
				if !visible(eb) {
					continue
				}
				// Store→load is relaxed unless drained in between.
				if ea.Kind == graph.KWrite && eb.Kind == graph.KRead && drains[b] <= int32(a) {
					continue
				}
				ghb.Set(r.IndexOf(ea.ID), r.IndexOf(eb.ID))
			}
		}
	}
	drainPool.Put(drainp)
	// External rf only (store forwarding lets a thread read its own
	// buffered store early).
	for t, evs := range g.Threads {
		for _, e := range evs {
			if !e.IsReadLike() {
				continue
			}
			rf := g.RfOf(e.ID)
			if rf.Bottom || rf.W.Thread == t {
				continue
			}
			ghb.Set(r.IndexOf(rf.W), r.IndexOf(e.ID))
		}
	}
	ghb.OrWith(r.MoM)
	ghb.OrWith(r.FrM)
	ok = ghb.AcyclicSeeded(r.TopoOrder())
	ghb.Release()
	return ok
}

// int32ScratchMM resizes the pooled buffer at *p to n elements
// (contents arbitrary), keeping the largest allocation for reuse.
func int32ScratchMM(p *[]int32, n int) []int32 {
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return *p
}

// wmmModel: the RC11-flavoured stand-in for IMM.
type wmmModel struct{}

func (wmmModel) Name() string { return "wmm" }

func (wmmModel) Consistent(g *graph.Graph) bool {
	if !atomicity(g) {
		return false
	}
	r := graph.RelsOf(g)

	// COHERENCE: irreflexive(hb ; eco?).
	if !r.Hb.Irreflexive() {
		return false
	}
	// Walk eco's set bits probing hb, not the other way around: the
	// predicate (some pair in one relation reversed in the other) is
	// symmetric, and eco — per-location chains — is much sparser than
	// the closed hb.
	if r.Eco.IntersectsTranspose(r.Hb) {
		return false
	}

	// NO-THIN-AIR: acyclic(sb ∪ rf).
	if !porfAcyclic(r) {
		return false
	}

	// SC: acyclic(psc_base ∪ psc_f), RC11-style.
	return pscAcyclic(r)
}

// pscAcyclic computes the RC11 partial-SC relation and reports whether
// it is ACYCLIC (note: true means the axiom holds). Events with SC
// mode and SC fences participate. All pooled scratch is released on
// every return path (deferred), and the expensive construction is
// gated twice: no scratch is allocated until at least two SC
// participants exist, and the final cycle pass is skipped when the psc
// union came out empty.
func pscAcyclic(r *graph.Rels) bool {
	n := r.N
	// Quick exit before any scratch is taken: fewer than two SC
	// participants can never form a psc cycle.
	scAcc, scF := 0, 0
	for i := 0; i < n; i++ {
		if r.IsSCFence(i) {
			scF++
		} else if r.IsSCEvent(i) {
			scAcc++
		}
	}
	if scAcc+scF < 2 {
		return true
	}

	hbq := r.Hb // hb? as hb with identity handled inline (read-only here)
	// sbNeqLoc = sb \ sbloc.
	sbNeq := graph.NewBitMatPooled(n)
	defer sbNeq.Release()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Sb.Get(i, j) && !r.SbLoc.Get(i, j) {
				sbNeq.Set(i, j)
			}
		}
	}
	// hbLoc = hb ∩ same-location accesses.
	hbLoc := graph.NewBitMatPooled(n)
	defer hbLoc.Release()
	for i := 0; i < n; i++ {
		ei := r.Ev[i]
		if ei.Kind == graph.KFence || ei.Kind == graph.KError {
			continue
		}
		for j := 0; j < n; j++ {
			ej := r.Ev[j]
			if ej.Kind == graph.KFence || ej.Kind == graph.KError {
				continue
			}
			if ei.Loc == ej.Loc && r.Hb.Get(i, j) {
				hbLoc.Set(i, j)
			}
		}
	}
	// scb = sb ∪ sbNeq;hb;sbNeq ∪ hbLoc ∪ mo ∪ fr.
	scb := r.Sb.ClonePooled()
	defer scb.Release()
	mid := graph.NewBitMatPooled(n)
	defer mid.Release()
	tmp := graph.NewBitMatPooled(n)
	defer tmp.Release()
	sbNeq.ComposeInto(hbq, tmp)
	tmp.ComposeInto(sbNeq, mid)
	scb.OrWith(mid)
	scb.OrWith(hbLoc)
	scb.OrWith(r.MoM)
	scb.OrWith(r.FrM)

	isSCAccess := func(i int) bool { return r.IsSCEvent(i) && r.Ev[i].Kind != graph.KFence }
	isSCF := func(i int) bool { return r.IsSCFence(i) }

	// left(i) holds the SC anchors from which a psc_base edge can start
	// when the scb path starts at i: i itself if an SC access, and any SC
	// fence f with f hb? i.
	psc := graph.NewBitMatPooled(n)
	defer psc.Release()
	empty := true
	addEdges := func(from, to []int) {
		for _, a := range from {
			for _, b := range to {
				psc.Set(a, b)
				empty = false
			}
		}
	}
	lefts := make([][]int, n)
	rights := make([][]int, n)
	for i := 0; i < n; i++ {
		if isSCAccess(i) {
			lefts[i] = append(lefts[i], i)
			rights[i] = append(rights[i], i)
		}
		if scF == 0 {
			continue // no SC fences: anchors are the SC accesses alone
		}
		for f := 0; f < n; f++ {
			if !isSCF(f) {
				continue
			}
			if f == i || hbq.Get(f, i) {
				lefts[i] = append(lefts[i], f)
			}
			if f == i || hbq.Get(i, f) {
				rights[i] = append(rights[i], f)
			}
		}
	}
	for i := 0; i < n; i++ {
		if len(lefts[i]) == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if scb.Get(i, j) && len(rights[j]) > 0 {
				addEdges(lefts[i], rights[j])
			}
		}
	}
	// psc_f = [Fsc] ; (hb ∪ hb;eco;hb) ; [Fsc] — needs two SC fences,
	// so the hb;eco;hb composition scratch is not even allocated below
	// that.
	if scF >= 2 {
		hbEcoHb := graph.NewBitMatPooled(n)
		defer hbEcoHb.Release()
		r.Hb.ComposeInto(r.Eco, tmp)
		tmp.ComposeInto(r.Hb, hbEcoHb)
		for i := 0; i < n; i++ {
			if !isSCF(i) {
				continue
			}
			for j := 0; j < n; j++ {
				if !isSCF(j) || i == j {
					continue
				}
				if r.Hb.Get(i, j) || hbEcoHb.Get(i, j) {
					psc.Set(i, j)
					empty = false
				}
			}
		}
	}
	if empty {
		return true // no psc edge at all: trivially acyclic
	}
	return psc.AcyclicSeeded(r.TopoOrder())
}

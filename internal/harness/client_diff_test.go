package harness_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/vprog"
)

// The refactor bar: the lock clients rebuilt as veneers over
// internal/workload must be indistinguishable from the pre-refactor
// builders at the program level — same reporting name, same candidate
// symmetry groups, and byte-identical Program.Fingerprint128, which is
// the program half of every verdict-store key. The old builders are
// inlined below verbatim (from the pre-workload client.go) as the
// oracle; any drift in the adapters shows up here before it can orphan
// the pooled verdict corpus.

// oldSymGroup is the pre-refactor harness helper, verbatim.
func oldSymGroup(alg *locks.Algorithm, lo, hi int) [][]int {
	if !alg.Symmetric || hi-lo < 2 {
		return nil
	}
	grp := make([]int, 0, hi-lo)
	for t := lo; t < hi; t++ {
		grp = append(grp, t)
	}
	return [][]int{grp}
}

// oldMutexClient is the pre-refactor MutexClient, verbatim.
func oldMutexClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, nthreads, iters int) *vprog.Program {
	return &vprog.Program{
		Name:      fmt.Sprintf("client/mutex/%s/t%d-i%d", alg.Name, nthreads, iters),
		SymGroups: oldSymGroup(alg, 0, nthreads),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			lk := alg.New(env, spec, nthreads)
			x := env.Var("cs.counter", 0)
			worker := func(m vprog.Mem) {
				for i := 0; i < iters; i++ {
					tok := lk.Acquire(m)
					v := m.Load(x, vprog.Rlx)
					m.Store(x, v+1, vprog.Rlx)
					lk.Release(m, tok)
				}
			}
			threads := make([]vprog.ThreadFunc, nthreads)
			for t := range threads {
				threads[t] = worker
			}
			want := uint64(nthreads * iters)
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if got := load(x); got != want {
					return false, fmt.Sprintf("lost update: counter = %d, want %d", got, want)
				}
				return true, ""
			}
			return threads, final
		},
	}
}

// oldRWClient is the pre-refactor RWClient, verbatim.
func oldRWClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, writers, readers, iters int) *vprog.Program {
	nthreads := writers + readers
	return &vprog.Program{
		Name:      fmt.Sprintf("client/rw/%s/w%d-r%d-i%d", alg.Name, writers, readers, iters),
		SymGroups: append(oldSymGroup(alg, 0, writers), oldSymGroup(alg, writers, nthreads)...),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			rw, ok := alg.New(env, spec, nthreads).(locks.RWLock)
			if !ok {
				panic("RWClient: algorithm " + alg.Name + " is not a reader-writer lock")
			}
			a := env.Var("rw.a", 0)
			b := env.Var("rw.b", 0)
			writer := func(m vprog.Mem) {
				for i := 0; i < iters; i++ {
					tok := rw.Acquire(m)
					va := m.Load(a, vprog.Rlx)
					m.Store(a, va+1, vprog.Rlx)
					vb := m.Load(b, vprog.Rlx)
					m.Store(b, vb+1, vprog.Rlx)
					rw.Release(m, tok)
				}
			}
			reader := func(m vprog.Mem) {
				for i := 0; i < iters; i++ {
					tok := rw.AcquireShared(m)
					va := m.Load(a, vprog.Rlx)
					vb := m.Load(b, vprog.Rlx)
					m.Assert(va == vb, fmt.Sprintf("torn read: a=%d b=%d", va, vb))
					rw.ReleaseShared(m, tok)
				}
			}
			var threads []vprog.ThreadFunc
			for i := 0; i < writers; i++ {
				threads = append(threads, writer)
			}
			for i := 0; i < readers; i++ {
				threads = append(threads, reader)
			}
			want := uint64(writers * iters)
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(a) != want || load(b) != want {
					return false, fmt.Sprintf("writer updates lost: a=%d b=%d want %d", load(a), load(b), want)
				}
				return true, ""
			}
			return threads, final
		},
	}
}

// oldRecursiveClient is the pre-refactor RecursiveClient, verbatim.
func oldRecursiveClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, nthreads int) *vprog.Program {
	return &vprog.Program{
		Name:      fmt.Sprintf("client/recursive/%s/t%d", alg.Name, nthreads),
		SymGroups: oldSymGroup(alg, 0, nthreads),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			lk := alg.New(env, spec, nthreads)
			x := env.Var("cs.counter", 0)
			worker := func(m vprog.Mem) {
				outer := lk.Acquire(m)
				inner := lk.Acquire(m)
				v := m.Load(x, vprog.Rlx)
				m.Store(x, v+1, vprog.Rlx)
				lk.Release(m, inner)
				v = m.Load(x, vprog.Rlx)
				m.Store(x, v+1, vprog.Rlx)
				lk.Release(m, outer)
			}
			threads := make([]vprog.ThreadFunc, nthreads)
			for t := range threads {
				threads[t] = worker
			}
			want := uint64(2 * nthreads)
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if got := load(x); got != want {
					return false, fmt.Sprintf("lost update: counter = %d, want %d", got, want)
				}
				return true, ""
			}
			return threads, final
		},
	}
}

// samePrograms demands bit-level identity of the store-relevant program
// facets: name, symmetry declaration and the 128-bit fingerprint.
func samePrograms(t *testing.T, oldP, newP *vprog.Program) {
	t.Helper()
	if oldP.Name != newP.Name {
		t.Errorf("name drifted: old %q, new %q", oldP.Name, newP.Name)
	}
	if !reflect.DeepEqual(oldP.SymGroups, newP.SymGroups) {
		t.Errorf("%s: symmetry groups drifted: old %v, new %v", oldP.Name, oldP.SymGroups, newP.SymGroups)
	}
	if of, nf := oldP.Fingerprint128(), newP.Fingerprint128(); of != nf {
		t.Errorf("%s: fingerprint drifted: old %v, new %v — every stored verdict for this client is orphaned",
			oldP.Name, of, nf)
	}
}

// TestWorkloadVeneerFingerprints: every lock in the registry, across
// the thread/iteration shapes the matrix and suite use, builds the
// identical program through the workload seam.
func TestWorkloadVeneerFingerprints(t *testing.T) {
	shapes := []struct{ nthreads, iters int }{{1, 1}, {2, 1}, {3, 1}, {2, 2}}
	for _, alg := range locks.All() {
		spec := alg.DefaultSpec()
		for _, s := range shapes {
			samePrograms(t,
				oldMutexClient(alg, spec, s.nthreads, s.iters),
				harness.MutexClient(alg, spec, s.nthreads, s.iters))
		}
		samePrograms(t, oldMutexClient(alg, spec, 2, 1), harness.HandoffClient(alg, spec))
	}
}

// TestWorkloadVeneerFingerprintsRW: the reader-writer shapes.
func TestWorkloadVeneerFingerprintsRW(t *testing.T) {
	alg := locks.ByName("rw")
	if alg == nil {
		t.Fatal("rw lock missing from the registry")
	}
	spec := alg.DefaultSpec()
	for _, s := range []struct{ w, r, iters int }{{1, 1, 1}, {1, 2, 1}, {2, 2, 1}, {2, 1, 2}} {
		samePrograms(t,
			oldRWClient(alg, spec, s.w, s.r, s.iters),
			harness.RWClient(alg, spec, s.w, s.r, s.iters))
	}
}

// TestWorkloadVeneerFingerprintsRecursive: the re-entrant client.
func TestWorkloadVeneerFingerprintsRecursive(t *testing.T) {
	alg := locks.ByName("recspin")
	if alg == nil {
		t.Fatal("recspin lock missing from the registry")
	}
	spec := alg.DefaultSpec()
	for n := 1; n <= 3; n++ {
		samePrograms(t,
			oldRecursiveClient(alg, spec, n),
			harness.RecursiveClient(alg, spec, n))
	}
}

package harness

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/vprog"
)

// TryClient verifies trylock semantics: nthreads threads each attempt
// one non-blocking acquisition; successful ones increment the shared
// counter inside the critical section. The final check demands that
//
//   - the counter equals the number of successes (mutual exclusion and
//     hand-off ordering among the winners), and
//   - at least one attempt succeeded (an uncontended trylock on a free
//     lock cannot fail for every thread: the modification-order-first
//     CAS observes the unlocked state).
func TryClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, nthreads int) *vprog.Program {
	return &vprog.Program{
		Name: fmt.Sprintf("client/try/%s/t%d", alg.Name, nthreads),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			lk, ok := alg.New(env, spec, nthreads).(locks.TryLock)
			if !ok {
				panic("TryClient: " + alg.Name + " does not implement TryLock")
			}
			x := env.Var("cs.counter", 0)
			got := make([]*vprog.Var, nthreads)
			for i := range got {
				got[i] = env.Var(fmt.Sprintf("try.got.%d", i), 0)
			}
			worker := func(m vprog.Mem) {
				if tok, ok := lk.TryAcquire(m); ok {
					m.Store(got[m.TID()], 1, vprog.Rlx)
					v := m.Load(x, vprog.Rlx)
					m.Store(x, v+1, vprog.Rlx)
					lk.Release(m, tok)
				}
			}
			threads := make([]vprog.ThreadFunc, nthreads)
			for t := range threads {
				threads[t] = worker
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				var wins uint64
				for _, g := range got {
					wins += load(g)
				}
				if wins == 0 {
					return false, "every trylock failed on a free lock"
				}
				if load(x) != wins {
					return false, fmt.Sprintf("counter %d != %d successful acquisitions", load(x), wins)
				}
				return true, ""
			}
			return threads, final
		},
	}
}

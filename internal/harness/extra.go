package harness

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/vprog"
)

// SeqlockClient verifies the sequence lock: writers update two
// variables atomically (keeping a == b), readers snapshot both
// optimistically and assert they never observe a torn pair. The
// read-side retry loop is an await, so AMC also proves readers
// terminate (they cannot live-lock once writers finish).
func SeqlockClient(spec *vprog.BarrierSpec, writers, readers, iters int) *vprog.Program {
	return &vprog.Program{
		Name: fmt.Sprintf("client/seqlock/w%d-r%d-i%d", writers, readers, iters),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			sl := locks.NewSeqlock(env, spec)
			a := env.Var("sl.a", 0)
			b := env.Var("sl.b", 0)
			writer := func(m vprog.Mem) {
				for i := 0; i < iters; i++ {
					sl.Write(m, func(store func(*vprog.Var, uint64)) {
						va := m.Load(a, vprog.Rlx) // own writes: relaxed read is fine under wlock
						store(a, va+1)
						store(b, va+1)
					})
				}
			}
			reader := func(m vprog.Mem) {
				for i := 0; i < iters; i++ {
					var va, vb uint64
					sl.Read(m, func(load func(*vprog.Var) uint64) {
						va = load(a)
						vb = load(b)
					})
					m.Assert(va == vb, fmt.Sprintf("torn seqlock read: a=%d b=%d", va, vb))
				}
			}
			var threads []vprog.ThreadFunc
			for i := 0; i < writers; i++ {
				threads = append(threads, writer)
			}
			for i := 0; i < readers; i++ {
				threads = append(threads, reader)
			}
			want := uint64(writers * iters)
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(a) != want || load(b) != want {
					return false, fmt.Sprintf("writer updates lost: a=%d b=%d want %d", load(a), load(b), want)
				}
				return true, ""
			}
			return threads, final
		},
	}
}

// BarrierClient verifies the sense-reversing barrier: in each phase,
// every thread publishes a phase-stamped value before the barrier and
// asserts after the barrier that it observes every peer's value for
// that phase — the visibility guarantee a barrier must provide. AMC
// additionally proves no thread hangs in the barrier.
func BarrierClient(spec *vprog.BarrierSpec, nthreads, phases int) *vprog.Program {
	return &vprog.Program{
		Name: fmt.Sprintf("client/barrier/t%d-p%d", nthreads, phases),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			bar := locks.NewCentralBarrier(env, spec, nthreads)
			slots := make([]*vprog.Var, nthreads)
			for i := range slots {
				slots[i] = env.Var(fmt.Sprintf("bar.slot.%d", i), 0)
			}
			worker := func(m vprog.Mem) {
				sense := uint64(1)
				for p := 1; p <= phases; p++ {
					m.Store(slots[m.TID()], uint64(p), vprog.Rlx)
					sense = bar.Wait(m, sense)
					for t := range slots {
						v := m.Load(slots[t], vprog.Rlx)
						m.Assert(v >= uint64(p), fmt.Sprintf(
							"phase %d: slot %d shows stale value %d", p, t, v))
					}
				}
			}
			threads := make([]vprog.ThreadFunc, nthreads)
			for t := range threads {
				threads[t] = worker
			}
			return threads, nil
		},
	}
}

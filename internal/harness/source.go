package harness

import "embed"

// sourceFS carries this package's own .go sources, compiled into the
// binary so the verdict store can fold a code-identity epoch into its
// keys (internal/srcid). Client and litmus generators shape the
// programs being verified; editing them must orphan stored verdicts.
//
//go:embed *.go
var sourceFS embed.FS

// SourceFiles exposes the embedded sources for code-identity hashing.
func SourceFiles() embed.FS { return sourceFS }

package harness

import (
	"fmt"

	"repro/internal/vprog"
)

// WRC is the write-to-read-causality litmus test:
//
//	T0: x = 1
//	T1: r0 = x; y =(w) 1        (publishes only after seeing x)
//	T2: r1 =(r) y; r2 = x
//
// The check fails iff T1 saw x=1, T2 saw y=1, yet T2 reads x=0 —
// forbidden when the chain is release/acquire (causality is
// transitive through hb), observable fully relaxed.
func WRC(w, r vprog.Mode) *vprog.Program {
	return &vprog.Program{
		Name: "litmus/WRC",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			y := env.Var("y", 0)
			seenX := env.Var("seenX", 7)
			seenY := env.Var("seenY", 7)
			xAtT2 := env.Var("xAtT2", 7)
			t0 := func(m vprog.Mem) { m.Store(x, 1, vprog.Rlx) }
			t1 := func(m vprog.Mem) {
				v := m.Load(x, r)
				m.Store(seenX, v, vprog.Rlx)
				m.Store(y, 1, w)
			}
			t2 := func(m vprog.Mem) {
				v := m.Load(y, r)
				m.Store(seenY, v, vprog.Rlx)
				m.Store(xAtT2, m.Load(x, vprog.Rlx), vprog.Rlx)
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(seenX) == 1 && load(seenY) == 1 && load(xAtT2) == 0 {
					return false, "causality chain broken (WRC)"
				}
				return true, ""
			}
			return []vprog.ThreadFunc{t0, t1, t2}, final
		},
	}
}

// ISA2 is the three-thread transitive message-passing test:
//
//	T0: x = 1; y =(w) 1
//	T1: r0 =(r) y; z =(w) 1
//	T2: r1 =(r) z; r2 = x
//
// Fails iff T1 saw y, T2 saw z, yet T2 reads x=0.
func ISA2(w, r vprog.Mode) *vprog.Program {
	return &vprog.Program{
		Name: "litmus/ISA2",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			y := env.Var("y", 0)
			z := env.Var("z", 0)
			sy := env.Var("sy", 7)
			sz := env.Var("sz", 7)
			sx := env.Var("sx", 7)
			t0 := func(m vprog.Mem) {
				m.Store(x, 1, vprog.Rlx)
				m.Store(y, 1, w)
			}
			t1 := func(m vprog.Mem) {
				m.Store(sy, m.Load(y, r), vprog.Rlx)
				m.Store(z, 1, w)
			}
			t2 := func(m vprog.Mem) {
				m.Store(sz, m.Load(z, r), vprog.Rlx)
				m.Store(sx, m.Load(x, vprog.Rlx), vprog.Rlx)
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(sy) == 1 && load(sz) == 1 && load(sx) == 0 {
					return false, "transitive message passing broken (ISA2)"
				}
				return true, ""
			}
			return []vprog.ThreadFunc{t0, t1, t2}, final
		},
	}
}

// TwoPlusTwoW is the 2+2W litmus test:
//
//	T0: x =(w) 1; y =(w) 2      T1: y =(w) 1; x =(w) 2
//
// Fails iff both locations end at value 1 (each thread's second store
// ordered mo-before the other's first). Forbidden under SC and TSO;
// RC11-style models allow it at any write strength below SC.
func TwoPlusTwoW(w vprog.Mode) *vprog.Program {
	return &vprog.Program{
		Name: "litmus/2+2W",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			y := env.Var("y", 0)
			t0 := func(m vprog.Mem) {
				m.Store(x, 1, w)
				m.Store(y, 2, w)
			}
			t1 := func(m vprog.Mem) {
				m.Store(y, 1, w)
				m.Store(x, 2, w)
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(x) == 1 && load(y) == 1 {
					return false, "both final values are the first stores (2+2W)"
				}
				return true, ""
			}
			return []vprog.ThreadFunc{t0, t1}, final
		},
	}
}

// CoWR checks write-read coherence within one thread: a thread that
// just stored must not read an older value back. Forbidden everywhere.
func CoWR() *vprog.Program {
	return &vprog.Program{
		Name: "litmus/CoWR",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			t0 := func(m vprog.Mem) {
				m.Store(x, 1, vprog.Rlx)
				v := m.Load(x, vprog.Rlx)
				m.Assert(v != 0, fmt.Sprintf("read own overwritten value %d", v))
			}
			t1 := func(m vprog.Mem) { m.Store(x, 2, vprog.Rlx) }
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
}

// Litmus names every built-in litmus program for the vsynclitmus tool,
// mapping a name to a builder at a given strength: "weak" (fully
// relaxed) or "strong" (release/acquire, SC where relevant).
func Litmus(name string, strong bool) *vprog.Program {
	w, r := vprog.Rlx, vprog.Rlx
	if strong {
		w, r = vprog.Rel, vprog.Acq
	}
	switch name {
	case "SB":
		if strong {
			return SB(vprog.SC, vprog.SC, vprog.ModeNone)
		}
		return SB(vprog.Rlx, vprog.Rlx, vprog.ModeNone)
	case "SB+fences":
		return SB(vprog.Rlx, vprog.Rlx, vprog.SC)
	case "MP":
		return MP(w, r)
	case "LB":
		return LB(r, w)
	case "CoRR":
		return CoRR()
	case "CoWR":
		return CoWR()
	case "IRIW":
		if strong {
			return IRIW(vprog.SC)
		}
		return IRIW(vprog.Acq)
	case "WRC":
		return WRC(w, r)
	case "ISA2":
		return ISA2(w, r)
	case "2+2W":
		return TwoPlusTwoW(w)
	case "FAA":
		return FAAAtomicity()
	}
	return nil
}

// LitmusNames lists the built-in litmus tests.
func LitmusNames() []string {
	return []string{"SB", "SB+fences", "MP", "LB", "CoRR", "CoWR", "IRIW", "WRC", "ISA2", "2+2W", "FAA"}
}

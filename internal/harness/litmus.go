// Package harness provides ready-made concurrent programs for the
// checker and the benchmark drivers: the classic litmus tests used to
// validate the memory models, the paper's running examples (Fig. 1 / 3),
// and generic client code for verifying synchronization primitives
// (mutexes, reader-writer locks, semaphores) — the "generic client code"
// of §1.2 under which all primitives satisfy the Bounded-Length
// principle.
package harness

import (
	"fmt"

	"repro/internal/vprog"
)

// Litmus programs are phrased so that the *interesting* (weak) outcome
// makes the final-state check fail: running the checker then answers
// reachability — Verdict SafetyViolation means "outcome observable".

// SB is the store-buffering litmus test:
//
//	T0: x = 1; r0 = y        T1: y = 1; r1 = x
//
// The check fails iff r0 == 0 && r1 == 0 (the TSO/weak outcome).
// fence is inserted between the store and the load of both threads
// (ModeNone for no fence).
func SB(w, r vprog.Mode, fence vprog.Mode) *vprog.Program {
	return &vprog.Program{
		Name: "litmus/SB",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			y := env.Var("y", 0)
			out0 := env.Var("out0", 7)
			out1 := env.Var("out1", 7)
			mk := func(a, b, out *vprog.Var) vprog.ThreadFunc {
				return func(m vprog.Mem) {
					m.Store(a, 1, w)
					m.Fence(fence)
					m.Store(out, m.Load(b, r), vprog.Rlx)
				}
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(out0) == 0 && load(out1) == 0 {
					return false, "both loads observed 0 (store buffering)"
				}
				return true, ""
			}
			return []vprog.ThreadFunc{mk(x, y, out0), mk(y, x, out1)}, final
		},
	}
}

// MP is the message-passing litmus test:
//
//	T0: x = 1; y =(w) 1      T1: r0 =(r) y; r1 = x
//
// The check fails iff r0 == 1 && r1 == 0 (the stale-data outcome,
// forbidden when w is at least release and r at least acquire).
func MP(w, r vprog.Mode) *vprog.Program {
	return &vprog.Program{
		Name: "litmus/MP",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			y := env.Var("y", 0)
			flag := env.Var("flag_seen", 0)
			data := env.Var("data_seen", 7)
			t0 := func(m vprog.Mem) {
				m.Store(x, 1, vprog.Rlx)
				m.Store(y, 1, w)
			}
			t1 := func(m vprog.Mem) {
				f := m.Load(y, r)
				d := m.Load(x, vprog.Rlx)
				m.Store(flag, f, vprog.Rlx)
				m.Store(data, d, vprog.Rlx)
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(flag) == 1 && load(data) == 0 {
					return false, "flag observed but data stale (message passing broken)"
				}
				return true, ""
			}
			return []vprog.ThreadFunc{t0, t1}, final
		},
	}
}

// CoRR is the per-location coherence test: with x initially 0 and a
// single remote write x = 1, a thread must never observe x go 1 then 0.
func CoRR() *vprog.Program {
	return &vprog.Program{
		Name: "litmus/CoRR",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			t0 := func(m vprog.Mem) { m.Store(x, 1, vprog.Rlx) }
			t1 := func(m vprog.Mem) {
				a := m.Load(x, vprog.Rlx)
				b := m.Load(x, vprog.Rlx)
				m.Assert(!(a == 1 && b == 0), "coherence violated: read 1 then 0")
			}
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
}

// LB is the load-buffering litmus test:
//
//	T0: r0 = x; y = 1        T1: r1 = y; x = 1
//
// r0 == 1 && r1 == 1 requires a po ∪ rf cycle; our WMM (like RC11, and
// unlike hardware ARMv8 without dependencies) forbids it.
func LB(r, w vprog.Mode) *vprog.Program {
	return &vprog.Program{
		Name: "litmus/LB",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			y := env.Var("y", 0)
			out0 := env.Var("out0", 7)
			out1 := env.Var("out1", 7)
			mk := func(a, b, out *vprog.Var) vprog.ThreadFunc {
				return func(m vprog.Mem) {
					v := m.Load(a, r)
					m.Store(b, 1, w)
					m.Store(out, v, vprog.Rlx)
				}
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(out0) == 1 && load(out1) == 1 {
					return false, "both loads observed 1 (load buffering)"
				}
				return true, ""
			}
			return []vprog.ThreadFunc{mk(x, y, out0), mk(y, x, out1)}, final
		},
	}
}

// IRIW is the independent-reads-of-independent-writes test: two writers
// to x and y, two readers observing them in opposite orders. The split
// observation requires non-multi-copy-atomic behaviour; it is forbidden
// with SC accesses and on TSO, allowed with acquire loads on WMM.
func IRIW(r vprog.Mode) *vprog.Program {
	return &vprog.Program{
		Name: "litmus/IRIW",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			y := env.Var("y", 0)
			outs := make([]*vprog.Var, 4)
			for i := range outs {
				outs[i] = env.Var(fmt.Sprintf("out%d", i), 7)
			}
			w := vprog.Rlx
			if r == vprog.SC {
				w = vprog.SC
			}
			t0 := func(m vprog.Mem) { m.Store(x, 1, w) }
			t1 := func(m vprog.Mem) { m.Store(y, 1, w) }
			reader := func(a, b *vprog.Var, oa, ob *vprog.Var) vprog.ThreadFunc {
				return func(m vprog.Mem) {
					va := m.Load(a, r)
					vb := m.Load(b, r)
					m.Store(oa, va, vprog.Rlx)
					m.Store(ob, vb, vprog.Rlx)
				}
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(outs[0]) == 1 && load(outs[1]) == 0 &&
					load(outs[2]) == 1 && load(outs[3]) == 0 {
					return false, "readers disagree on the order of independent writes"
				}
				return true, ""
			}
			return []vprog.ThreadFunc{t0, t1, reader(x, y, outs[0], outs[1]), reader(y, x, outs[2], outs[3])}, final
		},
	}
}

// FAAAtomicity runs two concurrent fetch-and-adds; atomicity demands
// they never both observe the initial value.
func FAAAtomicity() *vprog.Program {
	return &vprog.Program{
		Name: "litmus/FAA-atomicity",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			mk := func() vprog.ThreadFunc {
				return func(m vprog.Mem) {
					m.FetchAdd(x, 1, vprog.Rlx)
				}
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if v := load(x); v != 2 {
					return false, fmt.Sprintf("x = %d after two increments (atomicity broken)", v)
				}
				return true, ""
			}
			return []vprog.ThreadFunc{mk(), mk()}, final
		},
	}
}

// AwaitSimple is the smallest awaiting program: one thread awaits a
// flag another thread raises. Await termination holds on every model.
func AwaitSimple(w, r vprog.Mode) *vprog.Program {
	return &vprog.Program{
		Name: "litmus/await-simple",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			f := env.Var("flag", 0)
			t0 := func(m vprog.Mem) {
				m.AwaitWhile(func() bool { return m.Load(f, r) == 0 })
			}
			t1 := func(m vprog.Mem) { m.Store(f, 1, w) }
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
}

// AwaitNoWriter awaits a flag nobody ever raises: the canonical
// await-termination violation.
func AwaitNoWriter() *vprog.Program {
	return &vprog.Program{
		Name: "litmus/await-no-writer",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			f := env.Var("flag", 0)
			t0 := func(m vprog.Mem) {
				m.AwaitWhile(func() bool { return m.Load(f, vprog.Acq) == 0 })
			}
			t1 := func(m vprog.Mem) { m.Load(f, vprog.Rlx) }
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
}

// Fig1PartialMCS is the paper's Fig. 1: one path of a partial MCS lock.
// T0 (the locker) publishes itself and awaits the hand-off; T1 (the
// unlocker) awaits the publication and passes the lock. With release on
// the publication and acquire on T1's poll (relaxed == false), await
// termination holds on WMM; with everything relaxed the modification
// order may put T1's hand-off before T0's own store and T0 hangs —
// exactly execution graph (b)/Fig. 5 β of the paper.
func Fig1PartialMCS(relaxed bool) *vprog.Program {
	wq, rq := vprog.Rel, vprog.Acq
	if relaxed {
		wq, rq = vprog.Rlx, vprog.Rlx
	}
	return &vprog.Program{
		Name: "paper/fig1-partial-mcs",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			locked := env.Var("locked", 0)
			q := env.Var("q", 0)
			t0 := func(m vprog.Mem) { // lock
				m.Store(locked, 1, vprog.Rlx)
				m.Store(q, 1, wq)
				m.AwaitWhile(func() bool { return m.Load(locked, vprog.Acq) == 1 })
			}
			t1 := func(m vprog.Mem) { // unlock
				m.AwaitWhile(func() bool { return m.Load(q, rq) == 0 })
				m.Store(locked, 0, vprog.Rlx)
			}
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
}

// Fig3TTAS is the paper's Fig. 3 TTAS lock with two contending threads
// incrementing a shared counter; both loops are modelled faithfully
// (the inner await polls, the outer loop retries the exchange).
func Fig3TTAS() *vprog.Program {
	return &vprog.Program{
		Name: "paper/fig3-ttas",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			lock := env.Var("lock", 0)
			x := env.Var("x", 0)
			worker := func(m vprog.Mem) {
				for {
					m.AwaitWhile(func() bool { return m.Load(lock, vprog.Rlx) == 1 })
					if m.Xchg(lock, 1, vprog.Acq) == 0 {
						break
					}
				}
				v := m.Load(x, vprog.Rlx)
				m.Store(x, v+1, vprog.Rlx)
				m.Store(lock, 0, vprog.Rel)
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if v := load(x); v != 2 {
					return false, fmt.Sprintf("lost update: x = %d, want 2", v)
				}
				return true, ""
			}
			return []vprog.ThreadFunc{worker, worker}, final
		},
	}
}

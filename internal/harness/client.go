package harness

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/vprog"
)

// symGroup declares threads lo..hi-1 permutation-symmetric when the
// algorithm is audited symmetric and the range has at least two
// members. The declaration is only a candidate: vprog validates it
// against the built program (Program.SymSpec) and drops it if the
// structure disagrees, so a mistaken Symmetric flag degrades to an
// unreduced run rather than an unsound one.
func symGroup(alg *locks.Algorithm, lo, hi int) [][]int {
	if !alg.Symmetric || hi-lo < 2 {
		return nil
	}
	grp := make([]int, 0, hi-lo)
	for t := lo; t < hi; t++ {
		grp = append(grp, t)
	}
	return [][]int{grp}
}

// MutexClient is the paper's generic client code (§1.2): nthreads
// threads each perform iters critical sections that increment a shared
// counter with plain (relaxed) accesses; the final-state check demands
// no update was lost. Because the increment is not atomic, both mutual
// exclusion *and* the ordering of the lock hand-off are verified — this
// is the client that exposes the Huawei §3.2 bug. Await termination of
// every loop in the lock is checked as a matter of course by AMC.
func MutexClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, nthreads, iters int) *vprog.Program {
	return &vprog.Program{
		Name:      fmt.Sprintf("client/mutex/%s/t%d-i%d", alg.Name, nthreads, iters),
		SymGroups: symGroup(alg, 0, nthreads),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			lk := alg.New(env, spec, nthreads)
			x := env.Var("cs.counter", 0)
			worker := func(m vprog.Mem) {
				for i := 0; i < iters; i++ {
					tok := lk.Acquire(m)
					v := m.Load(x, vprog.Rlx)
					m.Store(x, v+1, vprog.Rlx)
					lk.Release(m, tok)
				}
			}
			threads := make([]vprog.ThreadFunc, nthreads)
			for t := range threads {
				threads[t] = worker
			}
			want := uint64(nthreads * iters)
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if got := load(x); got != want {
					return false, fmt.Sprintf("lost update: counter = %d, want %d", got, want)
				}
				return true, ""
			}
			return threads, final
		},
	}
}

// HandoffClient verifies the asymmetric scenario of the study cases
// (§3.1): thread 0 acquires, enters the critical section and releases;
// thread 1 then acquires. This is the two-thread shape under which AMC
// exhibits the DPDK hang (Alice enqueues while Bob releases).
func HandoffClient(alg *locks.Algorithm, spec *vprog.BarrierSpec) *vprog.Program {
	return MutexClient(alg, spec, 2, 1)
}

// RWClient verifies a reader-writer lock: a writer updates two
// variables atomically (under the write lock), a reader snapshots both
// under the read lock and asserts it never observes a torn pair.
func RWClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, writers, readers, iters int) *vprog.Program {
	nthreads := writers + readers
	return &vprog.Program{
		Name: fmt.Sprintf("client/rw/%s/w%d-r%d-i%d", alg.Name, writers, readers, iters),
		// Writers are interchangeable among themselves, and so are
		// readers; the two roles are distinct groups.
		SymGroups: append(symGroup(alg, 0, writers), symGroup(alg, writers, nthreads)...),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			rw, ok := alg.New(env, spec, nthreads).(locks.RWLock)
			if !ok {
				panic("RWClient: algorithm " + alg.Name + " is not a reader-writer lock")
			}
			a := env.Var("rw.a", 0)
			b := env.Var("rw.b", 0)
			writer := func(m vprog.Mem) {
				for i := 0; i < iters; i++ {
					tok := rw.Acquire(m)
					va := m.Load(a, vprog.Rlx)
					m.Store(a, va+1, vprog.Rlx)
					vb := m.Load(b, vprog.Rlx)
					m.Store(b, vb+1, vprog.Rlx)
					rw.Release(m, tok)
				}
			}
			reader := func(m vprog.Mem) {
				for i := 0; i < iters; i++ {
					tok := rw.AcquireShared(m)
					va := m.Load(a, vprog.Rlx)
					vb := m.Load(b, vprog.Rlx)
					m.Assert(va == vb, fmt.Sprintf("torn read: a=%d b=%d", va, vb))
					rw.ReleaseShared(m, tok)
				}
			}
			var threads []vprog.ThreadFunc
			for i := 0; i < writers; i++ {
				threads = append(threads, writer)
			}
			for i := 0; i < readers; i++ {
				threads = append(threads, reader)
			}
			want := uint64(writers * iters)
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if load(a) != want || load(b) != want {
					return false, fmt.Sprintf("writer updates lost: a=%d b=%d want %d", load(a), load(b), want)
				}
				return true, ""
			}
			return threads, final
		},
	}
}

// RecursiveClient verifies re-entrant acquisition: each thread acquires
// the lock twice (nested), increments, and releases in LIFO order.
func RecursiveClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, nthreads int) *vprog.Program {
	return &vprog.Program{
		Name:      fmt.Sprintf("client/recursive/%s/t%d", alg.Name, nthreads),
		SymGroups: symGroup(alg, 0, nthreads),
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			lk := alg.New(env, spec, nthreads)
			x := env.Var("cs.counter", 0)
			worker := func(m vprog.Mem) {
				outer := lk.Acquire(m)
				inner := lk.Acquire(m) // re-entry must not deadlock
				v := m.Load(x, vprog.Rlx)
				m.Store(x, v+1, vprog.Rlx)
				lk.Release(m, inner)
				v = m.Load(x, vprog.Rlx)
				m.Store(x, v+1, vprog.Rlx)
				lk.Release(m, outer)
			}
			threads := make([]vprog.ThreadFunc, nthreads)
			for t := range threads {
				threads[t] = worker
			}
			want := uint64(2 * nthreads)
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if got := load(x); got != want {
					return false, fmt.Sprintf("lost update: counter = %d, want %d", got, want)
				}
				return true, ""
			}
			return threads, final
		},
	}
}

package harness

import (
	"repro/internal/locks"
	"repro/internal/vprog"
	"repro/internal/workload"
)

// The lock clients below are thin veneers over the structure-agnostic
// workload layer (internal/workload), which carries the actual thread
// bodies, specs and candidate symmetry declarations: locks.Algorithm
// is one Workload family there, next to the nonblocking structures in
// internal/structs. The veneers exist for source compatibility and
// keep the historical program shapes bit-for-bit — same variable names
// and allocation order, same operation sequences, same final-check
// messages, same symmetry groups — so every Program.Fingerprint128
// (and with it every verdict-store key) is byte-identical to the
// pre-refactor builders. The differential test in this package pins
// that equivalence against inline copies of the old closures.

// MutexClient is the paper's generic client code (§1.2): nthreads
// threads each perform iters critical sections that increment a shared
// counter with plain (relaxed) accesses; the final-state check demands
// no update was lost. Because the increment is not atomic, both mutual
// exclusion *and* the ordering of the lock hand-off are verified — this
// is the client that exposes the Huawei §3.2 bug. Await termination of
// every loop in the lock is checked as a matter of course by AMC.
func MutexClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, nthreads, iters int) *vprog.Program {
	return workload.Program(workload.Mutex(alg, iters), spec, nthreads)
}

// HandoffClient verifies the asymmetric scenario of the study cases
// (§3.1): thread 0 acquires, enters the critical section and releases;
// thread 1 then acquires. This is the two-thread shape under which AMC
// exhibits the DPDK hang (Alice enqueues while Bob releases).
func HandoffClient(alg *locks.Algorithm, spec *vprog.BarrierSpec) *vprog.Program {
	return MutexClient(alg, spec, 2, 1)
}

// RWClient verifies a reader-writer lock: a writer updates two
// variables atomically (under the write lock), a reader snapshots both
// under the read lock and asserts it never observes a torn pair.
func RWClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, writers, readers, iters int) *vprog.Program {
	return workload.Program(workload.RW(alg, writers, readers, iters), spec, writers+readers)
}

// RecursiveClient verifies re-entrant acquisition: each thread acquires
// the lock twice (nested), increments, and releases in LIFO order.
func RecursiveClient(alg *locks.Algorithm, spec *vprog.BarrierSpec, nthreads int) *vprog.Program {
	return workload.Program(workload.Recursive(alg), spec, nthreads)
}

package harness_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// TestQspinQueuePathLitmus: the extracted queue hand-off verifies with
// the default (VSync-informed) spec, and relaxing set_prev_next
// reproduces the Linux 4.16 hang (commit 95bcade33a8a) as an
// await-termination violation.
func TestQspinQueuePathLitmus(t *testing.T) {
	alg := locks.ByName("qspin")
	res := core.New(mm.WMM).Run(harness.QspinQueuePathLitmus(alg.DefaultSpec()))
	if !res.Ok() {
		t.Fatalf("queue-path litmus with default spec: %v", res)
	}
	t.Logf("default spec: %v", res)

	buggy := alg.DefaultSpec()
	buggy.Set("qspin.set_prev_next", vprog.Rlx)
	buggy.Set("qspin.await_next", vprog.Rlx)
	res = core.New(mm.WMM).Run(harness.QspinQueuePathLitmus(buggy))
	if res.Verdict != core.ATViolation {
		t.Fatalf("relaxed prev->next must hang (the 4.16 bug), got %v", res)
	}
}

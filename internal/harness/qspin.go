package harness

import (
	"fmt"

	"repro/internal/vprog"
)

// QspinQueuePathLitmus extracts the qspinlock's MCS queue hand-off as a
// small litmus program, the way the paper's Fig. 1 extracts "one path
// of a partial MCS lock". A full client needs four contenders to build
// a two-deep queue, which is beyond tractable exploration; this litmus
// exercises exactly the same barrier points on a three-thread skeleton:
//
//	T0 — the lock owner: writes the critical section and unlocks
//	     (qspin.unlock_sub);
//	T1 — the queue head with a successor: waits for owner+pending to
//	     clear (qspin.await_owner_clear), claims the locked byte
//	     (qspin.or_locked), runs its critical section, waits for the
//	     successor to link itself (qspin.await_next) and hands the MCS
//	     baton over (qspin.handoff);
//	T2 — the successor: initializes its node (qspin.node_init_locked),
//	     links into the predecessor (qspin.set_prev_next) and spins on
//	     its node flag (qspin.await_node_locked).
//
// The final check demands all three critical-section increments; AMC
// additionally proves every await terminates. Relaxing
// qspin.set_prev_next here reproduces the Linux 4.16 hang (commit
// 95bcade33a8a) as an await-termination violation: T2's node
// initialization races with T1's hand-off.
func QspinQueuePathLitmus(spec *vprog.BarrierSpec) *vprog.Program {
	const lockedMask = 0x1ff // locked byte + pending bit
	return &vprog.Program{
		Name: "litmus/qspin-queue-path",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			val := env.Var("qspin.val", 1) // owner holds the locked byte
			next1 := env.Var("qspin.next1", 0)
			locked2 := env.Var("qspin.locked2", 0)
			x := env.Var("cs.counter", 0)

			inc := func(m vprog.Mem) {
				v := m.Load(x, vprog.Rlx)
				m.Store(x, v+1, vprog.Rlx)
			}
			t0 := func(m vprog.Mem) {
				inc(m)
				m.FetchAdd(val, ^uint64(1)+1, spec.M("qspin.unlock_sub")) // val -= LOCKED
			}
			t1 := func(m vprog.Mem) {
				m.AwaitWhile(func() bool {
					return m.Load(val, spec.M("qspin.await_owner_clear"))&lockedMask != 0
				})
				m.FetchAdd(val, 1, spec.M("qspin.or_locked"))
				inc(m)
				var nxt uint64
				m.AwaitWhile(func() bool {
					nxt = m.Load(next1, spec.M("qspin.await_next"))
					return nxt == 0
				})
				m.Store(locked2, 1, spec.M("qspin.handoff"))
			}
			t2 := func(m vprog.Mem) {
				m.Store(locked2, 0, spec.M("qspin.node_init_locked"))
				m.Store(next1, 3, spec.M("qspin.set_prev_next"))
				m.AwaitWhile(func() bool {
					return m.Load(locked2, spec.M("qspin.await_node_locked")) == 0
				})
				inc(m)
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if got := load(x); got != 3 {
					return false, fmt.Sprintf("lost update across queue hand-off: counter = %d, want 3", got)
				}
				return true, ""
			}
			return []vprog.ThreadFunc{t0, t1, t2}, final
		},
	}
}

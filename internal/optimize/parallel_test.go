package optimize_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/optimize"
	"repro/internal/vprog"
)

// suite builds the client programs used by the engine-equivalence
// tests: the 2-thread mutex client, plus the queue-path litmus for
// qspinlock so the suite has more than one program to fan out.
func suite(alg *locks.Algorithm) func(*vprog.BarrierSpec) []*vprog.Program {
	return func(spec *vprog.BarrierSpec) []*vprog.Program {
		ps := []*vprog.Program{harness.MutexClient(alg, spec, 2, 1)}
		if alg.Name == "qspin" {
			ps = append(ps, harness.QspinQueuePathLitmus(spec))
		}
		return ps
	}
}

// TestParallelDeterminism is the engine's core contract: the parallel
// speculative engine (workers, racing candidate ladders, memoization)
// must land on a final spec byte-identical to the sequential greedy
// descent, with identical mode counts — across a plain MCS lock, a
// cohort (composite) lock, and the Linux qspinlock.
func TestParallelDeterminism(t *testing.T) {
	names := []string{"mcs", "ctwamcs", "qspin"}
	if testing.Short() {
		// Keep the contract exercised in the -short/-race CI lanes but
		// only on the cheapest workload; the full sweep runs in `make
		// test`.
		names = names[:1]
	}
	for _, name := range names {
		alg := locks.ByName(name)
		initial := alg.DefaultSpec().AllSC()

		seq := &optimize.Optimizer{Model: mm.WMM, Programs: suite(alg), Parallelism: 1}
		seqRes, err := seq.Run(initial)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}

		par := &optimize.Optimizer{
			Model: mm.WMM, Programs: suite(alg),
			Parallelism: 4, Speculate: true, Cache: optimize.NewCache(),
		}
		parRes, err := par.Run(initial)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}

		if got, want := parRes.Final.Fingerprint(), seqRes.Final.Fingerprint(); got != want {
			t.Errorf("%s: parallel final spec diverges from sequential\nsequential: %s\nparallel:   %s",
				name, want, got)
		}
		if got, want := parRes.Counts(), seqRes.Counts(); got != want {
			t.Errorf("%s: mode counts diverge: parallel %+v, sequential %+v", name, got, want)
		}
		if parRes.Pool.Workers != 4 {
			t.Errorf("%s: parallel run reports %d workers, want 4", name, parRes.Pool.Workers)
		}
	}
}

// TestCacheHitCounts: a multi-pass descent revisits assignments the
// first pass already judged; the cache must catch them and the run must
// report the hits.
func TestCacheHitCounts(t *testing.T) {
	alg := locks.ByName("ttas")
	cache := optimize.NewCache()
	opt := &optimize.Optimizer{
		Model: mm.WMM, Programs: suite(alg),
		Parallelism: 1, Passes: 3, Cache: cache,
	}
	res, err := opt.Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Errorf("multi-pass run recorded no cache hits (lookups=%d)", res.CacheLookups)
	}
	if res.CacheHits != cache.Hits() {
		t.Errorf("Result.CacheHits=%d but cache counted %d", res.CacheHits, cache.Hits())
	}
	if res.CacheLookups != cache.Lookups() {
		t.Errorf("Result.CacheLookups=%d but cache counted %d", res.CacheLookups, cache.Lookups())
	}
	if cache.Len() == 0 {
		t.Error("cache stored no verdicts")
	}
}

// TestCacheAvoidsReverification: with a shared cache, re-running the
// same optimization is pure lookup — zero additional AMC runs, same
// result.
func TestCacheAvoidsReverification(t *testing.T) {
	alg := locks.ByName("ttas")
	cache := optimize.NewCache()
	mk := func() *optimize.Optimizer {
		return &optimize.Optimizer{Model: mm.WMM, Programs: suite(alg), Parallelism: 1, Cache: cache}
	}
	first, err := mk().Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	second, err := mk().Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != second.CacheLookups {
		t.Errorf("second run should be all hits: %d hits / %d lookups",
			second.CacheHits, second.CacheLookups)
	}
	if second.Final.Fingerprint() != first.Final.Fingerprint() {
		t.Error("cached re-run diverged from the original result")
	}
}

// TestOptimizerCancellation: RunCtx aborts between verifications when
// the caller's context dies.
func TestOptimizerCancellation(t *testing.T) {
	alg := locks.ByName("mcs")
	opt := &optimize.Optimizer{Model: mm.WMM, Programs: suite(alg), Parallelism: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := opt.RunCtx(ctx, alg.DefaultSpec().AllSC()); err == nil {
		t.Fatal("pre-canceled optimization must return an error")
	}
}

// TestOptimizerCancellationSpeculative: cancellation arriving
// mid-descent must surface as an error from the speculative engine
// too — not as a truncated spec reported as a finished optimization.
// The Programs hook cancels deterministically once the initial check
// is done and the first ladder begins.
func TestOptimizerCancellationSpeculative(t *testing.T) {
	alg := locks.ByName("mcs")
	ctx, cancel := context.WithCancel(context.Background())
	progs := suite(alg)
	var mu sync.Mutex
	calls := 0
	opt := &optimize.Optimizer{
		Model: mm.WMM,
		Programs: func(spec *vprog.BarrierSpec) []*vprog.Program {
			mu.Lock()
			calls++
			if calls == 2 {
				cancel()
			}
			mu.Unlock()
			return progs(spec)
		},
		Parallelism: 4, Speculate: true,
	}
	if _, err := opt.RunCtx(ctx, alg.DefaultSpec().AllSC()); err == nil {
		t.Fatal("mid-run cancellation must surface as an error")
	}
}

// TestSpeculativeSpeedup is the wall-clock claim of the parallel
// engine, asserted loosely (timing tests on shared CI hardware are
// noisy; Report carries the precise numbers): at 4 workers the
// speculative engine must beat the sequential descent on a workload
// with real per-candidate cost. Skipped below 4 hardware threads,
// where there is no parallelism to win.
func TestSpeculativeSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is slow")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup, have %d", runtime.NumCPU())
	}
	alg := locks.ByName("ctwamcs")

	seq := &optimize.Optimizer{Model: mm.WMM, Programs: suite(alg), Parallelism: 1}
	t0 := time.Now()
	seqRes, err := seq.Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	seqWall := time.Since(t0)

	par := &optimize.Optimizer{
		Model: mm.WMM, Programs: suite(alg),
		Parallelism: 4, Speculate: true, Cache: optimize.NewCache(),
	}
	t0 = time.Now()
	parRes, err := par.Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	parWall := time.Since(t0)

	t.Logf("sequential %v, parallel %v (%.2fx)\n%s",
		seqWall, parWall, float64(seqWall)/float64(parWall), parRes.Report())
	if parRes.Final.Fingerprint() != seqRes.Final.Fingerprint() {
		t.Fatal("speedup run diverged from sequential result")
	}
	// The target is >= 2x at 4 workers; assert half of that so a noisy
	// neighbor cannot flake the suite, and leave the precise ratio in
	// the log.
	if parWall > seqWall {
		t.Errorf("parallel engine slower than sequential: %v vs %v", parWall, seqWall)
	}
}

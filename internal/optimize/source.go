package optimize

import (
	"embed"

	"repro/internal/store"
)

// sourceFS carries this package's own .go sources for the verdict
// store's code epoch: cacheKey and its storeKey translation associate
// verdicts with problems, and a bug there (the name-keying bug this
// package once had is the canonical example) mis-keys records — fixing
// it must orphan everything the buggy build persisted.
//
//go:embed *.go
var sourceFS embed.FS

func init() { store.RegisterCodeSource("internal/optimize", sourceFS) }

package optimize_test

import (
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/optimize"
	"repro/internal/store"
	"repro/internal/vprog"
)

// namedProgram builds a program whose Name is fixed but whose shape
// (thread count and verdict) is not — the exact pair the name-keyed
// cache confused.
func namedProgram(name string, nthreads int, passes bool) *vprog.Program {
	return &vprog.Program{
		Name: name,
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			worker := func(m vprog.Mem) { m.FetchAdd(x, 1, vprog.SC) }
			threads := make([]vprog.ThreadFunc, nthreads)
			for t := range threads {
				threads[t] = worker
			}
			want := uint64(nthreads)
			if !passes {
				want++ // unsatisfiable: every execution fails the check
			}
			return threads, func(load func(*vprog.Var) uint64) (bool, string) {
				if got := load(x); got != want {
					return false, "count mismatch"
				}
				return true, ""
			}
		},
	}
}

// TestCacheSameNameDifferentShape is the keying-soundness regression:
// two clients sharing a program name but differing in shape must not
// reuse each other's verdicts through a shared cache. Under the old
// name-keyed cache the second optimizer's initial verification was
// served the first one's OK and the broken program "verified".
func TestCacheSameNameDifferentShape(t *testing.T) {
	cache := optimize.NewCache()
	spec := vprog.NewSpec().Def("pt", vprog.SC)

	good := &optimize.Optimizer{
		Model: mm.WMM, Parallelism: 1, Cache: cache,
		Programs: func(*vprog.BarrierSpec) []*vprog.Program {
			return []*vprog.Program{namedProgram("client/shared", 2, true)}
		},
	}
	if _, err := good.Run(spec.Clone()); err != nil {
		t.Fatalf("verifying program failed: %v", err)
	}

	bad := &optimize.Optimizer{
		Model: mm.WMM, Parallelism: 1, Cache: cache,
		Programs: func(*vprog.BarrierSpec) []*vprog.Program {
			// Same name, same model, same spec — different shape, and it
			// can never verify.
			return []*vprog.Program{namedProgram("client/shared", 3, false)}
		},
	}
	if _, err := bad.Run(spec.Clone()); err == nil {
		t.Fatal("unverifiable program passed: the cache served a same-named different-shape verdict")
	}
}

// TestCacheUndecidedAccounting: an Error-judged problem must not be
// re-counted as a miss forever — re-probes land in the undecided
// bucket, and misses stay put.
func TestCacheUndecidedAccounting(t *testing.T) {
	cache := optimize.NewCache()
	mk := func() *optimize.Optimizer {
		return &optimize.Optimizer{
			Model: mm.WMM, Parallelism: 1, Cache: cache,
			MaxGraphs: 1, // guarantees an Error verdict on any real client
			Programs: func(spec *vprog.BarrierSpec) []*vprog.Program {
				alg := locks.ByName("ttas")
				return []*vprog.Program{harness.MutexClient(alg, spec, 2, 1)}
			},
		}
	}
	if _, err := mk().Run(locks.ByName("ttas").DefaultSpec().AllSC()); err == nil {
		t.Fatal("MaxGraphs=1 run unexpectedly succeeded")
	}
	if cache.Misses() != 1 || cache.Undecided() != 0 {
		t.Fatalf("first run: %d misses / %d undecided, want 1 / 0", cache.Misses(), cache.Undecided())
	}
	if _, err := mk().Run(locks.ByName("ttas").DefaultSpec().AllSC()); err == nil {
		t.Fatal("second MaxGraphs=1 run unexpectedly succeeded")
	}
	if cache.Misses() != 1 {
		t.Errorf("re-probe of an undecidable problem counted as a miss: %d misses", cache.Misses())
	}
	if cache.Undecided() != 1 {
		t.Errorf("re-probe not classified undecided: %d", cache.Undecided())
	}
	if cache.Lookups() != cache.Hits()+cache.Misses()+cache.Undecided() {
		t.Errorf("lookup accounting does not add up: %d != %d+%d+%d",
			cache.Lookups(), cache.Hits(), cache.Misses(), cache.Undecided())
	}
}

// TestCachePersistentTier: a cache backed by the verdict store makes a
// fresh process's re-run pure lookup — the across-restart version of
// TestCacheAvoidsReverification.
func TestCachePersistentTier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	alg := locks.ByName("ttas")
	run := func(st *store.Store) *optimize.Result {
		t.Helper()
		opt := &optimize.Optimizer{
			Model: mm.WMM, Parallelism: 1, Cache: optimize.NewCacheWithStore(st),
			Programs: func(spec *vprog.BarrierSpec) []*vprog.Program {
				return []*vprog.Program{harness.MutexClient(alg, spec, 2, 1)}
			},
		}
		res, err := opt.Run(alg.DefaultSpec().AllSC())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	st1, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	first := run(st1)
	if st1.Stats().Appended == 0 {
		t.Fatal("first run appended nothing to the store")
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "New process": a fresh store handle and a fresh (empty) memory
	// cache; everything must be served by the persistent tier.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cache := optimize.NewCacheWithStore(st2)
	opt := &optimize.Optimizer{
		Model: mm.WMM, Parallelism: 1, Cache: cache,
		Programs: func(spec *vprog.BarrierSpec) []*vprog.Program {
			return []*vprog.Program{harness.MutexClient(alg, spec, 2, 1)}
		},
	}
	second, err := opt.Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != second.CacheLookups {
		t.Errorf("restarted run should be all hits: %d hits / %d lookups",
			second.CacheHits, second.CacheLookups)
	}
	if cache.PersistHits() == 0 {
		t.Error("no hits attributed to the persistent tier")
	}
	if st2.Stats().Appended != 0 {
		t.Errorf("restarted run appended %d records; corpus unchanged, want 0", st2.Stats().Appended)
	}
	if second.Final.Fingerprint() != first.Final.Fingerprint() {
		t.Error("store-backed re-run diverged from the original optimization result")
	}
}

// TestCacheStoreErr: a failed write-through must not stay silent — a
// run believed to be warming the store may persist nothing, and the
// next run silently redoes all the AMC work. The first failure is
// recorded and exposed so callers (vsyncopt) can warn.
func TestCacheStoreErr(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	// Close the store out from under the cache: every Put now fails the
	// way a full disk or revoked file would.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	cache := optimize.NewCacheWithStore(st)
	opt := &optimize.Optimizer{
		Model: mm.WMM, Parallelism: 1, Cache: cache,
		Programs: func(*vprog.BarrierSpec) []*vprog.Program {
			return []*vprog.Program{namedProgram("client/storeerr", 2, true)}
		},
	}
	if _, err := opt.Run(vprog.NewSpec().Def("pt", vprog.SC)); err != nil {
		t.Fatalf("the search itself must survive a dead store: %v", err)
	}
	if cache.StoreErr() == nil {
		t.Fatal("write-through to a closed store failed silently: StoreErr is nil")
	}
}

package optimize_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/optimize"
	"repro/internal/vprog"
)

// mutexOptimizer builds the standard optimizer for a mutex algorithm:
// candidates must verify the two-thread hand-off client.
func mutexOptimizer(alg *locks.Algorithm) *optimize.Optimizer {
	return &optimize.Optimizer{
		Model: mm.WMM,
		Programs: func(spec *vprog.BarrierSpec) []*vprog.Program {
			return []*vprog.Program{harness.MutexClient(alg, spec, 2, 1)}
		},
	}
}

// scCount sums the "expensive" modes of a spec (everything above rlx).
func strongCount(s *vprog.BarrierSpec) int {
	c := s.Counts()
	return c.Acq + c.Rel + c.AcqRel + c.SC
}

// TestOptimizeTTAS relaxes the all-SC TTAS lock; the known
// maximally-relaxed assignment is poll=rlx, xchg=acq, unlock=rel.
func TestOptimizeTTAS(t *testing.T) {
	alg := locks.ByName("ttas")
	res, err := mutexOptimizer(alg).Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]vprog.Mode{
		"ttas.poll":   vprog.Rlx,
		"ttas.xchg":   vprog.Acq,
		"ttas.unlock": vprog.Rel,
	}
	for p, m := range want {
		if got := res.Final.M(p); got != m {
			t.Errorf("%s: got %s, want %s\n%s", p, got, m, res.Report())
		}
	}
	if res.Verifications < 4 {
		t.Errorf("suspiciously few verifications: %d", res.Verifications)
	}
}

// TestOptimizeSpinAndTicket checks two more known-optimal results.
func TestOptimizeSpinAndTicket(t *testing.T) {
	spin := locks.ByName("spin")
	res, err := mutexOptimizer(spin).Run(spin.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final.M("spin.cas"); got != vprog.Acq {
		t.Errorf("spin.cas: got %s, want acq", got)
	}
	if got := res.Final.M("spin.unlock"); got != vprog.Rel {
		t.Errorf("spin.unlock: got %s, want rel", got)
	}

	tkt := locks.ByName("ticket")
	res, err = mutexOptimizer(tkt).Run(tkt.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final.M("ticket.faa"); got != vprog.Rlx {
		t.Errorf("ticket.faa: got %s, want rlx", got)
	}
	if got := res.Final.M("ticket.await"); got != vprog.Acq {
		t.Errorf("ticket.await: got %s, want acq", got)
	}
	if got := res.Final.M("ticket.unlock"); got != vprog.Rel {
		t.Errorf("ticket.unlock: got %s, want rel", got)
	}
}

// TestOptimizedSpecStillVerifies is the optimizer's soundness
// invariant: whatever it returns must verify — checked here on an
// independent, larger client than the one used during the search.
func TestOptimizedSpecStillVerifies(t *testing.T) {
	for _, name := range []string{"ttas", "mcs", "mutex"} {
		alg := locks.ByName(name)
		res, err := mutexOptimizer(alg).Run(alg.DefaultSpec().AllSC())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := harness.MutexClient(alg, res.Final, 2, 2)
		if v := core.New(mm.WMM).Run(p); !v.Ok() {
			t.Errorf("%s: optimized spec fails the 2x2 client: %v", name, v)
		}
	}
}

// TestOptimizeRejectsBuggyStart: optimization must refuse a spec that
// does not verify to begin with (no false "optimizations" of broken
// code — §3.3: "Optimizations with VSYNC are verified and hence not
// affected by such bugs").
func TestOptimizeRejectsBuggyStart(t *testing.T) {
	alg := locks.ByName("dpdkmcs-buggy")
	_, err := mutexOptimizer(alg).Run(alg.DefaultSpec())
	if err == nil {
		t.Fatal("optimizer must reject an initial spec that fails verification")
	}
}

// TestOptimizeDPDKRemovesUselessFence reproduces the §3.1 finding that
// the explicit fence at Fig. 13 line 32 "is useless and can be
// removed": optimizing the fixed DPDK lock eliminates it.
func TestOptimizeDPDKRemovesUselessFence(t *testing.T) {
	alg := locks.ByName("dpdkmcs")
	res, err := mutexOptimizer(alg).Run(alg.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final.M("dpdk.pre_await_fence"); got != vprog.ModeNone {
		t.Errorf("the useless DPDK fence should be removed, still %s\n%s", got, res.Report())
	}
}

// TestOptimizeMCS relaxes the all-SC MCS lock and sanity-checks the
// result: strictly fewer strong barriers, still verifying, and the
// hand-off points keep their required release/acquire pairing.
func TestOptimizeMCS(t *testing.T) {
	if testing.Short() {
		t.Skip("MCS optimization is slow")
	}
	alg := locks.ByName("mcs")
	initial := alg.DefaultSpec().AllSC()
	res, err := mutexOptimizer(alg).Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	if strongCount(res.Final) >= strongCount(initial) {
		t.Errorf("optimization made no progress:\n%s", res.Report())
	}
	if res.Final.M("mcs.init_locked") != vprog.Rlx {
		t.Errorf("mcs.init_locked should relax to rlx, got %s", res.Final.M("mcs.init_locked"))
	}
	t.Logf("MCS optimization:\n%s", res.Report())
}

// TestOptimizePasses: multi-pass optimization reaches a fixpoint and
// never does worse than a single pass.
func TestOptimizePasses(t *testing.T) {
	alg := locks.ByName("mcs")
	single := mutexOptimizer(alg)
	resSingle, err := single.Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	multi := mutexOptimizer(alg)
	multi.Passes = 3
	resMulti, err := multi.Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	if strongCount(resMulti.Final) > strongCount(resSingle.Final) {
		t.Errorf("multi-pass result stronger than single-pass: %d vs %d",
			strongCount(resMulti.Final), strongCount(resSingle.Final))
	}
	// The multi-pass result must itself be a fixpoint: one more pass
	// cannot relax anything (verified via verification count accounting).
	if resMulti.Verifications <= resSingle.Verifications {
		t.Errorf("multi-pass should at least re-sweep once: %d vs %d",
			resMulti.Verifications, resSingle.Verifications)
	}
}

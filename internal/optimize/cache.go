package optimize

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// cacheKey identifies one verification problem: memory model, the
// 128-bit structural hash of the candidate spec, and the program name
// (which encodes algorithm, thread count and iterations). A comparable
// struct of two words plus two strings — no fmt, no concatenation —
// so speculative ladders probing thousands of candidates stay off the
// allocator.
type cacheKey struct {
	model string
	spec  graph.Hash128
	prog  string
}

// Cache memoizes AMC verdicts across the optimization search. The key
// is (memory model, candidate-spec fingerprint, program name): the spec
// fully determines the barrier modes of the generated program and the
// program name encodes its shape (algorithm, thread count, iterations),
// so two lookups with equal keys describe the same verification
// problem. The greedy descent revisits assignments whenever it runs
// more than one pass — pass n+1 re-tries every point against a spec
// that pass n already judged for the points that settled early — and
// the speculative ladder can race the same candidate from different
// passes; the cache collapses all of those to a map lookup.
//
// Only decisive verdicts (OK, SafetyViolation, ATViolation) are stored;
// Error and Canceled runs carry no reusable information. A Cache is
// safe for concurrent use and may be shared across Optimizer runs —
// e.g. optimizing the same lock against growing client suites.
type Cache struct {
	mu      sync.Mutex
	m       map[cacheKey]core.Verdict
	hits    int
	lookups int
}

// NewCache returns an empty verdict cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]core.Verdict)}
}

// lookup returns the cached verdict for key, counting the probe.
func (c *Cache) lookup(key cacheKey) (core.Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	v, ok := c.m[key]
	if ok {
		c.hits++
	}
	return v, ok
}

// store records a decisive verdict; indecisive ones are dropped.
func (c *Cache) store(key cacheKey, v core.Verdict) {
	if v == core.Error || v == core.Canceled {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[cacheKey]core.Verdict)
	}
	c.m[key] = v
}

// Hits returns the number of successful probes so far.
func (c *Cache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Lookups returns the total number of probes so far.
func (c *Cache) Lookups() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookups
}

// Len returns the number of memoized verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

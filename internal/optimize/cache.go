package optimize

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/store"
)

// cacheKey identifies one verification problem: memory model, the
// 128-bit structural hash of the candidate spec, and the 128-bit
// structural hash of the program (vprog.Program.Fingerprint128). The
// program *name* is deliberately not part of the key: names are labels,
// and keying on them let two clients sharing a name with different
// shapes (thread count, iterations, even algorithm) silently reuse each
// other's verdicts. The key itself is a comparable struct of four words
// plus one string — no fmt, no concatenation; computing a program
// fingerprint does interpret the program once, which is why the
// optimizer memoizes fingerprints per spec (engine.fingerprints).
type cacheKey struct {
	model string
	spec  graph.Hash128
	prog  graph.Hash128
}

// storeKey converts a cacheKey to the persistent store's key shape.
func (k cacheKey) storeKey() store.Key {
	return store.Key{Model: k.model, Spec: k.spec, Prog: k.prog}
}

// probeOutcome classifies one cache probe. Distinguishing a genuine
// miss from "this problem was judged, but its verdict was indecisive
// and is not storable" keeps suite statistics honest: an Error-verdict
// problem re-probed forever would otherwise read as an endless stream
// of cache misses and under-report the cache's efficacy.
type probeOutcome uint8

const (
	probeMiss probeOutcome = iota
	probeHit
	probeUndecided
)

// Cache memoizes AMC verdicts across the optimization search. The key
// is (memory model, candidate-spec fingerprint, program fingerprint):
// the spec fully determines the barrier modes of the generated program
// and the program fingerprint pins its structure (algorithm, thread
// count, iterations), so two lookups with equal keys describe the same
// verification problem. The greedy descent revisits assignments
// whenever it runs more than one pass — pass n+1 re-tries every point
// against a spec that pass n already judged for the points that settled
// early — and the speculative ladder can race the same candidate from
// different passes; the cache collapses all of those to a map lookup.
//
// A Cache may additionally be backed by a persistent store.Store
// (NewCacheWithStore): memory misses fall through to the store, hits
// are promoted into memory, and decisive verdicts are written through —
// so a descent re-run in a fresh process pays hashing instead of model
// checking.
//
// Only decisive verdicts (OK, SafetyViolation, ATViolation) are stored;
// Error and Canceled runs carry no reusable information. Error-judged
// keys are remembered (in memory only) so their re-probes count as
// "undecided" rather than misses. A Cache is safe for concurrent use
// and may be shared across Optimizer runs — e.g. optimizing the same
// lock against growing client suites.
type Cache struct {
	mu        sync.Mutex
	m         map[cacheKey]core.Verdict
	undecided map[cacheKey]struct{}
	persist   *store.Store

	hits, misses, undecidedProbes int
	persistHits                   int
	putErr                        error
}

// NewCache returns an empty in-memory verdict cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]core.Verdict)}
}

// NewCacheWithStore returns a verdict cache backed by the persistent
// store st (nil is allowed and equivalent to NewCache). The caller
// retains ownership of st and is responsible for closing it.
func NewCacheWithStore(st *store.Store) *Cache {
	c := NewCache()
	c.persist = st
	return c
}

// lookup returns the cached verdict for key, counting the probe and
// classifying it (hit / miss / known-undecidable).
func (c *Cache) lookup(key cacheKey) (core.Verdict, probeOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[key]; ok {
		c.hits++
		return v, probeHit
	}
	if c.persist != nil {
		if v, ok := c.persist.Lookup(key.storeKey()); ok {
			if c.m == nil {
				c.m = make(map[cacheKey]core.Verdict)
			}
			c.m[key] = v // promote: later probes stay off the store's lock
			c.hits++
			c.persistHits++
			return v, probeHit
		}
	}
	if _, ok := c.undecided[key]; ok {
		c.undecidedProbes++
		return 0, probeUndecided
	}
	c.misses++
	return 0, probeMiss
}

// store records a verdict. Decisive ones land in memory and — when a
// persistent tier is attached — on disk; Error marks the key undecided
// (so re-probes are classified, not miscounted); Canceled is dropped
// entirely, it says nothing about the problem.
func (c *Cache) store(key cacheKey, name string, v core.Verdict) {
	switch v {
	case core.Canceled:
		return
	case core.Error:
		c.mu.Lock()
		if c.undecided == nil {
			c.undecided = make(map[cacheKey]struct{})
		}
		c.undecided[key] = struct{}{}
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[cacheKey]core.Verdict)
	}
	c.m[key] = v
	delete(c.undecided, key) // a decisive re-run supersedes an old Error
	persist := c.persist
	c.mu.Unlock()
	if persist != nil {
		// Write-through outside the cache lock; a conflict (see
		// store.Put) leaves the disk record authoritative-first and this
		// run's verdict memory-only. Failures don't block the search,
		// but the first one is kept (StoreErr) so callers can warn that
		// a run believed to be warming the store persisted nothing.
		if err := persist.Put(key.storeKey(), v, name); err != nil {
			c.mu.Lock()
			if c.putErr == nil {
				c.putErr = err
			}
			c.mu.Unlock()
		}
	}
}

// StoreErr returns the first persistent write-through failure (a disk
// append error or a verdict conflict), or nil if every decisive verdict
// reached the store.
func (c *Cache) StoreErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putErr
}

// Hits returns the number of probes answered (memory or store).
func (c *Cache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns the number of probes for problems never yet judged.
func (c *Cache) Misses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Undecided returns the number of probes for problems that were judged
// but produced no storable verdict (engine errors) — not hits, but not
// honest misses either.
func (c *Cache) Undecided() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.undecidedProbes
}

// PersistHits returns how many hits were served from the persistent
// tier (before promotion) rather than process memory.
func (c *Cache) PersistHits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.persistHits
}

// Lookups returns the total number of probes so far
// (hits + misses + undecided).
func (c *Cache) Lookups() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits + c.misses + c.undecidedProbes
}

// Len returns the number of memoized verdicts in process memory.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

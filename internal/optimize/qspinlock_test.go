package optimize_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/optimize"
	"repro/internal/vprog"
)

// TestQspinlockOptimize is the Table 1 experiment: push-button barrier
// optimization of the Linux qspinlock from the all-SC baseline. The
// candidate specs are verified against a two-thread client (fast-path +
// pending path) and a three-thread client (MCS queue path), mirroring
// the paper's generic client code. The expected outcome is the shape of
// Table 1's VSYNC row: a handful of acquire points, a couple of release
// points, about one SC point, everything else relaxed.
func TestQspinlockOptimize(t *testing.T) {
	if testing.Short() {
		t.Skip("qspinlock optimization explores the 3-thread queue path (minutes)")
	}
	alg := locks.ByName("qspin")
	opt := &optimize.Optimizer{
		Model: mm.WMM,
		Programs: func(spec *vprog.BarrierSpec) []*vprog.Program {
			return []*vprog.Program{
				harness.MutexClient(alg, spec, 2, 1), // fast + pending path (cheap filter)
				harness.QspinQueuePathLitmus(spec),   // MCS hand-off between two waiters
				harness.MutexClient(alg, spec, 3, 1), // queue path end to end
			}
		},
	}
	res, err := opt.Run(alg.DefaultSpec().AllSC())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("qspinlock optimization (paper: 11 minutes, 7 acq / 2 rel / 1 sc):\n%s", res.Report())

	c := res.Counts()
	if c.SC == len(res.Final.Points()) {
		t.Fatal("optimizer failed to relax anything")
	}
	// Shape assertions, not exact equality: the paper itself notes that
	// multiple maximally-relaxed assignments exist and that model choice
	// (LKMM vs IMM vs our WMM) shifts individual points.
	if c.Rlx < 4 {
		t.Errorf("expected several relaxed points, got %d", c.Rlx)
	}
	if c.SC > 3 {
		t.Errorf("expected at most a few SC points, got %d", c.SC)
	}
	// The hand-off pairing must survive: a release-side mode on the MCS
	// hand-off write and an acquire-side mode on the queue wait.
	if m := res.Final.M("qspin.handoff"); !m.HasRel() {
		t.Errorf("qspin.handoff lost release semantics: %s", m)
	}
	if m := res.Final.M("qspin.await_node_locked"); !m.HasAcq() {
		t.Errorf("qspin.await_node_locked lost acquire semantics: %s", m)
	}
	if m := res.Final.M("qspin.unlock_sub"); !m.HasRel() {
		t.Errorf("qspin.unlock_sub lost release semantics: %s", m)
	}
}

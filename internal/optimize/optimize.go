// Package optimize implements VSync's push-button barrier optimization
// (§3.3): starting from a verified barrier assignment (typically the
// all-SC baseline), it relaxes each barrier point to the weakest mode
// under which the client programs still verify — safety, mutual
// exclusion and await termination all checked by AMC on every
// candidate. Standalone fences may be eliminated entirely (ModeNone),
// reproducing the paper's finding that e.g. the DPDK fence at Fig. 13
// line 32 is useless.
//
// The search is the greedy per-point descent used in practice: for each
// point, in registration order, try the candidate modes from weakest to
// strongest and keep the weakest verified one. The paper notes that
// multiple maximally-relaxed combinations exist; the greedy result is
// one of them.
//
// The independent AMC runs of the search are embarrassingly parallel,
// and the engine exploits that on three axes without changing the
// result: the client programs of one candidate spec fan out across a
// core.Pool (a failing program cancels its siblings); in
// speculative-ladder mode the candidate modes of one point race each
// other, the weakest verified one winning — exactly the mode the
// sequential descent would have accepted; and with WorkersPerRun > 1
// the runs and the ladder share one scheduler — idle pool slots are
// borrowed for intra-run work stealing inside whichever exploration is
// still going, instead of nesting a second pool under the first. A
// Cache memoizes verdicts so multi-pass descents never re-verify an
// assignment already judged.
package optimize

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// Step records one attempted relaxation. Speculative-ladder runs also
// record the overshoot: candidates stronger than the accepted one that
// the sequential descent would never have tried; those appear with
// Verdict Canceled when the short-circuit stopped them early.
type Step struct {
	Point    string
	Tried    vprog.Mode
	Accepted bool
	Verdict  core.Verdict
	Duration time.Duration
}

// Result is the outcome of an optimization run.
type Result struct {
	// Initial and Final are the starting and optimized specs.
	Initial, Final *vprog.BarrierSpec
	// Steps lists every attempted relaxation in order.
	Steps []Step
	// Verifications counts spec-level verification attempts, including
	// the initial check and any speculative attempts the ladder launched
	// beyond the greedy minimum.
	Verifications int
	// CacheHits and CacheLookups count memo-cache probes made during
	// this run (zero when the optimizer has no Cache). CacheUndecided
	// counts probes of problems judged before but without a storable
	// verdict (engine errors) — neither hits nor honest misses;
	// CacheLookups includes them.
	CacheHits, CacheLookups, CacheUndecided int
	// Workers is the AMC concurrency the run used (1 = sequential).
	Workers int
	// Pool is the worker-pool accounting: per-worker busy time and job
	// counts, and how many runs the fail-fast short-circuit canceled.
	// Zero-valued for sequential runs.
	Pool core.PoolStats
	// Duration is the total wall time — the paper's Table 1 "Time"
	// column (11 minutes for qspinlock on their setup).
	Duration time.Duration
}

// Counts returns the mode tally of the optimized spec (Table 1 shape).
func (r *Result) Counts() vprog.ModeCounts { return r.Final.Counts() }

// Changed renders the accepted relaxations, Fig. 20 style.
func (r *Result) Changed() string { return r.Initial.Diff(r.Final) }

// Optimizer drives the relaxation search.
type Optimizer struct {
	// Model is the memory model to verify against (the paper uses IMM;
	// we use its WMM stand-in by default).
	Model mm.Model
	// Programs builds the client programs that must verify for a spec to
	// be accepted (typically MutexClient instances of varying shapes).
	// It must be safe for concurrent invocation: the parallel engine
	// builds several candidates' program suites at once.
	Programs func(spec *vprog.BarrierSpec) []*vprog.Program
	// MaxGraphs bounds each AMC run (0 = checker default).
	MaxGraphs int
	// Passes caps the number of full point sweeps (0 or 1 = single
	// pass). Because the greedy descent is order-dependent, a point
	// rejected early can become relaxable after later points settle;
	// additional passes run until a fixpoint or the cap.
	Passes int
	// Parallelism bounds the number of concurrent AMC runs: 0 selects
	// GOMAXPROCS, 1 forces the strictly sequential engine. The final
	// spec is identical either way.
	Parallelism int
	// WorkersPerRun, when > 1, lets every AMC run of the search share
	// its exploration frontier through the pool's unified scheduler:
	// idle pool slots — e.g. at the tail of a speculative ladder when
	// only the slowest candidate is still verifying — are borrowed for
	// intra-run work stealing instead of sitting dead. Verdicts (and
	// therefore the final spec) are identical at any value; only the
	// wall-clock shape of the search changes.
	WorkersPerRun int
	// Speculate races each point's candidate ladder concurrently
	// (weakest→strongest launched together, weakest verified accepted)
	// instead of trying candidates one at a time. Requires
	// Parallelism != 1 to have any effect. Speculation can launch
	// verifications the sequential descent would have skipped — wall
	// clock improves, total CPU may not.
	Speculate bool
	// Cache, when non-nil, memoizes verdicts by (model, spec
	// fingerprint, program fingerprint) so repeated assignments —
	// multi-pass sweeps, shared caches across runs, store-backed caches
	// across processes — are never re-verified.
	Cache *Cache
}

// rank orders modes for descent; equal-rank modes (Acq/Rel) are both
// tried.
func rank(m vprog.Mode) int {
	switch m {
	case vprog.ModeNone:
		return 0
	case vprog.Rlx:
		return 1
	case vprog.Acq, vprog.Rel:
		return 2
	case vprog.AcqRel:
		return 3
	default:
		return 4
	}
}

// candidates returns the modes to try for a point, weakest first,
// strictly weaker than the current mode.
func candidates(spec *vprog.BarrierSpec, point string) []vprog.Mode {
	cur := spec.M(point)
	var order []vprog.Mode
	if spec.IsFence(point) {
		order = []vprog.Mode{vprog.ModeNone, vprog.Rlx, vprog.Acq, vprog.Rel, vprog.AcqRel}
	} else {
		order = []vprog.Mode{vprog.Rlx, vprog.Acq, vprog.Rel, vprog.AcqRel}
	}
	var out []vprog.Mode
	for _, m := range order {
		if rank(m) < rank(cur) {
			out = append(out, m)
		}
	}
	return out
}

// engine carries the mutable state of one optimization run.
type engine struct {
	o     *Optimizer
	pool  *core.Pool // nil: strictly sequential
	cache *Cache     // nil: memoization disabled
	res   *Result

	mu sync.Mutex // guards the res cache counters (probed concurrently)

	// fpMemo caches the per-program structural fingerprints of a
	// candidate's suite, keyed by the spec fingerprint: Programs(spec) is
	// deterministic, so multi-pass sweeps and ladder re-probes of an
	// already-judged spec skip re-interpreting the programs and pay only
	// a map lookup — keeping cache hits nearly as cheap as the old
	// (unsound) name keys.
	fpMu   sync.Mutex
	fpMemo map[graph.Hash128][]graph.Hash128
}

// fingerprints returns the structural fingerprints of progs, memoized
// per spec fingerprint. The computation runs outside the lock so
// concurrent ladder candidates don't serialize; a duplicated racing
// computation is deterministic and harmless.
func (e *engine) fingerprints(specFP graph.Hash128, progs []*vprog.Program) []graph.Hash128 {
	e.fpMu.Lock()
	fps, ok := e.fpMemo[specFP]
	e.fpMu.Unlock()
	if ok && len(fps) == len(progs) {
		return fps
	}
	fps = make([]graph.Hash128, len(progs))
	for i, p := range progs {
		fps[i] = p.Fingerprint128()
	}
	e.fpMu.Lock()
	if e.fpMemo == nil {
		e.fpMemo = make(map[graph.Hash128][]graph.Hash128)
	}
	e.fpMemo[specFP] = fps
	e.fpMu.Unlock()
	return fps
}

func (e *engine) countProbe(outcome probeOutcome) {
	e.mu.Lock()
	e.res.CacheLookups++
	switch outcome {
	case probeHit:
		e.res.CacheHits++
	case probeUndecided:
		e.res.CacheUndecided++
	}
	e.mu.Unlock()
}

// checker builds a fresh Checker for one job; checkers are mutable and
// must not be shared across concurrent runs.
func (e *engine) checker() *core.Checker {
	c := core.New(e.o.Model)
	if e.o.MaxGraphs > 0 {
		c.MaxGraphs = e.o.MaxGraphs
	}
	c.WorkersPerRun = e.o.WorkersPerRun
	return c
}

// verify runs AMC on every client program of spec; it returns OK only
// if all verify, otherwise a decisive failure verdict — or Canceled
// when ctx was canceled first (the speculative ladder pruning a
// candidate that can no longer win). Decisive per-program verdicts are
// memoized; cached failures decide without any AMC run.
func (e *engine) verify(ctx context.Context, spec *vprog.BarrierSpec) (core.Verdict, error) {
	progs := e.o.Programs(spec)
	var key cacheKey
	var progFPs []graph.Hash128
	if e.cache != nil {
		specFP := spec.Fingerprint128()
		key = cacheKey{model: e.o.Model.Name(), spec: specFP}
		progFPs = e.fingerprints(specFP, progs)
	}
	var jobs []core.Job
	var names []string
	var keys []cacheKey
	for pi, p := range progs {
		if e.cache != nil {
			key.prog = progFPs[pi]
			v, outcome := e.cache.lookup(key)
			e.countProbe(outcome)
			if outcome == probeHit {
				if v != core.OK {
					return v, nil
				}
				continue // already known to verify
			}
			keys = append(keys, key)
		}
		jobs = append(jobs, core.Job{Checker: e.checker(), Program: p})
		names = append(names, p.Name)
	}
	if len(jobs) == 0 {
		return core.OK, nil
	}

	if e.pool == nil {
		for i, j := range jobs {
			res := j.Checker.RunCtx(ctx, j.Program)
			if res.Verdict == core.Canceled {
				return core.Canceled, nil
			}
			if res.Verdict == core.Error {
				if e.cache != nil {
					e.cache.store(keys[i], names[i], res.Verdict)
				}
				return core.Error, fmt.Errorf("optimizer: checking %s: %w", names[i], res.Err)
			}
			if e.cache != nil {
				e.cache.store(keys[i], names[i], res.Verdict)
			}
			if res.Verdict != core.OK {
				return res.Verdict, nil
			}
		}
		return core.OK, nil
	}

	verdict, failed, results := e.pool.VerifyAll(ctx, jobs)
	if e.cache != nil {
		for i, r := range results {
			e.cache.store(keys[i], names[i], r.Verdict) // drops indecisive verdicts
		}
	}
	if verdict == core.Error {
		return core.Error, fmt.Errorf("optimizer: checking %s: %w", names[failed], results[failed].Err)
	}
	return verdict, nil
}

// ladder speculatively races every candidate mode of one point and
// returns the index of the accepted candidate (-1: none verified).
// The accepted index is the lowest one whose suite verified — the same
// mode the sequential weakest-first sweep accepts — and once some
// candidate verifies, every stronger candidate still in flight is
// canceled, since it can no longer be chosen.
func (e *engine) ladder(ctx context.Context, spec *vprog.BarrierSpec, point string, cands []vprog.Mode) (int, error) {
	parent, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	cctx := make([]context.Context, len(cands))
	cancel := make([]context.CancelFunc, len(cands))
	for i := range cands {
		cctx[i], cancel[i] = context.WithCancel(parent)
	}

	type outcome struct {
		verdict core.Verdict
		err     error
		dur     time.Duration
	}
	outcomes := make([]outcome, len(cands))
	best := len(cands)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, cand := range cands {
		wg.Add(1)
		go func(i int, cand vprog.Mode) {
			defer wg.Done()
			s := spec.Clone()
			s.Set(point, cand)
			t0 := time.Now()
			v, err := e.verify(cctx[i], s)
			outcomes[i] = outcome{verdict: v, err: err, dur: time.Since(t0)}
			if v == core.OK {
				mu.Lock()
				if i < best {
					best = i
					for j := i + 1; j < len(cands); j++ {
						cancel[j]()
					}
				}
				mu.Unlock()
			}
		}(i, cand)
	}
	wg.Wait()

	accepted := -1
	if best < len(cands) {
		accepted = best
	}
	// The sequential descent would have evaluated candidates 0..accepted
	// in order; an Error among those aborts the run exactly as it would
	// have there. Candidates beyond the accepted one are speculative
	// overshoot — recorded for the report, never fatal.
	for i, oc := range outcomes {
		if oc.err != nil && (accepted < 0 || i <= accepted) {
			return -1, oc.err
		}
		e.res.Steps = append(e.res.Steps, Step{
			Point: point, Tried: cands[i], Accepted: i == accepted,
			Verdict: oc.verdict, Duration: oc.dur,
		})
		e.res.Verifications++
	}
	return accepted, nil
}

// Run optimizes the spec. The initial spec must verify; Run then
// relaxes point by point and returns the final verified assignment.
func (o *Optimizer) Run(initial *vprog.BarrierSpec) (*Result, error) {
	return o.RunCtx(context.Background(), initial)
}

// RunCtx is Run with cooperative cancellation.
func (o *Optimizer) RunCtx(ctx context.Context, initial *vprog.BarrierSpec) (*Result, error) {
	start := time.Now()
	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &engine{o: o, cache: o.Cache, res: &Result{Initial: initial.Clone(), Workers: workers}}
	if workers > 1 {
		e.pool = core.NewPool(workers)
	}
	spec := initial.Clone()

	v, err := e.verify(ctx, spec)
	e.res.Verifications++
	if err != nil {
		return nil, err
	}
	if v == core.Canceled {
		return nil, ctx.Err()
	}
	if v != core.OK {
		return nil, fmt.Errorf("optimizer: initial spec does not verify (%v); fix the algorithm first", v)
	}

	passes := o.Passes
	if passes < 1 {
		passes = 1
	}
	for pass := 0; pass < passes; pass++ {
		changed := false
		for _, point := range spec.Points() {
			cands := candidates(spec, point)
			if len(cands) == 0 {
				continue
			}
			if e.pool != nil && o.Speculate && len(cands) > 1 {
				accepted, err := e.ladder(ctx, spec, point, cands)
				if err != nil {
					return nil, err
				}
				if ctx.Err() != nil {
					// A dead caller context makes every ladder outcome
					// Canceled; without this check the descent would
					// "finish" with a truncated, under-relaxed spec.
					return nil, ctx.Err()
				}
				if accepted >= 0 {
					spec.Set(point, cands[accepted])
					changed = true
				}
				continue
			}
			orig := spec.M(point)
			for _, cand := range cands {
				spec.Set(point, cand)
				t0 := time.Now()
				verdict, err := e.verify(ctx, spec)
				e.res.Verifications++
				if err != nil {
					return nil, err
				}
				if verdict == core.Canceled {
					return nil, ctx.Err()
				}
				accepted := verdict == core.OK
				e.res.Steps = append(e.res.Steps, Step{
					Point: point, Tried: cand, Accepted: accepted,
					Verdict: verdict, Duration: time.Since(t0),
				})
				if accepted {
					orig = cand
					changed = true
					break // weakest verified mode found for this point
				}
				spec.Set(point, orig) // roll back and try the next stronger mode
			}
		}
		if !changed {
			break // fixpoint
		}
	}
	e.res.Final = spec
	e.res.Duration = time.Since(start)
	if e.pool != nil {
		e.res.Pool = e.pool.Stats()
	}
	return e.res, nil
}

// Report renders the optimization in the shape of Fig. 20: one line per
// point, with the accepted relaxation marked, followed by the mode
// tally and — for parallel/cached runs — the engine accounting: cache
// effectiveness and the per-worker timing breakdown.
func (r *Result) Report() string {
	out := ""
	for _, p := range r.Initial.Points() {
		from, to := r.Initial.M(p), r.Final.M(p)
		if from == to {
			out += fmt.Sprintf("%-40s %s\n", p, from)
			continue
		}
		suffix := ""
		if to == vprog.ModeNone {
			suffix = " (fence removed)"
		}
		out += fmt.Sprintf("%-40s %s --> %s%s\n", p, from, to, suffix)
	}
	c := r.Final.Counts()
	out += fmt.Sprintf("modes: rlx=%d acq=%d rel=%d acqrel=%d sc=%d removed=%d | %d verifications in %v\n",
		c.Rlx, c.Acq, c.Rel, c.AcqRel, c.SC, c.Removed, r.Verifications, r.Duration)
	if r.CacheLookups > 0 {
		out += fmt.Sprintf("cache: %d hits / %d lookups", r.CacheHits, r.CacheLookups)
		if r.CacheUndecided > 0 {
			out += fmt.Sprintf(" (%d undecided re-probes)", r.CacheUndecided)
		}
		out += "\n"
	}
	if r.Pool.Workers > 0 {
		out += fmt.Sprintf("parallel: %d workers, %d runs canceled by short-circuit, %d slots borrowed for intra-run stealing, busy %v total\n",
			r.Pool.Workers, r.Pool.Canceled, r.Pool.Borrows, r.Pool.TotalBusy().Round(time.Millisecond))
		for i := range r.Pool.Busy {
			out += fmt.Sprintf("  worker %d: %3d jobs, %v busy\n",
				i, r.Pool.Jobs[i], r.Pool.Busy[i].Round(time.Millisecond))
		}
	}
	return out
}

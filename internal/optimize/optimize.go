// Package optimize implements VSync's push-button barrier optimization
// (§3.3): starting from a verified barrier assignment (typically the
// all-SC baseline), it relaxes each barrier point to the weakest mode
// under which the client programs still verify — safety, mutual
// exclusion and await termination all checked by AMC on every
// candidate. Standalone fences may be eliminated entirely (ModeNone),
// reproducing the paper's finding that e.g. the DPDK fence at Fig. 13
// line 32 is useless.
//
// The search is the greedy per-point descent used in practice: for each
// point, in registration order, try the candidate modes from weakest to
// strongest and keep the weakest verified one. The paper notes that
// multiple maximally-relaxed combinations exist; the greedy result is
// one of them.
package optimize

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// Step records one attempted relaxation.
type Step struct {
	Point    string
	Tried    vprog.Mode
	Accepted bool
	Verdict  core.Verdict
	Duration time.Duration
}

// Result is the outcome of an optimization run.
type Result struct {
	// Initial and Final are the starting and optimized specs.
	Initial, Final *vprog.BarrierSpec
	// Steps lists every attempted relaxation in order.
	Steps []Step
	// Verifications counts AMC runs (including the initial check).
	Verifications int
	// Duration is the total wall time — the paper's Table 1 "Time"
	// column (11 minutes for qspinlock on their setup).
	Duration time.Duration
}

// Counts returns the mode tally of the optimized spec (Table 1 shape).
func (r *Result) Counts() vprog.ModeCounts { return r.Final.Counts() }

// Changed renders the accepted relaxations, Fig. 20 style.
func (r *Result) Changed() string { return r.Initial.Diff(r.Final) }

// Optimizer drives the relaxation search.
type Optimizer struct {
	// Model is the memory model to verify against (the paper uses IMM;
	// we use its WMM stand-in by default).
	Model mm.Model
	// Programs builds the client programs that must verify for a spec to
	// be accepted (typically MutexClient instances of varying shapes).
	Programs func(spec *vprog.BarrierSpec) []*vprog.Program
	// MaxGraphs bounds each AMC run (0 = checker default).
	MaxGraphs int
	// Passes caps the number of full point sweeps (0 or 1 = single
	// pass). Because the greedy descent is order-dependent, a point
	// rejected early can become relaxable after later points settle;
	// additional passes run until a fixpoint or the cap.
	Passes int
}

// rank orders modes for descent; equal-rank modes (Acq/Rel) are both
// tried.
func rank(m vprog.Mode) int {
	switch m {
	case vprog.ModeNone:
		return 0
	case vprog.Rlx:
		return 1
	case vprog.Acq, vprog.Rel:
		return 2
	case vprog.AcqRel:
		return 3
	default:
		return 4
	}
}

// candidates returns the modes to try for a point, weakest first,
// strictly weaker than the current mode.
func candidates(spec *vprog.BarrierSpec, point string) []vprog.Mode {
	cur := spec.M(point)
	var order []vprog.Mode
	if spec.IsFence(point) {
		order = []vprog.Mode{vprog.ModeNone, vprog.Rlx, vprog.Acq, vprog.Rel, vprog.AcqRel}
	} else {
		order = []vprog.Mode{vprog.Rlx, vprog.Acq, vprog.Rel, vprog.AcqRel}
	}
	var out []vprog.Mode
	for _, m := range order {
		if rank(m) < rank(cur) {
			out = append(out, m)
		}
	}
	return out
}

// verify runs AMC on every client program; it returns OK only if all
// verify, otherwise the first non-OK verdict.
func (o *Optimizer) verify(spec *vprog.BarrierSpec) (core.Verdict, error) {
	for _, p := range o.Programs(spec) {
		c := core.New(o.Model)
		if o.MaxGraphs > 0 {
			c.MaxGraphs = o.MaxGraphs
		}
		res := c.Run(p)
		if res.Verdict == core.Error {
			return core.Error, fmt.Errorf("optimizer: checking %s: %w", p.Name, res.Err)
		}
		if res.Verdict != core.OK {
			return res.Verdict, nil
		}
	}
	return core.OK, nil
}

// Run optimizes the spec. The initial spec must verify; Run then
// relaxes point by point and returns the final verified assignment.
func (o *Optimizer) Run(initial *vprog.BarrierSpec) (*Result, error) {
	start := time.Now()
	res := &Result{Initial: initial.Clone()}
	spec := initial.Clone()

	v, err := o.verify(spec)
	res.Verifications++
	if err != nil {
		return nil, err
	}
	if v != core.OK {
		return nil, fmt.Errorf("optimizer: initial spec does not verify (%v); fix the algorithm first", v)
	}

	passes := o.Passes
	if passes < 1 {
		passes = 1
	}
	for pass := 0; pass < passes; pass++ {
		changed := false
		for _, point := range spec.Points() {
			orig := spec.M(point)
			for _, cand := range candidates(spec, point) {
				spec.Set(point, cand)
				t0 := time.Now()
				verdict, err := o.verify(spec)
				res.Verifications++
				if err != nil {
					return nil, err
				}
				accepted := verdict == core.OK
				res.Steps = append(res.Steps, Step{
					Point: point, Tried: cand, Accepted: accepted,
					Verdict: verdict, Duration: time.Since(t0),
				})
				if accepted {
					orig = cand
					changed = true
					break // weakest verified mode found for this point
				}
				spec.Set(point, orig) // roll back and try the next stronger mode
			}
		}
		if !changed {
			break // fixpoint
		}
	}
	res.Final = spec
	res.Duration = time.Since(start)
	return res, nil
}

// Report renders the optimization in the shape of Fig. 20: one line per
// point, with the accepted relaxation marked.
func (r *Result) Report() string {
	out := ""
	for _, p := range r.Initial.Points() {
		from, to := r.Initial.M(p), r.Final.M(p)
		if from == to {
			out += fmt.Sprintf("%-40s %s\n", p, from)
			continue
		}
		suffix := ""
		if to == vprog.ModeNone {
			suffix = " (fence removed)"
		}
		out += fmt.Sprintf("%-40s %s --> %s%s\n", p, from, to, suffix)
	}
	c := r.Final.Counts()
	out += fmt.Sprintf("modes: rlx=%d acq=%d rel=%d acqrel=%d sc=%d removed=%d | %d verifications in %v\n",
		c.Rlx, c.Acq, c.Rel, c.AcqRel, c.SC, c.Removed, r.Verifications, r.Duration)
	return out
}

// Package stats provides the descriptive statistics used throughout the
// paper's optimized-code evaluation (§4.2.2): mean, median, standard
// deviation, and the stability metric (max/min of repeated runs) that
// drives record filtering and Table 4 / Fig. 23.
package stats

import (
	"math"
	"sort"
)

// Summary describes one sample of repeated measurements.
type Summary struct {
	N         int
	Mean      float64
	Median    float64
	Std       float64
	Min       float64
	Max       float64
	Stability float64 // max/min; 1.0 = perfectly stable
}

// Summarize computes the summary of xs. It panics on an empty sample —
// callers group records before summarizing, and an empty group is a
// harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Median(sorted)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	if s.Min > 0 {
		s.Stability = s.Max / s.Min
	} else {
		s.Stability = math.Inf(1)
	}
	return s
}

// Median returns the median of an already-sorted slice.
func Median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: empty sample")
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Histogram bins values into nbins equal-width buckets over [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram bins xs into nbins buckets spanning the data range.
func NewHistogram(xs []float64, nbins int) Histogram {
	h := Histogram{Counts: make([]int, nbins)}
	if len(xs) == 0 {
		return h
	}
	h.Lo, h.Hi = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Lo {
			h.Lo = x
		}
		if x > h.Hi {
			h.Hi = x
		}
	}
	width := (h.Hi - h.Lo) / float64(nbins)
	if width == 0 {
		h.Counts[0] = len(xs)
		return h
	}
	for _, x := range xs {
		i := int((x - h.Lo) / width)
		if i >= nbins {
			i = nbins - 1
		}
		h.Counts[i]++
	}
	return h
}

// BinCenter returns the midpoint of bucket i.
func (h Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

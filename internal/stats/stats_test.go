package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %v", s.Median)
	}
	if math.Abs(s.Std-2.138) > 0.01 { // sample std
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Stability != 4.5 {
		t.Fatalf("stability = %v", s.Stability)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Median != 3 || s.Std != 0 || s.Stability != 1 {
		t.Fatalf("bad single summary: %+v", s)
	}
}

func TestSummarizeZeroMin(t *testing.T) {
	s := Summarize([]float64{0, 1})
	if !math.IsInf(s.Stability, 1) {
		t.Fatalf("stability with zero min should be +Inf, got %v", s.Stability)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestMedianOddEven(t *testing.T) {
	if Median([]float64{1, 2, 3}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
}

// Property: min <= median <= max, mean within [min,max], stability >= 1
// for positive samples.
func TestSummaryProperties(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1 // positive
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Stability >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: histogram bin counts sum to the sample size, regardless of
// data distribution.
func TestHistogramConservation(t *testing.T) {
	prop := func(raw []int16, nbRaw uint8) bool {
		nb := int(nbRaw%10) + 1
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		h := NewHistogram(xs, nb)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBins(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram(xs, 5)
	for i, want := range []int{2, 2, 2, 2, 2} {
		if h.Counts[i] != want {
			t.Fatalf("bin %d = %d, want %d (%v)", i, h.Counts[i], want, h.Counts)
		}
	}
	if c := h.BinCenter(0); math.Abs(c-0.9) > 1e-9 {
		t.Fatalf("center = %v", c)
	}
	sort.Float64s(xs) // no-op, keeps the import honest
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	if h.Counts[0] != 3 {
		t.Fatalf("constant data should land in bin 0: %v", h.Counts)
	}
	if h := NewHistogram(nil, 3); len(h.Counts) != 3 {
		t.Fatal("empty histogram malformed")
	}
}

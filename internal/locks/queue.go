package locks

import "repro/internal/vprog"

// modeSource abstracts barrier-mode lookup so composite locks (HCLH,
// cohort) can remap a sub-lock's generic point names onto per-instance
// points of the shared spec.
type modeSource interface {
	M(name string) vprog.Mode
}

// prefixedSpec adapts a shared spec so that a sub-lock's generic point
// names ("clh.await") resolve under an instance prefix
// ("hclh.l0.await").
type prefixedSpec struct {
	spec   *vprog.BarrierSpec
	prefix string
}

func (p *prefixedSpec) M(name string) vprog.Mode {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return p.spec.M(p.prefix + name[i:])
		}
	}
	return p.spec.M(p.prefix + "." + name)
}

// ---------------------------------------------------------------------
// array: Anderson's array-based queue lock.
// ---------------------------------------------------------------------

type arrayLock struct {
	spec  *vprog.BarrierSpec
	tail  *vprog.Var
	slots []*vprog.Var
	n     int
}

// ArrayQ is the array-based queue lock: each contender draws a slot
// index and spins on its own slot; the releaser grants the next slot.
//
// The textbook boolean-flag formulation is broken on weak memory: after
// a wrap-around a waiter may read its *own stale* release flag from the
// previous generation (coherence allows reading one's own old write)
// and enter the critical section early — our AMC found exactly this
// lost-update execution. The weak-memory-correct formulation used here
// stores a monotone turn counter per slot: the waiter holding ticket t
// awaits slots[t%n] >= t+1, and the releaser grants t+2 into slot
// (t+1)%n. Values per slot only grow, so stale reads just keep the
// waiter waiting.
var ArrayQ = register(&Algorithm{
	Name: "array",
	Doc:  "Anderson array-based queue lock with turn counters",
	Kind: KindMutex,
	// Slots are indexed by ticket, not thread id — no tags needed.
	Symmetric: true,
	DefaultSpec: func() *vprog.BarrierSpec {
		return vprog.NewSpec().
			Def("array.faa", vprog.Rlx).
			Def("array.await", vprog.Acq).
			Def("array.pass", vprog.Rel)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		slots := varArray(env, "array.slot", nthreads, 0)
		l := &arrayLock{spec: spec, tail: env.Var("array.tail", 0), slots: slots, n: nthreads}
		// Ticket 0 is granted from the start: slot 0 holds 0+1.
		slots[0].Init = 1
		slots[0].Cell = 1
		return l
	},
})

func (l *arrayLock) Acquire(m vprog.Mem) uint64 {
	t := m.FetchAdd(l.tail, 1, l.spec.M("array.faa"))
	slot := l.slots[t%uint64(l.n)]
	m.AwaitWhile(func() bool {
		wait := m.Load(slot, l.spec.M("array.await")) < t+1
		if wait {
			m.Pause()
		}
		return wait
	})
	return t
}

func (l *arrayLock) Release(m vprog.Mem, token uint64) {
	m.Store(l.slots[(token+1)%uint64(l.n)], token+2, l.spec.M("array.pass"))
}

func (l *arrayLock) Contended(m vprog.Mem, token uint64) bool {
	return m.Load(l.tail, vprog.Rlx) > token+1
}

// ---------------------------------------------------------------------
// clh: the Craig–Landin–Hagersten queue lock.
// ---------------------------------------------------------------------

// clhLock uses nthreads+1 nodes: each thread starts owning node tid and
// adopts its predecessor's node on release (the classic recycling
// scheme); node nthreads is the initially-free node installed as tail.
// Tokens pack (own node | predecessor node << 8); node indices are
// < 256 (the simulator tops out at 128 threads).
type clhLock struct {
	spec   modeSource
	tail   *vprog.Var   // node index currently at the tail
	locked []*vprog.Var // locked[node]
	mine   []*vprog.Var // mine[t]: node currently owned by thread t
}

func newCLHState(env vprog.Env, spec modeSource, nthreads int, prefix string) *clhLock {
	l := &clhLock{
		spec:   spec,
		tail:   env.Var(prefix+".tail", uint64(nthreads)),
		locked: varArray(env, prefix+".locked", nthreads+1, 0),
		mine:   varArray(env, prefix+".mine", nthreads, 0),
	}
	for t := 0; t < nthreads; t++ {
		l.mine[t].Init = uint64(t)
		l.mine[t].Cell = uint64(t)
	}
	return l
}

// CLH is the CLH queue lock.
var CLH = register(&Algorithm{
	Name:      "clh",
	Doc:       "CLH queue lock (Craig; Landin & Hagersten)",
	Kind:      KindMutex,
	Symmetric: true,
	DefaultSpec: func() *vprog.BarrierSpec {
		return clhPoints(vprog.NewSpec(), "clh")
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		l := newCLHState(env, spec, nthreads, "clh")
		// Symmetry tags for the standalone instance (hclh reuses
		// newCLHState untagged — its cluster mapping is asymmetric).
		// Node indices start out equal to thread ids, and although the
		// recycling scheme migrates node ownership, node indices only
		// travel as *data* (tail, mine, tokens) — which the TagTid
		// metadata relabels — while locked[n] for n < nthreads is
		// initially thread n's replica. Node nthreads (the initially
		// free one) is never a thread id and stays untagged.
		l.tail.TagTid(0, 0)
		for t := 0; t < nthreads; t++ {
			l.mine[t].TagOwner(t, "clh.mine").TagTid(0, 0)
			l.locked[t].TagOwner(t, "clh.locked")
		}
		return l
	},
})

// clhPoints registers the CLH barrier points under the given prefix.
func clhPoints(s *vprog.BarrierSpec, prefix string) *vprog.BarrierSpec {
	return s.
		Def(prefix+".init", vprog.Rlx).
		Def(prefix+".xchg_tail", vprog.AcqRel).
		Def(prefix+".await", vprog.Acq).
		Def(prefix+".unlock", vprog.Rel).
		Def(prefix+".adopt", vprog.Rlx)
}

func (l *clhLock) Acquire(m vprog.Mem) uint64 {
	t := m.TID()
	// mine[t] is only ever accessed by thread t; relaxed is safe.
	n := m.Load(l.mine[t], l.spec.M("clh.adopt"))
	m.Store(l.locked[n], 1, l.spec.M("clh.init"))
	prev := m.Xchg(l.tail, n, l.spec.M("clh.xchg_tail"))
	m.AwaitWhile(func() bool {
		wait := m.Load(l.locked[prev], l.spec.M("clh.await")) == 1
		if wait {
			m.Pause()
		}
		return wait
	})
	return n | prev<<8
}

func (l *clhLock) Release(m vprog.Mem, token uint64) {
	t := m.TID()
	n, prev := token&0xff, (token>>8)&0xff
	m.Store(l.locked[n], 0, l.spec.M("clh.unlock"))
	// Adopt the predecessor's (now retired) node for our next round.
	m.Store(l.mine[t], prev, l.spec.M("clh.adopt"))
}

func (l *clhLock) Contended(m vprog.Mem, token uint64) bool {
	return m.Load(l.tail, vprog.Rlx) != token&0xff
}

// ---------------------------------------------------------------------
// hclh: hierarchical CLH.
// ---------------------------------------------------------------------

// hclhLock models the hierarchical CLH lock (Luchangco, Nussbaum &
// Shavit) as a two-level composition: a per-cluster CLH queue feeding a
// global CLH queue. This preserves the NUMA-locality trait measured in
// the evaluation (cluster peers queue locally and only cluster leaders
// contend globally); the original's queue-splicing optimization is not
// reproduced (DESIGN.md, substitutions).
type hclhLock struct {
	global *clhLock
	local  []*clhLock
	nth    int
}

const hclhClusters = 2

// HCLH is the hierarchical CLH lock.
var HCLH = register(&Algorithm{
	Name: "hclh",
	Doc:  "hierarchical CLH lock (two-level CLH composition)",
	Kind: KindMutex,
	DefaultSpec: func() *vprog.BarrierSpec {
		s := vprog.NewSpec()
		for _, lvl := range []string{"hclh.g", "hclh.l0", "hclh.l1"} {
			clhPoints(s, lvl)
		}
		return s
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		l := &hclhLock{nth: nthreads}
		l.global = newCLHState(env, &prefixedSpec{spec: spec, prefix: "hclh.g"}, nthreads, "hclh.g")
		for c := 0; c < hclhClusters; c++ {
			prefix := []string{"hclh.l0", "hclh.l1"}[c]
			l.local = append(l.local, newCLHState(env, &prefixedSpec{spec: spec, prefix: prefix}, nthreads, prefix))
		}
		return l
	},
})

func (l *hclhLock) cluster(tid int) int { return clusterOf(tid, l.nth, hclhClusters) }

func (l *hclhLock) Acquire(m vprog.Mem) uint64 {
	c := l.cluster(m.TID())
	lt := l.local[c].Acquire(m)
	gt := l.global.Acquire(m)
	return lt | gt<<16 // each CLH token uses 16 bits
}

func (l *hclhLock) Release(m vprog.Mem, token uint64) {
	c := l.cluster(m.TID())
	l.global.Release(m, (token>>16)&0xffff)
	l.local[c].Release(m, token&0xffff)
}

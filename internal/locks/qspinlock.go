package locks

import "repro/internal/vprog"

// qspinlock is the Linux queued spinlock (Corbet, LWN '14; Long &
// Zijlstra), the subject of §3.3 and Table 1. The 32-bit lock word
// packs three fields:
//
//	bits 0..7   locked byte
//	bit  8      pending
//	bits 16..   tail (encoded CPU/thread id + 1)
//
// The first contender sets the pending bit and spins on the locked
// byte; further contenders queue on per-CPU MCS nodes. The paper's
// study ports Linux 4.4 (with the 5.6 prefetch backports) to
// VSYNC-atomics; the union of mixed-size accesses is replaced by whole-
// word accesses — the same simplification the authors made, since AMC
// requires uniform access sizes (§3.3 "Code preparation").
//
// Barrier-point names follow Fig. 20; DefaultSpec carries the
// VSync-suggested modes of the bold column.
const (
	qLocked      = 1
	qPending     = 1 << 8
	qTailShift   = 16
	qLockedMask  = 0xff
	qPendingMask = qPending
	qMask        = qLockedMask | qPendingMask // locked+pending
	qTailMask    = ^uint64(qMask | 0xfe00)    // bits 16+
)

type qspinLock struct {
	spec   modeSource
	val    *vprog.Var
	next   []*vprog.Var // MCS node successor per thread
	locked []*vprog.Var // MCS node wait flag per thread (1 = go)
}

// Qspin is the Linux qspinlock.
var Qspin = register(&Algorithm{
	Name:      "qspin",
	Doc:       "Linux queued spinlock (pending bit + MCS tail queue)",
	Kind:      KindMutex,
	Symmetric: true,
	DefaultSpec: func() *vprog.BarrierSpec {
		return vprog.NewSpec().
			// lock fast path: atomic32_cmpxchg --> acquire
			Def("qspin.fast_cmpxchg", vprog.Acq).
			// slowpath: atomic32_await_neq_rlx (pending->locked settle)
			Def("qspin.await_pending_owner", vprog.Rlx).
			// pending claim: atomic32_cmpxchg --> acquire
			Def("qspin.pending_cmpxchg", vprog.Acq).
			// pending waiter: atomic32_await_mask_eq --> relaxed
			Def("qspin.await_locked_clear", vprog.Rlx).
			// clear_pending_set_locked: atomic32_add --> acquire
			Def("qspin.clear_pending_set_locked", vprog.Acq).
			// node initialization: atomic32_write_rlx / atomicptr_write_rlx
			Def("qspin.node_init_locked", vprog.Rlx).
			Def("qspin.node_init_next", vprog.Rlx).
			// xchg_tail: atomic32_cmpxchg --> seq_cst
			Def("qspin.xchg_tail", vprog.SC).
			// prev->next publication: Fig. 20 keeps this relaxed because
			// IMM honours the releaser's address dependency; our WMM
			// (RC11-style, no dependency tracking) needs the release —
			// this is the Linux 4.16 fix (commit 95bcade33a8a), which AMC
			// rediscovers as an AT violation if the point is relaxed.
			Def("qspin.set_prev_next", vprog.Rel).
			// queue wait: atomic32_await_neq_acq
			Def("qspin.await_node_locked", vprog.Acq).
			// head wait: atomic32_await_mask_eq --> relaxed
			Def("qspin.await_owner_clear", vprog.Rlx).
			// uncontended tail claim: atomic32_cmpxchg --> acquire
			Def("qspin.tail_cmpxchg", vprog.Acq).
			// set_locked: atomic32_or --> acquire
			Def("qspin.or_locked", vprog.Acq).
			// successor wait: relaxed in Fig. 20 (address dependency);
			// acquire under WMM for the same reason as set_prev_next.
			Def("qspin.await_next", vprog.Acq).
			// hand-off: atomic32_write_rel
			Def("qspin.handoff", vprog.Rel).
			// unlock: atomic32_sub --> release
			Def("qspin.unlock_sub", vprog.Rel)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		l := &qspinLock{
			spec:   spec,
			val:    env.Var("qspin.val", 0),
			next:   varArray(env, "qspin.next", nthreads, 0),
			locked: varArray(env, "qspin.locked", nthreads, 0),
		}
		// Symmetry tags: the lock word's tail field (bits 16+) encodes
		// tid+1; the locked byte and pending bit below it are the
		// residue the relabeling preserves. MCS nodes are per-thread.
		l.val.TagTid(qTailShift, 1)
		for t := 0; t < nthreads; t++ {
			l.next[t].TagOwner(t, "qspin.next").TagTid(0, 1)
			l.locked[t].TagOwner(t, "qspin.locked")
		}
		return l
	},
})

func (l *qspinLock) tailCode(tid int) uint64 { return uint64(tid+1) << qTailShift }

func (l *qspinLock) Acquire(m vprog.Mem) uint64 {
	old, ok := m.CmpXchg(l.val, 0, qLocked, l.spec.M("qspin.fast_cmpxchg"))
	if ok {
		return 0
	}
	l.slowpath(m, old)
	return 0
}

// slowpath is queued_spin_lock_slowpath of Linux 4.4 with whole-word
// accesses.
func (l *qspinLock) slowpath(m vprog.Mem, val uint64) {
	t := m.TID()

	// A pending->locked hand-over is in flight (pending set, lock
	// free): wait for it to settle so we do not race the owner claim.
	if val == qPending {
		m.AwaitWhile(func() bool {
			v := m.Load(l.val, l.spec.M("qspin.await_pending_owner"))
			if v == qPending {
				m.Pause()
				return true
			}
			val = v
			return false
		})
	}

	// Try to become the pending waiter (no queue, at most an owner).
	for val&^uint64(qLockedMask) == 0 {
		old, ok := m.CmpXchg(l.val, val, val|qPending, l.spec.M("qspin.pending_cmpxchg"))
		if ok {
			// We hold pending: wait for the owner to drop the locked
			// byte, then take ownership, clearing pending and setting
			// locked in one atomic add (1 - 256 with wrap-around).
			m.AwaitWhile(func() bool {
				wait := m.Load(l.val, l.spec.M("qspin.await_locked_clear"))&qLockedMask != 0
				if wait {
					m.Pause()
				}
				return wait
			})
			delta := ^uint64(qPending) + 1 + qLocked // two's complement: -PENDING+LOCKED
			m.FetchAdd(l.val, delta, l.spec.M("qspin.clear_pending_set_locked"))
			return
		}
		val = old
	}

	// Queue on our MCS node.
	me := l.tailCode(t)
	m.Store(l.locked[t], 0, l.spec.M("qspin.node_init_locked"))
	m.Store(l.next[t], 0, l.spec.M("qspin.node_init_next"))

	// xchg_tail: publish ourselves as the new tail (cmpxchg loop on the
	// whole word, as in the 32-bit kernel path).
	var old uint64
	for {
		v := m.Load(l.val, vprog.Rlx)
		nv := (v &^ qTailMask) | me
		prev, ok := m.CmpXchg(l.val, v, nv, l.spec.M("qspin.xchg_tail"))
		if ok {
			old = v
			break
		}
		_ = prev
		m.Pause()
	}

	if old&qTailMask != 0 {
		// We have a predecessor: link in and wait for its hand-off.
		prev := int(old>>qTailShift) - 1
		m.Store(l.next[prev], uint64(t)+1, l.spec.M("qspin.set_prev_next"))
		m.AwaitWhile(func() bool {
			wait := m.Load(l.locked[t], l.spec.M("qspin.await_node_locked")) == 0
			if wait {
				m.Pause()
			}
			return wait
		})
	}

	// We are the queue head: wait for owner and pending to clear.
	var v uint64
	m.AwaitWhile(func() bool {
		v = m.Load(l.val, l.spec.M("qspin.await_owner_clear"))
		if v&qMask != 0 {
			m.Pause()
			return true
		}
		return false
	})

	// If we are also the tail, claim the lock and empty the queue in one
	// step; otherwise set the locked byte and hand off to our successor.
	if v&qTailMask == me {
		if _, ok := m.CmpXchg(l.val, v, qLocked, l.spec.M("qspin.tail_cmpxchg")); ok {
			return
		}
	}
	// A successor exists (or is enqueueing): set locked...
	m.FetchAdd(l.val, qLocked, l.spec.M("qspin.or_locked"))
	// ...wait for it to link itself, and pass the MCS baton.
	var nxt uint64
	m.AwaitWhile(func() bool {
		nxt = m.Load(l.next[t], l.spec.M("qspin.await_next"))
		if nxt == 0 {
			m.Pause()
		}
		return nxt == 0
	})
	m.Store(l.locked[nxt-1], 1, l.spec.M("qspin.handoff"))
}

func (l *qspinLock) Release(m vprog.Mem, _ uint64) {
	m.FetchAdd(l.val, ^uint64(qLocked)+1, l.spec.M("qspin.unlock_sub")) // val -= LOCKED
}

func (l *qspinLock) Contended(m vprog.Mem, _ uint64) bool {
	return m.Load(l.val, vprog.Rlx)&^uint64(qLockedMask) != 0
}

// Package locks implements the synchronization primitives evaluated in
// the paper — 18 lock algorithms (Table 5 / Figs. 25–26) plus the buggy
// study-case variants of §3 — written once against the vprog.Mem
// interface so that each runs unchanged on all three backends:
//
//   - internal/core: Await Model Checking (verification),
//   - internal/wmsim: the weak-memory performance simulator,
//   - internal/native: real sync/atomic execution.
//
// Every algorithm is barrier-mode parameterized through a
// vprog.BarrierSpec whose points the optimizer (internal/optimize)
// relaxes; DefaultSpec returns the maximally-relaxed assignment
// (VSync-informed), and spec.AllSC() yields the paper's "sc-only"
// baseline variant.
//
// Thread-local state that must survive a single call (a ticket, a queue
// node) is returned from Acquire as an opaque token and passed back to
// Release; state that survives across acquisitions (CLH node adoption)
// lives in per-thread shared variables, exactly as the algorithms do on
// real hardware.
package locks

import (
	"fmt"
	"sort"

	"repro/internal/vprog"
)

// Lock is a mutual-exclusion primitive. Acquire returns an opaque token
// that must be passed to the matching Release.
type Lock interface {
	Acquire(m vprog.Mem) (token uint64)
	Release(m vprog.Mem, token uint64)
}

// RWLock is a reader-writer lock.
type RWLock interface {
	Lock // writer side (Acquire/Release)
	AcquireShared(m vprog.Mem) (token uint64)
	ReleaseShared(m vprog.Mem, token uint64)
}

// Contender is implemented by locks that can report whether another
// thread is queued behind the current holder; cohort locks use it to
// decide whether to hand the global lock to a cohort peer.
type Contender interface {
	Contended(m vprog.Mem, token uint64) bool
}

// Kind classifies a primitive for client-code selection.
type Kind uint8

// Primitive kinds.
const (
	KindMutex Kind = iota
	KindRW
	KindSemaphore
)

// Algorithm describes one primitive in the registry.
type Algorithm struct {
	// Name is the identifier used throughout the evaluation (the row
	// names of Table 5: "mcs", "qspin", "ttas", ...).
	Name string
	// Doc is a one-line description with the literature reference.
	Doc string
	// Kind selects the client code used for verification and
	// benchmarking.
	Kind Kind
	// Buggy marks known-broken study-case variants; they are excluded
	// from the benchmark campaign and expected to fail verification.
	Buggy bool
	// Extra marks primitives beyond the paper's 18-lock benchmark set;
	// they verify and run on every backend but are excluded from the
	// campaign so Tables 2–5 keep the paper's row set.
	Extra bool
	// Symmetric marks locks whose client threads are interchangeable:
	// the algorithm either never observes thread ids, or observes them
	// only through state its New tags with the vprog symmetry metadata
	// (Var.TagOwner / Var.TagTid). Harness clients declare symmetric
	// thread groups only for these; the declaration is then still
	// validated structurally per program (vprog.Program.SymSpec).
	// Hierarchical locks (hclh, cohort) key behavior on the NUMA
	// cluster of the thread id and stay false.
	Symmetric bool
	// DefaultSpec returns the maximally-relaxed barrier assignment.
	DefaultSpec func() *vprog.BarrierSpec
	// New instantiates the lock for nthreads threads, allocating its
	// shared state in env and reading barrier modes from spec.
	New func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock
}

var registry = map[string]*Algorithm{}

// register adds an algorithm at package init time.
func register(a *Algorithm) *Algorithm {
	if _, dup := registry[a.Name]; dup {
		panic("locks: duplicate algorithm " + a.Name)
	}
	registry[a.Name] = a
	return a
}

// ByName returns the algorithm with the given name, or nil.
func ByName(name string) *Algorithm { return registry[name] }

// All returns every registered algorithm, sorted by name.
func All() []*Algorithm {
	out := make([]*Algorithm, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Benchmarkable returns the algorithms included in the evaluation
// campaign (the paper's 18: non-buggy, non-extra), sorted by name.
func Benchmarkable() []*Algorithm {
	var out []*Algorithm
	for _, a := range All() {
		if !a.Buggy && !a.Extra {
			out = append(out, a)
		}
	}
	return out
}

// Verifiable returns every algorithm expected to pass verification
// (non-buggy, including extras), sorted by name.
func Verifiable() []*Algorithm {
	var out []*Algorithm
	for _, a := range All() {
		if !a.Buggy {
			out = append(out, a)
		}
	}
	return out
}

// varArray allocates n related variables named name.0 … name.(n-1).
func varArray(env vprog.Env, name string, n int, init uint64) []*vprog.Var {
	out := make([]*vprog.Var, n)
	for i := range out {
		out[i] = env.Var(fmt.Sprintf("%s.%d", name, i), init)
	}
	return out
}

// clusterOf maps a thread to a NUMA cluster for hierarchical locks;
// it mirrors the two-socket topology of the evaluation platforms.
func clusterOf(tid, nthreads, nclusters int) int {
	if nthreads <= 1 || nclusters <= 1 {
		return 0
	}
	per := (nthreads + nclusters - 1) / nclusters
	c := tid / per
	if c >= nclusters {
		c = nclusters - 1
	}
	return c
}

package locks_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
)

// TestAllMutexesVerifyWMM is the headline verification matrix: every
// non-buggy primitive, with its maximally-relaxed (VSync-style) barrier
// spec, must satisfy mutual exclusion, hand-off ordering and await
// termination under the weak memory model with two contending threads.
func TestAllMutexesVerifyWMM(t *testing.T) {
	for _, alg := range locks.Verifiable() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			p := harness.MutexClient(alg, alg.DefaultSpec(), 2, 1)
			res := core.New(mm.WMM).Run(p)
			if !res.Ok() {
				t.Fatalf("%s failed verification: %v\nwitness:\n%s",
					alg.Name, res, witness(res))
			}
			t.Logf("%s: %v", alg.Name, res)
		})
	}
}

// TestAllMutexesVerifySCOnly checks the paper's baseline variant: the
// all-SC spec must of course verify too.
func TestAllMutexesVerifySCOnly(t *testing.T) {
	for _, alg := range locks.Verifiable() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			p := harness.MutexClient(alg, alg.DefaultSpec().AllSC(), 2, 1)
			res := core.New(mm.WMM).Run(p)
			if !res.Ok() {
				t.Fatalf("%s (sc-only) failed verification: %v\nwitness:\n%s",
					alg.Name, res, witness(res))
			}
		})
	}
}

func witness(res *core.Result) string {
	if res.Witness == nil {
		return "(none)"
	}
	return res.Witness.Render()
}

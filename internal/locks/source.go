package locks

import "embed"

// sourceFS carries this package's own .go sources, compiled into the
// binary so the verdict store can fold a code-identity epoch into its
// keys (internal/srcid). An edit to an algorithm's contended path may
// be invisible to the structural program fingerprint (which witnesses
// one uncontended execution); hashing the source closes that gap.
//
//go:embed *.go
var sourceFS embed.FS

// SourceFiles exposes the embedded sources for code-identity hashing.
func SourceFiles() embed.FS { return sourceFS }

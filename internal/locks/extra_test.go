package locks_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/native"
	"repro/internal/vprog"
)

// TestSeqlockVerifies: torn-read freedom and read-side termination on
// every model with the default barrier assignment.
func TestSeqlockVerifies(t *testing.T) {
	spec := locks.SeqlockPoints(vprog.NewSpec(), "seqlock")
	for _, model := range mm.All() {
		res := core.New(model).Run(harness.SeqlockClient(spec, 1, 1, 1))
		if !res.Ok() {
			t.Fatalf("seqlock 1w1r under %s: %v\n%s", model.Name(), res, witness(res))
		}
	}
	// Two writers exercise the embedded writer lock.
	res := core.New(mm.WMM).Run(harness.SeqlockClient(spec, 2, 1, 1))
	if !res.Ok() {
		t.Fatalf("seqlock 2w1r: %v\n%s", res, witness(res))
	}
}

// TestSeqlockRelaxedBreaks: removing the writer's publication ordering
// must make the torn read observable — the seqlock's ordering is real,
// not incidental.
func TestSeqlockRelaxedBreaks(t *testing.T) {
	spec := locks.SeqlockPoints(vprog.NewSpec(), "seqlock")
	spec.Set("seqlock.enter_fence", vprog.ModeNone)
	spec.Set("seqlock.exit", vprog.Rlx)
	spec.Set("seqlock.begin", vprog.Rlx)
	spec.Set("seqlock.recheck_fence", vprog.ModeNone)
	res := core.New(mm.WMM).Run(harness.SeqlockClient(spec, 1, 1, 1))
	if res.Verdict != core.SafetyViolation {
		t.Fatalf("fully relaxed seqlock should tear, got %v", res)
	}
}

// TestBarrierVerifies: cross-thread visibility and termination across
// two phases, on every model.
func TestBarrierVerifies(t *testing.T) {
	spec := locks.BarrierPoints(vprog.NewSpec(), "barrier")
	for _, model := range mm.All() {
		res := core.New(model).Run(harness.BarrierClient(spec, 2, 2))
		if !res.Ok() {
			t.Fatalf("barrier 2t2p under %s: %v\n%s", model.Name(), res, witness(res))
		}
	}
}

// TestBarrierRelaxedBreaks: a fully relaxed barrier loses the
// visibility guarantee.
func TestBarrierRelaxedBreaks(t *testing.T) {
	spec := locks.BarrierPoints(vprog.NewSpec(), "barrier")
	spec.Set("barrier.arrive", vprog.Rlx)
	spec.Set("barrier.flip", vprog.Rlx)
	spec.Set("barrier.await", vprog.Rlx)
	res := core.New(mm.WMM).Run(harness.BarrierClient(spec, 2, 1))
	if res.Verdict != core.SafetyViolation {
		t.Fatalf("relaxed barrier should leak stale slots, got %v", res)
	}
}

// TestBackoffRegistered: the extra lock is verifiable but excluded from
// the paper-shaped campaign.
func TestBackoffRegistered(t *testing.T) {
	alg := locks.ByName("backoff")
	if alg == nil || !alg.Extra {
		t.Fatal("backoff should be registered as an extra")
	}
	for _, a := range locks.Benchmarkable() {
		if a.Name == "backoff" {
			t.Fatal("extras must not join the benchmark campaign")
		}
	}
	found := false
	for _, a := range locks.Verifiable() {
		if a.Name == "backoff" {
			found = true
		}
	}
	if !found {
		t.Fatal("extras must be in the verifiable set")
	}
}

// TestExtrasNative runs the new primitives natively under real
// goroutine concurrency.
func TestExtrasNative(t *testing.T) {
	spec := locks.SeqlockPoints(vprog.NewSpec(), "seqlock")
	if err := native.RunProgram(harness.SeqlockClient(spec, 2, 2, 500)); err != nil {
		t.Fatalf("native seqlock: %v", err)
	}
	bspec := locks.BarrierPoints(vprog.NewSpec(), "barrier")
	if err := native.RunProgram(harness.BarrierClient(bspec, 4, 50)); err != nil {
		t.Fatalf("native barrier: %v", err)
	}
}

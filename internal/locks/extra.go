package locks

import "repro/internal/vprog"

// Extra primitives beyond the paper's 18-lock benchmark table, from the
// same domain (libvsync ships all three): an exponential-backoff
// spinlock, a seqlock, and a sense-reversing centralized barrier. The
// backoff lock is excluded from the paper-shaped benchmark campaign
// (Algorithm.Extra) so Tables 2–5 keep the paper's row set, but it is
// fully verified and usable; the seqlock and barrier have their own
// interfaces and clients.

// ---------------------------------------------------------------------
// backoff: test-and-set with bounded exponential backoff.
// ---------------------------------------------------------------------

type backoffLock struct {
	spec modeSource
	word *vprog.Var
}

// Backoff is the TAS lock with exponential backoff: contention failures
// spin locally (Pause) for exponentially growing bounded intervals,
// which costs nothing under the checker (Pause is a no-op there) but
// reduces coherence traffic in the simulator and natively.
var Backoff = register(&Algorithm{
	Name:      "backoff",
	Symmetric: true, // never observes thread ids
	Doc:       "test-and-set lock with bounded exponential backoff",
	Kind:      KindMutex,
	Extra:     true,
	DefaultSpec: func() *vprog.BarrierSpec {
		return vprog.NewSpec().
			Def("backoff.cas", vprog.Acq).
			Def("backoff.unlock", vprog.Rel)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return &backoffLock{spec: spec, word: env.Var("backoff.word", 0)}
	},
})

func (l *backoffLock) Acquire(m vprog.Mem) uint64 {
	delay := 1
	m.AwaitWhile(func() bool {
		_, ok := m.CmpXchg(l.word, 0, 1, l.spec.M("backoff.cas"))
		if ok {
			return false
		}
		for i := 0; i < delay; i++ {
			m.Pause()
		}
		if delay < 64 {
			delay *= 2
		}
		return true
	})
	return 0
}

func (l *backoffLock) Release(m vprog.Mem, _ uint64) {
	m.Store(l.word, 0, l.spec.M("backoff.unlock"))
}

// ---------------------------------------------------------------------
// seqlock: sequence lock (single writer assumed per write section via
// an embedded writer CAS, optimistic readers).
// ---------------------------------------------------------------------

// Seqlock is the classic sequence lock: the writer makes the sequence
// odd, updates the data, and makes it even again; readers snapshot the
// sequence, read, and retry if the sequence moved or was odd. The
// read-side retry loop is an await in the paper's sense (no side
// effects in failed iterations), so AMC verifies read-side termination.
//
// The default barrier assignment is the weak-memory-correct one for an
// RC11-style model: the writer publishes with a release store of the
// even sequence and orders its entry store before the data writes with
// a release fence; the reader acquires the first sequence load and
// separates its data reads from the re-check with an acquire fence.
type Seqlock struct {
	spec  modeSource
	seq   *vprog.Var
	wlock *vprog.Var
}

// SeqlockPoints registers the seqlock barrier points under a prefix.
func SeqlockPoints(s *vprog.BarrierSpec, prefix string) *vprog.BarrierSpec {
	return s.
		Def(prefix+".wcas", vprog.Acq).
		Def(prefix+".enter", vprog.Rlx).
		DefFence(prefix+".enter_fence", vprog.Rel).
		Def(prefix+".data_write", vprog.Rlx).
		Def(prefix+".exit", vprog.Rel).
		Def(prefix+".wunlock", vprog.Rel).
		Def(prefix+".begin", vprog.Acq).
		Def(prefix+".data_read", vprog.Rlx).
		DefFence(prefix+".recheck_fence", vprog.Acq).
		Def(prefix+".recheck", vprog.Rlx)
}

// NewSeqlock allocates a seqlock.
func NewSeqlock(env vprog.Env, spec *vprog.BarrierSpec) *Seqlock {
	return &Seqlock{
		spec:  spec,
		seq:   env.Var("seqlock.seq", 0),
		wlock: env.Var("seqlock.wlock", 0),
	}
}

// Write runs body (which must perform its data stores through the
// passed store function) as one write section.
func (l *Seqlock) Write(m vprog.Mem, body func(store func(v *vprog.Var, x uint64))) {
	// Writers exclude each other with an embedded CAS lock.
	m.AwaitWhile(func() bool {
		_, ok := m.CmpXchg(l.wlock, 0, 1, l.spec.M("seqlock.wcas"))
		if !ok {
			m.Pause()
		}
		return !ok
	})
	s := m.Load(l.seq, vprog.Rlx)
	m.Store(l.seq, s+1, l.spec.M("seqlock.enter")) // odd: write in progress
	m.Fence(l.spec.M("seqlock.enter_fence"))
	body(func(v *vprog.Var, x uint64) {
		m.Store(v, x, l.spec.M("seqlock.data_write"))
	})
	m.Store(l.seq, s+2, l.spec.M("seqlock.exit")) // even: stable
	m.Store(l.wlock, 0, l.spec.M("seqlock.wunlock"))
}

// Read runs body optimistically until it observes a stable snapshot;
// body receives a load function for the protected data. The retry is
// an AwaitDo — "attempt a stable snapshot until one succeeds" — and
// note that no bounded encoding of it would be sound: a failed
// iteration implies nothing about writer progress (re-reading the same
// odd sequence forever is a consistent behavior), so unlike a CAS
// loop there is no pigeonhole bound, only the await-termination
// analysis.
func (l *Seqlock) Read(m vprog.Mem, body func(load func(v *vprog.Var) uint64)) {
	m.AwaitDo(func() bool {
		s1 := m.Load(l.seq, l.spec.M("seqlock.begin"))
		if s1%2 == 1 {
			m.Pause()
			return false // write in progress
		}
		body(func(v *vprog.Var) uint64 {
			return m.Load(v, l.spec.M("seqlock.data_read"))
		})
		m.Fence(l.spec.M("seqlock.recheck_fence"))
		s2 := m.Load(l.seq, l.spec.M("seqlock.recheck"))
		return s2 == s1 // unequal: torn, retry
	})
}

// ---------------------------------------------------------------------
// barrier: sense-reversing centralized barrier.
// ---------------------------------------------------------------------

// CentralBarrier is the sense-reversing centralized barrier: the last
// arriving thread resets the count and flips the global sense; everyone
// else awaits the flip. Wait returns the thread's next local sense,
// which the caller threads through successive phases (thread-local
// state crosses calls through the return value, as lock tokens do).
type CentralBarrier struct {
	spec  modeSource
	count *vprog.Var
	sense *vprog.Var
	n     uint64
}

// BarrierPoints registers the barrier's points under a prefix.
func BarrierPoints(s *vprog.BarrierSpec, prefix string) *vprog.BarrierSpec {
	return s.
		Def(prefix+".arrive", vprog.AcqRel).
		Def(prefix+".reset", vprog.Rlx).
		Def(prefix+".flip", vprog.Rel).
		Def(prefix+".await", vprog.Acq)
}

// NewCentralBarrier allocates a barrier for n participants.
func NewCentralBarrier(env vprog.Env, spec *vprog.BarrierSpec, n int) *CentralBarrier {
	return &CentralBarrier{
		spec:  spec,
		count: env.Var("barrier.count", uint64(n)),
		sense: env.Var("barrier.sense", 0),
		n:     uint64(n),
	}
}

// Wait blocks until all n participants of the current phase arrived.
// mySense must be 1 for the first phase; pass the returned value to the
// next Wait.
func (b *CentralBarrier) Wait(m vprog.Mem, mySense uint64) (nextSense uint64) {
	left := m.FetchAdd(b.count, ^uint64(0), b.spec.M("barrier.arrive"))
	if left == 1 {
		// Last arrival: reset for the next phase and release everyone.
		m.Store(b.count, b.n, b.spec.M("barrier.reset"))
		m.Store(b.sense, mySense, b.spec.M("barrier.flip"))
	} else {
		m.AwaitWhile(func() bool {
			wait := m.Load(b.sense, b.spec.M("barrier.await")) != mySense
			if wait {
				m.Pause()
			}
			return wait
		})
	}
	return mySense ^ 1
}

package locks

import "repro/internal/vprog"

// ---------------------------------------------------------------------
// mutex: Drepper's 3-state futex mutex ("Futexes are Tricky").
// ---------------------------------------------------------------------

// mutex3 states: 0 free, 1 locked, 2 locked with (possible) waiters.
// The futex system call is modelled by its observable effect: a waiter
// sleeps until the word changes away from 2 (the kernel re-checks the
// word under its own lock, which our await models exactly), and wake is
// the releaser's store making the word != 2.
type mutex3Lock struct {
	spec  modeSource
	state *vprog.Var
}

// Mutex3 is the 3-state futex mutex.
var Mutex3 = register(&Algorithm{
	Name:      "mutex",
	Symmetric: true, // never observes thread ids
	Doc:       "3-state futex mutex (Drepper, 'Futexes are Tricky')",
	Kind:      KindMutex,
	DefaultSpec: func() *vprog.BarrierSpec {
		return vprog.NewSpec().
			Def("mutex.fast_cas", vprog.Acq).
			Def("mutex.xchg", vprog.Acq).
			Def("mutex.futex_wait", vprog.Rlx).
			Def("mutex.unlock", vprog.Rel)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return &mutex3Lock{spec: spec, state: env.Var("mutex.state", 0)}
	},
})

func (l *mutex3Lock) Acquire(m vprog.Mem) uint64 {
	if _, ok := m.CmpXchg(l.state, 0, 1, l.spec.M("mutex.fast_cas")); ok {
		return 0
	}
	for {
		// Mark contended; if the lock was free we now own it.
		if m.Xchg(l.state, 2, l.spec.M("mutex.xchg")) == 0 {
			return 0
		}
		// futex_wait(&state, 2): sleep while the word is still 2.
		m.AwaitWhile(func() bool {
			wait := m.Load(l.state, l.spec.M("mutex.futex_wait")) == 2
			if wait {
				m.Pause()
			}
			return wait
		})
	}
}

func (l *mutex3Lock) Release(m vprog.Mem, _ uint64) {
	// Releasing from either state (1 or 2) frees the lock; the store
	// doubles as the futex wake (waiters observe state != 2).
	m.Store(l.state, 0, l.spec.M("mutex.unlock"))
}

// ---------------------------------------------------------------------
// musl: the musl libc normal mutex.
// ---------------------------------------------------------------------

// muslLock models musl's pthread_mutex_lock for normal mutexes: a CAS
// fast path, then a wait loop that registers in a waiter count so the
// unlocker knows whether to issue a wake.
type muslLock struct {
	spec    modeSource
	word    *vprog.Var
	waiters *vprog.Var
}

// Musl is the musl-libc style mutex.
var Musl = register(&Algorithm{
	Name:      "musl",
	Symmetric: true, // never observes thread ids
	Doc:       "musl libc normal mutex (CAS + waiter count futex)",
	Kind:      KindMutex,
	DefaultSpec: func() *vprog.BarrierSpec {
		return vprog.NewSpec().
			Def("musl.cas", vprog.Acq).
			Def("musl.waiters_inc", vprog.Rlx).
			Def("musl.wait", vprog.Rlx).
			Def("musl.waiters_dec", vprog.Rlx).
			Def("musl.unlock", vprog.Rel).
			Def("musl.read_waiters", vprog.Rlx)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return &muslLock{
			spec:    spec,
			word:    env.Var("musl.word", 0),
			waiters: env.Var("musl.waiters", 0),
		}
	},
})

func (l *muslLock) Acquire(m vprog.Mem) uint64 {
	for {
		if _, ok := m.CmpXchg(l.word, 0, 1, l.spec.M("musl.cas")); ok {
			return 0
		}
		m.FetchAdd(l.waiters, 1, l.spec.M("musl.waiters_inc"))
		// futex_wait(&word, 1): sleep while locked.
		m.AwaitWhile(func() bool {
			wait := m.Load(l.word, l.spec.M("musl.wait")) != 0
			if wait {
				m.Pause()
			}
			return wait
		})
		m.FetchAdd(l.waiters, ^uint64(0), l.spec.M("musl.waiters_dec"))
	}
}

func (l *muslLock) Release(m vprog.Mem, _ uint64) {
	m.Store(l.word, 0, l.spec.M("musl.unlock"))
	// The wake decision; the wake itself is the store above.
	m.Load(l.waiters, l.spec.M("musl.read_waiters"))
}

// ---------------------------------------------------------------------
// semaphore: counting semaphore, used as a binary lock in the
// evaluation.
// ---------------------------------------------------------------------

type semLock struct {
	spec modeSource
	cnt  *vprog.Var
}

// Semaphore is a counting semaphore (capacity 1 when used as a mutex by
// the benchmark client); Acquire is a P/wait, Release a V/post.
var Semaphore = register(&Algorithm{
	Name:      "semaphore",
	Symmetric: true, // never observes thread ids
	Doc:       "counting semaphore (CAS decrement with await, FAA post)",
	Kind:      KindSemaphore,
	DefaultSpec: func() *vprog.BarrierSpec {
		return vprog.NewSpec().
			Def("sem.poll", vprog.Rlx).
			Def("sem.dec", vprog.Acq).
			Def("sem.post", vprog.Rel)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return &semLock{spec: spec, cnt: env.Var("sem.cnt", 1)}
	},
})

func (l *semLock) Acquire(m vprog.Mem) uint64 {
	for {
		// Wait for capacity, then try to take one unit.
		var v uint64
		m.AwaitWhile(func() bool {
			v = m.Load(l.cnt, l.spec.M("sem.poll"))
			if v == 0 {
				m.Pause()
			}
			return v == 0
		})
		if _, ok := m.CmpXchg(l.cnt, v, v-1, l.spec.M("sem.dec")); ok {
			return 0
		}
	}
}

func (l *semLock) Release(m vprog.Mem, _ uint64) {
	m.FetchAdd(l.cnt, 1, l.spec.M("sem.post"))
}

// ---------------------------------------------------------------------
// rw: writer-preference reader-writer lock.
// ---------------------------------------------------------------------

type rwLock struct {
	spec  modeSource
	wflag *vprog.Var // 1 while a writer holds or claims the lock
	rcnt  *vprog.Var // active reader count
}

// RW is the reader-writer lock; the benchmark uses its writer side (the
// paper's microbenchmark takes every lock as a writer lock).
var RW = register(&Algorithm{
	Name:      "rw",
	Symmetric: true, // never observes thread ids
	Doc:       "writer-preference reader-writer lock",
	Kind:      KindRW,
	DefaultSpec: func() *vprog.BarrierSpec {
		// The writer-claim/reader-entry handshake is a Dekker (store
		// buffering) pattern — writer: W(wflag);R(rcnt), reader:
		// W(rcnt);R(wflag) — so those four points need SC; release/
		// acquire alone admits a torn read (our own AMC found this).
		return vprog.NewSpec().
			Def("rw.wcas", vprog.SC).
			Def("rw.wait_readers", vprog.SC).
			Def("rw.wunlock", vprog.Rel).
			Def("rw.rwait", vprog.Rlx).
			Def("rw.rinc", vprog.SC).
			Def("rw.rcheck", vprog.SC).
			Def("rw.rbackoff", vprog.Rlx).
			Def("rw.runlock", vprog.Rel)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return &rwLock{
			spec:  spec,
			wflag: env.Var("rw.wflag", 0),
			rcnt:  env.Var("rw.rcnt", 0),
		}
	},
})

func (l *rwLock) Acquire(m vprog.Mem) uint64 {
	// Writer side: claim the writer flag, then drain readers.
	m.AwaitWhile(func() bool {
		_, ok := m.CmpXchg(l.wflag, 0, 1, l.spec.M("rw.wcas"))
		if !ok {
			m.Pause()
		}
		return !ok
	})
	m.AwaitWhile(func() bool {
		wait := m.Load(l.rcnt, l.spec.M("rw.wait_readers")) != 0
		if wait {
			m.Pause()
		}
		return wait
	})
	return 0
}

func (l *rwLock) Release(m vprog.Mem, _ uint64) {
	m.Store(l.wflag, 0, l.spec.M("rw.wunlock"))
}

// AcquireShared takes the lock for reading: optimistic reader count
// increment with writer-preference backoff.
func (l *rwLock) AcquireShared(m vprog.Mem) uint64 {
	for {
		m.AwaitWhile(func() bool {
			wait := m.Load(l.wflag, l.spec.M("rw.rwait")) == 1
			if wait {
				m.Pause()
			}
			return wait
		})
		m.FetchAdd(l.rcnt, 1, l.spec.M("rw.rinc"))
		if m.Load(l.wflag, l.spec.M("rw.rcheck")) == 0 {
			return 0
		}
		// A writer claimed the flag between our check and increment:
		// back off so the writer can drain.
		m.FetchAdd(l.rcnt, ^uint64(0), l.spec.M("rw.rbackoff"))
	}
}

// ReleaseShared drops a reader.
func (l *rwLock) ReleaseShared(m vprog.Mem, _ uint64) {
	m.FetchAdd(l.rcnt, ^uint64(0), l.spec.M("rw.runlock"))
}

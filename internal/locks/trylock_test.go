package locks_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/vprog"
)

// TestTryLocksVerify: every TryLock implementation satisfies the
// trylock contract (at least one winner on a free lock, mutual
// exclusion among winners) on every model.
func TestTryLocksVerify(t *testing.T) {
	for _, name := range []string{"spin", "ttas", "mutex", "recspin"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			alg := locks.ByName(name)
			if _, ok := alg.New(&vprog.VarSet{}, alg.DefaultSpec(), 2).(locks.TryLock); !ok {
				t.Fatalf("%s should implement TryLock", name)
			}
			for _, model := range mm.All() {
				res := core.New(model).Run(harness.TryClient(alg, alg.DefaultSpec(), 2))
				if !res.Ok() {
					t.Fatalf("%s under %s: %v\n%s", name, model.Name(), res, witness(res))
				}
			}
		})
	}
}

// TestTryThenAwaitPattern: the paper's await_while(!trylock) pattern is
// itself a valid lock acquisition — verify it end to end.
func TestTryThenAwaitPattern(t *testing.T) {
	alg := locks.ByName("mutex")
	p := &vprog.Program{
		Name: "client/await-trylock",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			lk := alg.New(env, alg.DefaultSpec(), 2).(locks.TryLock)
			x := env.Var("cs.counter", 0)
			worker := func(m vprog.Mem) {
				var tok uint64
				m.AwaitWhile(func() bool {
					var ok bool
					tok, ok = lk.TryAcquire(m)
					if !ok {
						m.Pause()
					}
					return !ok
				})
				v := m.Load(x, vprog.Rlx)
				m.Store(x, v+1, vprog.Rlx)
				lk.Release(m, tok)
			}
			final := func(load func(*vprog.Var) uint64) (bool, string) {
				if got := load(x); got != 2 {
					return false, "lost update"
				}
				return true, ""
			}
			return []vprog.ThreadFunc{worker, worker}, final
		},
	}
	res := core.New(mm.WMM).Run(p)
	if !res.Ok() {
		t.Fatalf("await_while(!trylock) client: %v\n%s", res, witness(res))
	}
}

// TestBoundedEffectViolationDiagnosed: an await whose failed iterations
// perform value-changing writes violates the Bounded-Effect principle;
// the exploration space becomes unbounded and the checker must degrade
// to a clean resource-limit error rather than hang (§2.2: the paper
// forbids such writes outright).
func TestBoundedEffectViolationDiagnosed(t *testing.T) {
	p := &vprog.Program{
		Name: "bad/await-with-writes",
		Build: func(env vprog.Env) ([]vprog.ThreadFunc, vprog.FinalCheck) {
			x := env.Var("x", 0)
			f := env.Var("f", 0)
			t0 := func(m vprog.Mem) {
				n := uint64(0)
				m.AwaitWhile(func() bool {
					n++
					m.Store(x, n, vprog.Rlx) // effect escapes the failed iteration
					return m.Load(f, vprog.Acq) == 0
				})
			}
			t1 := func(m vprog.Mem) {
				// t1 keeps reading x, making each of t0's writes observable
				// and the iterations never wasteful.
				for i := 0; i < 2; i++ {
					m.Load(x, vprog.Rlx)
				}
			}
			return []vprog.ThreadFunc{t0, t1}, nil
		},
	}
	c := core.New(mm.WMM)
	c.MaxGraphs = 20_000
	res := c.Run(p)
	if res.Verdict != core.Error {
		// Some explorations may converge if t1 finishes early; if so the
		// verdict must still be sound (OK or ATViolation, not a hang).
		t.Logf("bounded-effect violation explored without hitting limits: %v", res)
		return
	}
	t.Logf("diagnosed: %v", res.Err)
}

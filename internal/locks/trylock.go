package locks

import "repro/internal/vprog"

// TryLock is implemented by primitives that support non-blocking
// acquisition. The paper's Bounded-Effect discussion (§1.2) singles out
// the await_while(!trylock(&L)) pattern: a failed TryAcquire has no
// global side effect, so polling it in an await satisfies the
// principle.
type TryLock interface {
	Lock
	// TryAcquire attempts to take the lock without blocking; on success
	// it returns a token for Release.
	TryAcquire(m vprog.Mem) (token uint64, ok bool)
}

// TryAcquire implements TryLock for the CAS spinlock.
func (l *spinLock) TryAcquire(m vprog.Mem) (uint64, bool) {
	_, ok := m.CmpXchg(l.word, 0, 1, l.spec.M("spin.cas"))
	return 0, ok
}

// TryAcquire implements TryLock for the TTAS lock: a cheap relaxed test
// first, then the exchange.
func (l *ttasLock) TryAcquire(m vprog.Mem) (uint64, bool) {
	if m.Load(l.word, l.spec.M("ttas.poll")) == 1 {
		return 0, false
	}
	return 0, m.Xchg(l.word, 1, l.spec.M("ttas.xchg")) == 0
}

// TryAcquire implements TryLock for the 3-state futex mutex.
func (l *mutex3Lock) TryAcquire(m vprog.Mem) (uint64, bool) {
	_, ok := m.CmpXchg(l.state, 0, 1, l.spec.M("mutex.fast_cas"))
	return 0, ok
}

// TryAcquire implements TryLock for the recursive CAS lock (nested
// re-entry also succeeds, as for Acquire).
func (l *recLock) TryAcquire(m vprog.Mem) (uint64, bool) {
	me := uint64(m.TID()) + 1
	if m.Load(l.word, l.spec.M("recspin.check")) == me {
		return 1, true
	}
	_, ok := m.CmpXchg(l.word, 0, me, l.spec.M("recspin.cas"))
	return 0, ok
}

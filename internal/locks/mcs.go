package locks

import "repro/internal/vprog"

// The MCS family (Mellor-Crummey & Scott '91): each waiter enqueues a
// node into a tail pointer and spins on its own flag; the holder hands
// off through the successor pointer. Node/tail "pointers" are encoded
// as tid+1 (0 means nil), so the same code runs on every backend.

// mcsState is the shared state common to all MCS variants. Nodes are
// indexed 0..nnodes-1: per-thread for standalone locks, per-cluster
// when an MCS instance serves as a cohort lock's thread-oblivious
// global lock.
type mcsState struct {
	spec   modeSource
	tail   *vprog.Var
	next   []*vprog.Var // next[n]: successor of node n (node+1, 0 = none)
	locked []*vprog.Var // locked[n]: 1 while node n must wait
}

func newMCSState(env vprog.Env, spec modeSource, nnodes int, prefix string) *mcsState {
	return &mcsState{
		spec:   spec,
		tail:   env.Var(prefix+".tail", 0),
		next:   varArray(env, prefix+".next", nnodes, 0),
		locked: varArray(env, prefix+".locked", nnodes, 0),
	}
}

// tagMCSSym declares the thread-symmetry metadata of a standalone MCS
// instance whose nodes are indexed by thread id: tail and next hold
// node+1 "pointers" (i.e. tid+1, 0 = nil), and next[i]/locked[i] are
// thread i's replicas. Only the standalone constructors call this —
// cohort locks reuse mcsState with cluster-indexed nodes, where the
// node index is NOT a thread id and tagging would be wrong.
func tagMCSSym(st *mcsState, prefix string, nthreads int) *mcsState {
	st.tail.TagTid(0, 1)
	for i := 0; i < nthreads && i < len(st.next); i++ {
		st.next[i].TagOwner(i, prefix+".next").TagTid(0, 1)
		st.locked[i].TagOwner(i, prefix+".locked")
	}
	return st
}

// mcsPoints registers the canonical MCS barrier points under a prefix.
func mcsPoints(s *vprog.BarrierSpec, prefix string) *vprog.BarrierSpec {
	return s.
		Def(prefix+".init_locked", vprog.Rlx).
		Def(prefix+".init_next", vprog.Rlx).
		Def(prefix+".xchg_tail", vprog.AcqRel).
		Def(prefix+".set_prev_next", vprog.Rel).
		Def(prefix+".await_locked", vprog.Acq).
		Def(prefix+".read_next", vprog.Acq).
		Def(prefix+".cas_tail", vprog.Rel).
		Def(prefix+".await_next", vprog.Acq).
		Def(prefix+".handoff", vprog.Rel)
}

// acquireNode enqueues node and waits for ownership.
func (l *mcsState) acquireNode(m vprog.Mem, node int) {
	me := uint64(node) + 1
	m.Store(l.locked[node], 1, l.spec.M("mcs.init_locked"))
	m.Store(l.next[node], 0, l.spec.M("mcs.init_next"))
	prev := m.Xchg(l.tail, me, l.spec.M("mcs.xchg_tail"))
	if prev == 0 {
		return
	}
	m.Store(l.next[prev-1], me, l.spec.M("mcs.set_prev_next"))
	m.AwaitWhile(func() bool {
		wait := m.Load(l.locked[node], l.spec.M("mcs.await_locked")) == 1
		if wait {
			m.Pause()
		}
		return wait
	})
}

// releaseNode hands the lock to node's successor (or empties the queue).
func (l *mcsState) releaseNode(m vprog.Mem, node int) {
	me := uint64(node) + 1
	nxt := m.Load(l.next[node], l.spec.M("mcs.read_next"))
	if nxt == 0 {
		if _, ok := m.CmpXchg(l.tail, me, 0, l.spec.M("mcs.cas_tail")); ok {
			return // no successor: queue emptied
		}
		// A successor is enqueueing: wait for it to link itself.
		m.AwaitWhile(func() bool {
			nxt = m.Load(l.next[node], l.spec.M("mcs.await_next"))
			if nxt == 0 {
				m.Pause()
			}
			return nxt == 0
		})
	}
	m.Store(l.locked[nxt-1], 0, l.spec.M("mcs.handoff"))
}

// ---------------------------------------------------------------------
// mcs: the canonical MCS lock with VSync-style relaxed barriers.
// ---------------------------------------------------------------------

type mcsLock struct{ *mcsState }

// MCS is the canonical queue lock.
var MCS = register(&Algorithm{
	Name:      "mcs",
	Doc:       "MCS queue lock (Mellor-Crummey & Scott)",
	Kind:      KindMutex,
	Symmetric: true,
	DefaultSpec: func() *vprog.BarrierSpec {
		return mcsPoints(vprog.NewSpec(), "mcs")
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		return &mcsLock{tagMCSSym(newMCSState(env, spec, nthreads, "mcs"), "mcs", nthreads)}
	},
})

func (l *mcsLock) Acquire(m vprog.Mem) uint64 {
	l.acquireNode(m, m.TID())
	return 0
}

func (l *mcsLock) Release(m vprog.Mem, _ uint64) {
	l.releaseNode(m, m.TID())
}

func (l *mcsLock) Contended(m vprog.Mem, _ uint64) bool {
	me := uint64(m.TID()) + 1
	return m.Load(l.tail, vprog.Rlx) != me
}

// ---------------------------------------------------------------------
// certikosmcs: the CertiKOS kernel's MCS variant (Gu et al., OSDI'16):
// the same queue discipline written in the fence-based style of the
// verified C sources (plain accesses ordered by explicit fences), which
// gives the optimizer fence-elimination opportunities.
// ---------------------------------------------------------------------

type certikosLock struct{ *mcsState }

// CertiKOSMCS is the CertiKOS MCS lock.
var CertiKOSMCS = register(&Algorithm{
	Name:      "certikosmcs",
	Doc:       "CertiKOS MCS lock (fence-based style, Gu et al.)",
	Kind:      KindMutex,
	Symmetric: true,
	DefaultSpec: func() *vprog.BarrierSpec {
		return vprog.NewSpec().
			Def("certikos.init_locked", vprog.Rlx).
			Def("certikos.init_next", vprog.Rlx).
			DefFence("certikos.pre_xchg_fence", vprog.ModeNone).
			Def("certikos.xchg_tail", vprog.AcqRel).
			Def("certikos.set_prev_next", vprog.Rel).
			Def("certikos.await_locked", vprog.Acq).
			DefFence("certikos.post_await_fence", vprog.ModeNone).
			Def("certikos.read_next", vprog.Acq).
			Def("certikos.cas_tail", vprog.Rel).
			Def("certikos.await_next", vprog.Acq).
			DefFence("certikos.pre_handoff_fence", vprog.ModeNone).
			Def("certikos.handoff", vprog.Rel)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		return &certikosLock{tagMCSSym(newMCSState(env, spec, nthreads, "certikos"), "certikos", nthreads)}
	},
})

func (l *certikosLock) Acquire(m vprog.Mem) uint64 {
	t := m.TID()
	me := uint64(t) + 1
	m.Store(l.locked[t], 1, l.spec.M("certikos.init_locked"))
	m.Store(l.next[t], 0, l.spec.M("certikos.init_next"))
	m.Fence(l.spec.M("certikos.pre_xchg_fence"))
	prev := m.Xchg(l.tail, me, l.spec.M("certikos.xchg_tail"))
	if prev != 0 {
		m.Store(l.next[prev-1], me, l.spec.M("certikos.set_prev_next"))
		m.AwaitWhile(func() bool {
			wait := m.Load(l.locked[t], l.spec.M("certikos.await_locked")) == 1
			if wait {
				m.Pause()
			}
			return wait
		})
	}
	m.Fence(l.spec.M("certikos.post_await_fence"))
	return 0
}

func (l *certikosLock) Release(m vprog.Mem, _ uint64) {
	t := m.TID()
	me := uint64(t) + 1
	nxt := m.Load(l.next[t], l.spec.M("certikos.read_next"))
	if nxt == 0 {
		if _, ok := m.CmpXchg(l.tail, me, 0, l.spec.M("certikos.cas_tail")); ok {
			return
		}
		m.AwaitWhile(func() bool {
			nxt = m.Load(l.next[t], l.spec.M("certikos.await_next"))
			if nxt == 0 {
				m.Pause()
			}
			return nxt == 0
		})
	}
	m.Fence(l.spec.M("certikos.pre_handoff_fence"))
	m.Store(l.locked[nxt-1], 0, l.spec.M("certikos.handoff"))
}

// ---------------------------------------------------------------------
// dpdkmcs: the DPDK v20.05 MCS lock of §3.1 — including the bug.
// ---------------------------------------------------------------------

// dpdkLock reproduces rte_mcslock (Fig. 13). With buggy=true the store
// to prev->next is relaxed (the shipped code): the node can become
// visible through prev->next before the node's own initialization is,
// so the releaser's hand-off can be modification-ordered *before* the
// waiter's locked=1 store — and the waiter hangs (Figs. 14/16). The fix
// makes the store release and the releaser's read acquire (Fig. 15).
type dpdkLock struct {
	*mcsState
	prefix string
}

func dpdkSpec(prefix string, buggy bool) func() *vprog.BarrierSpec {
	return func() *vprog.BarrierSpec {
		setNext, readNext := vprog.Rel, vprog.Acq
		if buggy {
			setNext, readNext = vprog.Rlx, vprog.Rlx
		}
		return vprog.NewSpec().
			Def(prefix+".init_locked", vprog.Rlx).
			Def(prefix+".init_next", vprog.Rlx).
			Def(prefix+".xchg_tail", vprog.AcqRel).
			Def(prefix+".set_prev_next", setNext).
			// The explicit fence at Fig. 13 line 32 — which §3.1 notes is
			// useless and removable.
			DefFence(prefix+".pre_await_fence", vprog.AcqRel).
			Def(prefix+".await_locked", vprog.Acq).
			Def(prefix+".read_next", readNext).
			Def(prefix+".await_next", readNext).
			Def(prefix+".cas_tail", vprog.Rel).
			Def(prefix+".handoff", vprog.Rel)
	}
}

// DPDKMCSBuggy is the shipped DPDK v20.05 lock with the missing release
// barrier; AMC finds the await-termination violation of Fig. 14.
var DPDKMCSBuggy = register(&Algorithm{
	Name:        "dpdkmcs-buggy",
	Doc:         "DPDK v20.05 rte_mcslock with the §3.1 missing-release bug",
	Kind:        KindMutex,
	Buggy:       true,
	Symmetric:   true,
	DefaultSpec: dpdkSpec("dpdkbug", true),
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		return &dpdkLock{mcsState: tagMCSSym(newMCSState(env, spec, nthreads, "dpdkbug"), "dpdkbug", nthreads), prefix: "dpdkbug"}
	},
})

// DPDKMCS is the fixed DPDK lock (release publication, acquire read).
var DPDKMCS = register(&Algorithm{
	Name:        "dpdkmcs",
	Doc:         "DPDK rte_mcslock with the §3.1 fix applied",
	Kind:        KindMutex,
	Symmetric:   true,
	DefaultSpec: dpdkSpec("dpdk", false),
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		return &dpdkLock{mcsState: tagMCSSym(newMCSState(env, spec, nthreads, "dpdk"), "dpdk", nthreads), prefix: "dpdk"}
	},
})

func (l *dpdkLock) Acquire(m vprog.Mem) uint64 {
	t := m.TID()
	me := uint64(t) + 1
	m.Store(l.locked[t], 1, l.spec.M(l.prefix+".init_locked"))
	m.Store(l.next[t], 0, l.spec.M(l.prefix+".init_next"))
	prev := m.Xchg(l.tail, me, l.spec.M(l.prefix+".xchg_tail"))
	if prev == 0 {
		return 0
	}
	m.Store(l.next[prev-1], me, l.spec.M(l.prefix+".set_prev_next"))
	m.Fence(l.spec.M(l.prefix + ".pre_await_fence"))
	m.AwaitWhile(func() bool {
		wait := m.Load(l.locked[t], l.spec.M(l.prefix+".await_locked")) == 1
		if wait {
			m.Pause()
		}
		return wait
	})
	return 0
}

func (l *dpdkLock) Release(m vprog.Mem, _ uint64) {
	t := m.TID()
	me := uint64(t) + 1
	nxt := m.Load(l.next[t], l.spec.M(l.prefix+".read_next"))
	if nxt == 0 {
		if _, ok := m.CmpXchg(l.tail, me, 0, l.spec.M(l.prefix+".cas_tail")); ok {
			return
		}
		m.AwaitWhile(func() bool {
			nxt = m.Load(l.next[t], l.spec.M(l.prefix+".await_next"))
			if nxt == 0 {
				m.Pause()
			}
			return nxt == 0
		})
	}
	m.Store(l.locked[nxt-1], 0, l.spec.M(l.prefix+".handoff"))
}

// ---------------------------------------------------------------------
// huaweimcs: the internal-product MCS lock of §3.2 — including the bug.
// ---------------------------------------------------------------------

// huaweiLock reproduces Fig. 18: an x86-ported MCS lock written with
// compiler builtins and explicit fences. With buggy=true the acquire
// fence after the spin loop is missing: the critical section can read
// stale data even though the hand-off was observed, losing updates
// (Fig. 19). The fix adds the acquire barrier at Fig. 18 line 20.
type huaweiLock struct {
	*mcsState
	prefix string
}

func huaweiSpec(prefix string, buggy bool) func() *vprog.BarrierSpec {
	return func() *vprog.BarrierSpec {
		post := vprog.Acq
		if buggy {
			post = vprog.ModeNone // the missing smp_mb() of line 20
		}
		return vprog.NewSpec().
			Def(prefix+".init_next", vprog.Rlx).
			Def(prefix+".init_spin", vprog.Rlx).
			// smp_wmb() at line 10, treated as an SC fence per §3.2.
			DefFence(prefix+".wmb", vprog.SC).
			// __sync_lock_test_and_set has acquire semantics.
			Def(prefix+".xchg_tail", vprog.Acq).
			Def(prefix+".set_prev_next", vprog.Rlx).
			// smp_mb() at line 18 (§3.2 notes it is redundant).
			DefFence(prefix+".mb_acquire", vprog.SC).
			Def(prefix+".await_spin", vprog.Rlx).
			DefFence(prefix+".post_await_fence", post).
			Def(prefix+".read_next", vprog.Rlx).
			// __sync_val_compare_and_swap has SC semantics.
			Def(prefix+".cas_tail", vprog.SC).
			Def(prefix+".await_next", vprog.Rlx).
			// smp_mb() at line 37.
			DefFence(prefix+".mb_release", vprog.SC).
			Def(prefix+".handoff", vprog.Rlx)
	}
}

// HuaweiMCSBuggy is the shipped lock with the missing acquire barrier;
// AMC finds the lost-update safety violation of Fig. 19.
var HuaweiMCSBuggy = register(&Algorithm{
	Name:        "huaweimcs-buggy",
	Doc:         "internal-product MCS lock with the §3.2 missing-acquire bug",
	Kind:        KindMutex,
	Buggy:       true,
	Symmetric:   true,
	DefaultSpec: huaweiSpec("hwbug", true),
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		return &huaweiLock{mcsState: tagMCSSym(newMCSState(env, spec, nthreads, "hwbug"), "hwbug", nthreads), prefix: "hwbug"}
	},
})

// HuaweiMCS is the fixed lock (acquire barrier after the spin loop).
var HuaweiMCS = register(&Algorithm{
	Name:        "huaweimcs",
	Doc:         "internal-product MCS lock with the §3.2 fix applied",
	Kind:        KindMutex,
	Symmetric:   true,
	DefaultSpec: huaweiSpec("hw", false),
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) Lock {
		return &huaweiLock{mcsState: tagMCSSym(newMCSState(env, spec, nthreads, "hw"), "hw", nthreads), prefix: "hw"}
	},
})

func (l *huaweiLock) Acquire(m vprog.Mem) uint64 {
	t := m.TID()
	me := uint64(t) + 1
	m.Store(l.next[t], 0, l.spec.M(l.prefix+".init_next"))
	m.Store(l.locked[t], 1, l.spec.M(l.prefix+".init_spin"))
	m.Fence(l.spec.M(l.prefix + ".wmb"))
	prev := m.Xchg(l.tail, me, l.spec.M(l.prefix+".xchg_tail"))
	if prev == 0 {
		return 0
	}
	m.Store(l.next[prev-1], me, l.spec.M(l.prefix+".set_prev_next"))
	m.Fence(l.spec.M(l.prefix + ".mb_acquire"))
	m.AwaitWhile(func() bool {
		wait := m.Load(l.locked[t], l.spec.M(l.prefix+".await_spin")) == 1
		if wait {
			m.Pause()
		}
		return wait
	})
	m.Fence(l.spec.M(l.prefix + ".post_await_fence"))
	return 0
}

func (l *huaweiLock) Release(m vprog.Mem, _ uint64) {
	t := m.TID()
	me := uint64(t) + 1
	nxt := m.Load(l.next[t], l.spec.M(l.prefix+".read_next"))
	if nxt == 0 {
		if _, ok := m.CmpXchg(l.tail, me, 0, l.spec.M(l.prefix+".cas_tail")); ok {
			return
		}
		m.AwaitWhile(func() bool {
			nxt = m.Load(l.next[t], l.spec.M(l.prefix+".await_next"))
			if nxt == 0 {
				m.Pause()
			}
			return nxt == 0
		})
	}
	m.Fence(l.spec.M(l.prefix + ".mb_release"))
	m.Store(l.locked[nxt-1], 0, l.spec.M(l.prefix+".handoff"))
}

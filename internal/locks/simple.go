package locks

import "repro/internal/vprog"

// ---------------------------------------------------------------------
// spin: the plain CAS (test-and-set) lock.
// ---------------------------------------------------------------------

type spinLock struct {
	spec modeSource
	word *vprog.Var
}

// Spin is the compare-and-swap spinlock: acquire retries CAS(0→1) in an
// await loop (failed CASes have no effect, satisfying Bounded-Effect).
var Spin = register(&Algorithm{
	Name:      "spin",
	Doc:       "CAS (test-and-set) spinlock",
	Kind:      KindMutex,
	Symmetric: true, // never observes thread ids
	DefaultSpec: func() *vprog.BarrierSpec {
		return vprog.NewSpec().
			Def("spin.cas", vprog.Acq).
			Def("spin.unlock", vprog.Rel)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return &spinLock{spec: spec, word: env.Var("spin.word", 0)}
	},
})

func (l *spinLock) Acquire(m vprog.Mem) uint64 {
	m.AwaitWhile(func() bool {
		_, ok := m.CmpXchg(l.word, 0, 1, l.spec.M("spin.cas"))
		if !ok {
			m.Pause()
		}
		return !ok
	})
	return 0
}

func (l *spinLock) Release(m vprog.Mem, _ uint64) {
	m.Store(l.word, 0, l.spec.M("spin.unlock"))
}

// ---------------------------------------------------------------------
// ttas: test-and-test-and-set (the paper's Fig. 3).
// ---------------------------------------------------------------------

type ttasLock struct {
	spec modeSource
	word *vprog.Var
}

// ttasPoints registers the TTAS barrier points under a prefix.
func ttasPoints(s *vprog.BarrierSpec, prefix string) *vprog.BarrierSpec {
	return s.
		Def(prefix+".poll", vprog.Rlx).
		Def(prefix+".xchg", vprog.Acq).
		Def(prefix+".unlock", vprog.Rel)
}

func newTTASState(env vprog.Env, spec modeSource, prefix string) *ttasLock {
	return &ttasLock{spec: spec, word: env.Var(prefix+".word", 0)}
}

// TTAS is the test-and-test-and-set lock of Fig. 3: an inner await
// polls until the lock looks free, then the outer loop attempts the
// exchange.
var TTAS = register(&Algorithm{
	Name:      "ttas",
	Doc:       "test-and-test-and-set lock (Herlihy & Shavit)",
	Kind:      KindMutex,
	Symmetric: true, // never observes thread ids
	DefaultSpec: func() *vprog.BarrierSpec {
		return ttasPoints(vprog.NewSpec(), "ttas")
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return newTTASState(env, spec, "ttas")
	},
})

func (l *ttasLock) Acquire(m vprog.Mem) uint64 {
	for {
		m.AwaitWhile(func() bool {
			busy := m.Load(l.word, l.spec.M("ttas.poll")) == 1
			if busy {
				m.Pause()
			}
			return busy
		})
		if m.Xchg(l.word, 1, l.spec.M("ttas.xchg")) == 0 {
			return 0
		}
	}
}

func (l *ttasLock) Release(m vprog.Mem, _ uint64) {
	m.Store(l.word, 0, l.spec.M("ttas.unlock"))
}

// ---------------------------------------------------------------------
// ticket: the classic FIFO ticket lock.
// ---------------------------------------------------------------------

type ticketLock struct {
	spec  modeSource
	next  *vprog.Var
	owner *vprog.Var
}

// ticketPoints registers the ticket barrier points under a prefix.
func ticketPoints(s *vprog.BarrierSpec, prefix string) *vprog.BarrierSpec {
	return s.
		Def(prefix+".faa", vprog.Rlx).
		Def(prefix+".await", vprog.Acq).
		Def(prefix+".unlock", vprog.Rel)
}

func newTicketState(env vprog.Env, spec modeSource, prefix string) *ticketLock {
	return &ticketLock{
		spec:  spec,
		next:  env.Var(prefix+".next", 0),
		owner: env.Var(prefix+".owner", 0),
	}
}

// Ticket is the Linux-style ticket lock: a fetch-and-add draws a
// ticket, the holder hands the grant counter to the next ticket.
var Ticket = register(&Algorithm{
	Name:      "ticket",
	Doc:       "FIFO ticket lock (Linux ticketlock)",
	Kind:      KindMutex,
	Symmetric: true, // tickets, not thread ids
	DefaultSpec: func() *vprog.BarrierSpec {
		return ticketPoints(vprog.NewSpec(), "ticket")
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return newTicketState(env, spec, "ticket")
	},
})

func (l *ticketLock) Acquire(m vprog.Mem) uint64 {
	t := m.FetchAdd(l.next, 1, l.spec.M("ticket.faa"))
	m.AwaitWhile(func() bool {
		wait := m.Load(l.owner, l.spec.M("ticket.await")) != t
		if wait {
			m.Pause()
		}
		return wait
	})
	return t
}

func (l *ticketLock) Release(m vprog.Mem, token uint64) {
	m.Store(l.owner, token+1, l.spec.M("ticket.unlock"))
}

func (l *ticketLock) Contended(m vprog.Mem, token uint64) bool {
	return m.Load(l.next, vprog.Rlx) > token+1
}

// ---------------------------------------------------------------------
// recspin: CAS lock with recursive (re-entrant) acquisition.
// ---------------------------------------------------------------------

type recLock struct {
	spec modeSource
	word *vprog.Var // 0 free, tid+1 held
}

// RecSpin is the recursive CAS lock: the owner may re-acquire; the
// token distinguishes the outermost acquisition from nested ones.
var RecSpin = register(&Algorithm{
	Name:      "recspin",
	Doc:       "recursive CAS lock (owner re-entry by thread id)",
	Kind:      KindMutex,
	Symmetric: true, // the word's tid+1 encoding is tagged below
	DefaultSpec: func() *vprog.BarrierSpec {
		return vprog.NewSpec().
			Def("recspin.check", vprog.Rlx).
			Def("recspin.cas", vprog.Acq).
			Def("recspin.unlock", vprog.Rel)
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return &recLock{spec: spec, word: env.Var("recspin.word", 0).TagTid(0, 1)}
	},
})

func (l *recLock) Acquire(m vprog.Mem) uint64 {
	me := uint64(m.TID()) + 1
	// Only the owner can observe its own id here, so a relaxed read is
	// safe: it is either our own store or a foreign value ≠ me.
	if m.Load(l.word, l.spec.M("recspin.check")) == me {
		return 1 // nested acquisition
	}
	m.AwaitWhile(func() bool {
		_, ok := m.CmpXchg(l.word, 0, me, l.spec.M("recspin.cas"))
		if !ok {
			m.Pause()
		}
		return !ok
	})
	return 0
}

func (l *recLock) Release(m vprog.Mem, token uint64) {
	if token == 1 {
		return // nested release: still held by this thread
	}
	m.Store(l.word, 0, l.spec.M("recspin.unlock"))
}

// ---------------------------------------------------------------------
// twa: ticket lock augmented with a waiting array (Dice & Kogan '19).
// ---------------------------------------------------------------------

// twaSlots is the waiting-array size; collisions are safe (waiters
// re-check the grant counter after each array wake-up).
const twaSlots = 4

type twaLock struct {
	spec  modeSource
	next  *vprog.Var
	grant *vprog.Var
	wa    []*vprog.Var
}

// twaPoints registers the TWA barrier points under a prefix.
func twaPoints(s *vprog.BarrierSpec, prefix string) *vprog.BarrierSpec {
	return s.
		Def(prefix+".faa", vprog.Rlx).
		Def(prefix+".read_grant", vprog.Rlx).
		Def(prefix+".await_slot", vprog.Rlx).
		Def(prefix+".await_grant", vprog.Acq).
		Def(prefix+".publish_slot", vprog.Rel).
		Def(prefix+".unlock", vprog.Rel)
}

func newTWAState(env vprog.Env, spec modeSource, prefix string) *twaLock {
	return &twaLock{
		spec:  spec,
		next:  env.Var(prefix+".next", 0),
		grant: env.Var(prefix+".grant", 0),
		wa:    varArray(env, prefix+".wa", twaSlots, 0),
	}
}

// TWA is the ticket lock with a waiting array: threads far from their
// turn spin on a hashed array slot instead of the hot grant counter;
// the releaser publishes progress to both.
var TWA = register(&Algorithm{
	Name:      "twa",
	Doc:       "ticket lock augmented with a waiting array (Dice & Kogan)",
	Kind:      KindMutex,
	Symmetric: true, // tickets, not thread ids
	DefaultSpec: func() *vprog.BarrierSpec {
		return twaPoints(vprog.NewSpec(), "twa")
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, _ int) Lock {
		return newTWAState(env, spec, "twa")
	},
})

func (l *twaLock) Acquire(m vprog.Mem) uint64 {
	t := m.FetchAdd(l.next, 1, l.spec.M("twa.faa"))
	for {
		cur := m.Load(l.grant, l.spec.M("twa.read_grant"))
		if cur == t {
			break
		}
		if t-cur >= 2 {
			// Long wait: park on the waiting array. Slot values are
			// monotone (tickets hitting one slot differ by twaSlots), so
			// wait until the slot reaches our ticket, then re-check.
			slot := l.wa[t%twaSlots]
			m.AwaitWhile(func() bool {
				wait := m.Load(slot, l.spec.M("twa.await_slot")) < t
				if wait {
					m.Pause()
				}
				return wait
			})
			continue
		}
		// Next in line: spin on the grant counter itself.
		m.AwaitWhile(func() bool {
			wait := m.Load(l.grant, l.spec.M("twa.await_grant")) != t
			if wait {
				m.Pause()
			}
			return wait
		})
		break
	}
	// Synchronize with the releaser (the paths above may have completed
	// on a relaxed read).
	m.AwaitWhile(func() bool {
		return m.Load(l.grant, l.spec.M("twa.await_grant")) != t
	})
	return t
}

func (l *twaLock) Release(m vprog.Mem, token uint64) {
	g := token + 1
	m.Store(l.grant, g, l.spec.M("twa.unlock"))
	// Publish progress to the waiting array: the waiter holding ticket g
	// parked on slot g%twaSlots awaiting a value >= g.
	m.Store(l.wa[g%twaSlots], g, l.spec.M("twa.publish_slot"))
}

func (l *twaLock) Contended(m vprog.Mem, token uint64) bool {
	return m.Load(l.next, vprog.Rlx) > token+1
}

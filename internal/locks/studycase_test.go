package locks_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
)

// TestDPDKMCSBug reproduces §3.1: the shipped DPDK v20.05 MCS lock
// publishes prev->next with a relaxed store, so the releaser's hand-off
// can be modification-ordered before the waiter's own initialization —
// the waiter (Alice) hangs forever. AMC reports the await-termination
// violation of Fig. 14; the same code verifies under SC and TSO (the
// bug needs a weak model), and the Fig. 15 fix verifies everywhere.
func TestDPDKMCSBug(t *testing.T) {
	buggy := locks.ByName("dpdkmcs-buggy")
	fixed := locks.ByName("dpdkmcs")
	if buggy == nil || fixed == nil {
		t.Fatal("dpdk algorithms not registered")
	}

	res := core.New(mm.WMM).Run(harness.HandoffClient(buggy, buggy.DefaultSpec()))
	if res.Verdict != core.ATViolation {
		t.Fatalf("buggy DPDK lock on WMM: want AT violation, got %v", res)
	}
	if res.Witness == nil || !strings.Contains(res.Witness.Render(), "rf: ⊥") {
		t.Error("AT witness should show the missing rf-edge")
	}

	for _, model := range []mm.Model{mm.SC, mm.TSO} {
		if res := core.New(model).Run(harness.HandoffClient(buggy, buggy.DefaultSpec())); !res.Ok() {
			t.Errorf("buggy DPDK lock must verify under %s (bug needs weak memory), got %v", model.Name(), res)
		}
	}
	for _, model := range mm.All() {
		if res := core.New(model).Run(harness.HandoffClient(fixed, fixed.DefaultSpec())); !res.Ok() {
			t.Errorf("fixed DPDK lock must verify under %s, got %v", model.Name(), res)
		}
	}
}

// TestHuaweiMCSBug reproduces §3.2: the missing acquire barrier after
// the spin loop lets the new holder's critical section read stale data
// even though the hand-off was observed — an increment is lost
// (Fig. 19). The fix (acquire fence at line 20) verifies.
func TestHuaweiMCSBug(t *testing.T) {
	buggy := locks.ByName("huaweimcs-buggy")
	fixed := locks.ByName("huaweimcs")
	if buggy == nil || fixed == nil {
		t.Fatal("huawei algorithms not registered")
	}

	res := core.New(mm.WMM).Run(harness.HandoffClient(buggy, buggy.DefaultSpec()))
	if res.Verdict != core.SafetyViolation {
		t.Fatalf("buggy Huawei lock on WMM: want safety violation (lost update), got %v", res)
	}
	if !strings.Contains(res.Message, "lost update") {
		t.Errorf("violation should be the lost update, got %q", res.Message)
	}

	// On SC the bug cannot manifest.
	if res := core.New(mm.SC).Run(harness.HandoffClient(buggy, buggy.DefaultSpec())); !res.Ok() {
		t.Errorf("buggy Huawei lock must verify under SC, got %v", res)
	}
	for _, model := range mm.All() {
		if res := core.New(model).Run(harness.HandoffClient(fixed, fixed.DefaultSpec())); !res.Ok() {
			t.Errorf("fixed Huawei lock must verify under %s, got %v", model.Name(), res)
		}
	}
}

// TestRWClient verifies the reader-writer lock against torn reads with
// a concurrent writer and reader.
func TestRWClient(t *testing.T) {
	alg := locks.ByName("rw")
	p := harness.RWClient(alg, alg.DefaultSpec(), 1, 1, 1)
	if res := core.New(mm.WMM).Run(p); !res.Ok() {
		t.Fatalf("rw lock failed reader/writer verification: %v\n%s", res, witness(res))
	}
	// Two writers and a reader exercise the writer hand-off as well.
	p = harness.RWClient(alg, alg.DefaultSpec(), 2, 1, 1)
	if res := core.New(mm.WMM).Run(p); !res.Ok() {
		t.Fatalf("rw lock failed 2w1r verification: %v\n%s", res, witness(res))
	}
}

// TestRecursiveClient verifies re-entrant acquisition of the recursive
// CAS lock (a plain CAS lock would deadlock this client).
func TestRecursiveClient(t *testing.T) {
	alg := locks.ByName("recspin")
	p := harness.RecursiveClient(alg, alg.DefaultSpec(), 2)
	if res := core.New(mm.WMM).Run(p); !res.Ok() {
		t.Fatalf("recursive lock failed re-entrant verification: %v\n%s", res, witness(res))
	}
}

// TestTwoIterationClients re-verifies the core queue locks with two
// critical sections per thread, exercising node recycling (CLH node
// adoption, array slot wrap-around).
func TestTwoIterationClients(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-iteration verification is slow")
	}
	for _, name := range []string{"spin", "ttas", "ticket", "mcs", "clh", "array", "mutex", "semaphore"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			alg := locks.ByName(name)
			p := harness.MutexClient(alg, alg.DefaultSpec(), 2, 2)
			res := core.New(mm.WMM).Run(p)
			if !res.Ok() {
				t.Fatalf("%s with 2 iterations: %v\n%s", name, res, witness(res))
			}
			t.Logf("%s: %v", name, res)
		})
	}
}

// TestThreeThreadClients verifies the queue path of the queue locks
// (three contenders force an MCS/qspinlock queue with a real
// predecessor chain).
func TestThreeThreadClients(t *testing.T) {
	if testing.Short() {
		t.Skip("three-thread verification is slow")
	}
	// twa is omitted: its waiting-array path makes three-thread
	// exploration very large (it is still verified with two threads and
	// two iterations above).
	for _, name := range []string{"mcs", "qspin", "ticket", "clh", "spin", "array"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			alg := locks.ByName(name)
			p := harness.MutexClient(alg, alg.DefaultSpec(), 3, 1)
			res := core.New(mm.WMM).Run(p)
			if !res.Ok() {
				t.Fatalf("%s with 3 threads: %v\n%s", name, res, witness(res))
			}
			t.Logf("%s: %v", name, res)
		})
	}
}

package locks

import "repro/internal/vprog"

// Lock cohorting (Dice, Marathe & Shavit, '15): a NUMA-aware lock built
// from a thread-oblivious global lock G and per-cluster local locks L.
// A thread first acquires its cluster's local lock; if its cohort
// already owns the global lock (a peer passed it along), it enters the
// critical section immediately. On release, if a cohort peer is waiting
// locally and the pass budget is not exhausted, ownership of the global
// lock stays with the cluster and only the local lock is handed over —
// keeping the lock (and the data it protects) on one socket.
//
// The paper benchmarks three cohort combinations (Table 5):
// c-TKT-MCS (global ticket, local MCS), c-TTAS-MCS (global TTAS, local
// MCS), and c-MCS-TWA (global MCS with per-cluster nodes, local TWA).

// cohortClusters mirrors the two-socket evaluation platforms.
const cohortClusters = 2

// cohortPasses bounds consecutive local hand-offs (fairness budget).
const cohortPasses = 16

// tokLock is the node-oblivious view of a local lock instance used by
// the cohort framework: it must report contention for the pass decision.
type tokLock interface {
	Lock
	Contender
}

type cohortLock struct {
	spec   modeSource
	global Lock
	gNode  []int // global-lock node per cluster (for MCS globals), -1 otherwise
	locals []tokLock
	owned  []*vprog.Var // owned[c]: 1 while cluster c holds the global lock
	gtok   []*vprog.Var // gtok[c]: global token held by cluster c
	passes []*vprog.Var // passes[c]: consecutive local hand-offs
	nth    int
}

func newCohort(env vprog.Env, spec modeSource, prefix string, nth int,
	global Lock, gNode []int, locals []tokLock) *cohortLock {
	return &cohortLock{
		spec:   spec,
		global: global,
		gNode:  gNode,
		locals: locals,
		owned:  varArray(env, prefix+".owned", cohortClusters, 0),
		gtok:   varArray(env, prefix+".gtok", cohortClusters, 0),
		passes: varArray(env, prefix+".passes", cohortClusters, 0),
		nth:    nth,
	}
}

// cohortPoints registers the framework's own barrier points. The
// cluster-shared state (owned, gtok, passes) is only touched while
// holding the local lock, whose hand-off provides the ordering, so the
// maximally-relaxed assignment is fully relaxed.
func cohortPoints(s *vprog.BarrierSpec, prefix string) *vprog.BarrierSpec {
	return s.
		Def(prefix+".owned_read", vprog.Rlx).
		Def(prefix+".owned_set", vprog.Rlx).
		Def(prefix+".owned_clear", vprog.Rlx).
		Def(prefix+".gtok_write", vprog.Rlx).
		Def(prefix+".gtok_read", vprog.Rlx).
		Def(prefix+".pass_read", vprog.Rlx).
		Def(prefix+".pass_write", vprog.Rlx)
}

func (l *cohortLock) cluster(tid int) int { return clusterOf(tid, l.nth, cohortClusters) }

// mcsGlobal is the cluster-node adapter for an MCS global lock.
type mcsGlobal struct{ st *mcsState }

func (g *mcsGlobal) Acquire(m vprog.Mem) uint64 {
	panic("cohort: MCS global must be acquired through acquireNode")
}
func (g *mcsGlobal) Release(m vprog.Mem, token uint64) {
	g.st.releaseNode(m, int(token))
}

func (l *cohortLock) Acquire(m vprog.Mem) uint64 {
	c := l.cluster(m.TID())
	ltok := l.locals[c].Acquire(m)
	if m.Load(l.owned[c], l.spec.M("cohort.owned_read")) == 1 {
		// A cohort peer passed us the global lock along with the local
		// hand-off.
		return ltok<<1 | 1
	}
	var gtok uint64
	if g, ok := l.global.(*mcsGlobal); ok {
		g.st.acquireNode(m, l.gNode[c])
		gtok = uint64(l.gNode[c])
	} else {
		gtok = l.global.Acquire(m)
	}
	m.Store(l.gtok[c], gtok, l.spec.M("cohort.gtok_write"))
	m.Store(l.owned[c], 1, l.spec.M("cohort.owned_set"))
	return ltok << 1
}

func (l *cohortLock) Release(m vprog.Mem, token uint64) {
	c := l.cluster(m.TID())
	ltok := token >> 1
	if l.locals[c].Contended(m, ltok) {
		// A cohort peer is queued locally: consider passing the global
		// lock within the cluster.
		p := m.Load(l.passes[c], l.spec.M("cohort.pass_read"))
		if p < cohortPasses {
			m.Store(l.passes[c], p+1, l.spec.M("cohort.pass_write"))
			l.locals[c].Release(m, ltok) // owned[c] stays 1
			return
		}
	}
	m.Store(l.passes[c], 0, l.spec.M("cohort.pass_write"))
	m.Store(l.owned[c], 0, l.spec.M("cohort.owned_clear"))
	gtok := m.Load(l.gtok[c], l.spec.M("cohort.gtok_read"))
	l.global.Release(m, gtok)
	l.locals[c].Release(m, ltok)
}

// localMCSSet builds one local MCS lock per cluster.
func localMCSSet(env vprog.Env, spec *vprog.BarrierSpec, nth int, prefix string) []tokLock {
	out := make([]tokLock, cohortClusters)
	for c := range out {
		p := prefix + []string{".l0", ".l1"}[c]
		st := newMCSState(env, &prefixedSpec{spec: spec, prefix: p}, nth, p)
		out[c] = &mcsLock{st}
	}
	return out
}

// CohortTktMCS is c-TKT-MCS: global ticket lock, local MCS locks.
var CohortTktMCS = register(&Algorithm{
	Name: "cmcsticket",
	Doc:  "cohort lock: global ticket, local MCS (c-TKT-MCS, Dice et al.)",
	Kind: KindMutex,
	DefaultSpec: func() *vprog.BarrierSpec {
		s := vprog.NewSpec()
		ticketPoints(s, "cmcstkt.g")
		mcsPoints(s, "cmcstkt.l0")
		mcsPoints(s, "cmcstkt.l1")
		return cohortPoints(s, "cmcstkt")
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nth int) Lock {
		g := newTicketState(env, &prefixedSpec{spec: spec, prefix: "cmcstkt.g"}, "cmcstkt.g")
		return newCohort(env, &prefixedSpec{spec: spec, prefix: "cmcstkt"}, "cmcstkt", nth,
			g, nil, localMCSSet(env, spec, nth, "cmcstkt"))
	},
})

// CohortTTASMCS is c-TTAS-MCS: global TTAS lock, local MCS locks.
var CohortTTASMCS = register(&Algorithm{
	Name: "cmcsttas",
	Doc:  "cohort lock: global TTAS, local MCS (c-TTAS-MCS, Dice et al.)",
	Kind: KindMutex,
	DefaultSpec: func() *vprog.BarrierSpec {
		s := vprog.NewSpec()
		ttasPoints(s, "cmcsttas.g")
		mcsPoints(s, "cmcsttas.l0")
		mcsPoints(s, "cmcsttas.l1")
		return cohortPoints(s, "cmcsttas")
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nth int) Lock {
		g := newTTASState(env, &prefixedSpec{spec: spec, prefix: "cmcsttas.g"}, "cmcsttas.g")
		return newCohort(env, &prefixedSpec{spec: spec, prefix: "cmcsttas"}, "cmcsttas", nth,
			g, nil, localMCSSet(env, spec, nth, "cmcsttas"))
	},
})

// CohortMCSTWA is c-MCS-TWA: global MCS (per-cluster nodes), local TWA.
var CohortMCSTWA = register(&Algorithm{
	Name: "ctwamcs",
	Doc:  "cohort lock: global MCS, local TWA (c-MCS-TWA)",
	Kind: KindMutex,
	DefaultSpec: func() *vprog.BarrierSpec {
		s := vprog.NewSpec()
		mcsPoints(s, "ctwamcs.g")
		twaPoints(s, "ctwamcs.l0")
		twaPoints(s, "ctwamcs.l1")
		return cohortPoints(s, "ctwamcs")
	},
	New: func(env vprog.Env, spec *vprog.BarrierSpec, nth int) Lock {
		gst := newMCSState(env, &prefixedSpec{spec: spec, prefix: "ctwamcs.g"}, cohortClusters, "ctwamcs.g")
		locals := make([]tokLock, cohortClusters)
		gNode := make([]int, cohortClusters)
		for c := range locals {
			p := "ctwamcs" + []string{".l0", ".l1"}[c]
			locals[c] = newTWAState(env, &prefixedSpec{spec: spec, prefix: p}, p)
			gNode[c] = c
		}
		return newCohort(env, &prefixedSpec{spec: spec, prefix: "ctwamcs"}, "ctwamcs", nth,
			&mcsGlobal{gst}, gNode, locals)
	},
})

package structs

import (
	"fmt"

	"repro/internal/vprog"
	"repro/internal/workload"
)

// dummyID is the Michael–Scott queue's pre-allocated dummy node: head
// and tail start on it. The value decodes to thread -1 under the node
// tagging, so the symmetry folder leaves it alone.
const dummyID = 1

// msqueueWorkload is the Michael–Scott two-lock-free queue: the first
// producers threads each enqueue iters nodes (with the classic
// link-then-swing CAS pair, helping a lagging tail), the remaining
// consumer threads split the matching number of dequeue attempts. The
// FIFO spec demands conservation (recorded dequeues plus the residual
// chain equal the multiset of enqueues, nothing duplicated or lost)
// and per-producer order: any one consumer's dequeues — and the
// residual chain — observe each producer's elements in enqueue order.
// A consumer may legitimately observe an empty queue (weak memory can
// hide a linked node from an unsynchronized reader), so sawEmpty is an
// allowed outcome here, unlike the stack.
//
// The retry loops are awaits (AwaitDo). Their failed iterations never
// plain-store at all — linking is a CAS — and the tail-helping CAS a
// failed iteration may perform is exactly the value-changing-update
// case the AwaitDo contract covers: if it succeeded, the next
// iteration's reads cannot repeat this one's rf vector (atomicity
// forbids two mo-adjacent updates of one rf source), so the wasteful
// filter never prunes an iteration that helped.
type msqueueWorkload struct {
	iters         int
	badLink       bool // seeded bug: enqueue links with a plain store, not CAS
	producersOnly bool // every thread produces (the shape that races the bad link)
	bounded       bool // differential oracle: pigeonhole-bounded plain retry loops
}

// MSQueue returns the Michael–Scott queue workload: ceil(n/2)
// producers, the rest consumers, iters enqueues per producer.
func MSQueue(iters int) workload.Workload { return &msqueueWorkload{iters: iters} }

// MSQueueBounded returns the bounded-loop twin: the same queue with its
// CAS retries encoded as pigeonhole-bounded plain loops instead of
// awaits — the differential oracle for the await reduction.
func MSQueueBounded(iters int) workload.Workload {
	return &msqueueWorkload{iters: iters, bounded: true}
}

// MSQueueBadLink returns the seeded-bug variant: every thread is a
// producer and the enqueue links its node with a plain store instead
// of a CAS, so two racing producers overwrite one link and lose an
// element — caught by the conservation spec.
func MSQueueBadLink() workload.Workload {
	return &msqueueWorkload{iters: 1, badLink: true, producersOnly: true}
}

// MSQueueBadLinkBounded is the bounded-loop twin of MSQueueBadLink, so
// the differential also pins a violating verdict across encodings.
func MSQueueBadLinkBounded() workload.Workload {
	return &msqueueWorkload{iters: 1, badLink: true, producersOnly: true, bounded: true}
}

func (w *msqueueWorkload) split(nthreads int) (producers, consumers int) {
	if w.producersOnly {
		return nthreads, 0
	}
	producers = (nthreads + 1) / 2
	return producers, nthreads - producers
}

func (w *msqueueWorkload) Name() string {
	name := "structs/msqueue"
	if w.badLink {
		name = "structs/msqueue-badlink"
	}
	if w.bounded {
		name += "/bounded"
	}
	return name
}

func (w *msqueueWorkload) Doc() string {
	switch {
	case w.badLink:
		return "Michael-Scott queue with a plain-store enqueue link (study case: lost element)"
	case w.bounded:
		return "Michael-Scott queue, bounded-loop encoding (differential oracle for the await reduction)"
	}
	return "Michael-Scott lock-free queue (FIFO spec: conservation + per-producer order)"
}

func (w *msqueueWorkload) Buggy() bool         { return w.badLink }
func (w *msqueueWorkload) Threads() (int, int) { return 2, 0 }

func (w *msqueueWorkload) DefaultSpec() *vprog.BarrierSpec {
	// Acquire loads pair with the release link/swing CASes so a
	// consumer that sees a node also sees its link word; the record
	// store is thread-local bookkeeping.
	return vprog.NewSpec().
		Def("msq.head_read", vprog.Acq).
		Def("msq.tail_read", vprog.Acq).
		Def("msq.next_read", vprog.Acq).
		Def("msq.link_cas", vprog.AcqRel).
		Def("msq.tail_cas", vprog.AcqRel).
		Def("msq.head_cas", vprog.AcqRel).
		Def("msq.record", vprog.Rlx)
}

// SymGroups: producers are interchangeable among themselves and so are
// consumers; the two roles are distinct groups. (The whole-set group is
// NOT symmetric — vprog's validation drops it if declared, which the
// asymmetry test pins.)
func (w *msqueueWorkload) SymGroups(nthreads int) [][]int {
	p, _ := w.split(nthreads)
	return append(workload.Group(0, p), workload.Group(p, nthreads)...)
}

func (w *msqueueWorkload) ProgramName(nthreads int) string {
	return fmt.Sprintf("%s/t%d-i%d", w.Name(), nthreads, w.iters)
}

func (w *msqueueWorkload) New(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) workload.Ops {
	producers, consumers := w.split(nthreads)
	iters := w.iters
	head := env.Var("msq.head", dummyID).TagTid(nodeShift, nodeBias)
	tail := env.Var("msq.tail", dummyID).TagTid(nodeShift, nodeBias)
	dnext := env.Var("msq.next.dummy", 0).TagTid(nodeShift, nodeBias)
	nexts := make([][]*vprog.Var, producers)
	for t := 0; t < producers; t++ {
		nexts[t] = nodeVars(env, "msq.next", t, iters)
	}
	total := producers * iters
	// Dequeue attempts are split evenly across consumers; recorded
	// outcomes live in per-consumer tagged replicas.
	share := func(c int) int {
		n := total / consumers
		if c < total%consumers {
			n++
		}
		return n
	}
	recs := make([][]*vprog.Var, consumers)
	for c := 0; c < consumers; c++ {
		recs[c] = nodeVars(env, "msq.deq", producers+c, share(c))
	}
	nextOf := func(id uint64) *vprog.Var {
		if id == dummyID {
			return dnext
		}
		t, k := decodeNode(id)
		return nexts[t][k]
	}
	badLink := w.badLink

	// One enqueue attempt: read the tail and its link word; link the
	// new node if the tail is current (then swing the tail over it),
	// else help the lagging tail forward. Reports success.
	enqAttempt := func(m vprog.Mem, id uint64) bool {
		tl := m.Load(tail, spec.M("msq.tail_read"))
		nx := m.Load(nextOf(tl), spec.M("msq.next_read"))
		if nx == 0 {
			done := false
			if badLink {
				m.Store(nextOf(tl), id, spec.M("msq.link_cas"))
				done = true
			} else {
				_, done = m.CmpXchg(nextOf(tl), 0, id, spec.M("msq.link_cas"))
			}
			if done {
				// Swing the tail; a failure means someone helped.
				m.CmpXchg(tail, tl, id, spec.M("msq.tail_cas"))
				return true
			}
		} else {
			// Tail lags behind a linked node: help it forward.
			m.CmpXchg(tail, tl, nx, spec.M("msq.tail_cas"))
		}
		m.Pause()
		return false
	}
	// One dequeue attempt: the outcome lands in *got (incomplete =
	// retry). The lagging-tail help path retries without Pause, as the
	// bounded encoding's continue did.
	deqAttempt := func(m vprog.Mem, got *uint64) bool {
		hd := m.Load(head, spec.M("msq.head_read"))
		nx := m.Load(nextOf(hd), spec.M("msq.next_read"))
		if nx == 0 {
			*got = sawEmpty
			return true
		}
		tl := m.Load(tail, spec.M("msq.tail_read"))
		if hd == tl {
			// The tail lags behind the linked node: help before
			// advancing head past it.
			m.CmpXchg(tail, tl, nx, spec.M("msq.tail_cas"))
			return false
		}
		if _, ok := m.CmpXchg(head, hd, nx, spec.M("msq.head_cas")); ok {
			*got = nx
			return true
		}
		m.Pause()
		return false
	}

	// The await encoding.
	producer := func(m vprog.Mem) {
		t := m.TID()
		for k := 0; k < iters; k++ {
			id := nodeID(t, k)
			m.AwaitDo(func() bool { return enqAttempt(m, id) })
		}
	}
	consumer := func(m vprog.Mem) {
		c := m.TID() - producers
		for k := range recs[c] {
			got := uint64(incomplete)
			m.AwaitDo(func() bool { return deqAttempt(m, &got) })
			m.Store(recs[c][k], got, spec.M("msq.record"))
		}
	}

	// The bounded oracle encoding (PR 9): every unproductive iteration
	// coincides with another thread's successful CAS on head, tail or a
	// link word (or a lagging tail this thread itself then helps, at
	// most one extra iteration per operation) — and the other threads
	// perform at most three such successes per element program-wide.
	bound := 3*(nthreads-1)*iters + 4
	boundedProducer := func(m vprog.Mem) {
		t := m.TID()
		for k := 0; k < iters; k++ {
			id := nodeID(t, k)
			done := false
			for attempt := 0; attempt < bound && !done; attempt++ {
				done = enqAttempt(m, id)
			}
			m.Assert(done, "msqueue: enqueue retry bound exhausted")
		}
	}
	boundedConsumer := func(m vprog.Mem) {
		c := m.TID() - producers
		for k := range recs[c] {
			got := uint64(incomplete)
			for attempt := 0; attempt < bound && got == incomplete; attempt++ {
				deqAttempt(m, &got)
			}
			m.Assert(got != incomplete, "msqueue: dequeue retry bound exhausted")
			m.Store(recs[c][k], got, spec.M("msq.record"))
		}
	}

	prodBody, consBody := producer, consumer
	if w.bounded {
		prodBody, consBody = boundedProducer, boundedConsumer
	}
	var threads []vprog.ThreadFunc
	for t := 0; t < producers; t++ {
		threads = append(threads, prodBody)
	}
	for c := 0; c < consumers; c++ {
		threads = append(threads, consBody)
	}

	final := func(load func(*vprog.Var) uint64) (bool, string) {
		seen := make(map[uint64]int, total)
		// lastK tracks, per (observer, producer), the last element
		// index seen: FIFO demands each producer's elements appear in
		// enqueue order within any single observation sequence.
		observe := func(lastK []int, v uint64, where string) string {
			t, k := decodeNode(v)
			if t < 0 || t >= producers || k >= iters {
				return fmt.Sprintf("msqueue: alien element %#x in %s", v, where)
			}
			if lastK[t] >= k {
				return fmt.Sprintf("msqueue: producer %d order violated in %s: element %d after %d", t, where, k, lastK[t])
			}
			lastK[t] = k
			seen[v]++
			return ""
		}
		for c := range recs {
			lastK := make([]int, producers)
			for t := range lastK {
				lastK[t] = -1
			}
			for k, slot := range recs[c] {
				switch v := load(slot); v {
				case incomplete:
					return false, fmt.Sprintf("msqueue: dequeue %d of consumer %d did not complete", k, c)
				case sawEmpty:
					// Allowed: an unsynchronized consumer may miss a
					// linked node; conservation still has to hold.
				default:
					if msg := observe(lastK, v, fmt.Sprintf("consumer %d", c)); msg != "" {
						return false, msg
					}
				}
			}
		}
		// The residual chain hangs off the current head node (itself
		// dummy or already consumed).
		hd := load(head)
		if hd != dummyID {
			if t, k := decodeNode(hd); t < 0 || t >= producers || k >= iters {
				return false, fmt.Sprintf("msqueue: head holds alien element %#x", hd)
			}
		}
		lastK := make([]int, producers)
		for t := range lastK {
			lastK[t] = -1
		}
		for cur, steps := load(nextOf(hd)), 0; cur != 0; steps++ {
			if steps > total {
				return false, "msqueue: chain is cyclic or overlong"
			}
			if msg := observe(lastK, cur, "residual chain"); msg != "" {
				return false, msg
			}
			cur = load(nextOf(cur))
		}
		for t := 0; t < producers; t++ {
			for k := 0; k < iters; k++ {
				if n := seen[nodeID(t, k)]; n != 1 {
					return false, fmt.Sprintf("msqueue: element %#x seen %d times (duplicated or lost)", nodeID(t, k), n)
				}
			}
		}
		if len(seen) != total {
			return false, "msqueue: alien elements recorded"
		}
		return true, ""
	}
	return workload.Ops{Threads: threads, Final: final}
}

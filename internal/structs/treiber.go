// Package structs ships nonblocking data structures on the workload
// seam (internal/workload): each structure builds its thread bodies
// against vprog and judges the recorded operation outcomes with a
// per-structure final-state spec, so the verification matrix, the
// suite and the benchmark ladder cover it exactly like a lock client.
//
// Two AMC constraints shape the implementations:
//
//   - CAS retry loops are bounded plain loops, never AwaitWhile: a
//     failed retry re-stores link words, which Bounded-Effect forbids
//     inside an await iteration. The bounds are sound, not heuristic —
//     each failed CAS implies another thread's successful CAS on the
//     same location strictly between the load and the failure (by
//     per-location coherence the observed value advances in mo every
//     failed attempt), so attempts are bounded by the total writes the
//     other threads can perform. A bound exhaustion trips an Assert —
//     a loud counterexample, never a silent pass.
//
//   - Node identities embed the allocating thread's id in the high
//     bits (TagTid) and per-thread node arrays are declared as owned
//     replica families (TagOwner), so the structures participate in
//     thread-symmetry reduction: interchangeable producer/consumer
//     groups are declared as SymGroups candidates and trace-validated
//     by vprog rather than trusted.
//
// Each structure has a seeded-bug study variant (Buggy() true,
// excluded from the default corpus) whose counterexample the test
// suite demands: a Treiber pop that ignores its CAS failure, a queue
// enqueue that links with a plain store, a seqlock reader that skips
// the odd-sequence check.
package structs

import (
	"fmt"

	"repro/internal/vprog"
	"repro/internal/workload"
)

// Node identity encoding shared by the stack and the queue: node k of
// thread t is (t+1)<<8 | k. The thread id occupies all bits above
// nodeShift (required by the symmetry folder, which rewrites every bit
// above the shift), and the small values 0 and 1 decode to thread -1 —
// safe sentinels the folder leaves alone.
const (
	nodeShift = 8
	nodeBias  = 1

	// Recorded-outcome sentinels: a slot still holding incomplete
	// means the operation never finished (retry bound exhausted); a
	// slot holding sawEmpty means the operation observed an empty
	// structure.
	incomplete = 0
	sawEmpty   = 1
)

func nodeID(t, k int) uint64 { return uint64(t+nodeBias)<<nodeShift | uint64(k) }

// treiberWorkload is the Treiber stack: each thread pushes its own
// iters nodes and then pops iters times. The LIFO spec demands exact
// conservation — the multiset of recorded pops plus the elements left
// on the stack equals the multiset of pushes, no element duplicated or
// lost — and empty-check soundness: because every thread pushes before
// it pops, a pop can never legitimately observe an empty stack, so a
// recorded sawEmpty is a violation.
type treiberWorkload struct {
	iters  int
	badPop bool // seeded bug: pop ignores its CAS failure (missing retry)
}

// Treiber returns the Treiber stack workload with iters push/pop pairs
// per thread.
func Treiber(iters int) workload.Workload { return &treiberWorkload{iters: iters} }

// TreiberBadPop returns the seeded-bug variant whose pop takes the
// popped value even when its CAS failed — the missing retry lets two
// threads pop one node, a duplication the LIFO spec catches.
func TreiberBadPop(iters int) workload.Workload {
	return &treiberWorkload{iters: iters, badPop: true}
}

func (w *treiberWorkload) Name() string {
	if w.badPop {
		return "structs/treiber-badpop"
	}
	return "structs/treiber"
}

func (w *treiberWorkload) Doc() string {
	if w.badPop {
		return "Treiber stack with the pop CAS retry removed (study case: duplicated pop)"
	}
	return "Treiber lock-free stack (LIFO spec: conservation + empty-check soundness)"
}

func (w *treiberWorkload) Buggy() bool         { return w.badPop }
func (w *treiberWorkload) Threads() (int, int) { return 2, 0 }

func (w *treiberWorkload) DefaultSpec() *vprog.BarrierSpec {
	// The weak-memory-correct assignment: the push CAS releases the
	// link store, the pop's top load acquires it (a relaxed pop_read
	// lets a pop unlink through a stale next pointer, losing the
	// elements below — exactly the fence-sensitivity the spec records).
	return vprog.NewSpec().
		Def("treiber.push_read", vprog.Rlx).
		Def("treiber.link", vprog.Rlx).
		Def("treiber.push_cas", vprog.AcqRel).
		Def("treiber.pop_read", vprog.Acq).
		Def("treiber.next_read", vprog.Rlx).
		Def("treiber.pop_cas", vprog.AcqRel).
		Def("treiber.record", vprog.Rlx)
}

// SymGroups: every thread runs the identical push-then-pop body on its
// own tagged replicas, so all threads are one candidate group.
func (w *treiberWorkload) SymGroups(nthreads int) [][]int { return workload.Group(0, nthreads) }

func (w *treiberWorkload) ProgramName(nthreads int) string {
	return fmt.Sprintf("%s/t%d-i%d", w.Name(), nthreads, w.iters)
}

func (w *treiberWorkload) New(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) workload.Ops {
	iters := w.iters
	top := env.Var("treiber.top", 0).TagTid(nodeShift, nodeBias)
	nexts := make([][]*vprog.Var, nthreads)
	pops := make([][]*vprog.Var, nthreads)
	for t := 0; t < nthreads; t++ {
		nexts[t] = make([]*vprog.Var, iters)
		for k := 0; k < iters; k++ {
			nexts[t][k] = env.Var(fmt.Sprintf("treiber.next.t%d.%d", t, k), 0).
				TagOwner(t, fmt.Sprintf("treiber.next.%d", k)).
				TagTid(nodeShift, nodeBias)
		}
	}
	for t := 0; t < nthreads; t++ {
		pops[t] = make([]*vprog.Var, iters)
		for k := 0; k < iters; k++ {
			pops[t][k] = env.Var(fmt.Sprintf("treiber.pop.t%d.%d", t, k), 0).
				TagOwner(t, fmt.Sprintf("treiber.pop.%d", k)).
				TagTid(nodeShift, nodeBias)
		}
	}
	// Retry bound: each failed CAS means another thread's successful
	// CAS advanced top between the load and the failure, and the other
	// threads perform at most 2*(nthreads-1)*iters successful top
	// CASes in the whole program — so by pigeonhole every retry loop
	// succeeds within that many failures plus one try.
	bound := 2*(nthreads-1)*iters + 1
	badPop := w.badPop

	worker := func(m vprog.Mem) {
		t := m.TID()
		for k := 0; k < iters; k++ {
			id := nodeID(t, k)
			done := false
			for attempt := 0; attempt < bound && !done; attempt++ {
				old := m.Load(top, spec.M("treiber.push_read"))
				m.Store(nexts[t][k], old, spec.M("treiber.link"))
				_, done = m.CmpXchg(top, old, id, spec.M("treiber.push_cas"))
				if !done {
					m.Pause()
				}
			}
			m.Assert(done, "treiber: push retry bound exhausted")
		}
		for k := 0; k < iters; k++ {
			got := uint64(incomplete)
			for attempt := 0; attempt < bound && got == incomplete; attempt++ {
				old := m.Load(top, spec.M("treiber.pop_read"))
				if old == 0 {
					got = sawEmpty
					break
				}
				ot := int(old>>nodeShift) - nodeBias
				nxt := m.Load(nexts[ot][old&(1<<nodeShift-1)], spec.M("treiber.next_read"))
				if _, ok := m.CmpXchg(top, old, nxt, spec.M("treiber.pop_cas")); ok || badPop {
					got = old
				} else {
					m.Pause()
				}
			}
			m.Assert(got != incomplete, "treiber: pop retry bound exhausted")
			m.Store(pops[t][k], got, spec.M("treiber.record"))
		}
	}
	threads := make([]vprog.ThreadFunc, nthreads)
	for t := range threads {
		threads[t] = worker
	}

	total := nthreads * iters
	final := func(load func(*vprog.Var) uint64) (bool, string) {
		seen := make(map[uint64]int, total)
		for t := range pops {
			for k, slot := range pops[t] {
				switch v := load(slot); v {
				case incomplete:
					return false, fmt.Sprintf("treiber: pop %d of thread %d did not complete", k, t)
				case sawEmpty:
					return false, "treiber: pop observed an empty stack — unreachable when every thread pushes before popping"
				default:
					seen[v]++
				}
			}
		}
		for cur, steps := load(top), 0; cur != 0; steps++ {
			if steps > total {
				return false, "treiber: stack chain is cyclic or overlong"
			}
			seen[cur]++
			t, k := int(cur>>nodeShift)-nodeBias, int(cur&(1<<nodeShift-1))
			if t < 0 || t >= nthreads || k >= iters {
				return false, fmt.Sprintf("treiber: stack holds alien element %#x", cur)
			}
			cur = load(nexts[t][k])
		}
		for t := 0; t < nthreads; t++ {
			for k := 0; k < iters; k++ {
				if n := seen[nodeID(t, k)]; n != 1 {
					return false, fmt.Sprintf("treiber: element %#x seen %d times (duplicated or lost)", nodeID(t, k), n)
				}
			}
		}
		if len(seen) != total {
			return false, "treiber: alien elements recorded"
		}
		return true, ""
	}
	return workload.Ops{Threads: threads, Final: final}
}

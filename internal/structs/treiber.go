// Package structs ships nonblocking data structures on the workload
// seam (internal/workload): each structure builds its thread bodies
// against vprog and judges the recorded operation outcomes with a
// per-structure final-state spec, so the verification matrix, the
// suite and the benchmark ladder cover it exactly like a lock client.
//
// Two AMC constraints shape the implementations:
//
//   - CAS retry loops are awaits (vprog.AwaitDo): a failed retry
//     re-stores only link words the thread owns (TagOwner replicas),
//     which the effect-bounded retry contract permits, so the checker's
//     wasteful-execution filter prunes re-reads of an unchanged top/
//     tail/head instead of enumerating every interleaving of a bounded
//     spin — and retry loops that can never succeed surface as proper
//     await-termination verdicts ("no remaining write to observe"),
//     not assertion trips on an artificial bound. Each structure keeps
//     its pre-await encoding — the pigeonhole-bounded plain loop of
//     PR 9, bound exhaustion tripping an Assert — as a "/bounded" twin
//     (TreiberBounded and friends), the differential oracle for the
//     await reduction exactly as Checker.NoSymmetry shadows symmetry.
//     The seqlock has no such twin: a failed optimistic read implies
//     nothing about writer progress, so no retry bound is sound for it
//     — its read side is only expressible as an await.
//
//   - Node identities embed the allocating thread's id in the high
//     bits (TagTid) and per-thread node arrays are declared as owned
//     replica families (TagOwner) — see nodeVars — so the structures
//     participate in thread-symmetry reduction: interchangeable
//     producer/consumer groups are declared as SymGroups candidates
//     and trace-validated by vprog rather than trusted.
//
// Each structure has a seeded-bug study variant (Buggy() true,
// excluded from the default corpus) whose counterexample the test
// suite demands: a Treiber pop that ignores its CAS failure, a queue
// enqueue that links with a plain store, a seqlock reader that skips
// the odd-sequence check.
package structs

import (
	"fmt"

	"repro/internal/vprog"
	"repro/internal/workload"
)

// treiberWorkload is the Treiber stack: each thread pushes its own
// iters nodes and then pops iters times. The LIFO spec demands exact
// conservation — the multiset of recorded pops plus the elements left
// on the stack equals the multiset of pushes, no element duplicated or
// lost — and empty-check soundness: because every thread pushes before
// it pops, a pop can never legitimately observe an empty stack, so a
// recorded sawEmpty is a violation.
type treiberWorkload struct {
	iters   int
	badPop  bool // seeded bug: pop ignores its CAS failure (missing retry)
	bounded bool // differential oracle: pigeonhole-bounded plain retry loops
}

// Treiber returns the Treiber stack workload with iters push/pop pairs
// per thread.
func Treiber(iters int) workload.Workload { return &treiberWorkload{iters: iters} }

// TreiberBounded returns the bounded-loop twin: the same stack with its
// CAS retries encoded as pigeonhole-bounded plain loops instead of
// awaits — the differential oracle for the await reduction.
func TreiberBounded(iters int) workload.Workload {
	return &treiberWorkload{iters: iters, bounded: true}
}

// TreiberBadPop returns the seeded-bug variant whose pop takes the
// popped value even when its CAS failed — the missing retry lets two
// threads pop one node, a duplication the LIFO spec catches.
func TreiberBadPop(iters int) workload.Workload {
	return &treiberWorkload{iters: iters, badPop: true}
}

// TreiberBadPopBounded is the bounded-loop twin of TreiberBadPop, so
// the differential also pins a violating verdict across encodings.
func TreiberBadPopBounded(iters int) workload.Workload {
	return &treiberWorkload{iters: iters, badPop: true, bounded: true}
}

func (w *treiberWorkload) Name() string {
	name := "structs/treiber"
	if w.badPop {
		name = "structs/treiber-badpop"
	}
	if w.bounded {
		name += "/bounded"
	}
	return name
}

func (w *treiberWorkload) Doc() string {
	switch {
	case w.badPop:
		return "Treiber stack with the pop CAS retry removed (study case: duplicated pop)"
	case w.bounded:
		return "Treiber stack, bounded-loop encoding (differential oracle for the await reduction)"
	}
	return "Treiber lock-free stack (LIFO spec: conservation + empty-check soundness)"
}

func (w *treiberWorkload) Buggy() bool         { return w.badPop }
func (w *treiberWorkload) Threads() (int, int) { return 2, 0 }

func (w *treiberWorkload) DefaultSpec() *vprog.BarrierSpec {
	// The weak-memory-correct assignment: the push CAS releases the
	// link store, the pop's top load acquires it (a relaxed pop_read
	// lets a pop unlink through a stale next pointer, losing the
	// elements below — exactly the fence-sensitivity the spec records).
	return vprog.NewSpec().
		Def("treiber.push_read", vprog.Rlx).
		Def("treiber.link", vprog.Rlx).
		Def("treiber.push_cas", vprog.AcqRel).
		Def("treiber.pop_read", vprog.Acq).
		Def("treiber.next_read", vprog.Rlx).
		Def("treiber.pop_cas", vprog.AcqRel).
		Def("treiber.record", vprog.Rlx)
}

// SymGroups: every thread runs the identical push-then-pop body on its
// own tagged replicas, so all threads are one candidate group.
func (w *treiberWorkload) SymGroups(nthreads int) [][]int { return workload.Group(0, nthreads) }

func (w *treiberWorkload) ProgramName(nthreads int) string {
	return fmt.Sprintf("%s/t%d-i%d", w.Name(), nthreads, w.iters)
}

func (w *treiberWorkload) New(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) workload.Ops {
	iters := w.iters
	top := env.Var("treiber.top", 0).TagTid(nodeShift, nodeBias)
	nexts := make([][]*vprog.Var, nthreads)
	pops := make([][]*vprog.Var, nthreads)
	for t := 0; t < nthreads; t++ {
		nexts[t] = nodeVars(env, "treiber.next", t, iters)
	}
	for t := 0; t < nthreads; t++ {
		pops[t] = nodeVars(env, "treiber.pop", t, iters)
	}
	badPop := w.badPop

	// One push attempt: read top, link the new node's next word (owned
	// by the pushing thread, so a failed attempt's re-store is within
	// the AwaitDo contract) and try to swing top. Reports success.
	pushAttempt := func(m vprog.Mem, t, k int, id uint64) bool {
		old := m.Load(top, spec.M("treiber.push_read"))
		m.Store(nexts[t][k], old, spec.M("treiber.link"))
		if _, ok := m.CmpXchg(top, old, id, spec.M("treiber.push_cas")); ok {
			return true
		}
		m.Pause()
		return false
	}
	// One pop attempt: the outcome lands in *got (incomplete = retry).
	popAttempt := func(m vprog.Mem, got *uint64) bool {
		old := m.Load(top, spec.M("treiber.pop_read"))
		if old == 0 {
			*got = sawEmpty
			return true
		}
		ot, ok := decodeNode(old)
		nxt := m.Load(nexts[ot][ok], spec.M("treiber.next_read"))
		if _, ok := m.CmpXchg(top, old, nxt, spec.M("treiber.pop_cas")); ok || badPop {
			*got = old
			return true
		}
		m.Pause()
		return false
	}

	// The await encoding: each retry loop is one AwaitDo, so the
	// wasteful filter collapses unproductive re-reads and a retry that
	// can never succeed is an await-termination verdict, not a bound.
	worker := func(m vprog.Mem) {
		t := m.TID()
		for k := 0; k < iters; k++ {
			id := nodeID(t, k)
			m.AwaitDo(func() bool { return pushAttempt(m, t, k, id) })
		}
		for k := 0; k < iters; k++ {
			got := uint64(incomplete)
			m.AwaitDo(func() bool { return popAttempt(m, &got) })
			m.Store(pops[t][k], got, spec.M("treiber.record"))
		}
	}

	// The bounded oracle encoding (PR 9): each failed CAS implies
	// another thread's successful CAS on top strictly between the load
	// and the failure, and the other threads perform at most
	// 2*(nthreads-1)*iters successful top CASes in the whole program —
	// so by pigeonhole every retry loop succeeds within that many
	// failures plus one try. A bound exhaustion trips an Assert — a
	// loud counterexample, never a silent pass.
	bound := 2*(nthreads-1)*iters + 1
	boundedWorker := func(m vprog.Mem) {
		t := m.TID()
		for k := 0; k < iters; k++ {
			id := nodeID(t, k)
			done := false
			for attempt := 0; attempt < bound && !done; attempt++ {
				done = pushAttempt(m, t, k, id)
			}
			m.Assert(done, "treiber: push retry bound exhausted")
		}
		for k := 0; k < iters; k++ {
			got := uint64(incomplete)
			for attempt := 0; attempt < bound && got == incomplete; attempt++ {
				popAttempt(m, &got)
			}
			m.Assert(got != incomplete, "treiber: pop retry bound exhausted")
			m.Store(pops[t][k], got, spec.M("treiber.record"))
		}
	}

	body := worker
	if w.bounded {
		body = boundedWorker
	}
	threads := make([]vprog.ThreadFunc, nthreads)
	for t := range threads {
		threads[t] = body
	}

	total := nthreads * iters
	final := func(load func(*vprog.Var) uint64) (bool, string) {
		seen := make(map[uint64]int, total)
		for t := range pops {
			for k, slot := range pops[t] {
				switch v := load(slot); v {
				case incomplete:
					return false, fmt.Sprintf("treiber: pop %d of thread %d did not complete", k, t)
				case sawEmpty:
					return false, "treiber: pop observed an empty stack — unreachable when every thread pushes before popping"
				default:
					seen[v]++
				}
			}
		}
		for cur, steps := load(top), 0; cur != 0; steps++ {
			if steps > total {
				return false, "treiber: stack chain is cyclic or overlong"
			}
			seen[cur]++
			t, k := decodeNode(cur)
			if t < 0 || t >= nthreads || k >= iters {
				return false, fmt.Sprintf("treiber: stack holds alien element %#x", cur)
			}
			cur = load(nexts[t][k])
		}
		for t := 0; t < nthreads; t++ {
			for k := 0; k < iters; k++ {
				if n := seen[nodeID(t, k)]; n != 1 {
					return false, fmt.Sprintf("treiber: element %#x seen %d times (duplicated or lost)", nodeID(t, k), n)
				}
			}
		}
		if len(seen) != total {
			return false, "treiber: alien elements recorded"
		}
		return true, ""
	}
	return workload.Ops{Threads: threads, Final: final}
}

package structs_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/structs"
	"repro/internal/vprog"
	"repro/internal/workload"
)

func runAt(t *testing.T, p *vprog.Program, workers int, nosym bool) *core.Result {
	t.Helper()
	c := core.New(mm.WMM)
	c.WorkersPerRun = workers
	c.NoSymmetry = nosym
	res := c.Run(p)
	if res.Verdict == core.Canceled || res.Verdict == core.Error {
		t.Fatalf("%s (workers=%d nosym=%v): unexpected %v: %v", p.Name, workers, nosym, res.Verdict, res.Err)
	}
	return res
}

// structsSymDiff is the structure-corpus instance of the symmetry
// differential bar: verdicts must agree between symmetry-on at 1, 2 and
// 4 workers and the NoSymmetry oracle, and the reduction must never
// enumerate more than the full run.
func structsSymDiff(t *testing.T, p *vprog.Program, wantOK bool) {
	t.Helper()
	on1 := runAt(t, p, 1, false)
	on2 := runAt(t, p, 2, false)
	on4 := runAt(t, p, 4, false)
	off := runAt(t, p, 1, true)

	if on1.Verdict != on2.Verdict || on2.Verdict != on4.Verdict {
		t.Fatalf("%s: symmetry-on verdict is worker-count dependent: %v/%v/%v",
			p.Name, on1.Verdict, on2.Verdict, on4.Verdict)
	}
	if on1.Verdict != off.Verdict {
		t.Fatalf("%s: symmetry changed the verdict: on %v, off %v", p.Name, on1.Verdict, off.Verdict)
	}
	if wantOK && on1.Verdict != core.OK {
		t.Fatalf("%s: want OK, got %v: %s", p.Name, on1.Verdict, on1.Message)
	}
	if !wantOK && on1.Verdict == core.OK {
		t.Fatalf("%s: seeded bug was not caught", p.Name)
	}
	if p.SymSpec() != nil {
		if on1.Stats.Executions > off.Stats.Executions {
			t.Fatalf("%s: reduction enumerated MORE than the full run\non:  %+v\noff: %+v",
				p.Name, on1.Stats, off.Stats)
		}
	} else if on1.Stats != off.Stats {
		t.Fatalf("%s: no validated groups, yet stats differ\non:  %+v\noff: %+v", p.Name, on1.Stats, off.Stats)
	}
	t.Logf("%s: %v, %d executions reduced / %d full", p.Name, on1.Verdict, on1.Stats.Executions, off.Stats.Executions)
}

// TestStructsVerify: the three structures verify under WMM with
// symmetry-on == symmetry-off verdicts at 1/2/4 workers.
func TestStructsVerify(t *testing.T) {
	structsSymDiff(t, workload.Program(structs.Treiber(1), nil, 2), true)
	structsSymDiff(t, workload.Program(structs.MSQueue(2), nil, 2), true)
	structsSymDiff(t, workload.Program(structs.SeqlockPair(1), nil, 2), true)
	if !testing.Short() {
		// t=4 exercises the queue's two-group reduction (producers x
		// consumers: an exact 2!*2! = 4x) and the seqlock's reader
		// group. The Treiber stack at t=3 (~105k reduced states with
		// the await encoding; its bounded twin is ~430k and the
		// unreduced oracle exceeds the default graph budget) stays out
		// of tier-1 — TestAwaitDifferentialTreiberT3 covers it.
		structsSymDiff(t, workload.Program(structs.MSQueue(1), nil, 4), true)
		structsSymDiff(t, workload.Program(structs.SeqlockPair(1), nil, 3), true)
	}
}

// TestStructsSeededBugs: each seeded-bug study variant is caught as a
// counterexample, and the canonical witness is well-formed.
func TestStructsSeededBugs(t *testing.T) {
	for _, tc := range []struct {
		w        workload.Workload
		nthreads int
		needle   string // substring the violation message must carry
	}{
		{structs.TreiberBadPop(1), 2, "treiber"},
		{structs.MSQueueBadLink(), 2, "msqueue"},
		{structs.SeqlockBadRead(1), 2, "torn read"},
	} {
		p := workload.Program(tc.w, nil, tc.nthreads)
		res := runAt(t, p, 2, false)
		if res.Verdict != core.SafetyViolation {
			t.Errorf("%s: verdict %v, want a safety violation", p.Name, res.Verdict)
			continue
		}
		if res.Witness == nil {
			t.Errorf("%s: violation without a witness", p.Name)
		} else if err := res.Witness.CheckInvariants(); err != nil {
			t.Errorf("%s: malformed witness: %v", p.Name, err)
		}
		if !strings.Contains(res.Message, tc.needle) {
			t.Errorf("%s: message %q does not mention %q", p.Name, res.Message, tc.needle)
		}
		t.Logf("%s: caught: %s", p.Name, res.Message)
	}
}

// TestStructsSymSpecValidates: the structures' candidate groups survive
// vprog's trace validation — the declarations actually reduce, they
// don't silently stand down.
func TestStructsSymSpecValidates(t *testing.T) {
	for _, tc := range []struct {
		w        workload.Workload
		nthreads int
		perms    int // non-identity + identity permutations validated
	}{
		{structs.Treiber(1), 2, 2},     // whole set {0,1}: 2!
		{structs.SeqlockPair(1), 3, 2}, // readers {1,2}: 2!
		{structs.MSQueue(1), 4, 4},     // producers {0,1} x consumers {2,3}: 2!*2!
	} {
		p := workload.Program(tc.w, nil, tc.nthreads)
		s := p.SymSpec()
		if s == nil {
			t.Errorf("%s: candidate groups did not validate", p.Name)
			continue
		}
		if got := s.PermCount(); got != tc.perms {
			t.Errorf("%s: %d permutations validated, want %d", p.Name, got, tc.perms)
		}
	}
}

// TestSymSpecDropsAsymmetryStructs extends the vprog asymmetry bar to
// the structures corpus: at t=2 the queue's producer and consumer run
// different code, so a whole-set candidate group is a wrong declaration
// — trace validation must drop it, and the resulting unreduced run must
// be a strict no-op against the NoSymmetry oracle, down to the last
// counter.
func TestSymSpecDropsAsymmetryStructs(t *testing.T) {
	p := workload.Program(structs.MSQueue(1), nil, 2)
	if g := p.SymGroups; g != nil {
		t.Fatalf("msqueue t=2 declared groups %v; the forced-group test needs a clean slate", g)
	}
	p.SymGroups = [][]int{{0, 1}} // producer+consumer: asymmetric on purpose
	if p.SymSpec() != nil {
		t.Fatal("asymmetric producer/consumer group survived trace validation")
	}
	on := runAt(t, p, 1, false)
	off := runAt(t, p, 1, true)
	if on.Verdict != core.OK || off.Verdict != core.OK {
		t.Fatalf("msqueue t=2: verdicts on=%v off=%v, want OK", on.Verdict, off.Verdict)
	}
	if on.Stats != off.Stats {
		t.Fatalf("dropped group still perturbed exploration\non:  %+v\noff: %+v", on.Stats, off.Stats)
	}
}

// TestStructsRegistry: the corpus registers the three structures plus
// their study variants, with the buggy ones filtered from Verifiable.
func TestStructsRegistry(t *testing.T) {
	for name, buggy := range map[string]bool{
		"structs/treiber":         false,
		"structs/treiber/bounded": false,
		"structs/treiber-badpop":  true,
		"structs/msqueue":         false,
		"structs/msqueue/bounded": false,
		"structs/msqueue-badlink": true,
		"structs/seqlock":         false,
		"structs/seqlock-badread": true,
	} {
		w := workload.ByName(name)
		if w == nil {
			t.Errorf("%s: not registered", name)
			continue
		}
		if w.Buggy() != buggy {
			t.Errorf("%s: Buggy() = %v, want %v", name, w.Buggy(), buggy)
		}
	}
}

package structs_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/structs"
	"repro/internal/vprog"
	"repro/internal/workload"
)

// awaitDiff is the await-encoding instance of the differential bar
// (pattern: TestSymDifferential*): the await encoding of a structure
// must reach the same verdict as its bounded-loop twin — at 1, 2 and 4
// workers — and must never enumerate more popped states than the twin.
// The twin runs once at one worker; its verdict is the oracle.
func awaitDiff(t *testing.T, await, bounded *vprog.Program, wantOK bool) {
	t.Helper()
	oracle := runAt(t, bounded, 1, false)
	for _, workers := range []int{1, 2, 4} {
		res := runAt(t, await, workers, false)
		if res.Verdict != oracle.Verdict {
			t.Fatalf("%s (workers=%d): verdict %v, but bounded twin %s says %v",
				await.Name, workers, res.Verdict, bounded.Name, oracle.Verdict)
		}
		if res.Verdict != core.OK {
			if res.Witness == nil {
				t.Fatalf("%s (workers=%d): violation without a witness", await.Name, workers)
			} else if err := res.Witness.CheckInvariants(); err != nil {
				t.Fatalf("%s (workers=%d): malformed witness: %v", await.Name, workers, err)
			}
		}
		if workers == 1 && res.Stats.Popped > oracle.Stats.Popped {
			t.Errorf("%s: await encoding popped %d states, MORE than the bounded twin's %d",
				await.Name, res.Stats.Popped, oracle.Stats.Popped)
		}
	}
	if wantOK && oracle.Verdict != core.OK {
		t.Fatalf("%s: want OK, got %v: %s", bounded.Name, oracle.Verdict, oracle.Message)
	}
	if !wantOK && oracle.Verdict == core.OK {
		t.Fatalf("%s: seeded bug was not caught", bounded.Name)
	}
}

// pair builds the await and bounded programs of one twin at nthreads.
func pair(aw, bw workload.Workload, nthreads int) (*vprog.Program, *vprog.Program) {
	return workload.Program(aw, nil, nthreads), workload.Program(bw, nil, nthreads)
}

// TestAwaitDifferentialVerdicts pins the await-encoded structures to
// their bounded-loop twins at the verdict level, good and seeded-bug
// variants alike. This is the continuous form of the PR's differential
// oracle: the bounded encodings enumerate every retry chain explicitly,
// so agreement here checks both the retry-free-twin collapse and the
// ⊥-gating against an encoding that uses neither.
func TestAwaitDifferentialVerdicts(t *testing.T) {
	aw, bw := pair(structs.Treiber(1), structs.TreiberBounded(1), 2)
	awaitDiff(t, aw, bw, true)
	aw, bw = pair(structs.TreiberBadPop(1), structs.TreiberBadPopBounded(1), 2)
	awaitDiff(t, aw, bw, false)
	aw, bw = pair(structs.MSQueue(2), structs.MSQueueBounded(2), 2)
	awaitDiff(t, aw, bw, true)
	aw, bw = pair(structs.MSQueueBadLink(), structs.MSQueueBadLinkBounded(), 2)
	awaitDiff(t, aw, bw, false)
}

// TestAwaitDifferentialTreiberT3 is the acceptance cell: at t=3 the
// await encoding must both agree with the bounded twin and pop at most
// half as many states — the reduction the await constructs exist to
// deliver. Multi-second; skipped in -short.
func TestAwaitDifferentialTreiberT3(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exploration; not run in -short")
	}
	aw, bw := pair(structs.Treiber(1), structs.TreiberBounded(1), 3)
	await := runAt(t, aw, 1, false)
	bounded := runAt(t, bw, 1, false)
	if await.Verdict != bounded.Verdict {
		t.Fatalf("t3 verdicts diverge: await %v, bounded %v", await.Verdict, bounded.Verdict)
	}
	if 2*await.Stats.Popped > bounded.Stats.Popped {
		t.Errorf("await popped %d states, want <= half of bounded's %d",
			await.Stats.Popped, bounded.Stats.Popped)
	}
	t.Logf("treiber t3: await %d popped vs bounded %d (%.1fx)",
		await.Stats.Popped, bounded.Stats.Popped,
		float64(bounded.Stats.Popped)/float64(await.Stats.Popped))
}

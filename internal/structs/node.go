package structs

import (
	"fmt"

	"repro/internal/vprog"
)

// Node identity encoding shared by the stack and the queue: node k of
// thread t is (t+1)<<8 | k. The thread id occupies all bits above
// nodeShift (required by the symmetry folder, which rewrites every bit
// above the shift), and the small values 0 and 1 decode to thread -1 —
// safe sentinels the folder leaves alone.
const (
	nodeShift = 8
	nodeBias  = 1

	// Recorded-outcome sentinels: a slot still holding incomplete
	// means the operation never finished; a slot holding sawEmpty
	// means the operation observed an empty structure.
	incomplete = 0
	sawEmpty   = 1
)

// nodeID encodes node k of thread t.
func nodeID(t, k int) uint64 { return uint64(t+nodeBias)<<nodeShift | uint64(k) }

// decodeNode inverts nodeID; sentinels decode to thread -1.
func decodeNode(id uint64) (t, k int) {
	return int(id>>nodeShift) - nodeBias, int(id & (1<<nodeShift - 1))
}

// nodeVars allocates thread t's per-node replica array under the given
// prefix: slot k is named "<prefix>.t<t>.<k>", owned by t within the
// family "<prefix>.<k>" (one family per slot index, so relabeling a
// thread moves the whole column), and tagged as embedding a node id.
// This is the TagOwner/TagTid discipline both structures need for
// thread-symmetry reduction — and, for the await encodings, the
// ownership that licenses re-storing a link word in a failed AwaitDo
// iteration.
func nodeVars(env vprog.Env, prefix string, t, n int) []*vprog.Var {
	vs := make([]*vprog.Var, n)
	for k := 0; k < n; k++ {
		vs[k] = env.Var(fmt.Sprintf("%s.t%d.%d", prefix, t, k), 0).
			TagOwner(t, fmt.Sprintf("%s.%d", prefix, k)).
			TagTid(nodeShift, nodeBias)
	}
	return vs
}

package structs

import "repro/internal/workload"

// The registered corpus: the three structures at their default shapes
// (the queue with two elements per producer so the per-producer FIFO
// half of its spec is non-vacuous at the t=2 matrix rung), plus the
// seeded-bug study variants (Buggy, excluded from the default suite
// corpus but listed and individually checkable).
func init() {
	workload.Register(Treiber(1))
	workload.Register(TreiberBadPop(1))
	workload.Register(MSQueue(2))
	workload.Register(MSQueueBadLink())
	workload.Register(SeqlockPair(1))
	workload.Register(SeqlockBadRead(1))
}

package structs

import "repro/internal/workload"

// The registered corpus: the three structures at their default shapes
// (the queue with two elements per producer so the per-producer FIFO
// half of its spec is non-vacuous at the t=2 matrix rung), the
// seeded-bug study variants (Buggy, excluded from the default suite
// corpus but listed and individually checkable), and the "/bounded"
// oracle twins of the stack and the queue — the pre-await encodings,
// kept registered so every default suite run re-pins the await
// reduction against them at the verdict level (the seqlock has no
// sound bounded encoding, hence no twin).
func init() {
	workload.Register(Treiber(1))
	workload.Register(TreiberBounded(1))
	workload.Register(TreiberBadPop(1))
	workload.Register(MSQueue(2))
	workload.Register(MSQueueBounded(2))
	workload.Register(MSQueueBadLink())
	workload.Register(SeqlockPair(1))
	workload.Register(SeqlockBadRead(1))
}

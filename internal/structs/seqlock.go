package structs

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/vprog"
	"repro/internal/workload"
)

// seqlockWorkload verifies the sequence lock (locks.Seqlock) as a data
// structure: one writer thread updates a two-word pair under the
// write side, the remaining threads read it optimistically. The spec
// has two halves: each reader asserts in-thread that it never observes
// a torn pair, and the final check demands the writer's sequence is
// monotone and quiesced — exactly two increments per write section
// (final seq == 2*writers*iters, necessarily even) with the write lock
// released and both words at their final value. The read-side retry is
// an await, so AMC additionally proves readers terminate.
type seqlockWorkload struct {
	iters   int
	badRead bool // seeded bug: the reader skips the odd-sequence check
}

// SeqlockPair returns the seqlock workload with iters write sections.
func SeqlockPair(iters int) workload.Workload { return &seqlockWorkload{iters: iters} }

// SeqlockBadRead returns the seeded-bug variant whose reader omits the
// odd-sequence (write-in-progress) check: a reader overlapping a write
// section can accept a torn pair whose recheck still matches the odd
// begin value — caught by the reader's torn-pair assertion.
func SeqlockBadRead(iters int) workload.Workload {
	return &seqlockWorkload{iters: iters, badRead: true}
}

func (w *seqlockWorkload) Name() string {
	if w.badRead {
		return "structs/seqlock-badread"
	}
	return "structs/seqlock"
}

func (w *seqlockWorkload) Doc() string {
	if w.badRead {
		return "seqlock reader without the odd-sequence check (study case: torn read)"
	}
	return "sequence lock (spec: no torn pair, writer sequence monotone and quiesced)"
}

func (w *seqlockWorkload) Buggy() bool         { return w.badRead }
func (w *seqlockWorkload) Threads() (int, int) { return 2, 0 }

func (w *seqlockWorkload) DefaultSpec() *vprog.BarrierSpec {
	return locks.SeqlockPoints(vprog.NewSpec(), "seqlock")
}

// SymGroups: readers are interchangeable; the single writer stands
// alone.
func (w *seqlockWorkload) SymGroups(nthreads int) [][]int { return workload.Group(1, nthreads) }

func (w *seqlockWorkload) ProgramName(nthreads int) string {
	return fmt.Sprintf("%s/t%d-i%d", w.Name(), nthreads, w.iters)
}

func (w *seqlockWorkload) New(env vprog.Env, spec *vprog.BarrierSpec, nthreads int) workload.Ops {
	iters := w.iters
	sl := locks.NewSeqlock(env, spec)
	// Env.Var dedups by name, so these handles alias the seqlock's own
	// state — the final check and the bad reader need them directly.
	seq := env.Var("seqlock.seq", 0)
	wlock := env.Var("seqlock.wlock", 0)
	a := env.Var("slq.a", 0)
	b := env.Var("slq.b", 0)

	writer := func(m vprog.Mem) {
		for i := 0; i < iters; i++ {
			sl.Write(m, func(store func(*vprog.Var, uint64)) {
				va := m.Load(a, vprog.Rlx) // own writes: relaxed read is fine under wlock
				store(a, va+1)
				store(b, va+1)
			})
		}
	}
	goodReader := func(m vprog.Mem) {
		for i := 0; i < iters; i++ {
			var va, vb uint64
			sl.Read(m, func(load func(*vprog.Var) uint64) {
				va = load(a)
				vb = load(b)
			})
			m.Assert(va == vb, fmt.Sprintf("seqlock: torn read a=%d b=%d", va, vb))
		}
	}
	// The seeded bug: same optimistic retry, but the "sequence odd ⇒
	// write in progress, retry" guard is missing, so a recheck that
	// matches an odd begin value accepts a mid-write snapshot.
	badReader := func(m vprog.Mem) {
		for i := 0; i < iters; i++ {
			var va, vb uint64
			m.AwaitDo(func() bool {
				s1 := m.Load(seq, spec.M("seqlock.begin"))
				va = m.Load(a, spec.M("seqlock.data_read"))
				vb = m.Load(b, spec.M("seqlock.data_read"))
				m.Fence(spec.M("seqlock.recheck_fence"))
				s2 := m.Load(seq, spec.M("seqlock.recheck"))
				return s2 == s1
			})
			m.Assert(va == vb, fmt.Sprintf("seqlock: torn read a=%d b=%d", va, vb))
		}
	}
	reader := goodReader
	if w.badRead {
		reader = badReader
	}
	threads := make([]vprog.ThreadFunc, nthreads)
	threads[0] = writer
	for t := 1; t < nthreads; t++ {
		threads[t] = reader
	}

	want := uint64(iters)
	final := func(load func(*vprog.Var) uint64) (bool, string) {
		if got := load(seq); got != 2*want {
			return false, fmt.Sprintf("seqlock: sequence not monotone: seq = %d, want %d", got, 2*want)
		}
		if got := load(wlock); got != 0 {
			return false, fmt.Sprintf("seqlock: write lock still held: wlock = %d", got)
		}
		if va, vb := load(a), load(b); va != want || vb != want {
			return false, fmt.Sprintf("seqlock: writer updates lost: a=%d b=%d want %d", va, vb, want)
		}
		return true, ""
	}
	return workload.Ops{Threads: threads, Final: final}
}

// Package report renders the evaluation artifacts as text: aligned
// tables (Tables 1–5), density histograms (Figs. 23/24) and heat maps
// (Figs. 25/26) — the same rows and series the paper prints, in a form
// a terminal can show.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders measurement values compactly (scientific for
// large magnitudes, as the paper's tables do).
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.4g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// HistogramText renders a density histogram as horizontal bars, one
// line per bin: "  [1.00..1.16)  ######## 42".
func HistogramText(title string, centers []float64, counts []int, maxWidth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range counts {
		bar := strings.Repeat("#", c*maxWidth/maxCount)
		fmt.Fprintf(&b, "  %8.3f | %-*s %d\n", centers[i], maxWidth, bar, c)
	}
	return b.String()
}

// Heatmap renders a rows×cols matrix of values as a character grid,
// mapping each value range to a shade — the textual analogue of the
// paper's Figs. 25/26. Missing values (NaN encoded as ok=false in
// valid) print as '.', matching the paper's white filtered-out squares.
func Heatmap(title string, rowLabels, colLabels []string, vals [][]float64, valid [][]bool) string {
	shades := []byte(" .:-=+*#%@")
	lo, hi := 0.0, 0.0
	first := true
	for i := range vals {
		for j := range vals[i] {
			if !valid[i][j] {
				continue
			}
			v := vals[i][j]
			if first {
				lo, hi, first = v, v, false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	width := 0
	for _, r := range rowLabels {
		if len(r) > width {
			width = len(r)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s   (scale: '%c'=%.2f .. '%c'=%.2f, '?'=filtered)\n",
		title, shades[1], lo, shades[len(shades)-1], hi)
	fmt.Fprintf(&b, "%-*s ", width, "")
	for _, c := range colLabels {
		fmt.Fprintf(&b, "%4s", c)
	}
	b.WriteByte('\n')
	for i, r := range rowLabels {
		fmt.Fprintf(&b, "%-*s ", width, r)
		for j := range colLabels {
			if !valid[i][j] {
				b.WriteString("   ?")
				continue
			}
			idx := 1 + int((vals[i][j]-lo)/span*float64(len(shades)-2))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			fmt.Fprintf(&b, "   %c", shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Add("short", 1)
	tb.Add("a-much-longer-name", 123456.789)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "name") {
		t.Fatalf("missing title/headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Every data row starts with the name column padded to equal width.
	idx := strings.Index(lines[3], "1")
	if idx < 0 || strings.Index(lines[4], "1.235e+05") < 0 && !strings.Contains(lines[4], "123456") {
		t.Fatalf("rows not rendered:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		3.18e+07: "3.18e+07",
		150.5:    "150.5",
		0.611:    "0.6110",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestHistogramText(t *testing.T) {
	out := HistogramText("density", []float64{1.0, 2.0}, []int{3, 6}, 10)
	if !strings.Contains(out, "density") || !strings.Contains(out, "#") {
		t.Fatalf("bad histogram:\n%s", out)
	}
	// The larger bin gets the full width.
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Fatalf("max bin not full width:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	vals := [][]float64{{0.1, 0.9}, {0.5, 0}}
	valid := [][]bool{{true, true}, {true, false}}
	out := Heatmap("map", []string{"rowA", "rowB"}, []string{"1", "2"}, vals, valid)
	if !strings.Contains(out, "rowA") || !strings.Contains(out, "?") {
		t.Fatalf("heatmap missing row or filtered marker:\n%s", out)
	}
	if !strings.Contains(out, "scale") {
		t.Fatalf("heatmap missing scale:\n%s", out)
	}
}

func TestHeatmapUniform(t *testing.T) {
	vals := [][]float64{{2, 2}}
	valid := [][]bool{{true, true}}
	out := Heatmap("m", []string{"r"}, []string{"a", "b"}, vals, valid)
	if out == "" {
		t.Fatal("uniform heatmap must still render")
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadAMCSuite loads a BENCH_amc.json artifact.
func ReadAMCSuite(path string) (AMCSuite, error) {
	var s AMCSuite
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}

// CompareAMC is the bench regression gate: it reports every row of
// fresh whose graphs_per_sec fell more than tol (a fraction, e.g. 0.25)
// below the baseline row with the same (name, workers). Rows present
// on only one side are skipped — corpus growth is not a regression —
// and verdict changes are reported unconditionally (a different
// verdict makes the throughput comparison meaningless and is a bug in
// its own right). The returned lines are empty when the gate passes.
//
// The gate is built for same-machine comparisons (a developer's
// before/after, CI comparing against its own cached artifact); across
// machines the absolute numbers shift with the hardware, which is why
// the Makefile target accepts a tolerance override and an env skip.
func CompareAMC(baseline, fresh AMCSuite, tol float64) []string {
	type key struct {
		name    string
		workers int
	}
	base := make(map[key]AMCResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[key{r.Name, r.Workers}] = r
	}
	var bad []string
	for _, r := range fresh.Results {
		b, ok := base[key{r.Name, r.Workers}]
		if !ok {
			continue
		}
		if r.Verdict != b.Verdict {
			bad = append(bad, fmt.Sprintf("%s (w=%d): verdict changed %s -> %s",
				r.Name, r.Workers, b.Verdict, r.Verdict))
			continue
		}
		if b.GraphsPerSec <= 0 {
			continue
		}
		floor := b.GraphsPerSec * (1 - tol)
		if r.GraphsPerSec < floor {
			bad = append(bad, fmt.Sprintf("%s (w=%d): graphs/sec %.0f is %.1f%% below baseline %.0f (floor %.0f at %.0f%% tolerance)",
				r.Name, r.Workers, r.GraphsPerSec,
				100*(1-r.GraphsPerSec/b.GraphsPerSec), b.GraphsPerSec, floor, 100*tol))
		}
	}
	return bad
}

// BestOfAMC merges suites row-wise, keeping for each (name, workers)
// key the row with the highest graphs_per_sec. This is the gate's
// noise cure on loaded or throttled hosts: a machine can only ever
// subtract from true throughput, so across repeats the best
// measurement is the faithful one. Rows are emitted in the order of
// the first suite; metadata comes from the first suite too.
func BestOfAMC(suites ...AMCSuite) AMCSuite {
	if len(suites) == 0 {
		return AMCSuite{}
	}
	merged := suites[0]
	merged.Results = append([]AMCResult(nil), suites[0].Results...)
	type key struct {
		name    string
		workers int
	}
	idx := make(map[key]int, len(merged.Results))
	for i, r := range merged.Results {
		idx[key{r.Name, r.Workers}] = i
	}
	for _, s := range suites[1:] {
		for _, r := range s.Results {
			i, ok := idx[key{r.Name, r.Workers}]
			if !ok {
				idx[key{r.Name, r.Workers}] = len(merged.Results)
				merged.Results = append(merged.Results, r)
				continue
			}
			if r.GraphsPerSec > merged.Results[i].GraphsPerSec {
				merged.Results[i] = r
			}
		}
	}
	return merged
}

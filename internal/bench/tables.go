package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/report"
	"repro/internal/stats"
)

// Table2 renders raw records in the shape of the paper's Table 2
// (truncated to head/tail rows like the paper's listing when n is
// large).
func Table2(recs []Record, maxRows int) string {
	t := report.NewTable("Table 2: raw captured records",
		"arch", "algorithm", "seqopt", "threads_nb", "run_nb", "count", "duration", "throughput")
	add := func(r Record) {
		t.Add(r.Arch, r.Algorithm, r.Variant, r.Threads, r.Run, r.Count,
			fmt.Sprintf("%.4f", r.Duration), r.Throughput)
	}
	if len(recs) <= maxRows || maxRows <= 0 {
		for _, r := range recs {
			add(r)
		}
		return t.String()
	}
	half := maxRows / 2
	for _, r := range recs[:half] {
		add(r)
	}
	t.Add("...", "...", "...", "...", "...", "...", "...", "...")
	for _, r := range recs[len(recs)-half:] {
		add(r)
	}
	return t.String() + fmt.Sprintf("(%d records total)\n", len(recs))
}

// Table3 renders grouped statistics (mean, median, std, stability) per
// (arch, algorithm, variant, threads) — the paper's Table 3.
func Table3(groups []Group) string {
	t := report.NewTable("Table 3: records grouped by platform, lock, variant and thread count",
		"arch", "algorithm", "seqopt", "threads_nb", "mean", "median", "std", "stability")
	sorted := append([]Group(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Arch != b.Arch {
			return a.Arch < b.Arch
		}
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.Threads < b.Threads
	})
	for _, g := range sorted {
		t.Add(g.Arch, g.Algorithm, g.Variant, g.Threads,
			g.Mean, g.Median, g.Std, fmt.Sprintf("%.5f", g.Stability))
	}
	return t.String()
}

// Table4 categorizes groups by stability thresholds — the paper's
// Table 4 (≤1.1, >1.1, >1.2, >1.3, >1.4 with percentages).
func Table4(groups []Group) string {
	thresholds := []float64{1.1, 1.2, 1.3, 1.4}
	total := len(groups)
	leq := 0
	over := make([]int, len(thresholds))
	for _, g := range groups {
		if g.Stability <= thresholds[0] {
			leq++
		}
		for i, th := range thresholds {
			if g.Stability > th {
				over[i]++
			}
		}
	}
	t := report.NewTable("Table 4: number of experiments categorized by stability",
		"stability", "amount (absolute)", "amount (%)")
	pct := func(n int) string {
		if total == 0 {
			return "0.00%"
		}
		return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(total))
	}
	t.Add(fmt.Sprintf("<= %.1f", thresholds[0]), leq, pct(leq))
	for i, th := range thresholds {
		t.Add(fmt.Sprintf("> %.1f", th), over[i], pct(over[i]))
	}
	t.Add("Total", total, "100.00%")
	return t.String()
}

// Table5 renders the per-lock speedup summary (max, mean, min, std per
// architecture) — the paper's Table 5.
func Table5(speedups []Speedup) string {
	type key struct{ Arch, Algorithm string }
	byKey := map[key][]float64{}
	algs := map[string]bool{}
	arches := map[string]bool{}
	for _, s := range speedups {
		k := key{s.Arch, s.Algorithm}
		byKey[k] = append(byKey[k], s.Value)
		algs[s.Algorithm] = true
		arches[s.Arch] = true
	}
	var algList, archList []string
	for a := range algs {
		algList = append(algList, a)
	}
	for a := range arches {
		archList = append(archList, a)
	}
	sort.Strings(algList)
	sort.Strings(archList)

	headers := []string{"lock"}
	for _, a := range archList {
		headers = append(headers, a+" max", a+" mean", a+" min", a+" std")
	}
	t := report.NewTable("Table 5: speedups of VSync-optimized over sc-only variants", headers...)
	for _, alg := range algList {
		row := []any{alg}
		for _, arch := range archList {
			vals := byKey[key{arch, alg}]
			if len(vals) == 0 {
				row = append(row, "-", "-", "-", "-")
				continue
			}
			s := stats.Summarize(vals)
			row = append(row, fmt.Sprintf("%.4f", s.Max), fmt.Sprintf("%.4f", s.Mean),
				fmt.Sprintf("%.4f", s.Min), fmt.Sprintf("%.4f", s.Std))
		}
		t.Add(row...)
	}
	return t.String()
}

// SpeedupSeries returns the sorted speedup values of one architecture
// (the density data behind Fig. 24).
func SpeedupSeries(speedups []Speedup, arch string) []float64 {
	var out []float64
	for _, s := range speedups {
		if s.Arch == arch {
			out = append(out, s.Value)
		}
	}
	sort.Float64s(out)
	return out
}

// StabilitySeries returns the stability values of one architecture's
// groups (the density data behind Fig. 23).
func StabilitySeries(groups []Group, arch string) []float64 {
	var out []float64
	for _, g := range groups {
		if g.Arch == arch {
			out = append(out, g.Stability)
		}
	}
	sort.Float64s(out)
	return out
}

// archesOf lists the architectures present in the groups, sorted.
func archesOf(groups []Group) []string {
	set := map[string]bool{}
	for _, g := range groups {
		set[g.Arch] = true
	}
	var out []string
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Fig23 renders the stability density per architecture.
func Fig23(groups []Group) string {
	var b strings.Builder
	for _, arch := range archesOf(groups) {
		xs := StabilitySeries(groups, arch)
		h := stats.NewHistogram(xs, 8)
		centers := make([]float64, len(h.Counts))
		for i := range centers {
			centers[i] = h.BinCenter(i)
		}
		b.WriteString(report.HistogramText(
			fmt.Sprintf("Fig. 23: stability density, %s (count=%d)", arch, len(xs)),
			centers, h.Counts, 50))
	}
	return b.String()
}

// Fig24 renders the speedup density per architecture.
func Fig24(speedups []Speedup) string {
	arches := map[string]bool{}
	for _, s := range speedups {
		arches[s.Arch] = true
	}
	var list []string
	for a := range arches {
		list = append(list, a)
	}
	sort.Strings(list)
	var b strings.Builder
	for _, arch := range list {
		xs := SpeedupSeries(speedups, arch)
		h := stats.NewHistogram(xs, 10)
		centers := make([]float64, len(h.Counts))
		for i := range centers {
			centers[i] = h.BinCenter(i)
		}
		b.WriteString(report.HistogramText(
			fmt.Sprintf("Fig. 24: speedup density, %s (count=%d)", arch, len(xs)),
			centers, h.Counts, 50))
	}
	return b.String()
}

// FigHeatmap renders the per-lock×thread speedup heat map of one
// architecture — Figs. 25 (ARMv8) and 26 (x86_64). Filtered (unstable)
// combinations appear as '?', like the paper's white squares.
func FigHeatmap(title string, speedups []Speedup, arch string, threads []int) string {
	algs := map[string]bool{}
	for _, s := range speedups {
		if s.Arch == arch {
			algs[s.Algorithm] = true
		}
	}
	var algList []string
	for a := range algs {
		algList = append(algList, a)
	}
	sort.Strings(algList)

	vals := make([][]float64, len(algList))
	valid := make([][]bool, len(algList))
	colLabels := make([]string, len(threads))
	for j, th := range threads {
		colLabels[j] = fmt.Sprintf("%d", th)
	}
	index := map[string]int{}
	for i, a := range algList {
		index[a] = i
		vals[i] = make([]float64, len(threads))
		valid[i] = make([]bool, len(threads))
	}
	colOf := map[int]int{}
	for j, th := range threads {
		colOf[th] = j
	}
	for _, s := range speedups {
		if s.Arch != arch {
			continue
		}
		if j, ok := colOf[s.Threads]; ok {
			i := index[s.Algorithm]
			vals[i][j] = s.Value
			valid[i][j] = true
		}
	}
	return report.Heatmap(title, algList, colLabels, vals, valid)
}

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/structs"
	"repro/internal/vprog"
	"repro/internal/workload"
)

// The AMC benchmark suite tracks the verification hot path itself —
// graphs/sec, ns/run and allocs/run for every litmus test and the
// representative lock clients — as a machine-readable artifact
// (BENCH_amc.json), so the perf trajectory of the checker is recorded
// PR over PR instead of living in one-off benchmark logs. CI runs the
// suite with one measured run per target (bench-smoke); locally,
// `vsyncbench -amc` runs it with repetitions.

// AMCResult is one measured verification target at one worker count.
type AMCResult struct {
	Name         string  `json:"name"`
	Model        string  `json:"model"`
	Workers      int     `json:"workers"` // WorkersPerRun of the measured checker
	Verdict      string  `json:"verdict"`
	Graphs       int     `json:"graphs"`     // states popped per run
	Executions   int     `json:"executions"` // complete executions per run
	Runs         int     `json:"runs"`
	NsPerRun     int64   `json:"ns_per_run"`
	GraphsPerSec float64 `json:"graphs_per_sec"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	BytesPerRun  uint64  `json:"bytes_per_run"`
	// Work-graph scheduler counters of the warm-up run (zero for
	// sequential targets): how the items spread across workers.
	Steals     int `json:"steals,omitempty"`
	Stolen     int `json:"stolen,omitempty"`
	Contention int `json:"shard_contention,omitempty"`
	// Thread-symmetry reduction (schema v4). Symmetry marks rows whose
	// program declares validated symmetric thread groups and was
	// measured with the reduction on; their "/nosym"-suffixed twins
	// measure the same program with Checker.NoSymmetry set.
	// SymmetryRatio, on symmetric rows with a measured twin at the same
	// worker count, is states-explored-off / states-explored-on — the
	// up-to-t! state-space cut the reduction delivers.
	Symmetry      bool    `json:"symmetry,omitempty"`
	SymmetryRatio float64 `json:"symmetry_ratio,omitempty"`
	// Await-aware CAS loops (schema v6). Await marks structure rows
	// whose retry loops are lowered to the await constructs (AwaitDo /
	// AwaitWhile) and so explored under the retry-free-twin collapse
	// and the witness-candidate ⊥ gate; their "/bounded"-suffixed twins
	// measure the same structure with explicit bounded retry loops —
	// the pre-await encoding the differential tests keep as oracle.
	// AwaitRatio, on await rows with a measured twin at the same worker
	// count, is states-explored-bounded / states-explored-await — the
	// state-space cut the await reductions deliver.
	Await      bool    `json:"await,omitempty"`
	AwaitRatio float64 `json:"await_ratio,omitempty"`
}

// AMCSuite is the artifact written to BENCH_amc.json.
type AMCSuite struct {
	// Schema "amc-bench/v6": v5 (litmus + lock clients + micro/*
	// acyclicity rows — for those, one "graph" is one cycle check, so
	// graphs_per_sec reads as checks/sec — plus the thread-symmetry
	// on/off twin rows with their symmetry_ratio and the structs/*
	// rows of the structure-agnostic workload layer) extended with the
	// await/bounded twin rows: the stack and queue measured both with
	// their CAS loops lowered to the await constructs and as explicit
	// bounded retry loops ("/bounded"), stamping await_ratio on the
	// await rows, plus the treiber-t3 rung those reductions unlocked.
	Schema  string      `json:"schema"`
	Go      string      `json:"go"`
	GOOS    string      `json:"goos"`
	GOARCH  string      `json:"goarch"`
	CPUs    int         `json:"cpus"`
	Date    string      `json:"date"`
	Results []AMCResult `json:"results"`
}

// amcTarget is one verification problem of the suite at one worker
// count.
type amcTarget struct {
	name    string
	model   mm.Model
	workers int
	nosym   bool // measure with thread-symmetry reduction disabled
	await   bool // program encodes its retry loops with the await constructs
	prog    func() *vprog.Program
}

// DefaultScaleWorkers is the worker ladder measured on the scaling
// targets: the intra-run work-stealing curve recorded PR over PR.
var DefaultScaleWorkers = []int{1, 2, 4, 8}

// amcTargets enumerates the suite: the litmus corpus (weak variants
// under WMM), the single-lock clients the paper's studies revolve
// around, and — for each entry of scaleWorkers — the large 3-thread MCS
// client whose work-stealing scaling curve the suite tracks. (On a
// single-CPU host the curve is necessarily flat; the cpus field records
// the context.)
func amcTargets(scaleWorkers []int) []amcTarget {
	var ts []amcTarget
	for _, name := range harness.LitmusNames() {
		name := name
		ts = append(ts, amcTarget{
			name:    "litmus/" + name,
			model:   mm.WMM,
			workers: 1,
			prog:    func() *vprog.Program { return harness.Litmus(name, false) },
		})
	}
	for _, lk := range []string{"spin", "ttas", "ticket", "mcs", "clh", "qspin"} {
		lk := lk
		mk := func() *vprog.Program {
			alg := locks.ByName(lk)
			return harness.MutexClient(alg, alg.DefaultSpec(), 2, 1)
		}
		// Symmetry on/off twins: the same client measured with and
		// without the reduction, so the artifact records both the
		// canonicalization overhead per pop and the state-space cut.
		ts = append(ts,
			amcTarget{name: "lock/" + lk, model: mm.WMM, workers: 1, prog: mk},
			amcTarget{name: "lock/" + lk + "/nosym", model: mm.WMM, workers: 1, nosym: true, prog: mk})
	}
	// The structure workloads: the three t=2 cells the suite ladder
	// carries, plus the cells whose validated groups make a symmetry
	// ratio worth recording — the Treiber whole-set 2!, the seqlock
	// reader pair 2!, and the queue's producer x consumer 2!*2!. The
	// t=2 queue (one producer, one consumer) and t=2 seqlock (a single
	// reader) have no symmetric pair, so no /nosym twin is measured.
	// The stack and queue additionally get "/bounded" twins — the same
	// structure with explicit bounded retry loops instead of awaits —
	// so each await row's await_ratio records the cut delivered by the
	// retry-free-twin collapse and the ⊥ gate; treiber-t3 is the rung
	// those reductions brought into bench range (the seqlock has no
	// sound bounded encoding, hence no twin).
	for _, sc := range []struct {
		name    string
		w       workload.Workload
		bounded workload.Workload // nil: no /bounded twin measured
		threads int
		twin    bool // measure a /nosym twin for the symmetry ratio
	}{
		{"structs/treiber", structs.Treiber(1), structs.TreiberBounded(1), 2, true},
		{"structs/msqueue", structs.MSQueue(2), structs.MSQueueBounded(2), 2, false},
		{"structs/seqlock", structs.SeqlockPair(1), nil, 2, false},
		{"structs/msqueue-t4", structs.MSQueue(1), nil, 4, true},
		{"structs/seqlock-t3", structs.SeqlockPair(1), nil, 3, true},
		{"structs/treiber-t3", structs.Treiber(1), structs.TreiberBounded(1), 3, false},
	} {
		sc := sc
		mk := func() *vprog.Program { return workload.Program(sc.w, nil, sc.threads) }
		ts = append(ts, amcTarget{name: sc.name, model: mm.WMM, workers: 1, await: true, prog: mk})
		if sc.twin {
			ts = append(ts, amcTarget{name: sc.name + "/nosym", model: mm.WMM, workers: 1, nosym: true, await: true, prog: mk})
		}
		if sc.bounded != nil {
			bk := func() *vprog.Program { return workload.Program(sc.bounded, nil, sc.threads) }
			ts = append(ts, amcTarget{name: sc.name + "/bounded", model: mm.WMM, workers: 1, prog: bk})
		}
	}
	mkMCS3 := func() *vprog.Program {
		alg := locks.ByName("mcs")
		return harness.MutexClient(alg, alg.DefaultSpec(), 3, 1)
	}
	for _, w := range scaleWorkers {
		ts = append(ts, amcTarget{
			name:    "scale/mcs-t3",
			model:   mm.WMM,
			workers: w,
			prog:    mkMCS3,
		})
	}
	if len(scaleWorkers) > 0 {
		// One unreduced twin (sequential) anchors the t=3 symmetry
		// ratio — the 3! orbit collapse the tentpole is measured by.
		ts = append(ts, amcTarget{name: "scale/mcs-t3/nosym", model: mm.WMM, workers: 1, nosym: true, prog: mkMCS3})
	}
	return ts
}

// RunAMCSuite measures every target with the given number of measured
// runs (after one warm-up) and the default scaling ladder.
func RunAMCSuite(runs int) AMCSuite {
	return RunAMCSuiteWorkers(runs, DefaultScaleWorkers)
}

// RunAMCSuiteWorkers is RunAMCSuite with an explicit worker ladder for
// the scaling targets (empty: skip them).
func RunAMCSuiteWorkers(runs int, scaleWorkers []int) AMCSuite {
	if runs < 1 {
		runs = 1
	}
	s := AMCSuite{
		Schema: "amc-bench/v6",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Date:   time.Now().UTC().Format(time.RFC3339),
	}
	newChecker := func(tgt amcTarget) *core.Checker {
		c := core.New(tgt.model)
		c.WorkersPerRun = tgt.workers
		c.NoSymmetry = tgt.nosym
		return c
	}
	var ms0, ms1 runtime.MemStats
	for _, tgt := range amcTargets(scaleWorkers) {
		p := tgt.prog()
		warm := newChecker(tgt).Run(p) // warm-up; also fixes the expected profile
		r := AMCResult{
			Name:       tgt.name,
			Model:      tgt.model.Name(),
			Workers:    tgt.workers,
			Verdict:    warm.Verdict.String(),
			Graphs:     warm.Stats.Popped,
			Executions: warm.Stats.Executions,
			Runs:       runs,
			Steals:     warm.Sched.Steals,
			Stolen:     warm.Sched.Stolen,
			Contention: warm.Sched.Contention,
			Symmetry:   !tgt.nosym && p.SymSpec() != nil,
			Await:      tgt.await,
		}
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		timedGraphs := 0
		for i := 0; i < runs; i++ {
			timedGraphs += newChecker(tgt).Run(p).Stats.Popped
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		r.NsPerRun = elapsed.Nanoseconds() / int64(runs)
		if elapsed > 0 {
			// Throughput from the timed runs' own pop counts: parallel
			// schedules pop slightly different state counts run to run, so
			// pairing the warm-up's count with the timed runs' clock would
			// bias exactly the scaling curve this suite tracks.
			r.GraphsPerSec = float64(timedGraphs) / elapsed.Seconds()
		}
		r.AllocsPerRun = (ms1.Mallocs - ms0.Mallocs) / uint64(runs)
		r.BytesPerRun = (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(runs)
		s.Results = append(s.Results, r)
	}
	// Stamp symmetry_ratio onto each reduced row with a measured
	// "/nosym" twin at the same worker count: states explored without
	// the reduction over states explored with it.
	type rkey struct {
		name    string
		workers int
	}
	off := make(map[rkey]int)
	for _, r := range s.Results {
		if n := strings.TrimSuffix(r.Name, "/nosym"); n != r.Name {
			off[rkey{n, r.Workers}] = r.Graphs
		}
	}
	for i := range s.Results {
		r := &s.Results[i]
		if r.Symmetry && r.Graphs > 0 {
			if g, ok := off[rkey{r.Name, r.Workers}]; ok {
				r.SymmetryRatio = float64(g) / float64(r.Graphs)
			}
		}
	}
	// Likewise await_ratio from each await row's "/bounded" twin:
	// states explored by the explicit bounded-retry encoding over
	// states explored with the loops lowered to awaits.
	boff := make(map[rkey]int)
	for _, r := range s.Results {
		if n := strings.TrimSuffix(r.Name, "/bounded"); n != r.Name {
			boff[rkey{n, r.Workers}] = r.Graphs
		}
	}
	for i := range s.Results {
		r := &s.Results[i]
		if r.Await && r.Graphs > 0 {
			if g, ok := boff[rkey{r.Name, r.Workers}]; ok {
				r.AwaitRatio = float64(g) / float64(r.Graphs)
			}
		}
	}
	s.Results = append(s.Results, acyclicMicroRows()...)
	return s
}

// acyclicMicroRows measures the acyclicity engine in isolation on a
// union-shaped DAG of n=96 events (three transitive po chains plus
// deterministic cross edges — the sb ∪ rf ∪ mo ∪ fr shape the
// consistency predicates hand it): the legacy transitive closure
// (HasCycle), the closure-free Kahn pass (Acyclic), and the
// order-seeded fast path (AcyclicWithOrder on a valid cached order).
// One "graph" is one check; graphs_per_sec is checks/sec.
func acyclicMicroRows() []AMCResult {
	const n = 96
	m := graph.NewBitMat(n)
	// Three po chains of 32 (transitive), like three threads.
	for c := 0; c < 3; c++ {
		lo := c * 32
		for i := lo; i < lo+32; i++ {
			for j := i + 1; j < lo+32; j++ {
				m.Set(i, j)
			}
		}
	}
	// Deterministic forward cross edges (rf/mo/fr-like, acyclic by
	// construction: always low index to high).
	seed := uint64(0x9e3779b97f4a7c15)
	for e := 0; e < 4*n; e++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		i := int(seed>>33) % n
		j := int(seed>>13) % n
		if i > j {
			i, j = j, i
		}
		if i != j {
			m.Set(i, j)
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i) // identity is a valid topological order here
	}

	measure := func(name string, fn func() bool) AMCResult {
		fn() // warm pools
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		// Run batches until the timed window is long enough that a
		// single scheduler preemption cannot swing the row (these rows
		// feed the bench-check gate, so µs-scale windows would be
		// flaky on loaded hosts).
		const minWindow = 100 * time.Millisecond
		iters := int64(0)
		start := time.Now()
		var elapsed time.Duration
		for {
			for i := 0; i < 2000; i++ {
				if !fn() {
					panic("bench: micro DAG judged cyclic")
				}
			}
			iters += 2000
			if elapsed = time.Since(start); elapsed >= minWindow {
				break
			}
		}
		runtime.ReadMemStats(&ms1)
		r := AMCResult{
			Name:         name,
			Model:        "bitmat",
			Workers:      1,
			Verdict:      "ok",
			Graphs:       1,
			Runs:         int(iters),
			NsPerRun:     elapsed.Nanoseconds() / iters,
			AllocsPerRun: (ms1.Mallocs - ms0.Mallocs) / uint64(iters),
			BytesPerRun:  (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(iters),
		}
		if elapsed > 0 {
			r.GraphsPerSec = float64(iters) / elapsed.Seconds()
		}
		return r
	}
	return []AMCResult{
		measure("micro/closure-n96", func() bool { return !m.HasCycle() }),
		measure("micro/kahn-n96", func() bool { return m.Acyclic() }),
		measure("micro/seeded-n96", func() bool { return m.AcyclicWithOrder(order) }),
	}
}

// WriteJSON writes the suite artifact to path.
func (s AMCSuite) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the suite as a table, including the work-stealing
// scheduler counters of the multi-worker scaling targets.
func (s AMCSuite) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AMC hot-path benchmark (%s %s/%s, %d cpus, %d run(s) per target)\n",
		s.Go, s.GOOS, s.GOARCH, s.CPUs, runsOf(s))
	fmt.Fprintf(&b, "%-24s %3s %-8s %8s %12s %14s %12s %12s %8s %10s %7s %7s\n",
		"target", "w", "verdict", "graphs", "ns/run", "graphs/sec", "allocs/run", "B/run", "steals", "contention", "sym", "await")
	for _, r := range s.Results {
		sym := ""
		if r.SymmetryRatio > 0 {
			sym = fmt.Sprintf("%.2fx", r.SymmetryRatio)
		}
		aw := ""
		if r.AwaitRatio > 0 {
			aw = fmt.Sprintf("%.2fx", r.AwaitRatio)
		}
		fmt.Fprintf(&b, "%-24s %3d %-8s %8d %12d %14.0f %12d %12d %8d %10d %7s %7s\n",
			r.Name, r.Workers, shortVerdict(r.Verdict), r.Graphs, r.NsPerRun, r.GraphsPerSec,
			r.AllocsPerRun, r.BytesPerRun, r.Steals, r.Contention, sym, aw)
	}
	return b.String()
}

// Errors returns the names of targets whose verification ended in an
// internal error — the checker failing, not the program. CI fails the
// bench-smoke job on these.
func (s AMCSuite) Errors() []string {
	var bad []string
	for _, r := range s.Results {
		if r.Verdict == core.Error.String() {
			bad = append(bad, r.Name)
		}
	}
	return bad
}

func runsOf(s AMCSuite) int {
	if len(s.Results) == 0 {
		return 0
	}
	return s.Results[0].Runs
}

func shortVerdict(v string) string {
	switch v {
	case "safety violation":
		return "safety"
	case "await-termination violation":
		return "at-viol"
	}
	return v
}

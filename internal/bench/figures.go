package bench

import (
	"fmt"
	"strings"

	"repro/internal/locks"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/vprog"
	"repro/internal/wmsim"
)

// MCSImpl is one implementation in the Fig. 27 comparison.
type MCSImpl struct {
	Label string
	Alg   *locks.Algorithm
	Spec  func() *vprog.BarrierSpec
}

// MCSImpls returns the four MCS implementations of Fig. 27:
//
//   - CertiKOS: the verified kernel's lock, sc-only operations;
//   - ck: Concurrency Kit's fence-based style (explicit acquire/release
//     fences around relaxed operations);
//   - DPDK: the fixed rte_mcslock barrier assignment (§3.1);
//   - own impl.: our VSync-optimized MCS.
func MCSImpls() []MCSImpl {
	certikos := locks.ByName("certikosmcs")
	dpdk := locks.ByName("dpdkmcs")
	mcs := locks.ByName("mcs")
	ck := func() *vprog.BarrierSpec {
		// Fence-based style on the certikos skeleton: relaxed accesses
		// ordered by explicit fences.
		s := certikos.DefaultSpec()
		s.Set("certikos.xchg_tail", vprog.AcqRel)
		s.Set("certikos.set_prev_next", vprog.Rlx)
		s.Set("certikos.await_locked", vprog.Rlx)
		s.Set("certikos.post_await_fence", vprog.Acq)
		s.Set("certikos.read_next", vprog.Rlx)
		s.Set("certikos.await_next", vprog.Rlx)
		s.Set("certikos.pre_handoff_fence", vprog.Rel)
		s.Set("certikos.handoff", vprog.Rlx)
		return s
	}
	return []MCSImpl{
		{Label: "CertiKOS", Alg: certikos, Spec: func() *vprog.BarrierSpec { return certikos.DefaultSpec().AllSC() }},
		{Label: "ck", Alg: certikos, Spec: ck},
		{Label: "DPDK", Alg: dpdk, Spec: dpdk.DefaultSpec},
		{Label: "own impl.", Alg: mcs, Spec: mcs.DefaultSpec},
	}
}

// runSpec is RunOne generalized to an explicit spec (used by Fig. 27
// and the cs/es sweeps).
func runSpec(mc *wmsim.Machine, alg *locks.Algorithm, spec *vprog.BarrierSpec,
	threads, run int, cycles uint64, csSize, esSize int) Record {

	seed := uint64(run+17)*99_991 ^ uint64(threads)<<24
	sim := wmsim.NewSim(mc, threads, cycles, seed)
	env := sim.Env()
	lk := alg.New(env, spec, threads)
	cs := make([]*vprog.Var, csSize)
	for i := range cs {
		cs[i] = env.Var(fmt.Sprintf("bench.cs.%d", i), 0)
	}
	es := make([][]*vprog.Var, threads)
	for t := range es {
		es[t] = make([]*vprog.Var, esSize)
		for j := range es[t] {
			es[t][j] = env.Var(fmt.Sprintf("bench.es.%d.%d", t, j), 0)
		}
	}
	counts, elapsed := sim.Run(func(m vprog.Mem, tid int, done func()) {
		tok := lk.Acquire(m)
		for _, v := range cs {
			m.Store(v, m.Load(v, vprog.Rlx)+1, vprog.Rlx)
		}
		lk.Release(m, tok)
		for _, v := range es[tid] {
			m.Store(v, m.Load(v, vprog.Rlx)+1, vprog.Rlx)
		}
		done()
	})
	var total uint64
	for _, c := range counts {
		total += c
	}
	dur := float64(elapsed) / (mc.FreqGHz * 1e9)
	r := Record{Arch: mc.Name, Algorithm: alg.Name, Threads: threads, Run: run,
		Count: total, Duration: dur}
	if dur > 0 {
		r.Throughput = float64(total) / dur
	}
	return r
}

// Fig27 compares the MCS implementations across thread counts on one
// machine: median throughput (M iterations/s) per implementation.
func Fig27(mc *wmsim.Machine, threads []int, runs int, cycles uint64) string {
	impls := MCSImpls()
	headers := []string{"threads"}
	for _, im := range impls {
		headers = append(headers, im.Label)
	}
	t := report.NewTable(
		fmt.Sprintf("Fig. 27: MCS lock implementations on %s (median throughput, M iters/s)", mc.Name),
		headers...)
	for _, th := range threads {
		if th > mc.Cores {
			continue
		}
		row := []any{th}
		for _, im := range impls {
			var xs []float64
			for run := 1; run <= runs; run++ {
				r := runSpec(mc, im.Alg, im.Spec(), th, run, cycles, 1, 0)
				xs = append(xs, r.Throughput/1e6)
			}
			row = append(row, stats.Summarize(xs).Median)
		}
		t.Add(row...)
	}
	return t.String()
}

// CSSweep measures the §4.2.2 critical-section-size finding: as
// cs_size grows, the barrier-optimization speedup shrinks and all locks
// converge. It returns (report, speedup per cs size for the chosen
// lock).
func CSSweep(mc *wmsim.Machine, algName string, threads int, sizes []int, cycles uint64) (string, map[int]float64) {
	alg := locks.ByName(algName)
	t := report.NewTable(
		fmt.Sprintf("critical-section size sweep: %s on %s, %d threads", algName, mc.Name, threads),
		"cs_size", "opt (cs/s)", "seq (cs/s)", "speedup")
	out := map[int]float64{}
	for _, size := range sizes {
		opt := runSpec(mc, alg, alg.DefaultSpec(), threads, 1, cycles, size, 0)
		seq := runSpec(mc, alg, alg.DefaultSpec().AllSC(), threads, 1, cycles, size, 0)
		sp := 0.0
		if seq.Throughput > 0 {
			sp = opt.Throughput/seq.Throughput - 1
		}
		out[size] = sp
		t.Add(size, opt.Throughput, seq.Throughput, fmt.Sprintf("%.4f", sp))
	}
	return t.String(), out
}

// ESSweep measures the companion finding: work outside the critical
// section does not change the speedup materially.
func ESSweep(mc *wmsim.Machine, algName string, threads int, sizes []int, cycles uint64) (string, map[int]float64) {
	alg := locks.ByName(algName)
	t := report.NewTable(
		fmt.Sprintf("outside-section size sweep: %s on %s, %d threads", algName, mc.Name, threads),
		"es_size", "opt (cs/s)", "seq (cs/s)", "speedup")
	out := map[int]float64{}
	for _, size := range sizes {
		opt := runSpec(mc, alg, alg.DefaultSpec(), threads, 1, cycles, 1, size)
		seq := runSpec(mc, alg, alg.DefaultSpec().AllSC(), threads, 1, cycles, 1, size)
		sp := 0.0
		if seq.Throughput > 0 {
			sp = opt.Throughput/seq.Throughput - 1
		}
		out[size] = sp
		t.Add(size, opt.Throughput, seq.Throughput, fmt.Sprintf("%.4f", sp))
	}
	return t.String(), out
}

// Fig25 and Fig26 are the architecture heat maps.
func Fig25(speedups []Speedup, threads []int) string {
	return FigHeatmap("Fig. 25: speedups observed on ARMv8 target", speedups, "ARMv8", threads)
}

// Fig26 is the x86 heat map.
func Fig26(speedups []Speedup, threads []int) string {
	return FigHeatmap("Fig. 26: speedups observed on x86_64 target", speedups, "x86_64", threads)
}

// Table1 reproduces the qspinlock barrier-count table: the historical
// Linux rows (from the paper) plus a live row computed from the
// optimizer's resulting spec.
func Table1(optCounts vprog.ModeCounts, optTime string) string {
	t := report.NewTable("Table 1: barrier optimization results for Linux's qspinlock",
		"version", "acq", "rel", "sc", "time", "correctness")
	rows := []struct {
		v          string
		a, r, s    int
		time, corr string
	}{
		{"Linux 4.4", 3, 6, 6, "2015/09/11", "Not verified"},
		{"Linux 4.5", 6, 2, 1, "2015/11/09", "Barrier bug, fixed in 4.16"},
		{"Linux 4.8", 6, 3, 0, "2016/06/03", "Barrier bug, fixed in 4.16"},
		{"Linux 4.16", 6, 4, 0, "2018/02/13", "Not verified"},
		{"Linux 5.6", 6, 2, 1, "2020/01/07", "Not verified"},
	}
	for _, r := range rows {
		t.Add(r.v, r.a, r.r, r.s, r.time, r.corr)
	}
	t.Add("VSYNC (paper)", 7, 2, 1, "11 minutes", "VSYNC-verified")
	t.Add("this repro", optCounts.Acq, optCounts.Rel, optCounts.SC, optTime, "AMC-verified (WMM)")
	return t.String()
}

// CampaignReport runs a campaign and renders every §4.2 artifact in
// one string — used by cmd/vsyncbench and the benchmark harness.
func CampaignReport(cfg Config) string {
	recs := RunCampaign(cfg)
	groups := GroupRecords(recs)
	kept, dropped := StabilityFilter(groups, 1.2)
	speedups := Speedups(kept)

	var b strings.Builder
	b.WriteString(Table2(recs, 16))
	b.WriteByte('\n')
	b.WriteString(Table3(groups))
	b.WriteByte('\n')
	b.WriteString(Table4(groups))
	fmt.Fprintf(&b, "\n(filtered out %d of %d groups above stability 1.2)\n\n", len(dropped), len(groups))
	b.WriteString(Table5(speedups))
	b.WriteByte('\n')
	b.WriteString(Fig23(groups))
	b.WriteByte('\n')
	b.WriteString(Fig24(speedups))
	b.WriteByte('\n')
	b.WriteString(Fig25(speedups, cfg.Threads))
	b.WriteByte('\n')
	b.WriteString(Fig26(speedups, cfg.Threads))
	return b.String()
}

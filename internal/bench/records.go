// Package bench implements the paper's optimized-code evaluation
// (§4.2): the microbenchmark campaign of Listing 1 — every thread
// repeatedly acquires a lock, increments a shared counter, releases —
// across two simulated platforms, 18 lock algorithms, the sc-only and
// VSync-optimized barrier variants, the paper's thread counts, and
// repeated runs; plus the record grouping, stability filtering, speedup
// computation and table/figure emitters that turn raw records into
// Tables 2–5 and Figs. 23–27.
package bench

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/stats"
	"repro/internal/vprog"
	"repro/internal/wmsim"
)

// Record is one raw measurement — the columns of Table 2.
type Record struct {
	Arch       string
	Algorithm  string
	Variant    string // "opt" (VSync-optimized) or "seq" (sc-only)
	Threads    int
	Run        int
	Count      uint64  // critical sections completed
	Duration   float64 // seconds (virtual)
	Throughput float64 // Count / Duration
}

// Variants of each algorithm measured by the campaign.
const (
	VariantOpt = "opt"
	VariantSeq = "seq"
)

// Config parameterizes a campaign.
type Config struct {
	Machines   []*wmsim.Machine
	Algorithms []*locks.Algorithm
	Threads    []int
	Runs       int
	// Cycles is the virtual duration of each run (the paper runs 30 s
	// wall-clock; we run a fixed virtual window).
	Cycles uint64
	// CSSize / ESSize are the §4.2.2 knobs: cache lines touched inside /
	// outside the critical section.
	CSSize, ESSize int
}

// PaperThreads is the paper's contention ladder (§4.2.1). The 127-case
// runs only on platforms with 128 cores, as in the paper.
var PaperThreads = []int{1, 2, 4, 8, 16, 23, 31, 63, 95, 127}

// Default returns the full campaign configuration.
func Default() Config {
	return Config{
		Machines:   wmsim.Machines(),
		Algorithms: locks.Benchmarkable(),
		Threads:    PaperThreads,
		Runs:       5,
		Cycles:     200_000,
		CSSize:     1,
		ESSize:     0,
	}
}

// Quick returns a reduced campaign for tests and default bench runs.
func Quick() Config {
	c := Default()
	c.Threads = []int{1, 2, 8, 31, 95}
	c.Runs = 3
	c.Cycles = 120_000
	return c
}

// RunOne executes a single microbenchmark run and returns its record.
func RunOne(mc *wmsim.Machine, alg *locks.Algorithm, variant string,
	threads, run int, cfg Config) Record {

	spec := alg.DefaultSpec()
	if variant == VariantSeq {
		spec = spec.AllSC()
	}
	seed := uint64(run+1)*1_000_003 ^ uint64(threads)<<32 ^ uint64(len(alg.Name))
	sim := wmsim.NewSim(mc, threads, cfg.Cycles, seed)
	env := sim.Env()
	lk := alg.New(env, spec, threads)

	// Shared cache lines touched inside the critical section.
	cs := make([]*vprog.Var, cfg.CSSize)
	for i := range cs {
		cs[i] = env.Var(fmt.Sprintf("bench.cs.%d", i), 0)
	}
	// Private lines touched outside the critical section.
	es := make([][]*vprog.Var, threads)
	for t := range es {
		es[t] = make([]*vprog.Var, cfg.ESSize)
		for j := range es[t] {
			es[t][j] = env.Var(fmt.Sprintf("bench.es.%d.%d", t, j), 0)
		}
	}

	counts, elapsed := sim.Run(func(m vprog.Mem, tid int, done func()) {
		tok := lk.Acquire(m)
		for _, v := range cs {
			m.Store(v, m.Load(v, vprog.Rlx)+1, vprog.Rlx)
		}
		lk.Release(m, tok)
		for _, v := range es[tid] {
			m.Store(v, m.Load(v, vprog.Rlx)+1, vprog.Rlx)
		}
		done()
	})

	var total uint64
	for _, c := range counts {
		total += c
	}
	dur := float64(elapsed) / (mc.FreqGHz * 1e9)
	r := Record{
		Arch: mc.Name, Algorithm: alg.Name, Variant: variant,
		Threads: threads, Run: run, Count: total, Duration: dur,
	}
	if dur > 0 {
		r.Throughput = float64(total) / dur
	}
	return r
}

// RunCampaign executes the full cartesian product of the configuration
// and returns the raw records (Table 2).
func RunCampaign(cfg Config) []Record {
	var out []Record
	for _, mc := range cfg.Machines {
		for _, alg := range cfg.Algorithms {
			for _, variant := range []string{VariantOpt, VariantSeq} {
				for _, th := range cfg.Threads {
					if th > mc.Cores {
						continue // the paper omits 127 threads on the 96-core box
					}
					for run := 1; run <= cfg.Runs; run++ {
						out = append(out, RunOne(mc, alg, variant, th, run, cfg))
					}
				}
			}
		}
	}
	return out
}

// GroupKey identifies one measurement group (Table 3 row).
type GroupKey struct {
	Arch      string
	Algorithm string
	Variant   string
	Threads   int
}

// Group is a summarized measurement group.
type Group struct {
	GroupKey
	stats.Summary // over throughput
}

// GroupRecords groups raw records by (arch, algorithm, variant,
// threads) and summarizes each group's throughput — Table 3.
func GroupRecords(recs []Record) []Group {
	byKey := map[GroupKey][]float64{}
	var order []GroupKey
	for _, r := range recs {
		k := GroupKey{r.Arch, r.Algorithm, r.Variant, r.Threads}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], r.Throughput)
	}
	out := make([]Group, 0, len(order))
	for _, k := range order {
		out = append(out, Group{GroupKey: k, Summary: stats.Summarize(byKey[k])})
	}
	return out
}

// StabilityFilter drops groups whose stability exceeds the threshold
// (the paper filters records above 1.2, §4.2.2).
func StabilityFilter(groups []Group, threshold float64) (kept, dropped []Group) {
	for _, g := range groups {
		if g.Stability <= threshold {
			kept = append(kept, g)
		} else {
			dropped = append(dropped, g)
		}
	}
	return
}

// Speedup is one VSync-optimized vs sc-only comparison.
type Speedup struct {
	Arch      string
	Algorithm string
	Threads   int
	Value     float64 // To/Ts - 1
}

// Speedups computes the paper's speedup metric To/Ts − 1 from grouped
// medians, pairing opt and seq groups with equal (arch, algorithm,
// threads). Groups missing their counterpart are skipped.
func Speedups(groups []Group) []Speedup {
	med := map[GroupKey]float64{}
	for _, g := range groups {
		med[g.GroupKey] = g.Median
	}
	var out []Speedup
	for _, g := range groups {
		if g.Variant != VariantOpt {
			continue
		}
		seqKey := g.GroupKey
		seqKey.Variant = VariantSeq
		ts, ok := med[seqKey]
		if !ok || ts == 0 {
			continue
		}
		out = append(out, Speedup{
			Arch: g.Arch, Algorithm: g.Algorithm, Threads: g.Threads,
			Value: g.Median/ts - 1,
		})
	}
	return out
}

package bench_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/locks"
	"repro/internal/stats"
	"repro/internal/wmsim"
)

// tinyConfig keeps unit tests fast while exercising every code path.
func tinyConfig() bench.Config {
	cfg := bench.Quick()
	cfg.Threads = []int{1, 2, 8}
	cfg.Runs = 3
	cfg.Cycles = 50_000
	cfg.Algorithms = []*locks.Algorithm{
		locks.ByName("spin"), locks.ByName("ttas"),
		locks.ByName("mcs"), locks.ByName("qspin"),
	}
	return cfg
}

func TestCampaignShape(t *testing.T) {
	cfg := tinyConfig()
	recs := bench.RunCampaign(cfg)
	// 2 machines × 4 locks × 2 variants × 3 thread counts × 3 runs.
	want := 2 * 4 * 2 * 3 * 3
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Count == 0 || r.Throughput <= 0 {
			t.Fatalf("degenerate record: %+v", r)
		}
	}
	groups := bench.GroupRecords(recs)
	if len(groups) != want/cfg.Runs {
		t.Fatalf("got %d groups, want %d", len(groups), want/cfg.Runs)
	}
	for _, g := range groups {
		if g.N != cfg.Runs {
			t.Fatalf("group %+v has %d samples, want %d", g.GroupKey, g.N, cfg.Runs)
		}
		if g.Stability < 1.0 {
			t.Fatalf("stability below 1.0: %+v", g)
		}
	}
	speedups := bench.Speedups(groups)
	if len(speedups) != len(groups)/2 {
		t.Fatalf("got %d speedups, want %d", len(speedups), len(groups)/2)
	}
}

// TestSpeedupShape asserts the paper's qualitative results: optimized
// is at least as fast as sc-only at a single thread, and the x86
// single-thread speedups are the most pronounced.
func TestSpeedupShape(t *testing.T) {
	cfg := tinyConfig()
	recs := bench.RunCampaign(cfg)
	speedups := bench.Speedups(bench.GroupRecords(recs))
	var x86One, armOne []float64
	for _, s := range speedups {
		if s.Threads != 1 {
			continue
		}
		if s.Arch == "x86_64" {
			x86One = append(x86One, s.Value)
		} else {
			armOne = append(armOne, s.Value)
		}
	}
	if len(x86One) == 0 || len(armOne) == 0 {
		t.Fatal("missing single-thread speedups")
	}
	for _, v := range append(append([]float64{}, x86One...), armOne...) {
		if v < -0.05 {
			t.Errorf("optimized variant slower than sc-only at 1 thread: %.4f", v)
		}
	}
	sx := stats.Summarize(x86One)
	sa := stats.Summarize(armOne)
	if sx.Max <= sa.Max {
		t.Errorf("expected the most pronounced single-thread speedup on x86 (paper: up to 7x): x86 max %.3f vs arm max %.3f", sx.Max, sa.Max)
	}
}

func TestTablesRender(t *testing.T) {
	cfg := tinyConfig()
	recs := bench.RunCampaign(cfg)
	groups := bench.GroupRecords(recs)
	speedups := bench.Speedups(groups)

	if s := bench.Table2(recs, 10); !strings.Contains(s, "throughput") {
		t.Error("Table 2 missing throughput column")
	}
	if s := bench.Table3(groups); !strings.Contains(s, "stability") {
		t.Error("Table 3 missing stability column")
	}
	if s := bench.Table4(groups); !strings.Contains(s, "Total") {
		t.Error("Table 4 missing total row")
	}
	if s := bench.Table5(speedups); !strings.Contains(s, "mcs") {
		t.Error("Table 5 missing mcs row")
	}
	if s := bench.Fig23(groups); !strings.Contains(s, "stability density") {
		t.Error("Fig 23 missing")
	}
	if s := bench.Fig24(speedups); !strings.Contains(s, "speedup density") {
		t.Error("Fig 24 missing")
	}
	if s := bench.Fig25(speedups, cfg.Threads); !strings.Contains(s, "ARMv8") {
		t.Error("Fig 25 missing")
	}
	if s := bench.Fig26(speedups, cfg.Threads); !strings.Contains(s, "x86_64") {
		t.Error("Fig 26 missing")
	}
}

func TestFig27Shape(t *testing.T) {
	out := bench.Fig27(wmsim.ARMv8(), []int{1, 2, 8}, 2, 40_000)
	for _, label := range []string{"CertiKOS", "ck", "DPDK", "own impl."} {
		if !strings.Contains(out, label) {
			t.Errorf("Fig 27 missing %s column", label)
		}
	}
}

// TestCSSweepShape asserts the §4.2.2 finding: growing critical
// sections shrink the barrier-optimization speedup.
func TestCSSweepShape(t *testing.T) {
	_, sp := bench.CSSweep(wmsim.X86(), "spin", 1, []int{1, 16, 64}, 60_000)
	if sp[1] <= sp[64] {
		t.Errorf("speedup should shrink with cs size: cs=1 %.4f vs cs=64 %.4f", sp[1], sp[64])
	}
}

// TestESSweepShape asserts the companion finding: outside-section work
// does not change the speedup much (both already include it).
func TestESSweepShape(t *testing.T) {
	_, sp := bench.ESSweep(wmsim.X86(), "spin", 2, []int{0, 16}, 60_000)
	d := sp[0] - sp[16]
	if d < 0 {
		d = -d
	}
	if d > 0.5 {
		t.Errorf("speedup should be insensitive to es size, got %.4f vs %.4f", sp[0], sp[16])
	}
}

func TestTable1Renders(t *testing.T) {
	alg := locks.ByName("qspin")
	out := bench.Table1(alg.DefaultSpec().Counts(), "n/a (see BenchmarkTable1)")
	for _, needle := range []string{"Linux 4.4", "VSYNC (paper)", "this repro"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Table 1 missing row %q", needle)
		}
	}
}

// TestCompareAMC pins the regression-gate semantics: same-key rows
// compare graphs/sec against the tolerance floor, verdict changes are
// always flagged, and rows present on only one side are ignored.
func TestCompareAMC(t *testing.T) {
	row := func(name string, w int, verdict string, gps float64) bench.AMCResult {
		return bench.AMCResult{Name: name, Workers: w, Verdict: verdict, GraphsPerSec: gps}
	}
	baseline := bench.AMCSuite{Results: []bench.AMCResult{
		row("lock/mcs", 1, "ok", 100_000),
		row("scale/mcs-t3", 4, "ok", 80_000),
		row("lock/gone", 1, "ok", 50_000),
	}}
	fresh := bench.AMCSuite{Results: []bench.AMCResult{
		row("lock/mcs", 1, "ok", 80_000),     // -20%: within 25%
		row("scale/mcs-t3", 4, "ok", 50_000), // -37.5%: regression
		row("lock/new-row", 1, "ok", 10),     // no baseline: ignored
	}}
	bad := bench.CompareAMC(baseline, fresh, 0.25)
	if len(bad) != 1 || !strings.Contains(bad[0], "scale/mcs-t3") {
		t.Fatalf("CompareAMC = %v, want exactly the mcs-t3 regression", bad)
	}
	if bad := bench.CompareAMC(baseline, fresh, 0.5); len(bad) != 0 {
		t.Fatalf("CompareAMC at 50%% tolerance = %v, want none", bad)
	}
	fresh.Results[0].Verdict = "safety violation"
	bad = bench.CompareAMC(baseline, fresh, 0.25)
	found := false
	for _, line := range bad {
		if strings.Contains(line, "verdict changed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("CompareAMC = %v, want a verdict-change report", bad)
	}
}

// TestAMCSuiteJSONRoundTrip: the artifact the gate reads back must be
// the artifact the suite writes.
func TestAMCSuiteJSONRoundTrip(t *testing.T) {
	s := bench.AMCSuite{Schema: "amc-bench/v3", Go: "gotest", CPUs: 1,
		Results: []bench.AMCResult{{Name: "micro/kahn-n96", Model: "bitmat", Workers: 1, Verdict: "ok", Runs: 3, GraphsPerSec: 42}}}
	path := filepath.Join(t.TempDir(), "BENCH_amc.json")
	if err := s.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := bench.ReadAMCSuite(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != s.Schema || len(got.Results) != 1 || got.Results[0] != s.Results[0] {
		t.Fatalf("round trip mangled the artifact: %+v", got)
	}
}

// TestBestOfAMC: the gate's noise armor keeps each row's best
// measurement and unions rows across repeats.
func TestBestOfAMC(t *testing.T) {
	row := func(name string, gps float64) bench.AMCResult {
		return bench.AMCResult{Name: name, Workers: 1, Verdict: "ok", GraphsPerSec: gps}
	}
	a := bench.AMCSuite{Schema: "amc-bench/v3", Results: []bench.AMCResult{row("x", 100), row("y", 50)}}
	b := bench.AMCSuite{Schema: "amc-bench/v3", Results: []bench.AMCResult{row("x", 80), row("y", 70), row("z", 1)}}
	m := bench.BestOfAMC(a, b)
	if len(m.Results) != 3 {
		t.Fatalf("merged %d rows, want 3", len(m.Results))
	}
	if m.Results[0].GraphsPerSec != 100 || m.Results[1].GraphsPerSec != 70 || m.Results[2].Name != "z" {
		t.Fatalf("merge picked wrong rows: %+v", m.Results)
	}
	// The inputs must not be mutated by the merge.
	if a.Results[1].GraphsPerSec != 50 {
		t.Fatal("merge mutated its input")
	}
}

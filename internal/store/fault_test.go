package store

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
)

// testHash builds a distinct 128-bit hash for epoch/key fabrication.
func testHash(i int) graph.Hash128 { return graph.Hash128{uint64(i) + 1, uint64(i)*7 + 3} }

// These tests drive the store's failure paths through the injected
// failpoints (internal/faultinject): append errors, torn tails from a
// simulated crash mid-append, compaction rename failures, and lock
// acquisition failures. The invariant under every fault is the same —
// no wrong verdict is ever served, and the log heals to a well-formed
// state at the next locked operation.

func TestAppendFaultSurfacesAndRecovers(t *testing.T) {
	defer faultinject.Reset()
	path := filepath.Join(t.TempDir(), "v.log")
	s, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := faultinject.Configure("store.append:err"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), core.OK, "faulted"); err == nil {
		t.Fatal("injected append fault did not surface")
	}
	if _, ok := s.Lookup(testKey(1)); ok {
		t.Fatal("failed append left the verdict in the index")
	}
	faultinject.Reset()
	if err := s.Put(testKey(1), core.OK, "retry"); err != nil {
		t.Fatalf("put after fault cleared: %v", err)
	}
	if v, ok := s.Lookup(testKey(1)); !ok || v != core.OK {
		t.Fatalf("lookup after recovery = (%v, %v)", v, ok)
	}
}

// TestTornAppendHeals: a simulated kill -9 mid-append leaves half a
// record on disk. The next locked operation's tail re-scan must
// truncate the tear, and subsequent appends must extend a well-formed
// log — the torn verdict is lost (it never committed), nothing else.
func TestTornAppendHeals(t *testing.T) {
	defer faultinject.Reset()
	path := filepath.Join(t.TempDir(), "v.log")
	s, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), core.OK, "committed"); err != nil {
		t.Fatal(err)
	}
	clean, _ := os.Stat(path)

	if err := faultinject.Configure("store.append.torn:on=1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(2), core.SafetyViolation, "torn"); err == nil {
		t.Fatal("torn append did not surface as an error")
	}
	faultinject.Reset()
	if torn, _ := os.Stat(path); torn.Size() <= clean.Size() {
		t.Fatalf("no torn bytes landed (size %d -> %d)", clean.Size(), torn.Size())
	}

	// The same session keeps working: the pre-append re-scan heals the
	// tear under the lock before the next record is written.
	if err := s.Put(testKey(3), core.ATViolation, "after-tear"); err != nil {
		t.Fatalf("append after tear: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process sees exactly the committed records and a log that
	// scans clean end to end.
	s2, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Loaded != 2 || st.Corrupted != 0 {
		t.Fatalf("reopened log: %+v, want 2 loaded, 0 corrupted", st)
	}
	if _, ok := s2.Lookup(testKey(2)); ok {
		t.Fatal("the torn (uncommitted) verdict is being served")
	}
	for _, k := range []int{1, 3} {
		if _, ok := s2.Lookup(testKey(k)); !ok {
			t.Fatalf("committed verdict %d lost to the heal", k)
		}
	}
}

// TestCompactRenameFault: a failed compaction rename must leave the
// original log intact and the session serving every verdict — the
// rewrite is an optimization, never a correctness step.
func TestCompactRenameFault(t *testing.T) {
	defer faultinject.Reset()
	oldBudget := staleRetainBytes
	defer func() { staleRetainBytes = oldBudget }()

	path := filepath.Join(t.TempDir(), "v.log")
	s, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if err := s.Put(testKey(i), verdictFor(i), "live"); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign-epoch ballast that a tight budget will want dropped.
	for i := 0; i < 8; i++ {
		if err := s.PutRaw(testHash(900+i), testHash(i), core.OK, "foreign"); err != nil {
			t.Fatal(err)
		}
	}
	staleRetainBytes = 64

	if err := faultinject.Configure("store.rename:err"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err == nil {
		t.Fatal("injected rename fault did not surface from Compact")
	}
	faultinject.Reset()
	if tmps, _ := filepath.Glob(path + ".compact"); len(tmps) != 0 {
		t.Fatalf("temp rewrite left behind: %v", tmps)
	}
	for i := 0; i < 4; i++ {
		if v, ok := s.Lookup(testKey(i)); !ok || v != verdictFor(i) {
			t.Fatalf("verdict %d lost after failed compaction: (%v, %v)", i, v, ok)
		}
	}
	// With the fault cleared the same compaction succeeds and the
	// session still serves everything current-epoch.
	if _, err := s.Compact(); err != nil {
		t.Fatalf("compaction after fault cleared: %v", err)
	}
	for i := 0; i < 4; i++ {
		if v, ok := s.Lookup(testKey(i)); !ok || v != verdictFor(i) {
			t.Fatalf("verdict %d lost to compaction: (%v, %v)", i, v, ok)
		}
	}
}

// TestFlockFault: a failing lock acquisition surfaces from every
// locked operation instead of silently proceeding unlocked.
func TestFlockFault(t *testing.T) {
	defer faultinject.Reset()
	path := filepath.Join(t.TempDir(), "v.log")
	s, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := faultinject.Configure("store.flock:err"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), core.OK, "locked-out"); err == nil {
		t.Fatal("put with a failing lock did not surface")
	}
	if _, err := OpenShared(filepath.Join(t.TempDir(), "w.log"), nil); err == nil {
		t.Fatal("open with a failing lock did not surface")
	}
	faultinject.Reset()
	if err := s.Put(testKey(1), core.OK, "recovered"); err != nil {
		t.Fatalf("put after lock fault cleared: %v", err)
	}
}

// flakyService wraps the verdict service with a switchable failure
// mode, standing in for a service outage mid-run.
type flakyService struct {
	h    http.Handler
	down atomic.Bool
}

func (f *flakyService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		http.Error(w, "injected outage", http.StatusInternalServerError)
		return
	}
	f.h.ServeHTTP(w, r)
}

// TestRemoteRequeueAfterOutage: PUT batches that fail during a service
// outage are requeued, not dropped — when the service recovers, a
// flush delivers every verdict produced during the outage (PUT is
// idempotent, so the retry is safe), and the accounting shows the
// requeue happened.
func TestRemoteRequeueAfterOutage(t *testing.T) {
	dir := t.TempDir()
	backend, err := OpenShared(filepath.Join(dir, "server.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	flaky := &flakyService{h: NewHandler(backend)}
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	lg := &testLogf{}
	s, err := OpenShared(filepath.Join(dir, "client.log"), &Options{Remote: srv.URL, Logf: lg.logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.remote.backoffUnit = time.Millisecond // keep the outage cooldowns fast

	flaky.down.Store(true)
	const n = remoteBatchSize*2 + 5
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), verdictFor(i), "outage"); err != nil {
			t.Fatalf("local put %d during outage: %v", i, err)
		}
	}
	s.Flush()
	st := s.Stats()
	if st.RemotePuts != 0 {
		t.Fatalf("puts acknowledged during outage: %+v", st)
	}
	if st.RemoteRequeued == 0 {
		t.Fatalf("failed batches were not requeued: %+v", st)
	}
	if st.RemoteDropped != 0 {
		t.Fatalf("records dropped below the cap: %+v", st)
	}

	// Recovery: wait out the (shrunken, jittered) cooldown, then flush.
	flaky.down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.Flush()
		if st := s.Stats(); st.RemotePuts == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("outage verdicts never delivered: %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if backend.Len() != n {
		t.Fatalf("service store indexes %d verdicts, want %d", backend.Len(), n)
	}
	if logs := lg.joined(); !strings.Contains(logs, "backing off") {
		t.Fatalf("outage not logged with backoff:\n%s", logs)
	}
}

// TestRequeueCapDropsOldest: the pending queue is bounded; a cap-sized
// flood during an outage drops the oldest records and counts them.
func TestRequeueCapDropsOldest(t *testing.T) {
	s := &Session{} // pending-queue accounting needs no open file
	s.pending = make([]WireRecord, remotePendingMax)
	for i := range s.pending {
		s.pending[i].Name = "old"
	}
	s.pending = append([]WireRecord{{Name: "oldest"}}, s.pending...)
	s.capPendingLocked()
	if len(s.pending) != remotePendingMax {
		t.Fatalf("cap not enforced: %d pending", len(s.pending))
	}
	if s.pending[0].Name != "old" {
		t.Fatalf("newest dropped instead of oldest: front is %q", s.pending[0].Name)
	}
	if s.stats.RemoteDropped != 1 {
		t.Fatalf("dropped accounting: %+v", s.stats)
	}
}

// TestBackoffJitterBounds: the jitter keeps every cooldown inside
// [0.5d, 1.5d) — spread enough to desynchronize a fleet, bounded
// enough that the documented 1s..30s envelope stays honest.
func TestBackoffJitterBounds(t *testing.T) {
	for _, d := range []time.Duration{time.Second, 4 * time.Second, 30 * time.Second} {
		lo, hi := d, d
		for i := 0; i < 2000; i++ {
			j := backoffJitter(d)
			if j < d/2 || j >= d+d/2 {
				t.Fatalf("jitter(%v) = %v outside [%v, %v)", d, j, d/2, d+d/2)
			}
			lo, hi = min(lo, j), max(hi, j)
		}
		if hi-lo < d/4 {
			t.Fatalf("jitter(%v) barely spreads: saw [%v, %v]", d, lo, hi)
		}
	}
}

// TestReadyzDrain: /v1/readyz flips to 503 when the handler is told a
// drain started, while /v1/healthz (liveness) stays 200 — the signal a
// load balancer uses to stop routing to a draining vsyncstored.
func TestReadyzDrain(t *testing.T) {
	backend, err := OpenShared(filepath.Join(t.TempDir(), "s.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	h := NewHandler(backend)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/v1/readyz"); c != http.StatusOK {
		t.Fatalf("readyz before drain: %d", c)
	}
	h.SetReady(false)
	if c := get("/v1/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", c)
	}
	if c := get("/v1/healthz"); c != http.StatusOK {
		t.Fatalf("healthz during drain: %d (liveness must not flip)", c)
	}
	h.SetReady(true)
	if c := get("/v1/readyz"); c != http.StatusOK {
		t.Fatalf("readyz after drain canceled: %d", c)
	}
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestMergeDisjoint: two stores populated by different runs merge into
// the union — the fleet-pooling contract. Every source verdict must be
// servable from the destination afterwards, with nothing lost and
// nothing duplicated.
func TestMergeDisjoint(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.log")
	pathB := filepath.Join(dir, "b.log")

	a, err := OpenShared(pathA, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := a.Put(testKey(i), verdictFor(i), fmt.Sprintf("a-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	b, err := OpenShared(pathB, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 50; i++ {
		if err := b.Put(testKey(i), verdictFor(i), fmt.Sprintf("b-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	ms, err := a.Merge(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Scanned != 30 || ms.Added != 30 || ms.Duplicates != 0 || ms.Conflicts != 0 || ms.Skipped != 0 {
		t.Fatalf("disjoint merge stats %+v, want 30 scanned = 30 added", ms)
	}
	if a.Len() != 50 {
		t.Fatalf("merged store indexes %d verdicts, want 50", a.Len())
	}
	for i := 0; i < 50; i++ {
		if v, ok := a.Lookup(testKey(i)); !ok || v != verdictFor(i) {
			t.Fatalf("merged store: verdict %d = (%v, %v), want (%v, true)", i, v, ok, verdictFor(i))
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// The merged log must round-trip: a fresh session loads the union.
	a2, err := OpenShared(pathA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.Stats().Loaded != 50 {
		t.Fatalf("reopened merged store loaded %d records, want 50", a2.Stats().Loaded)
	}
}

// TestMergeOverlapAndConflict: merge is idempotent on the overlap
// (dedup-union) and the destination wins a contradiction.
func TestMergeOverlapAndConflict(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.log")
	pathB := filepath.Join(dir, "b.log")

	a, err := OpenShared(pathA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenShared(pathB, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Put(testKey(i), verdictFor(i), "a"); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(testKey(i), verdictFor(i), "b"); err != nil {
			t.Fatal(err)
		}
	}
	// One contradicting record in the source.
	bad := verdictFor(3)
	if bad == core.OK {
		bad = core.SafetyViolation
	} else {
		bad = core.OK
	}
	if err := b.Put(testKey(77), bad, "b-extra"); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(testKey(77), verdictFor(77), "a-authoritative"); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	ms, err := a.Merge(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Duplicates != 10 || ms.Added != 0 || ms.Conflicts != 1 {
		t.Fatalf("overlap merge stats %+v, want 10 duplicates, 0 added, 1 conflict", ms)
	}
	// Destination wins the conflict.
	if v, ok := a.Lookup(testKey(77)); !ok || v != verdictFor(77) {
		t.Fatalf("conflict overwrote destination verdict: (%v, %v)", v, ok)
	}
	// Merging a store into itself is a total no-op.
	ms, err = a.Merge(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Added != 0 || ms.Duplicates != ms.Scanned-ms.Conflicts {
		t.Fatalf("self-merge stats %+v, want everything deduped", ms)
	}
}

// TestMergeRejectsGarbage: a non-store source file must be refused, not
// half-merged.
func TestMergeRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.log")
	if err := os.WriteFile(garbage, []byte("this is not a store\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenShared(filepath.Join(dir, "a.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Merge(garbage); err == nil {
		t.Fatal("merge of a non-store file succeeded")
	}
}

// TestCompactDedupsAndPreservesVerdicts: duplicate records (racing
// processes append the same verdict before either re-scans) are the
// compaction's main local target; the rewrite must drop them without
// losing a verdict, and a fresh session must load the compacted log.
func TestCompactDedupsAndPreservesVerdicts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), verdictFor(i), "p"); err != nil {
			t.Fatal(err)
		}
	}
	// Fabricate duplicate records by appending raw encodings directly —
	// the on-disk state two unsynchronized writers can legitimately
	// produce on a no-flock platform.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := encodeRecord(currentEpoch(), testKey(i).Hash(), verdictFor(i), "dup")
		if _, err := f.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	dropped, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != n {
		t.Fatalf("compact dropped %d records, want the %d duplicates", dropped, n)
	}
	for i := 0; i < n; i++ {
		if v, ok := s.Lookup(testKey(i)); !ok || v != verdictFor(i) {
			t.Fatalf("verdict %d lost in compaction: (%v, %v)", i, v, ok)
		}
	}
	// Compacting a tight log is a no-op.
	if dropped, err := s.Compact(); err != nil || dropped != 0 {
		t.Fatalf("second compact = (%d, %v), want (0, nil)", dropped, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Stats().Loaded != n || s2.Stats().Corrupted != 0 {
		t.Fatalf("compacted log reloads as %+v, want %d clean records", s2.Stats(), n)
	}
}

// TestCompactEnforcesStaleBudget: an explicit Compact applies the same
// oldest-first foreign-epoch retention the open-time scan does.
func TestCompactEnforcesStaleBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	oldEpoch := currentEpoch()
	oldBudget := staleRetainBytes
	defer func() { codeEpoch = oldEpoch; staleRetainBytes = oldBudget }()

	// Write records under a foreign epoch.
	codeEpoch = graph.Hash128{oldEpoch[0] ^ 1, oldEpoch[1]}
	s, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	recLen := 0
	for i := 0; i < 10; i++ {
		if err := s.Put(testKey(i), core.OK, "old"); err != nil {
			t.Fatal(err)
		}
		recLen = headerSize + payloadFixed + len("old") + 4
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Back to the real epoch with a budget for ~3 foreign records.
	codeEpoch = oldEpoch
	staleRetainBytes = 3 * recLen
	s, err = OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Open-time compaction already enforced the budget.
	if st := s.Stats(); st.Stale > 3 {
		t.Fatalf("open retained %d stale records over a 3-record budget", st.Stale)
	}
	// A further Compact is then a no-op.
	if dropped, err := s.Compact(); err != nil || dropped != 0 {
		t.Fatalf("compact after open-time enforcement = (%d, %v), want (0, nil)", dropped, err)
	}
}

package store

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// testLogf collects remote-tier log lines for assertion.
type testLogf struct {
	mu    sync.Mutex
	lines []string
}

func (l *testLogf) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *testLogf) joined() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.lines, "\n")
}

// serveStore starts a verdict service over a fresh store in dir.
func serveStore(t *testing.T, dir string) (*httptest.Server, *Session) {
	t.Helper()
	backend, err := OpenShared(filepath.Join(dir, "server.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backend.Close() })
	srv := httptest.NewServer(NewHandler(backend))
	t.Cleanup(srv.Close)
	return srv, backend
}

// TestRemoteTieredLookup: a verdict known only to the service is
// served through the remote tier and promoted into the local log, so
// the *next* local session is warm without the network.
func TestRemoteTieredLookup(t *testing.T) {
	dir := t.TempDir()
	srv, backend := serveStore(t, dir)

	// Seed the server's store directly.
	if err := backend.Put(testKey(1), core.SafetyViolation, "seeded"); err != nil {
		t.Fatal(err)
	}

	localPath := filepath.Join(dir, "local.log")
	s, err := OpenShared(localPath, &Options{Remote: srv.URL, Logf: (&testLogf{}).logf})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s.Lookup(testKey(1))
	if !ok || v != core.SafetyViolation {
		t.Fatalf("remote lookup = (%v, %v), want (SafetyViolation, true)", v, ok)
	}
	st := s.Stats()
	if st.RemoteHits != 1 || st.Hits != 1 {
		t.Fatalf("stats after remote hit: %+v", st)
	}
	// A second lookup is served from memory, no network.
	srv.Close()
	if v, ok := s.Lookup(testKey(1)); !ok || v != core.SafetyViolation {
		t.Fatalf("promoted lookup = (%v, %v)", v, ok)
	}
	if st := s.Stats(); st.RemoteHits != 1 {
		t.Fatalf("second lookup went remote again: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Promotion persisted: a fresh local-only session is warm.
	s2, err := OpenShared(localPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Lookup(testKey(1)); !ok || v != core.SafetyViolation {
		t.Fatalf("promotion did not persist: (%v, %v)", v, ok)
	}
}

// TestRemotePutBatch: local decisive appends reach the service in
// batches (with Flush draining the remainder), and a second client
// sharing only the remote tier gets them as hits.
func TestRemotePutBatch(t *testing.T) {
	dir := t.TempDir()
	srv, backend := serveStore(t, dir)

	s, err := OpenShared(filepath.Join(dir, "a.log"), &Options{Remote: srv.URL, Logf: (&testLogf{}).logf})
	if err != nil {
		t.Fatal(err)
	}
	const n = remoteBatchSize + 3 // forces one async batch + a Flush remainder
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), verdictFor(i), fmt.Sprintf("p-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if st := s.Stats(); st.RemotePuts != n || st.RemoteFailures != 0 {
		t.Fatalf("after flush: %+v, want %d remote puts", st, n)
	}
	if backend.Len() != n {
		t.Fatalf("service store indexes %d verdicts, want %d", backend.Len(), n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A disjoint client pools the fleet's work via the remote tier.
	b, err := OpenShared(filepath.Join(dir, "b.log"), &Options{Remote: srv.URL, Logf: (&testLogf{}).logf})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < n; i++ {
		if v, ok := b.Lookup(testKey(i)); !ok || v != verdictFor(i) {
			t.Fatalf("fleet lookup %d = (%v, %v), want (%v, true)", i, v, ok, verdictFor(i))
		}
	}
	if st := b.Stats(); st.RemoteHits != n {
		t.Fatalf("disjoint client stats: %+v, want %d remote hits", st, n)
	}
}

// TestRemoteDegradesGracefully is the acceptance bar for the remote
// tier: the service dying mid-run must cost backoff-logged misses, not
// a failed run — every Put and Lookup keeps working local-only, and
// the cooldown keeps the failure count far below the call count.
func TestRemoteDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	srv, _ := serveStore(t, dir)

	lg := &testLogf{}
	s, err := OpenShared(filepath.Join(dir, "local.log"), &Options{
		Remote:        srv.URL,
		RemoteTimeout: 500 * time.Millisecond,
		Logf:          lg.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Put(testKey(0), core.OK, "before"); err != nil {
		t.Fatal(err)
	}

	// Kill the server mid-run.
	srv.Close()

	for i := 1; i < 40; i++ {
		if _, ok := s.Lookup(testKey(i + 1000)); ok {
			t.Fatalf("lookup %d hit with the server down", i)
		}
		if err := s.Put(testKey(i), verdictFor(i), "after"); err != nil {
			t.Fatalf("local put %d failed with the server down: %v", i, err)
		}
	}
	s.Flush()

	st := s.Stats()
	if st.RemoteFailures == 0 {
		t.Fatal("no remote failures recorded with the server down")
	}
	// The backoff cooldown must have short-circuited most probes: 40
	// lookups with the server down may not mean 40 timed-out calls.
	if st.RemoteFailures > 10 {
		t.Fatalf("%d remote failures for 40 probes — backoff is not engaging", st.RemoteFailures)
	}
	if st.Appended != 40 {
		t.Fatalf("local appends suffered: %+v, want 40 appended", st)
	}
	logs := lg.joined()
	if !strings.Contains(logs, "backing off") || !strings.Contains(logs, "local-only") {
		t.Fatalf("degradation not logged with backoff; got:\n%s", logs)
	}
}

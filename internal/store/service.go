package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
)

// Handler serves a session as the verdict service API consumed by
// remoteTier (cmd/vsyncstored wraps it in a binary). The service is a
// plain epoch-aware key/value view of one shared log:
//
//	GET  /v1/verdict?epoch=HEX&key=HEX  -> 200 WireRecord | 404
//	PUT  /v1/verdicts  ([]WireRecord)   -> 200 {"appended","duplicates","conflicts"}
//	GET  /v1/stats                      -> 200 Stats
//	GET  /v1/healthz                    -> 200 ok
//	GET  /v1/readyz                     -> 200 ready | 503 draining
//
// Records are stored verbatim under the *client's* code epoch — the
// server's own build is irrelevant to what it stores, which is what
// lets one service back a fleet of heterogeneous builds. PUT is
// idempotent (content-addressed dedup) and tolerant: conflicting
// records are counted and kept out, never an error, so one bad client
// cannot wedge the fleet's ingest.
//
// healthz and readyz answer different questions: healthz is liveness
// ("is the process serving HTTP at all") and stays 200 for the whole
// lifetime; readyz is load-balancer routability and flips to 503 the
// moment a graceful drain starts (SetReady(false)), so rolling
// restarts stop steering new clients at an instance that is about to
// stop accepting work while its in-flight requests complete.
type Handler struct {
	mux   *http.ServeMux
	ready atomic.Bool
}

// ServeHTTP makes Handler an http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// SetReady flips the /v1/readyz answer; new handlers start ready.
func (h *Handler) SetReady(ok bool) { h.ready.Store(ok) }

// NewHandler builds the service handler over one shared session.
func NewHandler(s *Session) *Handler {
	h := &Handler{}
	h.ready.Store(true)
	mux := http.NewServeMux()
	h.mux = mux

	mux.HandleFunc("GET /v1/verdict", func(w http.ResponseWriter, r *http.Request) {
		epoch, err1 := parseHashHex(r.URL.Query().Get("epoch"))
		key, err2 := parseHashHex(r.URL.Query().Get("key"))
		if err1 != nil || err2 != nil {
			http.Error(w, "bad epoch/key", http.StatusBadRequest)
			return
		}
		v, name, ok := s.LookupEpoch(epoch, key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, WireRecord{
			Epoch:   hashHex(epoch),
			Key:     hashHex(key),
			Verdict: uint8(v),
			Name:    name,
		})
	})

	mux.HandleFunc("PUT /v1/verdicts", func(w http.ResponseWriter, r *http.Request) {
		var batch []WireRecord
		if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&batch); err != nil {
			http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
			return
		}
		var appended, duplicates, conflicts, rejected int
		for _, rec := range batch {
			epoch, err1 := parseHashHex(rec.Epoch)
			key, err2 := parseHashHex(rec.Key)
			if err1 != nil || err2 != nil || !decisive(core.Verdict(rec.Verdict)) {
				rejected++
				continue
			}
			if prev, _, ok := s.LookupEpoch(epoch, key); ok && prev == core.Verdict(rec.Verdict) {
				duplicates++
				continue
			}
			switch err := s.PutRaw(epoch, key, core.Verdict(rec.Verdict), rec.Name); {
			case err == nil:
				appended++
			case errors.Is(err, ErrConflict):
				conflicts++
			default:
				// Disk trouble: the one genuinely server-side failure,
				// and the client should know its batch did not persist.
				http.Error(w, fmt.Sprintf("append failed: %v", err), http.StatusInternalServerError)
				return
			}
		}
		writeJSON(w, map[string]int{
			"appended":   appended,
			"duplicates": duplicates,
			"conflicts":  conflicts,
			"rejected":   rejected,
		})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !h.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})

	return h
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

package store

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

// The multi-process acceptance test for the shared-store protocol:
// real concurrent *processes* (not goroutines — flock is per open file
// description, and only separate processes exercise the cross-process
// append lock for real) hammer one log, and the live parent session
// must observe every verdict via Refresh with nothing lost and nothing
// torn. The children are this test binary re-executed against the
// helper below, the standard subprocess-test idiom.

const (
	appenderEnv  = "VSYNC_TEST_STORE_APPENDER" // set: run the helper, not the suite
	appenderPath = "VSYNC_TEST_STORE_PATH"
	appenderBase = "VSYNC_TEST_STORE_BASE"
	appenderN    = "VSYNC_TEST_STORE_COUNT"
)

// TestStoreAppenderHelper is not a test: it is the body of the child
// processes TestMultiProcessAppenders spawns. It opens a shared
// session on the inherited store path and appends its assigned key
// range.
func TestStoreAppenderHelper(t *testing.T) {
	if os.Getenv(appenderEnv) == "" {
		t.Skip("helper for TestMultiProcessAppenders; runs only as a subprocess")
	}
	base, err := strconv.Atoi(os.Getenv(appenderBase))
	if err != nil {
		t.Fatal(err)
	}
	count, err := strconv.Atoi(os.Getenv(appenderN))
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenShared(os.Getenv(appenderPath), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := base; i < base+count; i++ {
		if err := s.Put(testKey(i), verdictFor(i), fmt.Sprintf("w%d-%d", base, i)); err != nil {
			t.Fatalf("child put %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiProcessAppenders(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	const (
		procs   = 4
		perProc = 25
	)
	path := filepath.Join(t.TempDir(), "verdicts.log")

	// The parent holds a live session the whole time — the
	// long-running-reader role Refresh exists for.
	parent, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()

	cmds := make([]*exec.Cmd, procs)
	for w := 0; w < procs; w++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestStoreAppenderHelper$")
		cmd.Env = append(os.Environ(),
			appenderEnv+"=1",
			appenderPath+"="+path,
			appenderBase+"="+strconv.Itoa(w*perProc),
			appenderN+"="+strconv.Itoa(perProc),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[w] = cmd
	}
	// The parent appends its own range concurrently with the children.
	for i := procs * perProc; i < procs*perProc+perProc; i++ {
		if err := parent.Put(testKey(i), verdictFor(i), fmt.Sprintf("parent-%d", i)); err != nil {
			t.Fatalf("parent put %d: %v", i, err)
		}
	}
	for w, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("appender %d: %v", w, err)
		}
	}

	// Refresh must surface every child verdict in the live session.
	if _, err := parent.Refresh(); err != nil {
		t.Fatal(err)
	}
	total := (procs + 1) * perProc
	for i := 0; i < total; i++ {
		if v, ok := parent.Lookup(testKey(i)); !ok || v != verdictFor(i) {
			t.Fatalf("live session lost verdict %d: (%v, %v), want (%v, true)", i, v, ok, verdictFor(i))
		}
	}
	if parent.Len() != total {
		t.Fatalf("live session indexes %d verdicts, want %d", parent.Len(), total)
	}
	st := parent.Stats()
	if st.Refreshed != procs*perProc {
		t.Fatalf("observed %d concurrent verdicts, want the children's %d (lost or double-counted records)",
			st.Refreshed, procs*perProc)
	}

	// And the log itself must be clean: a fresh session loads every
	// record with zero corrupt (torn) bytes.
	fresh, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if s := fresh.Stats(); s.Loaded != total || s.Corrupted != 0 || s.Stale != 0 {
		t.Fatalf("reloaded log: %+v, want %d clean records", s, total)
	}
}

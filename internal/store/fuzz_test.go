package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// FuzzStoreLoad feeds arbitrary bytes to the store as an on-disk log.
// The loader's contract under ANY input:
//
//   - OpenShared never panics. It either refuses the file (not a
//     store: the leading-magic gate) leaving it byte-identical, or
//     opens it trusting only the well-formed prefix;
//   - every verdict the opened session serves is decisive — damage
//     that keeps a valid CRC must still never surface an Error,
//     Canceled, Undecided or out-of-range verdict byte;
//   - the opened log heals: after one session, a reopen scans clean
//     (no further corruption truncation), and a fresh Put round-trips
//     through the healed log.
func FuzzStoreLoad(f *testing.F) {
	// Seeds: the empty log, well-formed logs of one and two records, a
	// stale-epoch record, and damaged variants — truncations, bit
	// flips, garbage tails, and a non-decisive verdict byte with a
	// recomputed CRC (the scanner sees a "valid" record; decodePayload
	// must still refuse it).
	rec1 := encodeRecord(currentEpoch(), testHash(1), core.OK, "seed-a")
	rec2 := encodeRecord(currentEpoch(), testHash(2), core.SafetyViolation, "seed-b")
	stale := encodeRecord(testHash(40), testHash(3), core.ATViolation, "stale")
	f.Add([]byte{})
	f.Add(rec1)
	f.Add(append(append([]byte{}, rec1...), rec2...))
	f.Add(append(append([]byte{}, rec1...), stale...))
	f.Add(rec1[:len(rec1)-3])
	f.Add(rec1[:7])
	f.Add(append(append([]byte{}, rec1...), rec2[:11]...))
	f.Add(append(append([]byte{}, rec1...), 0xde, 0xad, 0xbe, 0xef))
	flip := append([]byte{}, rec1...)
	flip[headerSize+20] ^= 0x40
	f.Add(flip)
	f.Add(badVerdictRecord())
	f.Add(bytes.Repeat([]byte{0x56}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "verdicts.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenShared(path, nil)
		if err != nil {
			// Refused (not a store): the file must be untouched.
			after, rerr := os.ReadFile(path)
			if rerr != nil || !bytes.Equal(after, data) {
				t.Fatalf("refused open modified the input file")
			}
			return
		}
		// Served verdicts must all be decisive, whatever the input was.
		for id, e := range s.index {
			if !decisive(e.v) {
				t.Fatalf("indexed non-decisive verdict %d for %x", e.v, id.key)
			}
		}
		// The log works: a fresh verdict round-trips through it.
		if err := s.Put(testKey(9001), core.OK, "fuzz-probe"); err != nil && !errors.Is(err, ErrConflict) {
			t.Fatalf("put into opened log: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		s2, err := OpenShared(path, nil)
		if err != nil {
			t.Fatalf("healed log refused to reopen: %v", err)
		}
		defer s2.Close()
		if st := s2.Stats(); st.Corrupted != 0 {
			t.Fatalf("reopen after heal still truncated %d bytes", st.Corrupted)
		}
		if v, ok := s2.Lookup(testKey(9001)); ok && v != core.OK {
			t.Fatalf("probe verdict corrupted on reload: %v", v)
		}
	})
}

// badVerdictRecord frames a payload whose verdict byte is not a
// decisive verdict but whose CRC is valid — the forged-record case the
// loader must treat as stale, never serve.
func badVerdictRecord() []byte {
	rec := encodeRecord(currentEpoch(), testHash(4), core.OK, "forged")
	rec[headerSize+33] = 0x7f // verdict byte inside the payload
	// Recompute the CRC so only decodePayload can catch it.
	p := rec[headerSize : len(rec)-4]
	binary.LittleEndian.PutUint32(rec[len(rec)-4:], crc32.ChecksumIEEE(p))
	return rec
}

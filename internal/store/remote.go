package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
)

// WireRecord is one verdict on the HTTP wire (client batches and
// server responses alike). Epoch and Key are the two 128-bit hashes as
// 32 lowercase hex digits; Verdict is the core.Verdict byte. It is the
// JSON projection of the on-disk record, minus framing.
type WireRecord struct {
	Epoch   string `json:"epoch"`
	Key     string `json:"key"`
	Verdict uint8  `json:"verdict"`
	Name    string `json:"name,omitempty"`
}

// hashHex renders a 128-bit hash as the wire's 32-hex-digit form.
func hashHex(h graph.Hash128) string {
	return fmt.Sprintf("%016x%016x", h[0], h[1])
}

// parseHashHex inverts hashHex.
func parseHashHex(s string) (graph.Hash128, error) {
	var h graph.Hash128
	if len(s) != 32 {
		return h, fmt.Errorf("hash %q: want 32 hex digits", s)
	}
	if _, err := fmt.Sscanf(s[:16], "%016x", &h[0]); err != nil {
		return h, fmt.Errorf("hash %q: %w", s, err)
	}
	if _, err := fmt.Sscanf(s[16:], "%016x", &h[1]); err != nil {
		return h, fmt.Errorf("hash %q: %w", s, err)
	}
	return h, nil
}

// remoteTier is the client side of the verdict service. It is
// best-effort by design: every failure trips an exponential cooldown
// (1s, 2s, 4s, ... capped at 30s, with ±50% jitter so a fleet of
// sessions that lost the service together does not retry in lockstep)
// during which calls short-circuit to a miss, so an unreachable
// service costs one timeout per cooldown window instead of one per
// cell, and a run always completes local-only. Each degradation and
// each retry is logged.
type remoteTier struct {
	base string
	hc   *http.Client
	logf func(string, ...any)

	// backoffUnit is the cooldown's doubling base (1s in production;
	// tests shrink it to keep outage scenarios fast).
	backoffUnit time.Duration

	mu        sync.Mutex
	failures  int
	downUntil time.Time
}

// backoffJitter spreads a computed cooldown uniformly over
// [0.5d, 1.5d). A package variable so the backoff-bound tests can pin
// it.
var backoffJitter = func(d time.Duration) time.Duration {
	return d/2 + rand.N(d)
}

func newRemoteTier(base string, timeout time.Duration, logf func(string, ...any)) *remoteTier {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if logf == nil {
		logf = log.Printf
	}
	return &remoteTier{
		base:        strings.TrimRight(base, "/"),
		hc:          &http.Client{Timeout: timeout},
		logf:        logf,
		backoffUnit: time.Second,
	}
}

// available reports whether the tier is outside a failure cooldown; a
// false return is the fast-path miss while the service is down.
func (r *remoteTier) available() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Now().After(r.downUntil)
}

// fail records one failed call and arms (or extends) the backoff.
func (r *remoteTier) fail(op string, err error) {
	r.mu.Lock()
	r.failures++
	backoff := r.backoffUnit << min(r.failures-1, 5) // 1u .. 32u, capped below
	if cap := 30 * r.backoffUnit; backoff > cap {
		backoff = cap
	}
	backoff = backoffJitter(backoff)
	r.downUntil = time.Now().Add(backoff)
	n := r.failures
	r.mu.Unlock()
	r.logf("store: remote %s %s failed (attempt %d): %v; backing off %v, continuing local-only", op, r.base, n, err, backoff)
}

// ok resets the backoff after a successful call; the first call after
// a cooldown that succeeds logs the recovery.
func (r *remoteTier) ok() {
	r.mu.Lock()
	recovered := r.failures > 0
	r.failures = 0
	r.downUntil = time.Time{}
	r.mu.Unlock()
	if recovered {
		r.logf("store: remote %s reachable again", r.base)
	}
}

// get asks the service for one verdict. The three-valued return keeps
// "definite miss" (nil error) distinct from "service unavailable"
// (error, counted as a RemoteFailure by the session).
func (r *remoteTier) get(epoch, key graph.Hash128) (core.Verdict, string, bool, error) {
	if !r.available() {
		return 0, "", false, nil
	}
	if err := faultinject.Fire("remote.get"); err != nil {
		r.fail("GET", err)
		return 0, "", false, err
	}
	u := fmt.Sprintf("%s/v1/verdict?epoch=%s&key=%s", r.base,
		url.QueryEscape(hashHex(epoch)), url.QueryEscape(hashHex(key)))
	resp, err := r.hc.Get(u)
	if err != nil {
		r.fail("GET", err)
		return 0, "", false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNotFound:
		r.ok()
		return 0, "", false, nil
	case http.StatusOK:
		var w WireRecord
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&w); err != nil {
			r.fail("GET", err)
			return 0, "", false, err
		}
		r.ok()
		return core.Verdict(w.Verdict), w.Name, true, nil
	default:
		err := fmt.Errorf("status %s", resp.Status)
		r.fail("GET", err)
		return 0, "", false, err
	}
}

// put sends one batch of verdicts. PUT is idempotent — records are
// content-addressed, so the server dedups re-sent batches — which
// makes retry-after-failure safe without sequencing.
func (r *remoteTier) put(batch []WireRecord) error {
	if !r.available() {
		return fmt.Errorf("remote in backoff")
	}
	if err := faultinject.Fire("remote.put"); err != nil {
		r.fail("PUT", err)
		return err
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, r.base+"/v1/verdicts", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		r.fail("PUT", err)
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("status %s", resp.Status)
		r.fail("PUT", err)
		return err
	}
	r.ok()
	return nil
}

// remoteGet probes the remote tier for the session, translating
// transport failures into RemoteFailures accounting.
func (s *Session) remoteGet(id recordID) (core.Verdict, string, bool) {
	v, name, ok, err := s.remote.get(id.epoch, id.key)
	if err != nil {
		s.mu.Lock()
		s.stats.RemoteFailures++
		s.mu.Unlock()
		return 0, "", false
	}
	return v, name, ok
}

// enqueueRemoteLocked queues one freshly appended verdict for the
// batched remote push, firing an async batch once remoteBatchSize
// accumulate. Caller holds mu. Pushes are fire-and-forget (idempotent
// server-side); Flush/Close drain the remainder and wait.
func (s *Session) enqueueRemoteLocked(id recordID, v core.Verdict, name string) {
	if s.remote == nil {
		return
	}
	s.pending = append(s.pending, WireRecord{
		Epoch:   hashHex(id.epoch),
		Key:     hashHex(id.key),
		Verdict: uint8(v),
		Name:    name,
	})
	s.capPendingLocked()
	// During an outage cooldown the batch is not fired: it would only
	// burn a goroutine on a guaranteed "in backoff" failure. Records
	// keep accumulating (bounded by the cap) and the first enqueue after
	// the cooldown pushes them all.
	if len(s.pending) >= remoteBatchSize && s.remote.available() {
		batch := s.pending
		s.pending = nil
		s.inflight.Add(1)
		go func() {
			defer s.inflight.Done()
			s.sendBatch(batch)
		}()
	}
}

// sendBatch pushes one batch and books the outcome. A failed batch is
// requeued — PUT is idempotent, so the later retry (next post-cooldown
// enqueue, or a Flush) re-sends it without risk of double-counting
// server-side.
func (s *Session) sendBatch(batch []WireRecord) {
	err := s.remote.put(batch)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.stats.RemoteFailures++
		s.stats.RemoteRequeued += len(batch)
		// The failed batch is older than anything pending: it goes back
		// at the front so the cap drops oldest-first overall.
		s.pending = append(batch, s.pending...)
		s.capPendingLocked()
		return
	}
	s.stats.RemotePuts += len(batch)
}

// capPendingLocked enforces the requeue bound, dropping the oldest
// records beyond remotePendingMax. Caller holds mu.
func (s *Session) capPendingLocked() {
	if over := len(s.pending) - remotePendingMax; over > 0 {
		s.stats.RemoteDropped += over
		s.pending = append([]WireRecord(nil), s.pending[over:]...)
	}
}

// Flush drains the pending remote batch (if any) and waits for
// in-flight pushes. A no-op without a remote tier; never fails the
// caller — remote trouble is backoff-logged and counted, not returned.
func (s *Session) Flush() {
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()
	if len(batch) > 0 {
		s.sendBatch(batch)
	}
	s.inflight.Wait()
}

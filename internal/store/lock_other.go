//go:build !darwin && !dragonfly && !freebsd && !linux && !netbsd && !openbsd

package store

import "os"

// lockFile is a no-op where flock is unavailable (windows, solaris,
// aix, ...); the documented single-owner contract is then unenforced
// and concurrent processes on one store file can corrupt it.
func lockFile(*os.File) error { return nil }

// haveFlock = false makes the compaction rename close the old handle
// first: Windows refuses to rename over an open file, and with no
// advisory locks there is no lock-gap to protect anyway.
const haveFlock = false

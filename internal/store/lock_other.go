//go:build !darwin && !dragonfly && !freebsd && !linux && !netbsd && !openbsd

package store

import (
	"os"

	"repro/internal/faultinject"
)

// lockFile is a no-op where flock is unavailable (windows, solaris,
// aix, ...); the documented multi-writer protocol is then unenforced
// and simultaneous processes appending one store risk interleaved
// (torn) records — which the checksummed scan detects and discards,
// but cannot prevent.
func lockFile(*os.File) error { return faultinject.Fire("store.flock") }

// unlockFile matches lockFile's no-op.
func unlockFile(*os.File) {}

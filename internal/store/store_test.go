package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func testKey(i int) Key {
	return Key{
		Model: "wmm",
		Spec:  graph.Hash128{uint64(i), uint64(i) * 3},
		Prog:  graph.Hash128{uint64(i) * 7, uint64(i) * 11},
	}
}

func verdictFor(i int) core.Verdict {
	switch i % 3 {
	case 0:
		return core.OK
	case 1:
		return core.SafetyViolation
	default:
		return core.ATViolation
	}
}

// TestRoundTrip writes verdicts, closes, reopens, and expects every one
// back — the across-process-restarts contract.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), verdictFor(i), fmt.Sprintf("prog-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Loaded; got != n {
		t.Fatalf("reopened store loaded %d records, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		v, ok := s2.Lookup(testKey(i))
		if !ok {
			t.Fatalf("key %d missing after reopen", i)
		}
		if v != verdictFor(i) {
			t.Fatalf("key %d: verdict %v, want %v", i, v, verdictFor(i))
		}
	}
	st := s2.Stats()
	if st.Hits != n || st.Misses != 0 {
		t.Fatalf("stats = %d hits / %d misses, want %d / 0", st.Hits, st.Misses, n)
	}
}

// TestIndecisiveDropped verifies Error and Canceled are never persisted.
func TestIndecisiveDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), core.Error, "err-prog"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(2), core.Canceled, "canceled-prog"); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("indecisive verdicts stored: Len = %d", s.Len())
	}
	if _, ok := s.Lookup(testKey(1)); ok {
		t.Fatal("Error verdict served from store")
	}
	s.Close()
	if info, err := os.Stat(path); err != nil || info.Size() != 0 {
		t.Fatalf("log not empty after indecisive puts: size %d err %v", info.Size(), err)
	}
}

// TestDuplicateAndConflict checks the dedupe and unsound-rekey guards.
func TestDuplicateAndConflict(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey(1)
	if err := s.Put(k, core.OK, "p"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, core.OK, "p"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Appended; got != 1 {
		t.Fatalf("duplicate put appended a record: Appended = %d", got)
	}
	if err := s.Put(k, core.SafetyViolation, "p"); err == nil {
		t.Fatal("conflicting decisive verdict accepted silently")
	}
	if v, _ := s.Lookup(k); v != core.OK {
		t.Fatalf("conflict overwrote stored verdict: %v", v)
	}
}

// TestConcurrentWriters hammers one store from many goroutines and
// expects every record to survive a reopen.
func TestConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				if err := s.Put(testKey(id), verdictFor(id), fmt.Sprintf("w%d-%d", w, i)); err != nil {
					t.Error(err)
				}
				// Interleave lookups of everyone's keys.
				s.Lookup(testKey(i))
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for id := 0; id < writers*perWriter; id++ {
		if v, ok := s2.Lookup(testKey(id)); !ok || v != verdictFor(id) {
			t.Fatalf("key %d lost or wrong after concurrent writes: ok=%v v=%v", id, ok, v)
		}
	}
}

// corruptAndReopen writes n records, mutates the file with f, reopens,
// and returns the reopened store.
func corruptAndReopen(t *testing.T, n int, f func([]byte) []byte) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), verdictFor(i), fmt.Sprintf("prog-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	return s2
}

// TestTruncatedTail cuts a record in half; the prefix must load, the
// torn record must not, and the file must be healed for appends.
func TestTruncatedTail(t *testing.T) {
	const n = 10
	s := corruptAndReopen(t, n, func(data []byte) []byte {
		return data[:len(data)-7] // tear the last record mid-payload
	})
	st := s.Stats()
	if st.Loaded != n-1 {
		t.Fatalf("loaded %d records from torn log, want %d", st.Loaded, n-1)
	}
	if st.Corrupted == 0 {
		t.Fatal("torn tail not reported in Stats().Corrupted")
	}
	if _, ok := s.Lookup(testKey(n - 1)); ok {
		t.Fatal("torn record trusted")
	}
	// The healed log must accept and round-trip new appends.
	if err := s.Put(testKey(n-1), verdictFor(n-1), "rewritten"); err != nil {
		t.Fatal(err)
	}
	path := s.Path()
	s.Close()
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Stats().Loaded != n || s3.Stats().Corrupted != 0 {
		t.Fatalf("healed log reloads %d records with %d corrupt bytes, want %d / 0",
			s3.Stats().Loaded, s3.Stats().Corrupted, n)
	}
}

// TestCorruptedTailChecksum flips payload bytes of the last record; the
// checksum must reject it.
func TestCorruptedTailChecksum(t *testing.T) {
	const n = 10
	s := corruptAndReopen(t, n, func(data []byte) []byte {
		data[len(data)-10] ^= 0xff // payload byte of the final record
		return data
	})
	if st := s.Stats(); st.Loaded != n-1 || st.Corrupted == 0 {
		t.Fatalf("checksum-corrupt tail: loaded %d, corrupted %d", st.Loaded, st.Corrupted)
	}
	if _, ok := s.Lookup(testKey(n - 1)); ok {
		t.Fatal("checksum-corrupt record trusted")
	}
}

// TestCorruptedMiddle stops trust at the first bad record even when
// well-formed bytes follow it (a mid-log tear must not resynchronize on
// attacker- or garbage-controlled framing).
func TestCorruptedMiddle(t *testing.T) {
	const n = 10
	var recLen int
	s := corruptAndReopen(t, n, func(data []byte) []byte {
		recLen = len(data) / n
		data[3*recLen] ^= 0xff // break the magic of record 3
		return data
	})
	if st := s.Stats(); st.Loaded != 3 || st.Corrupted != 7*recLen {
		t.Fatalf("mid-log corruption: loaded %d records, %d corrupt bytes (record len %d)",
			st.Loaded, st.Corrupted, recLen)
	}
}

// TestGarbageFile refuses to open (and, crucially, to truncate) a
// non-empty file that was never a store — a mistyped -store path must
// not destroy the user's file.
func TestGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	content := bytes.Repeat([]byte("not a store"), 100)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("opened a file that was never a verdict store")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, content) {
		t.Fatal("refused open still modified the file")
	}
}

// TestTornFirstRecord: a store whose very first append tore mid-record
// still opens (the magic prefix identifies it as ours) and heals.
func TestTornFirstRecord(t *testing.T) {
	s := corruptAndReopen(t, 1, func(data []byte) []byte {
		return data[:headerSize+3] // magic + length + a few payload bytes
	})
	if st := s.Stats(); st.Loaded != 0 || st.Corrupted == 0 {
		t.Fatalf("torn-first-record store: loaded %d, corrupted %d", st.Loaded, st.Corrupted)
	}
	if err := s.Put(testKey(1), core.OK, "fresh"); err != nil {
		t.Fatal(err)
	}
}

// TestKeyHashSensitivity ensures every key component changes the
// content address.
func TestKeyHashSensitivity(t *testing.T) {
	base := Key{Model: "wmm", Spec: graph.Hash128{1, 2}, Prog: graph.Hash128{3, 4}}
	variants := []Key{
		{Model: "sc", Spec: base.Spec, Prog: base.Prog},
		{Model: base.Model, Spec: graph.Hash128{1, 5}, Prog: base.Prog},
		{Model: base.Model, Spec: base.Spec, Prog: graph.Hash128{5, 4}},
	}
	for i, k := range variants {
		if k.Hash() == base.Hash() {
			t.Fatalf("variant %d collides with base key", i)
		}
	}
	if base.Hash() != base.Hash() {
		t.Fatal("key hash not deterministic")
	}
}
